// Deadlock-analysis benchmarks: the reachable-state search (exponential in
// concurrency, the paper's "distributed deadlocks appear subtle" open
// problem made quantitative), the waits-for construction, and observed
// deadlock rates in the simulator.

#include <benchmark/benchmark.h>

#include "core/deadlock.h"
#include "core/paper.h"
#include "sim/scheduler.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// k transactions over k entities, each locking (e_i, e_{i+1 mod k}) in
/// opposed order — the canonical cyclic-wait workload.
Workload MakeDiningSystem(int k) {
  Workload w;
  w.db = std::make_shared<DistributedDatabase>(1);
  for (int e = 0; e < k; ++e) {
    w.db->MustAddEntity(StrCat("e", e), 0);
  }
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  for (int t = 0; t < k; ++t) {
    TransactionBuilder b(w.db.get(), StrCat("T", t));
    std::string first = StrCat("e", t);
    std::string second = StrCat("e", (t + 1) % k);
    b.Lock(first);
    b.Lock(second);
    b.Unlock(second);
    b.Unlock(first);
    w.system->Add(b.Build());
  }
  return w;
}

void BM_DeadlockSearch_Dining(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeDiningSystem(k);
  int64_t states = 0;
  bool free_ = true;
  for (auto _ : state) {
    auto report = AnalyzeDeadlockFreedom(*w.system, 1 << 22);
    if (report.ok()) {
      states = report->states_explored;
      free_ = report->deadlock_free;
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["deadlock_free"] = free_ ? 1 : 0;
}
BENCHMARK(BM_DeadlockSearch_Dining)->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_DeadlockSearch_RandomTwoSite(benchmark::State& state) {
  Rng rng(88);
  WorkloadParams params;
  params.num_sites = 2;
  params.num_entities = static_cast<int>(state.range(0));
  params.num_transactions = 2;
  params.lock_probability = 1.0;
  std::vector<Workload> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(MakeRandomWorkload(params, &rng));
  size_t i = 0;
  for (auto _ : state) {
    auto report = AnalyzeDeadlockFreedom(*pool[i++ % pool.size()].system,
                                         1 << 22);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DeadlockSearch_RandomTwoSite)->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_WaitsForGraph(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeDiningSystem(k);
  // Every transaction executed exactly its first lock: full cyclic wait.
  std::vector<std::vector<StepId>> executed(k, std::vector<StepId>{0});
  for (auto _ : state) {
    auto waits = BuildWaitsForGraph(*w.system, executed);
    benchmark::DoNotOptimize(waits);
  }
}
BENCHMARK(BM_WaitsForGraph)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

/// Deadlock rates under the random scheduler, per instance family. The
/// counter reports the observed fraction of deadlocked runs.
void BM_SimulatedDeadlockRate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeDiningSystem(k);
  Rng rng(89);
  int64_t runs = 0;
  int64_t deadlocks = 0;
  for (auto _ : state) {
    RunResult run = SimulateRun(*w.system, &rng);
    ++runs;
    if (run.deadlocked) ++deadlocks;
    benchmark::DoNotOptimize(run);
  }
  state.counters["deadlock_fraction"] =
      runs > 0 ? static_cast<double>(deadlocks) / static_cast<double>(runs)
               : 0;
}
BENCHMARK(BM_SimulatedDeadlockRate)->DenseRange(2, 5, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_DeadlockSearch_Fig5(benchmark::State& state) {
  PaperInstance inst = MakeFig5Instance();
  for (auto _ : state) {
    auto report = AnalyzeDeadlockFreedom(*inst.system, 1 << 22);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DeadlockSearch_Fig5)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dislock

BENCHMARK_MAIN();
