// E11: Proposition 2 scaling — many-transaction safety analysis as the
// number of transactions k grows. Condition (a) costs O(k^2) pair tests;
// condition (b) enumerates directed cycles of G, which is where the
// (already centralized) coNP-hardness shows up: dense conflict graphs have
// exponentially many cycles, so the cycle budget dominates.

#include <benchmark/benchmark.h>

#include "core/multi.h"
#include "core/policy.h"
#include "graph/cycles.h"
#include "sim/workload.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// k strongly-two-phase transactions over a sparse entity ring: Ti locks
/// {e_i, e_(i+1 mod k)}, so G is a ring and has exactly 2 directed k-cycles
/// plus the 2-cycles.
Workload MakeRingSystem(int k) {
  Workload w;
  w.db = std::make_shared<DistributedDatabase>(2);
  for (int e = 0; e < k; ++e) {
    w.db->MustAddEntity(StrCat("e", e), e % 2);
  }
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  for (int t = 0; t < k; ++t) {
    w.system->Add(MakeTwoPhaseTransaction(
        w.db.get(), StrCat("T", t + 1),
        {static_cast<EntityId>(t), static_cast<EntityId>((t + 1) % k)}));
  }
  return w;
}

/// Dense system: every transaction locks every entity (complete G).
Workload MakeDenseSystem(int k, int entities) {
  Workload w;
  w.db = std::make_shared<DistributedDatabase>(2);
  std::vector<EntityId> all;
  for (int e = 0; e < entities; ++e) {
    all.push_back(w.db->MustAddEntity(
        StrCat("e", e), e % 2));
  }
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  for (int t = 0; t < k; ++t) {
    w.system->Add(MakeTwoPhaseTransaction(
        w.db.get(), StrCat("T", t + 1), all));
  }
  return w;
}

void BM_MultiSafety_Ring(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeRingSystem(k);
  int cycles = 0;
  for (auto _ : state) {
    MultiSafetyReport report = AnalyzeMultiSafety(*w.system);
    cycles = report.cycles_checked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["cycles_checked"] = cycles;
  state.counters["k"] = k;
}
BENCHMARK(BM_MultiSafety_Ring)->DenseRange(3, 11, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_MultiSafety_Dense(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeDenseSystem(k, 3);
  int cycles = 0;
  for (auto _ : state) {
    MultiSafetyOptions options;
    options.max_cycles = 1 << 14;
    MultiSafetyReport report = AnalyzeMultiSafety(*w.system, options);
    cycles = report.cycles_checked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["cycles_checked"] = cycles;
}
BENCHMARK(BM_MultiSafety_Dense)->DenseRange(3, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_CycleEnumerationOnly(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeDenseSystem(k, 3);
  Digraph g = BuildTransactionConflictGraph(*w.system);
  double count = 0;
  for (auto _ : state) {
    auto cycles = SimpleCycles(g, 1 << 16);
    count = static_cast<double>(cycles.size());
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["simple_cycles"] = count;
}
BENCHMARK(BM_CycleEnumerationOnly)->DenseRange(3, 8, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_BuildCycleGraph(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeRingSystem(k);
  std::vector<int> cycle(k);
  for (int i = 0; i < k; ++i) cycle[i] = i;
  for (auto _ : state) {
    Digraph b = BuildCycleGraph(*w.system, cycle);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_BuildCycleGraph)->DenseRange(3, 11, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dislock

BENCHMARK_MAIN();
