// E11: Proposition 2 scaling — many-transaction safety analysis as the
// number of transactions k grows. Condition (a) costs O(k^2) pair tests;
// condition (b) enumerates directed cycles of G, which is where the
// (already centralized) coNP-hardness shows up: dense conflict graphs have
// exponentially many cycles, so the cycle budget dominates.

#include <benchmark/benchmark.h>

#include "core/multi.h"
#include "core/policy.h"
#include "gen/family.h"
#include "graph/cycles.h"
#include "sim/workload.h"

namespace dislock {
namespace {

/// Both scaling workloads come from the shared family registry
/// (src/gen/family.h) — the same definitions `dislock gen` emits as .dlt
/// traces and dislock_bench times, so every harness measures the same
/// systems. ring: Ti locks {e_i, e_(i+1 mod k)}, G is a ring with exactly
/// 2 directed k-cycles plus the 2-cycles. dense: every transaction locks
/// every entity (complete G).
Workload MakeRingSystem(int k) {
  return gen::BuildFamily("ring", {{"k", static_cast<double>(k)}}).value();
}

Workload MakeDenseSystem(int k, int entities) {
  return gen::BuildFamily("dense", {{"k", static_cast<double>(k)},
                                    {"entities",
                                     static_cast<double>(entities)}})
      .value();
}

void BM_MultiSafety_Ring(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeRingSystem(k);
  int cycles = 0;
  for (auto _ : state) {
    MultiSafetyReport report = AnalyzeMultiSafety(*w.system);
    cycles = report.cycles_checked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["cycles_checked"] = cycles;
  state.counters["k"] = k;
}
BENCHMARK(BM_MultiSafety_Ring)->DenseRange(3, 11, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_MultiSafety_Dense(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeDenseSystem(k, 3);
  int cycles = 0;
  for (auto _ : state) {
    MultiSafetyOptions options;
    options.max_cycles = 1 << 14;
    MultiSafetyReport report = AnalyzeMultiSafety(*w.system, options);
    cycles = report.cycles_checked;
    benchmark::DoNotOptimize(report);
  }
  state.counters["cycles_checked"] = cycles;
}
BENCHMARK(BM_MultiSafety_Dense)->DenseRange(3, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_CycleEnumerationOnly(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeDenseSystem(k, 3);
  Digraph g = BuildTransactionConflictGraph(*w.system);
  double count = 0;
  for (auto _ : state) {
    auto cycles = SimpleCycles(g, 1 << 16);
    count = static_cast<double>(cycles.size());
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["simple_cycles"] = count;
}
BENCHMARK(BM_CycleEnumerationOnly)->DenseRange(3, 8, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_BuildCycleGraph(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Workload w = MakeRingSystem(k);
  std::vector<int> cycle(k);
  for (int i = 0; i < k; ++i) cycle[i] = i;
  for (auto _ : state) {
    Digraph b = BuildCycleGraph(*w.system, cycle);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_BuildCycleGraph)->DenseRange(3, 11, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dislock

BENCHMARK_MAIN();
