// Ablations for the design choices behind the Theorem 2 certificate
// pipeline (closure -> ancestor-first topological sorts -> separating
// curve):
//   * phase cost breakdown (closure vs full pipeline);
//   * the sort construction: the proof's ancestor-first sorts vs a naive
//     greedy Kahn priority sort. The naive sort frequently produces
//     extension pairs whose D(t1,t2) is strongly connected, i.e. NO
//     separating schedule exists for them — measured here as a success
//     rate, this is why the ancestor-first construction matters.

#include <benchmark/benchmark.h>

#include <set>

#include "core/certificate.h"
#include "core/closure.h"
#include "core/conflict_graph.h"
#include "graph/dominator.h"
#include "graph/scc.h"
#include "graph/topological.h"
#include "sat/reduction.h"
#include "txn/linear_extension.h"
#include "util/random.h"

namespace dislock {
namespace {

/// Reduction instances make good ablation subjects: wide partial orders
/// with many forced gadget precedences.
ReductionOutput MakeSubject(int num_vars, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> clauses;
  for (int v = 1; v + 1 <= num_vars; v += 2) {
    clauses.push_back({v, v + 1});
    clauses.push_back({-v, v + 1});
  }
  Cnf f = MakeCnf(num_vars, clauses);
  auto red = ReduceCnfToTransactions(f);
  DISLOCK_CHECK(red.ok()) << red.status().ToString();
  return std::move(red).value();
}

/// A satisfying-assignment dominator of the subject (all variables true).
std::vector<EntityId> SatisfyingDominator(const ReductionOutput& red) {
  std::vector<bool> assignment(red.formula.num_vars + 1, true);
  return AssignmentToDominator(red, assignment);
}

void BM_Phase_ClosureOnly(benchmark::State& state) {
  ReductionOutput red = MakeSubject(static_cast<int>(state.range(0)), 7);
  std::vector<EntityId> dom = SatisfyingDominator(red);
  for (auto _ : state) {
    auto closed = CloseWithRespectTo(red.system->txn(0), red.system->txn(1),
                                     dom);
    benchmark::DoNotOptimize(closed);
  }
}
BENCHMARK(BM_Phase_ClosureOnly)->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_Phase_FullCertificate(benchmark::State& state) {
  ReductionOutput red = MakeSubject(static_cast<int>(state.range(0)), 7);
  std::vector<EntityId> dom = SatisfyingDominator(red);
  for (auto _ : state) {
    auto cert = BuildUnsafetyCertificate(red.system->txn(0),
                                         red.system->txn(1), dom);
    benchmark::DoNotOptimize(cert);
  }
}
BENCHMARK(BM_Phase_FullCertificate)->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMicrosecond);

/// Sort-construction ablation: after closing with respect to X, linearize
/// with (a) the ancestor-first sorts of the proof and (b) a naive greedy
/// Kahn sort that merely prefers X-unlocks / defers X-locks, then check
/// whether D(t1, t2) still admits any dominator (a separating schedule can
/// exist only if it does). Counters report the success rate of each.
void BM_SortAblation(benchmark::State& state) {
  ReductionOutput red = MakeSubject(static_cast<int>(state.range(0)), 7);
  std::vector<EntityId> dom = SatisfyingDominator(red);
  auto closed = CloseWithRespectTo(red.system->txn(0), red.system->txn(1),
                                   dom);
  DISLOCK_CHECK(closed.ok());
  const Transaction& c1 = closed->t1;
  const Transaction& c2 = closed->t2;
  std::set<EntityId> x_set(dom.begin(), dom.end());

  auto separable = [&](const std::vector<NodeId>& o1,
                       const std::vector<NodeId>& o2) {
    auto l1 = Linearize(c1, {o1.begin(), o1.end()});
    auto l2 = Linearize(c2, {o2.begin(), o2.end()});
    ConflictGraph d = BuildConflictGraph(*l1, *l2);
    return !IsStronglyConnected(d.graph);
  };

  int64_t ancestor_ok = 0;
  int64_t untied_ok = 0;
  int64_t naive_ok = 0;
  int64_t rounds = 0;
  for (auto _ : state) {
    ++rounds;
    // (a) Ancestor-first construction with the proof's tie-break (what the
    // library ships): X-locks of t2 ordered by t1's X-unlock positions.
    std::vector<NodeId> priority1;
    for (StepId s = 0; s < c1.NumSteps(); ++s) {
      const Step& st = c1.GetStep(s);
      if (st.kind == StepKind::kUnlock && x_set.count(st.entity) > 0) {
        priority1.push_back(s);
      }
    }
    auto o1 = AncestorFirstTopologicalSort(c1.order(), priority1);
    std::vector<int> pos1(c1.NumSteps(), 0);
    for (size_t i = 0; i < o1->size(); ++i) pos1[(*o1)[i]] = i;
    std::vector<NodeId> priority2;
    for (StepId s = 0; s < c2.NumSteps(); ++s) {
      const Step& st = c2.GetStep(s);
      if (st.kind == StepKind::kLock && x_set.count(st.entity) > 0) {
        priority2.push_back(s);
      }
    }
    std::vector<NodeId> priority2_tied = priority2;
    std::sort(priority2_tied.begin(), priority2_tied.end(),
              [&](NodeId a, NodeId b) {
                StepId ua = c1.UnlockStep(c2.GetStep(a).entity);
                StepId ub = c1.UnlockStep(c2.GetStep(b).entity);
                if (ua != kInvalidStep && ub != kInvalidStep && ua != ub) {
                  return pos1[ua] > pos1[ub];
                }
                return a > b;
              });
    auto ro2 =
        AncestorFirstTopologicalSort(ReverseOf(c2.order()), priority2_tied);
    std::vector<NodeId> o2(ro2->rbegin(), ro2->rend());
    if (separable(*o1, o2)) ++ancestor_ok;

    // (a') Ancestor-first WITHOUT the tie-break (X-locks in id order): the
    // proof's "recall the way we broke ties" step is load-bearing.
    auto ro2u = AncestorFirstTopologicalSort(ReverseOf(c2.order()),
                                             priority2);
    std::vector<NodeId> o2u(ro2u->rbegin(), ro2u->rend());
    if (separable(*o1, o2u)) ++untied_ok;

    // (b) Naive greedy Kahn sorts.
    auto n1 = PriorityTopologicalSort(c1.order(), [&](NodeId a, NodeId b) {
      auto rank = [&](NodeId s) {
        const Step& st = c1.GetStep(s);
        return st.kind == StepKind::kUnlock && x_set.count(st.entity) > 0
                   ? 0
                   : 1;
      };
      if (rank(a) != rank(b)) return rank(a) < rank(b);
      return a < b;
    });
    auto n2 = PriorityTopologicalSort(c2.order(), [&](NodeId a, NodeId b) {
      auto rank = [&](NodeId s) {
        const Step& st = c2.GetStep(s);
        return st.kind == StepKind::kLock && x_set.count(st.entity) > 0 ? 1
                                                                        : 0;
      };
      if (rank(a) != rank(b)) return rank(a) < rank(b);
      return a < b;
    });
    if (separable(*n1, *n2)) ++naive_ok;
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["ancestor_first_success"] =
      rounds > 0 ? static_cast<double>(ancestor_ok) / rounds : 0;
  state.counters["no_tiebreak_success"] =
      rounds > 0 ? static_cast<double>(untied_ok) / rounds : 0;
  state.counters["naive_kahn_success"] =
      rounds > 0 ? static_cast<double>(naive_ok) / rounds : 0;
}
BENCHMARK(BM_SortAblation)->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMicrosecond);

/// Dominator choice ablation: Corollary 2 can be attempted on any
/// dominator; the minimal one (a single source SCC) closes fastest.
void BM_DominatorChoice(benchmark::State& state) {
  ReductionOutput red = MakeSubject(4, 9);
  ConflictGraph d = BuildConflictGraph(red.system->txn(0),
                                       red.system->txn(1));
  auto dominators = AllDominators(d.graph, 1 << 10);
  int64_t closed_count = 0;
  for (auto _ : state) {
    int64_t n = 0;
    for (const auto& dom : dominators) {
      auto closed = CloseWithRespectTo(red.system->txn(0),
                                       red.system->txn(1),
                                       d.EntitiesOf(dom));
      if (closed.ok()) ++n;
    }
    closed_count = n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["dominators"] = static_cast<double>(dominators.size());
  state.counters["closable"] = static_cast<double>(closed_count);
}
BENCHMARK(BM_DominatorChoice)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dislock

BENCHMARK_MAIN();
