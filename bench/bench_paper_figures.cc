// E1-E5: executable reproduction of the paper's worked figures. This is a
// plain harness (not google-benchmark): each section prints the same
// artifact the paper shows — the Fig. 1 non-serializable schedule, the
// Fig. 2 geometric picture and separating curve, the Fig. 3 Lemma-1
// extension-pair split, the Fig. 5 safe-but-not-strongly-connected verdict,
// and the Fig. 8 dominator/assignment table.

#include <cstdio>
#include <string>

#include "core/brute_force.h"
#include "core/certificate.h"
#include "core/conflict_graph.h"
#include "core/paper.h"
#include "core/safety.h"
#include "geometry/curve.h"
#include "geometry/picture.h"
#include "graph/dominator.h"
#include "graph/scc.h"
#include "sat/reduction.h"
#include "txn/linear_extension.h"

namespace dislock {
namespace {

void Banner(const char* title) {
  std::printf("\n=== %s "
              "=====================================================\n",
              title);
}

void Fig1() {
  Banner("E1 / Fig. 1: two-site pair with a non-serializable schedule");
  PaperInstance inst = MakeFig1Instance();
  std::printf("%s", inst.system->ToString().c_str());
  auto report = TwoSiteSafetyTest(inst.system->txn(0), inst.system->txn(1));
  std::printf("verdict: %s (%s)\n", SafetyVerdictName(report->verdict),
              DecisionMethodName(report->method));
  std::printf("D(T1,T2): %s\n",
              ConflictGraphToString(report->d, *inst.db).c_str());
  std::printf("witness schedule: %s\n",
              report->certificate->schedule.ToString(*inst.system).c_str());
}

void Fig2() {
  Banner("E2 / Fig. 2: the geometric picture and the separating curve h");
  PaperInstance inst = MakeFig2Instance();
  auto pic = PairPicture::Make(inst.system->txn(0), inst.system->txn(1));
  EntityId x = inst.db->Find("x").value();
  EntityId y = inst.db->Find("y").value();
  EntityId z = inst.db->Find("z").value();
  auto curve = FindSeparatingCurve(*pic, /*pass_above=*/{z},
                                   /*pass_below=*/{x, y});
  std::printf("%s", pic->Render(*inst.system, &curve.value()).c_str());
  Schedule h = CurveToSchedule(*pic, curve.value());
  std::printf("h = %s\n", h.ToString(*inst.system).c_str());
  std::printf("h separates the x- and z-rectangles -> not serializable: %s\n",
              IsSerializable(*inst.system, h) ? "NO (bug!)" : "confirmed");
}

void Fig3() {
  Banner("E3 / Fig. 3: Lemma 1 - some extension pairs safe, others unsafe");
  PaperInstance inst = MakeFig3Instance();
  const Transaction& t1 = inst.system->txn(0);
  const Transaction& t2 = inst.system->txn(1);
  int safe = 0;
  int unsafe = 0;
  (void)EnumerateLinearExtensions(t1, 10000, [&](const auto& o1) {
    (void)EnumerateLinearExtensions(t2, 10000, [&](const auto& o2) {
      ConflictGraph d = BuildConflictGraph(Linearize(t1, o1).value(),
                                           Linearize(t2, o2).value());
      (IsStronglyConnected(d.graph) ? safe : unsafe) += 1;
      return true;
    });
    return true;
  });
  std::printf("extension pairs: %d safe, %d unsafe -> system UNSAFE by "
              "Lemma 1\n",
              safe, unsafe);
  auto report = TwoSiteSafetyTest(t1, t2);
  std::printf("Theorem 2 verdict: %s; certificate:\n%s",
              SafetyVerdictName(report->verdict),
              CertificateToString(*report->certificate, *inst.db).c_str());
}

void Fig5() {
  Banner("E4 / Fig. 5: 4-site safe pair, D(T1,T2) NOT strongly connected");
  PaperInstance inst = MakeFig5Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  std::printf("D(T1,T2): %s\n", ConflictGraphToString(d, *inst.db).c_str());
  std::printf("strongly connected: %s\n",
              IsStronglyConnected(d.graph) ? "yes" : "no");
  SafetyOptions closure_only;
  closure_only.max_extension_pairs = 0;
  PairSafetyReport report = AnalyzePairSafety(inst.system->txn(0),
                                              inst.system->txn(1),
                                              closure_only);
  std::printf("dominator-closure verdict: %s (%s)\n",
              SafetyVerdictName(report.verdict), report.detail.c_str());
  auto oracle = ExhaustivePairSafety(inst.system->txn(0),
                                     inst.system->txn(1), 100000000);
  std::printf("exhaustive Lemma-1 oracle: %s after %lld extension pairs\n",
              oracle->safe ? "SAFE" : "UNSAFE",
              static_cast<long long>(oracle->combinations_checked));
}

void Fig8() {
  Banner("E5 / Fig. 8: dominators of D(T1(F),T2(F)) <-> truth assignments");
  Cnf f = MakeCnf(3, {{1, 2, 3}, {-1, 2, -3}});
  std::printf("F = %s\n", f.ToString().c_str());
  auto red = ReduceCnfToTransactions(f);
  ConflictGraph d = BuildConflictGraph(red->system->txn(0),
                                       red->system->txn(1));
  std::printf("entities: %d (one site each), |V(D)| = %d\n",
              red->db->NumEntities(), d.graph.NumNodes());
  auto dominators = AllDominators(d.graph, 1 << 10);
  std::printf("%-4s  %-28s  %s\n", "#", "middle nodes in dominator",
              "assignment x1 x2 x3 / verdict");
  int shown = 0;
  for (const auto& dom : dominators) {
    std::vector<EntityId> entities = d.EntitiesOf(dom);
    std::string middles;
    for (EntityId e : entities) {
      const std::string& name = red->db->NameOf(e);
      if (name[0] == 'w') middles += name + " ";
    }
    auto assignment = DominatorToAssignment(*red, entities);
    char line[64];
    if (assignment.ok()) {
      std::snprintf(line, sizeof(line), "%d %d %d  %s",
                    static_cast<int>((*assignment)[1]),
                    static_cast<int>((*assignment)[2]),
                    static_cast<int>((*assignment)[3]),
                    f.IsSatisfiedBy(*assignment) ? "satisfies F -> unsafe"
                                                 : "falsifies F");
    } else {
      std::snprintf(line, sizeof(line), "undesirable (both w and w')");
    }
    std::printf("%-4d  %-28s  %s\n", ++shown, middles.c_str(), line);
    if (shown >= 12) {
      std::printf("...   (%d dominators total)\n",
                  static_cast<int>(dominators.size()));
      break;
    }
  }
  SafetyOptions options;
  options.max_extension_pairs = 0;
  options.max_dominators = 1 << 12;
  PairSafetyReport report = AnalyzePairSafety(red->system->txn(0),
                                              red->system->txn(1), options);
  std::printf("pair verdict: %s (F is satisfiable)\n",
              SafetyVerdictName(report.verdict));
}

}  // namespace
}  // namespace dislock

int main() {
  dislock::Fig1();
  dislock::Fig2();
  dislock::Fig3();
  dislock::Fig5();
  dislock::Fig8();
  std::printf("\nAll figure reproductions completed.\n");
  return 0;
}
