// E9: the exponential cost of deciding safety exhaustively (Lemma 1: check
// every pair of linear extensions) as a function of how "partial" the
// partial orders are. This is the cost Theorem 2 eliminates at <= 2 sites —
// the shape to reproduce: extension-pair counts (and oracle time) explode
// with the number of concurrent per-site sections, while the Theorem 2 test
// stays flat.

#include <benchmark/benchmark.h>

#include "core/brute_force.h"
#include "core/safety.h"
#include "sim/workload.h"
#include "txn/linear_extension.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// A pair whose transactions have `sections` per-site sections (one entity
/// per site). With `safe` the transactions get a global lock point (every
/// lock precedes every unlock), making D complete and the pair SAFE — so
/// the Lemma 1 oracle must examine EVERY pair of extensions before it can
/// say so. Without it all sections are fully concurrent and the very first
/// extension pair is already unsafe (early exit).
Workload MakeWidePair(int sections, bool safe) {
  Workload w;
  w.db = std::make_shared<DistributedDatabase>(sections);
  for (int e = 0; e < sections; ++e) {
    w.db->MustAddEntity(StrCat("e", e),
                        static_cast<SiteId>(e));
  }
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  for (int t = 0; t < 2; ++t) {
    Transaction txn(w.db.get(), StrCat("T", t + 1));
    std::vector<StepId> locks, unlocks;
    for (EntityId e = 0; e < sections; ++e) {
      StepId l = txn.AddStep(StepKind::kLock, e);
      StepId u = txn.AddStep(StepKind::kUnlock, e);
      txn.AddPrecedence(l, u);
      locks.push_back(l);
      unlocks.push_back(u);
    }
    if (safe) {
      for (StepId l : locks) {
        for (StepId u : unlocks) txn.AddPrecedence(l, u);
      }
    }
    w.system->Add(std::move(txn));
  }
  return w;
}

void BM_ExhaustiveOracle(benchmark::State& state) {
  const int sections = static_cast<int>(state.range(0));
  Workload w = MakeWidePair(sections, /*safe=*/true);
  int64_t pairs = 0;
  for (auto _ : state) {
    auto result = ExhaustivePairSafety(w.system->txn(0), w.system->txn(1),
                                       int64_t{1} << 40);
    if (result.ok()) pairs = result->combinations_checked;
    benchmark::DoNotOptimize(result);
  }
  state.counters["extension_pairs"] =
      static_cast<double>(pairs);
}
BENCHMARK(BM_ExhaustiveOracle)->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_Theorem2OnSameInstances(benchmark::State& state) {
  // The same wide instances span `sections` sites, but restricted to two
  // sites Theorem 2 answers instantly; measure it on the 2-section pair
  // and the analyzer's closure loop beyond that.
  const int sections = static_cast<int>(state.range(0));
  Workload w = MakeWidePair(sections, /*safe=*/true);
  SafetyOptions closure_only;
  closure_only.max_extension_pairs = 0;
  closure_only.max_dominators = 1 << 12;
  for (auto _ : state) {
    PairSafetyReport report = AnalyzePairSafety(w.system->txn(0),
                                                w.system->txn(1),
                                                closure_only);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_Theorem2OnSameInstances)->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_ExtensionCounting(benchmark::State& state) {
  const int sections = static_cast<int>(state.range(0));
  Workload w = MakeWidePair(sections, /*safe=*/false);
  int64_t count = 0;
  for (auto _ : state) {
    count = CountLinearExtensions(w.system->txn(0), int64_t{1} << 40);
    benchmark::DoNotOptimize(count);
  }
  state.counters["extensions"] = static_cast<double>(count);
}
BENCHMARK(BM_ExtensionCounting)->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_ScheduleEnumeration(benchmark::State& state) {
  const int sections = static_cast<int>(state.range(0));
  Workload w = MakeWidePair(sections, /*safe=*/false);
  int64_t count = 0;
  for (auto _ : state) {
    int64_t n = 0;
    (void)EnumerateSchedules(*w.system, int64_t{1} << 40,
                             [&n](const Schedule&) {
                               ++n;
                               return true;
                             });
    count = n;
    benchmark::DoNotOptimize(count);
  }
  state.counters["schedules"] = static_cast<double>(count);
}
BENCHMARK(BM_ScheduleEnumeration)->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dislock

BENCHMARK_MAIN();
