// E12: the executable substrate. Measures simulated-run throughput,
// serializability-check cost, and — the operational validation of the
// safety theory — Monte-Carlo witness detection: unsafe systems yield
// non-serializable schedules at a measurable rate, safe systems never do.

#include <benchmark/benchmark.h>

#include "core/paper.h"
#include "core/policy.h"
#include "sim/executor.h"
#include "sim/scheduler.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "util/string_util.h"

namespace dislock {
namespace {

void BM_SimulateRun(benchmark::State& state) {
  Rng rng(1);
  WorkloadParams params;
  params.num_sites = 2;
  params.num_entities = static_cast<int>(state.range(0));
  params.num_transactions = 4;
  params.update_probability = 1.0;
  Workload w = MakeRandomWorkload(params, &rng);
  int64_t steps = 0;
  for (auto _ : state) {
    RunResult run = SimulateRun(*w.system, &rng);
    steps += run.steps_executed;
    benchmark::DoNotOptimize(run);
  }
  state.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateRun)->RangeMultiplier(2)->Range(2, 32)
    ->Unit(benchmark::kMicrosecond);

void BM_SerializabilityCheck(benchmark::State& state) {
  Rng rng(2);
  WorkloadParams params;
  params.num_sites = 2;
  params.num_entities = static_cast<int>(state.range(0));
  params.num_transactions = 4;
  Workload w = MakeRandomWorkload(params, &rng);
  // Pre-sample a completed schedule; deadlock-heavy workloads fall back to
  // a serial one (the check's cost does not depend on interleaving).
  Schedule schedule;
  bool found = false;
  for (int attempt = 0; attempt < 256 && !found; ++attempt) {
    RunResult run = SimulateRun(*w.system, &rng);
    if (!run.deadlocked) {
      schedule = std::move(*run.schedule);
      found = true;
    }
  }
  if (!found) schedule = SerialSchedule(*w.system, {0, 1, 2, 3}).value();
  for (auto _ : state) {
    bool ok = IsSerializable(*w.system, schedule);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SerializabilityCheck)->RangeMultiplier(2)->Range(2, 32)
    ->Unit(benchmark::kMicrosecond);

void BM_SymbolicExecution(benchmark::State& state) {
  Rng rng(3);
  WorkloadParams params;
  params.num_sites = 2;
  params.num_entities = static_cast<int>(state.range(0));
  params.num_transactions = 3;
  params.update_probability = 1.0;
  Workload w = MakeRandomWorkload(params, &rng);
  Schedule schedule;
  bool found = false;
  for (int attempt = 0; attempt < 256 && !found; ++attempt) {
    RunResult run = SimulateRun(*w.system, &rng);
    if (!run.deadlocked) {
      schedule = std::move(*run.schedule);
      found = true;
    }
  }
  if (!found) schedule = SerialSchedule(*w.system, {0, 1, 2}).value();
  for (auto _ : state) {
    ExecutionResult result = ExecuteSchedule(*w.system, schedule);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SymbolicExecution)->RangeMultiplier(2)->Range(2, 16)
    ->Unit(benchmark::kMicrosecond);

/// Witness-detection rate on the paper's unsafe instances: how many sampled
/// runs does it take to hit a non-serializable schedule?
void BM_MonteCarloWitness_Fig1(benchmark::State& state) {
  PaperInstance inst = MakeFig1Instance();
  Rng rng(4);
  int64_t runs_needed = 0;
  for (auto _ : state) {
    MonteCarloStats stats = SampleSafety(*inst.system, 1 << 20, &rng);
    runs_needed += stats.runs;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["avg_runs_to_witness"] = benchmark::Counter(
      static_cast<double>(runs_needed), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MonteCarloWitness_Fig1)->Unit(benchmark::kMicrosecond);

void BM_MonteCarloWitness_Fig3(benchmark::State& state) {
  PaperInstance inst = MakeFig3Instance();
  Rng rng(5);
  int64_t runs_needed = 0;
  for (auto _ : state) {
    MonteCarloStats stats = SampleSafety(*inst.system, 1 << 20, &rng);
    runs_needed += stats.runs;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["avg_runs_to_witness"] = benchmark::Counter(
      static_cast<double>(runs_needed), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_MonteCarloWitness_Fig3)->Unit(benchmark::kMicrosecond);

/// Safe systems: a full sampling budget never finds a witness (the counter
/// must stay 0, and the time is the cost of that assurance).
void BM_MonteCarloSafe_Fig5(benchmark::State& state) {
  PaperInstance inst = MakeFig5Instance();
  Rng rng(6);
  int64_t witnesses = 0;
  for (auto _ : state) {
    MonteCarloStats stats = SampleSafety(*inst.system, 2000, &rng,
                                         /*keep_going=*/true);
    witnesses += stats.non_serializable;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["witnesses"] = static_cast<double>(witnesses);
}
BENCHMARK(BM_MonteCarloSafe_Fig5)->Unit(benchmark::kMillisecond);

void BM_MonteCarloSafe_TwoPhase(benchmark::State& state) {
  Rng rng(7);
  DistributedDatabase db(2);
  std::vector<EntityId> all;
  for (int e = 0; e < 4; ++e) {
    all.push_back(db.MustAddEntity(StrCat("e", e),
                                   e % 2));
  }
  TransactionSystem system(&db);
  for (int t = 0; t < 3; ++t) {
    system.Add(MakeTwoPhaseTransaction(
        &db, StrCat("T", t + 1), all));
  }
  int64_t witnesses = 0;
  for (auto _ : state) {
    MonteCarloStats stats = SampleSafety(system, 500, &rng,
                                         /*keep_going=*/true);
    witnesses += stats.non_serializable;
    benchmark::DoNotOptimize(stats);
  }
  state.counters["witnesses"] = static_cast<double>(witnesses);
}
BENCHMARK(BM_MonteCarloSafe_TwoPhase)->Unit(benchmark::kMillisecond);

/// E15 (shared-locks extension): reader concurrency. k transactions all
/// touch one hot entity; with shared locks they interleave freely, with
/// exclusive locks they serialize on it. The counter reports the fraction
/// of runs in which at least two lock sections on the hot entity
/// overlapped — 0 for exclusive, high for shared.
void BM_ReaderConcurrency(benchmark::State& state) {
  const bool shared = state.range(0) != 0;
  const int k = 4;
  DistributedDatabase db(1);
  db.MustAddEntity("hot", 0);
  for (int t = 0; t < k; ++t) {
    db.MustAddEntity(StrCat("p", t), 0);
  }
  TransactionSystem system(&db);
  for (int t = 0; t < k; ++t) {
    TransactionBuilder b(&db, StrCat("T", t + 1));
    b.Add(StepKind::kLock, 0, shared);
    b.LockUpdateUnlock(StrCat("p", t));
    b.Add(StepKind::kUnlock, 0, shared);
    system.Add(b.Build());
  }
  Rng rng(8);
  int64_t runs = 0;
  int64_t overlapped = 0;
  for (auto _ : state) {
    RunResult run = SimulateRun(system, &rng);
    ++runs;
    if (!run.deadlocked) {
      // Did two hot-entity sections overlap? Track holders along the run.
      int held = 0;
      for (const SysStep& ev : run.schedule->events()) {
        const Step& step = system.txn(ev.txn).GetStep(ev.step);
        if (step.entity != 0) continue;
        if (step.kind == StepKind::kLock) {
          if (++held >= 2) {
            ++overlapped;
            break;
          }
        } else if (step.kind == StepKind::kUnlock) {
          --held;
        }
      }
    }
    benchmark::DoNotOptimize(run);
  }
  state.counters["overlap_fraction"] =
      runs > 0 ? static_cast<double>(overlapped) / static_cast<double>(runs)
               : 0;
}
BENCHMARK(BM_ReaderConcurrency)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dislock

BENCHMARK_MAIN();
