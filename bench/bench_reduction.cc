// E6/E10: the Theorem 3 reduction is polynomial — entity counts, step
// counts and build time grow linearly in |F| — while the *decision* cost of
// the reduced instance grows with the dominator space (2^#middle-components),
// which is exactly where the coNP-hardness lives. Also times the
// end-to-end "unsafe iff satisfiable" validation loop on small formulas.

#include <benchmark/benchmark.h>

#include "core/conflict_graph.h"
#include "core/safety.h"
#include "graph/dominator.h"
#include "sat/normalize.h"
#include "sat/reduction.h"
#include "sat/solver.h"
#include "util/random.h"

namespace dislock {
namespace {

/// Random formula already in restricted form, sized by variable count.
Cnf RandomRestricted(int num_vars, Rng* rng) {
  std::vector<int> pos(num_vars + 1, 2);
  std::vector<int> neg(num_vars + 1, 1);
  std::vector<std::vector<int>> clauses;
  const int want = num_vars;  // ~1 clause per variable
  for (int c = 0; c < want; ++c) {
    std::vector<int> vars;
    for (int v = 1; v <= num_vars; ++v) {
      if (pos[v] > 0 || neg[v] > 0) vars.push_back(v);
    }
    if (static_cast<int>(vars.size()) < 2) break;
    rng->Shuffle(&vars);
    std::vector<int> clause;
    int len = 2 + static_cast<int>(rng->Uniform(2));
    for (int v : vars) {
      if (static_cast<int>(clause.size()) == len) break;
      bool negated = neg[v] > 0 && (pos[v] == 0 || rng->Bernoulli(0.3));
      if (negated) {
        --neg[v];
        clause.push_back(-v);
      } else if (pos[v] > 0) {
        --pos[v];
        clause.push_back(v);
      }
    }
    if (clause.size() >= 2) clauses.push_back(clause);
  }
  if (clauses.empty()) clauses.push_back({1, 2});
  return MakeCnf(num_vars, clauses);
}

void BM_ReductionBuild(benchmark::State& state) {
  Rng rng(42);
  Cnf f = RandomRestricted(static_cast<int>(state.range(0)), &rng);
  int entities = 0;
  int steps = 0;
  for (auto _ : state) {
    auto red = ReduceCnfToTransactions(f);
    entities = red->db->NumEntities();
    steps = red->system->TotalSteps();
    benchmark::DoNotOptimize(red);
  }
  state.counters["entities"] = entities;
  state.counters["steps"] = steps;
  state.counters["vars"] = f.num_vars;
  state.counters["clauses"] = static_cast<double>(f.clauses.size());
}
BENCHMARK(BM_ReductionBuild)->RangeMultiplier(2)->Range(2, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_DominatorSpaceGrowth(benchmark::State& state) {
  Rng rng(43);
  Cnf f = RandomRestricted(static_cast<int>(state.range(0)), &rng);
  auto red = ReduceCnfToTransactions(f);
  double count = 0;
  for (auto _ : state) {
    ConflictGraph d = BuildConflictGraph(red->system->txn(0),
                                         red->system->txn(1));
    auto doms = AllDominators(d.graph, 1 << 16);
    count = static_cast<double>(doms.size());
    benchmark::DoNotOptimize(doms);
  }
  state.counters["dominators"] = count;
}
BENCHMARK(BM_DominatorSpaceGrowth)->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_EndToEndUnsafeIffSat(benchmark::State& state) {
  Rng rng(44);
  const int num_vars = static_cast<int>(state.range(0));
  int64_t agreements = 0;
  int64_t decided = 0;
  for (auto _ : state) {
    Cnf f = RandomRestricted(num_vars, &rng);
    auto sat = SolveSat(f);
    auto red = ReduceCnfToTransactions(f);
    SafetyOptions options;
    options.max_extension_pairs = 0;
    options.max_dominators = 1 << 12;
    PairSafetyReport report = AnalyzePairSafety(red->system->txn(0),
                                                red->system->txn(1), options);
    if (report.verdict != SafetyVerdict::kUnknown) {
      ++decided;
      if ((report.verdict == SafetyVerdict::kUnsafe) == sat->satisfiable) {
        ++agreements;
      }
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["decided"] = static_cast<double>(decided);
  state.counters["agreements"] = static_cast<double>(agreements);
}
BENCHMARK(BM_EndToEndUnsafeIffSat)->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond)->Iterations(8);

void BM_NormalizeCnf(benchmark::State& state) {
  Rng rng(45);
  // Unrestricted random 3-CNF at ratio ~4 clauses/var.
  const int num_vars = static_cast<int>(state.range(0));
  std::vector<std::vector<int>> clauses;
  for (int c = 0; c < 4 * num_vars; ++c) {
    std::vector<int> clause;
    for (int l = 0; l < 3; ++l) {
      int v = 1 + static_cast<int>(rng.Uniform(num_vars));
      clause.push_back(rng.Bernoulli(0.5) ? v : -v);
    }
    clauses.push_back(clause);
  }
  Cnf f = MakeCnf(num_vars, clauses);
  double out_vars = 0;
  for (auto _ : state) {
    auto restricted = NormalizeToRestricted(f);
    if (restricted.ok()) out_vars = restricted->cnf.num_vars;
    benchmark::DoNotOptimize(restricted);
  }
  state.counters["restricted_vars"] = out_vars;
}
BENCHMARK(BM_NormalizeCnf)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dislock

BENCHMARK_MAIN();
