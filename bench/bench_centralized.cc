// E8: the centralized baseline. For totally ordered pairs, safety can be
// decided (a) by the strong-connectivity test of D(t1,t2) — this library's
// algorithm, exact for total orders — or (b) by the naive geometric method
// (grid BFS per rectangle pair, O(k^2 n^2)). The shape to reproduce: the
// graph test scales like n^2 in the number of commonly locked entities,
// while the naive geometric baseline blows up two orders of magnitude
// faster, which is why [5, 14] worked to get the geometric method down to
// O(n log n).

#include <benchmark/benchmark.h>

#include "core/conflict_graph.h"
#include "geometry/curve.h"
#include "geometry/picture.h"
#include "graph/scc.h"
#include "sim/workload.h"
#include "util/string_util.h"

namespace dislock {
namespace {

Workload MakePair(int entities, uint64_t seed) {
  Rng rng(seed);
  return MakeRandomTotalOrderPair(entities, &rng);
}

void BM_Centralized_SccTest(benchmark::State& state) {
  Workload w = MakePair(static_cast<int>(state.range(0)), 11);
  const int n = w.system->TotalSteps();
  for (auto _ : state) {
    ConflictGraph d = BuildConflictGraph(w.system->txn(0), w.system->txn(1));
    bool safe = IsStronglyConnected(d.graph);
    benchmark::DoNotOptimize(safe);
  }
  state.SetComplexityN(n);
  state.counters["steps_n"] = n;
}
BENCHMARK(BM_Centralized_SccTest)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity(benchmark::oNSquared);

/// Worst case for the naive test: a SAFE pair (two identical two-phase
/// total orders), so every one of the k^2 rectangle pairs runs its full
/// grid BFS without finding a path.
Workload MakeSafeTotalPair(int entities) {
  Workload w;
  w.db = std::make_shared<DistributedDatabase>(1);
  for (int e = 0; e < entities; ++e) {
    w.db->MustAddEntity(StrCat("e", e), 0);
  }
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  for (int t = 0; t < 2; ++t) {
    Transaction txn(w.db.get(), StrCat("t", t + 1));
    StepId prev = kInvalidStep;
    auto chain = [&](StepKind kind, EntityId e) {
      StepId s = txn.AddStep(kind, e);
      if (prev != kInvalidStep) txn.AddPrecedence(prev, s);
      prev = s;
    };
    for (EntityId e = 0; e < entities; ++e) chain(StepKind::kLock, e);
    for (EntityId e = 0; e < entities; ++e) chain(StepKind::kUnlock, e);
    w.system->Add(std::move(txn));
  }
  return w;
}

void BM_Centralized_NaiveGeometric(benchmark::State& state) {
  Workload w = MakeSafeTotalPair(static_cast<int>(state.range(0)));
  const int n = w.system->TotalSteps();
  auto pic = PairPicture::Make(w.system->txn(0), w.system->txn(1));
  for (auto _ : state) {
    auto witness = NaiveGeometricUnsafetyTest(*pic);
    benchmark::DoNotOptimize(witness);
  }
  state.SetComplexityN(n);
  state.counters["steps_n"] = n;
}
BENCHMARK(BM_Centralized_NaiveGeometric)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity([](benchmark::IterationCount n) {
      return static_cast<double>(n) * n * n * n / 36.0;  // ~ k^2 * n^2
    });

/// Agreement sweep: both tests decide many random pairs; reported counter
/// is the fraction found unsafe (a workload-shape statistic, not a timing).
void BM_Centralized_UnsafeFraction(benchmark::State& state) {
  Rng rng(13);
  int64_t unsafe = 0;
  int64_t total = 0;
  for (auto _ : state) {
    Workload w = MakeRandomTotalOrderPair(static_cast<int>(state.range(0)),
                                          &rng);
    ConflictGraph d = BuildConflictGraph(w.system->txn(0), w.system->txn(1));
    if (!IsStronglyConnected(d.graph)) ++unsafe;
    ++total;
  }
  state.counters["unsafe_fraction"] =
      total > 0 ? static_cast<double>(unsafe) / static_cast<double>(total)
                : 0.0;
}
BENCHMARK(BM_Centralized_UnsafeFraction)->DenseRange(2, 6, 1);

}  // namespace
}  // namespace dislock

BENCHMARK_MAIN();
