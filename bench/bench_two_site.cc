// E7 / Corollary 1: the two-site safety test runs in O(n^2) for a pair
// with n steps. Benchmarks the full decision procedure (conflict-graph
// construction + Tarjan SCC) on safe worst-case pairs (complete D graph)
// and on unsafe pairs including certificate construction.

#include <benchmark/benchmark.h>

#include "core/conflict_graph.h"
#include "core/safety.h"
#include "graph/scc.h"
#include "sim/workload.h"

namespace dislock {
namespace {

/// Decision only (Corollary 1): build D, test strong connectivity.
void BM_TwoSiteDecision_Safe(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  Rng rng(1);
  Workload w = MakeTwoSiteScalingPair(entities, /*safe=*/true, &rng);
  const int n = w.system->TotalSteps();
  for (auto _ : state) {
    ConflictGraph d = BuildConflictGraph(w.system->txn(0), w.system->txn(1));
    bool safe = IsStronglyConnected(d.graph);
    benchmark::DoNotOptimize(safe);
  }
  state.SetComplexityN(n);
  state.counters["steps_n"] = n;
}
BENCHMARK(BM_TwoSiteDecision_Safe)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity(benchmark::oNSquared);

void BM_TwoSiteDecision_Unsafe(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  Rng rng(2);
  Workload w = MakeTwoSiteScalingPair(entities, /*safe=*/false, &rng);
  const int n = w.system->TotalSteps();
  for (auto _ : state) {
    ConflictGraph d = BuildConflictGraph(w.system->txn(0), w.system->txn(1));
    bool safe = IsStronglyConnected(d.graph);
    benchmark::DoNotOptimize(safe);
  }
  state.SetComplexityN(n);
  state.counters["steps_n"] = n;
}
BENCHMARK(BM_TwoSiteDecision_Unsafe)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity(benchmark::oNSquared);

/// Full unsafe path: decision + closure + certificate + verification.
void BM_TwoSiteWithCertificate(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  Rng rng(3);
  Workload w = MakeTwoSiteScalingPair(entities, /*safe=*/false, &rng);
  for (auto _ : state) {
    auto report = TwoSiteSafetyTest(w.system->txn(0), w.system->txn(1));
    benchmark::DoNotOptimize(report);
  }
  state.counters["steps_n"] = w.system->TotalSteps();
}
BENCHMARK(BM_TwoSiteWithCertificate)->RangeMultiplier(2)->Range(4, 32);

/// Random (non-worst-case) two-site workloads through the general analyzer.
void BM_TwoSiteRandomWorkloads(benchmark::State& state) {
  Rng rng(4);
  WorkloadParams params;
  params.num_sites = 2;
  params.num_entities = static_cast<int>(state.range(0));
  params.num_transactions = 2;
  params.cross_site_arcs = 2;
  std::vector<Workload> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(MakeRandomWorkload(params, &rng));
  size_t i = 0;
  for (auto _ : state) {
    const Workload& w = pool[i++ % pool.size()];
    auto report = TwoSiteSafetyTest(w.system->txn(0), w.system->txn(1));
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_TwoSiteRandomWorkloads)->RangeMultiplier(2)->Range(4, 64);

}  // namespace
}  // namespace dislock

BENCHMARK_MAIN();
