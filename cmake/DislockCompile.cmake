# Shared compile/link options for every dislock target.
#
# Included once from the root CMakeLists; each subdirectory applies the
# options per target via dislock_apply_build_options() so that warnings,
# -Werror and sanitizer instrumentation are attached uniformly to libraries,
# tools, tests, benchmarks and examples (and so individual targets could opt
# out if they ever need to).

set(DISLOCK_SANITIZE "" CACHE STRING
    "Sanitizers to instrument with (comma/semicolon list): address, undefined, thread, leak. E.g. -DDISLOCK_SANITIZE=address,undefined")
option(DISLOCK_WERROR "Treat compiler warnings as errors" OFF)

string(REPLACE "," ";" _dislock_sanitize_list "${DISLOCK_SANITIZE}")
set(DISLOCK_SANITIZE_FLAGS "")
foreach(_san IN LISTS _dislock_sanitize_list)
  string(STRIP "${_san}" _san)
  if(_san STREQUAL "")
    continue()
  endif()
  if(NOT _san MATCHES "^(address|undefined|thread|leak)$")
    message(FATAL_ERROR
            "DISLOCK_SANITIZE: unknown sanitizer '${_san}' "
            "(expected address, undefined, thread or leak)")
  endif()
  list(APPEND DISLOCK_SANITIZE_FLAGS "-fsanitize=${_san}")
endforeach()

if("-fsanitize=thread" IN_LIST DISLOCK_SANITIZE_FLAGS AND
   ("-fsanitize=address" IN_LIST DISLOCK_SANITIZE_FLAGS OR
    "-fsanitize=leak" IN_LIST DISLOCK_SANITIZE_FLAGS))
  message(FATAL_ERROR
          "DISLOCK_SANITIZE: thread cannot be combined with address/leak")
endif()

if(DISLOCK_SANITIZE_FLAGS)
  # Keep stacks readable and make any sanitizer report fatal so ctest fails.
  list(APPEND DISLOCK_SANITIZE_FLAGS
       -fno-omit-frame-pointer -fno-sanitize-recover=all)
  message(STATUS "dislock: sanitizers enabled: ${DISLOCK_SANITIZE}")
endif()

function(dislock_apply_build_options target)
  target_compile_options(${target} PRIVATE -Wall -Wextra)
  if(DISLOCK_WERROR)
    target_compile_options(${target} PRIVATE -Werror)
  endif()
  if(DISLOCK_SANITIZE_FLAGS)
    target_compile_options(${target} PRIVATE ${DISLOCK_SANITIZE_FLAGS})
    target_link_options(${target} PRIVATE ${DISLOCK_SANITIZE_FLAGS})
  endif()
endfunction()
