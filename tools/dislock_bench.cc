// Benchmark trajectory for the parallel safety engine: times
// AnalyzeMultiSafety serial vs parallel on the E11 ring/dense workloads,
// verifies the reports are bit-identical, measures the verdict-cache
// trajectory, and writes everything as JSON (BENCH_multi.json).
//
//   dislock_bench [--quick] [--threads N] [--cache] [--reps N] [--out path]
//
// --threads defaults to 0 (one worker per hardware thread). Speedups are a
// property of the machine: on a single-core container parallel ≈ serial by
// construction; the deterministic-output check is meaningful everywhere.
// --cache additionally enables the engine-owned pair-verdict cache inside
// the timed runs (the dedicated cache-trajectory measurement always runs).
//
// Each workload row also carries per-stage DecisionPipeline timing columns
// (attempts/decided/work/wall_ms per stage, from the last timed serial
// run) — wall_ms lives only here, never in the report JSON, which stays
// deterministic.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/multi.h"
#include "core/policy.h"
#include "core/report.h"
#include "core/verdict_cache.h"
#include "sim/workload.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dislock {
namespace {

/// k strongly-two-phase transactions over a sparse entity ring: Ti locks
/// {e_i, e_(i+1 mod k)}, so G is a ring (2 directed k-cycles; the pair
/// tests dominate).
Workload MakeRingSystem(int k) {
  Workload w;
  w.db = std::make_shared<DistributedDatabase>(2);
  for (int e = 0; e < k; ++e) {
    w.db->MustAddEntity(StrCat("e", e), e % 2);
  }
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  for (int t = 0; t < k; ++t) {
    w.system->Add(MakeTwoPhaseTransaction(
        w.db.get(), StrCat("T", t + 1),
        {static_cast<EntityId>(t), static_cast<EntityId>((t + 1) % k)}));
  }
  return w;
}

/// Dense system: every transaction locks every entity, so G is complete and
/// the (capped) cycle enumeration dominates — the embarrassingly parallel
/// regime.
Workload MakeDenseSystem(int k, int entities) {
  Workload w;
  w.db = std::make_shared<DistributedDatabase>(2);
  std::vector<EntityId> all;
  for (int e = 0; e < entities; ++e) {
    all.push_back(w.db->MustAddEntity(StrCat("e", e), e % 2));
  }
  w.system = std::make_shared<TransactionSystem>(w.db.get());
  for (int t = 0; t < k; ++t) {
    w.system->Add(MakeTwoPhaseTransaction(w.db.get(), StrCat("T", t + 1),
                                          all));
  }
  return w;
}

struct BenchCase {
  std::string name;
  std::string kind;
  int k = 0;
  Workload workload;
};

/// Per-stage bench columns. Unlike PipelineStatsToJson (deterministic
/// report data only), this includes the measured wall_ms.
std::string PipelineTimingJson(const PipelineStats& stats) {
  std::ostringstream out;
  out << "[";
  for (int s = 0; s < kNumDecisionStages; ++s) {
    const StageCounters& c = stats.stages[static_cast<size_t>(s)];
    if (s > 0) out << ", ";
    out << "{\"stage\": \"" << DecisionStageName(static_cast<DecisionStageId>(s))
        << "\", \"attempts\": " << c.attempts
        << ", \"decided\": " << c.decided << ", \"work\": " << c.work
        << ", \"wall_ms\": " << c.wall_ms << "}";
  }
  out << "]";
  return out.str();
}

double MinMs(const std::vector<double>& samples) {
  // min-of-reps: the standard way to strip scheduler noise from a
  // deterministic computation.
  double best = samples.front();
  for (double s : samples) best = std::min(best, s);
  return best;
}

template <typename Fn>
double TimeMs(int reps, const Fn& fn) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return MinMs(samples);
}

}  // namespace
}  // namespace dislock

int main(int argc, char** argv) {
  using namespace dislock;
  bool quick = false;
  int threads = 0;  // one per hardware thread
  bool engine_cache = false;
  int reps = 0;     // 0 = pick per mode below
  const char* out_path = "BENCH_multi.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      engine_cache = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: dislock_bench [--quick] [--threads N] [--cache] "
                   "[--reps N] [--out path]\n");
      return 2;
    }
  }
  if (reps <= 0) reps = quick ? 2 : 5;
  const int effective_threads =
      threads <= 0 ? ThreadPool::HardwareThreads() : threads;

  std::vector<BenchCase> cases;
  for (int k : quick ? std::vector<int>{8} : std::vector<int>{8, 12, 16}) {
    cases.push_back({StrCat("ring_k", k), "ring", k, MakeRingSystem(k)});
  }
  for (int k : quick ? std::vector<int>{6} : std::vector<int>{8, 12}) {
    cases.push_back(
        {StrCat("dense_k", k), "dense", k, MakeDenseSystem(k, 3)});
  }

  std::ostringstream json;
  json << "{\"bench\": \"multi_safety_parallel\", \"threads\": "
       << effective_threads
       << ", \"hardware_threads\": " << ThreadPool::HardwareThreads()
       << ", \"reps\": " << reps << ", \"quick\": "
       << (quick ? "true" : "false") << ", \"workloads\": [";

  bool all_identical = true;
  for (size_t c = 0; c < cases.size(); ++c) {
    const BenchCase& bench = cases[c];
    const TransactionSystem& system = *bench.workload.system;
    MultiSafetyOptions serial_opts;
    serial_opts.max_cycles = 1 << 14;
    serial_opts.enable_cache = engine_cache;
    MultiSafetyOptions parallel_opts = serial_opts;
    parallel_opts.num_threads = threads <= 0 ? 0 : threads;

    // Warm up once (faults in the code and builds the transaction
    // reachability memos), then time serial and parallel.
    MultiSafetyReport serial_report = AnalyzeMultiSafety(system, serial_opts);
    double serial_ms = TimeMs(reps, [&] {
      serial_report = AnalyzeMultiSafety(system, serial_opts);
    });
    MultiSafetyReport parallel_report =
        AnalyzeMultiSafety(system, parallel_opts);
    double parallel_ms = TimeMs(reps, [&] {
      parallel_report = AnalyzeMultiSafety(system, parallel_opts);
    });

    std::string serial_json = MultiReportToJson(serial_report, system);
    std::string parallel_json = MultiReportToJson(parallel_report, system);
    bool identical = serial_json == parallel_json;
    all_identical = all_identical && identical;

    // Cache trajectory: a fresh cache sees the workload's internal
    // structural redundancy on the first analysis (ring/dense systems are
    // transitive on their pairs), and a second analysis over the same
    // cache is pure hits.
    PairVerdictCache cache;
    MultiSafetyOptions cached_opts = parallel_opts;
    cached_opts.cache = &cache;
    MultiSafetyReport first_cached = AnalyzeMultiSafety(system, cached_opts);
    double cached_ms = TimeMs(reps, [&] {
      AnalyzeMultiSafety(system, cached_opts);
    });
    PairVerdictCache::Stats stats = cache.stats();

    if (c > 0) json << ", ";
    json << "{\"name\": \"" << bench.name << "\", \"kind\": \""
         << bench.kind << "\", \"k\": " << bench.k
         << ", \"verdict\": \"" << SafetyVerdictName(serial_report.verdict)
         << "\", \"pairs_checked\": " << serial_report.pairs_checked
         << ", \"cycles_checked\": " << serial_report.cycles_checked
         << ", \"serial_ms\": " << serial_ms
         << ", \"parallel_ms\": " << parallel_ms
         << ", \"speedup\": "
         << (parallel_ms > 0 ? serial_ms / parallel_ms : 0.0)
         << ", \"reports_identical\": " << (identical ? "true" : "false")
         << ", \"cache\": {\"first_pairs_checked\": "
         << first_cached.pairs_checked
         << ", \"first_pairs_cached\": " << first_cached.pairs_cached
         << ", \"hits\": " << stats.hits
         << ", \"misses\": " << stats.misses
         << ", \"hit_rate\": " << stats.HitRate()
         << ", \"warm_ms\": " << cached_ms
         << "}, \"pipeline\": " << PipelineTimingJson(serial_report.pipeline)
         << "}";

    std::printf(
        "%-10s verdict=%s pairs=%d cycles=%d serial=%.2fms "
        "parallel=%.2fms speedup=%.2fx cache-hit-rate=%.2f %s\n",
        bench.name.c_str(), SafetyVerdictName(serial_report.verdict),
        serial_report.pairs_checked, serial_report.cycles_checked,
        serial_ms, parallel_ms,
        parallel_ms > 0 ? serial_ms / parallel_ms : 0.0, stats.HitRate(),
        identical ? "identical" : "REPORTS DIFFER");
    if (!identical) {
      std::fprintf(stderr, "serial:   %s\nparallel: %s\n",
                   serial_json.c_str(), parallel_json.c_str());
    }
    for (int s = 0; s < kNumDecisionStages; ++s) {
      const StageCounters& sc =
          serial_report.pipeline.stages[static_cast<size_t>(s)];
      if (sc.attempts == 0 && sc.skipped == 0) continue;
      std::printf("    stage %-18s attempts=%lld decided=%lld work=%lld "
                  "wall=%.3fms\n",
                  DecisionStageName(static_cast<DecisionStageId>(s)),
                  static_cast<long long>(sc.attempts),
                  static_cast<long long>(sc.decided),
                  static_cast<long long>(sc.work), sc.wall_ms);
    }
  }
  json << "]}";

  std::ofstream out(out_path);
  out << json.str() << "\n";
  out.close();
  std::printf("wrote %s (threads=%d, hardware=%d)\n", out_path,
              effective_threads, ThreadPool::HardwareThreads());
  // Determinism is the contract; a differing report is a bug regardless of
  // the measured speedup.
  return all_identical ? 0 : 1;
}
