// Benchmark trajectory for the parallel safety engine: times
// AnalyzeMultiSafety serial vs parallel on the E11 ring/dense workloads,
// verifies the reports are bit-identical, measures the verdict-cache
// trajectory, and writes everything as JSON (BENCH_multi.json). A second
// table (BENCH_incremental.json) drives the incremental engine through a
// single-transaction edit stream, checks the invalidation bound
// (pairs_recomputed <= degree + 1 per edit) and incremental-vs-scratch
// report equality, and compares wall time.
//
//   dislock_bench [--quick] [--threads N] [--cache] [--reps N] [--out path]
//                 [--trace=FILE] [--metrics[=FILE]]
//
// Workloads come from the shared family registry (src/gen/family.h) — the
// same ring/dense definitions `dislock gen` emits as .dlt traces, so a
// bench row and a committed trace always describe the same system.
// --bench=trace generates every registered family at its defaults, times
// the direct replay, and runs the byte-identity gate (check reports from
// the serve sequencer at {1,4} shards x {1,4} threads vs the direct
// replay), writing BENCH_trace.json.
//
// --threads defaults to 0 (one worker per hardware thread). Speedups are a
// property of the machine: on a single-core container parallel ≈ serial by
// construction; the deterministic-output check is meaningful everywhere.
// --cache additionally enables the engine-owned pair-verdict cache inside
// the timed runs (the dedicated cache-trajectory measurement always runs).
//
// Each workload row also carries per-stage DecisionPipeline timing columns
// (attempts/decided/work/wall_ms per stage, from the last timed serial
// run) — wall_ms lives only here, never in the report JSON, which stays
// deterministic.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/closure.h"
#include "core/conflict_graph.h"
#include "core/decision/context.h"
#include "core/incremental/engine.h"
#include "core/multi.h"
#include "core/paper.h"
#include "core/policy.h"
#include "core/report.h"
#include "core/stats_export.h"
#include "cache/verdict_cache.h"
#include "cache/verdict_store.h"
#include "core/wire_keys.h"
#include "gen/family.h"
#include "gen/replay.h"
#include "gen/trace.h"
#include "graph/cycles.h"
#include "graph/dominator.h"
#include "graph/reachability.h"
#include "graph/scc.h"
#include "obs/observability.h"
#include "serve/service.h"
#include "sim/workload.h"
#include "txn/catalog.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dislock {
namespace {

/// Builds a registered workload family (src/gen/family.h) — the bench's
/// only workload source, so every row regenerates from the same registry
/// as the committed .dlt traces. A bad family/params combination is a
/// programming error here, not an input error.
Workload BuildRegistered(const std::string& family,
                         const gen::ParamMap& overrides = {}) {
  auto w = gen::BuildFamily(family, overrides);
  DISLOCK_CHECK(w.ok());
  return std::move(w).value();
}

Workload MakeRingSystem(int k) {
  return BuildRegistered("ring", {{"k", static_cast<double>(k)}});
}

Workload MakeDenseSystem(int k, int entities) {
  return BuildRegistered("dense", {{"k", static_cast<double>(k)},
                                   {"entities",
                                    static_cast<double>(entities)}});
}

struct BenchCase {
  std::string name;
  std::string kind;
  int k = 0;
  Workload workload;
};

/// Per-stage bench columns. Unlike PipelineStatsToJson (deterministic
/// report data only), this includes the measured wall_ms.
std::string PipelineTimingJson(const PipelineStats& stats) {
  std::ostringstream out;
  out << "[";
  for (int s = 0; s < kNumDecisionStages; ++s) {
    const StageCounters& c = stats.stages[static_cast<size_t>(s)];
    if (s > 0) out << ", ";
    out << "{\"stage\": \"" << DecisionStageName(static_cast<DecisionStageId>(s))
        << "\", \"attempts\": " << c.attempts
        << ", \"decided\": " << c.decided << ", \"work\": " << c.work
        << ", \"wall_ms\": " << c.wall_ms << "}";
  }
  out << "]";
  return out.str();
}

double MinMs(const std::vector<double>& samples) {
  // min-of-reps: the standard way to strip scheduler noise from a
  // deterministic computation.
  double best = samples.front();
  for (double s : samples) best = std::min(best, s);
  return best;
}

template <typename Fn>
double TimeMs(int reps, const Fn& fn) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return MinMs(samples);
}

template <typename Fn>
double OnceMs(const Fn& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// The edit-stream workload of the incremental engine: load a system into a
/// catalog, run one full Check, then stream single-transaction Replace
/// edits (each reverses the edited transaction's entity order — a real
/// definition change that leaves the conflict graph intact), re-Checking
/// after each. Measures incremental vs from-scratch wall time, verifies the
/// reports are identical (modulo the delta block), and verifies the
/// invalidation bound: per single-transaction edit,
/// pairs_recomputed <= degree_G(edited txn) + 1.
struct EditStreamRow {
  std::string name;
  int k = 0;
  int edits = 0;
  double incremental_ms = 0;  // summed over the edit stream
  double scratch_ms = 0;      // same edits re-analyzed from scratch
  int64_t max_pairs_recomputed = 0;
  int64_t degree_bound = 0;  // max over edits of degree(edited) + 1
  bool bound_ok = true;
  bool reports_identical = true;
  int64_t pairs_reused_total = 0;
  int64_t pairs_recomputed_total = 0;
};

EditStreamRow RunEditStream(const std::string& name, const Workload& base,
                            int edits, const MultiSafetyOptions& options) {
  EditStreamRow row;
  row.name = name;
  row.k = base.system->NumTransactions();
  row.edits = edits;

  TransactionCatalog catalog(base.db.get());
  std::vector<TxnId> ids;
  for (int i = 0; i < base.system->NumTransactions(); ++i) {
    auto id = catalog.Add(base.system->txn(i));
    DISLOCK_CHECK(id.ok());
    ids.push_back(*id);
  }
  EngineContext ctx(options);
  IncrementalSafetyEngine engine(&catalog, &ctx);
  engine.Check();  // the full first analysis; the stream measures steady state

  for (int e = 0; e < edits; ++e) {
    const int slot = e % row.k;
    // Reverse the entity order of the edited transaction: a definition
    // change (new steps, new precedences) over the same entity set.
    std::shared_ptr<const Transaction> old_txn = catalog.Find(ids[slot]);
    std::vector<EntityId> entities = old_txn->LockedEntities();
    if (e / row.k % 2 == 0) {
      std::reverse(entities.begin(), entities.end());
    }
    Transaction replacement = MakeTwoPhaseTransaction(
        base.db.get(), old_txn->name(), entities);
    DISLOCK_CHECK(catalog.Replace(ids[slot], std::move(replacement)).ok());

    MultiSafetyReport incr;
    row.incremental_ms += OnceMs([&] { incr = engine.Check(); });

    const DeltaStats& delta = *incr.delta;
    row.pairs_reused_total += delta.pairs_reused;
    row.pairs_recomputed_total += delta.pairs_recomputed;
    row.max_pairs_recomputed =
        std::max(row.max_pairs_recomputed, delta.pairs_recomputed);
    CatalogSnapshot snap = catalog.Snapshot();
    Digraph g = BuildTransactionConflictGraph(snap.View());
    int64_t degree =
        static_cast<int64_t>(g.OutNeighbors(slot).size());
    row.degree_bound = std::max(row.degree_bound, degree + 1);
    if (delta.pairs_recomputed > degree + 1) row.bound_ok = false;

    // From-scratch comparison run, under a fresh context with the same
    // config — the engine's equivalence contract.
    TransactionSystem scratch_system = snap.Materialize();
    MultiSafetyReport scratch;
    row.scratch_ms += OnceMs([&] {
      scratch = AnalyzeMultiSafety(scratch_system, options);
    });
    incr.delta.reset();
    if (MultiReportToJson(incr, snap.View()) !=
        MultiReportToJson(scratch, scratch_system)) {
      row.reports_identical = false;
    }
  }
  return row;
}

// ---------------------------------------------------------------------------
// --bench=kernel: the flat-kernel microbench family (BENCH_kernel.json).
// Each row times one kernel flat vs legacy on the same input and verifies
// the outputs are identical — the differential contract, re-checked under
// the measurement harness. Everything here is single-threaded by design:
// the family isolates data-structure wins from parallel scaling.
// ---------------------------------------------------------------------------

struct KernelRow {
  std::string name;    ///< workload, e.g. "multi/dense_k12"
  std::string kernel;  ///< scc | reach | dominator | closure | cycles | multi
  double flat_ms = 0;
  double legacy_ms = 0;
  bool identical = true;
  double Speedup() const { return flat_ms > 0 ? legacy_ms / flat_ms : 0.0; }
};

struct KernelBenchResult {
  std::vector<KernelRow> rows;
  bool all_identical = true;
  /// max over rows of flat_ms / legacy_ms (> 1 means the flat kernel lost).
  double max_slowdown = 0;
};

KernelBenchResult RunKernelBench(bool quick, int reps) {
  KernelBenchResult result;
  Rng rng(42);
  auto add = [&](KernelRow row) {
    result.all_identical = result.all_identical && row.identical;
    if (row.legacy_ms > 0) {
      result.max_slowdown =
          std::max(result.max_slowdown, row.flat_ms / row.legacy_ms);
    }
    std::printf("%-24s flat=%8.3fms legacy=%8.3fms speedup=%6.2fx %s\n",
                row.name.c_str(), row.flat_ms, row.legacy_ms, row.Speedup(),
                row.identical ? "identical" : "OUTPUTS DIFFER");
    result.rows.push_back(std::move(row));
  };

  // ---- Whole-engine rows: AnalyzeMultiSafety, one thread, flat vs
  // legacy, byte-compared reports. dense_k12 is the headline row (the
  // cycle-check regime the flat B_c kernel targets). ----
  std::vector<BenchCase> cases;
  cases.push_back({"multi/ring_k16", "multi", 16, MakeRingSystem(16)});
  cases.push_back({"multi/dense_k12", "multi", 12, MakeDenseSystem(12, 3)});
  {
    PaperInstance fig5 = MakeFig5Instance();
    BenchCase c;
    c.name = "multi/fig5";
    c.kind = "multi";
    c.k = fig5.system->NumTransactions();
    c.workload.db = fig5.db;
    c.workload.system = fig5.system;
    cases.push_back(std::move(c));
  }
  for (const BenchCase& bench : cases) {
    const TransactionSystem& system = *bench.workload.system;
    KernelRow row;
    row.name = bench.name;
    row.kernel = "multi";
    MultiSafetyOptions flat_opts;
    flat_opts.max_cycles = 1 << 14;
    flat_opts.use_flat_kernel = true;
    MultiSafetyOptions legacy_opts = flat_opts;
    legacy_opts.use_flat_kernel = false;
    MultiSafetyReport flat_report = AnalyzeMultiSafety(system, flat_opts);
    row.flat_ms = TimeMs(reps, [&] {
      flat_report = AnalyzeMultiSafety(system, flat_opts);
    });
    MultiSafetyReport legacy_report = AnalyzeMultiSafety(system, legacy_opts);
    row.legacy_ms = TimeMs(reps, [&] {
      legacy_report = AnalyzeMultiSafety(system, legacy_opts);
    });
    row.identical = MultiReportToJson(flat_report, system) ==
                    MultiReportToJson(legacy_report, system);
    add(std::move(row));
  }

  // ---- Graph microkernels on the two-site scaling pair (sim/workload.h):
  // strongly connected D for SCC/reachability, the unsafe variant (which
  // has dominators) for the dominator and closure kernels. Cheap kernels
  // run kIters times per timing sample so a sample is well above clock
  // granularity; the flat/legacy ratio is unaffected. ----
  const int n_safe = quick ? 48 : 96;
  const int n_unsafe = quick ? 24 : 48;
  const int kIters = 20;
  Workload safe_pair = MakeTwoSiteScalingPair(n_safe, /*safe=*/true, &rng);
  Workload unsafe_pair =
      MakeTwoSiteScalingPair(n_unsafe, /*safe=*/false, &rng);
  ConflictGraph d_safe = BuildConflictGraph(safe_pair.system->txn(0),
                                            safe_pair.system->txn(1));
  ConflictGraph d_unsafe = BuildConflictGraph(unsafe_pair.system->txn(0),
                                              unsafe_pair.system->txn(1));

  {
    KernelRow row;
    row.name = StrCat("scc/two_site_n", n_safe);
    row.kernel = "scc";
    int flat_count = 0;
    int legacy_count = 0;
    row.flat_ms = TimeMs(reps, [&] {
      flat_count = 0;
      for (int i = 0; i < kIters; ++i) {
        flat_count += IsStronglyConnectedFlat(d_safe.graph) ? 1 : 0;
      }
    });
    row.legacy_ms = TimeMs(reps, [&] {
      legacy_count = 0;
      for (int i = 0; i < kIters; ++i) {
        legacy_count += IsStronglyConnected(d_safe.graph) ? 1 : 0;
      }
    });
    row.identical = flat_count == legacy_count &&
                    IsStronglyConnectedFlat(d_unsafe.graph) ==
                        IsStronglyConnected(d_unsafe.graph);
    add(std::move(row));
  }

  {
    // The step-order DAG of one scaling transaction (~4 * n_safe nodes) —
    // the reachability matrix every closure/conflict query runs on.
    const Digraph& order = safe_pair.system->txn(0).order();
    KernelRow row;
    row.name = StrCat("reach/order_n", order.NumNodes());
    row.kernel = "reach";
    size_t flat_sink = 0;
    size_t legacy_sink = 0;
    row.flat_ms = TimeMs(reps, [&] {
      flat_sink = 0;
      for (int i = 0; i < kIters; ++i) {
        Reachability r(order, Reachability::Impl::kFlat);
        flat_sink += r.Reaches(0, order.NumNodes() - 1) ? 1 : 0;
      }
    });
    row.legacy_ms = TimeMs(reps, [&] {
      legacy_sink = 0;
      for (int i = 0; i < kIters; ++i) {
        Reachability r(order, Reachability::Impl::kLegacy);
        legacy_sink += r.Reaches(0, order.NumNodes() - 1) ? 1 : 0;
      }
    });
    Reachability flat(order, Reachability::Impl::kFlat);
    Reachability legacy(order, Reachability::Impl::kLegacy);
    bool same = flat_sink == legacy_sink;
    for (NodeId u = 0; u < order.NumNodes() && same; ++u) {
      for (NodeId v = 0; v < order.NumNodes(); ++v) {
        if (flat.Reaches(u, v) != legacy.Reaches(u, v)) {
          same = false;
          break;
        }
      }
    }
    row.identical = same;
    add(std::move(row));
  }

  {
    KernelRow row;
    row.name = StrCat("dominator/two_site_n", n_unsafe);
    row.kernel = "dominator";
    constexpr int64_t kMaxDoms = 1 << 10;
    std::vector<std::vector<NodeId>> flat_doms;
    std::vector<std::vector<NodeId>> legacy_doms;
    row.flat_ms = TimeMs(reps, [&] {
      for (int i = 0; i < kIters; ++i) {
        flat_doms = AllDominatorsFlat(d_unsafe.graph, kMaxDoms);
      }
    });
    row.legacy_ms = TimeMs(reps, [&] {
      for (int i = 0; i < kIters; ++i) {
        legacy_doms = AllDominators(d_unsafe.graph, kMaxDoms);
      }
    });
    row.identical = flat_doms == legacy_doms;
    add(std::move(row));
  }

  {
    auto dom = FindDominator(d_unsafe.graph);
    DISLOCK_CHECK(dom.ok());
    std::vector<EntityId> x_set = d_unsafe.EntitiesOf(dom.value());
    const Transaction& t1 = unsafe_pair.system->txn(0);
    const Transaction& t2 = unsafe_pair.system->txn(1);
    KernelRow row;
    row.name = StrCat("closure/two_site_n", n_unsafe);
    row.kernel = "closure";
    Result<ClosureResult> flat_result = CloseWithRespectToFlat(t1, t2, x_set);
    row.flat_ms = TimeMs(reps, [&] {
      flat_result = CloseWithRespectToFlat(t1, t2, x_set);
    });
    Result<ClosureResult> legacy_result = CloseWithRespectTo(t1, t2, x_set);
    row.legacy_ms = TimeMs(reps, [&] {
      legacy_result = CloseWithRespectTo(t1, t2, x_set);
    });
    row.identical =
        flat_result.ok() == legacy_result.ok() && flat_result.ok() &&
        flat_result.value().precedences_added ==
            legacy_result.value().precedences_added &&
        flat_result.value().iterations == legacy_result.value().iterations &&
        flat_result.value().t1.ToString() ==
            legacy_result.value().t1.ToString() &&
        flat_result.value().t2.ToString() ==
            legacy_result.value().t2.ToString();
    add(std::move(row));
  }

  {
    // Johnson enumeration on the complete conflict graph of dense_k12,
    // capped like the engine caps it.
    Workload dense = MakeDenseSystem(12, 3);
    Digraph g = BuildTransactionConflictGraph(*dense.system);
    constexpr int64_t kMaxCycles = 1 << 14;
    KernelRow row;
    row.name = "cycles/dense_k12";
    row.kernel = "cycles";
    std::vector<std::vector<NodeId>> flat_cycles;
    std::vector<std::vector<NodeId>> legacy_cycles;
    row.flat_ms = TimeMs(reps, [&] {
      flat_cycles = SimpleCyclesFlat(g, kMaxCycles);
    });
    row.legacy_ms = TimeMs(reps, [&] {
      legacy_cycles = SimpleCycles(g, kMaxCycles);
    });
    row.identical = flat_cycles == legacy_cycles;
    add(std::move(row));
  }

  return result;
}

// ---------------------------------------------------------------------------
// --bench=serve: SafetyService throughput + sharded determinism
// (BENCH_serve.json). Drives the in-process service — the exact object
// dislock_serve wraps in a TCP accept loop — with simulated clients, so the
// numbers measure the sequencer + sharded engine, not socket syscalls.
// ---------------------------------------------------------------------------

/// One client's scripted session: a rolling add/remove window over a shared
/// entity ring, with a `check` every kServeCheckEvery commands. The windows
/// of different clients overlap on entities, so the catalog always carries
/// cross-client (and, sharded, cross-shard) conflict pairs.
constexpr int kServeEntities = 64;
constexpr int kServeWindow = 2;       // live txns per client between removes
constexpr int kServeCheckEvery = 32;  // commands between `check`s per client

std::vector<std::vector<std::string>> MakeServeScripts(int clients,
                                                       int commands) {
  std::vector<std::vector<std::string>> scripts(
      static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    std::vector<std::string>& lines = scripts[static_cast<size_t>(c)];
    std::deque<std::string> live;
    for (int j = 0; j < commands; ++j) {
      if (j % kServeCheckEvery == kServeCheckEvery - 1) {
        lines.push_back("check");
      } else if (static_cast<int>(live.size()) >= kServeWindow) {
        lines.push_back(StrCat("remove ", live.front()));
        live.pop_front();
      } else {
        std::string name = StrCat("C", c, "_N", j);
        int e0 = (c * 11 + j * 2) % kServeEntities;
        int e1 = (e0 + 1) % kServeEntities;
        lines.push_back("add");
        lines.push_back(StrCat("txn ", name));
        for (int e : {e0, e1}) {
          lines.push_back(StrCat("  lock e", e));
          lines.push_back(StrCat("  update e", e));
          lines.push_back(StrCat("  unlock e", e));
        }
        lines.push_back("end");
        live.push_back(name);
      }
    }
    lines.push_back("quit");
  }
  return scripts;
}

struct ServeRun {
  int64_t commands = 0;
  int64_t responses = 0;
  int errors = 0;
  int64_t queue_peak = 0;
  double elapsed_ms = 0;
  std::string check_bytes;  // `check` response lines only (shard-invariant)
};

/// Runs the scripts against a fresh service. `concurrent` submits each
/// client from its own thread (the throughput measurement); otherwise lines
/// are fed round-robin from one thread — a fixed global arrival order, so
/// the responses are deterministic and comparable across shard counts.
ServeRun RunServeOnce(const std::vector<std::vector<std::string>>& scripts,
                      const std::string& workload_path, int shards,
                      int threads, bool concurrent) {
  serve::ServiceOptions options;
  options.session.json = true;
  options.session.shards = shards;
  options.session.config.num_threads = threads;
  serve::SafetyService service(options);

  // Load the shared system before any timed client runs: clients race, so
  // none of them can own initialization.
  int64_t setup = service.OpenClient([](const std::string&) {});
  service.Submit(setup, StrCat("load ", workload_path));
  service.CloseClient(setup);
  service.Drain();

  // Responses fire on the single sequencer thread, so per-client appends
  // need no locks.
  std::vector<std::string> outputs(scripts.size());
  std::vector<int64_t> ids;
  ids.reserve(scripts.size());
  for (size_t i = 0; i < scripts.size(); ++i) {
    std::string* sink = &outputs[i];
    ids.push_back(service.OpenClient(
        [sink](const std::string& response) { *sink += response; }));
  }

  auto start = std::chrono::steady_clock::now();
  if (concurrent) {
    std::vector<std::thread> workers;
    workers.reserve(scripts.size());
    for (size_t i = 0; i < scripts.size(); ++i) {
      workers.emplace_back([&, i] {
        for (const std::string& line : scripts[i]) {
          service.Submit(ids[i], line);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  } else {
    for (size_t next = 0, remaining = scripts.size(); remaining > 0;
         ++next) {
      remaining = 0;
      for (size_t i = 0; i < scripts.size(); ++i) {
        if (next < scripts[i].size()) {
          service.Submit(ids[i], scripts[i][next]);
          if (next + 1 < scripts[i].size()) ++remaining;
        }
      }
    }
  }
  service.Drain();
  auto end = std::chrono::steady_clock::now();

  ServeRun run;
  run.elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  run.commands = service.commands() - 1;  // exclude the setup `load`
  run.responses = service.responses();
  run.errors = service.errors();
  run.queue_peak = service.queue_peak();
  for (const std::string& bytes : outputs) {
    std::istringstream lines(bytes);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("\"cmd\": \"check\"") != std::string::npos) {
        run.check_bytes += line;
        run.check_bytes += '\n';
      }
    }
  }
  service.Shutdown();
  return run;
}

// ---------------------------------------------------------------------------
// --bench=cache: the persistent verdict-store trajectory (BENCH_cache.json).
// Each workload is analyzed three ways — store off, cold store (fresh
// directory), warm store (reopened, fresh tier-1 memo) — and the rows
// record the identity check plus the cold-vs-warm pair-check wall time.
// ---------------------------------------------------------------------------

struct CacheBenchRow {
  std::string name;
  int k = 0;
  double off_ms = 0;   ///< no store, fresh engine-owned memo
  double cold_ms = 0;  ///< empty store: all misses, verdicts buffered
  double warm_ms = 0;  ///< reopened store: pair verdicts served from disk
  double cold_pair_wall_ms = 0;  ///< summed pipeline stage wall, cold run
  double warm_pair_wall_ms = 0;  ///< summed pipeline stage wall, warm run
  int64_t records_flushed = 0;
  int64_t records_loaded = 0;
  int64_t disk_hits = 0;
  bool identical = true;    ///< warmth-invariant report bytes match
  bool disk_served = true;  ///< warm run loaded records and hit them
  bool speedup_ok = true;   ///< warm pair wall <= cold / 2 (when measurable)
  bool speedup_measured = false;
};

/// The warmth-invariant projection of a multi report: checked + cached is
/// the total conflicting-pair count however each verdict was obtained, and
/// the pipeline counters only describe the pairs that happened to run —
/// exactly the fields docs/caching.md licenses to vary. Everything else
/// (verdict, failing pair/cycle, cycles_checked) must match byte for byte.
std::string WarmthInvariantJson(MultiSafetyReport report,
                                const TransactionSystem& system) {
  report.pairs_checked += report.pairs_cached;
  report.pairs_cached = 0;
  report.pipeline = PipelineStats();
  report.delta.reset();
  return MultiReportToJson(report, system);
}

double PipelineWallMs(const PipelineStats& stats) {
  double total = 0;
  for (int s = 0; s < kNumDecisionStages; ++s) {
    total += stats.stages[static_cast<size_t>(s)].wall_ms;
  }
  return total;
}

CacheBenchRow RunCacheCase(const std::string& name, const Workload& w,
                           const std::string& dir, int reps) {
  CacheBenchRow row;
  row.name = name;
  const TransactionSystem& system = *w.system;
  row.k = system.NumTransactions();

  // A stale store from an earlier bench run would make the "cold" column a
  // lie; start from an empty directory every time.
  std::remove((dir + "/" + cache::kVerdictLogFileName).c_str());
  std::remove((dir + "/" + cache::kVerdictIndexFileName).c_str());
  std::remove((dir + "/" + cache::kVerdictLockFileName).c_str());

  MultiSafetyOptions opts;
  opts.max_cycles = 1 << 14;

  MultiSafetyReport off_report;
  row.off_ms = TimeMs(reps, [&] {
    off_report = AnalyzeMultiSafety(system, opts);
  });

  // Cold is inherently a single shot: after the first analysis the store's
  // pending buffer is already warm for this process.
  cache::VerdictStore cold_store;
  DISLOCK_CHECK(cold_store.Open(dir));
  opts.store = &cold_store;
  MultiSafetyReport cold_report;
  row.cold_ms = OnceMs([&] { cold_report = AnalyzeMultiSafety(system, opts); });
  row.cold_pair_wall_ms = PipelineWallMs(cold_report.pipeline);
  row.records_flushed = cold_store.Flush();

  // Warm: a new store object (fresh tier-1 memo per analysis, as a new
  // process would have), reading the records the cold run flushed.
  cache::VerdictStore warm_store;
  DISLOCK_CHECK(warm_store.Open(dir));
  opts.store = &warm_store;
  MultiSafetyReport warm_report;
  row.warm_ms = TimeMs(reps, [&] {
    warm_report = AnalyzeMultiSafety(system, opts);
  });
  row.warm_pair_wall_ms = PipelineWallMs(warm_report.pipeline);
  row.records_loaded = warm_store.stats().records_loaded;
  row.disk_hits = warm_store.stats().disk_hits;

  std::string off_json = WarmthInvariantJson(off_report, system);
  row.identical = off_json == WarmthInvariantJson(cold_report, system) &&
                  off_json == WarmthInvariantJson(warm_report, system);
  row.disk_served = row.records_loaded > 0 && row.disk_hits > 0;
  // On an all-safe workload the warm run serves every pair verdict from
  // disk, so zero pipeline stages execute and its pair wall is exactly 0 —
  // the >= 2x bar holds whenever the cold run did any pair work at all.
  row.speedup_measured = row.cold_pair_wall_ms > 0;
  if (row.speedup_measured) {
    row.speedup_ok = row.warm_pair_wall_ms * 2 <= row.cold_pair_wall_ms;
  }
  return row;
}

}  // namespace
}  // namespace dislock

namespace {

int BenchUsage() {
  std::fprintf(stderr,
               "usage: dislock_bench "
               "[--bench=all|multi|kernel|serve|cache|trace]\n"
               "                     [--quick] [--reps N] [--out path]\n"
               "                     [--kernel-slowdown-limit X]\n"
               "%s"
               "  --bench=NAME      which family to run: multi (the parallel\n"
               "                    engine + incremental edit stream), kernel\n"
               "                    (flat-vs-legacy microbenches), serve (the\n"
               "                    concurrent SafetyService), cache (the\n"
               "                    persistent verdict store, cold vs warm),\n"
               "                    trace (replay every registered workload\n"
               "                    family and gate check-report identity\n"
               "                    across the shard/thread grid), or all\n"
               "                    (default)\n"
               "  --kernel-slowdown-limit X\n"
               "                    fail (exit 1) if any kernel row's flat\n"
               "                    time exceeds X * legacy time (default "
               "1.1)\n"
               "                    (--out names the multi table; the other\n"
               "                    BENCH_*.json tables land in its "
               "directory)\n",
               dislock::CommonFlagsHelp(dislock::kThreadsFlag |
                                        dislock::kCacheFlag |
                                        dislock::kObsFlags |
                                        dislock::kClientsFlag |
                                        dislock::kShardsFlag |
                                        dislock::kCacheDirFlag |
                                        dislock::kOutFlag)
                   .c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dislock;
  bool quick = false;
  int reps = 0;     // 0 = pick per mode below
  std::string bench_mode = "all";
  double slowdown_limit = 1.1;
  CommonFlags flags;
  flags.num_threads = 0;  // bench default: one worker per hardware thread
  constexpr unsigned kAccepted = kThreadsFlag | kCacheFlag | kObsFlags |
                                 kClientsFlag | kShardsFlag | kCacheDirFlag |
                                 kOutFlag;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    switch (ParseCommonFlag(argc, argv, i, kAccepted, &flags, &error)) {
      case FlagParse::kConsumedTwo:
        ++i;
        [[fallthrough]];
      case FlagParse::kConsumedOne:
        continue;
      case FlagParse::kError:
        ReportBadFlag("dislock_bench", error);
        return BenchUsage();
      case FlagParse::kNotCommon:
        break;
    }
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--bench=", 8) == 0) {
      bench_mode = argv[i] + 8;
      if (bench_mode != "all" && bench_mode != "multi" &&
          bench_mode != "kernel" && bench_mode != "serve" &&
          bench_mode != "cache" && bench_mode != "trace") {
        ReportBadFlag("dislock_bench",
                      "--bench must be all|multi|kernel|serve|cache|trace");
        return BenchUsage();
      }
    } else if (std::strcmp(argv[i], "--kernel-slowdown-limit") == 0 &&
               i + 1 < argc) {
      slowdown_limit = std::atof(argv[++i]);
    } else {
      ReportUnknownArgument("dislock_bench", argv[i]);
      return BenchUsage();
    }
  }
  const std::string out_path =
      flags.out.empty() ? "BENCH_multi.json" : flags.out;
  const int threads = flags.num_threads;
  const bool engine_cache = flags.cache;
  obs::Observability bundle(flags.trace_path, flags.metrics,
                            flags.metrics_path);
  if (reps <= 0) reps = quick ? 2 : 5;
  const int effective_threads =
      threads <= 0 ? ThreadPool::HardwareThreads() : threads;

  // Honesty note for CI artifacts: when the requested worker count exceeds
  // the machine's hardware threads, the parallel columns measure
  // oversubscription, not scaling. The note travels inside every JSON this
  // tool writes so a baseline can never silently claim a speedup the
  // runner could not have produced.
  std::string ci_note;
  if (effective_threads > ThreadPool::HardwareThreads()) {
    ci_note = StrCat("threads=", effective_threads,
                     " exceeds hardware_threads=",
                     ThreadPool::HardwareThreads(),
                     "; parallel timings measure oversubscription, not "
                     "parallel scaling");
  }
  auto ci_note_json = [&ci_note] {
    return ci_note.empty()
               ? std::string()
               : StrCat(", \"ci_note\": \"", ci_note, "\"");
  };

  bool all_identical = true;
  bool inc_ok = true;
  bool kernel_ok = true;

  if (bench_mode == "all" || bench_mode == "multi") {
  std::vector<BenchCase> cases;
  for (int k : quick ? std::vector<int>{8} : std::vector<int>{8, 12, 16}) {
    cases.push_back({StrCat("ring_k", k), "ring", k, MakeRingSystem(k)});
  }
  for (int k : quick ? std::vector<int>{6} : std::vector<int>{8, 12}) {
    cases.push_back(
        {StrCat("dense_k", k), "dense", k, MakeDenseSystem(k, 3)});
  }

  std::ostringstream json;
  json << "{\"" << wire::kSchemaVersionKey << "\": " << wire::kSchemaVersion
       << ", \"bench\": \"multi_safety_parallel\", \"threads\": "
       << effective_threads
       << ", \"hardware_threads\": " << ThreadPool::HardwareThreads()
       << ci_note_json() << ", \"reps\": " << reps << ", \"quick\": "
       << (quick ? "true" : "false") << ", \"workloads\": [";

  for (size_t c = 0; c < cases.size(); ++c) {
    const BenchCase& bench = cases[c];
    const TransactionSystem& system = *bench.workload.system;
    MultiSafetyOptions serial_opts;
    serial_opts.max_cycles = 1 << 14;
    serial_opts.enable_cache = engine_cache;
    serial_opts.trace = bundle.trace();
    MultiSafetyOptions parallel_opts = serial_opts;
    parallel_opts.num_threads = threads <= 0 ? 0 : threads;

    // Warm up once (faults in the code and builds the transaction
    // reachability memos), then time serial and parallel.
    MultiSafetyReport serial_report = AnalyzeMultiSafety(system, serial_opts);
    double serial_ms = TimeMs(reps, [&] {
      serial_report = AnalyzeMultiSafety(system, serial_opts);
    });
    MultiSafetyReport parallel_report =
        AnalyzeMultiSafety(system, parallel_opts);
    double parallel_ms = TimeMs(reps, [&] {
      parallel_report = AnalyzeMultiSafety(system, parallel_opts);
    });

    std::string serial_json = MultiReportToJson(serial_report, system);
    std::string parallel_json = MultiReportToJson(parallel_report, system);
    bool identical = serial_json == parallel_json;
    all_identical = all_identical && identical;
    // One export per case (the last timed serial report), not per rep.
    ExportMultiReportStats(serial_report, bundle.metrics());

    // Cache trajectory: a fresh cache sees the workload's internal
    // structural redundancy on the first analysis (ring/dense systems are
    // transitive on their pairs), and a second analysis over the same
    // cache is pure hits.
    PairVerdictCache cache;
    MultiSafetyOptions cached_opts = parallel_opts;
    cached_opts.cache = &cache;
    MultiSafetyReport first_cached = AnalyzeMultiSafety(system, cached_opts);
    double cached_ms = TimeMs(reps, [&] {
      AnalyzeMultiSafety(system, cached_opts);
    });
    PairVerdictCache::Stats stats = cache.stats();

    if (c > 0) json << ", ";
    json << "{\"name\": \"" << bench.name << "\", \"kind\": \""
         << bench.kind << "\", \"k\": " << bench.k
         << ", \"verdict\": \"" << SafetyVerdictName(serial_report.verdict)
         << "\", \"pairs_checked\": " << serial_report.pairs_checked
         << ", \"cycles_checked\": " << serial_report.cycles_checked
         << ", \"serial_ms\": " << serial_ms
         << ", \"parallel_ms\": " << parallel_ms
         << ", \"speedup\": "
         << (parallel_ms > 0 ? serial_ms / parallel_ms : 0.0)
         << ", \"reports_identical\": " << (identical ? "true" : "false")
         << ", \"cache\": {\"first_pairs_checked\": "
         << first_cached.pairs_checked
         << ", \"first_pairs_cached\": " << first_cached.pairs_cached
         << ", \"hits\": " << stats.hits
         << ", \"misses\": " << stats.misses
         << ", \"hit_rate\": " << stats.HitRate()
         << ", \"warm_ms\": " << cached_ms
         << "}, \"pipeline\": " << PipelineTimingJson(serial_report.pipeline)
         << "}";

    std::printf(
        "%-10s verdict=%s pairs=%d cycles=%d serial=%.2fms "
        "parallel=%.2fms speedup=%.2fx cache-hit-rate=%.2f %s\n",
        bench.name.c_str(), SafetyVerdictName(serial_report.verdict),
        serial_report.pairs_checked, serial_report.cycles_checked,
        serial_ms, parallel_ms,
        parallel_ms > 0 ? serial_ms / parallel_ms : 0.0, stats.HitRate(),
        identical ? "identical" : "REPORTS DIFFER");
    if (!identical) {
      std::fprintf(stderr, "serial:   %s\nparallel: %s\n",
                   serial_json.c_str(), parallel_json.c_str());
    }
    for (int s = 0; s < kNumDecisionStages; ++s) {
      const StageCounters& sc =
          serial_report.pipeline.stages[static_cast<size_t>(s)];
      if (sc.attempts == 0 && sc.skipped == 0) continue;
      std::printf("    stage %-18s attempts=%lld decided=%lld work=%lld "
                  "wall=%.3fms\n",
                  DecisionStageName(static_cast<DecisionStageId>(s)),
                  static_cast<long long>(sc.attempts),
                  static_cast<long long>(sc.decided),
                  static_cast<long long>(sc.work), sc.wall_ms);
    }
  }
  json << "]}";

  std::ofstream out(out_path);
  out << json.str() << "\n";
  out.close();
  std::printf("wrote %s (threads=%d, hardware=%d)\n", out_path.c_str(),
              effective_threads, ThreadPool::HardwareThreads());

  // ---- Incremental edit-stream trajectory (BENCH_incremental.json,
  // written next to --out). ----
  MultiSafetyOptions inc_opts;
  inc_opts.max_cycles = 1 << 14;
  inc_opts.num_threads = threads <= 0 ? 0 : threads;
  inc_opts.enable_cache = engine_cache;
  inc_opts.trace = bundle.trace();
  const int edits = quick ? 8 : 32;
  std::vector<EditStreamRow> rows;
  rows.push_back(
      RunEditStream("ring_k64", MakeRingSystem(64), edits, inc_opts));
  rows.push_back(
      RunEditStream("dense_k12", MakeDenseSystem(12, 3), edits, inc_opts));

  std::ostringstream inc_json;
  inc_json << "{\"" << wire::kSchemaVersionKey << "\": "
           << wire::kSchemaVersion
           << ", \"bench\": \"incremental_edit_stream\", \"threads\": "
           << effective_threads
           << ", \"hardware_threads\": " << ThreadPool::HardwareThreads()
           << ci_note_json() << ", \"edits\": " << edits << ", \"quick\": "
           << (quick ? "true" : "false") << ", \"workloads\": [";
  for (size_t r = 0; r < rows.size(); ++r) {
    const EditStreamRow& row = rows[r];
    inc_ok = inc_ok && row.bound_ok && row.reports_identical;
    if (r > 0) inc_json << ", ";
    inc_json << "{\"name\": \"" << row.name << "\", \"k\": " << row.k
             << ", \"edits\": " << row.edits
             << ", \"incremental_ms\": " << row.incremental_ms
             << ", \"scratch_ms\": " << row.scratch_ms
             << ", \"speedup\": "
             << (row.incremental_ms > 0 ? row.scratch_ms / row.incremental_ms
                                        : 0.0)
             << ", \"pairs_reused\": " << row.pairs_reused_total
             << ", \"pairs_recomputed\": " << row.pairs_recomputed_total
             << ", \"max_pairs_recomputed\": " << row.max_pairs_recomputed
             << ", \"degree_bound\": " << row.degree_bound
             << ", \"bound_ok\": " << (row.bound_ok ? "true" : "false")
             << ", \"reports_identical\": "
             << (row.reports_identical ? "true" : "false") << "}";
    std::printf(
        "%-10s edits=%d incremental=%.2fms scratch=%.2fms speedup=%.2fx "
        "max-recomputed=%lld (bound %lld) %s %s\n",
        row.name.c_str(), row.edits, row.incremental_ms, row.scratch_ms,
        row.incremental_ms > 0 ? row.scratch_ms / row.incremental_ms : 0.0,
        static_cast<long long>(row.max_pairs_recomputed),
        static_cast<long long>(row.degree_bound),
        row.bound_ok ? "bound-ok" : "BOUND EXCEEDED",
        row.reports_identical ? "identical" : "REPORTS DIFFER");
  }
  inc_json << "]}";

  std::string inc_path = "BENCH_incremental.json";
  {
    std::string out_str(out_path);
    size_t slash = out_str.rfind('/');
    if (slash != std::string::npos) {
      inc_path = out_str.substr(0, slash + 1) + inc_path;
    }
  }
  std::ofstream inc_out(inc_path);
  inc_out << inc_json.str() << "\n";
  inc_out.close();
  std::printf("wrote %s\n", inc_path.c_str());
  }  // multi

  if (bench_mode == "all" || bench_mode == "kernel") {
    KernelBenchResult kb = RunKernelBench(quick, reps);
    kernel_ok = kb.all_identical && kb.max_slowdown <= slowdown_limit;
    std::ostringstream kj;
    kj << "{\"" << wire::kSchemaVersionKey << "\": " << wire::kSchemaVersion
       << ", \"bench\": \"flat_kernel\", \"threads\": 1"
       << ", \"hardware_threads\": " << ThreadPool::HardwareThreads()
       // No ci_note here: every kernel row is timed serially, so the
       // oversubscription caveat for --threads never applies to this file.
       << ", \"reps\": " << reps << ", \"quick\": "
       << (quick ? "true" : "false")
       << ", \"slowdown_limit\": " << slowdown_limit << ", \"workloads\": [";
    for (size_t r = 0; r < kb.rows.size(); ++r) {
      const KernelRow& row = kb.rows[r];
      if (r > 0) kj << ", ";
      kj << "{\"name\": \"" << row.name << "\", \"kernel\": \"" << row.kernel
         << "\", \"flat_ms\": " << row.flat_ms
         << ", \"legacy_ms\": " << row.legacy_ms
         << ", \"speedup\": " << row.Speedup()
         << ", \"reports_identical\": "
         << (row.identical ? "true" : "false") << "}";
    }
    kj << "], \"all_identical\": " << (kb.all_identical ? "true" : "false")
       << ", \"max_slowdown\": " << kb.max_slowdown
       << ", \"ok\": " << (kernel_ok ? "true" : "false") << "}";

    std::string kernel_path = "BENCH_kernel.json";
    {
      std::string out_str(out_path);
      size_t slash = out_str.rfind('/');
      if (slash != std::string::npos) {
        kernel_path = out_str.substr(0, slash + 1) + kernel_path;
      }
    }
    std::ofstream kernel_out(kernel_path);
    kernel_out << kj.str() << "\n";
    kernel_out.close();
    std::printf("wrote %s (%s, max_slowdown=%.3f, limit=%.2f)\n",
                kernel_path.c_str(), kernel_ok ? "ok" : "FAILED",
                kb.max_slowdown, slowdown_limit);
  }

  bool serve_ok = true;
  if (bench_mode == "all" || bench_mode == "serve") {
    const int clients = flags.clients > 0 ? flags.clients : 100;
    const int shards =
        flags.shards > 1
            ? flags.shards
            : std::max(2, std::min(4, ThreadPool::HardwareThreads()));
    const int commands_per_client = quick ? 32 : 96;

    // The shared system the clients edit: the entity ring the scripts lock
    // into, plus one seed transaction.
    std::string workload_path = "BENCH_serve_workload.dlk";
    {
      std::string out_str(out_path);
      size_t slash = out_str.rfind('/');
      if (slash != std::string::npos) {
        workload_path = out_str.substr(0, slash + 1) + workload_path;
      }
      std::ofstream w(workload_path);
      w << "# generated by dislock_bench --bench=serve\nsites 2\n";
      for (int e = 0; e < kServeEntities; ++e) {
        w << "entity e" << e << " " << e % 2 << "\n";
      }
      w << "\ntxn Seed\n  lock e0\n  update e0\n  unlock e0\nend\n";
      w.close();
      if (!w) {
        // A silently missing workload would surface later as a baffling
        // determinism failure (every client's load fails).
        std::fprintf(stderr, "cannot write %s (does the --out directory "
                     "exist?)\n", workload_path.c_str());
        return 1;
      }
    }

    // Determinism: the same scripts in a fixed global arrival order must
    // produce byte-identical `check` reports at 1 shard and K shards, at
    // 1 and 4 engine threads. (Full responses differ only in `add` ids —
    // shard-lane allocation — which the protocol documents.)
    auto scripts = MakeServeScripts(std::min(clients, 8),
                                    commands_per_client);
    ServeRun base = RunServeOnce(scripts, workload_path, 1, 1, false);
    bool identical = base.errors == 0;
    for (int s : {1, shards}) {
      for (int t : {1, 4}) {
        if (s == 1 && t == 1) continue;
        ServeRun run = RunServeOnce(scripts, workload_path, s, t, false);
        if (run.check_bytes != base.check_bytes || run.errors != 0) {
          identical = false;
          std::fprintf(stderr,
                       "serve determinism FAILED at shards=%d threads=%d "
                       "(errors=%d)\n",
                       s, t, run.errors);
        }
      }
    }

    // Throughput: every client submits from its own thread.
    auto load = MakeServeScripts(clients, commands_per_client);
    ServeRun one = RunServeOnce(load, workload_path, 1, 1, true);
    ServeRun sharded =
        RunServeOnce(load, workload_path, shards, effective_threads, true);
    auto rate = [](const ServeRun& r) {
      return r.elapsed_ms > 0 ? 1000.0 * static_cast<double>(r.commands) /
                                    r.elapsed_ms
                              : 0.0;
    };
    serve_ok = identical && one.errors == 0 && sharded.errors == 0;

    std::ostringstream sj;
    sj << "{\"" << wire::kSchemaVersionKey << "\": " << wire::kSchemaVersion
       << ", \"bench\": \"serve_throughput\", \"clients\": " << clients
       << ", \"shards\": " << shards
       << ", \"threads\": " << effective_threads
       << ", \"hardware_threads\": " << ThreadPool::HardwareThreads()
       << ci_note_json()
       << ", \"commands_per_client\": " << commands_per_client
       << ", \"quick\": " << (quick ? "true" : "false") << ", \"runs\": ["
       << "{\"name\": \"1shard\", \"shards\": 1, \"commands\": "
       << one.commands << ", \"elapsed_ms\": " << one.elapsed_ms
       << ", \"commands_per_sec\": " << rate(one)
       << ", \"queue_peak\": " << one.queue_peak
       << ", \"errors\": " << one.errors << "}, "
       << "{\"name\": \"sharded\", \"shards\": " << shards
       << ", \"commands\": " << sharded.commands
       << ", \"elapsed_ms\": " << sharded.elapsed_ms
       << ", \"commands_per_sec\": " << rate(sharded)
       << ", \"queue_peak\": " << sharded.queue_peak
       << ", \"errors\": " << sharded.errors << "}]"
       << ", \"checks_identical\": " << (identical ? "true" : "false")
       << ", \"ok\": " << (serve_ok ? "true" : "false") << "}";

    std::string serve_path = "BENCH_serve.json";
    {
      std::string out_str(out_path);
      size_t slash = out_str.rfind('/');
      if (slash != std::string::npos) {
        serve_path = out_str.substr(0, slash + 1) + serve_path;
      }
    }
    std::ofstream serve_out(serve_path);
    serve_out << sj.str() << "\n";
    serve_out.close();
    std::printf(
        "serve      clients=%d 1shard=%.0f cmd/s sharded(%d)=%.0f cmd/s "
        "queue-peak=%lld %s\n",
        clients, rate(one), shards, rate(sharded),
        static_cast<long long>(sharded.queue_peak),
        identical ? "checks-identical" : "CHECKS DIFFER");
    std::printf("wrote %s (%s)\n", serve_path.c_str(),
                serve_ok ? "ok" : "FAILED");
  }

  bool cache_ok = true;
  if (bench_mode == "all" || bench_mode == "cache") {
    // Store directory: --cache-dir / DISLOCK_CACHE_DIR when given, else a
    // scratch directory next to --out. Either way each case starts it
    // empty, so the cold column really is cold.
    std::string store_dir = EffectiveCacheDir(flags);
    if (store_dir.empty()) {
      store_dir = "BENCH_cache_store";
      std::string out_str(out_path);
      size_t slash = out_str.rfind('/');
      if (slash != std::string::npos) {
        store_dir = out_str.substr(0, slash + 1) + store_dir;
      }
    }

    Rng cache_rng(7);
    const int n_pair = quick ? 48 : 96;
    std::vector<std::pair<std::string, Workload>> cache_cases;
    cache_cases.emplace_back("dense_k12", MakeDenseSystem(12, 3));
    cache_cases.emplace_back(
        StrCat("two_site_n", n_pair),
        MakeTwoSiteScalingPair(n_pair, /*safe=*/true, &cache_rng));
    cache_cases.emplace_back("ring_k16", MakeRingSystem(16));

    std::ostringstream cj;
    cj << "{\"" << wire::kSchemaVersionKey << "\": " << wire::kSchemaVersion
       << ", \"bench\": \"verdict_store\", \""
       << wire::kCacheFileGeneration
       << "\": " << cache::kVerdictStoreGeneration
       << ", \"hardware_threads\": " << ThreadPool::HardwareThreads()
       << ", \"reps\": " << reps << ", \"quick\": "
       << (quick ? "true" : "false") << ", \"workloads\": [";
    for (size_t c = 0; c < cache_cases.size(); ++c) {
      CacheBenchRow row =
          RunCacheCase(cache_cases[c].first, cache_cases[c].second,
                       store_dir, reps);
      cache_ok = cache_ok && row.identical && row.disk_served &&
                 row.speedup_ok;
      if (c > 0) cj << ", ";
      cj << "{\"name\": \"" << row.name << "\", \"k\": " << row.k
         << ", \"off_ms\": " << row.off_ms
         << ", \"cold_ms\": " << row.cold_ms
         << ", \"warm_ms\": " << row.warm_ms
         << ", \"cold_pair_wall_ms\": " << row.cold_pair_wall_ms
         << ", \"warm_pair_wall_ms\": " << row.warm_pair_wall_ms
         << ", \"pair_wall_speedup\": "
         << (row.warm_pair_wall_ms > 0
                 ? row.cold_pair_wall_ms / row.warm_pair_wall_ms
                 : 0.0)
         << ", \"" << wire::kRecordsFlushed
         << "\": " << row.records_flushed << ", \"" << wire::kRecordsLoaded
         << "\": " << row.records_loaded << ", \"" << wire::kDiskHits
         << "\": " << row.disk_hits
         << ", \"reports_identical\": " << (row.identical ? "true" : "false")
         << ", \"disk_served\": " << (row.disk_served ? "true" : "false")
         << ", \"speedup_measured\": "
         << (row.speedup_measured ? "true" : "false")
         << ", \"speedup_ok\": " << (row.speedup_ok ? "true" : "false")
         << "}";
      std::printf(
          "%-14s off=%.2fms cold=%.2fms warm=%.2fms pair-wall "
          "cold=%.3fms warm=%.3fms disk_hits=%lld %s %s %s\n",
          row.name.c_str(), row.off_ms, row.cold_ms, row.warm_ms,
          row.cold_pair_wall_ms, row.warm_pair_wall_ms,
          static_cast<long long>(row.disk_hits),
          row.identical ? "identical" : "REPORTS DIFFER",
          row.disk_served ? "disk-served" : "NOT DISK-SERVED",
          row.speedup_measured
              ? (row.speedup_ok ? "speedup-ok" : "SPEEDUP BELOW 2x")
              : "speedup-unmeasured (cold wall below floor)");
    }
    cj << "], \"ok\": " << (cache_ok ? "true" : "false") << "}";

    std::string cache_path = "BENCH_cache.json";
    {
      std::string out_str(out_path);
      size_t slash = out_str.rfind('/');
      if (slash != std::string::npos) {
        cache_path = out_str.substr(0, slash + 1) + cache_path;
      }
    }
    std::ofstream cache_out(cache_path);
    cache_out << cj.str() << "\n";
    cache_out.close();
    std::printf("wrote %s (%s)\n", cache_path.c_str(),
                cache_ok ? "ok" : "FAILED");
  }

  bool trace_ok = true;
  if (bench_mode == "all" || bench_mode == "trace") {
    // --bench=trace: the replay byte-identity gate, run as a bench family
    // so CI publishes it (BENCH_trace.json). Every registered workload
    // family is generated at its defaults, timed through the direct
    // SessionCore replay, then verified: check reports from the serve
    // sequencer at {1,4} shards x {1,4} threads must be byte-identical to
    // the direct replay. A DIVERGED cell is a determinism bug, not a
    // performance regression.
    std::ostringstream tj;
    tj << "{\"" << wire::kSchemaVersionKey << "\": " << wire::kSchemaVersion
       << ", \"bench\": \"trace_replay\", \"trace_version\": "
       << gen::kTraceVersion << ", \"seed\": " << gen::kDefaultSeed
       << ", \"hardware_threads\": " << ThreadPool::HardwareThreads()
       << ", \"reps\": " << reps << ", \"quick\": "
       << (quick ? "true" : "false") << ", \"families\": [";
    bool first = true;
    for (const std::string& family : gen::RegisteredFamilies()) {
      auto trace = gen::GenerateTrace(family);
      DISLOCK_CHECK(trace.ok());
      gen::ReplayOptions replay_opts;
      gen::ReplayResult direct = gen::ReplayDirect(*trace, replay_opts);
      double direct_ms = TimeMs(reps, [&] {
        direct = gen::ReplayDirect(*trace, replay_opts);
      });
      gen::VerifyResult verify = gen::VerifyReplay(*trace);
      const bool row_ok = verify.ok && direct.errors == 0;
      trace_ok = trace_ok && row_ok;
      if (!first) tj << ", ";
      first = false;
      tj << "{\"name\": \"" << family
         << "\", \"records\": " << trace->header.records
         << ", \"checks\": " << direct.checks
         << ", \"direct_ms\": " << direct_ms << ", \"cells\": [";
      for (size_t i = 0; i < verify.cells.size(); ++i) {
        const gen::VerifyCell& cell = verify.cells[i];
        if (i > 0) tj << ", ";
        tj << "{\"shards\": " << cell.shards
           << ", \"threads\": " << cell.threads << ", \"identical\": "
           << (cell.identical ? "true" : "false")
           << ", \"errors\": " << cell.errors << "}";
      }
      tj << "], \"ok\": " << (row_ok ? "true" : "false") << "}";
      std::printf("trace/%-11s records=%lld checks=%lld direct=%.2fms %s\n",
                  family.c_str(),
                  static_cast<long long>(trace->header.records),
                  static_cast<long long>(direct.checks), direct_ms,
                  row_ok ? "grid-identical" : "GRID DIVERGED");
    }
    tj << "], \"ok\": " << (trace_ok ? "true" : "false") << "}";

    std::string trace_path = "BENCH_trace.json";
    {
      size_t slash = out_path.rfind('/');
      if (slash != std::string::npos) {
        trace_path = out_path.substr(0, slash + 1) + trace_path;
      }
    }
    std::ofstream trace_out(trace_path);
    trace_out << tj.str() << "\n";
    trace_out.close();
    std::printf("wrote %s (%s)\n", trace_path.c_str(),
                trace_ok ? "ok" : "FAILED");
  }

  std::string obs_error;
  if (!bundle.Flush(&obs_error)) {
    std::fprintf(stderr, "%s\n", obs_error.c_str());
  }

  // Determinism is the contract; a differing report is a bug regardless of
  // the measured speedup. The kernel family additionally gates on the
  // flat-vs-legacy slowdown limit; the serve family gates on sharded
  // check-report identity and an error-free run; the cache family gates on
  // warmth-invariant reports, verdicts actually served from disk, and the
  // warm pair-wall speedup (when the cold wall cleared the noise floor);
  // the trace family gates on grid-wide check-report byte identity.
  return all_identical && inc_ok && kernel_ok && serve_ok && cache_ok &&
                 trace_ok
             ? 0
             : 1;
}
