// Differential stress harness: generates random workloads from a seed and
// cross-checks every decision path against the oracles, printing a summary.
// Exits non-zero on the first disagreement (making it usable as a fuzzing
// target or a long-running soak test).
//
//   dislock_stress [trials] [seed] [--threads N] [--cache]
//                  [--cache-dir=PATH] [--trace=FILE] [--metrics[=FILE]]
//
// --threads feeds EngineConfig::num_threads (1 = serial, 0 = hardware);
// --cache turns on the engine-owned pair-verdict cache inside the audited
// analyses; --cache-dir attaches a persistent verdict store to the
// harness's own cross-trial cache, so the audit also covers verdicts that
// survived from earlier processes. None of them may change any verdict —
// that is part of what the harness checks. --trace/--metrics opt into the
// obs/ subsystem; they never change verdicts either.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dislock.h"

using namespace dislock;

namespace {

struct Tally {
  int64_t trials = 0;
  int64_t safe = 0;
  int64_t unsafe_ = 0;
  int64_t unknown = 0;
  int64_t oracle_checked = 0;
  int64_t certificates = 0;
  int64_t deadlock_free = 0;
  int64_t deadlocking = 0;
  int64_t diagnostics = 0;
  int64_t audits = 0;
  int64_t verdict_cache_audits = 0;
  int64_t parallel_equivalence_checks = 0;
};

int Fail(const char* what, const Workload& w) {
  std::fprintf(stderr, "DISAGREEMENT: %s\n%s", what,
               w.system->ToString().c_str());
  std::fprintf(stderr, "repro (text format):\n%s",
               SystemToText(*w.system).c_str());
  return 1;
}

}  // namespace

int Usage() {
  std::fprintf(stderr,
               "usage: dislock_stress [trials] [seed]\n%s",
               CommonFlagsHelp(kThreadsFlag | kCacheFlag | kObsFlags |
                               kCacheDirFlag)
                   .c_str());
  return 2;
}

int main(int argc, char** argv) {
  int64_t trials = 500;
  uint64_t seed = 0xD15C0;
  CommonFlags flags;
  int positional = 0;
  constexpr unsigned kAccepted =
      kThreadsFlag | kCacheFlag | kObsFlags | kCacheDirFlag;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    switch (ParseCommonFlag(argc, argv, i, kAccepted, &flags, &error)) {
      case FlagParse::kConsumedTwo:
        ++i;
        [[fallthrough]];
      case FlagParse::kConsumedOne:
        continue;
      case FlagParse::kError:
        ReportBadFlag("dislock_stress", error);
        return Usage();
      case FlagParse::kNotCommon:
        break;
    }
    if (argv[i][0] != '-' && positional == 0) {
      trials = std::atoll(argv[i]);
      ++positional;
    } else if (argv[i][0] != '-' && positional == 1) {
      seed = std::strtoull(argv[i], nullptr, 10);
      ++positional;
    } else {
      ReportUnknownArgument("dislock_stress", argv[i]);
      return Usage();
    }
  }
  const int num_threads = flags.num_threads;
  const bool engine_cache = flags.cache;
  obs::Observability bundle(flags.trace_path, flags.metrics,
                            flags.metrics_path);
  Rng rng(seed);
  Tally tally;
  // Persists across all trials: a cached verdict must match the verdict the
  // full procedure recomputes on every structurally identical later pair.
  // With --cache-dir the cache is additionally backed by the persistent
  // store, so the same audit covers verdicts written by earlier runs.
  PairVerdictCache verdict_cache;
  cache::VerdictStore store;
  const std::string cache_dir = EffectiveCacheDir(flags);
  if (!cache_dir.empty()) {
    std::string store_error;
    if (store.Open(cache_dir, &store_error)) {
      verdict_cache.set_store(&store);
    } else {
      std::fprintf(stderr,
                   "dislock_stress: cannot open cache dir %s (%s); "
                   "continuing without a persistent cache\n",
                   cache_dir.c_str(), store_error.c_str());
    }
  }

  for (int64_t trial = 0; trial < trials; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + static_cast<int>(rng.Uniform(4));
    params.num_entities = 2 + static_cast<int>(rng.Uniform(3));
    params.num_transactions = 2;
    params.lock_probability = 0.6 + 0.4 * rng.UniformDouble();
    params.update_probability = 1.0;
    params.shared_probability = rng.Bernoulli(0.3) ? 0.4 : 0.0;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(3));
    Workload w = MakeRandomWorkload(params, &rng);
    if (!w.system->Validate().ok()) return Fail("generator invalid", w);
    ++tally.trials;

    SafetyOptions options;
    options.max_extension_pairs = 1 << 15;
    options.num_threads = num_threads;
    options.enable_cache = engine_cache;
    options.trace = bundle.trace();
    options.stats = bundle.metrics();
    PairSafetyReport report =
        AnalyzePairSafety(w.system->txn(0), w.system->txn(1), options);
    // This trial's top-level pair analysis is owned by the harness, so the
    // harness exports it (no-op when --metrics is off).
    ExportPairReportStats(report, bundle.metrics());
    switch (report.verdict) {
      case SafetyVerdict::kSafe:
        ++tally.safe;
        break;
      case SafetyVerdict::kUnsafe:
        ++tally.unsafe_;
        break;
      case SafetyVerdict::kUnknown:
        ++tally.unknown;
        break;
    }

    // Verdict-cache audit: the fingerprint promises that structurally
    // identical pairs get identical verdicts, so a hit from ANY earlier
    // trial must agree with the verdict just recomputed from scratch.
    {
      std::string fp =
          PairFingerprint(w.system->txn(0), w.system->txn(1));
      auto cached = verdict_cache.Lookup(fp);
      if (cached.has_value()) {
        if (cached->verdict != report.verdict ||
            cached->sites_spanned != report.sites_spanned) {
          return Fail("verdict cache vs recomputed pair verdict", w);
        }
        ++tally.verdict_cache_audits;
      }
      verdict_cache.Insert(fp, report);
    }

    // Certificates must verify and replay.
    if (report.certificate.has_value()) {
      ++tally.certificates;
      if (!VerifyUnsafetyCertificate(w.system->txn(0), w.system->txn(1),
                                     *report.certificate)
               .ok()) {
        return Fail("certificate failed verification", w);
      }
      if (!CheckScheduleLegal(*w.system, report.certificate->schedule)
               .ok() ||
          IsSerializable(*w.system, report.certificate->schedule)) {
        return Fail("certificate schedule does not replay", w);
      }
    }

    // Static-analyzer audit: the full pass pipeline must agree with the
    // decision procedures, and every diagnostic certificate must replay.
    {
      AnalysisOptions analysis_options = options;
      AnalysisResult analysis = AnalyzeSystem(*w.system, analysis_options);
      tally.diagnostics += static_cast<int64_t>(analysis.diagnostics.size());
      Status audit = AuditAnalysis(*w.system, analysis, analysis_options);
      if (!audit.ok()) {
        std::fprintf(stderr, "analyzer audit: %s\n",
                     audit.ToString().c_str());
        return Fail("static analyzer vs decision procedures", w);
      }
      ++tally.audits;
    }

    // Exhaustive oracle (when affordable) must agree.
    auto oracle =
        ExhaustivePairSafety(w.system->txn(0), w.system->txn(1), 1 << 15);
    if (oracle.ok() && report.verdict != SafetyVerdict::kUnknown) {
      ++tally.oracle_checked;
      if ((report.verdict == SafetyVerdict::kSafe) != oracle->safe) {
        return Fail("analyzer vs Lemma-1 oracle", w);
      }
    }

    // Monte-Carlo must not contradict a safe verdict.
    if (report.verdict == SafetyVerdict::kSafe) {
      MonteCarloStats stats = SampleSafety(*w.system, 200, &rng,
                                           /*keep_going=*/true);
      if (stats.non_serializable != 0) {
        return Fail("sampler found witness for safe system", w);
      }
    }

    // Deadlock search vs simulation.
    auto deadlock = AnalyzeDeadlockFreedom(*w.system, 1 << 16);
    if (deadlock.ok()) {
      if (deadlock->deadlock_free) {
        ++tally.deadlock_free;
        for (int r = 0; r < 100; ++r) {
          if (SimulateRun(*w.system, &rng).deadlocked) {
            return Fail("simulator deadlocked a deadlock-free system", w);
          }
        }
      } else {
        ++tally.deadlocking;
      }
      // Recovery must always commit something legal.
      RecoveryRunResult run = SimulateRunWithRecovery(*w.system, &rng);
      if (!run.gave_up &&
          !CheckScheduleLegal(*w.system, *run.schedule).ok()) {
        return Fail("recovery committed an illegal schedule", w);
      }
    }

    // Parallel-engine equivalence: on a periodic multi-transaction
    // workload, AnalyzeMultiSafety must render bit-identical JSON serial
    // vs parallel — both bare and with (separate, fresh) verdict caches,
    // whose deterministic insert order makes even pairs_cached match.
    if (trial % 16 == 0) {
      WorkloadParams multi_params = params;
      multi_params.num_transactions = 4;
      Workload mw = MakeRandomWorkload(multi_params, &rng);
      if (!mw.system->Validate().ok()) {
        return Fail("generator invalid (multi)", mw);
      }
      MultiSafetyOptions serial_opts = options;
      serial_opts.max_cycles = 1 << 10;
      serial_opts.num_threads = 1;
      serial_opts.enable_cache = false;
      MultiSafetyOptions parallel_opts = serial_opts;
      parallel_opts.num_threads = 4;
      PairVerdictCache serial_cache;
      PairVerdictCache parallel_cache;
      std::string serial_json = MultiReportToJson(
          AnalyzeMultiSafety(*mw.system, serial_opts), *mw.system);
      std::string parallel_json = MultiReportToJson(
          AnalyzeMultiSafety(*mw.system, parallel_opts), *mw.system);
      if (serial_json != parallel_json) {
        std::fprintf(stderr, "serial:   %s\nparallel: %s\n",
                     serial_json.c_str(), parallel_json.c_str());
        return Fail("parallel multi-safety != serial", mw);
      }
      serial_opts.cache = &serial_cache;
      parallel_opts.cache = &parallel_cache;
      serial_json = MultiReportToJson(
          AnalyzeMultiSafety(*mw.system, serial_opts), *mw.system);
      parallel_json = MultiReportToJson(
          AnalyzeMultiSafety(*mw.system, parallel_opts), *mw.system);
      if (serial_json != parallel_json) {
        std::fprintf(stderr, "serial:   %s\nparallel: %s\n",
                     serial_json.c_str(), parallel_json.c_str());
        return Fail("parallel multi-safety != serial (cached)", mw);
      }
      ++tally.parallel_equivalence_checks;
    }
  }

  std::printf(
      "stress: %lld trials (seed %llu)\n"
      "  verdicts: %lld safe, %lld unsafe, %lld unknown\n"
      "  oracle-cross-checked: %lld, certificates verified: %lld\n"
      "  analyzer audits passed: %lld (%lld diagnostics)\n"
      "  deadlock-free: %lld, deadlocking: %lld\n"
      "  verdict-cache audits: %lld (%lld entries, %.0f%% hit rate)\n"
      "  serial/parallel equivalence checks: %lld\n"
      "all decision paths agree.\n",
      static_cast<long long>(tally.trials),
      static_cast<unsigned long long>(seed),
      static_cast<long long>(tally.safe),
      static_cast<long long>(tally.unsafe_),
      static_cast<long long>(tally.unknown),
      static_cast<long long>(tally.oracle_checked),
      static_cast<long long>(tally.certificates),
      static_cast<long long>(tally.audits),
      static_cast<long long>(tally.diagnostics),
      static_cast<long long>(tally.deadlock_free),
      static_cast<long long>(tally.deadlocking),
      static_cast<long long>(tally.verdict_cache_audits),
      static_cast<long long>(verdict_cache.size()),
      100.0 * verdict_cache.stats().HitRate(),
      static_cast<long long>(tally.parallel_equivalence_checks));
  ExportCacheStats(verdict_cache, bundle.metrics());
  if (store.is_open()) {
    store.Flush();
    ExportStoreStats(store, bundle.metrics());
  }
  std::string obs_error;
  if (!bundle.Flush(&obs_error)) {
    std::fprintf(stderr, "%s\n", obs_error.c_str());
  }
  return 0;
}
