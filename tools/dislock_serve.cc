// dislock_serve — the session protocol as a long-lived, sharded service.
//
//   dislock_serve [--port N] [--shards K] [--threads N] [--cache]
//                 [--cache-dir=PATH] [--load-root DIR] [--trace=FILE]
//                 [--metrics[=FILE]]
//     Listen on 127.0.0.1:N (default 4400; 0 = ephemeral, announced on
//     startup as "dislock_serve: listening on 127.0.0.1:PORT") and serve
//     the JSON-lines session protocol to any number of concurrent
//     clients. A client's `shutdown` command stops the server; `quit`
//     closes just that client.
//
//   dislock_serve --client HOST:PORT [script.dls]
//     Scripted client: send every line of the script (stdin when
//     omitted), print every response, exit when the server closes the
//     connection. CI diffs this output against session goldens.
//
// The wire protocol is exactly `dislock session --json`: one JSON object
// per response line, same keys, same bytes — a served trace is diffable
// against the REPL goldens, at any --shards value.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/analyzer.h"
#include "cache/verdict_store.h"
#include "core/stats_export.h"
#include "obs/observability.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/flags.h"
#include "util/thread_pool.h"

namespace dislock {
namespace {

void FlushObservability(const obs::Observability& bundle) {
  std::string error;
  if (!bundle.Flush(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
  }
}

int Usage() {
  std::string help = CommonFlagsHelp(kThreadsFlag | kCacheFlag | kObsFlags |
                                     kPortFlag | kShardsFlag | kCacheDirFlag);
  std::fprintf(stderr,
               "usage: dislock_serve [--port N] [--shards K] [--threads N]\n"
               "                     [--cache] [--cache-dir=PATH]\n"
               "                     [--load-root DIR]\n"
               "                     [--trace=FILE] [--metrics[=FILE]]\n"
               "         (serve the JSON-lines session protocol on\n"
               "          127.0.0.1; a client's `shutdown` command stops\n"
               "          the server, `quit` closes one client)\n"
               "       dislock_serve --client HOST:PORT [script.dls]\n"
               "         (send the script — stdin when omitted — and print\n"
               "          every response until the server closes)\n"
               "%s",
               help.c_str());
  return 2;
}

bool SplitHostPort(const std::string& spec, std::string* host, int* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  *port = std::atoi(spec.c_str() + colon + 1);
  return *port > 0 && *port <= 65535;
}

int Main(int argc, char** argv) {
  CommonFlags common;
  std::string load_root;
  const char* client_spec = nullptr;
  const char* script = nullptr;
  constexpr unsigned kAccepted = kThreadsFlag | kCacheFlag | kObsFlags |
                                 kPortFlag | kShardsFlag | kCacheDirFlag;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    switch (ParseCommonFlag(argc, argv, i, kAccepted, &common, &error)) {
      case FlagParse::kConsumedTwo:
        ++i;
        [[fallthrough]];
      case FlagParse::kConsumedOne:
        continue;
      case FlagParse::kError:
        ReportBadFlag("dislock_serve", error);
        return 2;
      case FlagParse::kNotCommon:
        break;
    }
    if (std::strcmp(argv[i], "--client") == 0 && i + 1 < argc) {
      client_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--load-root") == 0 && i + 1 < argc) {
      load_root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return Usage();
    } else if (argv[i][0] != '-' && script == nullptr) {
      script = argv[i];
    } else {
      ReportUnknownArgument("dislock_serve", argv[i]);
      return Usage();
    }
  }

  if (client_spec != nullptr) {
    std::string host;
    int port = 0;
    if (!SplitHostPort(client_spec, &host, &port)) {
      ReportBadFlag("dislock_serve", "--client requires HOST:PORT");
      return 2;
    }
    if (script != nullptr) {
      std::ifstream file(script);
      if (!file) {
        std::fprintf(stderr, "dislock_serve: cannot open %s\n", script);
        return 1;
      }
      return serve::RunClientTrace(host, port, file, std::cout, std::cerr);
    }
    return serve::RunClientTrace(host, port, std::cin, std::cout, std::cerr);
  }

  if (script != nullptr) {
    ReportUnknownArgument("dislock_serve", script);
    return Usage();
  }
  if (common.port < 0 || common.port > 65535) {
    ReportBadFlag("dislock_serve", "--port requires 0..65535");
    return 2;
  }
  if (common.shards < 0) {
    ReportBadFlag("dislock_serve", "--shards requires K >= 0");
    return 2;
  }

  obs::Observability bundle(common.trace_path, common.metrics,
                            common.metrics_path);
  // One persistent store for the whole fleet: the coordinator opens it and
  // every per-shard engine borrows the same pointer through the copied
  // config, so shards share warm verdicts and their new verdicts land in
  // one pending buffer, flushed once at shutdown.
  cache::VerdictStore store;
  const std::string cache_dir = EffectiveCacheDir(common);
  if (!cache_dir.empty()) {
    std::string error;
    if (!store.Open(cache_dir, &error)) {
      std::fprintf(stderr,
                   "dislock_serve: cannot open cache dir %s (%s); "
                   "continuing without a persistent cache\n",
                   cache_dir.c_str(), error.c_str());
    }
  }
  serve::ServiceOptions options;
  options.session.json = true;
  options.session.load_root = load_root;
  // --shards 0: one shard per hardware thread, mirroring --threads 0.
  options.session.shards =
      common.shards == 0 ? ThreadPool::HardwareThreads() : common.shards;
  options.session.config.num_threads = common.num_threads;
  options.session.config.enable_cache = common.cache;
  options.session.config.store = store.is_open() ? &store : nullptr;
  options.session.config.trace = bundle.trace();
  options.session.config.stats = bundle.metrics();
  options.session.analyze = MakeSessionAnalyzer();

  serve::SafetyService service(options);
  serve::ServerOptions server;
  server.port = common.port;
  int rc = serve::RunServer(&service, server, std::cerr);
  if (store.is_open()) {
    store.Flush();
    ExportStoreStats(store, bundle.metrics());
  }
  if (bundle.metrics() != nullptr) service.ExportStats(bundle.metrics());
  FlushObservability(bundle);
  return rc;
}

}  // namespace
}  // namespace dislock

int main(int argc, char** argv) { return dislock::Main(argc, argv); }
