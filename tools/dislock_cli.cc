// The dislock command-line analyzer.
//
//   dislock analyze <system.dlk> [--json|--sarif] [--passes a,b] [--no-deadlock]
//                                   multi-pass static analysis: per-rule
//                                   diagnostics (DL001-DL206) + deadlock;
//                                   --repair adds verified repair synthesis
//   dislock fix <system.dlk> [--dry-run] [--json]
//                                   apply the cheapest verified repair in
//                                   place (--dry-run prints it instead)
//   dislock rules [--json|--markdown]
//                                   print the analyzer rule catalog
//   dislock passes                  list the registered analysis passes
//   dislock simulate <system.dlk> [runs]
//                                   Monte-Carlo execution statistics
//   dislock reduce <formula.cnf>    Theorem 3: decide SAT via locking safety
//   dislock session [script] [--json] [--threads N] [--cache]
//                                   interactive / scripted incremental
//                                   re-analysis (load/add/remove/replace/
//                                   check/analyze) backed by the delta engine
//   dislock gen <family> [--param k=16] [--seed N] [--out=FILE]
//                                   emit a deterministic .dlt workload trace
//                                   for a registered family (src/gen/);
//                                   `gen --list` prints the catalog
//   dislock replay <trace.dlt> [--shards K] [--threads N] [--verify]
//                                   drive a .dlt trace through the
//                                   incremental engine; --verify gates
//                                   byte-identical check reports across the
//                                   shard/thread grid; --endpoint HOST:PORT
//                                   replays against a live dislock_serve
//   dislock example                 print a sample system file
//
// `analyze` and `session` also take the shared observability flags
// --trace=FILE (Chrome trace_event timeline; see docs/observability.md)
// and --metrics[=FILE] (flat metrics JSON, default stderr), plus
// --cache-dir=PATH (persistent pair-verdict store shared across runs and
// processes; see docs/caching.md). None of them ever changes report
// output.
//
// System files use the dislock text format (see src/txn/text_format.h).
// `analyze` exits 0 when the analysis ran (regardless of findings), 1 on
// input errors, 2 on usage errors; pass --fail-on=note|warning|error to
// exit 3 when any diagnostic at or above that severity was reported
// (--exit-error is the historical spelling of --fail-on=error).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/repair/engine.h"
#include "cache/verdict_store.h"
#include "core/certificate.h"
#include "core/deadlock.h"
#include "core/multi.h"
#include "core/report.h"
#include "core/incremental/session.h"
#include "core/safety.h"
#include "core/stats_export.h"
#include "core/wire_keys.h"
#include "gen/family.h"
#include "gen/replay.h"
#include "gen/trace.h"
#include "obs/observability.h"
#include "serve/server.h"
#include "obs/trace.h"
#include "sat/normalize.h"
#include "sat/reduction.h"
#include "sat/solver.h"
#include "sim/scheduler.h"
#include "txn/text_format.h"
#include "util/flags.h"

namespace dislock {
namespace {

constexpr char kSample[] = R"(# Two transactions over a two-site database.
sites 2
entity x 0
entity y 1

txn T1
  lock x      # step 0
  update x    # step 1
  unlock x    # step 2
  lock y      # step 3
  update y    # step 4
  unlock y    # step 5
  edge 2 3    # x section before y section
end

txn T2
  lock y
  update y
  unlock y
  lock x
  update x
  unlock x
  edge 2 3    # y section before x section
end
)";

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(std::string("cannot open ") + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

struct AnalyzeArgs {
  const char* path = nullptr;
  bool deadlock = true;
  bool repair = false;
  /// Exit 3 when a diagnostic at or above this severity was emitted;
  /// unset (the default) preserves the historical always-0 behavior.
  std::optional<DiagSeverity> fail_on;
  std::vector<std::string> passes;  // empty = all registered
  CommonFlags common;  // --threads/--cache/--format/--trace/--metrics
};

/// Exit code for --fail-on: counts the diagnostics at or above the
/// threshold severity (error ⊇ warning ⊇ note in strictness order).
int FailOnExitCode(const AnalysisResult& result,
                   const std::optional<DiagSeverity>& fail_on) {
  if (!fail_on.has_value()) return 0;
  int64_t over = result.Count(DiagSeverity::kError);
  if (*fail_on != DiagSeverity::kError) {
    over += result.Count(DiagSeverity::kWarning);
  }
  if (*fail_on == DiagSeverity::kNote) {
    over += result.Count(DiagSeverity::kNote);
  }
  return over > 0 ? 3 : 0;
}

/// Line count of the analyzed file, for the SARIF whole-file fix region.
int CountLines(const std::string& text) {
  int lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  if (!text.empty() && text.back() != '\n') ++lines;
  return lines > 0 ? lines : 1;
}

// Writes the trace/metrics files a run opted into; a failure to write them
// is reported but never changes the exit status of the analysis itself.
void FlushObservability(const obs::Observability& bundle) {
  std::string error;
  if (!bundle.Flush(&error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
  }
}

// Opens the persistent verdict store a run asked for (--cache-dir or
// DISLOCK_CACHE_DIR). A directory that cannot be opened is reported and
// the run continues without a store — persistence is an accelerator, never
// a prerequisite, and never changes a verdict either way.
void OpenStoreIfRequested(const CommonFlags& common,
                          cache::VerdictStore* store) {
  const std::string dir = EffectiveCacheDir(common);
  if (dir.empty()) return;
  std::string error;
  if (!store->Open(dir, &error)) {
    std::fprintf(stderr,
                 "dislock: cannot open cache dir %s (%s); "
                 "continuing without a persistent cache\n",
                 dir.c_str(), error.c_str());
  }
}

// Owner-exports-once counterpart for the store: flush the run's new
// verdicts to disk, then pour the store counters into the metrics sink.
// Call before FlushObservability so records_flushed lands in the file.
void FinishStore(cache::VerdictStore* store, obs::StatsSink* sink) {
  if (!store->is_open()) return;
  store->Flush();
  ExportStoreStats(*store, sink);
}

int Analyze(const AnalyzeArgs& args) {
  auto text = ReadFile(args.path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto parsed = ParseSystemText(*text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const TransactionSystem& system = *parsed->system;

  PassManager manager;
  if (args.passes.empty()) {
    manager.AddAllPasses();
  } else {
    for (const std::string& name : args.passes) {
      Status st = manager.Add(name);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
    }
  }
  obs::Observability bundle(args.common.trace_path, args.common.metrics,
                            args.common.metrics_path);
  cache::VerdictStore store;
  OpenStoreIfRequested(args.common, &store);
  AnalysisOptions options;
  options.num_threads = args.common.num_threads;
  options.enable_cache = args.common.cache;
  options.store = store.is_open() ? &store : nullptr;
  options.trace = bundle.trace();
  options.stats = bundle.metrics();
  // Flush order on every exit path: store first (so records_flushed lands
  // in the metrics block), then the observability files.
  auto finish = [&] {
    FinishStore(&store, bundle.metrics());
    FlushObservability(bundle);
  };
  AnalysisResult result = manager.Run(system, options);
  if (args.repair) {
    RepairOptions repair_options;
    repair_options.engine = options;
    result.repair = SynthesizeRepairs(system, repair_options);
    // The synthesis engine never exports (owner-exports-once); this run
    // owns the report, so it pours the repair counters here.
    ExportRepairStats(*result.repair, bundle.metrics());
  }
  const int rc = FailOnExitCode(result, args.fail_on);
  auto run_deadlock = [&] {
    obs::TraceSpan span(bundle.trace(), wire::kSpanDeadlock);
    return AnalyzeDeadlockFreedom(system, 1 << 20);
  };

  if (args.common.format == "sarif") {
    SarifArtifact artifact;
    artifact.uri = args.path;
    artifact.end_line = CountLines(*text);
    std::printf("%s\n", DiagnosticsToSarif(result, system, artifact).c_str());
    finish();
    return rc;
  }

  if (args.common.format == "json") {
    std::printf("{\"%s\": %d, \"transactions\": %d, \"entities\": %d, "
                "\"sites\": %d, \"steps\": %d, \"analysis\": %s",
                wire::kSchemaVersionKey, wire::kSchemaVersion,
                system.NumTransactions(), parsed->db->NumEntities(),
                parsed->db->NumSites(), system.TotalSteps(),
                DiagnosticsToJson(result, system).c_str());
    if (args.deadlock) {
      auto deadlock = run_deadlock();
      if (deadlock.ok()) {
        std::printf(", \"deadlock\": %s",
                    DeadlockReportToJson(*deadlock, system).c_str());
      }
    }
    std::printf("}\n");
    finish();
    return rc;
  }

  std::printf("%d transactions, %d entities over %d sites, %d steps\n",
              system.NumTransactions(), parsed->db->NumEntities(),
              parsed->db->NumSites(), system.TotalSteps());
  std::printf("%s", DiagnosticsToText(result, system).c_str());

  if (args.deadlock) {
    auto deadlock = run_deadlock();
    if (deadlock.ok()) {
      if (deadlock->deadlock_free) {
        std::printf("deadlock: none reachable (%lld states explored)\n",
                    static_cast<long long>(deadlock->states_explored));
      } else {
        std::printf("deadlock: reachable after prefix %s\n",
                    deadlock->dead_prefix->ToString(system).c_str());
      }
    } else {
      std::printf("deadlock: %s\n", deadlock.status().ToString().c_str());
    }
  }
  finish();
  return rc;
}

int ListPasses() {
  for (const std::string& name : RegisteredAnalysisPasses()) {
    auto pass = MakeAnalysisPass(name);
    std::printf("%-14s %s\n", name.c_str(),
                pass.ok() ? (*pass)->description() : "?");
  }
  return 0;
}

int Rules(int argc, char** argv) {
  std::string mode = "text";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      mode = "json";
    } else if (std::strcmp(argv[i], "--markdown") == 0) {
      mode = "markdown";
    } else {
      ReportUnknownArgument("dislock", argv[i]);
      return 2;
    }
  }
  if (mode == "json") {
    std::printf("%s\n", RulesToJson().c_str());
  } else if (mode == "markdown") {
    std::printf("%s", RulesToMarkdown().c_str());
  } else {
    std::printf("%s", RulesToText().c_str());
  }
  return 0;
}

struct FixArgs {
  const char* path = nullptr;
  bool dry_run = false;
  bool json = false;
  CommonFlags common;
};

// `dislock fix`: synthesize verified repairs and apply the cheapest one in
// place (or print it with --dry-run). Exits 0 when nothing needed fixing or
// a repair was applied, 1 when the system is broken but no verified repair
// was found (or on input errors), 2 on usage errors.
int Fix(const FixArgs& args) {
  auto text = ReadFile(args.path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto parsed = ParseSystemText(*text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const TransactionSystem& system = *parsed->system;

  obs::Observability bundle(args.common.trace_path, args.common.metrics,
                            args.common.metrics_path);
  RepairOptions options;
  options.engine.num_threads = args.common.num_threads;
  options.engine.trace = bundle.trace();
  RepairReport report = SynthesizeRepairs(system, options);
  ExportRepairStats(report, bundle.metrics());

  if (args.json) {
    std::printf("{\"%s\": %d, \"repair\": %s}\n", wire::kSchemaVersionKey,
                wire::kSchemaVersion,
                RepairReportToJson(report, system).c_str());
  }
  if (!report.attempted) {
    if (!args.json) {
      std::printf("nothing to fix: %s is already safe and deadlock-free\n",
                  args.path);
    }
    FlushObservability(bundle);
    return 0;
  }
  if (report.repairs.empty()) {
    std::fprintf(stderr,
                 "no verified repair found for %s (%lld candidates tried)\n",
                 args.path,
                 static_cast<long long>(report.candidates_tried));
    FlushObservability(bundle);
    return 1;
  }

  const VerifiedRepair& top = report.repairs.front();
  // Round-trip guarantee: the repaired text must parse back to a valid
  // system before it is allowed to replace the user's file.
  auto reparsed = ParseSystemText(top.repaired_text);
  if (!reparsed.ok()) {
    std::fprintf(stderr, "internal error: repaired system does not parse: %s\n",
                 reparsed.status().ToString().c_str());
    FlushObservability(bundle);
    return 1;
  }
  if (!args.json) {
    std::printf("repair (%s, cost %d): %s\n",
                RepairEditKindName(top.edit.kind), top.edit.cost,
                top.edit.description.c_str());
    std::printf("verified after repair: safety %s, deadlock-free\n",
                SafetyVerdictName(top.safety_after));
  }
  if (args.dry_run) {
    if (!args.json) {
      std::printf("--dry-run: repaired system follows\n%s",
                  top.repaired_text.c_str());
    }
    FlushObservability(bundle);
    return 0;
  }
  std::ofstream out(args.path, std::ios::trunc);
  if (!out || !(out << top.repaired_text) || !out.flush()) {
    std::fprintf(stderr, "cannot write %s\n", args.path);
    FlushObservability(bundle);
    return 1;
  }
  if (!args.json) {
    std::printf("wrote %s\n", args.path);
  }
  FlushObservability(bundle);
  return 0;
}

int RunFixCommand(int argc, char** argv) {
  FixArgs args;
  constexpr unsigned kAccepted = kThreadsFlag | kObsFlags;
  for (int i = 2; i < argc; ++i) {
    std::string error;
    switch (ParseCommonFlag(argc, argv, i, kAccepted, &args.common, &error)) {
      case FlagParse::kConsumedTwo:
        ++i;
        [[fallthrough]];
      case FlagParse::kConsumedOne:
        continue;
      case FlagParse::kError:
        ReportBadFlag("dislock", error);
        return 2;
      case FlagParse::kNotCommon:
        break;
    }
    if (std::strcmp(argv[i], "--dry-run") == 0) {
      args.dry_run = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json = true;
    } else if (argv[i][0] != '-' && args.path == nullptr) {
      args.path = argv[i];
    } else {
      ReportUnknownArgument("dislock", argv[i]);
      return 2;
    }
  }
  if (args.path == nullptr) return 2;
  return Fix(args);
}

int Simulate(const char* path, int64_t runs) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto parsed = ParseSystemText(*text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Rng rng(0xD15C0);
  MonteCarloStats stats = SampleSafety(*parsed->system, runs, &rng,
                                       /*keep_going=*/true);
  std::printf("runs: %lld\ncompleted: %lld\ndeadlocked: %lld\n"
              "non-serializable: %lld\n",
              static_cast<long long>(stats.runs),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.deadlocked),
              static_cast<long long>(stats.non_serializable));
  if (stats.witness.has_value()) {
    std::printf("witness: %s\n",
                stats.witness->ToString(*parsed->system).c_str());
  }
  // With abort-and-restart recovery, every run commits; report abort rates.
  int64_t aborts = 0;
  int64_t committed = 0;
  for (int64_t r = 0; r < runs / 10 + 1; ++r) {
    RecoveryRunResult run = SimulateRunWithRecovery(*parsed->system, &rng);
    if (!run.gave_up) ++committed;
    aborts += run.aborts;
  }
  std::printf("with recovery: %lld/%lld committed, %lld aborts\n",
              static_cast<long long>(committed),
              static_cast<long long>(runs / 10 + 1),
              static_cast<long long>(aborts));
  return 0;
}

int Reduce(const char* path) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto formula = ParseDimacs(*text);
  if (!formula.ok()) {
    std::fprintf(stderr, "%s\n", formula.status().ToString().c_str());
    return 1;
  }
  auto restricted = NormalizeToRestricted(*formula);
  if (!restricted.ok()) {
    std::fprintf(stderr, "%s\n", restricted.status().ToString().c_str());
    return 1;
  }
  if (restricted->trivially_sat || restricted->trivially_unsat) {
    std::printf("preprocessing decided: %s\n",
                restricted->trivially_sat ? "SATISFIABLE" : "UNSATISFIABLE");
    return 0;
  }
  auto red = ReduceCnfToTransactions(restricted->cnf);
  if (!red.ok()) {
    std::fprintf(stderr, "%s\n", red.status().ToString().c_str());
    return 1;
  }
  std::printf("reduced to %d entities / %d steps over %d sites\n",
              red->db->NumEntities(), red->system->TotalSteps(),
              red->db->NumSites());
  SafetyOptions options;
  options.max_extension_pairs = 0;
  options.max_dominators = 1 << 16;
  PairSafetyReport report = AnalyzePairSafety(red->system->txn(0),
                                              red->system->txn(1), options);
  std::printf("safety: %s  =>  formula is %s\n",
              SafetyVerdictName(report.verdict),
              report.verdict == SafetyVerdict::kUnsafe ? "SATISFIABLE"
              : report.verdict == SafetyVerdict::kSafe ? "UNSATISFIABLE"
                                                       : "UNDECIDED");
  auto dpll = SolveSat(*formula);
  if (dpll.ok()) {
    std::printf("DPLL cross-check: %s\n",
                dpll->satisfiable ? "SATISFIABLE" : "UNSATISFIABLE");
  }
  return 0;
}

int RunSessionCommand(int argc, char** argv) {
  SessionOptions options;
  CommonFlags common;
  const char* script = nullptr;
  constexpr unsigned kAccepted =
      kThreadsFlag | kCacheFlag | kObsFlags | kShardsFlag | kCacheDirFlag;
  for (int i = 2; i < argc; ++i) {
    std::string error;
    switch (ParseCommonFlag(argc, argv, i, kAccepted, &common, &error)) {
      case FlagParse::kConsumedTwo:
        ++i;
        [[fallthrough]];
      case FlagParse::kConsumedOne:
        continue;
      case FlagParse::kError:
        ReportBadFlag("dislock", error);
        return 2;
      case FlagParse::kNotCommon:
        break;
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(argv[i], "--load-root") == 0 && i + 1 < argc) {
      options.load_root = argv[++i];
    } else if (argv[i][0] != '-' && script == nullptr) {
      script = argv[i];
    } else {
      ReportUnknownArgument("dislock", argv[i]);
      return 2;
    }
  }
  obs::Observability bundle(common.trace_path, common.metrics,
                            common.metrics_path);
  cache::VerdictStore store;
  OpenStoreIfRequested(common, &store);
  options.config.num_threads = common.num_threads;
  options.config.enable_cache = common.cache;
  options.config.store = store.is_open() ? &store : nullptr;
  options.config.trace = bundle.trace();
  options.config.stats = bundle.metrics();
  options.shards = common.shards;
  options.analyze = MakeSessionAnalyzer();
  int failed;
  if (script != nullptr) {
    std::ifstream file(script);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script);
      return 1;
    }
    failed = RunSession(file, std::cout, options);
  } else {
    failed = RunSession(std::cin, std::cout, options);
  }
  FinishStore(&store, bundle.metrics());
  FlushObservability(bundle);
  return failed == 0 ? 0 : 1;
}

// Writes `text` to --out when given, stdout otherwise. A file that cannot
// be written is an input error (exit 1), matching `fix`.
int WriteTextOutput(const std::string& text, const CommonFlags& common) {
  if (common.out.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return 0;
  }
  std::ofstream out(common.out, std::ios::trunc);
  if (!out || !(out << text) || !out.flush()) {
    std::fprintf(stderr, "cannot write %s\n", common.out.c_str());
    return 1;
  }
  return 0;
}

// `dislock gen`: emit one workload family's deterministic .dlt trace (or
// the self-describing catalog with --list). Exits 0 on success, 1 on
// generation/IO errors, 2 on usage errors.
int RunGenCommand(int argc, char** argv) {
  CommonFlags common;
  const char* family = nullptr;
  bool list = false;
  bool json = false;
  gen::ParamMap overrides;
  constexpr unsigned kAccepted = kSeedFlag | kOutFlag;
  auto add_override = [&overrides](const char* text) {
    auto parsed = gen::ParseParamOverride(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return false;
    }
    overrides[parsed->first] = parsed->second;
    return true;
  };
  for (int i = 2; i < argc; ++i) {
    std::string error;
    switch (ParseCommonFlag(argc, argv, i, kAccepted, &common, &error)) {
      case FlagParse::kConsumedTwo:
        ++i;
        [[fallthrough]];
      case FlagParse::kConsumedOne:
        continue;
      case FlagParse::kError:
        ReportBadFlag("dislock", error);
        return 2;
      case FlagParse::kNotCommon:
        break;
    }
    if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--param") == 0 && i + 1 < argc) {
      if (!add_override(argv[++i])) return 2;
    } else if (std::strncmp(argv[i], "--param=", 8) == 0) {
      if (!add_override(argv[i] + 8)) return 2;
    } else if (argv[i][0] != '-' && family == nullptr) {
      family = argv[i];
    } else {
      ReportUnknownArgument("dislock", argv[i]);
      return 2;
    }
  }
  if (list) {
    return WriteTextOutput(
        json ? gen::FamilyCatalogToJson() : gen::FamilyCatalogToText(),
        common);
  }
  if (family == nullptr) return 2;
  auto trace = gen::GenerateTrace(family, overrides, common.seed);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  return WriteTextOutput(trace->Serialize(), common);
}

// Splits --endpoint HOST:PORT; false (with a stderr line) when malformed.
bool ParseEndpoint(const std::string& endpoint, std::string* host,
                   int* port) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    std::fprintf(stderr, "dislock: --endpoint wants HOST:PORT, got '%s'\n",
                 endpoint.c_str());
    return false;
  }
  *host = endpoint.substr(0, colon);
  *port = std::atoi(endpoint.c_str() + colon + 1);
  if (*port <= 0 || *port > 65535) {
    std::fprintf(stderr, "dislock: bad --endpoint port in '%s'\n",
                 endpoint.c_str());
    return false;
  }
  return true;
}

// `dislock replay`: drive a committed .dlt trace through the incremental
// engine. Default: one in-process SessionCore replay, responses to stdout
// (or --out). --verify: the byte-identity gate — check reports from the
// serve-style sequencer at {1,4} shards x {1,4} threads must match the
// direct replay byte for byte. --endpoint HOST:PORT: feed the records to a
// live dislock_serve over TCP instead. Exits 0 on a clean replay, 1 on
// input errors / failed commands / a verify divergence, 2 on usage errors.
int RunReplayCommand(int argc, char** argv) {
  CommonFlags common;
  const char* path = nullptr;
  bool verify = false;
  constexpr unsigned kAccepted = kThreadsFlag | kShardsFlag | kCacheFlag |
                                 kCacheDirFlag | kObsFlags | kEndpointFlag |
                                 kOutFlag;
  for (int i = 2; i < argc; ++i) {
    std::string error;
    switch (ParseCommonFlag(argc, argv, i, kAccepted, &common, &error)) {
      case FlagParse::kConsumedTwo:
        ++i;
        [[fallthrough]];
      case FlagParse::kConsumedOne:
        continue;
      case FlagParse::kError:
        ReportBadFlag("dislock", error);
        return 2;
      case FlagParse::kNotCommon:
        break;
    }
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      ReportUnknownArgument("dislock", argv[i]);
      return 2;
    }
  }
  if (path == nullptr) return 2;
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto trace = gen::ParseTrace(*text);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }

  if (verify) {
    gen::VerifyResult result = gen::VerifyReplay(*trace);
    for (const gen::VerifyCell& cell : result.cells) {
      std::fprintf(stderr, "shards=%d threads=%d: %s (%d failed commands)\n",
                   cell.shards, cell.threads,
                   cell.identical ? "check reports identical" : "DIVERGED",
                   cell.errors);
    }
    std::fprintf(stderr, "verify: %s (%s, seed %llu, %lld records)\n",
                 result.ok ? "OK" : "FAILED", trace->header.family.c_str(),
                 static_cast<unsigned long long>(trace->header.seed),
                 static_cast<long long>(trace->header.records));
    return result.ok ? 0 : 1;
  }

  if (!common.endpoint.empty()) {
    std::string host;
    int port = 0;
    if (!ParseEndpoint(common.endpoint, &host, &port)) return 2;
    std::ostringstream script;
    for (const std::string& record : trace->records) {
      script << record << "\n";
    }
    std::istringstream in(script.str());
    std::ostringstream captured;
    if (serve::RunClientTrace(host, port, in, captured, std::cerr) != 0) {
      return 1;
    }
    return WriteTextOutput(captured.str(), common);
  }

  obs::Observability bundle(common.trace_path, common.metrics,
                            common.metrics_path);
  cache::VerdictStore store;
  OpenStoreIfRequested(common, &store);
  gen::ReplayOptions options;
  options.shards = common.shards;
  options.threads = common.num_threads;
  options.config.enable_cache = common.cache;
  options.config.store = store.is_open() ? &store : nullptr;
  options.config.trace = bundle.trace();
  options.config.stats = bundle.metrics();
  gen::ReplayResult result = gen::ReplayDirect(*trace, options);
  int rc = WriteTextOutput(result.output, common);
  std::fprintf(stderr, "replayed %lld commands, %lld checks, %d errors\n",
               static_cast<long long>(result.commands),
               static_cast<long long>(result.checks), result.errors);
  FinishStore(&store, bundle.metrics());
  FlushObservability(bundle);
  if (rc != 0) return rc;
  return result.errors == 0 ? 0 : 1;
}

int Usage() {
  std::string analyze_help = CommonFlagsHelp(
      kThreadsFlag | kCacheFlag | kFormatFlag | kObsFlags | kCacheDirFlag);
  std::string session_help = CommonFlagsHelp(
      kThreadsFlag | kCacheFlag | kObsFlags | kShardsFlag | kCacheDirFlag);
  std::string gen_help = CommonFlagsHelp(kSeedFlag | kOutFlag);
  std::string replay_help =
      CommonFlagsHelp(kThreadsFlag | kShardsFlag | kCacheFlag |
                      kCacheDirFlag | kObsFlags | kEndpointFlag | kOutFlag);
  std::fprintf(stderr,
               "usage: dislock analyze <system.dlk>\n"
               "                       [--passes a,b,c] [--no-deadlock]\n"
               "                       [--repair] [--exit-error]\n"
               "                       [--fail-on=note|warning|error]\n"
               "%s"
               "       dislock fix <system.dlk> [--dry-run] [--json]\n"
               "         (apply the cheapest verified repair in place;\n"
               "          --dry-run prints the repaired system instead)\n"
               "       dislock rules [--json|--markdown]\n"
               "       dislock passes\n"
               "       dislock simulate <system.dlk> [runs]\n"
               "       dislock reduce <formula.cnf>\n"
               "       dislock session [script.dls] [--json]\n"
               "                       [--load-root DIR]\n"
               "         (incremental re-analysis REPL backed by the delta\n"
               "          engine; reads stdin when no script is given;\n"
               "          --json emits one JSON object per command)\n"
               "%s"
               "       dislock gen <family> [--param NAME=VALUE ...]\n"
               "         (emit the family's deterministic .dlt trace —\n"
               "          a schema-versioned header line plus one session\n"
               "          JSON envelope per record; `dislock gen --list\n"
               "          [--json]` prints the self-describing catalog)\n"
               "%s"
               "       dislock replay <trace.dlt> [--verify]\n"
               "         (drive a .dlt trace through the incremental\n"
               "          engine and print the session responses; --verify\n"
               "          replays the {1,4} shards x {1,4} threads grid and\n"
               "          gates byte-identical check reports)\n"
               "%s"
               "       dislock example\n",
               analyze_help.c_str(), session_help.c_str(), gen_help.c_str(),
               replay_help.c_str());
  return 2;
}

std::vector<std::string> SplitCommas(const char* s) {
  std::vector<std::string> out;
  std::string current;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += *p;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

}  // namespace
}  // namespace dislock

int main(int argc, char** argv) {
  using namespace dislock;
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "example") == 0) {
    std::printf("%s", kSample);
    return 0;
  }
  if (std::strcmp(argv[1], "analyze") == 0 && argc >= 3) {
    AnalyzeArgs args;
    args.path = argv[2];
    constexpr unsigned kAccepted =
        kThreadsFlag | kCacheFlag | kFormatFlag | kObsFlags | kCacheDirFlag;
    for (int i = 3; i < argc; ++i) {
      std::string error;
      switch (ParseCommonFlag(argc, argv, i, kAccepted, &args.common,
                              &error)) {
        case FlagParse::kConsumedTwo:
          ++i;
          [[fallthrough]];
        case FlagParse::kConsumedOne:
          continue;
        case FlagParse::kError:
          ReportBadFlag("dislock", error);
          return Usage();
        case FlagParse::kNotCommon:
          break;
      }
      if (std::strcmp(argv[i], "--no-deadlock") == 0) {
        args.deadlock = false;
      } else if (std::strcmp(argv[i], "--exit-error") == 0) {
        args.fail_on = DiagSeverity::kError;
      } else if (std::strncmp(argv[i], "--fail-on=", 10) == 0) {
        const char* level = argv[i] + 10;
        if (std::strcmp(level, "note") == 0) {
          args.fail_on = DiagSeverity::kNote;
        } else if (std::strcmp(level, "warning") == 0) {
          args.fail_on = DiagSeverity::kWarning;
        } else if (std::strcmp(level, "error") == 0) {
          args.fail_on = DiagSeverity::kError;
        } else {
          std::fprintf(stderr,
                       "dislock: --fail-on takes note, warning, or error\n");
          return Usage();
        }
      } else if (std::strcmp(argv[i], "--repair") == 0) {
        args.repair = true;
      } else if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
        args.passes = SplitCommas(argv[++i]);
      } else {
        ReportUnknownArgument("dislock", argv[i]);
        return Usage();
      }
    }
    return Analyze(args);
  }
  if (std::strcmp(argv[1], "passes") == 0) {
    return ListPasses();
  }
  if (std::strcmp(argv[1], "rules") == 0) {
    int rc = Rules(argc, argv);
    return rc == 2 ? Usage() : rc;
  }
  if (std::strcmp(argv[1], "fix") == 0 && argc >= 3) {
    int rc = RunFixCommand(argc, argv);
    return rc == 2 ? Usage() : rc;
  }
  if (std::strcmp(argv[1], "simulate") == 0 && argc >= 3) {
    int64_t runs = argc >= 4 ? std::atoll(argv[3]) : 10000;
    return Simulate(argv[2], runs);
  }
  if (std::strcmp(argv[1], "reduce") == 0 && argc >= 3) {
    return Reduce(argv[2]);
  }
  if (std::strcmp(argv[1], "session") == 0) {
    int rc = RunSessionCommand(argc, argv);
    return rc == 2 ? Usage() : rc;
  }
  if (std::strcmp(argv[1], "gen") == 0) {
    int rc = RunGenCommand(argc, argv);
    return rc == 2 ? Usage() : rc;
  }
  if (std::strcmp(argv[1], "replay") == 0) {
    int rc = RunReplayCommand(argc, argv);
    return rc == 2 ? Usage() : rc;
  }
  return Usage();
}
