// The dislock command-line analyzer.
//
//   dislock analyze <system.dlk> [--json|--sarif] [--passes a,b] [--no-deadlock]
//                                   multi-pass static analysis: per-rule
//                                   diagnostics (DL001-DL103) + deadlock
//   dislock passes                  list the registered analysis passes
//   dislock simulate <system.dlk> [runs]
//                                   Monte-Carlo execution statistics
//   dislock reduce <formula.cnf>    Theorem 3: decide SAT via locking safety
//   dislock session [script] [--json] [--threads N] [--cache]
//                                   interactive / scripted incremental
//                                   re-analysis (load/add/remove/replace/
//                                   check) backed by the delta engine
//   dislock example                 print a sample system file
//
// System files use the dislock text format (see src/txn/text_format.h).
// `analyze` exits 0 when the analysis ran (regardless of findings), 1 on
// input errors, 2 on usage errors; pass --exit-error to exit 3 when any
// error-severity diagnostic was reported (for CI gates).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "core/certificate.h"
#include "core/deadlock.h"
#include "core/multi.h"
#include "core/report.h"
#include "core/incremental/session.h"
#include "core/safety.h"
#include "sat/normalize.h"
#include "sat/reduction.h"
#include "sat/solver.h"
#include "sim/scheduler.h"
#include "txn/text_format.h"

namespace dislock {
namespace {

constexpr char kSample[] = R"(# Two transactions over a two-site database.
sites 2
entity x 0
entity y 1

txn T1
  lock x      # step 0
  update x    # step 1
  unlock x    # step 2
  lock y      # step 3
  update y    # step 4
  unlock y    # step 5
  edge 2 3    # x section before y section
end

txn T2
  lock y
  update y
  unlock y
  lock x
  update x
  unlock x
  edge 2 3    # y section before x section
end
)";

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(std::string("cannot open ") + path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

enum class AnalyzeFormat { kText, kJson, kSarif };

struct AnalyzeArgs {
  const char* path = nullptr;
  AnalyzeFormat format = AnalyzeFormat::kText;
  bool deadlock = true;
  bool exit_error = false;
  int num_threads = 1;  // 1 = serial, 0 = one per hardware thread
  bool cache = false;   // engine-owned pair-verdict cache
  std::vector<std::string> passes;  // empty = all registered
};

int Analyze(const AnalyzeArgs& args) {
  auto text = ReadFile(args.path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto parsed = ParseSystemText(*text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const TransactionSystem& system = *parsed->system;

  PassManager manager;
  if (args.passes.empty()) {
    manager.AddAllPasses();
  } else {
    for (const std::string& name : args.passes) {
      Status st = manager.Add(name);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 2;
      }
    }
  }
  AnalysisOptions options;
  options.num_threads = args.num_threads;
  options.enable_cache = args.cache;
  AnalysisResult result = manager.Run(system, options);

  if (args.format == AnalyzeFormat::kSarif) {
    std::printf("%s\n", DiagnosticsToSarif(result, system).c_str());
    return args.exit_error && result.HasErrors() ? 3 : 0;
  }

  if (args.format == AnalyzeFormat::kJson) {
    std::printf("{\"transactions\": %d, \"entities\": %d, \"sites\": %d, "
                "\"steps\": %d, \"analysis\": %s",
                system.NumTransactions(), parsed->db->NumEntities(),
                parsed->db->NumSites(), system.TotalSteps(),
                DiagnosticsToJson(result, system).c_str());
    if (args.deadlock) {
      auto deadlock = AnalyzeDeadlockFreedom(system, 1 << 20);
      if (deadlock.ok()) {
        std::printf(", \"deadlock\": %s",
                    DeadlockReportToJson(*deadlock, system).c_str());
      }
    }
    std::printf("}\n");
    return args.exit_error && result.HasErrors() ? 3 : 0;
  }

  std::printf("%d transactions, %d entities over %d sites, %d steps\n",
              system.NumTransactions(), parsed->db->NumEntities(),
              parsed->db->NumSites(), system.TotalSteps());
  std::printf("%s", DiagnosticsToText(result, system).c_str());

  if (args.deadlock) {
    auto deadlock = AnalyzeDeadlockFreedom(system, 1 << 20);
    if (deadlock.ok()) {
      if (deadlock->deadlock_free) {
        std::printf("deadlock: none reachable (%lld states explored)\n",
                    static_cast<long long>(deadlock->states_explored));
      } else {
        std::printf("deadlock: reachable after prefix %s\n",
                    deadlock->dead_prefix->ToString(system).c_str());
      }
    } else {
      std::printf("deadlock: %s\n", deadlock.status().ToString().c_str());
    }
  }
  return args.exit_error && result.HasErrors() ? 3 : 0;
}

int ListPasses() {
  for (const std::string& name : RegisteredAnalysisPasses()) {
    auto pass = MakeAnalysisPass(name);
    std::printf("%-14s %s\n", name.c_str(),
                pass.ok() ? (*pass)->description() : "?");
  }
  return 0;
}

int Simulate(const char* path, int64_t runs) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto parsed = ParseSystemText(*text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Rng rng(0xD15C0);
  MonteCarloStats stats = SampleSafety(*parsed->system, runs, &rng,
                                       /*keep_going=*/true);
  std::printf("runs: %lld\ncompleted: %lld\ndeadlocked: %lld\n"
              "non-serializable: %lld\n",
              static_cast<long long>(stats.runs),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.deadlocked),
              static_cast<long long>(stats.non_serializable));
  if (stats.witness.has_value()) {
    std::printf("witness: %s\n",
                stats.witness->ToString(*parsed->system).c_str());
  }
  // With abort-and-restart recovery, every run commits; report abort rates.
  int64_t aborts = 0;
  int64_t committed = 0;
  for (int64_t r = 0; r < runs / 10 + 1; ++r) {
    RecoveryRunResult run = SimulateRunWithRecovery(*parsed->system, &rng);
    if (!run.gave_up) ++committed;
    aborts += run.aborts;
  }
  std::printf("with recovery: %lld/%lld committed, %lld aborts\n",
              static_cast<long long>(committed),
              static_cast<long long>(runs / 10 + 1),
              static_cast<long long>(aborts));
  return 0;
}

int Reduce(const char* path) {
  auto text = ReadFile(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  auto formula = ParseDimacs(*text);
  if (!formula.ok()) {
    std::fprintf(stderr, "%s\n", formula.status().ToString().c_str());
    return 1;
  }
  auto restricted = NormalizeToRestricted(*formula);
  if (!restricted.ok()) {
    std::fprintf(stderr, "%s\n", restricted.status().ToString().c_str());
    return 1;
  }
  if (restricted->trivially_sat || restricted->trivially_unsat) {
    std::printf("preprocessing decided: %s\n",
                restricted->trivially_sat ? "SATISFIABLE" : "UNSATISFIABLE");
    return 0;
  }
  auto red = ReduceCnfToTransactions(restricted->cnf);
  if (!red.ok()) {
    std::fprintf(stderr, "%s\n", red.status().ToString().c_str());
    return 1;
  }
  std::printf("reduced to %d entities / %d steps over %d sites\n",
              red->db->NumEntities(), red->system->TotalSteps(),
              red->db->NumSites());
  SafetyOptions options;
  options.max_extension_pairs = 0;
  options.max_dominators = 1 << 16;
  PairSafetyReport report = AnalyzePairSafety(red->system->txn(0),
                                              red->system->txn(1), options);
  std::printf("safety: %s  =>  formula is %s\n",
              SafetyVerdictName(report.verdict),
              report.verdict == SafetyVerdict::kUnsafe ? "SATISFIABLE"
              : report.verdict == SafetyVerdict::kSafe ? "UNSATISFIABLE"
                                                       : "UNDECIDED");
  auto dpll = SolveSat(*formula);
  if (dpll.ok()) {
    std::printf("DPLL cross-check: %s\n",
                dpll->satisfiable ? "SATISFIABLE" : "UNSATISFIABLE");
  }
  return 0;
}

int RunSessionCommand(int argc, char** argv) {
  SessionOptions options;
  const char* script = nullptr;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      options.config.enable_cache = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.config.num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--load-root") == 0 && i + 1 < argc) {
      options.load_root = argv[++i];
    } else if (argv[i][0] != '-' && script == nullptr) {
      script = argv[i];
    } else {
      return 2;
    }
  }
  if (script != nullptr) {
    std::ifstream file(script);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script);
      return 1;
    }
    return RunSession(file, std::cout, options) == 0 ? 0 : 1;
  }
  return RunSession(std::cin, std::cout, options) == 0 ? 0 : 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dislock analyze <system.dlk>\n"
               "                       [--format=text|json|sarif]\n"
               "                       [--json|--sarif]  (aliases)\n"
               "                       [--passes a,b,c] [--no-deadlock]\n"
               "                       [--exit-error] [--threads N] [--cache]\n"
               "         (--threads: safety-engine workers; 1 = serial,\n"
               "          0 = one per hardware thread; output is identical\n"
               "          at any thread count)\n"
               "         (--cache: memoize pair verdicts by structural\n"
               "          fingerprint for the run)\n"
               "       dislock passes\n"
               "       dislock simulate <system.dlk> [runs]\n"
               "       dislock reduce <formula.cnf>\n"
               "       dislock session [script.dls] [--json] [--cache]\n"
               "                       [--threads N] [--load-root DIR]\n"
               "         (incremental re-analysis REPL backed by the delta\n"
               "          engine; reads stdin when no script is given.\n"
               "          --threads: safety-engine workers; 1 = serial,\n"
               "          0 = one per hardware thread; output is identical\n"
               "          at any thread count)\n"
               "       dislock example\n");
  return 2;
}

std::vector<std::string> SplitCommas(const char* s) {
  std::vector<std::string> out;
  std::string current;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += *p;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

}  // namespace
}  // namespace dislock

int main(int argc, char** argv) {
  using namespace dislock;
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "example") == 0) {
    std::printf("%s", kSample);
    return 0;
  }
  if (std::strcmp(argv[1], "analyze") == 0 && argc >= 3) {
    AnalyzeArgs args;
    args.path = argv[2];
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        args.format = AnalyzeFormat::kJson;
      } else if (std::strcmp(argv[i], "--sarif") == 0) {
        args.format = AnalyzeFormat::kSarif;
      } else if (std::strncmp(argv[i], "--format=", 9) == 0 ||
                 (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc)) {
        const char* value = argv[i][8] == '=' ? argv[i] + 9 : argv[++i];
        if (std::strcmp(value, "text") == 0) {
          args.format = AnalyzeFormat::kText;
        } else if (std::strcmp(value, "json") == 0) {
          args.format = AnalyzeFormat::kJson;
        } else if (std::strcmp(value, "sarif") == 0) {
          args.format = AnalyzeFormat::kSarif;
        } else {
          return Usage();
        }
      } else if (std::strcmp(argv[i], "--cache") == 0) {
        args.cache = true;
      } else if (std::strcmp(argv[i], "--no-deadlock") == 0) {
        args.deadlock = false;
      } else if (std::strcmp(argv[i], "--exit-error") == 0) {
        args.exit_error = true;
      } else if (std::strcmp(argv[i], "--passes") == 0 && i + 1 < argc) {
        args.passes = SplitCommas(argv[++i]);
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        args.num_threads = std::atoi(argv[++i]);
      } else {
        return Usage();
      }
    }
    return Analyze(args);
  }
  if (std::strcmp(argv[1], "passes") == 0) {
    return ListPasses();
  }
  if (std::strcmp(argv[1], "simulate") == 0 && argc >= 3) {
    int64_t runs = argc >= 4 ? std::atoll(argv[3]) : 10000;
    return Simulate(argv[2], runs);
  }
  if (std::strcmp(argv[1], "reduce") == 0 && argc >= 3) {
    return Reduce(argv[2]);
  }
  if (std::strcmp(argv[1], "session") == 0) {
    int rc = RunSessionCommand(argc, argv);
    return rc == 2 ? Usage() : rc;
  }
  return Usage();
}
