// Property-based cross-validation: every safety decision path (Theorem 2,
// the dominator-closure loop, Theorem 1, exhaustive oracles, Monte-Carlo
// sampling) must agree on randomized workloads. Parameterized over seeds so
// each sweep is independent and reproducible.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/certificate.h"
#include "core/safety.h"
#include "sim/scheduler.h"
#include "sim/workload.h"

namespace dislock {
namespace {

class TwoSiteSweep : public ::testing::TestWithParam<int> {};

TEST_P(TwoSiteSweep, Theorem2AgreesWithLemma1Oracle) {
  Rng rng(1000 + GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    WorkloadParams params;
    params.num_sites = 2;
    params.num_entities = 2 + static_cast<int>(rng.Uniform(3));
    params.num_transactions = 2;
    params.lock_probability = 0.8;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(3));
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok());

    auto theorem2 = TwoSiteSafetyTest(w.system->txn(0), w.system->txn(1));
    ASSERT_TRUE(theorem2.ok()) << theorem2.status().ToString();

    auto oracle = ExhaustivePairSafety(w.system->txn(0), w.system->txn(1),
                                       1 << 18);
    if (!oracle.ok()) continue;  // too wide; other trials cover it
    EXPECT_EQ(theorem2->verdict == SafetyVerdict::kSafe, oracle->safe)
        << w.system->ToString();
  }
}

TEST_P(TwoSiteSweep, UnsafeVerdictsCarryVerifiedCertificates) {
  Rng rng(2000 + GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    WorkloadParams params;
    params.num_sites = 2;
    params.num_entities = 3;
    params.num_transactions = 2;
    params.cross_site_arcs = 1;
    Workload w = MakeRandomWorkload(params, &rng);
    auto report = TwoSiteSafetyTest(w.system->txn(0), w.system->txn(1));
    ASSERT_TRUE(report.ok());
    if (report->verdict != SafetyVerdict::kUnsafe) continue;
    ASSERT_TRUE(report->certificate.has_value());
    EXPECT_TRUE(VerifyUnsafetyCertificate(w.system->txn(0),
                                          w.system->txn(1),
                                          *report->certificate)
                    .ok());
    // The schedule itself must be a legal, non-serializable schedule of the
    // ORIGINAL system.
    EXPECT_TRUE(
        CheckScheduleLegal(*w.system, report->certificate->schedule).ok());
    EXPECT_FALSE(IsSerializable(*w.system, report->certificate->schedule));
  }
}

TEST_P(TwoSiteSweep, SafeVerdictsSurviveMonteCarlo) {
  Rng rng(3000 + GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    WorkloadParams params;
    params.num_sites = 2;
    params.num_entities = 3;
    params.num_transactions = 2;
    params.cross_site_arcs = 2;
    Workload w = MakeRandomWorkload(params, &rng);
    auto report = TwoSiteSafetyTest(w.system->txn(0), w.system->txn(1));
    ASSERT_TRUE(report.ok());
    if (report->verdict != SafetyVerdict::kSafe) continue;
    MonteCarloStats stats = SampleSafety(*w.system, 2000, &rng,
                                         /*keep_going=*/true);
    EXPECT_EQ(stats.non_serializable, 0) << w.system->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoSiteSweep, ::testing::Range(0, 10));

class MultiSiteSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiSiteSweep, AnalyzerAgreesWithOracleWhenDecisive) {
  Rng rng(4000 + GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    WorkloadParams params;
    params.num_sites = 3 + static_cast<int>(rng.Uniform(2));
    params.num_entities = params.num_sites;
    params.num_transactions = 2;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(4));
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok());

    SafetyOptions options;
    options.max_extension_pairs = 1 << 17;
    PairSafetyReport report =
        AnalyzePairSafety(w.system->txn(0), w.system->txn(1), options);
    if (report.verdict == SafetyVerdict::kUnknown) continue;

    auto oracle = ExhaustivePairSafety(w.system->txn(0), w.system->txn(1),
                                       1 << 18);
    if (!oracle.ok()) continue;
    EXPECT_EQ(report.verdict == SafetyVerdict::kSafe, oracle->safe)
        << "method=" << DecisionMethodName(report.method) << "\n"
        << w.system->ToString();
  }
}

TEST_P(MultiSiteSweep, DominatorClosureVerdictsMatchExhaustive) {
  // Run the closure-only analyzer (no exhaustive fallback) and check every
  // decisive verdict against the Lemma 1 oracle — this is the strongest
  // property in the suite: the closure loop is exactly as right as Lemma 1.
  Rng rng(5000 + GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    WorkloadParams params;
    params.num_sites = 4;
    params.num_entities = 4;
    params.num_transactions = 2;
    params.lock_probability = 0.9;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(3));
    Workload w = MakeRandomWorkload(params, &rng);

    SafetyOptions closure_only;
    closure_only.max_extension_pairs = 0;
    PairSafetyReport report =
        AnalyzePairSafety(w.system->txn(0), w.system->txn(1), closure_only);
    if (report.verdict == SafetyVerdict::kUnknown) continue;

    auto oracle = ExhaustivePairSafety(w.system->txn(0), w.system->txn(1),
                                       1 << 18);
    if (!oracle.ok()) continue;
    EXPECT_EQ(report.verdict == SafetyVerdict::kSafe, oracle->safe)
        << "method=" << DecisionMethodName(report.method) << "\n"
        << w.system->ToString();
  }
}

TEST_P(MultiSiteSweep, Theorem1SafePairsHaveNoWitnessSchedules) {
  Rng rng(6000 + GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    WorkloadParams params;
    params.num_sites = 3;
    params.num_entities = 4;
    params.num_transactions = 2;
    Workload w = MakeRandomWorkload(params, &rng);
    if (!Theorem1Sufficient(w.system->txn(0), w.system->txn(1))) continue;
    MonteCarloStats stats = SampleSafety(*w.system, 1500, &rng,
                                         /*keep_going=*/true);
    EXPECT_EQ(stats.non_serializable, 0) << w.system->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSiteSweep, ::testing::Range(0, 8));

class CentralizedSweep : public ::testing::TestWithParam<int> {};

TEST_P(CentralizedSweep, TotalOrderPairsMatchScheduleOracle) {
  // For totally ordered (centralized) pairs, the strong-connectivity test
  // is exact; the schedule-enumeration oracle must agree.
  Rng rng(7000 + GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    Workload w = MakeRandomTotalOrderPair(3, &rng);
    PairSafetyReport report =
        AnalyzePairSafety(w.system->txn(0), w.system->txn(1));
    ASSERT_NE(report.verdict, SafetyVerdict::kUnknown);
    auto oracle = ExhaustiveScheduleSafety(*w.system, 1 << 20);
    if (!oracle.ok()) continue;
    EXPECT_EQ(report.verdict == SafetyVerdict::kSafe, oracle->safe)
        << w.system->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CentralizedSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace dislock
