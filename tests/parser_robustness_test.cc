// Robustness of the text-format parser and DIMACS parser under mutation:
// random corruption of valid inputs must produce a clean Status (or a
// successful parse of a still-valid mutant), never a crash or a CHECK.

#include <gtest/gtest.h>

#include "core/paper.h"
#include "sat/cnf.h"
#include "txn/text_format.h"
#include "util/random.h"

namespace dislock {
namespace {

std::string Mutate(const std::string& base, Rng* rng) {
  std::string s = base;
  int edits = 1 + static_cast<int>(rng->Uniform(4));
  for (int e = 0; e < edits && !s.empty(); ++e) {
    size_t pos = rng->Index(s.size());
    switch (rng->Uniform(4)) {
      case 0:  // flip a character
        s[pos] = static_cast<char>(' ' + rng->Uniform(95));
        break;
      case 1:  // delete a character
        s.erase(pos, 1);
        break;
      case 2:  // duplicate a chunk
        s.insert(pos, s.substr(pos, rng->Uniform(8) + 1));
        break;
      case 3:  // delete a line
      {
        size_t start = s.rfind('\n', pos);
        size_t end = s.find('\n', pos);
        start = start == std::string::npos ? 0 : start;
        end = end == std::string::npos ? s.size() : end;
        s.erase(start, end - start);
        break;
      }
    }
  }
  return s;
}

TEST(ParserRobustness, SystemTextSurvivesMutation) {
  std::string base = SystemToText(*MakeFig1Instance().system);
  Rng rng(31337);
  int parsed_ok = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutant = Mutate(base, &rng);
    auto result = ParseSystemText(mutant);  // must not crash
    if (result.ok()) ++parsed_ok;
  }
  // Some mutants (comment edits etc.) stay valid; most must be rejected.
  EXPECT_LT(parsed_ok, 2000);
}

TEST(ParserRobustness, DimacsSurvivesMutation) {
  std::string base = MakeCnf(3, {{1, 2, 3}, {-1, 2, -3}}).ToDimacs();
  Rng rng(42424);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutant = Mutate(base, &rng);
    auto result = ParseDimacs(mutant);  // must not crash
    (void)result;
  }
}

TEST(ParserRobustness, PathologicalInputs) {
  EXPECT_FALSE(ParseSystemText(std::string(1 << 16, 'x')).ok());
  EXPECT_FALSE(ParseSystemText("sites 999999999999999999999\n").ok());
  EXPECT_FALSE(ParseSystemText("sites -3\n").ok());
  // Non-ASCII names are tolerated (treated as opaque bytes); the parser
  // just must not crash on them.
  (void)ParseSystemText("sites 1\nentity \xff\xfe 0\n");
  (void)ParseSystemText("sites 1\nentity x 0\ntxn \xc3\xa9\nend\n");
  EXPECT_FALSE(ParseDimacs("p cnf 1 1\n" + std::string(1 << 12, '1')).ok());
}

}  // namespace
}  // namespace dislock
