// SafetyService: concurrent clients multiplexed onto one SessionCore. Pins
// the determinism contract (a trace submitted in a fixed global order
// yields byte-identical responses; `check` reports additionally identical
// across shard counts), per-client response ordering under concurrent
// submission, quit/shutdown semantics, and the counters surface.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/service.h"
#include "util/string_util.h"

namespace dislock {
namespace serve {
namespace {

ServiceOptions Options(int shards, int threads = 1) {
  ServiceOptions options;
  options.session.shards = shards;
  options.session.config.num_threads = threads;
  options.session.load_root = DISLOCK_SOURCE_DIR;
  return options;
}

/// The per-client scripts of the determinism tests: every client adds its
/// own transaction over the shared ring, checks, and removes it. Commands
/// address names, never ids, so the responses are shard-count comparable
/// except for the documented `add` id field.
std::vector<std::vector<std::string>> MakeScripts(int clients) {
  std::vector<std::vector<std::string>> scripts(
      static_cast<size_t>(clients));
  const char* entities[] = {"a", "b", "c"};
  for (int c = 0; c < clients; ++c) {
    std::string name = StrCat("Client", c);
    const char* e = entities[c % 3];
    scripts[static_cast<size_t>(c)] = {
        "add",
        StrCat("txn ", name),
        StrCat("  lock ", e),
        StrCat("  update ", e),
        StrCat("  unlock ", e),
        "end",
        "check",
        StrCat("remove ", name),
        "check",
    };
  }
  return scripts;
}

/// Runs the scripts through `service` in deterministic round-robin global
/// order from one thread; returns each client's concatenated responses.
std::vector<std::string> RunRoundRobin(
    SafetyService* service, const std::vector<std::vector<std::string>>& s) {
  std::vector<std::string> outputs(s.size());
  std::vector<int64_t> ids;
  for (size_t i = 0; i < s.size(); ++i) {
    std::string* sink = &outputs[i];
    ids.push_back(service->OpenClient(
        [sink](const std::string& response) { *sink += response; }));
  }
  for (size_t line = 0;; ++line) {
    bool any = false;
    for (size_t i = 0; i < s.size(); ++i) {
      if (line < s[i].size()) {
        service->Submit(ids[i], s[i][line]);
        any = true;
      }
    }
    if (!any) break;
  }
  service->Drain();
  for (int64_t id : ids) service->CloseClient(id);
  service->Drain();
  return outputs;
}

std::string CheckLinesOnly(const std::vector<std::string>& outputs) {
  std::string result;
  for (const std::string& bytes : outputs) {
    std::istringstream lines(bytes);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("\"cmd\": \"check\"") != std::string::npos) {
        result += line;
        result += '\n';
      }
    }
  }
  return result;
}

TEST(SafetyService, FixedOrderTraceIsDeterministic) {
  auto scripts = MakeScripts(6);
  auto run = [&](int shards, int threads) {
    SafetyService service(Options(shards, threads));
    int64_t loader = service.OpenClient([](const std::string&) {});
    service.Submit(loader, "load data/ring3.dlk");
    service.CloseClient(loader);
    service.Drain();
    return RunRoundRobin(&service, scripts);
  };
  std::vector<std::string> base = run(1, 1);
  // Same shard count: full responses are byte-identical, repeatedly, and
  // at any engine thread count.
  EXPECT_EQ(run(1, 1), base);
  EXPECT_EQ(run(1, 4), base);
  // Across shard counts: check reports are byte-identical ({1,4} shards x
  // {1,4} threads); full responses differ only in lane-allocated add ids.
  std::string base_checks = CheckLinesOnly(base);
  EXPECT_FALSE(base_checks.empty());
  EXPECT_EQ(CheckLinesOnly(run(4, 1)), base_checks);
  EXPECT_EQ(CheckLinesOnly(run(4, 4)), base_checks);
}

TEST(SafetyService, ConcurrentClientsAllSucceed) {
  SafetyService service(Options(/*shards=*/2));
  int64_t loader = service.OpenClient([](const std::string&) {});
  service.Submit(loader, "load data/ring3.dlk");
  service.CloseClient(loader);
  service.Drain();

  constexpr int kClients = 16;
  auto scripts = MakeScripts(kClients);
  std::vector<std::string> outputs(kClients);
  std::vector<int64_t> ids;
  for (int i = 0; i < kClients; ++i) {
    std::string* sink = &outputs[static_cast<size_t>(i)];
    ids.push_back(service.OpenClient(
        [sink](const std::string& response) { *sink += response; }));
  }
  std::vector<std::thread> workers;
  for (int i = 0; i < kClients; ++i) {
    workers.emplace_back([&, i] {
      for (const std::string& line : scripts[static_cast<size_t>(i)]) {
        service.Submit(ids[static_cast<size_t>(i)], line);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  service.Drain();

  // Interleaving is nondeterministic, but per-client responses arrive in
  // that client's submission order and every command succeeds: each client
  // adds a uniquely named transaction and removes its own.
  EXPECT_EQ(service.errors(), 0);
  for (int i = 0; i < kClients; ++i) {
    const std::string& bytes = outputs[static_cast<size_t>(i)];
    size_t add = bytes.find("\"cmd\": \"add\"");
    size_t check = bytes.find("\"cmd\": \"check\"");
    size_t remove = bytes.find("\"cmd\": \"remove\"");
    EXPECT_NE(add, std::string::npos) << bytes;
    EXPECT_NE(check, std::string::npos) << bytes;
    EXPECT_NE(remove, std::string::npos) << bytes;
    EXPECT_LT(add, check);
    EXPECT_LT(check, remove);
    EXPECT_EQ(bytes.find("\"ok\": false"), std::string::npos) << bytes;
  }
  // load + 4 commands per client (the six add-block lines assemble into
  // one `add` command).
  EXPECT_EQ(service.commands(), 1 + kClients * 4);
  EXPECT_EQ(service.clients_opened(), 1 + kClients);
  EXPECT_GE(service.queue_peak(), 1);
}

TEST(SafetyService, QuitClosesOnlyTheIssuingClient) {
  SafetyService service(Options(1));
  std::string a_bytes, b_bytes;
  std::atomic<bool> a_closed{false};
  int64_t a = service.OpenClient(
      [&a_bytes](const std::string& r) { a_bytes += r; },
      [&a_closed] { a_closed = true; });
  int64_t b = service.OpenClient(
      [&b_bytes](const std::string& r) { b_bytes += r; });

  service.Submit(a, "load data/ring3.dlk");
  service.Submit(a, "quit");
  service.Drain();
  EXPECT_TRUE(a_closed.load());
  EXPECT_FALSE(service.ShutdownRequested());

  // Lines after quit are dropped; the other client keeps working.
  service.Submit(a, "check");
  service.Submit(b, "check");
  service.Drain();
  EXPECT_EQ(a_bytes.find("\"cmd\": \"check\""), std::string::npos);
  EXPECT_NE(b_bytes.find("\"cmd\": \"check\""), std::string::npos);
}

TEST(SafetyService, ShutdownVerbAnswersThenFlipsTheFlag) {
  SafetyService service(Options(1));
  std::string bytes;
  int64_t client = service.OpenClient(
      [&bytes](const std::string& r) { bytes += r; });
  EXPECT_FALSE(service.ShutdownRequested());
  service.Submit(client, "shutdown");
  service.WaitForShutdownRequest();
  EXPECT_TRUE(service.ShutdownRequested());
  service.Drain();
  EXPECT_EQ(bytes,
            "{\"schema_version\": 1, \"cmd\": \"shutdown\", \"ok\": true}\n");
}

TEST(SafetyService, CloseMidBlockFlushesTheUnterminatedError) {
  SafetyService service(Options(1));
  std::string bytes;
  int64_t client = service.OpenClient(
      [&bytes](const std::string& r) { bytes += r; });
  service.Submit(client, "load data/ring3.dlk");
  service.Submit(client, "add");
  service.Submit(client, "txn Dangling");
  service.CloseClient(client);  // EOF mid-block
  service.Drain();
  EXPECT_NE(bytes.find("unterminated txn block (missing 'end')"),
            std::string::npos)
      << bytes;
  EXPECT_EQ(service.errors(), 1);
}

TEST(SafetyService, ExportStatsPoursServeCounters) {
  SafetyService service(Options(/*shards=*/2));
  int64_t client = service.OpenClient([](const std::string&) {});
  service.Submit(client, "load data/ring3.dlk");
  service.Submit(client, "check");
  service.Drain();

  obs::MetricsRegistry sink;
  service.ExportStats(&sink);
  EXPECT_EQ(sink.CounterValue("serve.commands"), 2);
  EXPECT_EQ(sink.CounterValue("serve.errors"), 0);
  EXPECT_EQ(sink.CounterValue("serve.clients"), 1);
  // Sharded backend: the per-shard breakdown travels too.
  EXPECT_EQ(sink.GaugeValue("sharded.shards"), 2.0);
}

}  // namespace
}  // namespace serve
}  // namespace dislock
