// Tests for the DL2xx rule family: the deadlock pass (DL201 reachable
// deadlock with replayable witness, DL202 opposing lock orders, DL205
// proven freedom, DL206 budget exhaustion) and the protocols pass (DL203
// tree-protocol violations against the inferred entity forest, DL204
// centralized-image divergence), plus edge-case systems the analyzer must
// handle without noise: empty, single-transaction, shared-lock-only, and a
// four-site deadlock-free instance.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "core/deadlock.h"
#include "core/paper.h"
#include "core/protocols.h"
#include "txn/builder.h"
#include "txn/schedule.h"

namespace dislock {
namespace {

std::vector<const Diagnostic*> WithRule(const AnalysisResult& result,
                                        const std::string& rule) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.rule == rule) out.push_back(&d);
  }
  return out;
}

/// The classic opposed-order pair: T1 = Lx Ly Uy Ux, T2 = Ly Lx Ux Uy.
TransactionSystem MakeOpposedPair(DistributedDatabase* db) {
  TransactionSystem system(db);
  {
    TransactionBuilder b(db, "T1");
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(db, "T2");
    b.Lock("y");
    b.Lock("x");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  return system;
}

TEST(DeadlockPass, ReportsReachableDeadlockWithReplayableWitness) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);

  AnalysisResult result = AnalyzeSystem(system);
  auto dl201 = WithRule(result, "DL201");
  ASSERT_EQ(dl201.size(), 1u);
  EXPECT_EQ(dl201[0]->severity, DiagSeverity::kError);
  ASSERT_TRUE(dl201[0]->deadlock_certificate.has_value());
  // The witness is self-contained: replay it from scratch.
  EXPECT_TRUE(
      VerifyDeadlockWitness(system, *dl201[0]->deadlock_certificate).ok());

  // The hold-and-wait precondition is flagged alongside the proof.
  auto dl202 = WithRule(result, "DL202");
  ASSERT_EQ(dl202.size(), 1u);
  EXPECT_EQ(dl202[0]->severity, DiagSeverity::kWarning);
  EXPECT_EQ(dl202[0]->location.txn, 0);
  EXPECT_EQ(dl202[0]->location.other_txn, 1);

  EXPECT_TRUE(WithRule(result, "DL205").empty());
  EXPECT_TRUE(WithRule(result, "DL206").empty());

  // The full audit re-verifies the witness too.
  EXPECT_TRUE(AuditAnalysis(system, result).ok());
}

TEST(DeadlockPass, TamperedWitnessesAreRejected) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  auto report = AnalyzeDeadlockFreedom(system);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->deadlock_free);
  DeadlockCertificate good = MakeDeadlockCertificate(*report);
  ASSERT_TRUE(VerifyDeadlockWitness(system, good).ok());

  // Truncated prefix: the reached state still has enabled steps.
  DeadlockCertificate truncated = good;
  std::vector<SysStep> events(truncated.prefix.events().begin(),
                              truncated.prefix.events().end() - 1);
  truncated.prefix = Schedule(std::move(events));
  EXPECT_FALSE(VerifyDeadlockWitness(system, truncated).ok());

  // Wrong blocked list.
  DeadlockCertificate wrong_blocked = good;
  wrong_blocked.blocked_txns = {0};
  wrong_blocked.waited_entities = {good.waited_entities[0]};
  EXPECT_FALSE(VerifyDeadlockWitness(system, wrong_blocked).ok());

  // Swapped waits-for entities.
  DeadlockCertificate swapped = good;
  ASSERT_EQ(swapped.waited_entities.size(), 2u);
  std::swap(swapped.waited_entities[0], swapped.waited_entities[1]);
  EXPECT_FALSE(VerifyDeadlockWitness(system, swapped).ok());
}

TEST(DeadlockPass, ProvenFreedomEmitsOnlyDL205) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"T1", "T2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  AnalysisResult result = AnalyzeSystem(system);
  auto dl205 = WithRule(result, "DL205");
  ASSERT_EQ(dl205.size(), 1u);
  EXPECT_EQ(dl205[0]->severity, DiagSeverity::kNote);
  // Against a freedom proof, the hold-and-wait precondition is noise.
  EXPECT_TRUE(WithRule(result, "DL201").empty());
  EXPECT_TRUE(WithRule(result, "DL202").empty());
  EXPECT_TRUE(WithRule(result, "DL206").empty());
}

TEST(DeadlockPass, BudgetExhaustionEmitsDL206AndKeepsDL202) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  AnalysisOptions options;
  options.max_deadlock_states = 1;
  AnalysisResult result = AnalyzeSystem(system, options);
  auto dl206 = WithRule(result, "DL206");
  ASSERT_EQ(dl206.size(), 1u);
  EXPECT_EQ(dl206[0]->severity, DiagSeverity::kWarning);
  // Freedom was not proven, so the precondition warning still fires.
  EXPECT_EQ(WithRule(result, "DL202").size(), 1u);
  EXPECT_TRUE(WithRule(result, "DL201").empty());
  EXPECT_TRUE(WithRule(result, "DL205").empty());
}

TEST(ProtocolsPass, FlagsTreeProtocolViolationAgainstInferredForest) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  {
    // Nests y inside x's section: the inferred forest is y-under-x.
    TransactionBuilder b(&db, "T1");
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  {
    // Locks y without holding x — a second entry point.
    TransactionBuilder b(&db, "T2");
    b.Lock("x");
    b.Unlock("x");
    b.Lock("y");
    b.Unlock("y");
    system.Add(b.Build());
  }
  EntityForest forest = InferEntityForest(system);
  ASSERT_EQ(forest.parent[1], 0);  // y under x
  EXPECT_TRUE(CheckTreeProtocol(system.txn(0), forest).ok());
  EXPECT_FALSE(CheckTreeProtocol(system.txn(1), forest).ok());

  AnalysisResult result = AnalyzeSystem(system);
  auto dl203 = WithRule(result, "DL203");
  ASSERT_EQ(dl203.size(), 1u);
  EXPECT_EQ(dl203[0]->severity, DiagSeverity::kNote);
  EXPECT_EQ(dl203[0]->location.txn, 1);
}

TEST(ProtocolsPass, TrivialForestEmitsNoDL203) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"T1", "T2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Unlock("x");
    b.Lock("y");
    b.Unlock("y");
    system.Add(b.Build());
  }
  AnalysisResult result = AnalyzeSystem(system);
  EXPECT_TRUE(WithRule(result, "DL203").empty());
}

TEST(ProtocolsPass, FlagsImageDivergenceOnFig5) {
  PaperInstance inst = MakeFig5Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);
  auto dl204 = WithRule(result, "DL204");
  ASSERT_FALSE(dl204.empty());
  for (const Diagnostic* d : dl204) {
    EXPECT_EQ(d->severity, DiagSeverity::kNote);
    EXPECT_GE(d->location.txn, 0);
    EXPECT_NE(d->location.step, kInvalidStep);
  }
  // One witness per transaction at most.
  EXPECT_LE(dl204.size(),
            static_cast<size_t>(inst.system->NumTransactions()));
}

TEST(ProtocolsPass, TotallyOrderedTwoPhaseHasNoDivergence) {
  PaperInstance inst = MakeFig4Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);
  EXPECT_TRUE(WithRule(result, "DL204").empty());
}

// ----------------------------------------------------------- edge cases --

TEST(EdgeCases, EmptySystemAnalyzesCleanly) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionSystem system(&db);
  AnalysisResult result = AnalyzeSystem(system);
  EXPECT_FALSE(result.HasErrors());
  EXPECT_EQ(WithRule(result, "DL205").size(), 1u);
  EXPECT_TRUE(WithRule(result, "DL202").empty());
  EXPECT_TRUE(AuditAnalysis(system, result).ok());
}

TEST(EdgeCases, SingleTransactionIsDeadlockFree) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionSystem system(&db);
  TransactionBuilder b(&db, "T1");
  b.Lock("x");
  b.Update("x");
  b.Unlock("x");
  system.Add(b.Build());
  AnalysisResult result = AnalyzeSystem(system);
  EXPECT_FALSE(result.HasErrors());
  EXPECT_EQ(WithRule(result, "DL205").size(), 1u);
  EXPECT_TRUE(WithRule(result, "DL201").empty());
  EXPECT_TRUE(WithRule(result, "DL202").empty());
}

TEST(EdgeCases, SharedLockOnlySystemIsDeadlockFree) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  {
    TransactionBuilder b(&db, "R1");
    b.LockShared("x");
    b.LockShared("y");
    b.UnlockShared("y");
    b.UnlockShared("x");
    system.Add(b.Build());
  }
  {
    // Opposing acquisition order — harmless under shared locks.
    TransactionBuilder b(&db, "R2");
    b.LockShared("y");
    b.LockShared("x");
    b.UnlockShared("x");
    b.UnlockShared("y");
    system.Add(b.Build());
  }
  AnalysisResult result = AnalyzeSystem(system);
  EXPECT_FALSE(result.HasErrors());
  EXPECT_EQ(WithRule(result, "DL205").size(), 1u);
  EXPECT_TRUE(WithRule(result, "DL201").empty());
}

TEST(EdgeCases, FourSiteChainedAcquisitionIsDeadlockFree) {
  // Fig. 5's layout (one entity per site over four sites), but with both
  // transactions acquiring in one globally chained canonical order — the
  // Section 7 discipline — so the system is deadlock-free.
  DistributedDatabase db(4);
  const char* names[] = {"x1", "x2", "y1", "y2"};
  for (int e = 0; e < 4; ++e) db.MustAddEntity(names[e], e);
  TransactionSystem system(&db);
  for (const char* txn_name : {"T1", "T2"}) {
    TransactionBuilder b(&db, txn_name);
    StepId prev = kInvalidStep;
    std::vector<StepId> locks, unlocks;
    for (const char* entity : names) {
      StepId l = b.Lock(entity);
      if (prev != kInvalidStep) b.Edge(prev, l);
      prev = l;
      locks.push_back(l);
    }
    for (int e = 3; e >= 0; --e) {
      StepId u = b.Unlock(names[e]);
      b.Edge(prev, u);
      prev = u;
    }
    system.Add(b.Build());
  }
  ASSERT_TRUE(OrderedLockAcquisition(system));
  AnalysisResult result = AnalyzeSystem(system);
  EXPECT_FALSE(result.HasErrors());
  EXPECT_EQ(WithRule(result, "DL205").size(), 1u);
  EXPECT_TRUE(WithRule(result, "DL202").empty());
  EXPECT_TRUE(AuditAnalysis(system, result).ok());
}

}  // namespace
}  // namespace dislock
