// ShardedCatalog: the byte-identity contract (the merged sharded check
// report equals the single-engine report for any edit script, at any shard
// and thread count), the frozen FootprintHash placement function, lane
// TxnId allocation (globally unique, never reused, id % K = shard), sticky
// shard assignment across Replace, and error-message parity with
// TransactionCatalog.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/decision/context.h"
#include "core/incremental/engine.h"
#include "core/incremental/sharded_catalog.h"
#include "core/multi.h"
#include "core/policy.h"
#include "core/report.h"
#include "txn/catalog.h"
#include "txn/text_format.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dislock {
namespace {

std::string RepoPath(const std::string& relative_path) {
  return std::string(DISLOCK_SOURCE_DIR) + "/" + relative_path;
}

std::string ReadFileOrDie(const std::string& relative_path) {
  std::ifstream in(RepoPath(relative_path));
  EXPECT_TRUE(in.good()) << "cannot open " << relative_path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

EngineConfig TestConfig(int num_threads) {
  EngineConfig config;
  config.max_cycles = 1 << 10;
  config.num_threads = num_threads;
  return config;
}

/// A ring workload whose transactions overlap pairwise on entities, so any
/// K > 1 produces both shard-local and cross-shard conflict pairs.
struct RingFixture {
  explicit RingFixture(int k) : db(std::make_shared<DistributedDatabase>(2)) {
    std::vector<EntityId> entities;
    for (int i = 0; i < k; ++i) {
      entities.push_back(db->MustAddEntity(StrCat("e", i), i % 2));
    }
    for (int i = 0; i < k; ++i) {
      txns.push_back(MakeTwoPhaseTransaction(
          db.get(), StrCat("T", i),
          {entities[static_cast<size_t>(i)],
           entities[static_cast<size_t>((i + 1) % k)]}));
    }
  }
  std::shared_ptr<DistributedDatabase> db;
  std::vector<Transaction> txns;
};

/// Renders a check report against the catalog's own snapshot — the full
/// comparison currency of this file. Reports name transactions through the
/// snapshot view, so lane-allocated ids never leak into the bytes.
std::string ReportJson(const MultiSafetyReport& report,
                       const CatalogSnapshot& snap) {
  return MultiReportToJson(report, snap.View());
}

// ---------------------------------------------------------------------------
// FootprintHash: frozen placement function
// ---------------------------------------------------------------------------

TEST(FootprintHash, DependsOnlyOnLockedEntitySet) {
  RingFixture ring(4);
  const Transaction& t0 = ring.txns[0];
  // Same footprint, different name: same hash.
  Transaction renamed = MakeTwoPhaseTransaction(
      ring.db.get(), "Other",
      {t0.LockedEntities()[0], t0.LockedEntities()[1]});
  EXPECT_EQ(ShardedCatalog::FootprintHash(t0),
            ShardedCatalog::FootprintHash(renamed));
  // Different footprint: different hash (for these small sets).
  EXPECT_NE(ShardedCatalog::FootprintHash(ring.txns[0]),
            ShardedCatalog::FootprintHash(ring.txns[1]));
}

// The hash is part of the persistence contract: a trace sharded today must
// shard the same way in every future build. Pin exact values.
TEST(FootprintHash, PinnedValues) {
  auto db = std::make_shared<DistributedDatabase>(1);
  EntityId e0 = db->MustAddEntity("a", 0);
  EntityId e1 = db->MustAddEntity("b", 0);
  Transaction one = MakeTwoPhaseTransaction(db.get(), "One", {e0});
  Transaction two = MakeTwoPhaseTransaction(db.get(), "Two", {e0, e1});
  // FNV-1a over the 8 little-endian bytes of each sorted EntityId.
  EXPECT_EQ(ShardedCatalog::FootprintHash(one), 0xa8c7f832281a39c5ULL);
  EXPECT_EQ(ShardedCatalog::FootprintHash(two), 0x692558b056101a44ULL);
}

// ---------------------------------------------------------------------------
// Lane TxnId allocation
// ---------------------------------------------------------------------------

TEST(ShardedCatalog, IdsAreUniqueOnLanesAndNeverReused) {
  RingFixture ring(12);
  ShardedCatalog catalog(ring.db.get(), 3, TestConfig(1));
  std::set<TxnId> seen;
  for (const Transaction& t : ring.txns) {
    auto id = catalog.Add(t);
    ASSERT_TRUE(id.ok());
    // Lane invariant: id % K recovers the owning shard, which is the
    // placement function's choice.
    EXPECT_EQ(catalog.ShardOf(*id), catalog.ShardOfFootprint(t));
    EXPECT_TRUE(seen.insert(*id).second) << "duplicate id " << *id;
  }
  // Remove + re-add the same definition: a fresh id on the same lane,
  // never a reused one.
  ASSERT_TRUE(catalog.RemoveByName("T0").ok());
  Transaction again = ring.txns[0];
  auto readded = catalog.Add(again);
  ASSERT_TRUE(readded.ok());
  EXPECT_FALSE(seen.count(*readded)) << "TxnId reuse: " << *readded;
  EXPECT_EQ(catalog.ShardOf(*readded), catalog.ShardOfFootprint(again));
}

TEST(ShardedCatalog, ShardAssignmentIsStickyAcrossReplace) {
  RingFixture ring(8);
  ShardedCatalog catalog(ring.db.get(), 4, TestConfig(1));
  std::vector<TxnId> ids;
  for (const Transaction& t : ring.txns) ids.push_back(*catalog.Add(t));

  // Replace T0 with a definition whose footprint hashes elsewhere; the id
  // (and therefore the shard lane) must not move.
  Transaction moved = MakeTwoPhaseTransaction(
      ring.db.get(), "T0", {ring.txns[3].LockedEntities()[0]});
  int shard_before = catalog.ShardOf(ids[0]);
  ASSERT_TRUE(catalog.Replace(ids[0], moved).ok());
  std::shared_ptr<const Transaction> found = catalog.Find(ids[0]);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->LockedEntities(), moved.LockedEntities());
  EXPECT_EQ(catalog.ShardOf(ids[0]), shard_before);
}

// ---------------------------------------------------------------------------
// Error-message parity with TransactionCatalog
// ---------------------------------------------------------------------------

TEST(ShardedCatalog, ErrorMessagesMatchSingleCatalog) {
  RingFixture ring(4);
  TransactionCatalog single(ring.db.get());
  ShardedCatalog sharded(ring.db.get(), 3, TestConfig(1));
  for (const Transaction& t : ring.txns) {
    ASSERT_TRUE(single.Add(t).ok());
    ASSERT_TRUE(sharded.Add(t).ok());
  }

  // Duplicate name (on a different shard than the original, necessarily
  // global): identical InvalidModel message.
  Transaction dup = MakeTwoPhaseTransaction(
      ring.db.get(), "T2", {ring.txns[0].LockedEntities()[0]});
  EXPECT_EQ(single.Add(dup).status().ToString(),
            sharded.Add(dup).status().ToString());

  // Foreign database object: identical InvalidArgument message.
  auto other_db = std::make_shared<DistributedDatabase>(1);
  EntityId x = other_db->MustAddEntity("x", 0);
  Transaction foreign = MakeTwoPhaseTransaction(other_db.get(), "F", {x});
  EXPECT_EQ(single.Add(foreign).status().ToString(),
            sharded.Add(foreign).status().ToString());

  // Missing id / name: identical NotFound messages.
  EXPECT_EQ(single.Remove(999).ToString(), sharded.Remove(999).ToString());
  EXPECT_EQ(single.RemoveByName("Nope").ToString(),
            sharded.RemoveByName("Nope").ToString());
  EXPECT_EQ(single.Replace(999, ring.txns[0]).ToString(),
            sharded.Replace(999, ring.txns[0]).ToString());
  EXPECT_EQ(single.ReplaceByName("Nope", ring.txns[0]).ToString(),
            sharded.ReplaceByName("Nope", ring.txns[0]).ToString());
}

// ---------------------------------------------------------------------------
// Differential byte-identity: sharded vs single engine
// ---------------------------------------------------------------------------

/// Drives the same named edit script through a single-engine catalog and a
/// K-sharded catalog, checking after every step that the rendered reports
/// are byte-identical. Steps address transactions by name (ids diverge by
/// design — lanes).
struct Differential {
  Differential(const std::shared_ptr<DistributedDatabase>& db, int shards,
               int threads)
      : db(db),
        config(TestConfig(threads)),
        single(db.get()),
        ctx(config),
        engine(&single, &ctx),
        sharded(db.get(), shards, config) {}

  void Add(const Transaction& t) {
    ASSERT_TRUE(single.Add(t).ok());
    ASSERT_TRUE(sharded.Add(t).ok());
  }
  void Remove(const std::string& name) {
    ASSERT_TRUE(single.RemoveByName(name).ok());
    ASSERT_TRUE(sharded.RemoveByName(name).ok());
  }
  void Replace(const std::string& name, const Transaction& t) {
    ASSERT_TRUE(single.ReplaceByName(name, t).ok());
    ASSERT_TRUE(sharded.ReplaceByName(name, t).ok());
  }
  void ExpectIdenticalCheck(const char* where) {
    MultiSafetyReport a = engine.Check();
    MultiSafetyReport b = sharded.Check();
    EXPECT_EQ(ReportJson(a, single.Snapshot()),
              ReportJson(b, sharded.Snapshot()))
        << where << " shards=" << sharded.num_shards()
        << " threads=" << config.num_threads;
    EXPECT_EQ(single.generation(), sharded.generation()) << where;
  }

  std::shared_ptr<DistributedDatabase> db;
  EngineConfig config;
  TransactionCatalog single;
  EngineContext ctx;
  IncrementalSafetyEngine engine;
  ShardedCatalog sharded;
};

class ShardedDifferential
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShardedDifferential, RingEditScript) {
  auto [shards, threads] = GetParam();
  RingFixture ring(10);
  Differential diff(ring.db, shards, threads);
  for (const Transaction& t : ring.txns) diff.Add(t);
  diff.ExpectIdenticalCheck("initial");

  // Break the ring, re-close it, shrink it — check after every edit.
  diff.Replace("T0", MakeTwoPhaseTransaction(
                         ring.db.get(), "T0",
                         {ring.txns[0].LockedEntities()[0]}));
  diff.ExpectIdenticalCheck("replace T0");
  diff.Remove("T5");
  diff.ExpectIdenticalCheck("remove T5");
  diff.Add(MakeTwoPhaseTransaction(ring.db.get(), "T5b",
                                   {ring.txns[5].LockedEntities()[0],
                                    ring.txns[5].LockedEntities()[1]}));
  diff.ExpectIdenticalCheck("re-add T5b");
  diff.ExpectIdenticalCheck("no-op");
}

TEST_P(ShardedDifferential, PaperFigures) {
  auto [shards, threads] = GetParam();
  for (const char* path : {"data/fig4.dlk", "data/fig5.dlk"}) {
    auto parsed = ParseSystemText(ReadFileOrDie(path));
    ASSERT_TRUE(parsed.ok()) << path;
    Differential diff(parsed->db, shards, threads);
    for (int i = 0; i < parsed->system->NumTransactions(); ++i) {
      diff.Add(parsed->system->txn(i));
    }
    diff.ExpectIdenticalCheck(path);
    // Remove and re-add the first transaction: exercises invalidation on
    // both sides of the shard boundary.
    const std::string name = parsed->system->txn(0).name();
    diff.Remove(name);
    diff.ExpectIdenticalCheck("after remove");
    diff.Add(parsed->system->txn(0));
    diff.ExpectIdenticalCheck("after re-add");
  }
}

TEST_P(ShardedDifferential, RandomizedEditScripts) {
  auto [shards, threads] = GetParam();
  RingFixture ring(12);
  Rng rng(0xd15710c4 + static_cast<uint64_t>(shards * 100 + threads));
  Differential diff(ring.db, shards, threads);
  for (const Transaction& t : ring.txns) diff.Add(t);
  diff.ExpectIdenticalCheck("seed");

  std::vector<std::string> live;
  for (const Transaction& t : ring.txns) live.push_back(t.name());
  int fresh = 0;
  for (int step = 0; step < 24; ++step) {
    int action = static_cast<int>(rng.Uniform(3));
    if (action == 0 || live.size() < 4) {
      std::string name = StrCat("R", fresh++);
      int a = static_cast<int>(rng.Uniform(12));
      int b = static_cast<int>(rng.Uniform(12));
      std::vector<EntityId> footprint = {*ring.db->Find(StrCat("e", a))};
      if (b != a) {
        footprint.push_back(*ring.db->Find(StrCat("e", b)));
      }
      diff.Add(MakeTwoPhaseTransaction(ring.db.get(), name, footprint));
      live.push_back(name);
    } else if (action == 1) {
      size_t victim = rng.Uniform(live.size());
      diff.Remove(live[victim]);
      live.erase(live.begin() + static_cast<long>(victim));
    } else {
      size_t victim = rng.Uniform(live.size());
      int a = static_cast<int>(rng.Uniform(12));
      diff.Replace(live[victim],
                   MakeTwoPhaseTransaction(ring.db.get(), live[victim],
                                           {*ring.db->Find(StrCat("e", a))}));
    }
    if (step % 3 == 2) diff.ExpectIdenticalCheck("random step");
  }
  diff.ExpectIdenticalCheck("final");
}

INSTANTIATE_TEST_SUITE_P(
    ShardThreadGrid, ShardedDifferential,
    ::testing::Values(std::pair<int, int>{1, 1}, std::pair<int, int>{1, 4},
                      std::pair<int, int>{3, 1}, std::pair<int, int>{3, 4},
                      std::pair<int, int>{4, 1}, std::pair<int, int>{4, 4}));

// ---------------------------------------------------------------------------
// Stats surface
// ---------------------------------------------------------------------------

TEST(ShardedCatalog, TracksLocalAndCrossPairs) {
  RingFixture ring(8);
  ShardedCatalog catalog(ring.db.get(), 2, TestConfig(1));
  for (const Transaction& t : ring.txns) ASSERT_TRUE(catalog.Add(t).ok());
  catalog.Check();
  // A ring of 8 has 8 conflicting pairs; with 2 shards some must cross.
  EXPECT_EQ(catalog.local_pairs() + catalog.cross_pairs(), 8);
  EXPECT_GE(catalog.CrossShardRatio(), 0.0);
  EXPECT_LE(catalog.CrossShardRatio(), 1.0);
  // Store union: every pair verdict lives in exactly one store.
  EXPECT_EQ(catalog.PairStoreSize(), 8);
  std::vector<ShardStats> breakdown = catalog.ShardBreakdown();
  ASSERT_EQ(breakdown.size(), 2u);
  EXPECT_EQ(breakdown[0].transactions + breakdown[1].transactions, 8);
}

}  // namespace
}  // namespace dislock
