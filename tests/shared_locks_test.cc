// The shared-locks extension (Section 1's "variants of locking ... change
// the theory very little"): operational semantics of reader/writer locks
// and the adjusted conflict-graph theory (read-read sections drop out of
// V), cross-validated against the exhaustive schedule oracle.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/conflict_graph.h"
#include "core/safety.h"
#include "sim/scheduler.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "txn/linear_extension.h"
#include "txn/text_format.h"

namespace dislock {
namespace {

/// Two transactions read-locking x concurrently (plus a private entity each
/// so the schedule space is interesting).
struct ReadersFixture {
  DistributedDatabase db{1};
  TransactionSystem system{&db};
  ReadersFixture() {
    db.MustAddEntity("x", 0);
    db.MustAddEntity("a", 0);
    db.MustAddEntity("b", 0);
    {
      TransactionBuilder b1(&db, "R1");
      b1.LockShared("x");
      b1.LockUpdateUnlock("a");
      b1.UnlockShared("x");
      system.Add(b1.Build());
    }
    {
      TransactionBuilder b2(&db, "R2");
      b2.LockShared("x");
      b2.LockUpdateUnlock("b");
      b2.UnlockShared("x");
      system.Add(b2.Build());
    }
  }
};

TEST(SharedLocks, ValidationRules) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  // Shared lock, exclusive unlock: rejected.
  {
    TransactionBuilder b(&db, "T");
    b.LockShared("x");
    b.Unlock("x");
    EXPECT_FALSE(b.BuildValidated().ok());
  }
  // Update inside a shared section: rejected.
  {
    TransactionBuilder b(&db, "T");
    b.LockShared("x");
    b.Update("x");
    b.UnlockShared("x");
    EXPECT_FALSE(b.BuildValidated().ok());
  }
  // Proper read section: accepted.
  {
    TransactionBuilder b(&db, "T");
    b.LockShared("x");
    b.UnlockShared("x");
    EXPECT_TRUE(b.BuildValidated().ok());
  }
}

TEST(SharedLocks, ReadSectionsMayOverlapInSchedules) {
  ReadersFixture f;
  // Interleave the two read sections: SLx_1 SLx_2 ... both held at once.
  Schedule h;
  h.Append(0, 0);  // SLx_1
  h.Append(1, 0);  // SLx_2 — legal: shared
  for (StepId s = 1; s < 5; ++s) h.Append(0, s);
  for (StepId s = 1; s < 5; ++s) h.Append(1, s);
  EXPECT_TRUE(CheckScheduleLegal(f.system, h).ok())
      << CheckScheduleLegal(f.system, h).ToString();
  EXPECT_TRUE(IsSerializable(f.system, h));
}

TEST(SharedLocks, WriteSectionsStillExclude) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionSystem system(&db);
  TransactionBuilder b1(&db, "R");
  b1.LockShared("x");
  b1.UnlockShared("x");
  system.Add(b1.Build());
  TransactionBuilder b2(&db, "W");
  b2.Lock("x");
  b2.Update("x");
  b2.Unlock("x");
  system.Add(b2.Build());
  // Writer inside the read section: illegal.
  Schedule h;
  h.Append(0, 0);  // SLx_1
  h.Append(1, 0);  // Lx_2 while read-held
  h.Append(1, 1);
  h.Append(1, 2);
  h.Append(0, 1);
  EXPECT_FALSE(CheckScheduleLegal(system, h).ok());
}

TEST(SharedLocks, ReadReadEntitiesDropOutOfD) {
  ReadersFixture f;
  ConflictGraph d = BuildConflictGraph(f.system.txn(0), f.system.txn(1));
  EXPECT_EQ(d.graph.NumNodes(), 0);  // x is read-read; a, b are private
  PairSafetyReport report = AnalyzePairSafety(f.system.txn(0),
                                              f.system.txn(1));
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
  auto oracle = ExhaustiveScheduleSafety(f.system, 1 << 20);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(oracle->safe);
}

TEST(SharedLocks, ReadWriteConflictsStillCount) {
  // T1 reads x then writes y; T2 reads y then writes x — the read/write
  // sections conflict, D is empty of arcs, and the system is unsafe.
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionSystem system(&db);
  {
    TransactionBuilder b(&db, "T1");
    b.LockShared("x");
    StepId ux = b.UnlockShared("x");
    StepId ly = b.Lock("y");
    b.Update("y");
    b.Unlock("y");
    b.Edge(ux, ly);
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(&db, "T2");
    b.LockShared("y");
    StepId uy = b.UnlockShared("y");
    StepId lx = b.Lock("x");
    b.Update("x");
    b.Unlock("x");
    b.Edge(uy, lx);
    system.Add(b.Build());
  }
  ConflictGraph d = BuildConflictGraph(system.txn(0), system.txn(1));
  EXPECT_EQ(d.graph.NumNodes(), 2);
  PairSafetyReport report =
      AnalyzePairSafety(system.txn(0), system.txn(1));
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnsafe);
  ASSERT_TRUE(report.certificate.has_value());
  EXPECT_TRUE(CheckScheduleLegal(system, report.certificate->schedule).ok());
  EXPECT_FALSE(IsSerializable(system, report.certificate->schedule));
}

TEST(SharedLocks, MonteCarloRespectsReaderConcurrency) {
  ReadersFixture f;
  Rng rng(91);
  MonteCarloStats stats = SampleSafety(f.system, 3000, &rng,
                                       /*keep_going=*/true);
  EXPECT_EQ(stats.non_serializable, 0);
  EXPECT_EQ(stats.deadlocked, 0);
  EXPECT_EQ(stats.completed, 3000);
}

TEST(SharedLocks, TextFormatRoundTrip) {
  constexpr char kText[] = R"(
sites 1
entity x 0
entity a 0
txn R1
  slock x
  lock a
  update a
  unlock a
  sunlock x
end
)";
  auto parsed = ParseSystemText(kText);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Transaction& t = parsed->system->txn(0);
  EXPECT_TRUE(t.GetStep(0).shared);
  EXPECT_FALSE(t.GetStep(1).shared);
  auto reparsed = ParseSystemText(SystemToText(*parsed->system));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(reparsed->system->txn(0).GetStep(0).shared);
}

TEST(SharedLocks, LinearizePreservesSharedness) {
  // Regression: Linearize used to drop the shared flag, so certificate
  // chains treated read locks as exclusive and could separate a read-read
  // entity — producing a "witness" that did not replay against the
  // original system (found by dislock_stress, seed 7).
  constexpr char kRepro[] = R"(
sites 2
entity e0 0
entity e1 1
entity e2 0
txn T1 nochain
  slock e2
  sunlock e2
  lock e0
  update e0
  unlock e0
  slock e1
  sunlock e1
  edge 0 1
  edge 1 2
  edge 2 3
  edge 3 4
  edge 5 6
end
txn T2 nochain
  slock e2
  lock e0
  update e0
  unlock e0
  sunlock e2
  lock e1
  update e1
  unlock e1
  edge 0 1
  edge 1 2
  edge 2 3
  edge 2 5
  edge 3 4
  edge 5 6
  edge 6 7
end
)";
  auto parsed = ParseSystemText(kRepro);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TransactionSystem& system = *parsed->system;

  // Linearize must keep the shared flags.
  Rng rng(7);
  std::vector<StepId> order = RandomLinearExtension(system.txn(1), &rng);
  ASSERT_FALSE(order.empty());
  auto lin = Linearize(system.txn(1), order);
  ASSERT_TRUE(lin.ok());
  EntityId e2 = parsed->db->Find("e2").value();
  EXPECT_TRUE(lin->IsSharedSection(e2));

  // The analyzer's certificate must separate a genuinely conflicting
  // entity (never the read-read e2) and replay against the original.
  PairSafetyReport report = AnalyzePairSafety(system.txn(0), system.txn(1));
  ASSERT_EQ(report.verdict, SafetyVerdict::kUnsafe);
  ASSERT_TRUE(report.certificate.has_value());
  for (EntityId x : report.certificate->dominator) EXPECT_NE(x, e2);
  EXPECT_TRUE(
      CheckScheduleLegal(system, report.certificate->schedule).ok());
  EXPECT_FALSE(IsSerializable(system, report.certificate->schedule));
}

TEST(SharedLocks, AnalyzerMatchesOracleOnRandomSharedWorkloads) {
  Rng rng(20260705);
  int checked = 0;
  int unsafe_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    WorkloadParams params;
    params.num_sites = 2;
    params.num_entities = 3;
    params.num_transactions = 2;
    params.lock_probability = 0.9;
    params.shared_probability = 0.5;
    params.cross_site_arcs = 1;
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok()) << w.system->ToString();

    PairSafetyReport report =
        AnalyzePairSafety(w.system->txn(0), w.system->txn(1));
    if (report.verdict == SafetyVerdict::kUnknown) continue;
    auto oracle = ExhaustiveScheduleSafety(*w.system, 1 << 18);
    if (!oracle.ok()) continue;
    EXPECT_EQ(report.verdict == SafetyVerdict::kSafe, oracle->safe)
        << "method=" << DecisionMethodName(report.method) << "\n"
        << w.system->ToString();
    ++checked;
    if (!oracle->safe) ++unsafe_seen;
  }
  EXPECT_GT(checked, 20);
  EXPECT_GT(unsafe_seen, 3);
}

}  // namespace
}  // namespace dislock
