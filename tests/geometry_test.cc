// Unit tests for the geometric method: pictures, rectangles, curves,
// separation (Proposition 1), and the naive grid-BFS unsafety test.

#include <gtest/gtest.h>

#include "core/conflict_graph.h"
#include "core/paper.h"
#include "geometry/curve.h"
#include "geometry/picture.h"
#include "graph/scc.h"
#include "txn/builder.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// The Fig. 2 pair (both totally ordered).
struct Fig2 {
  PaperInstance inst = MakeFig2Instance();
  const Transaction& t1() { return inst.system->txn(0); }
  const Transaction& t2() { return inst.system->txn(1); }
};

TEST(Picture, TotalOrderOfRejectsPartialOrders) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionBuilder b(&db);
  b.Lock("x");
  b.Lock("y");  // concurrent with the x steps
  b.Unlock("x");
  b.Unlock("y");
  EXPECT_FALSE(TotalOrderOf(b.Build()).ok());
}

TEST(Picture, RectangleCoordinatesMatchStepPositions) {
  Fig2 f;
  auto pic = PairPicture::Make(f.t1(), f.t2());
  ASSERT_TRUE(pic.ok());
  // t1 = Lx Ly x y Ux Uy Lz z Uz: x locked at position 1, unlocked at 5.
  for (const Rect& r : pic->rects()) {
    if (f.inst.db->NameOf(r.entity) == "x") {
      EXPECT_EQ(r.lx1, 1);
      EXPECT_EQ(r.ux1, 5);
      // t2 = Lz z Uz Ly Lx x y Ux Uy: x locked at 5, unlocked at 8.
      EXPECT_EQ(r.lx2, 5);
      EXPECT_EQ(r.ux2, 8);
    }
    if (f.inst.db->NameOf(r.entity) == "z") {
      EXPECT_EQ(r.lx1, 7);
      EXPECT_EQ(r.ux1, 9);
      EXPECT_EQ(r.lx2, 1);
      EXPECT_EQ(r.ux2, 3);
    }
  }
}

TEST(Picture, RenderShowsForbiddenRegions) {
  Fig2 f;
  auto pic = PairPicture::Make(f.t1(), f.t2());
  ASSERT_TRUE(pic.ok());
  std::string ascii = pic->Render(*f.inst.system);
  EXPECT_NE(ascii.find('#'), std::string::npos);
  EXPECT_NE(ascii.find("Lx"), std::string::npos);
}

TEST(Curve, RoundTripsThroughSchedule) {
  Fig2 f;
  auto pic = PairPicture::Make(f.t1(), f.t2());
  ASSERT_TRUE(pic.ok());
  CurveHeights heights(pic->num_steps1() + 1, 0);
  // Diagonal-ish staircase.
  for (int c = 0; c <= pic->num_steps1(); ++c) heights[c] = c;
  Schedule h = CurveToSchedule(*pic, heights);
  EXPECT_EQ(h.size(), 18u);
  CurveHeights back = ScheduleToCurve(*pic, h);
  for (int c = 0; c < pic->num_steps1(); ++c) EXPECT_EQ(back[c], heights[c]);
}

TEST(Curve, FindSeparatingCurveRequiresPartition) {
  Fig2 f;
  auto pic = PairPicture::Make(f.t1(), f.t2());
  ASSERT_TRUE(pic.ok());
  EntityId x = f.inst.db->Find("x").value();
  EntityId y = f.inst.db->Find("y").value();
  EntityId z = f.inst.db->Find("z").value();
  EXPECT_FALSE(FindSeparatingCurve(*pic, {x}, {z}).ok());       // y missing
  EXPECT_FALSE(FindSeparatingCurve(*pic, {x, y}, {y, z}).ok()); // overlap
}

TEST(Curve, SeparatesZAboveXYBelow) {
  Fig2 f;
  auto pic = PairPicture::Make(f.t1(), f.t2());
  ASSERT_TRUE(pic.ok());
  EntityId x = f.inst.db->Find("x").value();
  EntityId y = f.inst.db->Find("y").value();
  EntityId z = f.inst.db->Find("z").value();
  auto curve = FindSeparatingCurve(*pic, /*pass_above=*/{z},
                                   /*pass_below=*/{x, y});
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  Schedule h = CurveToSchedule(*pic, curve.value());
  TransactionSystem pair(f.inst.db.get());
  pair.Add(f.t1());
  pair.Add(f.t2());
  EXPECT_TRUE(CheckScheduleLegal(pair, h).ok());
  EXPECT_FALSE(IsSerializable(pair, h));
  auto sep = FindSeparation(*pic, h);
  ASSERT_TRUE(sep.has_value());
}

TEST(Curve, InfeasiblePartitionIsDetected) {
  // A safe pair (both strongly two-phase): any split should fail because no
  // monotone curve can separate intersecting rectangle constraints.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"t1", "t2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Lock("y");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  auto pic = PairPicture::Make(system.txn(0), system.txn(1));
  ASSERT_TRUE(pic.ok());
  EntityId x = db.Find("x").value();
  EntityId y = db.Find("y").value();
  EXPECT_FALSE(FindSeparatingCurve(*pic, {x}, {y}).ok());
  EXPECT_FALSE(FindSeparatingCurve(*pic, {y}, {x}).ok());
}

TEST(NaiveGeometric, SafePairHasNoWitness) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"t1", "t2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Lock("y");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  auto pic = PairPicture::Make(system.txn(0), system.txn(1));
  ASSERT_TRUE(pic.ok());
  auto witness = NaiveGeometricUnsafetyTest(*pic);
  EXPECT_FALSE(witness.ok());
  EXPECT_EQ(witness.status().code(), StatusCode::kNotFound);
}

TEST(NaiveGeometric, AgreesWithStrongConnectivityOnRandomPairs) {
  // Proposition 1 + Theorem 1/2: for totally ordered pairs, a separating
  // schedule exists iff D(t1,t2) is not strongly connected.
  Rng rng(1234);
  int unsafe_seen = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const int k = 2 + static_cast<int>(rng.Uniform(3));  // 2..4 entities
    DistributedDatabase db(1);
    TransactionSystem system(&db);
    for (int e = 0; e < k; ++e) {
      db.MustAddEntity(StrCat("e", e), 0);
    }
    for (int t = 0; t < 2; ++t) {
      // Random legal shuffle of L/U tokens.
      std::vector<int> tokens;
      for (int e = 0; e < k; ++e) {
        tokens.push_back(e);
        tokens.push_back(e);
      }
      rng.Shuffle(&tokens);
      std::vector<bool> seen(k, false);
      TransactionBuilder b(&db, StrCat("t", t + 1));
      for (int e : tokens) {
        if (!seen[e]) {
          b.Add(StepKind::kLock, e);
          seen[e] = true;
        } else {
          b.Add(StepKind::kUnlock, e);
        }
      }
      system.Add(b.Build());
    }
    auto pic = PairPicture::Make(system.txn(0), system.txn(1));
    ASSERT_TRUE(pic.ok());
    ConflictGraph d = BuildConflictGraph(system.txn(0), system.txn(1));
    bool safe_by_scc = IsStronglyConnected(d.graph);
    auto witness = NaiveGeometricUnsafetyTest(*pic);
    EXPECT_EQ(!witness.ok(), safe_by_scc) << "trial " << trial;
    if (witness.ok()) {
      ++unsafe_seen;
      EXPECT_TRUE(CheckScheduleLegal(system, witness->schedule).ok());
      EXPECT_FALSE(IsSerializable(system, witness->schedule));
    }
  }
  EXPECT_GT(unsafe_seen, 10);
}

TEST(ScheduleSides, DetectsThroughOnIllegalSchedule) {
  // Interleave the lock sections on x (illegal): side should be kThrough.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionSystem system(&db);
  for (const char* name : {"t1", "t2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Unlock("x");
    system.Add(b.Build());
  }
  auto pic = PairPicture::Make(system.txn(0), system.txn(1));
  ASSERT_TRUE(pic.ok());
  Schedule h;
  h.Append(0, 0);  // Lx_1
  h.Append(1, 0);  // Lx_2 (illegal)
  h.Append(0, 1);
  h.Append(1, 1);
  auto sides = ScheduleSides(*pic, h);
  ASSERT_EQ(sides.size(), 1u);
  EXPECT_EQ(sides[0], RectSide::kThrough);
}

}  // namespace
}  // namespace dislock
