// Tests for the repair-synthesis subsystem (analysis/repair/): the edit
// builders (widen / reorder / canonical two-phase rebuild), the engine's
// verified-only contract — every repair it reports must independently
// re-verify as safe AND deadlock-free from a fresh context, at one and at
// four threads — and the parse -> repair -> parse round trip behind
// `dislock fix`.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/repair/edit.h"
#include "analysis/repair/engine.h"
#include "core/deadlock.h"
#include "core/multi.h"
#include "core/paper.h"
#include "core/policy.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "txn/text_format.h"
#include "txn/validate.h"

namespace dislock {
namespace {

/// T1 = Lx Ly Uy Ux, T2 = Ly Lx Ux Uy: safe (both two-phase) but the
/// opposed acquisition orders make a deadlock reachable.
TransactionSystem MakeOpposedPair(DistributedDatabase* db) {
  TransactionSystem system(db);
  {
    TransactionBuilder b(db, "T1");
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(db, "T2");
    b.Lock("y");
    b.Lock("x");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  return system;
}

/// Independent re-verification of a repair: parse the emitted text with a
/// fresh database and re-run both analyses from scratch.
void ExpectRepairVerifies(const VerifiedRepair& repair, int num_threads) {
  auto parsed = ParseSystemText(repair.repaired_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString()
                           << "\n" << repair.repaired_text;
  MultiSafetyOptions options;
  options.num_threads = num_threads;
  MultiSafetyReport safety = AnalyzeMultiSafety(*parsed->system, options);
  EXPECT_EQ(safety.verdict, SafetyVerdict::kSafe) << repair.repaired_text;
  auto deadlock = AnalyzeDeadlockFreedom(*parsed->system);
  ASSERT_TRUE(deadlock.ok());
  EXPECT_TRUE(deadlock->deadlock_free) << repair.repaired_text;
}

// ------------------------------------------------------- edit builders --

TEST(RepairEdits, WidenTwoPhaseAddsOnlyMissingArcs) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  // Sections at different sites, no cross-site arcs: Ux and Ly concurrent.
  TransactionBuilder b(&db, "T");
  b.Lock("x");
  b.Unlock("x");
  b.Lock("y");
  b.Unlock("y");
  Transaction t = b.Build();
  ASSERT_FALSE(IsStronglyTwoPhase(t));
  int arcs = 0;
  auto widened = WidenTwoPhase(t, &arcs);
  ASSERT_TRUE(widened.has_value());
  EXPECT_GT(arcs, 0);
  EXPECT_TRUE(IsStronglyTwoPhase(*widened));
  // Idempotent: widening a two-phase transaction adds nothing.
  int again = -1;
  auto rewidened = WidenTwoPhase(*widened, &again);
  ASSERT_TRUE(rewidened.has_value());
  EXPECT_EQ(again, 0);
}

TEST(RepairEdits, WidenTwoPhaseRefusesForcedUnlockBeforeLock) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  // Single site: Ux is totally ordered before Ly, so no widening exists.
  TransactionBuilder b(&db, "T");
  b.Lock("x");
  b.Unlock("x");
  b.Lock("y");
  b.Unlock("y");
  EXPECT_FALSE(WidenTwoPhase(b.Build()).has_value());
}

TEST(RepairEdits, ReorderCanonicalSectionsIsValidAndOrdered) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionBuilder b(&db, "T");
  b.Lock("y");
  b.Update("y");
  b.Lock("x");
  b.Update("x");
  b.Unlock("x");
  b.Unlock("y");
  Transaction reordered = ReorderCanonicalSections(b.Build());
  ValidateOptions options;
  EXPECT_TRUE(ValidateTransaction(reordered, options).ok());
  // Sequential sections in canonical order: two such transactions can
  // never hold-and-wait.
  DistributedDatabase* dbp = &db;
  TransactionSystem pair(dbp);
  pair.Add(reordered);
  Transaction copy = reordered;
  copy.set_name("T2");
  pair.Add(copy);
  EXPECT_TRUE(OrderedLockAcquisition(pair));
}

TEST(RepairEdits, RebuildCanonicalTwoPhaseIsStronglyTwoPhase) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionBuilder b(&db, "T");
  b.Lock("y");
  b.Update("y");
  b.Unlock("y");
  b.Lock("x");
  b.Update("x");
  b.Unlock("x");
  Transaction rebuilt = RebuildCanonicalTwoPhase(b.Build());
  ValidateOptions options;
  EXPECT_TRUE(ValidateTransaction(rebuilt, options).ok());
  EXPECT_TRUE(IsStronglyTwoPhase(rebuilt));
  EXPECT_EQ(rebuilt.NumSteps(), 6);
}

// -------------------------------------------------------------- engine --

TEST(RepairEngine, NothingToRepairOnSafeDeadlockFreeSystem) {
  // Two-phase transactions acquiring in the same order: safe AND
  // deadlock-free. (Fig. 4 would not do here — it is safe by Theorem 1
  // yet a deadlock is reachable, and the engine rightly repairs it.)
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"T1", "T2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  RepairReport report = SynthesizeRepairs(system);
  EXPECT_FALSE(report.attempted);
  EXPECT_TRUE(report.repairs.empty());
  EXPECT_EQ(report.candidates_tried, 0);
}

TEST(RepairEngine, RepairsFig4Deadlock) {
  // Fig. 4 is the subtle case: provably safe (D strongly connected) but a
  // deadlock is reachable. The repair must preserve safety while removing
  // the deadlock.
  PaperInstance inst = MakeFig4Instance();
  RepairReport report = SynthesizeRepairs(*inst.system);
  EXPECT_TRUE(report.attempted);
  EXPECT_EQ(report.safety_before, SafetyVerdict::kSafe);
  EXPECT_FALSE(report.deadlock_free_before);
  ASSERT_FALSE(report.repairs.empty());
  for (const VerifiedRepair& r : report.repairs) {
    ExpectRepairVerifies(r, /*num_threads=*/1);
  }
}

TEST(RepairEngine, RepairsHoldAndWaitDeadlock) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  RepairReport report = SynthesizeRepairs(system);
  EXPECT_TRUE(report.attempted);
  EXPECT_FALSE(report.deadlock_free_before);
  ASSERT_FALSE(report.repairs.empty());
  EXPECT_EQ(report.candidates_verified,
            static_cast<int64_t>(report.repairs.size()));
  for (const VerifiedRepair& r : report.repairs) {
    EXPECT_EQ(r.safety_after, SafetyVerdict::kSafe);
    EXPECT_TRUE(r.deadlock_free_after);
    ExpectRepairVerifies(r, /*num_threads=*/1);
  }
}

TEST(RepairEngine, RepairsFig1Unsafety) {
  PaperInstance inst = MakeFig1Instance();
  RepairReport report = SynthesizeRepairs(*inst.system);
  EXPECT_TRUE(report.attempted);
  EXPECT_EQ(report.safety_before, SafetyVerdict::kUnsafe);
  ASSERT_FALSE(report.repairs.empty());
  for (const VerifiedRepair& r : report.repairs) {
    ExpectRepairVerifies(r, /*num_threads=*/1);
    ExpectRepairVerifies(r, /*num_threads=*/4);
  }
}

TEST(RepairEngine, RepairedTextRoundTripsThroughTheParser) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  RepairReport report = SynthesizeRepairs(system);
  ASSERT_FALSE(report.repairs.empty());
  for (const VerifiedRepair& r : report.repairs) {
    auto parsed = ParseSystemText(r.repaired_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    // The canonical serialization is a fixed point of parse -> print.
    EXPECT_EQ(SystemToText(*parsed->system), r.repaired_text);
  }
}

TEST(RepairEngine, DeterministicAcrossThreadCounts) {
  PaperInstance inst = MakeFig1Instance();
  RepairOptions one, four;
  one.engine.num_threads = 1;
  four.engine.num_threads = 4;
  RepairReport a = SynthesizeRepairs(*inst.system, one);
  RepairReport b = SynthesizeRepairs(*inst.system, four);
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  EXPECT_EQ(a.candidates_tried, b.candidates_tried);
  for (size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].repaired_text, b.repairs[i].repaired_text);
    EXPECT_EQ(a.repairs[i].edit.description, b.repairs[i].edit.description);
  }
}

TEST(RepairEngine, RandomizedRepairsIndependentlyReverify) {
  // Property: whatever the engine emits on randomized broken instances,
  // each repair re-verifies from a fresh context at 1 and 4 threads.
  Rng rng(0xF1D0);
  int attempted = 0;
  int verified = 0;
  for (int trial = 0; trial < 30; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + (trial % 2);
    params.num_entities = 3 + (trial % 2);
    params.num_transactions = 2;
    params.lock_probability = 1.0;
    Workload w = MakeRandomWorkload(params, &rng);
    RepairOptions options;
    options.max_candidates = 32;
    RepairReport report = SynthesizeRepairs(*w.system, options);
    if (!report.attempted) continue;
    ++attempted;
    for (const VerifiedRepair& r : report.repairs) {
      ++verified;
      ExpectRepairVerifies(r, /*num_threads=*/1);
      ExpectRepairVerifies(r, /*num_threads=*/4);
    }
  }
  // The workload mix must actually exercise the engine.
  EXPECT_GT(attempted, 5);
  EXPECT_GT(verified, 5);
}

}  // namespace
}  // namespace dislock
