// Tests for the many-transaction analysis (Section 6, Proposition 2):
// transaction conflict graph G, the B_ijk / B_c graphs, and the combined
// safety test, cross-validated against the schedule-enumeration oracle.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/multi.h"
#include "core/paper.h"
#include "core/policy.h"
#include "graph/cycles.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "util/string_util.h"

namespace dislock {
namespace {

TEST(ConflictGraphG, EdgesNeedCommonLockedEntity) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  TransactionBuilder b1(&db, "T1");
  b1.LockUpdateUnlock("x");
  system.Add(b1.Build());
  TransactionBuilder b2(&db, "T2");
  b2.LockUpdateUnlock("x");
  b2.LockUpdateUnlock("y");
  system.Add(b2.Build());
  TransactionBuilder b3(&db, "T3");
  b3.LockUpdateUnlock("y");
  system.Add(b3.Build());
  Digraph g = BuildTransactionConflictGraph(system);
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_TRUE(g.HasArc(1, 0));
  EXPECT_TRUE(g.HasArc(1, 2));
  EXPECT_FALSE(g.HasArc(0, 2));  // no common entity
}

TEST(MultiSafety, PairwiseUnsafetyIsDetectedFirst) {
  // The Fig. 1 unsafe pair, plus a third transaction touching only y.
  PaperInstance inst = MakeFig1Instance();
  TransactionBuilder b3(inst.db.get(), "T3");
  b3.LockUpdateUnlock("y");
  inst.system->Add(b3.Build());
  MultiSafetyReport report = AnalyzeMultiSafety(*inst.system);
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnsafe);
  ASSERT_TRUE(report.failing_pair.has_value());
  EXPECT_EQ(report.failing_pair->first, 0);
  EXPECT_EQ(report.failing_pair->second, 1);
}

TEST(MultiSafety, StronglyTwoPhaseSystemsAreSafe) {
  for (int k : {2, 3, 4}) {
    DistributedDatabase db(2);
    std::vector<EntityId> all;
    for (int e = 0; e < 3; ++e) {
      all.push_back(
          db.MustAddEntity(StrCat("e", e), e % 2));
    }
    TransactionSystem system(&db);
    for (int t = 0; t < k; ++t) {
      system.Add(MakeTwoPhaseTransaction(
          &db, StrCat("T", t + 1), all));
    }
    MultiSafetyReport report = AnalyzeMultiSafety(system);
    EXPECT_EQ(report.verdict, SafetyVerdict::kSafe) << k << " transactions";
    if (k >= 3) {
      EXPECT_GT(report.cycles_checked, 0);  // no 3-cycles at k=2
    }
  }
}

TEST(MultiSafety, ThreeTxnCycleUnsafety) {
  // Classic 3-transaction anomaly: pairwise-safe (each pair shares only one
  // entity) but the global cycle is non-serializable. T1: x then y... use
  // three entities a, b, c with Ti taking (a,b), (b,c), (c,a) sequentially.
  DistributedDatabase db(1);
  db.MustAddEntity("a", 0);
  db.MustAddEntity("b", 0);
  db.MustAddEntity("c", 0);
  TransactionSystem system(&db);
  auto add_seq = [&](const char* name, const char* e1, const char* e2) {
    TransactionBuilder b(&db, name);
    b.LockUpdateUnlock(e1);
    b.LockUpdateUnlock(e2);
    system.Add(b.Build());
  };
  add_seq("T1", "a", "b");
  add_seq("T2", "b", "c");
  add_seq("T3", "c", "a");

  // Each pair shares exactly one entity => pairwise trivially safe.
  MultiSafetyReport report = AnalyzeMultiSafety(system);
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnsafe);
  EXPECT_EQ(report.failing_cycle.size(), 3u);

  // Ground truth: the schedule oracle agrees.
  auto oracle = ExhaustiveScheduleSafety(system, 1 << 22);
  ASSERT_TRUE(oracle.ok());
  EXPECT_FALSE(oracle->safe);
}

TEST(MultiSafety, ThreeTwoPhaseTxnsOnSharedEntitiesAreSafe) {
  // Same access pattern but strongly two-phase: safe, and every 3-cycle's
  // B_c graph must have a cycle.
  DistributedDatabase db(1);
  EntityId a = db.MustAddEntity("a", 0);
  EntityId b_ = db.MustAddEntity("b", 0);
  EntityId c = db.MustAddEntity("c", 0);
  TransactionSystem system(&db);
  system.Add(MakeTwoPhaseTransaction(&db, "T1", {a, b_}));
  system.Add(MakeTwoPhaseTransaction(&db, "T2", {b_, c}));
  system.Add(MakeTwoPhaseTransaction(&db, "T3", {c, a}));
  MultiSafetyReport report = AnalyzeMultiSafety(system);
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
  auto oracle = ExhaustiveScheduleSafety(system, 1 << 22);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(oracle->safe);
}

TEST(MultiSafety, AgreesWithScheduleOracleOnRandomSystems) {
  Rng rng(777);
  int safe_seen = 0;
  int unsafe_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    WorkloadParams params;
    params.num_sites = 1;  // centralized: Prop. 2's home turf
    params.num_entities = 3;
    params.num_transactions = 3;
    params.lock_probability = 0.6;
    params.cross_site_arcs = 0;
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok());
    auto oracle = ExhaustiveScheduleSafety(*w.system, 1 << 20);
    if (!oracle.ok()) continue;  // too many schedules; skip
    MultiSafetyReport report = AnalyzeMultiSafety(*w.system);
    if (report.verdict == SafetyVerdict::kUnknown) continue;
    EXPECT_EQ(report.verdict == SafetyVerdict::kSafe, oracle->safe)
        << "trial " << trial << "\n"
        << w.system->ToString();
    (oracle->safe ? safe_seen : unsafe_seen) += 1;
  }
  EXPECT_GT(safe_seen, 3);
  EXPECT_GT(unsafe_seen, 3);
}

TEST(BuildCycleGraph, NodesGlueAtSharedPairs) {
  DistributedDatabase db(1);
  EntityId a = db.MustAddEntity("a", 0);
  EntityId b_ = db.MustAddEntity("b", 0);
  EntityId c = db.MustAddEntity("c", 0);
  TransactionSystem system(&db);
  system.Add(MakeTwoPhaseTransaction(&db, "T1", {a, b_}));
  system.Add(MakeTwoPhaseTransaction(&db, "T2", {b_, c}));
  system.Add(MakeTwoPhaseTransaction(&db, "T3", {c, a}));
  Digraph bc = BuildCycleGraph(system, {0, 1, 2});
  // Pairs share exactly one entity each: 3 nodes total.
  EXPECT_EQ(bc.NumNodes(), 3);
  EXPECT_TRUE(HasCycle(bc));
}

}  // namespace
}  // namespace dislock
