// Tests for the SAT substrate: CNF containers, DIMACS I/O, the DPLL
// solver, and model enumeration.

#include <gtest/gtest.h>

#include "sat/cnf.h"
#include "sat/normalize.h"
#include "sat/solver.h"
#include "util/random.h"

namespace dislock {
namespace {

TEST(Cnf, LiteralEncoding) {
  Literal l = Literal::FromEncoded(-3);
  EXPECT_EQ(l.var, 3);
  EXPECT_TRUE(l.negated);
  EXPECT_EQ(l.Encoded(), -3);
  EXPECT_EQ(l.Negated().Encoded(), 3);
}

TEST(Cnf, OccurrenceCounting) {
  Cnf cnf = MakeCnf(2, {{1, -2}, {1, 2}, {-1}});
  EXPECT_EQ(cnf.PositiveOccurrences(1), 2);
  EXPECT_EQ(cnf.NegativeOccurrences(1), 1);
  EXPECT_EQ(cnf.PositiveOccurrences(2), 1);
  EXPECT_EQ(cnf.NegativeOccurrences(2), 1);
}

TEST(Cnf, RestrictedFormCheck) {
  EXPECT_TRUE(MakeCnf(2, {{1, 2}, {1, -2}}).IsRestrictedForm());
  EXPECT_FALSE(MakeCnf(1, {{-1}, {-1}}).IsRestrictedForm());  // 2 negs
  EXPECT_FALSE(MakeCnf(1, {{1}, {1}, {1}}).IsRestrictedForm());
  EXPECT_FALSE(MakeCnf(4, {{1, 2, 3, 4}}).IsRestrictedForm());  // long
}

TEST(Cnf, SatisfactionCheck) {
  Cnf cnf = MakeCnf(2, {{1, 2}, {-1, 2}});
  EXPECT_TRUE(cnf.IsSatisfiedBy({false, false, true}));
  EXPECT_FALSE(cnf.IsSatisfiedBy({false, true, false}));
}

TEST(Cnf, DimacsRoundTrip) {
  Cnf cnf = MakeCnf(3, {{1, -2, 3}, {-1, 2}});
  auto parsed = ParseDimacs(cnf.ToDimacs());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_vars, 3);
  ASSERT_EQ(parsed->clauses.size(), 2u);
  EXPECT_EQ(parsed->clauses[0][1].Encoded(), -2);
}

TEST(Cnf, DimacsParsingErrors) {
  EXPECT_FALSE(ParseDimacs("1 2 0").ok());                  // no header
  EXPECT_FALSE(ParseDimacs("p cnf 1 1\n2 0").ok());         // var range
  EXPECT_FALSE(ParseDimacs("p cnf 2 5\n1 0").ok());         // count lie
  EXPECT_TRUE(ParseDimacs("c hi\np cnf 2 1\n1 -2 0").ok());
}

TEST(Solver, SimpleSatAndUnsat) {
  auto sat = SolveSat(MakeCnf(2, {{1, 2}, {-1, 2}}));
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(sat->satisfiable);
  EXPECT_TRUE(MakeCnf(2, {{1, 2}, {-1, 2}}).IsSatisfiedBy(sat->assignment));

  auto unsat =
      SolveSat(MakeCnf(2, {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}));
  ASSERT_TRUE(unsat.ok());
  EXPECT_FALSE(unsat->satisfiable);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Cnf cnf = MakeCnf(1, {{}});
  auto result = SolveSat(cnf);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfiable);
}

TEST(Solver, EmptyFormulaIsSat) {
  Cnf cnf;
  cnf.num_vars = 3;
  auto result = SolveSat(cnf);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfiable);
}

TEST(Solver, UnitPropagationChains) {
  // x1, x1->x2, x2->x3, x3 -> ~x1 is a conflict: unsat.
  Cnf cnf = MakeCnf(3, {{1}, {-1, 2}, {-2, 3}, {-3, -1}});
  auto result = SolveSat(cnf);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfiable);
}

TEST(Solver, AgreesWithBruteForceOnRandomFormulas) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    int num_vars = 2 + static_cast<int>(rng.Uniform(5));
    int num_clauses = 1 + static_cast<int>(rng.Uniform(8));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<int> clause;
      int len = 1 + static_cast<int>(rng.Uniform(3));
      for (int l = 0; l < len; ++l) {
        int v = 1 + static_cast<int>(rng.Uniform(num_vars));
        clause.push_back(rng.Bernoulli(0.5) ? v : -v);
      }
      clauses.push_back(clause);
    }
    Cnf cnf = MakeCnf(num_vars, clauses);
    auto dpll = SolveSat(cnf);
    ASSERT_TRUE(dpll.ok());
    auto models = AllModels(cnf, 1 << 20);
    ASSERT_TRUE(models.ok());
    EXPECT_EQ(dpll->satisfiable, !models->empty()) << cnf.ToString();
    if (dpll->satisfiable) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(dpll->assignment));
    }
  }
}

TEST(AllModels, EnumeratesExactly) {
  // (x1 v x2): 3 of 4 assignments satisfy.
  auto models = AllModels(MakeCnf(2, {{1, 2}}), 100);
  ASSERT_TRUE(models.ok());
  EXPECT_EQ(models->size(), 3u);
}

TEST(Normalize, TriviallySatAndUnsat) {
  auto taut = NormalizeToRestricted(MakeCnf(1, {{1, -1}}));
  ASSERT_TRUE(taut.ok());
  EXPECT_TRUE(taut->trivially_sat);

  auto unsat = NormalizeToRestricted(MakeCnf(1, {{1}, {-1}}));
  ASSERT_TRUE(unsat.ok());
  EXPECT_TRUE(unsat->trivially_unsat);
}

TEST(Normalize, SplitsLongClauses) {
  Cnf cnf = MakeCnf(5, {{1, 2, 3, 4, 5}, {-1, -2}});
  auto restricted = NormalizeToRestricted(cnf);
  ASSERT_TRUE(restricted.ok());
  EXPECT_TRUE(restricted->cnf.IsRestrictedForm())
      << restricted->cnf.ToString();
  auto sat = SolveSat(restricted->cnf);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(sat->satisfiable);
  std::vector<bool> lifted = restricted->LiftModel(sat->assignment);
  EXPECT_TRUE(cnf.IsSatisfiedBy(lifted));
}

TEST(Normalize, HandlesHeavyOccurrences) {
  // x1 used positively 4 times and negatively 3 times.
  Cnf cnf = MakeCnf(3, {{1, 2}, {1, 3}, {1, -2}, {1, -3}, {-1, 2},
                        {-1, 3}, {-1, 2, 3}});
  auto restricted = NormalizeToRestricted(cnf);
  ASSERT_TRUE(restricted.ok());
  if (!restricted->trivially_sat && !restricted->trivially_unsat) {
    EXPECT_TRUE(restricted->cnf.IsRestrictedForm())
        << restricted->cnf.ToString();
    auto orig = SolveSat(cnf);
    auto norm = SolveSat(restricted->cnf);
    ASSERT_TRUE(orig.ok());
    ASSERT_TRUE(norm.ok());
    EXPECT_EQ(orig->satisfiable, norm->satisfiable);
  }
}

}  // namespace
}  // namespace dislock
