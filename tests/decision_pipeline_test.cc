// Tests for the tiered DecisionPipeline (core/decision/): per-stage
// statistics (attempts / decided / skipped / budget-exhausted / work),
// stage applicability and early exit, the SAT-exhaustive stage against the
// Lemma 1 brute-force oracle, pipeline-vs-legacy-cascade verdict equality
// on randomized workloads, and stats aggregation in MultiSafetyReport.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/brute_force.h"
#include "core/certificate.h"
#include "core/decision/context.h"
#include "core/decision/pipeline.h"
#include "core/decision/procedure.h"
#include "core/multi.h"
#include "core/paper.h"
#include "core/policy.h"
#include "core/report.h"
#include "core/safety.h"
#include "cache/verdict_cache.h"
#include "sim/workload.h"
#include "util/string_util.h"

namespace dislock {
namespace {

const StageCounters& Stage(const PairSafetyReport& report,
                           DecisionStageId id) {
  return report.pipeline.at(id);
}

// Every stage sees each pair exactly once: it either attempts or skips.
void ExpectOneTouchPerStage(const PipelineStats& stats, int64_t pairs) {
  for (int s = 0; s < kNumDecisionStages; ++s) {
    const StageCounters& c = stats.stages[static_cast<size_t>(s)];
    EXPECT_EQ(c.attempts + c.skipped, pairs)
        << DecisionStageName(static_cast<DecisionStageId>(s));
    EXPECT_LE(c.decided, c.attempts)
        << DecisionStageName(static_cast<DecisionStageId>(s));
  }
}

TEST(PipelineStats, DecidedAtFirstStageSkipsEverythingLater) {
  // A strongly-two-phase pair is decided by Theorem 1 immediately.
  DistributedDatabase db(3);
  std::vector<EntityId> all;
  for (int e = 0; e < 4; ++e) {
    all.push_back(db.MustAddEntity(StrCat("e", e), e % 3));
  }
  Transaction t1 = MakeTwoPhaseTransaction(&db, "T1", all);
  Transaction t2 = MakeTwoPhaseTransaction(&db, "T2", all);
  PairSafetyReport report = AnalyzePairSafety(t1, t2);
  ASSERT_EQ(report.verdict, SafetyVerdict::kSafe);
  ASSERT_EQ(report.method, DecisionMethod::kTheorem1);

  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem1Scc).attempts, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem1Scc).decided, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem1Scc).work, 1);
  for (DecisionStageId later :
       {DecisionStageId::kTheorem2TwoSite, DecisionStageId::kCorollary2Closure,
        DecisionStageId::kSatExhaustive,
        DecisionStageId::kBruteForceLemma1}) {
    EXPECT_EQ(Stage(report, later).attempts, 0) << DecisionStageName(later);
    EXPECT_EQ(Stage(report, later).skipped, 1) << DecisionStageName(later);
    EXPECT_EQ(Stage(report, later).decided, 0) << DecisionStageName(later);
  }
  ExpectOneTouchPerStage(report.pipeline, 1);
}

TEST(PipelineStats, TwoSiteStageIsTerminalAndLaterStagesSkip) {
  // Fig. 1 spans one site and is unsafe: Theorem 1 attempts but cannot
  // decide, Theorem 2 decides, everything after is skipped.
  PaperInstance inst = MakeFig1Instance();
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1));
  ASSERT_EQ(report.verdict, SafetyVerdict::kUnsafe);
  ASSERT_EQ(report.method, DecisionMethod::kTheorem2);

  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem1Scc).attempts, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem1Scc).decided, 0);
  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem2TwoSite).attempts, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem2TwoSite).decided, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kCorollary2Closure).skipped, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kSatExhaustive).skipped, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kBruteForceLemma1).skipped, 1);
  ExpectOneTouchPerStage(report.pipeline, 1);
}

TEST(PipelineStats, ClosureStageDecidesFig5AndCountsItsWork) {
  // Fig. 5 spans four sites and is safe via the dominator-closure loop;
  // the two-site stage must report itself inapplicable (skipped), not
  // attempted-and-failed.
  PaperInstance inst = MakeFig5Instance();
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1));
  ASSERT_EQ(report.verdict, SafetyVerdict::kSafe);
  ASSERT_EQ(report.method, DecisionMethod::kDominatorClosure);

  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem1Scc).attempts, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem2TwoSite).skipped, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kTheorem2TwoSite).attempts, 0);
  const StageCounters& closure =
      Stage(report, DecisionStageId::kCorollary2Closure);
  EXPECT_EQ(closure.attempts, 1);
  EXPECT_EQ(closure.decided, 1);
  EXPECT_GE(closure.work, 1);  // dominators enumerated
  EXPECT_EQ(Stage(report, DecisionStageId::kSatExhaustive).skipped, 1);
  EXPECT_EQ(Stage(report, DecisionStageId::kBruteForceLemma1).skipped, 1);
  ExpectOneTouchPerStage(report.pipeline, 1);
}

TEST(PipelineStats, BudgetExhaustionIsCountedNotSwallowed) {
  // Zeroed dominator budget: the closure stage attempts, exhausts, and
  // does not decide. A one-decision SAT budget and a tiny extension-pair
  // budget do the same for the two fallback stages. The final verdict is
  // kUnknown with method "none", and every starved stage reports
  // budget_exhausted — nothing fails silently.
  PaperInstance inst = MakeFig5Instance();
  SafetyOptions options;
  options.max_dominators = 0;
  options.max_sat_decisions = 1;
  options.max_extension_pairs = 1;
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1), options);
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnknown);
  EXPECT_EQ(report.method, DecisionMethod::kNone);

  const StageCounters& closure =
      Stage(report, DecisionStageId::kCorollary2Closure);
  EXPECT_EQ(closure.attempts, 1);
  EXPECT_EQ(closure.decided, 0);
  EXPECT_EQ(closure.budget_exhausted, 1);
  const StageCounters& sat = Stage(report, DecisionStageId::kSatExhaustive);
  EXPECT_EQ(sat.attempts, 1);
  EXPECT_EQ(sat.decided, 0);
  EXPECT_EQ(sat.budget_exhausted, 1);
  const StageCounters& brute =
      Stage(report, DecisionStageId::kBruteForceLemma1);
  EXPECT_EQ(brute.attempts, 1);
  EXPECT_EQ(brute.decided, 0);
  EXPECT_EQ(brute.budget_exhausted, 1);
  // The detail explains the last failing fallback rather than a generic
  // shrug.
  EXPECT_FALSE(report.detail.empty());
  ExpectOneTouchPerStage(report.pipeline, 1);
}

TEST(PipelineStats, ZeroBudgetDisablesAStageOutright) {
  // max_sat_decisions == 0 means "not applicable", restoring the
  // pre-pipeline cascade: the stage is skipped, never attempted, and
  // cannot claim a budget exhaustion it never had.
  PaperInstance inst = MakeFig5Instance();
  SafetyOptions options;
  options.max_sat_decisions = 0;
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1), options);
  ASSERT_EQ(report.verdict, SafetyVerdict::kSafe);  // closure still decides
  const StageCounters& sat = Stage(report, DecisionStageId::kSatExhaustive);
  EXPECT_EQ(sat.attempts, 0);
  EXPECT_EQ(sat.skipped, 1);
  EXPECT_EQ(sat.budget_exhausted, 0);
}

TEST(SatExhaustive, DecidesFig5WhenClosureEnumerationIsDisabled) {
  // With the Corollary 2 enumeration starved, the SAT stage must carry the
  // pair on its own — same verdict, method "sat-exhaustive".
  PaperInstance inst = MakeFig5Instance();
  SafetyOptions options;
  options.max_dominators = 0;
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1), options);
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
  EXPECT_EQ(report.method, DecisionMethod::kSatExhaustive);
  const StageCounters& sat = Stage(report, DecisionStageId::kSatExhaustive);
  EXPECT_EQ(sat.attempts, 1);
  EXPECT_EQ(sat.decided, 1);
  EXPECT_GE(sat.work, 1);  // models examined
}

TEST(SatExhaustive, UnsafeVerdictsCarryVerifiedCertificates) {
  // SAT-found dominators must produce the same kind of checkable
  // certificate as the direct enumeration.
  Rng rng(7101);
  int unsafe_seen = 0;
  for (int trial = 0; trial < 40 && unsafe_seen < 3; ++trial) {
    WorkloadParams params;
    params.num_sites = 3 + static_cast<int>(rng.Uniform(2));
    params.num_entities = 3 + static_cast<int>(rng.Uniform(2));
    params.num_transactions = 2;
    params.lock_probability = 0.8;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(3));
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok());
    if (SitesSpanned(w.system->txn(0), w.system->txn(1)) < 3) continue;

    SafetyOptions options;
    options.max_dominators = 0;       // force the SAT stage to do the work
    options.max_extension_pairs = 0;  // and forbid the brute-force rescue
    PairSafetyReport report =
        AnalyzePairSafety(w.system->txn(0), w.system->txn(1), options);
    if (report.method != DecisionMethod::kSatExhaustive ||
        report.verdict != SafetyVerdict::kUnsafe) {
      continue;
    }
    ++unsafe_seen;
    ASSERT_TRUE(report.certificate.has_value()) << w.system->ToString();
    EXPECT_TRUE(VerifyUnsafetyCertificate(w.system->txn(0), w.system->txn(1),
                                          *report.certificate)
                    .ok())
        << w.system->ToString();
  }
  EXPECT_GE(unsafe_seen, 1);
}

TEST(SatVsBruteSweep, SatStageAgreesWithLemma1OnSmallMultiSitePairs) {
  Rng rng(9000);
  int compared = 0;
  int safe_seen = 0;
  int unsafe_seen = 0;
  for (int trial = 0; trial < 80; ++trial) {
    WorkloadParams params;
    params.num_sites = 3 + static_cast<int>(rng.Uniform(2));
    params.num_entities = 3 + static_cast<int>(rng.Uniform(2));
    params.num_transactions = 2;
    params.lock_probability = 0.7 + 0.3 * rng.UniformDouble();
    params.cross_site_arcs = static_cast<int>(rng.Uniform(3));
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok());
    if (SitesSpanned(w.system->txn(0), w.system->txn(1)) < 3) continue;

    SafetyOptions options;
    options.max_dominators = 0;       // starve Corollary 2
    options.max_extension_pairs = 0;  // disable brute force in the pipeline
    PairSafetyReport sat_report =
        AnalyzePairSafety(w.system->txn(0), w.system->txn(1), options);
    // Theorem 1 may still claim strongly connected pairs; the comparison
    // targets decisions the SAT stage itself made.
    if (sat_report.method != DecisionMethod::kSatExhaustive) continue;

    auto oracle = ExhaustivePairSafety(w.system->txn(0), w.system->txn(1),
                                       1 << 18);
    if (!oracle.ok()) continue;  // pair too wide for the oracle budget
    ++compared;
    if (oracle->safe) ++safe_seen; else ++unsafe_seen;
    EXPECT_EQ(sat_report.verdict == SafetyVerdict::kSafe, oracle->safe)
        << w.system->ToString();
  }
  // The sweep must actually exercise the SAT stage, not vacuously pass.
  // (Random non-strongly-connected multi-site pairs are virtually always
  // unsafe; the safe SAT outcome is pinned by the Fig. 5 test above.)
  EXPECT_GE(compared, 5);
  EXPECT_GE(unsafe_seen, 1);
  (void)safe_seen;
}

// The pre-refactor cascade, reimplemented from the public primitives it
// was built out of: Theorem 1, then the complete two-site test, then (for
// >= 3 sites) the Lemma 1 enumeration as ground truth. The pipeline with
// the closure and SAT stages disabled must reproduce it verdict-for-
// verdict; with all stages enabled it may only improve kUnknown, never
// flip a decided verdict.
SafetyVerdict LegacyCascade(const Transaction& t1, const Transaction& t2,
                            int64_t max_extension_pairs) {
  if (Theorem1Sufficient(t1, t2)) return SafetyVerdict::kSafe;
  if (SitesSpanned(t1, t2) <= 2) {
    auto two_site = TwoSiteSafetyTest(t1, t2);
    return two_site.ok() ? two_site->verdict : SafetyVerdict::kUnknown;
  }
  auto oracle = ExhaustivePairSafety(t1, t2, max_extension_pairs);
  if (!oracle.ok()) return SafetyVerdict::kUnknown;
  return oracle->safe ? SafetyVerdict::kSafe : SafetyVerdict::kUnsafe;
}

class LegacyEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(LegacyEquivalenceSweep, PipelineMatchesLegacyCascade) {
  Rng rng(4000 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + static_cast<int>(rng.Uniform(4));
    params.num_entities = 2 + static_cast<int>(rng.Uniform(3));
    params.num_transactions = 2;
    params.lock_probability = 0.6 + 0.4 * rng.UniformDouble();
    params.shared_probability = rng.Bernoulli(0.3) ? 0.4 : 0.0;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(3));
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok());
    const Transaction& t1 = w.system->txn(0);
    const Transaction& t2 = w.system->txn(1);

    SafetyOptions minimal;
    minimal.max_extension_pairs = 1 << 15;
    minimal.max_dominators = 0;    // closure enumeration off
    minimal.max_sat_decisions = 0;  // SAT stage off
    PairSafetyReport pipeline_report = AnalyzePairSafety(t1, t2, minimal);
    EXPECT_EQ(pipeline_report.verdict,
              LegacyCascade(t1, t2, minimal.max_extension_pairs))
        << w.system->ToString();

    // The full pipeline must agree wherever the minimal one decided.
    PairSafetyReport full_report = AnalyzePairSafety(t1, t2);
    if (pipeline_report.verdict != SafetyVerdict::kUnknown) {
      EXPECT_EQ(full_report.verdict, pipeline_report.verdict)
          << w.system->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LegacyEquivalenceSweep,
                         ::testing::Range(0, 6));

TEST(PipelineApi, DefaultStageNamesAreStableAndOrdered) {
  std::vector<std::string> names = DecisionPipeline::Default().StageNames();
  ASSERT_EQ(names.size(), static_cast<size_t>(kNumDecisionStages));
  EXPECT_EQ(names[0], "theorem1-scc");
  EXPECT_EQ(names[1], "theorem2-two-site");
  EXPECT_EQ(names[2], "corollary2-closure");
  EXPECT_EQ(names[3], "sat-exhaustive");
  EXPECT_EQ(names[4], "brute-force-lemma1");
}

TEST(PipelineApi, CancelledContextYieldsUnknownNotPartialVerdict) {
  PaperInstance inst = MakeFig5Instance();
  EngineContext ctx;
  ctx.cancel_token()->Cancel();
  PairSafetyReport report = DecisionPipeline::Default().Decide(
      inst.system->txn(0), inst.system->txn(1), &ctx);
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnknown);
  EXPECT_EQ(report.method, DecisionMethod::kNone);
  for (int s = 0; s < kNumDecisionStages; ++s) {
    EXPECT_EQ(report.pipeline.stages[static_cast<size_t>(s)].attempts, 0);
    EXPECT_EQ(report.pipeline.stages[static_cast<size_t>(s)].skipped, 1);
  }
}

TEST(PipelineJson, StatsBlockIsDeterministicAndOmitsWallClock) {
  PaperInstance inst = MakeFig5Instance();
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1));
  std::string json = PipelineStatsToJson(report.pipeline);
  EXPECT_NE(json.find("\"stage\": \"corollary2-closure\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\""), std::string::npos);
  EXPECT_EQ(json.find("wall_ms"), std::string::npos);
  // Identical analysis -> identical stats JSON (wall-clock never leaks in).
  PairSafetyReport again =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1));
  EXPECT_EQ(json, PipelineStatsToJson(again.pipeline));
}

TEST(MultiAggregation, PipelineStatsSumOverCheckedPairs) {
  PaperInstance inst = MakeFig4Instance();
  MultiSafetyReport report = AnalyzeMultiSafety(*inst.system);
  ASSERT_GE(report.pairs_checked, 1);
  ExpectOneTouchPerStage(report.pipeline, report.pairs_checked);
  // Every checked pair was decided by exactly one stage (this system has
  // no unknowns), so the decided counters sum to pairs_checked.
  int64_t decided = 0;
  for (int s = 0; s < kNumDecisionStages; ++s) {
    decided += report.pipeline.stages[static_cast<size_t>(s)].decided;
  }
  EXPECT_EQ(decided, report.pairs_checked);
}

TEST(MultiAggregation, CacheHitsContributeNoPipelineStats) {
  PaperInstance inst = MakeFig4Instance();
  PairVerdictCache cache;
  MultiSafetyOptions options;
  options.cache = &cache;
  MultiSafetyReport cold = AnalyzeMultiSafety(*inst.system, options);
  MultiSafetyReport warm = AnalyzeMultiSafety(*inst.system, options);
  EXPECT_EQ(warm.verdict, cold.verdict);
  EXPECT_GE(warm.pairs_cached, 1);
  ExpectOneTouchPerStage(cold.pipeline, cold.pairs_checked);
  ExpectOneTouchPerStage(warm.pipeline, warm.pairs_checked);
  EXPECT_LT(warm.pairs_checked, cold.pairs_checked + cold.pairs_cached +
                                    1);  // strictly fewer pipeline runs
}

TEST(MultiAggregation, SerialAndParallelStatsAreIdentical) {
  PaperInstance inst = MakeFig5Instance();
  MultiSafetyOptions serial;
  serial.num_threads = 1;
  MultiSafetyOptions parallel = serial;
  parallel.num_threads = 4;
  MultiSafetyReport a = AnalyzeMultiSafety(*inst.system, serial);
  MultiSafetyReport b = AnalyzeMultiSafety(*inst.system, parallel);
  EXPECT_EQ(MultiReportToJson(a, *inst.system),
            MultiReportToJson(b, *inst.system));
  for (int s = 0; s < kNumDecisionStages; ++s) {
    const StageCounters& ca = a.pipeline.stages[static_cast<size_t>(s)];
    const StageCounters& cb = b.pipeline.stages[static_cast<size_t>(s)];
    EXPECT_EQ(ca.attempts, cb.attempts);
    EXPECT_EQ(ca.decided, cb.decided);
    EXPECT_EQ(ca.skipped, cb.skipped);
    EXPECT_EQ(ca.budget_exhausted, cb.budget_exhausted);
    EXPECT_EQ(ca.work, cb.work);
  }
}

}  // namespace
}  // namespace dislock
