// Guards the analyzer rule catalog: docs/rules.md is generated from
// RulesToMarkdown() (via `dislock rules --markdown`) and this test fails
// when the two drift; the text/JSON renderings must cover every rule; and
// every diagnostic the analyzer emits must carry exactly the severity its
// catalog entry declares.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/emit.h"
#include "core/paper.h"
#include "txn/builder.h"

namespace dislock {
namespace {

std::string ReadSourceFile(const std::string& relative) {
  std::ifstream in(std::string(DISLOCK_SOURCE_DIR) + "/" + relative);
  EXPECT_TRUE(in.good()) << "cannot open " << relative;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(RulesCatalog, GeneratedMarkdownMatchesDocsRulesMd) {
  EXPECT_EQ(ReadSourceFile("docs/rules.md"), RulesToMarkdown())
      << "docs/rules.md is out of date; regenerate it with\n"
         "  dislock rules --markdown > docs/rules.md";
}

TEST(RulesCatalog, TextAndJsonCoverEveryRule) {
  std::string text = RulesToText();
  std::string json = RulesToJson();
  std::string markdown = RulesToMarkdown();
  for (const AnalysisRule& rule : AnalysisRules()) {
    EXPECT_NE(text.find(rule.id), std::string::npos) << rule.id;
    EXPECT_NE(json.find(rule.id), std::string::npos) << rule.id;
    EXPECT_NE(markdown.find(rule.id), std::string::npos) << rule.id;
    EXPECT_NE(text.find(rule.name), std::string::npos) << rule.id;
    EXPECT_NE(json.find(DiagSeverityName(rule.severity)), std::string::npos)
        << rule.id;
  }
}

TEST(RulesCatalog, EmittedSeveritiesMatchTheCatalog) {
  // A mix of instances that between them exercise safety errors, deadlock
  // errors, warnings, and notes.
  auto check = [](const TransactionSystem& system) {
    AnalysisResult result = AnalyzeSystem(system);
    for (const Diagnostic& d : result.diagnostics) {
      const AnalysisRule* rule = FindAnalysisRule(d.rule);
      ASSERT_NE(rule, nullptr) << "unknown rule " << d.rule;
      EXPECT_EQ(d.severity, rule->severity) << d.rule << ": " << d.message;
    }
  };
  check(*MakeFig1Instance().system);
  check(*MakeFig4Instance().system);
  check(*MakeFig5Instance().system);

  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem opposed(&db);
  {
    TransactionBuilder b(&db, "T1");
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    opposed.Add(b.Build());
  }
  {
    TransactionBuilder b(&db, "T2");
    b.Lock("y");
    b.Lock("x");
    b.Unlock("x");
    b.Unlock("y");
    opposed.Add(b.Build());
  }
  check(opposed);
}

TEST(RulesCatalog, MarkdownCarriesTheDriftWarning) {
  std::string markdown = RulesToMarkdown();
  EXPECT_NE(markdown.find("Generated"), std::string::npos);
  EXPECT_NE(markdown.find("rules_catalog_test"), std::string::npos);
}

}  // namespace
}  // namespace dislock
