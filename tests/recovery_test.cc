// Tests for abort-and-restart deadlock recovery and the report renderers.

#include <gtest/gtest.h>

#include "core/report.h"
#include "sim/scheduler.h"
#include "sim/workload.h"
#include "txn/builder.h"

namespace dislock {
namespace {

TransactionSystem MakeOpposedPair(DistributedDatabase* db) {
  TransactionSystem system(db);
  {
    TransactionBuilder b(db, "T1");
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(db, "T2");
    b.Lock("y");
    b.Lock("x");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  return system;
}

TEST(Recovery, DeadlockingPairAlwaysCompletesWithRecovery) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  Rng rng(111);
  int total_aborts = 0;
  for (int r = 0; r < 500; ++r) {
    RecoveryRunResult run = SimulateRunWithRecovery(system, &rng);
    ASSERT_FALSE(run.gave_up);
    ASSERT_TRUE(run.schedule.has_value());
    EXPECT_TRUE(CheckScheduleLegal(system, *run.schedule).ok())
        << run.schedule->ToString(system);
    EXPECT_TRUE(IsSerializable(system, *run.schedule));
    total_aborts += run.aborts;
  }
  // The classic Lx_1 Ly_2 trap happens about half the time.
  EXPECT_GT(total_aborts, 100);
}

TEST(Recovery, CommittedSchedulesOfRandomSystemsAreLegal) {
  Rng rng(113);
  for (int trial = 0; trial < 30; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + static_cast<int>(rng.Uniform(2));
    params.num_entities = 4;
    params.num_transactions = 3;
    params.lock_probability = 1.0;
    params.update_probability = 1.0;
    Workload w = MakeRandomWorkload(params, &rng);
    for (int r = 0; r < 20; ++r) {
      RecoveryRunResult run = SimulateRunWithRecovery(*w.system, &rng);
      if (run.gave_up) continue;
      ASSERT_TRUE(run.schedule.has_value());
      EXPECT_TRUE(CheckScheduleLegal(*w.system, *run.schedule).ok())
          << w.system->ToString();
    }
  }
}

TEST(Recovery, NoDeadlockMeansNoAborts) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"T1", "T2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  Rng rng(117);
  for (int r = 0; r < 200; ++r) {
    RecoveryRunResult run = SimulateRunWithRecovery(system, &rng);
    EXPECT_EQ(run.aborts, 0);
    ASSERT_TRUE(run.schedule.has_value());
    EXPECT_EQ(run.schedule->size(), 8u);
  }
}

TEST(Report, JsonEscaping) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape("plain"), "plain");
}

TEST(Report, PairReportJsonShape) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  PairSafetyReport report =
      AnalyzePairSafety(system.txn(0), system.txn(1));
  std::string json = PairReportToJson(report, db);
  EXPECT_NE(json.find("\"verdict\": \"SAFE\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"d_strongly_connected\": true"), std::string::npos);
  EXPECT_NE(json.find("\"certificate\": null"), std::string::npos);
}

TEST(Report, UnsafePairReportIncludesCertificate) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (int t = 0; t < 2; ++t) {
    TransactionBuilder b(&db, t == 0 ? "T1" : "T2");
    if (t == 0) {
      b.LockUpdateUnlock("x");
      b.LockUpdateUnlock("y");
    } else {
      b.LockUpdateUnlock("y");
      b.LockUpdateUnlock("x");
    }
    system.Add(b.Build());
  }
  PairSafetyReport report =
      AnalyzePairSafety(system.txn(0), system.txn(1));
  ASSERT_EQ(report.verdict, SafetyVerdict::kUnsafe);
  std::string json = PairReportToJson(report, db);
  EXPECT_NE(json.find("\"verdict\": \"UNSAFE\""), std::string::npos);
  EXPECT_NE(json.find("\"dominator\": ["), std::string::npos);
  EXPECT_NE(json.find("\"schedule\": \""), std::string::npos);
  std::string text = PairReportToText(report, db);
  EXPECT_NE(text.find("UNSAFE"), std::string::npos);
}

TEST(Report, MultiAndDeadlockJson) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  MultiSafetyReport multi = AnalyzeMultiSafety(system);
  std::string mj = MultiReportToJson(multi, system);
  EXPECT_NE(mj.find("\"pairs_checked\": 1"), std::string::npos) << mj;

  auto deadlock = AnalyzeDeadlockFreedom(system);
  ASSERT_TRUE(deadlock.ok());
  std::string dj = DeadlockReportToJson(*deadlock, system);
  EXPECT_NE(dj.find("\"deadlock_free\": false"), std::string::npos) << dj;
  EXPECT_NE(dj.find("\"waits_for\""), std::string::npos);
}

}  // namespace
}  // namespace dislock
