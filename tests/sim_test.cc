// Tests for the simulation substrate: lock managers, the random scheduler,
// symbolic execution, Monte-Carlo sampling, and the workload generators.

#include <gtest/gtest.h>

#include "core/paper.h"
#include "core/policy.h"
#include "sim/executor.h"
#include "sim/lock_manager.h"
#include "sim/scheduler.h"
#include "core/safety.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "txn/linear_extension.h"
#include "util/string_util.h"

namespace dislock {
namespace {

TEST(LockManager, AcquireReleaseCycle) {
  DistributedDatabase db(2);
  EntityId x = db.MustAddEntity("x", 0);
  EntityId y = db.MustAddEntity("y", 1);
  DistributedLockManager locks(&db, /*num_txns=*/2);
  EXPECT_TRUE(locks.Acquire(x, 0).ok());
  EXPECT_FALSE(locks.Acquire(x, 1).ok());  // held
  EXPECT_TRUE(locks.MayUpdate(x, 0));
  EXPECT_FALSE(locks.MayUpdate(x, 1));
  EXPECT_FALSE(locks.Release(x, 1).ok());  // not the holder
  EXPECT_TRUE(locks.Release(x, 0).ok());
  EXPECT_TRUE(locks.Acquire(x, 1).ok());
  EXPECT_TRUE(locks.Acquire(y, 0).ok());  // different site, independent
}

TEST(LockManager, SiteRoutingRejectsForeignEntities) {
  DistributedDatabase db(2);
  EntityId x = db.MustAddEntity("x", 0);
  SiteLockManager site1(&db, 1, /*num_txns=*/2);
  EXPECT_FALSE(site1.Acquire(x, 0).ok());  // x lives at site 0
}

TEST(Scheduler, CompletedRunsAreLegalSchedules) {
  PaperInstance inst = MakeFig1Instance();
  Rng rng(11);
  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    RunResult run = SimulateRun(*inst.system, &rng);
    if (run.deadlocked) continue;
    ++completed;
    ASSERT_TRUE(run.schedule.has_value());
    EXPECT_TRUE(CheckScheduleLegal(*inst.system, *run.schedule).ok());
  }
  EXPECT_GT(completed, 100);
}

TEST(Scheduler, DetectsDeadlocks) {
  // T1 = Lx Ly ... , T2 = Ly Lx ...: some runs deadlock.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  {
    TransactionBuilder b(&db, "T1");
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(&db, "T2");
    b.Lock("y");
    b.Lock("x");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  Rng rng(13);
  int deadlocks = 0;
  for (int i = 0; i < 500; ++i) {
    if (SimulateRun(system, &rng).deadlocked) ++deadlocks;
  }
  EXPECT_GT(deadlocks, 10);
}

TEST(MonteCarlo, SafeSystemNeverYieldsWitness) {
  DistributedDatabase db(2);
  std::vector<EntityId> all;
  for (int e = 0; e < 3; ++e) {
    all.push_back(
        db.MustAddEntity(StrCat("e", e), e % 2));
  }
  TransactionSystem system(&db);
  system.Add(MakeTwoPhaseTransaction(&db, "T1", all));
  system.Add(MakeTwoPhaseTransaction(&db, "T2", all));
  Rng rng(17);
  MonteCarloStats stats = SampleSafety(system, 3000, &rng,
                                       /*keep_going=*/true);
  EXPECT_EQ(stats.non_serializable, 0);
  EXPECT_GT(stats.completed, 0);
}

TEST(MonteCarlo, UnsafeSystemEventuallyYieldsWitness) {
  PaperInstance inst = MakeFig1Instance();
  Rng rng(19);
  MonteCarloStats stats = SampleSafety(*inst.system, 100000, &rng);
  ASSERT_TRUE(stats.witness.has_value());
  EXPECT_TRUE(CheckScheduleLegal(*inst.system, *stats.witness).ok());
  EXPECT_FALSE(IsSerializable(*inst.system, *stats.witness));
}

TEST(Executor, SerialExecutionsDifferAcrossOrders) {
  PaperInstance inst = MakeFig1Instance();
  auto s01 = SerialSchedule(*inst.system, {0, 1});
  auto s10 = SerialSchedule(*inst.system, {1, 0});
  ASSERT_TRUE(s01.ok() && s10.ok());
  ExecutionResult r01 = ExecuteSchedule(*inst.system, *s01);
  ExecutionResult r10 = ExecuteSchedule(*inst.system, *s10);
  EXPECT_NE(r01.final_state, r10.final_state);
}

TEST(Executor, AgreesWithConflictSerializability) {
  // Across many sampled schedules of several systems, the symbolic
  // execution notion coincides with conflict-serializability (they are
  // equivalent for this update model).
  for (auto make : {MakeFig1Instance, MakeFig3Instance, MakeFig5Instance}) {
    PaperInstance inst = make();
    Rng rng(23);
    int checked = 0;
    for (int i = 0; i < 3000 && checked < 120; ++i) {
      RunResult run = SimulateRun(*inst.system, &rng);
      if (run.deadlocked) continue;
      ++checked;
      bool conflict = IsSerializable(*inst.system, *run.schedule);
      auto exec = SerializableByExecution(*inst.system, *run.schedule);
      ASSERT_TRUE(exec.ok());
      EXPECT_EQ(conflict, exec.value())
          << inst.description << "\n"
          << run.schedule->ToString(*inst.system);
    }
    // Fig. 5's partial orders deadlock frequently; demand a modest floor.
    EXPECT_GT(checked, 20) << inst.description;
  }
}

TEST(Executor, SuperfluousLockingDivergesFromConflictAnalysis) {
  // A lock section with NO update inside cannot affect execution, so the
  // operational notion can call a conflict-non-serializable schedule
  // serializable — exactly why the paper's model demands an update between
  // every lock/unlock pair.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"t1", "t2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Unlock("x");  // superfluous: no update
    b.Lock("y");
    b.Unlock("y");  // superfluous
    system.Add(b.Build());
  }
  // The separated interleaving: x sections in order (1,2), y in (2,1).
  Schedule h;
  h.Append(0, 0);
  h.Append(0, 1);
  h.Append(1, 0);
  h.Append(1, 1);
  h.Append(1, 2);
  h.Append(1, 3);
  h.Append(0, 2);
  h.Append(0, 3);
  ASSERT_TRUE(CheckScheduleLegal(system, h).ok());
  EXPECT_FALSE(IsSerializable(system, h));  // conflict view: a cycle
  auto by_exec = SerializableByExecution(system, h);
  ASSERT_TRUE(by_exec.ok());
  EXPECT_TRUE(by_exec.value());  // execution view: nothing ever changed
}

TEST(Workload, RandomWorkloadsValidate) {
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + static_cast<int>(rng.Uniform(4));
    params.num_entities = 1 + static_cast<int>(rng.Uniform(6));
    params.num_transactions = 1 + static_cast<int>(rng.Uniform(4));
    params.update_probability = 0.5;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(4));
    Workload w = MakeRandomWorkload(params, &rng);
    ValidateOptions opts;
    EXPECT_TRUE(w.system->Validate(opts).ok())
        << w.system->Validate(opts).ToString() << w.system->ToString();
  }
}

TEST(Workload, TotalOrderPairsAreTotalAndValid) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Workload w = MakeRandomTotalOrderPair(4, &rng);
    ASSERT_TRUE(w.system->Validate().ok());
    for (int t = 0; t < 2; ++t) {
      // A total order has exactly one linear extension.
      EXPECT_EQ(CountLinearExtensions(w.system->txn(t), 10), 1);
    }
  }
}

TEST(Workload, ScalingPairSafetyMatchesFlag) {
  Rng rng(37);
  Workload safe = MakeTwoSiteScalingPair(6, /*safe=*/true, &rng);
  Workload unsafe = MakeTwoSiteScalingPair(6, /*safe=*/false, &rng);
  EXPECT_TRUE(safe.system->Validate().ok());
  EXPECT_TRUE(unsafe.system->Validate().ok());
  auto safe_report = TwoSiteSafetyTest(safe.system->txn(0),
                                       safe.system->txn(1));
  ASSERT_TRUE(safe_report.ok());
  EXPECT_EQ(safe_report->verdict, SafetyVerdict::kSafe);
  auto unsafe_report = TwoSiteSafetyTest(unsafe.system->txn(0),
                                         unsafe.system->txn(1));
  ASSERT_TRUE(unsafe_report.ok()) << unsafe_report.status().ToString();
  EXPECT_EQ(unsafe_report->verdict, SafetyVerdict::kUnsafe);
}

}  // namespace
}  // namespace dislock
