// End-to-end validation of the Theorem 3 reduction: {T1(F), T2(F)} is
// unsafe iff F is satisfiable, with dominators of D(T1(F),T2(F)) playing
// the role of truth assignments (Figs. 8-9).

#include <gtest/gtest.h>

#include "core/certificate.h"
#include "core/closure.h"
#include "core/conflict_graph.h"
#include "core/safety.h"
#include "graph/dominator.h"
#include "graph/scc.h"
#include "sat/normalize.h"
#include "sat/reduction.h"
#include "sat/solver.h"
#include "util/random.h"

namespace dislock {
namespace {

// The Fig. 8 example formula: F = (x1 v x2 v x3) ^ (~x1 v x2 v ~x3).
Cnf Fig8Formula() { return MakeCnf(3, {{1, 2, 3}, {-1, 2, -3}}); }

// Decides the reduced pair with the dominator-closure procedure only
// (complete whenever the dominator enumeration is complete).
SafetyVerdict DecideReducedPair(const ReductionOutput& red,
                                int64_t max_dominators = 1 << 16) {
  SafetyOptions options;
  options.max_extension_pairs = 0;  // the instances are far too wide
  options.max_dominators = max_dominators;
  PairSafetyReport report = AnalyzePairSafety(red.system->txn(0),
                                              red.system->txn(1), options);
  return report.verdict;
}

TEST(Reduction, RejectsNonRestrictedFormulas) {
  // x1 appears negated twice.
  Cnf bad = MakeCnf(2, {{-1, 2}, {-1, -2}, {1, 2}});
  EXPECT_FALSE(ReduceCnfToTransactions(bad).ok());
  // Unit clause.
  EXPECT_FALSE(ReduceCnfToTransactions(MakeCnf(1, {{1}})).ok());
}

TEST(Reduction, TransactionsAreValidAndEachEntityHasItsOwnSite) {
  auto red = ReduceCnfToTransactions(Fig8Formula());
  ASSERT_TRUE(red.ok()) << red.status().ToString();
  EXPECT_TRUE(red->system->Validate().ok())
      << red->system->Validate().ToString();
  EXPECT_EQ(red->db->NumSites(), red->db->NumEntities());
  // Both transactions lock-unlock every entity.
  for (int t = 0; t < 2; ++t) {
    EXPECT_EQ(static_cast<int>(red->system->txn(t).LockedEntities().size()),
              red->db->NumEntities());
  }
}

TEST(Reduction, DominatorsAreUpperCyclePlusMiddleSubsets) {
  auto red = ReduceCnfToTransactions(Fig8Formula());
  ASSERT_TRUE(red.ok());
  ConflictGraph d = BuildConflictGraph(red->system->txn(0),
                                       red->system->txn(1));
  EXPECT_EQ(d.graph.NumNodes(), red->db->NumEntities());
  EXPECT_FALSE(IsStronglyConnected(d.graph));

  // Middle components: w1, {w2a,w2b}, w3, w1', w3'  ->  2^5 dominators.
  auto dominators = AllDominators(d.graph, 1 << 10);
  EXPECT_EQ(dominators.size(), 32u);
  for (const auto& dom : dominators) {
    auto assignment = DominatorToAssignment(*red, d.EntitiesOf(dom));
    // Every structural dominator is upper-cycle + middle nodes; the
    // conversion only rejects contradictory (both-sides) ones.
    if (!assignment.ok()) {
      EXPECT_EQ(assignment.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(Reduction, SatisfyingAssignmentDominatorClosesAndCertifiesUnsafety) {
  auto red = ReduceCnfToTransactions(Fig8Formula());
  ASSERT_TRUE(red.ok());
  // x1=1, x2=0, x3=0 satisfies F.
  std::vector<bool> assignment = {false, true, false, false};
  ASSERT_TRUE(Fig8Formula().IsSatisfiedBy(assignment));
  std::vector<EntityId> dom = AssignmentToDominator(*red, assignment);

  auto cert = BuildUnsafetyCertificate(red->system->txn(0),
                                       red->system->txn(1), dom);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  EXPECT_TRUE(VerifyUnsafetyCertificate(red->system->txn(0),
                                        red->system->txn(1), *cert)
                  .ok());
}

TEST(Reduction, FalsifyingAssignmentDominatorFailsClosure) {
  auto red = ReduceCnfToTransactions(Fig8Formula());
  ASSERT_TRUE(red.ok());
  // x1=0, x2=0, x3=1 falsifies clause 2 (~x1 v x2 v ~x3)? No: ~x1 is true.
  // Use x1=1, x2=0, x3=1: clause 2 = (0 v 0 v 0) falsified.
  std::vector<bool> assignment = {false, true, false, true};
  ASSERT_FALSE(Fig8Formula().IsSatisfiedBy(assignment));
  std::vector<EntityId> dom = AssignmentToDominator(*red, assignment);

  auto closure = CloseWithRespectTo(red->system->txn(0), red->system->txn(1),
                                    dom);
  EXPECT_FALSE(closure.ok());
  EXPECT_EQ(closure.status().code(), StatusCode::kUndecided)
      << closure.status().ToString();
}

TEST(Reduction, Fig8PairIsUnsafeBecauseFormulaIsSatisfiable) {
  auto red = ReduceCnfToTransactions(Fig8Formula());
  ASSERT_TRUE(red.ok());
  EXPECT_EQ(DecideReducedPair(*red), SafetyVerdict::kUnsafe);
}

TEST(Reduction, UnsatisfiableFormulaGivesSafePair) {
  // (x1 v x2) ^ (~x1 v x2) ^ (x1 v ~x2) ^ ... needs ~x1 ~x2 clause which
  // would exceed the budget; craft a small unsat restricted instance:
  // x1=x2 (cycle) with clauses forcing x1 and ~x2.
  // (x1 v x2) (x1 v ~x2) (~x1 v x2): forces x1=1, x2=1... satisfiable.
  // Use: (~x1 v x2) (x1 v x2) (x1 v ~x2) plus... instead normalize a
  // clearly unsatisfiable formula.
  Cnf unsat = MakeCnf(2, {{1, 2}, {1, -2}, {-1, 2}, {-1, -2}});
  auto sat = SolveSat(unsat);
  ASSERT_TRUE(sat.ok());
  ASSERT_FALSE(sat->satisfiable);
  auto restricted = NormalizeToRestricted(unsat);
  ASSERT_TRUE(restricted.ok());
  ASSERT_FALSE(restricted->trivially_sat);
  if (restricted->trivially_unsat) GTEST_SKIP() << "decided at preprocessing";
  ASSERT_TRUE(restricted->cnf.IsRestrictedForm());
  auto red = ReduceCnfToTransactions(restricted->cnf);
  ASSERT_TRUE(red.ok()) << red.status().ToString();
  EXPECT_EQ(DecideReducedPair(*red), SafetyVerdict::kSafe);
}

// Generates a random formula that is ALREADY in restricted form (<= 2
// positive and <= 1 negative occurrences per variable, clauses of 2-3
// distinct variables), so the reduction's dominator space stays enumerable
// (it is exponential in the number of middle components — the coNP
// explosion — so unrestricted normalization output would be intractable).
Cnf RandomRestrictedFormula(Rng* rng) {
  const int num_vars = 2 + static_cast<int>(rng->Uniform(3));  // 2..4
  std::vector<int> pos_budget(num_vars + 1, 2);
  std::vector<int> neg_budget(num_vars + 1, 1);
  const int want_clauses = 2 + static_cast<int>(rng->Uniform(2));  // 2..3
  std::vector<std::vector<int>> clauses;
  for (int c = 0; c < want_clauses; ++c) {
    int len = 2 + static_cast<int>(rng->Uniform(2));  // 2..3
    std::vector<int> vars;
    for (int v = 1; v <= num_vars; ++v) {
      if (pos_budget[v] > 0 || neg_budget[v] > 0) vars.push_back(v);
    }
    rng->Shuffle(&vars);
    std::vector<int> clause;
    for (int v : vars) {
      if (static_cast<int>(clause.size()) == len) break;
      bool can_pos = pos_budget[v] > 0;
      bool can_neg = neg_budget[v] > 0;
      bool negated = can_neg && (!can_pos || rng->Bernoulli(0.35));
      if (negated) {
        --neg_budget[v];
        clause.push_back(-v);
      } else {
        --pos_budget[v];
        clause.push_back(v);
      }
    }
    if (clause.size() >= 2) clauses.push_back(clause);
  }
  if (clauses.empty()) clauses.push_back({1, 2});
  return MakeCnf(num_vars, clauses);
}

TEST(Reduction, RandomFormulasUnsafeIffSatisfiable) {
  Rng rng(20260704);
  int sat_count = 0;
  int unsat_count = 0;
  for (int trial = 0; trial < 25; ++trial) {
    Cnf cnf = RandomRestrictedFormula(&rng);
    ASSERT_TRUE(cnf.IsRestrictedForm());
    auto sat = SolveSat(cnf);
    ASSERT_TRUE(sat.ok());
    auto red = ReduceCnfToTransactions(cnf);
    ASSERT_TRUE(red.ok()) << red.status().ToString()
                          << " formula: " << cnf.ToString();
    SafetyVerdict verdict = DecideReducedPair(*red, 1 << 12);
    ASSERT_NE(verdict, SafetyVerdict::kUnknown) << cnf.ToString();
    EXPECT_EQ(verdict == SafetyVerdict::kUnsafe, sat->satisfiable)
        << "formula: " << cnf.ToString();
    (sat->satisfiable ? sat_count : unsat_count) += 1;
  }
  EXPECT_GT(sat_count, 0);
  // Restricted random formulas are mostly satisfiable; unsat coverage comes
  // from UnsatisfiableFormulaGivesSafePair.
}

TEST(Normalize, PreservesSatisfiabilityAndModelsLift) {
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    // Unrestricted random CNF.
    int num_vars = 3 + static_cast<int>(rng.Uniform(3));
    int num_clauses = 2 + static_cast<int>(rng.Uniform(5));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<int> clause;
      for (int v = 1; v <= num_vars; ++v) {
        if (rng.Bernoulli(0.5)) {
          clause.push_back(rng.Bernoulli(0.5) ? v : -v);
        }
      }
      if (clause.empty()) clause.push_back(rng.Bernoulli(0.5) ? 1 : -1);
      clauses.push_back(clause);
    }
    Cnf cnf = MakeCnf(num_vars, clauses);
    auto sat = SolveSat(cnf);
    ASSERT_TRUE(sat.ok());

    auto restricted = NormalizeToRestricted(cnf);
    ASSERT_TRUE(restricted.ok());
    if (restricted->trivially_unsat) {
      EXPECT_FALSE(sat->satisfiable) << cnf.ToString();
      continue;
    }
    if (restricted->trivially_sat) {
      EXPECT_TRUE(sat->satisfiable) << cnf.ToString();
      continue;
    }
    EXPECT_TRUE(restricted->cnf.IsRestrictedForm())
        << restricted->cnf.ToString();
    for (const Clause& c : restricted->cnf.clauses) {
      EXPECT_GE(c.size(), 2u);
      EXPECT_LE(c.size(), 3u);
    }
    auto rsat = SolveSat(restricted->cnf);
    ASSERT_TRUE(rsat.ok());
    EXPECT_EQ(rsat->satisfiable, sat->satisfiable) << cnf.ToString();
    if (rsat->satisfiable) {
      std::vector<bool> lifted = restricted->LiftModel(rsat->assignment);
      EXPECT_TRUE(cnf.IsSatisfiedBy(lifted)) << cnf.ToString();
    }
  }
}

}  // namespace
}  // namespace dislock
