// The parallel safety engine's central contract: AnalyzeMultiSafety and
// AnalyzePairSafety render bit-identical reports at every thread count,
// with and without a verdict cache, across randomized workloads. The JSON
// renderings are compared as strings so every field — verdict, counters,
// failing pair/cycle, certificate — participates in the equality.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/multi.h"
#include "core/policy.h"
#include "core/report.h"
#include "cache/verdict_cache.h"
#include "sim/workload.h"
#include "txn/text_format.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dislock {
namespace {

const int kThreadCounts[] = {2, 3, 4, 8};

Workload RandomWorkload(Rng* rng, int num_transactions) {
  WorkloadParams params;
  params.num_sites = 1 + static_cast<int>(rng->Uniform(3));
  params.num_entities = 2 + static_cast<int>(rng->Uniform(3));
  params.num_transactions = num_transactions;
  params.lock_probability = 0.5 + 0.5 * rng->UniformDouble();
  params.update_probability = 1.0;
  params.shared_probability = rng->Bernoulli(0.3) ? 0.4 : 0.0;
  params.cross_site_arcs = static_cast<int>(rng->Uniform(3));
  Workload w = MakeRandomWorkload(params, rng);
  EXPECT_TRUE(w.system->Validate().ok());
  return w;
}

TEST(ParallelMultiSafety, BitIdenticalAcrossThreadCounts) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 40; ++trial) {
    Workload w =
        RandomWorkload(&rng, 2 + static_cast<int>(rng.Uniform(4)));
    MultiSafetyOptions serial;
    serial.max_cycles = 1 << 10;
    serial.max_extension_pairs = 1 << 14;
    std::string expected = MultiReportToJson(
        AnalyzeMultiSafety(*w.system, serial), *w.system);
    for (int threads : kThreadCounts) {
      MultiSafetyOptions parallel = serial;
      parallel.num_threads = threads;
      std::string actual = MultiReportToJson(
          AnalyzeMultiSafety(*w.system, parallel), *w.system);
      EXPECT_EQ(expected, actual)
          << "trial " << trial << ", " << threads << " threads\n"
          << SystemToText(*w.system);
    }
  }
}

TEST(ParallelMultiSafety, BitIdenticalWithVerdictCache) {
  // Fresh caches on both sides: the deterministic scan-order insert makes
  // even the pairs_checked / pairs_cached counters match.
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 25; ++trial) {
    Workload w =
        RandomWorkload(&rng, 3 + static_cast<int>(rng.Uniform(3)));
    MultiSafetyOptions serial;
    serial.max_cycles = 1 << 10;
    serial.max_extension_pairs = 1 << 14;
    PairVerdictCache serial_cache;
    serial.cache = &serial_cache;
    std::string expected = MultiReportToJson(
        AnalyzeMultiSafety(*w.system, serial), *w.system);
    for (int threads : kThreadCounts) {
      MultiSafetyOptions parallel = serial;
      PairVerdictCache parallel_cache;
      parallel.cache = &parallel_cache;
      parallel.num_threads = threads;
      std::string actual = MultiReportToJson(
          AnalyzeMultiSafety(*w.system, parallel), *w.system);
      EXPECT_EQ(expected, actual)
          << "trial " << trial << ", " << threads << " threads\n"
          << SystemToText(*w.system);
      EXPECT_EQ(serial_cache.size(), parallel_cache.size())
          << "trial " << trial << ", " << threads << " threads";
    }
  }
}

TEST(ParallelMultiSafety, SharedCacheAccelleratesSecondAnalysisUnchanged) {
  // A cache warmed by a serial run must leave a later parallel run's
  // verdict and failure details unchanged (counters legitimately shift
  // from pairs_checked to pairs_cached).
  Rng rng(0xF00D);
  for (int trial = 0; trial < 15; ++trial) {
    Workload w = RandomWorkload(&rng, 4);
    MultiSafetyOptions bare;
    bare.max_cycles = 1 << 10;
    MultiSafetyReport reference = AnalyzeMultiSafety(*w.system, bare);

    PairVerdictCache cache;
    MultiSafetyOptions warm = bare;
    warm.cache = &cache;
    AnalyzeMultiSafety(*w.system, warm);  // warms the cache
    warm.num_threads = 4;
    MultiSafetyReport cached = AnalyzeMultiSafety(*w.system, warm);
    EXPECT_EQ(cached.verdict, reference.verdict) << SystemToText(*w.system);
    EXPECT_EQ(cached.failing_pair, reference.failing_pair);
    EXPECT_EQ(cached.failing_cycle, reference.failing_cycle);
    EXPECT_EQ(cached.cycles_checked, reference.cycles_checked);
    EXPECT_EQ(cached.pairs_checked + cached.pairs_cached,
              reference.pairs_checked + reference.pairs_cached);
  }
}

TEST(ParallelPairSafety, DominatorClosureBitIdenticalAcrossThreadCounts) {
  // The >= 3-site dominator-closure fan-out inside AnalyzePairSafety.
  Rng rng(0xD00D);
  int multi_site_pairs = 0;
  for (int trial = 0; trial < 60; ++trial) {
    WorkloadParams params;
    params.num_sites = 3 + static_cast<int>(rng.Uniform(2));
    params.num_entities = 3 + static_cast<int>(rng.Uniform(3));
    params.num_transactions = 2;
    params.lock_probability = 0.8;
    params.update_probability = 1.0;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(4));
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok());
    const Transaction& t1 = w.system->txn(0);
    const Transaction& t2 = w.system->txn(1);
    if (SitesSpanned(t1, t2) >= 3) ++multi_site_pairs;
    SafetyOptions serial;
    serial.max_extension_pairs = 1 << 14;
    std::string expected =
        PairReportToJson(AnalyzePairSafety(t1, t2, serial), w.system->db());
    for (int threads : kThreadCounts) {
      SafetyOptions parallel = serial;
      parallel.num_threads = threads;
      std::string actual = PairReportToJson(
          AnalyzePairSafety(t1, t2, parallel), w.system->db());
      EXPECT_EQ(expected, actual)
          << "trial " << trial << ", " << threads << " threads\n"
          << SystemToText(*w.system);
    }
  }
  // The generator must actually exercise the parallel regime.
  EXPECT_GT(multi_site_pairs, 10);
}

TEST(ParallelMultiSafety, DenseCycleWorkloadIdenticalAndDecided) {
  // Deterministic many-cycle workload (the bench's dense case): the cycle
  // fan-out must agree with serial on a nontrivial cycles_checked count.
  DistributedDatabase db(2);
  std::vector<EntityId> all;
  for (int e = 0; e < 3; ++e) {
    all.push_back(db.MustAddEntity(StrCat("e", e), e % 2));
  }
  TransactionSystem system(&db);
  for (int t = 0; t < 7; ++t) {
    system.Add(MakeTwoPhaseTransaction(&db, StrCat("T", t + 1), all));
  }
  MultiSafetyOptions serial;
  serial.max_cycles = 1 << 12;
  MultiSafetyReport serial_report = AnalyzeMultiSafety(system, serial);
  EXPECT_GT(serial_report.cycles_checked, 100);
  std::string expected = MultiReportToJson(serial_report, system);
  for (int threads : kThreadCounts) {
    MultiSafetyOptions parallel = serial;
    parallel.num_threads = threads;
    EXPECT_EQ(expected, MultiReportToJson(
                            AnalyzeMultiSafety(system, parallel), system))
        << threads << " threads";
  }
}

}  // namespace
}  // namespace dislock
