// Tests for the workload-family registry (src/gen/family.h) and the .dlt
// trace container (src/gen/trace.h): catalog self-description, parameter
// validation, byte-deterministic generation, serialize/parse round-trips,
// version/corruption rejection, and the committed golden traces under
// data/traces/ (one per family, defaults + seed 42 — the exact bytes
// `dislock gen <family>` emits).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/family.h"
#include "gen/trace.h"
#include "obs/json.h"
#include "txn/text_format.h"

namespace dislock {
namespace gen {
namespace {

std::string ReadGolden(const std::string& family) {
  std::string path = std::string(DISLOCK_SOURCE_DIR) + "/data/traces/" +
                     family + ".dlt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden trace " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Replaces the first occurrence of `from` in `text` — for corrupting one
/// header field at a time.
std::string Replaced(std::string text, const std::string& from,
                     const std::string& to) {
  size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  return text.replace(pos, from.size(), to);
}

TEST(FamilyRegistry, CatalogIsSelfDescribing) {
  std::vector<std::string> families = RegisteredFamilies();
  ASSERT_EQ(families.size(), 7u);
  for (const std::string& name : families) {
    const WorkloadFamily* family = FindFamily(name);
    ASSERT_NE(family, nullptr) << name;
    const FamilySpec& spec = family->spec();
    EXPECT_EQ(std::string(spec.name), name);
    EXPECT_FALSE(std::string(spec.description).empty()) << name;
    for (const FamilyParam& param : spec.params) {
      EXPECT_FALSE(std::string(param.name).empty()) << name;
      EXPECT_FALSE(std::string(param.description).empty())
          << name << "." << param.name;
      EXPECT_GE(param.default_value, param.min_value)
          << name << "." << param.name;
    }
  }
  EXPECT_EQ(FindFamily("no_such_family"), nullptr);

  std::string text = FamilyCatalogToText();
  std::string json = FamilyCatalogToJson();
  std::string jerr;
  EXPECT_TRUE(obs::IsValidJson(json, &jerr)) << jerr;
  for (const std::string& name : families) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
    EXPECT_NE(json.find("\"" + name + "\""), std::string::npos) << name;
  }
}

TEST(FamilyRegistry, ResolveParamsAppliesDefaultsAndValidates) {
  const WorkloadFamily* ring = FindFamily("ring");
  ASSERT_NE(ring, nullptr);

  auto defaults = ResolveParams(ring->spec(), {});
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(GetIntParam(*defaults, "k"), 8);

  auto overridden = ResolveParams(ring->spec(), {{"k", 12}});
  ASSERT_TRUE(overridden.ok());
  EXPECT_EQ(GetIntParam(*overridden, "k"), 12);

  EXPECT_FALSE(ResolveParams(ring->spec(), {{"nope", 3}}).ok());
  EXPECT_FALSE(ResolveParams(ring->spec(), {{"k", 1}}).ok());  // min is 2
}

TEST(FamilyRegistry, BuildIsDeterministicPerSeed) {
  for (const std::string& name : RegisteredFamilies()) {
    auto a = BuildFamily(name, {}, 7);
    auto b = BuildFamily(name, {}, 7);
    ASSERT_TRUE(a.ok()) << name;
    ASSERT_TRUE(b.ok()) << name;
    EXPECT_EQ(SystemToText(*a->system), SystemToText(*b->system)) << name;
  }
  EXPECT_FALSE(BuildFamily("no_such_family").ok());
}

TEST(FamilyRegistry, ParamOverrideParsing) {
  auto kv = ParseParamOverride("k=12");
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv->first, "k");
  EXPECT_EQ(kv->second, 12.0);

  auto fractional = ParseParamOverride("skew=1.5");
  ASSERT_TRUE(fractional.ok());
  EXPECT_EQ(fractional->second, 1.5);

  EXPECT_FALSE(ParseParamOverride("k").ok());
  EXPECT_FALSE(ParseParamOverride("k=").ok());
  EXPECT_FALSE(ParseParamOverride("=3").ok());
  EXPECT_FALSE(ParseParamOverride("k=abc").ok());
  EXPECT_FALSE(ParseParamOverride("k=1.5x").ok());
}

TEST(FamilyRegistry, ParamValueRenderingRoundTrips) {
  EXPECT_EQ(ParamValueToString(8), "8");
  EXPECT_EQ(ParamValueToString(-3), "-3");
  for (double value : {1.2, 0.25, 1.0 / 3.0}) {
    std::string text = ParamValueToString(value);
    EXPECT_EQ(std::stod(text), value) << text;
  }
}

TEST(TraceFormat, GenerateSerializeParseRoundTrips) {
  for (const std::string& family : RegisteredFamilies()) {
    auto trace = GenerateTrace(family);
    ASSERT_TRUE(trace.ok()) << family;
    EXPECT_EQ(trace->header.family, family);
    EXPECT_EQ(trace->header.seed, kDefaultSeed);
    EXPECT_EQ(trace->header.trace_version, kTraceVersion);
    EXPECT_EQ(trace->header.records,
              static_cast<int64_t>(trace->records.size()));
    EXPECT_GE(trace->header.records, 2) << family;  // system + check minimum

    std::string bytes = trace->Serialize();
    auto reparsed = ParseTrace(bytes);
    ASSERT_TRUE(reparsed.ok()) << family << ": "
                               << reparsed.status().ToString();
    EXPECT_EQ(reparsed->Serialize(), bytes) << family;
    EXPECT_EQ(reparsed->header.params, trace->header.params) << family;
  }
}

TEST(TraceFormat, GenerationIsByteDeterministic) {
  for (const std::string& family : RegisteredFamilies()) {
    auto a = GenerateTrace(family, {}, 5);
    auto b = GenerateTrace(family, {}, 5);
    ASSERT_TRUE(a.ok()) << family;
    ASSERT_TRUE(b.ok()) << family;
    EXPECT_EQ(a->Serialize(), b->Serialize()) << family;
  }
}

TEST(TraceFormat, UnknownFamilyNamesTheRegistry) {
  auto trace = GenerateTrace("no_such_family");
  ASSERT_FALSE(trace.ok());
  EXPECT_NE(trace.status().message().find("ring"), std::string::npos);
}

TEST(TraceFormat, BadParamOverrideIsRejectedBeforeGeneration) {
  EXPECT_FALSE(GenerateTrace("ring", {{"k", 1}}).ok());
  EXPECT_FALSE(GenerateTrace("ring", {{"bogus", 3}}).ok());
}

TEST(TraceFormat, RejectsForeignAndFutureHeaders) {
  std::string bytes = GenerateTrace("ring")->Serialize();

  auto wrong_format =
      ParseTrace(Replaced(bytes, "\"dislock-trace\"", "\"other-format\""));
  ASSERT_FALSE(wrong_format.ok());
  EXPECT_NE(wrong_format.status().message().find("other-format"),
            std::string::npos);

  auto future_schema =
      ParseTrace(Replaced(bytes, "\"schema_version\": 1", "\"schema_version\": 99"));
  ASSERT_FALSE(future_schema.ok());
  EXPECT_NE(future_schema.status().message().find("schema_version"),
            std::string::npos);

  auto future_trace =
      ParseTrace(Replaced(bytes, "\"trace_version\": 1", "\"trace_version\": 99"));
  ASSERT_FALSE(future_trace.ok());
  EXPECT_NE(future_trace.status().message().find("trace_version"),
            std::string::npos);

  auto unknown_key =
      ParseTrace(Replaced(bytes, "\"seed\"", "\"surprise\""));
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_NE(unknown_key.status().message().find("surprise"),
            std::string::npos);
}

TEST(TraceFormat, RejectsTruncationAndCorruptRecords) {
  std::string bytes = GenerateTrace("ring")->Serialize();

  // Drop the last record line: the header's record count catches it.
  std::string truncated = bytes;
  truncated.pop_back();  // trailing '\n'
  truncated.resize(truncated.rfind('\n') + 1);
  auto short_trace = ParseTrace(truncated);
  ASSERT_FALSE(short_trace.ok());
  EXPECT_NE(short_trace.status().message().find("truncated"),
            std::string::npos);

  // A record that is not JSON.
  std::string garbled = Replaced(bytes, "{\"cmd\": \"check\"}", "not json!");
  EXPECT_FALSE(ParseTrace(garbled).ok());

  // A record that is valid JSON but not an object.
  std::string non_object = Replaced(bytes, "{\"cmd\": \"check\"}", "42");
  EXPECT_FALSE(ParseTrace(non_object).ok());

  EXPECT_FALSE(ParseTrace("").ok());
  EXPECT_FALSE(ParseTrace("plainly not a trace\n").ok());
}

// The committed golden traces are the cross-machine determinism pin: the
// registry must regenerate each one byte for byte from (family, defaults,
// seed 42). A diff here means generation changed — bump kTraceVersion and
// regenerate the goldens deliberately, never silently.
TEST(TraceFormat, GoldenTracesRegenerateByteIdentically) {
  for (const std::string& family : RegisteredFamilies()) {
    auto trace = GenerateTrace(family);
    ASSERT_TRUE(trace.ok()) << family;
    EXPECT_EQ(trace->Serialize(), ReadGolden(family)) << family;
  }
}

}  // namespace
}  // namespace gen
}  // namespace dislock
