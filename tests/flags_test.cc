// Unit tests for the shared tool flag parser (util/flags.h): both
// spellings of every common flag, the accepted-set gating, the error
// paths, and the help text that all three tools embed.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/flags.h"

namespace dislock {
namespace {

// Runs ParseCommonFlag over a full argv-style vector the way the tools
// do, returning the outcome of the first slot (the tests only ever need
// one flag per call).
struct ParseOutcome {
  FlagParse result;
  CommonFlags flags;
  std::string error;
};

ParseOutcome Parse(std::vector<std::string> args,
                   unsigned accepted = kThreadsFlag | kCacheFlag |
                                       kFormatFlag | kObsFlags) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("tool"));
  for (std::string& arg : args) argv.push_back(arg.data());
  ParseOutcome out;
  out.result = ParseCommonFlag(static_cast<int>(argv.size()), argv.data(),
                               1, accepted, &out.flags, &out.error);
  return out;
}

TEST(Flags, ThreadsBothSpellings) {
  ParseOutcome space = Parse({"--threads", "4"});
  EXPECT_EQ(space.result, FlagParse::kConsumedTwo);
  EXPECT_EQ(space.flags.num_threads, 4);

  ParseOutcome equals = Parse({"--threads=8"});
  EXPECT_EQ(equals.result, FlagParse::kConsumedOne);
  EXPECT_EQ(equals.flags.num_threads, 8);
}

TEST(Flags, ThreadsMissingValueIsAnError) {
  ParseOutcome out = Parse({"--threads"});
  EXPECT_EQ(out.result, FlagParse::kError);
  EXPECT_FALSE(out.error.empty());
}

TEST(Flags, PrefixOfAFlagIsNotTheFlag) {
  // "--threadsabc" must not match --threads; it falls through to the
  // tool's unknown-argument rejection.
  EXPECT_EQ(Parse({"--threadsabc"}).result, FlagParse::kNotCommon);
}

TEST(Flags, Cache) {
  ParseOutcome out = Parse({"--cache"});
  EXPECT_EQ(out.result, FlagParse::kConsumedOne);
  EXPECT_TRUE(out.flags.cache);
}

TEST(Flags, FormatSpellingsAndAliases) {
  for (const char* fmt : {"text", "json", "sarif"}) {
    ParseOutcome out = Parse({std::string("--format=") + fmt});
    EXPECT_EQ(out.result, FlagParse::kConsumedOne) << fmt;
    EXPECT_EQ(out.flags.format, fmt);
  }
  ParseOutcome space = Parse({"--format", "sarif"});
  EXPECT_EQ(space.result, FlagParse::kConsumedTwo);
  EXPECT_EQ(space.flags.format, "sarif");

  EXPECT_EQ(Parse({"--json"}).flags.format, "json");
  EXPECT_EQ(Parse({"--sarif"}).flags.format, "sarif");
}

TEST(Flags, FormatRejectsUnknownValues) {
  ParseOutcome out = Parse({"--format=yaml"});
  EXPECT_EQ(out.result, FlagParse::kError);
  EXPECT_NE(out.error.find("text, json, or sarif"), std::string::npos);
  EXPECT_EQ(Parse({"--format"}).result, FlagParse::kError);
}

TEST(Flags, TraceRequiresAFile) {
  ParseOutcome equals = Parse({"--trace=out.json"});
  EXPECT_EQ(equals.result, FlagParse::kConsumedOne);
  EXPECT_EQ(equals.flags.trace_path, "out.json");

  ParseOutcome space = Parse({"--trace", "out.json"});
  EXPECT_EQ(space.result, FlagParse::kConsumedTwo);
  EXPECT_EQ(space.flags.trace_path, "out.json");

  EXPECT_EQ(Parse({"--trace"}).result, FlagParse::kError);
  EXPECT_EQ(Parse({"--trace="}).result, FlagParse::kError);
}

TEST(Flags, MetricsValueIsOptionalButNeverSpaceSeparated) {
  ParseOutcome bare = Parse({"--metrics"});
  EXPECT_EQ(bare.result, FlagParse::kConsumedOne);
  EXPECT_TRUE(bare.flags.metrics);
  EXPECT_TRUE(bare.flags.metrics_path.empty());

  ParseOutcome file = Parse({"--metrics=m.json"});
  EXPECT_EQ(file.result, FlagParse::kConsumedOne);
  EXPECT_TRUE(file.flags.metrics);
  EXPECT_EQ(file.flags.metrics_path, "m.json");

  // The space spelling must NOT consume the next argument (it would
  // swallow a positional); "--metrics input.dlk" is bare --metrics and
  // then the tool's positional.
  ParseOutcome space = Parse({"--metrics", "input.dlk"});
  EXPECT_EQ(space.result, FlagParse::kConsumedOne);
  EXPECT_TRUE(space.flags.metrics_path.empty());
}

TEST(Flags, UnacceptedFlagsAreNotCommon) {
  // A tool that doesn't accept --format must leave it for its own
  // rejection path, even though the parser knows the flag.
  EXPECT_EQ(Parse({"--format=json"}, kThreadsFlag | kCacheFlag).result,
            FlagParse::kNotCommon);
  EXPECT_EQ(Parse({"--cache"}, kThreadsFlag).result, FlagParse::kNotCommon);
  EXPECT_EQ(Parse({"--trace=x.json"}, kThreadsFlag).result,
            FlagParse::kNotCommon);
}

TEST(Flags, NonFlagsAreNotCommon) {
  EXPECT_EQ(Parse({"input.dlk"}).result, FlagParse::kNotCommon);
  EXPECT_EQ(Parse({"--something-else"}).result, FlagParse::kNotCommon);
}

TEST(Flags, HelpTextCoversExactlyTheAcceptedSet) {
  std::string all = CommonFlagsHelp(kThreadsFlag | kCacheFlag |
                                    kFormatFlag | kObsFlags);
  for (const char* flag :
       {"--threads", "--cache", "--format", "--trace", "--metrics"}) {
    EXPECT_NE(all.find(flag), std::string::npos) << flag;
  }
  std::string narrow = CommonFlagsHelp(kThreadsFlag | kCacheFlag);
  EXPECT_NE(narrow.find("--threads"), std::string::npos);
  EXPECT_EQ(narrow.find("--format"), std::string::npos);
  EXPECT_EQ(narrow.find("--trace"), std::string::npos);
}

TEST(Flags, DefaultsMatchTheDocumentedContract) {
  CommonFlags flags;
  EXPECT_EQ(flags.num_threads, 1);
  EXPECT_FALSE(flags.cache);
  EXPECT_EQ(flags.format, "text");
  EXPECT_TRUE(flags.trace_path.empty());
  EXPECT_FALSE(flags.metrics);
  EXPECT_EQ(flags.port, 4400);
  EXPECT_EQ(flags.clients, 100);
  EXPECT_EQ(flags.shards, 1);
  EXPECT_EQ(flags.seed, 42u);  // the generator contract: default seed 42
  EXPECT_TRUE(flags.out.empty());
  EXPECT_TRUE(flags.endpoint.empty());
}

TEST(Flags, CacheDirBothSpellings) {
  ParseOutcome space = Parse({"--cache-dir", "/tmp/c"}, kCacheDirFlag);
  EXPECT_EQ(space.result, FlagParse::kConsumedTwo);
  EXPECT_EQ(space.flags.cache_dir, "/tmp/c");

  ParseOutcome equals = Parse({"--cache-dir=/tmp/c"}, kCacheDirFlag);
  EXPECT_EQ(equals.result, FlagParse::kConsumedOne);
  EXPECT_EQ(equals.flags.cache_dir, "/tmp/c");
}

TEST(Flags, CacheDirMissingValueIsAnError) {
  for (const char* spelling : {"--cache-dir", "--cache-dir="}) {
    ParseOutcome out = Parse({spelling}, kCacheDirFlag);
    EXPECT_EQ(out.result, FlagParse::kError) << spelling;
    EXPECT_EQ(out.error, "--cache-dir requires a directory") << spelling;
  }
}

TEST(Flags, CacheDirRespectsTheAcceptedSet) {
  // Independent of --cache: a tool may accept either without the other.
  EXPECT_EQ(Parse({"--cache-dir=/tmp/c"}, kCacheFlag).result,
            FlagParse::kNotCommon);
  EXPECT_NE(CommonFlagsHelp(kCacheDirFlag).find("--cache-dir"),
            std::string::npos);
  EXPECT_EQ(CommonFlagsHelp(kCacheFlag).find("--cache-dir"),
            std::string::npos);
}

TEST(Flags, EffectiveCacheDirPrefersTheFlagOverTheEnvironment) {
  CommonFlags flags;
  unsetenv("DISLOCK_CACHE_DIR");
  EXPECT_EQ(EffectiveCacheDir(flags), "");

  setenv("DISLOCK_CACHE_DIR", "/tmp/from-env", /*overwrite=*/1);
  EXPECT_EQ(EffectiveCacheDir(flags), "/tmp/from-env");

  flags.cache_dir = "/tmp/from-flag";  // the flag always wins
  EXPECT_EQ(EffectiveCacheDir(flags), "/tmp/from-flag");

  unsetenv("DISLOCK_CACHE_DIR");
  EXPECT_EQ(EffectiveCacheDir(flags), "/tmp/from-flag");
}

TEST(Flags, ServeFlagsBothSpellings) {
  ParseOutcome port = Parse({"--port", "7001"}, kServeFlags);
  EXPECT_EQ(port.result, FlagParse::kConsumedTwo);
  EXPECT_EQ(port.flags.port, 7001);
  EXPECT_EQ(Parse({"--port=0"}, kServeFlags).flags.port, 0);

  ParseOutcome clients = Parse({"--clients=250"}, kServeFlags);
  EXPECT_EQ(clients.result, FlagParse::kConsumedOne);
  EXPECT_EQ(clients.flags.clients, 250);

  ParseOutcome shards = Parse({"--shards", "4"}, kServeFlags);
  EXPECT_EQ(shards.result, FlagParse::kConsumedTwo);
  EXPECT_EQ(shards.flags.shards, 4);
}

TEST(Flags, ServeFlagsMissingValuesAreErrors) {
  for (const char* flag : {"--port", "--clients", "--shards"}) {
    ParseOutcome out = Parse({flag}, kServeFlags);
    EXPECT_EQ(out.result, FlagParse::kError) << flag;
    EXPECT_EQ(out.error, std::string(flag) + " requires a value") << flag;
  }
}

TEST(Flags, ServeFlagsRespectTheAcceptedSet) {
  // A tool that doesn't opt into kServeFlags leaves them for its own
  // unknown-argument rejection (the uniform exit-2 contract).
  EXPECT_EQ(Parse({"--port=7001"}, kThreadsFlag).result,
            FlagParse::kNotCommon);
  EXPECT_EQ(Parse({"--clients=8"}, kThreadsFlag).result,
            FlagParse::kNotCommon);
  EXPECT_EQ(Parse({"--shards=2"}, kThreadsFlag).result,
            FlagParse::kNotCommon);
  std::string help = CommonFlagsHelp(kServeFlags);
  for (const char* flag : {"--port", "--clients", "--shards"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag;
  }
  EXPECT_EQ(CommonFlagsHelp(kThreadsFlag).find("--port"), std::string::npos);
}

constexpr unsigned kGenFlags = kSeedFlag | kOutFlag | kEndpointFlag;

TEST(Flags, GenReplayFlagsBothSpellings) {
  ParseOutcome seed = Parse({"--seed", "7"}, kGenFlags);
  EXPECT_EQ(seed.result, FlagParse::kConsumedTwo);
  EXPECT_EQ(seed.flags.seed, 7u);
  // Full uint64 range: a trace header's seed must survive the flag.
  EXPECT_EQ(Parse({"--seed=18446744073709551615"}, kGenFlags).flags.seed,
            18446744073709551615ull);

  ParseOutcome out = Parse({"--out=trace.dlt"}, kGenFlags);
  EXPECT_EQ(out.result, FlagParse::kConsumedOne);
  EXPECT_EQ(out.flags.out, "trace.dlt");
  EXPECT_EQ(Parse({"--out", "t.dlt"}, kGenFlags).flags.out, "t.dlt");

  ParseOutcome endpoint = Parse({"--endpoint", "127.0.0.1:4400"}, kGenFlags);
  EXPECT_EQ(endpoint.result, FlagParse::kConsumedTwo);
  EXPECT_EQ(endpoint.flags.endpoint, "127.0.0.1:4400");
  EXPECT_EQ(Parse({"--endpoint=host:1"}, kGenFlags).flags.endpoint,
            "host:1");
}

TEST(Flags, GenReplayFlagsMissingValuesAreErrors) {
  struct Case {
    const char* spelling;
    const char* message;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"--seed", "--seed requires a value"},
           {"--seed=", "--seed requires a value"},
           {"--out", "--out requires an output file"},
           {"--out=", "--out requires an output file"},
           {"--endpoint", "--endpoint requires HOST:PORT"},
           {"--endpoint=", "--endpoint requires HOST:PORT"}}) {
    ParseOutcome out = Parse({c.spelling}, kGenFlags);
    EXPECT_EQ(out.result, FlagParse::kError) << c.spelling;
    EXPECT_EQ(out.error, c.message) << c.spelling;
  }
}

TEST(Flags, GenReplayFlagsRespectTheAcceptedSet) {
  EXPECT_EQ(Parse({"--seed=7"}, kThreadsFlag).result, FlagParse::kNotCommon);
  EXPECT_EQ(Parse({"--out=x"}, kThreadsFlag).result, FlagParse::kNotCommon);
  EXPECT_EQ(Parse({"--endpoint=h:1"}, kThreadsFlag).result,
            FlagParse::kNotCommon);
  std::string help = CommonFlagsHelp(kGenFlags);
  for (const char* flag : {"--seed", "--out", "--endpoint"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag;
  }
  EXPECT_EQ(CommonFlagsHelp(kThreadsFlag).find("--seed"), std::string::npos);
}

}  // namespace
}  // namespace dislock
