// IncrementalSafetyEngine: the equivalence contract (any edit sequence +
// Check matches a from-scratch AnalyzeMultiSafety of the final catalog, at
// any thread count, with and without the verdict cache) plus directed
// DeltaStats accounting — the full first check, total reuse on a no-op
// check, and the degree+1 recomputation bound for a single-transaction
// Replace.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/decision/context.h"
#include "core/incremental/engine.h"
#include "core/multi.h"
#include "core/policy.h"
#include "core/report.h"
#include "sim/workload.h"
#include "txn/catalog.h"
#include "txn/system.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dislock {
namespace {

struct RingFixture {
  explicit RingFixture(int k) : db(std::make_shared<DistributedDatabase>(1)) {
    std::vector<EntityId> entities;
    for (int i = 0; i < k; ++i) {
      entities.push_back(db->MustAddEntity(StrCat("e", i), 0));
    }
    for (int i = 0; i < k; ++i) {
      txns.push_back(MakeTwoPhaseTransaction(
          db.get(), StrCat("T", i),
          {entities[static_cast<size_t>(i)],
           entities[static_cast<size_t>((i + 1) % k)]}));
    }
  }
  std::shared_ptr<DistributedDatabase> db;
  std::vector<Transaction> txns;
};

EngineConfig TestConfig(int num_threads) {
  EngineConfig config;
  config.max_cycles = 1 << 10;
  config.max_extension_pairs = 1 << 14;
  config.num_threads = num_threads;
  return config;
}

// Renders a report without its delta block, against the snapshot's names.
std::string JsonSansDelta(MultiSafetyReport report,
                          const CatalogSnapshot& snap) {
  report.delta.reset();
  return MultiReportToJson(report, snap.View());
}

// The incremental report must equal the batch report of the materialized
// catalog under a fresh context with the same config, modulo `delta`.
void ExpectMatchesScratch(const MultiSafetyReport& report,
                          const TransactionCatalog& catalog,
                          const EngineConfig& config, const char* where) {
  CatalogSnapshot snap = catalog.Snapshot();
  TransactionSystem scratch_system = snap.Materialize();
  MultiSafetyReport scratch = AnalyzeMultiSafety(scratch_system, config);
  EXPECT_FALSE(scratch.delta.has_value());
  EXPECT_EQ(JsonSansDelta(report, snap),
            MultiReportToJson(scratch, scratch_system))
      << where << " (generation " << catalog.generation() << ")";
}

TEST(IncrementalEngine, FirstCheckIsFullAndMatchesScratch) {
  RingFixture ring(8);
  TransactionCatalog catalog(ring.db.get());
  for (const Transaction& t : ring.txns) ASSERT_TRUE(catalog.Add(t).ok());

  EngineConfig config = TestConfig(1);
  EngineContext ctx(config);
  IncrementalSafetyEngine engine(&catalog, &ctx);

  MultiSafetyReport report = engine.Check();
  ASSERT_TRUE(report.delta.has_value());
  EXPECT_TRUE(report.delta->full);
  // A full check does not itemize edits; txns_* stay 0.
  EXPECT_EQ(report.delta->txns_added, 0);
  // Ring of 8: every adjacent pair conflicts, nothing is reusable yet.
  EXPECT_EQ(report.delta->pairs_recomputed, 8);
  EXPECT_EQ(report.delta->pairs_reused, 0);
  EXPECT_EQ(report.delta->cycles_reused, 0);
  EXPECT_EQ(engine.PairStoreSize(), 8);
  EXPECT_EQ(engine.totals().checks, 1);
  ExpectMatchesScratch(report, catalog, config, "first check");
}

TEST(IncrementalEngine, NoEditCheckReusesEverything) {
  RingFixture ring(8);
  TransactionCatalog catalog(ring.db.get());
  for (const Transaction& t : ring.txns) ASSERT_TRUE(catalog.Add(t).ok());

  EngineConfig config = TestConfig(1);
  EngineContext ctx(config);
  IncrementalSafetyEngine engine(&catalog, &ctx);

  MultiSafetyReport first = engine.Check();
  MultiSafetyReport second = engine.Check();
  ASSERT_TRUE(second.delta.has_value());
  EXPECT_FALSE(second.delta->full);
  EXPECT_EQ(second.delta->txns_added, 0);
  EXPECT_EQ(second.delta->txns_removed, 0);
  EXPECT_EQ(second.delta->txns_replaced, 0);
  EXPECT_EQ(second.delta->pairs_recomputed, 0);
  EXPECT_EQ(second.delta->pairs_reused, 8);
  EXPECT_EQ(second.delta->cycles_recomputed, 0);

  // Identical verdict and counters either way.
  CatalogSnapshot snap = catalog.Snapshot();
  EXPECT_EQ(JsonSansDelta(first, snap), JsonSansDelta(second, snap));
  ExpectMatchesScratch(second, catalog, config, "no-op check");
}

TEST(IncrementalEngine, ReplaceRecomputesAtMostDegreePlusOne) {
  RingFixture ring(16);
  TransactionCatalog catalog(ring.db.get());
  std::vector<TxnId> ids;
  for (const Transaction& t : ring.txns) {
    auto id = catalog.Add(t);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  EngineConfig config = TestConfig(1);
  EngineContext ctx(config);
  IncrementalSafetyEngine engine(&catalog, &ctx);
  engine.Check();

  // Re-lock T5's entities in the opposite order: a real definition change
  // that keeps the same conflict edges.
  const int slot = 5;
  std::vector<EntityId> locked = ring.txns[slot].LockedEntities();
  std::vector<EntityId> reversed(locked.rbegin(), locked.rend());
  ASSERT_TRUE(
      catalog.Replace(ids[slot], MakeTwoPhaseTransaction(ring.db.get(), "T5",
                                                         reversed))
          .ok());

  MultiSafetyReport report = engine.Check();
  ASSERT_TRUE(report.delta.has_value());
  EXPECT_FALSE(report.delta->full);
  EXPECT_EQ(report.delta->txns_replaced, 1);

  CatalogSnapshot snap = catalog.Snapshot();
  Digraph g = BuildTransactionConflictGraph(snap.View());
  int64_t degree = static_cast<int64_t>(g.OutNeighbors(slot).size());
  EXPECT_EQ(degree, 2);  // ring: conflicts with its two neighbors only
  EXPECT_LE(report.delta->pairs_recomputed, degree + 1);
  EXPECT_EQ(report.delta->pairs_reused, 16 - report.delta->pairs_recomputed);
  ExpectMatchesScratch(report, catalog, config, "after replace");
}

TEST(IncrementalEngine, AddAndRemoveAccounting) {
  RingFixture ring(6);
  TransactionCatalog catalog(ring.db.get());
  std::vector<TxnId> ids;
  for (int i = 0; i < 5; ++i) {
    auto id = catalog.Add(ring.txns[static_cast<size_t>(i)]);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  EngineConfig config = TestConfig(1);
  EngineContext ctx(config);
  IncrementalSafetyEngine engine(&catalog, &ctx);
  engine.Check();

  // Adding the closing transaction dirties only its own conflict edges.
  auto id5 = catalog.Add(ring.txns[5]);
  ASSERT_TRUE(id5.ok());
  MultiSafetyReport after_add = engine.Check();
  ASSERT_TRUE(after_add.delta.has_value());
  EXPECT_EQ(after_add.delta->txns_added, 1);
  EXPECT_EQ(after_add.delta->pairs_recomputed, 2);  // T5-T4 and T5-T0
  EXPECT_EQ(after_add.delta->pairs_reused, 4);
  ExpectMatchesScratch(after_add, catalog, config, "after add");

  // Removal invalidates without computing anything new.
  ASSERT_TRUE(catalog.Remove(ids[2]).ok());
  MultiSafetyReport after_remove = engine.Check();
  ASSERT_TRUE(after_remove.delta.has_value());
  EXPECT_EQ(after_remove.delta->txns_removed, 1);
  EXPECT_EQ(after_remove.delta->pairs_recomputed, 0);
  EXPECT_EQ(after_remove.delta->pairs_reused, 4);
  ExpectMatchesScratch(after_remove, catalog, config, "after remove");

  EXPECT_EQ(engine.totals().checks, 3);
}

TEST(IncrementalEngine, ResetForcesFullRecheckWithSameReport) {
  RingFixture ring(8);
  TransactionCatalog catalog(ring.db.get());
  for (const Transaction& t : ring.txns) ASSERT_TRUE(catalog.Add(t).ok());

  EngineConfig config = TestConfig(1);
  EngineContext ctx(config);
  IncrementalSafetyEngine engine(&catalog, &ctx);
  MultiSafetyReport before = engine.Check();
  engine.Reset();
  EXPECT_EQ(engine.PairStoreSize(), 0);
  EXPECT_EQ(engine.CycleStoreSize(), 0);
  MultiSafetyReport after = engine.Check();
  ASSERT_TRUE(after.delta.has_value());
  EXPECT_TRUE(after.delta->full);
  CatalogSnapshot snap = catalog.Snapshot();
  EXPECT_EQ(JsonSansDelta(before, snap), JsonSansDelta(after, snap));
}

// The satellite property test: a random add/remove/replace sequence with a
// Check after every edit equals from-scratch analysis of the then-current
// system — same verdict, same failing pair/cycle, same pipeline stats —
// serially, at 4 threads, and with the engine-owned verdict cache on. The
// DeltaStats themselves must also be thread-count invariant.
TEST(IncrementalProperty, RandomEditSequencesMatchScratch) {
  Rng rng(0xD15C0'1CE);
  constexpr int kTrials = 12;
  constexpr int kPoolSize = 8;
  constexpr int kEditsPerTrial = 10;

  for (int trial = 0; trial < kTrials; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + static_cast<int>(rng.Uniform(3));
    params.num_entities = 2 + static_cast<int>(rng.Uniform(3));
    params.num_transactions = kPoolSize;
    params.lock_probability = 0.5 + 0.5 * rng.UniformDouble();
    params.update_probability = 1.0;
    params.shared_probability = rng.Bernoulli(0.3) ? 0.4 : 0.0;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(3));
    Workload pool = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(pool.system->Validate().ok());

    EngineConfig serial_config = TestConfig(1);
    EngineConfig parallel_config = TestConfig(4);
    EngineConfig cached_config = TestConfig(1);
    cached_config.enable_cache = true;

    TransactionCatalog catalog(pool.db.get());
    EngineContext serial_ctx(serial_config);
    EngineContext parallel_ctx(parallel_config);
    EngineContext cached_ctx(cached_config);
    IncrementalSafetyEngine serial(&catalog, &serial_ctx);
    IncrementalSafetyEngine parallel(&catalog, &parallel_ctx);
    IncrementalSafetyEngine cached(&catalog, &cached_ctx);

    int name_counter = 0;
    auto add_from_pool = [&]() {
      Transaction t =
          pool.system->txn(static_cast<int>(rng.Uniform(kPoolSize)));
      t.set_name(StrCat("A", name_counter++));
      ASSERT_TRUE(catalog.Add(std::move(t)).ok());
    };

    auto check_all = [&](const char* where) {
      MultiSafetyReport serial_report = serial.Check();
      MultiSafetyReport parallel_report = parallel.Check();
      MultiSafetyReport cached_report = cached.Check();
      ASSERT_TRUE(serial_report.delta.has_value());
      ASSERT_TRUE(parallel_report.delta.has_value());
      // Reuse accounting is part of the determinism contract.
      EXPECT_EQ(DeltaStatsToJson(*serial_report.delta),
                DeltaStatsToJson(*parallel_report.delta))
          << where << " trial " << trial;
      ExpectMatchesScratch(serial_report, catalog, serial_config, where);
      ExpectMatchesScratch(parallel_report, catalog, parallel_config, where);
      ExpectMatchesScratch(cached_report, catalog, cached_config, where);
    };

    for (int i = 0; i < 3; ++i) add_from_pool();
    check_all("initial");

    for (int edit = 0; edit < kEditsPerTrial; ++edit) {
      CatalogSnapshot snap = catalog.Snapshot();
      int n = snap.NumTransactions();
      uint64_t op = rng.Uniform(3);
      if (op == 0 || n <= 2) {
        add_from_pool();
      } else if (op == 1) {
        ASSERT_TRUE(
            catalog.Remove(snap.id(static_cast<int>(rng.Uniform(
                               static_cast<uint64_t>(n)))))
                .ok());
      } else {
        int slot = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
        Transaction t =
            pool.system->txn(static_cast<int>(rng.Uniform(kPoolSize)));
        t.set_name(snap.txn(slot).name());  // replace keeps the name
        ASSERT_TRUE(catalog.Replace(snap.id(slot), std::move(t)).ok());
      }
      check_all("after edit");
    }
  }
}

}  // namespace
}  // namespace dislock
