// Tests for the dislock text format: parsing, error reporting, round-trip.

#include <gtest/gtest.h>

#include "core/paper.h"
#include "core/safety.h"
#include "sim/workload.h"
#include "txn/text_format.h"

namespace dislock {
namespace {

constexpr char kSample[] = R"(
# Fig. 1 style system.
sites 2
entity x 0
entity y 1

txn T1
  lock x      # 0
  update x    # 1
  unlock x    # 2
  lock y      # 3
  update y    # 4
  unlock y    # 5
  edge 2 3
end

txn T2
  lock y
  update y
  unlock y
  lock x
  update x
  unlock x
  edge 2 3
end
)";

TEST(TextFormat, ParsesSampleSystem) {
  auto parsed = ParseSystemText(kSample);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->db->NumSites(), 2);
  EXPECT_EQ(parsed->db->NumEntities(), 2);
  ASSERT_EQ(parsed->system->NumTransactions(), 2);
  const Transaction& t1 = parsed->system->txn(0);
  EXPECT_EQ(t1.name(), "T1");
  EXPECT_EQ(t1.NumSteps(), 6);
  // Auto site chain + the explicit cross edge.
  EXPECT_TRUE(t1.Precedes(0, 2));
  EXPECT_TRUE(t1.Precedes(2, 3));
  // And the parsed system is analyzable.
  PairSafetyReport report =
      AnalyzePairSafety(parsed->system->txn(0), parsed->system->txn(1));
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnsafe);
}

TEST(TextFormat, ErrorsCarryLineNumbers) {
  auto missing_sites = ParseSystemText("entity x 0\n");
  ASSERT_FALSE(missing_sites.ok());
  EXPECT_NE(missing_sites.status().message().find("line 1"),
            std::string::npos);

  auto bad_step = ParseSystemText("sites 1\nentity x 0\ntxn T\n  grab x\n");
  ASSERT_FALSE(bad_step.ok());
  EXPECT_NE(bad_step.status().message().find("line 4"), std::string::npos);
  EXPECT_NE(bad_step.status().message().find("grab"), std::string::npos);
}

TEST(TextFormat, RejectsStructuralMistakes) {
  EXPECT_FALSE(ParseSystemText("").ok());
  EXPECT_FALSE(ParseSystemText("sites 0\n").ok());
  EXPECT_FALSE(ParseSystemText("sites 1\ntxn A\ntxn B\n").ok());
  EXPECT_FALSE(ParseSystemText("sites 1\nend\n").ok());
  EXPECT_FALSE(ParseSystemText("sites 1\ntxn A\n  lock x\nend\n").ok());
  EXPECT_FALSE(
      ParseSystemText("sites 1\nentity x 0\ntxn A\n  lock x\n").ok());
  // Invalid edge target.
  EXPECT_FALSE(ParseSystemText(
                   "sites 1\nentity x 0\ntxn A\n  lock x\n  unlock x\n"
                   "  edge 0 7\nend\n")
                   .ok());
}

TEST(TextFormat, ValidatesTransactions) {
  // Lock without unlock.
  auto parsed = ParseSystemText(
      "sites 1\nentity x 0\ntxn T\n  lock x\nend\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("lock without unlock"),
            std::string::npos);
}

TEST(TextFormat, RoundTripsPaperInstances) {
  for (auto make : {MakeFig1Instance, MakeFig2Instance, MakeFig3Instance,
                    MakeFig5Instance}) {
    PaperInstance inst = make();
    std::string text = SystemToText(*inst.system);
    auto parsed = ParseSystemText(text);
    ASSERT_TRUE(parsed.ok())
        << inst.description << ": " << parsed.status().ToString() << "\n"
        << text;
    ASSERT_EQ(parsed->system->NumTransactions(),
              inst.system->NumTransactions());
    for (int i = 0; i < inst.system->NumTransactions(); ++i) {
      const Transaction& orig = inst.system->txn(i);
      const Transaction& back = parsed->system->txn(i);
      ASSERT_EQ(orig.NumSteps(), back.NumSteps());
      for (StepId a = 0; a < orig.NumSteps(); ++a) {
        EXPECT_EQ(orig.GetStep(a).kind, back.GetStep(a).kind);
        // Entity identity is preserved by name.
        EXPECT_EQ(inst.db->NameOf(orig.GetStep(a).entity),
                  parsed->db->NameOf(back.GetStep(a).entity));
        for (StepId b = 0; b < orig.NumSteps(); ++b) {
          if (a == b) continue;
          EXPECT_EQ(orig.Precedes(a, b), back.Precedes(a, b));
        }
      }
    }
  }
}

TEST(TextFormat, RoundTripsRandomWorkloads) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    WorkloadParams params;
    params.num_sites = 2;
    params.num_entities = 4;
    params.num_transactions = 3;
    params.update_probability = 0.5;
    Workload w = MakeRandomWorkload(params, &rng);
    auto parsed = ParseSystemText(SystemToText(*w.system));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    // Same safety verdicts after the round trip.
    PairSafetyReport before =
        AnalyzePairSafety(w.system->txn(0), w.system->txn(1));
    PairSafetyReport after =
        AnalyzePairSafety(parsed->system->txn(0), parsed->system->txn(1));
    EXPECT_EQ(before.verdict, after.verdict);
  }
}

}  // namespace
}  // namespace dislock
