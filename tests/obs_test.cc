// Unit tests for the obs/ layer: TraceSpan nesting and thread ids,
// MetricsRegistry counter/gauge semantics (including aggregation across
// ThreadPool workers), the JSON validator, and the well-formedness of the
// Chrome trace / flat metrics exports.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <future>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/stats_sink.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace dislock {
namespace {

// ---- TraceSpan / TraceRecorder --------------------------------------------

TEST(TraceSpan, RecordsNestingDepth) {
  obs::TraceRecorder recorder;
  {
    obs::TraceSpan outer(&recorder, "outer");
    {
      obs::TraceSpan middle(&recorder, "middle");
      obs::TraceSpan inner(&recorder, "inner");
    }
  }
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans record at destruction, so children land before parents.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_STREQ(events[1].name, "middle");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
}

TEST(TraceSpan, DepthResetsBetweenSiblings) {
  obs::TraceRecorder recorder;
  { obs::TraceSpan a(&recorder, "a"); }
  { obs::TraceSpan b(&recorder, "b"); }
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 0);
}

TEST(TraceSpan, NullRecorderIsNoOpAndKeepsDepthExact) {
  // A disabled span must not perturb the per-thread depth bookkeeping of
  // enabled spans around it.
  obs::TraceRecorder recorder;
  {
    obs::TraceSpan enabled(&recorder, "enabled");
    obs::TraceSpan disabled(nullptr, "disabled");
    obs::TraceSpan child(&recorder, "child");
  }
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "child");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "enabled");
  EXPECT_EQ(events[1].depth, 0);
}

TEST(TraceRecorder, AssignsThreadIdsInRegistrationOrder) {
  obs::TraceRecorder recorder;
  { obs::TraceSpan main_span(&recorder, "main"); }
  std::thread other([&recorder] {
    obs::TraceSpan span(&recorder, "worker");
  });
  other.join();
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, 0);  // this thread registered first
  EXPECT_EQ(events[1].tid, 1);
  // Worker spans are roots on their own thread regardless of what the
  // submitting thread had open.
  EXPECT_EQ(events[1].depth, 0);
}

TEST(TraceRecorder, SpanDurationsAreOrderedAndNested) {
  obs::TraceRecorder recorder;
  {
    obs::TraceSpan outer(&recorder, "outer");
    obs::TraceSpan inner(&recorder, "inner");
  }
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_GE(inner.start_us, outer.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us, outer.start_us + outer.dur_us);
}

TEST(TraceRecorder, ChromeTraceJsonIsValidAndVersioned) {
  obs::TraceRecorder recorder;
  {
    obs::TraceSpan span(&recorder, "needs \"escaping\"\n");
    obs::TraceSpan child(&recorder, "child");
  }
  std::string json = recorder.ToChromeTraceJson();
  std::string error;
  EXPECT_TRUE(obs::IsValidJson(json, &error)) << error;
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"needs \\\"escaping\\\"\\n\""), std::string::npos);
}

TEST(TraceRecorder, EmptyTraceIsStillValidJson) {
  obs::TraceRecorder recorder;
  std::string error;
  EXPECT_TRUE(obs::IsValidJson(recorder.ToChromeTraceJson(), &error))
      << error;
}

// ---- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, CountersAccumulateAndGaugesLastWriteWins) {
  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.CounterValue("never.touched"), 0);
  registry.AddCounter("a.count", 2);
  registry.AddCounter("a.count", 3);
  registry.SetGauge("a.rate", 0.25);
  registry.SetGauge("a.rate", 0.75);
  EXPECT_EQ(registry.CounterValue("a.count"), 5);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("a.rate"), 0.75);
  EXPECT_FALSE(registry.empty());
  registry.Clear();
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.CounterValue("a.count"), 0);
}

TEST(MetricsRegistry, AggregatesAcrossThreadPoolWorkers) {
  // The counter contract under concurrency: N workers each adding 1 to the
  // same counter must sum exactly, with no lost updates.
  obs::MetricsRegistry registry;
  constexpr int kTasks = 200;
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.Submit([&registry] {
        registry.AddCounter("pool.increments", 1);
        registry.SetGauge("pool.last", 1.0);
      }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(registry.CounterValue("pool.increments"), kTasks);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("pool.last"), 1.0);
}

TEST(MetricsRegistry, ToJsonIsValidSortedAndVersioned) {
  obs::MetricsRegistry registry;
  registry.AddCounter("zeta", 1);
  registry.AddCounter("alpha", 2);
  registry.SetGauge("mid \"quote\"", 0.5);
  std::string json = registry.ToJson();
  std::string error;
  EXPECT_TRUE(obs::IsValidJson(json, &error)) << error;
  // First key of the document is schema_version.
  EXPECT_EQ(json.find("\"schema_version\": 1"), json.find('"'));
  // Sorted by key: alpha before zeta.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"mid \\\"quote\\\"\""), std::string::npos);
}

TEST(MetricsRegistry, NonFiniteGaugesExportAsZero) {
  obs::MetricsRegistry registry;
  registry.SetGauge("a", std::numeric_limits<double>::quiet_NaN());
  registry.SetGauge("b", std::numeric_limits<double>::infinity());
  std::string json = registry.ToJson();
  std::string error;
  // NaN/Inf are not JSON; the exporter must clamp rather than emit them.
  EXPECT_TRUE(obs::IsValidJson(json, &error)) << error;
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"a\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"b\": 0"), std::string::npos);
}

TEST(PrefixedSink, NamespacesEveryMetric) {
  obs::MetricsRegistry registry;
  obs::PrefixedSink prefixed("inc", &registry);
  prefixed.AddCounter("pairs", 3);
  prefixed.SetGauge("rate", 0.5);
  EXPECT_EQ(registry.CounterValue("inc.pairs"), 3);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("inc.rate"), 0.5);
}

// ---- ThreadPool tracing ---------------------------------------------------

TEST(ThreadPoolTrace, WrapsEveryTaskInAPoolTaskSpan) {
  obs::TraceRecorder recorder;
  constexpr int kTasks = 25;
  {
    ThreadPool pool(2);
    pool.set_trace_recorder(&recorder);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.Submit([i] { return i; }));
    }
    for (int i = 0; i < kTasks; ++i) EXPECT_EQ(futures[i].get(), i);
  }
  std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), static_cast<size_t>(kTasks));
  for (const obs::TraceEvent& ev : events) {
    EXPECT_STREQ(ev.name, "pool.task");
    EXPECT_EQ(ev.depth, 0);  // tasks are roots on their worker threads
    EXPECT_GE(ev.tid, 0);
    EXPECT_LT(ev.tid, 2);
  }
}

TEST(ThreadPoolTrace, NoRecorderMeansNoEvents) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.trace_recorder(), nullptr);
  pool.Submit([] {}).get();
}

// ---- JSON helpers ---------------------------------------------------------

TEST(Json, QuoteEscapes) {
  EXPECT_EQ(obs::JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(obs::JsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(obs::JsonQuote("\n"), "\"\\n\"");
  std::string error;
  EXPECT_TRUE(obs::IsValidJson(obs::JsonQuote(std::string(1, '\x01')),
                               &error))
      << error;
}

TEST(Json, ValidatorAcceptsTheGrammar) {
  for (const char* ok :
       {"{}", "[]", "null", "true", "false", "0", "-1.5e3",
        "\"s\"", "{\"a\": [1, {\"b\": null}], \"c\": \"\\u0041\"}",
        "  [ 1 , 2 ]  "}) {
    std::string error;
    EXPECT_TRUE(obs::IsValidJson(ok, &error)) << ok << ": " << error;
  }
}

TEST(Json, ValidatorRejectsMalformedText) {
  for (const char* bad :
       {"", "{", "}", "[1,]", "{\"a\":}", "{\"a\" 1}", "nul", "01",
        "\"unterminated", "{} trailing", "[1 2]", "{'a': 1}"}) {
    EXPECT_FALSE(obs::IsValidJson(bad)) << bad;
  }
}

// ---- Observability bundle -------------------------------------------------

TEST(Observability, DisabledBundleHasNullHooks) {
  obs::Observability bundle;
  EXPECT_EQ(bundle.trace(), nullptr);
  EXPECT_EQ(bundle.metrics(), nullptr);
  EXPECT_FALSE(bundle.enabled());
  std::string error;
  EXPECT_TRUE(bundle.Flush(&error)) << error;
}

TEST(Observability, FlushWritesRequestedFiles) {
  std::string trace_path =
      testing::TempDir() + "/obs_test_trace.json";
  std::string metrics_path =
      testing::TempDir() + "/obs_test_metrics.json";
  obs::Observability bundle(trace_path, /*metrics_requested=*/true,
                            metrics_path);
  ASSERT_TRUE(bundle.enabled());
  {
    obs::TraceSpan span(bundle.trace(), "flush.test");
  }
  bundle.metrics()->AddCounter("flush.count", 1);
  std::string error;
  ASSERT_TRUE(bundle.Flush(&error)) << error;
  for (const std::string& path : {trace_path, metrics_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream contents;
    contents << in.rdbuf();
    EXPECT_TRUE(obs::IsValidJson(contents.str(), &error))
        << path << ": " << error;
  }
}

TEST(Observability, FlushReportsUnwritablePath) {
  obs::Observability bundle("/nonexistent-dir/trace.json",
                            /*metrics_requested=*/false, "");
  std::string error;
  EXPECT_FALSE(bundle.Flush(&error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dislock
