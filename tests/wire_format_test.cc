// Pins the wire contract of core/wire_keys.h: the method/stage name
// tables agree with the enum-to-name functions, the pre-joined span names
// agree with the stage table, every JSON emitter in the repo produces
// well-formed JSON, and every top-level document (and every session line)
// leads with "schema_version": 1.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/emit.h"
#include "cache/verdict_store.h"
#include "analysis/repair/engine.h"
#include "core/deadlock.h"
#include "core/multi.h"
#include "core/paper.h"
#include "core/report.h"
#include "core/safety.h"
#include "core/decision/method.h"
#include "core/decision/stats.h"
#include "core/incremental/session.h"
#include "core/wire_keys.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dislock {
namespace {

constexpr char kVersionPrefix[] = "{\"schema_version\": 1, ";

void ExpectValidJson(const std::string& text, const char* what) {
  std::string error;
  EXPECT_TRUE(obs::IsValidJson(text, &error)) << what << ": " << error;
}

// ---- Name tables ----------------------------------------------------------

TEST(WireKeys, MethodTableMatchesEnumNames) {
  for (int m = 0; m < wire::kNumDecisionMethodNames; ++m) {
    EXPECT_STREQ(wire::kDecisionMethodNames[m],
                 DecisionMethodName(static_cast<DecisionMethod>(m)))
        << "method " << m;
  }
}

TEST(WireKeys, StageTableMatchesEnumNames) {
  for (int s = 0; s < wire::kNumDecisionStageNames; ++s) {
    EXPECT_STREQ(wire::kDecisionStageNames[s],
                 DecisionStageName(static_cast<DecisionStageId>(s)))
        << "stage " << s;
  }
}

TEST(WireKeys, StageSpanNamesAreStageDotStageName) {
  for (int s = 0; s < wire::kNumDecisionStageNames; ++s) {
    EXPECT_EQ(std::string(wire::kStageSpanNames[s]),
              std::string("stage.") + wire::kDecisionStageNames[s])
        << "stage " << s;
  }
}

// ---- Report emitters ------------------------------------------------------

TEST(WireFormat, PairAndMultiReportsAreValidJson) {
  for (auto make : {MakeFig4Instance, MakeFig5Instance}) {
    PaperInstance inst = make();
    SafetyOptions options;
    PairSafetyReport pair = AnalyzePairSafety(
        inst.system->txn(0), inst.system->txn(1), options);
    ExpectValidJson(PairReportToJson(pair, *inst.db), "pair report");
    MultiSafetyOptions multi_options;
    MultiSafetyReport multi = AnalyzeMultiSafety(*inst.system,
                                                 multi_options);
    ExpectValidJson(MultiReportToJson(multi, *inst.system), "multi report");
  }
}

TEST(WireFormat, DeadlockReportIsValidJson) {
  PaperInstance inst = MakeFig4Instance();
  auto report = AnalyzeDeadlockFreedom(*inst.system, 1 << 16);
  ASSERT_TRUE(report.ok());
  ExpectValidJson(DeadlockReportToJson(*report, *inst.system),
                  "deadlock report");
}

TEST(WireFormat, AnalysisEmittersAreValidJsonAndSarifIsVersioned) {
  PaperInstance inst = MakeFig1Instance();  // unsafe: produces diagnostics
  AnalysisOptions options;
  AnalysisResult result = AnalyzeSystem(*inst.system, options);
  EXPECT_FALSE(result.diagnostics.empty());
  std::string json = DiagnosticsToJson(result, *inst.system);
  ExpectValidJson(json, "diagnostics json");
  std::string sarif = DiagnosticsToSarif(result, *inst.system);
  ExpectValidJson(sarif, "sarif");
  // The run properties bag stamps the repo-wide schema version.
  EXPECT_NE(sarif.find("\"schema_version\": 1"), std::string::npos);
}

TEST(WireFormat, SarifFixesCarryWholeFileReplacements) {
  // When verified repairs ride along on the result, the SARIF rendering
  // attaches runs[].results[].fixes to the repairable diagnostics: one fix
  // per repair, each a whole-file replacement of the named artifact.
  PaperInstance inst = MakeFig1Instance();  // unsafe: DL002 is repairable
  AnalysisResult result = AnalyzeSystem(*inst.system);
  result.repair = SynthesizeRepairs(*inst.system, RepairOptions());
  ASSERT_TRUE(result.repair->attempted);
  ASSERT_FALSE(result.repair->repairs.empty());

  SarifArtifact artifact;
  artifact.uri = "data/fig1.dlk";
  artifact.end_line = 20;
  std::string sarif = DiagnosticsToSarif(result, *inst.system, artifact);
  ExpectValidJson(sarif, "sarif with fixes");
  EXPECT_NE(sarif.find("\"fixes\": ["), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("\"artifactChanges\""), std::string::npos);
  EXPECT_NE(sarif.find("\"artifactLocation\": {\"uri\": \"data/fig1.dlk\"}"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"deletedRegion\": {\"startLine\": 1, "
                       "\"startColumn\": 1, \"endLine\": 20}"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"insertedContent\""), std::string::npos);
  // The driver rules carry their catalog severities as defaultConfiguration.
  EXPECT_NE(sarif.find("\"defaultConfiguration\": {\"level\": \"error\"}"),
            std::string::npos);

  // Without a repair report, the fixes key must not appear at all.
  AnalysisResult plain = AnalyzeSystem(*inst.system);
  EXPECT_EQ(DiagnosticsToSarif(plain, *inst.system).find("\"fixes\""),
            std::string::npos);
}

// ---- Session line protocol ------------------------------------------------

TEST(WireFormat, EverySessionJsonLineIsVersionedAndValid) {
  // The line protocol has no enclosing document, so each line carries its
  // own schema_version — including error lines.
  std::istringstream in(
      "help\n"
      "load data/ring3.dlk\n"
      "check\n"
      "list\n"
      "stats\n"
      "remove NoSuchTxn\n");
  std::ostringstream out;
  SessionOptions options;
  options.json = true;
  options.load_root = DISLOCK_SOURCE_DIR;
  EXPECT_EQ(RunSession(in, out, options), 1);  // the bad remove
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.rfind(kVersionPrefix, 0), 0u) << line;
    ExpectValidJson(line, "session line");
  }
  EXPECT_EQ(count, 6);
}

// ---- Serve protocol keys --------------------------------------------------

// The serve wire surface is public protocol: every key and metric name is
// pinned so a client written today parses every future build.
TEST(WireKeys, ServeProtocolKeysArePinned) {
  EXPECT_STREQ(wire::kShards, "shards");
  EXPECT_STREQ(wire::kShard, "shard");
  EXPECT_STREQ(wire::kClientId, "client");
  EXPECT_STREQ(wire::kClients, "clients");
  EXPECT_STREQ(wire::kQueueDepth, "queue_depth");
  EXPECT_STREQ(wire::kQueuePeak, "queue_peak");
  EXPECT_STREQ(wire::kCrossShardPairs, "cross_shard_pairs");
  EXPECT_STREQ(wire::kLocalShardPairs, "local_shard_pairs");
  EXPECT_STREQ(wire::kCrossShardRatio, "cross_shard_ratio");
  EXPECT_STREQ(wire::kShardTransactions, "shard_transactions");
  EXPECT_STREQ(wire::kCommands, "commands");
  EXPECT_STREQ(wire::kResponses, "responses");
}

// The two-tier cache surface (docs/caching.md): the `cache` block keys of
// the session/serve stats response, the dotted metric names the store's
// owner exports, and the on-disk constants a foreign reader needs.
TEST(WireKeys, VerdictStoreKeysArePinned) {
  EXPECT_STREQ(wire::kCache, "cache");
  EXPECT_STREQ(wire::kDiskHits, "disk_hits");
  EXPECT_STREQ(wire::kDiskMisses, "disk_misses");
  EXPECT_STREQ(wire::kRecordsLoaded, "records_loaded");
  EXPECT_STREQ(wire::kRecordsFlushed, "records_flushed");
  EXPECT_STREQ(wire::kRecordsDropped, "records_dropped");
  EXPECT_STREQ(wire::kDiskRecords, "disk_records");
  EXPECT_STREQ(wire::kCacheFileGeneration, "cache_file_generation");
}

TEST(WireKeys, VerdictStoreMetricNamesArePinned) {
  EXPECT_STREQ(wire::kMetricCacheHits, "cache.hits");
  EXPECT_STREQ(wire::kMetricCacheMisses, "cache.misses");
  EXPECT_STREQ(wire::kMetricCacheSize, "cache.size");
  EXPECT_STREQ(wire::kMetricCacheHitRate, "cache.hit_rate");
  EXPECT_STREQ(wire::kMetricCacheDiskHits, "cache.disk_hits");
  EXPECT_STREQ(wire::kMetricCacheDiskMisses, "cache.disk_misses");
  EXPECT_STREQ(wire::kMetricCacheRecordsLoaded, "cache.records_loaded");
  EXPECT_STREQ(wire::kMetricCacheRecordsFlushed, "cache.records_flushed");
  EXPECT_STREQ(wire::kMetricCacheRecordsDropped, "cache.records_dropped");
  EXPECT_STREQ(wire::kMetricCacheDiskRecords, "cache.disk_records");
  EXPECT_STREQ(wire::kMetricCacheFileGeneration, "cache.file_generation");
}

TEST(WireKeys, VerdictStoreFileConstantsArePinned) {
  // Bumping the schema or generation constant invalidates every store on
  // every machine — it must be deliberate, so the values are pinned here.
  EXPECT_EQ(cache::kVerdictStoreSchemaVersion, 1u);
  EXPECT_EQ(cache::kVerdictStoreGeneration, 1u);
  EXPECT_STREQ(cache::kVerdictLogFileName, "verdicts.dlc");
  EXPECT_STREQ(cache::kVerdictIndexFileName, "verdicts.idx");
  EXPECT_STREQ(cache::kVerdictLockFileName, "verdicts.lock");
}

// The stats line's `cache` block appears exactly when a persistent store
// is attached, so store-less sessions keep their historical bytes.
TEST(WireFormat, SessionStatsCacheBlockRequiresAStore) {
  auto run_stats = [](cache::VerdictStore* store) {
    std::istringstream in(
        "load data/ring3.dlk\n"
        "check\n"
        "stats\n");
    std::ostringstream out;
    SessionOptions options;
    options.json = true;
    options.load_root = DISLOCK_SOURCE_DIR;
    options.config.store = store;
    EXPECT_EQ(RunSession(in, out, options), 0);
    return out.str();
  };

  const std::string without = run_stats(nullptr);
  EXPECT_EQ(without.find("\"cache\":"), std::string::npos) << without;

  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(testing::TempDir() + "/wire_format_cache_block"));
  const std::string with = run_stats(&store);
  for (const char* key :
       {"\"cache\": {", "\"disk_hits\":", "\"disk_misses\":",
        "\"records_loaded\":", "\"records_flushed\":",
        "\"records_dropped\":", "\"disk_records\":",
        "\"cache_file_generation\": 1"}) {
    EXPECT_NE(with.find(key), std::string::npos) << key << "\n" << with;
  }
  std::istringstream lines(with);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind(kVersionPrefix, 0), 0u) << line;
    ExpectValidJson(line, "session line with store");
  }
}

TEST(WireKeys, ServeMetricNamesArePinned) {
  EXPECT_STREQ(wire::kMetricServeCommands, "serve.commands");
  EXPECT_STREQ(wire::kMetricServeResponses, "serve.responses");
  EXPECT_STREQ(wire::kMetricServeClients, "serve.clients");
  EXPECT_STREQ(wire::kMetricServeErrors, "serve.errors");
  EXPECT_STREQ(wire::kMetricServeQueuePeak, "serve.queue_peak");
  EXPECT_STREQ(wire::kMetricServeQueueDepth, "serve.queue_depth");
  EXPECT_STREQ(wire::kMetricShardPrefix, "shard");
  EXPECT_STREQ(wire::kMetricShardCount, "sharded.shards");
  EXPECT_STREQ(wire::kMetricCrossShardPairs, "sharded.cross_pairs");
  EXPECT_STREQ(wire::kMetricLocalShardPairs, "sharded.local_pairs");
  EXPECT_STREQ(wire::kMetricCrossShardRatio, "sharded.cross_ratio");
  EXPECT_STREQ(wire::kMetricShardTransactions, "transactions");
  EXPECT_STREQ(wire::kMetricShardPairStore, "pair_store");
  EXPECT_STREQ(wire::kMetricShardCycleStore, "cycle_store");
}

// A sharded session's stats line uses the pinned keys (and stays one valid
// versioned JSON object per line like every other session response).
TEST(WireFormat, ShardedSessionStatsUsesPinnedKeys) {
  std::istringstream in(
      "load data/ring3.dlk\n"
      "check\n"
      "stats\n");
  std::ostringstream out;
  SessionOptions options;
  options.json = true;
  options.shards = 2;
  options.load_root = DISLOCK_SOURCE_DIR;
  EXPECT_EQ(RunSession(in, out, options), 0);
  std::string text = out.str();
  for (const char* key :
       {"\"shards\": 2", "\"shard_transactions\": [", "\"cross_shard_pairs\":",
        "\"local_shard_pairs\":", "\"cross_shard_ratio\":"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key << "\n" << text;
  }
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind(kVersionPrefix, 0), 0u) << line;
    ExpectValidJson(line, "sharded session line");
  }
}

// ---- Observability emitters -----------------------------------------------

TEST(WireFormat, TraceAndMetricsDocumentsLeadWithSchemaVersion) {
  obs::TraceRecorder recorder;
  { obs::TraceSpan span(&recorder, wire::kSpanPass); }
  std::string trace = recorder.ToChromeTraceJson();
  ExpectValidJson(trace, "trace");
  // First key of the document (after whitespace) is schema_version.
  EXPECT_EQ(trace.find("\"schema_version\": 1"), trace.find('"'));

  obs::MetricsRegistry registry;
  registry.AddCounter(wire::kMetricSessionCommands, 1);
  std::string metrics = registry.ToJson();
  ExpectValidJson(metrics, "metrics");
  EXPECT_EQ(metrics.find("\"schema_version\": 1"), metrics.find('"'));
}

}  // namespace
}  // namespace dislock
