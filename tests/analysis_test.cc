// Tests for the dislock-analyze subsystem: the rule catalog, the pass
// registry / PassManager, each built-in pass (DL001-DL103), the emitters,
// and the differential audit that cross-checks analyzer output against the
// decision procedures — including the property that every reported unsafe
// pair's certificate schedule is legal and non-serializable.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "analysis/emit.h"
#include "analysis/pass.h"
#include "analysis/passes.h"
#include "core/brute_force.h"
#include "core/certificate.h"
#include "core/paper.h"
#include "core/policy.h"
#include "core/safety.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "txn/schedule.h"
#include "txn/text_format.h"

namespace dislock {
namespace {

std::vector<const Diagnostic*> WithRule(const AnalysisResult& result,
                                        const std::string& rule) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.rule == rule) out.push_back(&d);
  }
  return out;
}

/// Three entities on three distinct sites; T1 visits x, y, z sequentially
/// (each section closed before the next opens) and T2 visits them in the
/// reverse order. D(T1, T2) is the DAG x -> y -> z (plus x -> z), not
/// strongly connected, and the classic "T2 runs inside T1's gap" schedule
/// is non-serializable — an unsafe pair spanning three sites.
TransactionSystem MakeThreeSiteUnsafeSystem(DistributedDatabase* db) {
  TransactionSystem system(db);
  // Entities live on distinct sites, so auto-chaining orders nothing
  // across sections; chain the sections explicitly.
  auto add_seq = [&](const char* name,
                     std::initializer_list<const char*> order) {
    TransactionBuilder b(db, name);
    StepId prev = kInvalidStep;
    for (const char* entity : order) {
      StepId lock = b.Lock(entity);
      b.Update(entity);
      StepId unlock = b.Unlock(entity);
      if (prev != kInvalidStep) b.Edge(prev, lock);
      prev = unlock;
    }
    system.Add(b.Build());
  };
  add_seq("T1", {"x", "y", "z"});
  add_seq("T2", {"z", "y", "x"});
  return system;
}

// ------------------------------------------------------------- catalog --

TEST(RuleCatalog, IdsAreUniqueSortedAndDocumented) {
  const std::vector<AnalysisRule>& rules = AnalysisRules();
  ASSERT_FALSE(rules.empty());
  std::set<std::string> ids;
  for (const AnalysisRule& rule : rules) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
    EXPECT_STRNE(rule.name, "");
    EXPECT_STRNE(rule.citation, "");
    EXPECT_STRNE(rule.summary, "");
  }
  EXPECT_TRUE(std::is_sorted(
      rules.begin(), rules.end(),
      [](const AnalysisRule& a, const AnalysisRule& b) {
        return std::string(a.id) < b.id;
      }));
}

TEST(RuleCatalog, FindKnownAndUnknown) {
  const AnalysisRule* rule = FindAnalysisRule("DL002");
  ASSERT_NE(rule, nullptr);
  EXPECT_STREQ(rule->name, "unsafe-pair");
  EXPECT_EQ(FindAnalysisRule("DL999"), nullptr);
  EXPECT_EQ(FindAnalysisRule(""), nullptr);
}

// ------------------------------------------------------------ registry --

TEST(PassRegistry, BuiltinsRegisteredInPipelineOrder) {
  std::vector<std::string> names = RegisteredAnalysisPasses();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "two-phase");
  EXPECT_EQ(names[1], "pair-safety");
  EXPECT_EQ(names[2], "system-safety");
  EXPECT_EQ(names[3], "lints");
}

TEST(PassRegistry, MakeByNameAndUnknown) {
  auto pass = MakeAnalysisPass("pair-safety");
  ASSERT_TRUE(pass.ok());
  EXPECT_STREQ((*pass)->name(), "pair-safety");
  EXPECT_FALSE(MakeAnalysisPass("no-such-pass").ok());
}

TEST(PassManager, SelectedPassesRunInGivenOrder) {
  PassManager manager;
  ASSERT_TRUE(manager.Add("lints").ok());
  ASSERT_TRUE(manager.Add("two-phase").ok());
  EXPECT_FALSE(manager.Add("bogus").ok());
  EXPECT_EQ(manager.PipelineNames(),
            (std::vector<std::string>{"lints", "two-phase"}));

  PaperInstance inst = MakeFig1Instance();
  AnalysisResult result = manager.Run(*inst.system);
  EXPECT_EQ(result.passes_run,
            (std::vector<std::string>{"lints", "two-phase"}));
  // No pair-safety pass in the pipeline => no safety verdict diagnostics.
  EXPECT_TRUE(WithRule(result, "DL002").empty());
  EXPECT_FALSE(WithRule(result, "DL001").empty());
}

// ----------------------------------------------------- two-phase (DL001) --

TEST(TwoPhasePass, FlagsSequentialSectionsOncePerTransaction) {
  PaperInstance inst = MakeFig1Instance();  // both txns unlock then re-lock
  AnalysisResult result = AnalyzeSystem(*inst.system);
  auto notes = WithRule(result, "DL001");
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_EQ(notes[0]->severity, DiagSeverity::kNote);
  EXPECT_EQ(notes[0]->location.txn, 0);
  EXPECT_EQ(notes[1]->location.txn, 1);
  EXPECT_NE(notes[0]->fix_hint, "");
}

TEST(TwoPhasePass, SilentOnTwoPhaseTransactions) {
  DistributedDatabase db(1);
  EntityId a = db.MustAddEntity("a", 0);
  EntityId b = db.MustAddEntity("b", 0);
  TransactionSystem system(&db);
  system.Add(MakeTwoPhaseTransaction(&db, "T1", {a, b}));
  system.Add(MakeTwoPhaseTransaction(&db, "T2", {a, b}));
  AnalysisResult result = AnalyzeSystem(system);
  EXPECT_TRUE(WithRule(result, "DL001").empty());
}

TEST(TwoPhasePass, OverlappingSectionsOfFig4AreTwoPhase) {
  PaperInstance inst = MakeFig4Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);
  EXPECT_TRUE(WithRule(result, "DL001").empty());
}

// --------------------------------------------- pair safety (DL002-DL005) --

TEST(PairSafetyPass, UnsafeTwoSitePairGetsDl002WithCertificate) {
  PaperInstance inst = MakeFig1Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);
  auto errors = WithRule(result, "DL002");
  ASSERT_EQ(errors.size(), 1u);
  const Diagnostic& d = *errors[0];
  EXPECT_EQ(d.severity, DiagSeverity::kError);
  EXPECT_EQ(d.location.txn, 0);
  EXPECT_EQ(d.location.other_txn, 1);
  ASSERT_TRUE(d.certificate.has_value());
  EXPECT_TRUE(VerifyUnsafetyCertificate(inst.system->txn(0),
                                        inst.system->txn(1), *d.certificate)
                  .ok());
  EXPECT_TRUE(result.HasErrors());
  EXPECT_TRUE(WithRule(result, "DL003").empty());
  EXPECT_TRUE(WithRule(result, "DL004").empty());
}

TEST(PairSafetyPass, StronglyConnectedFig4GetsDl003) {
  PaperInstance inst = MakeFig4Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);
  auto notes = WithRule(result, "DL003");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0]->severity, DiagSeverity::kNote);
  EXPECT_NE(notes[0]->message.find("Theorem 1"), std::string::npos)
      << notes[0]->message;
  // Fig. 4 is safe yet not deadlock-free, so the only error-grade finding
  // is the deadlock pass's DL201 — never a safety error.
  EXPECT_TRUE(WithRule(result, "DL002").empty());
  EXPECT_TRUE(WithRule(result, "DL004").empty());
  EXPECT_TRUE(WithRule(result, "DL006").empty());
}

TEST(PairSafetyPass, Fig5SafeViaDominatorClosureGetsDl003) {
  PaperInstance inst = MakeFig5Instance();
  AnalysisOptions options;
  options.max_extension_pairs = 0;  // the closure proof must suffice
  AnalysisResult result = AnalyzeSystem(*inst.system, options);
  auto notes = WithRule(result, "DL003");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0]->message.find("dominator-closure"), std::string::npos)
      << notes[0]->message;
  // The whole point of Fig. 5: it must NOT be reported unsafe. (It is not
  // deadlock-free, though, so DL201 may legitimately appear.)
  EXPECT_TRUE(WithRule(result, "DL002").empty());
  EXPECT_TRUE(WithRule(result, "DL004").empty());
  EXPECT_TRUE(WithRule(result, "DL006").empty());
}

TEST(PairSafetyPass, MultisiteUnsafePairGetsDl004WithCertificate) {
  DistributedDatabase db(3);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  db.MustAddEntity("z", 2);
  TransactionSystem system = MakeThreeSiteUnsafeSystem(&db);
  AnalysisResult result = AnalyzeSystem(system);
  auto errors = WithRule(result, "DL004");
  ASSERT_EQ(errors.size(), 1u) << DiagnosticsToText(result, system);
  ASSERT_TRUE(errors[0]->certificate.has_value());
  EXPECT_TRUE(VerifyUnsafetyCertificate(system.txn(0), system.txn(1),
                                        *errors[0]->certificate)
                  .ok());
  EXPECT_TRUE(WithRule(result, "DL002").empty());
}

TEST(PairSafetyPass, BudgetExhaustionGetsDl005Warning) {
  DistributedDatabase db(3);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  db.MustAddEntity("z", 2);
  TransactionSystem system = MakeThreeSiteUnsafeSystem(&db);
  AnalysisOptions options;
  options.max_dominators = 0;       // dominator loop can't finish
  options.max_sat_decisions = 0;    // no SAT-guided enumeration either
  options.max_extension_pairs = 0;  // no exhaustive fallback
  AnalysisResult result = AnalyzeSystem(system, options);
  auto warnings = WithRule(result, "DL005");
  ASSERT_EQ(warnings.size(), 1u) << DiagnosticsToText(result, system);
  EXPECT_EQ(warnings[0]->severity, DiagSeverity::kWarning);
  EXPECT_TRUE(WithRule(result, "DL002").empty());
  EXPECT_TRUE(WithRule(result, "DL004").empty());
}

// -------------------------------------------- system safety (DL006-DL008) --

TEST(SystemSafetyPass, ThreeTxnCycleGetsDl006) {
  DistributedDatabase db(1);
  db.MustAddEntity("a", 0);
  db.MustAddEntity("b", 0);
  db.MustAddEntity("c", 0);
  TransactionSystem system(&db);
  auto add_seq = [&](const char* name, const char* e1, const char* e2) {
    TransactionBuilder b(&db, name);
    b.LockUpdateUnlock(e1);
    b.LockUpdateUnlock(e2);
    system.Add(b.Build());
  };
  add_seq("T1", "a", "b");
  add_seq("T2", "b", "c");
  add_seq("T3", "c", "a");
  AnalysisResult result = AnalyzeSystem(system);
  auto errors = WithRule(result, "DL006");
  ASSERT_EQ(errors.size(), 1u) << DiagnosticsToText(result, system);
  EXPECT_EQ(errors[0]->severity, DiagSeverity::kError);
  EXPECT_NE(errors[0]->message.find("T1"), std::string::npos);
  // Pairwise all safe: no DL002/DL004 despite the system being unsafe.
  EXPECT_TRUE(WithRule(result, "DL002").empty());
}

TEST(SystemSafetyPass, SafeThreeTxnSystemGetsDl008) {
  DistributedDatabase db(1);
  EntityId a = db.MustAddEntity("a", 0);
  EntityId b = db.MustAddEntity("b", 0);
  EntityId c = db.MustAddEntity("c", 0);
  TransactionSystem system(&db);
  system.Add(MakeTwoPhaseTransaction(&db, "T1", {a, b}));
  system.Add(MakeTwoPhaseTransaction(&db, "T2", {b, c}));
  system.Add(MakeTwoPhaseTransaction(&db, "T3", {c, a}));
  AnalysisResult result = AnalyzeSystem(system);
  EXPECT_EQ(WithRule(result, "DL008").size(), 1u);
  EXPECT_TRUE(WithRule(result, "DL006").empty());
  // T1 < T2 < T3 chase each other's entities in a cycle, so a deadlock is
  // reachable (DL201) even though the system is safe; no safety errors.
  EXPECT_TRUE(WithRule(result, "DL002").empty());
  EXPECT_TRUE(WithRule(result, "DL004").empty());
}

TEST(SystemSafetyPass, SilentOnPairs) {
  PaperInstance inst = MakeFig1Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);
  EXPECT_TRUE(WithRule(result, "DL006").empty());
  EXPECT_TRUE(WithRule(result, "DL007").empty());
  EXPECT_TRUE(WithRule(result, "DL008").empty());
}

// ---------------------------------------------------- lints (DL101-DL103) --

TEST(LintPass, RedundantLockOnPrivateUnreadEntity) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  EntityId scratch = db.MustAddEntity("scratch", 0);
  TransactionSystem system(&db);
  {
    TransactionBuilder b(&db, "T1");
    b.LockUpdateUnlock("x");
    b.Lock("scratch");  // never updated, never touched by T2
    b.Unlock("scratch");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(&db, "T2");
    b.LockUpdateUnlock("x");
    system.Add(b.Build());
  }
  AnalysisResult result = AnalyzeSystem(system);
  auto warnings = WithRule(result, "DL101");
  ASSERT_EQ(warnings.size(), 1u) << DiagnosticsToText(result, system);
  EXPECT_EQ(warnings[0]->location.txn, 0);
  EXPECT_EQ(warnings[0]->location.entity, scratch);
}

TEST(LintPass, NoRedundantLockWhenEntityIsContended) {
  // Same shape, but T2 also locks (and updates) "scratch": removing T1's
  // lock would change D(T1, T2), so DL101 must stay silent.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("scratch", 0);
  TransactionSystem system(&db);
  {
    TransactionBuilder b(&db, "T1");
    b.LockUpdateUnlock("x");
    b.Lock("scratch");
    b.Unlock("scratch");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(&db, "T2");
    b.LockUpdateUnlock("x");
    b.LockUpdateUnlock("scratch");
    system.Add(b.Build());
  }
  AnalysisResult result = AnalyzeSystem(system);
  EXPECT_TRUE(WithRule(result, "DL101").empty())
      << DiagnosticsToText(result, system);
}

TEST(LintPass, UpdateAfterUnlockGetsDl102) {
  // ParseSystemText validates this away, so the lint targets
  // programmatically built transactions: lock, unlock, then update (the
  // same-site auto-chain orders the three steps).
  DistributedDatabase db(1);
  EntityId x = db.MustAddEntity("x", 0);
  TransactionSystem system(&db);
  TransactionBuilder b(&db, "T1");
  b.Lock("x");
  b.Unlock("x");
  b.Add(StepKind::kUpdate, x);
  system.Add(b.Build());
  AnalysisResult result = AnalyzeSystem(system);
  auto warnings = WithRule(result, "DL102");
  ASSERT_EQ(warnings.size(), 1u) << DiagnosticsToText(result, system);
  EXPECT_EQ(warnings[0]->severity, DiagSeverity::kWarning);
  EXPECT_EQ(warnings[0]->location.entity, x);
}

TEST(LintPass, InconsistentAcquisitionOrderGetsDl103) {
  PaperInstance inst = MakeFig1Instance();  // T2 locks in reverse site order
  AnalysisResult result = AnalyzeSystem(*inst.system);
  auto notes = WithRule(result, "DL103");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0]->severity, DiagSeverity::kNote);
  EXPECT_EQ(notes[0]->location.txn, 1);
}

TEST(LintPass, CanonicalOrderIsLintClean) {
  DistributedDatabase db(2);
  EntityId a = db.MustAddEntity("a", 0);
  EntityId b = db.MustAddEntity("b", 1);
  TransactionSystem system(&db);
  system.Add(MakeTwoPhaseTransaction(&db, "T1", {a, b}));
  system.Add(MakeTwoPhaseTransaction(&db, "T2", {a, b}));
  AnalysisResult result = AnalyzeSystem(system);
  EXPECT_TRUE(WithRule(result, "DL101").empty());
  EXPECT_TRUE(WithRule(result, "DL102").empty());
  EXPECT_TRUE(WithRule(result, "DL103").empty());
}

// ------------------------------------------------------------- emitters --

TEST(Emit, TextMentionsEveryDiagnosticAndSummarizes) {
  PaperInstance inst = MakeFig1Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);
  std::string text = DiagnosticsToText(result, *inst.system);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_NE(text.find(d.rule), std::string::npos) << text;
  }
  EXPECT_NE(text.find("1 error(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("certificate:"), std::string::npos) << text;
}

TEST(Emit, JsonCarriesRulesAndSummaryCounts) {
  PaperInstance inst = MakeFig1Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);
  std::string json = DiagnosticsToJson(result, *inst.system);
  EXPECT_NE(json.find("\"passes\""), std::string::npos);
  EXPECT_NE(json.find("\"DL002\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"certificate\""), std::string::npos);
}

TEST(Emit, SarifNamesToolRulesAndResults) {
  PaperInstance inst = MakeFig1Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);
  std::string sarif = DiagnosticsToSarif(result, *inst.system);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("dislock-analyze"), std::string::npos);
  // The full catalog ships as driver metadata even for unfired rules.
  for (const AnalysisRule& rule : AnalysisRules()) {
    EXPECT_NE(sarif.find(rule.id), std::string::npos) << rule.id;
  }
}

// ------------------------------------------------------ audit / property --

TEST(Audit, AcceptsFreshAnalyses) {
  PaperInstance fig1 = MakeFig1Instance();
  AnalysisResult r1 = AnalyzeSystem(*fig1.system);
  EXPECT_TRUE(AuditAnalysis(*fig1.system, r1).ok());

  PaperInstance fig5 = MakeFig5Instance();
  AnalysisResult r5 = AnalyzeSystem(*fig5.system);
  EXPECT_TRUE(AuditAnalysis(*fig5.system, r5).ok());
}

TEST(Audit, RejectsTamperedResults) {
  PaperInstance inst = MakeFig1Instance();
  AnalysisResult result = AnalyzeSystem(*inst.system);

  AnalysisResult dropped = result;  // silence the unsafe verdict
  dropped.diagnostics.erase(
      std::remove_if(dropped.diagnostics.begin(), dropped.diagnostics.end(),
                     [](const Diagnostic& d) { return d.rule == "DL002"; }),
      dropped.diagnostics.end());
  EXPECT_FALSE(AuditAnalysis(*inst.system, dropped).ok());

  AnalysisResult tampered = result;  // corrupt the certificate schedule
  for (Diagnostic& d : tampered.diagnostics) {
    if (d.certificate.has_value() && d.certificate->schedule.size() > 1) {
      std::vector<SysStep> events = d.certificate->schedule.events();
      std::swap(events[0], events[1]);
      d.certificate->schedule = Schedule(std::move(events));
    }
  }
  EXPECT_FALSE(AuditAnalysis(*inst.system, tampered).ok());
}

TEST(Audit, PropertyEveryReportedCertificateReplaysOnRandomWorkloads) {
  // The satellite property test: for random two-transaction workloads,
  // every DL002/DL004 the analyzer reports carries a certificate whose
  // schedule is LEGAL and NON-SERIALIZABLE for that pair, and the analysis
  // as a whole survives the differential audit.
  Rng rng(0xA11D17);
  int unsafe_seen = 0;
  for (int trial = 0; trial < 150; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + static_cast<int>(rng.Uniform(4));
    params.num_entities = 2 + static_cast<int>(rng.Uniform(3));
    params.num_transactions = 2;
    params.lock_probability = 0.6 + 0.4 * rng.UniformDouble();
    params.update_probability = 1.0;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(3));
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok());

    AnalysisResult result = AnalyzeSystem(*w.system);
    ASSERT_TRUE(AuditAnalysis(*w.system, result).ok())
        << AuditAnalysis(*w.system, result).ToString() << "\n"
        << SystemToText(*w.system);

    for (const Diagnostic& d : result.diagnostics) {
      if (d.rule != "DL002" && d.rule != "DL004") continue;
      ++unsafe_seen;
      ASSERT_TRUE(d.certificate.has_value());
      EXPECT_TRUE(CheckScheduleLegal(*w.system, d.certificate->schedule).ok())
          << SystemToText(*w.system);
      EXPECT_FALSE(IsSerializable(*w.system, d.certificate->schedule))
          << SystemToText(*w.system);
    }
  }
  EXPECT_GT(unsafe_seen, 10);  // the generator must exercise the unsafe path
}

}  // namespace
}  // namespace dislock
