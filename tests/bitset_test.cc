// Unit tests for DynamicBitset and the bits:: word-level primitives that
// back the flat kernels (graph/csr.h). Every optimized operation is checked
// against a naive bit-by-bit reference on randomized inputs.

#include "util/bitset.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace dislock {
namespace {

// Naive reference: a bitset as a vector<bool>.
std::vector<bool> RandomBits(size_t size, double density, Rng* rng) {
  std::vector<bool> v(size);
  for (size_t i = 0; i < size; ++i) {
    v[i] = rng->Uniform(1000) < static_cast<uint64_t>(density * 1000);
  }
  return v;
}

DynamicBitset FromBools(const std::vector<bool>& v) {
  DynamicBitset s(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i]) s.Set(i);
  }
  return s;
}

TEST(DynamicBitset, OrWithCountsNewlySetBits) {
  Rng rng(1);
  // Sizes straddling word boundaries: 0, 1, 63..65, 127..129, odd.
  for (size_t size : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                      size_t{127}, size_t{128}, size_t{129}, size_t{1000}}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> a = RandomBits(size, 0.3, &rng);
      std::vector<bool> b = RandomBits(size, 0.3, &rng);
      DynamicBitset sa = FromBools(a);
      DynamicBitset sb = FromBools(b);
      size_t expected_new = 0;
      for (size_t i = 0; i < size; ++i) {
        if (!a[i] && b[i]) ++expected_new;
      }
      EXPECT_EQ(sa.OrWith(sb), expected_new) << "size=" << size;
      for (size_t i = 0; i < size; ++i) {
        EXPECT_EQ(sa.Test(i), a[i] || b[i]) << "size=" << size << " i=" << i;
      }
      // A second OR with the same operand is a fixpoint: zero new bits.
      EXPECT_EQ(sa.OrWith(sb), 0u);
    }
  }
}

TEST(DynamicBitset, FindFirstFindNextMatchNaiveScan) {
  Rng rng(2);
  for (size_t size : {size_t{1}, size_t{64}, size_t{65}, size_t{200},
                      size_t{513}}) {
    for (double density : {0.0, 0.01, 0.5, 1.0}) {
      std::vector<bool> a = RandomBits(size, density, &rng);
      DynamicBitset s = FromBools(a);
      // Collect via the word-scan iteration idiom.
      std::vector<size_t> fast;
      for (size_t b = s.FindFirst(); b != DynamicBitset::npos;
           b = s.FindNext(b)) {
        fast.push_back(b);
      }
      std::vector<size_t> naive;
      for (size_t i = 0; i < size; ++i) {
        if (a[i]) naive.push_back(i);
      }
      EXPECT_EQ(fast, naive) << "size=" << size << " density=" << density;
    }
  }
}

TEST(DynamicBitset, FindFirstOnEmptyIsNpos) {
  DynamicBitset s(130);
  EXPECT_EQ(s.FindFirst(), DynamicBitset::npos);
  s.Set(129);  // last bit, last word
  EXPECT_EQ(s.FindFirst(), 129u);
  EXPECT_EQ(s.FindNext(129), DynamicBitset::npos);
  s.Reset(129);
  s.Set(0);
  EXPECT_EQ(s.FindFirst(), 0u);
  EXPECT_EQ(s.FindNext(0), DynamicBitset::npos);
}

TEST(DynamicBitset, FindNextSkipsZeroWords) {
  DynamicBitset s(64 * 5);
  s.Set(3);
  s.Set(64 * 4 + 17);  // four zero words apart
  EXPECT_EQ(s.FindNext(3), static_cast<size_t>(64 * 4 + 17));
}

TEST(DynamicBitset, CountAndIntersectMatchesNaive) {
  Rng rng(3);
  for (size_t size : {size_t{1}, size_t{64}, size_t{100}, size_t{257}}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> a = RandomBits(size, 0.4, &rng);
      std::vector<bool> b = RandomBits(size, 0.4, &rng);
      size_t expected = 0;
      for (size_t i = 0; i < size; ++i) {
        if (a[i] && b[i]) ++expected;
      }
      EXPECT_EQ(FromBools(a).CountAndIntersect(FromBools(b)), expected)
          << "size=" << size;
    }
  }
}

TEST(BitsPrimitives, SetTestOrOnRawRows) {
  Rng rng(4);
  const size_t size = 200;
  const size_t words = bits::WordsForBits(size);
  ASSERT_EQ(words, 4u);
  std::vector<uint64_t> row(words, 0), other(words, 0);
  std::vector<bool> a = RandomBits(size, 0.3, &rng);
  std::vector<bool> b = RandomBits(size, 0.3, &rng);
  for (size_t i = 0; i < size; ++i) {
    if (a[i]) bits::SetBit(row.data(), i);
    if (b[i]) bits::SetBit(other.data(), i);
  }
  size_t expected_new = 0;
  for (size_t i = 0; i < size; ++i) {
    if (!a[i] && b[i]) ++expected_new;
  }
  EXPECT_EQ(bits::OrWords(row.data(), other.data(), words), expected_new);
  for (size_t i = 0; i < size; ++i) {
    EXPECT_EQ(bits::TestBit(row.data(), i), a[i] || b[i]) << i;
  }
  EXPECT_EQ(bits::OrWords(row.data(), other.data(), words), 0u);
}

TEST(BitsPrimitives, OrWordsIntoMatchesOrWordsResult) {
  Rng rng(6);
  const size_t size = 200;
  const size_t words = bits::WordsForBits(size);
  std::vector<uint64_t> counted(words, 0), plain(words, 0), other(words, 0);
  std::vector<bool> a = RandomBits(size, 0.3, &rng);
  std::vector<bool> b = RandomBits(size, 0.3, &rng);
  for (size_t i = 0; i < size; ++i) {
    if (a[i]) {
      bits::SetBit(counted.data(), i);
      bits::SetBit(plain.data(), i);
    }
    if (b[i]) bits::SetBit(other.data(), i);
  }
  bits::OrWords(counted.data(), other.data(), words);
  bits::OrWordsInto(plain.data(), other.data(), words);
  EXPECT_EQ(plain, counted);
}

TEST(BitsPrimitives, FindNextBitRespectsSizeInsideLastWord) {
  // A bit beyond `size` but inside the last word must not be reported.
  const size_t size = 70;
  std::vector<uint64_t> row(bits::WordsForBits(size), 0);
  row[1] |= uint64_t{1} << 10;  // bit 74 >= size
  EXPECT_EQ(bits::FindNextBit(row.data(), size, 0), bits::kNpos);
  EXPECT_EQ(bits::FindNextBit(row.data(), size, 100), bits::kNpos);
  bits::SetBit(row.data(), 69);
  EXPECT_EQ(bits::FindNextBit(row.data(), size, 0), 69u);
  EXPECT_EQ(bits::FindNextBit(row.data(), size, 69), 69u);
  EXPECT_EQ(bits::FindNextBit(row.data(), size, 70), bits::kNpos);
}

TEST(BitsPrimitives, CountAndWordsMatchesNaive) {
  Rng rng(5);
  const size_t size = 321;
  const size_t words = bits::WordsForBits(size);
  std::vector<uint64_t> ra(words, 0), rb(words, 0);
  std::vector<bool> a = RandomBits(size, 0.5, &rng);
  std::vector<bool> b = RandomBits(size, 0.5, &rng);
  size_t expected = 0;
  for (size_t i = 0; i < size; ++i) {
    if (a[i]) bits::SetBit(ra.data(), i);
    if (b[i]) bits::SetBit(rb.data(), i);
    if (a[i] && b[i]) ++expected;
  }
  EXPECT_EQ(bits::CountAndWords(ra.data(), rb.data(), words), expected);
}

}  // namespace
}  // namespace dislock
