// The observability invariant, as a property test: enabling tracing and
// metrics NEVER changes a report byte, serially or with a thread pool.
// Every comparison renders the full report to a string so all fields
// participate, mirroring tests/parallel_safety_test.cc; the instrumented
// runs additionally assert that spans/metrics actually flowed, so the
// equality is not vacuous.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/emit.h"
#include "core/incremental/session.h"
#include "core/multi.h"
#include "core/paper.h"
#include "core/report.h"
#include "core/safety.h"
#include "core/wire_keys.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/workload.h"
#include "txn/text_format.h"
#include "util/random.h"

namespace dislock {
namespace {

const int kThreadCounts[] = {1, 4};

Workload RandomWorkload(Rng* rng, int num_transactions) {
  WorkloadParams params;
  params.num_sites = 1 + static_cast<int>(rng->Uniform(3));
  params.num_entities = 2 + static_cast<int>(rng->Uniform(3));
  params.num_transactions = num_transactions;
  params.lock_probability = 0.5 + 0.5 * rng->UniformDouble();
  params.update_probability = 1.0;
  params.shared_probability = rng->Bernoulli(0.3) ? 0.4 : 0.0;
  params.cross_site_arcs = static_cast<int>(rng->Uniform(3));
  Workload w = MakeRandomWorkload(params, rng);
  EXPECT_TRUE(w.system->Validate().ok());
  return w;
}

TEST(ObservabilityEquivalence, PairReportsByteIdentical) {
  Rng rng(0x0B5E);
  for (int trial = 0; trial < 25; ++trial) {
    Workload w = RandomWorkload(&rng, 2);
    SafetyOptions plain;
    plain.max_extension_pairs = 1 << 14;
    std::string expected = PairReportToJson(
        AnalyzePairSafety(w.system->txn(0), w.system->txn(1), plain),
        w.system->db());
    for (int threads : kThreadCounts) {
      obs::TraceRecorder recorder;
      obs::MetricsRegistry registry;
      SafetyOptions instrumented = plain;
      instrumented.num_threads = threads;
      instrumented.trace = &recorder;
      instrumented.stats = &registry;
      std::string actual = PairReportToJson(
          AnalyzePairSafety(w.system->txn(0), w.system->txn(1),
                            instrumented),
          w.system->db());
      EXPECT_EQ(expected, actual)
          << "trial " << trial << ", " << threads << " threads\n"
          << SystemToText(*w.system);
      // Every decided pair ran at least one pipeline stage under a span.
      EXPECT_GT(recorder.size(), 0u) << "trial " << trial;
    }
  }
}

TEST(ObservabilityEquivalence, MultiReportsByteIdentical) {
  Rng rng(0x0B5F);
  for (int trial = 0; trial < 15; ++trial) {
    Workload w = RandomWorkload(&rng, 3 + static_cast<int>(rng.Uniform(3)));
    MultiSafetyOptions plain;
    plain.max_cycles = 1 << 10;
    plain.max_extension_pairs = 1 << 14;
    std::string expected = MultiReportToJson(
        AnalyzeMultiSafety(*w.system, plain), *w.system);
    for (int threads : kThreadCounts) {
      obs::TraceRecorder recorder;
      obs::MetricsRegistry registry;
      MultiSafetyOptions instrumented = plain;
      instrumented.num_threads = threads;
      instrumented.trace = &recorder;
      instrumented.stats = &registry;
      std::string actual = MultiReportToJson(
          AnalyzeMultiSafety(*w.system, instrumented), *w.system);
      EXPECT_EQ(expected, actual)
          << "trial " << trial << ", " << threads << " threads\n"
          << SystemToText(*w.system);
      EXPECT_GT(recorder.size(), 0u) << "trial " << trial;
    }
  }
}

TEST(ObservabilityEquivalence, AnalyzerOutputByteIdentical) {
  // The full pass-manager analyzer: text AND json renderings, with the
  // engine cache on (so cache stats flow into the sink too).
  Rng rng(0x0B60);
  for (int trial = 0; trial < 10; ++trial) {
    Workload w = RandomWorkload(&rng, 2 + static_cast<int>(rng.Uniform(3)));
    AnalysisOptions plain;
    plain.max_extension_pairs = 1 << 14;
    plain.enable_cache = true;
    AnalysisResult baseline = AnalyzeSystem(*w.system, plain);
    std::string expected_text = DiagnosticsToText(baseline, *w.system);
    std::string expected_json = DiagnosticsToJson(baseline, *w.system);
    for (int threads : kThreadCounts) {
      obs::TraceRecorder recorder;
      obs::MetricsRegistry registry;
      AnalysisOptions instrumented = plain;
      instrumented.num_threads = threads;
      instrumented.trace = &recorder;
      instrumented.stats = &registry;
      AnalysisResult result = AnalyzeSystem(*w.system, instrumented);
      EXPECT_EQ(expected_text, DiagnosticsToText(result, *w.system))
          << "trial " << trial << ", " << threads << " threads\n"
          << SystemToText(*w.system);
      EXPECT_EQ(expected_json, DiagnosticsToJson(result, *w.system))
          << "trial " << trial << ", " << threads << " threads";
      // PassManager::Run is the report owner: it must have exported the
      // aggregate counters and (cache on) the cache stats exactly once.
      EXPECT_EQ(registry.CounterValue("analysis.passes"),
                static_cast<int64_t>(result.passes_run.size()));
      EXPECT_EQ(registry.Gauges().count(wire::kMetricCacheSize), 1u);
      EXPECT_GT(recorder.size(), 0u) << "trial " << trial;
    }
  }
}

TEST(ObservabilityEquivalence, SessionOutputByteIdentical) {
  std::ifstream script(std::string(DISLOCK_SOURCE_DIR) +
                       "/data/session_demo.dls");
  ASSERT_TRUE(script.good());
  std::ostringstream script_text;
  script_text << script.rdbuf();

  for (bool json : {false, true}) {
    std::string expected;
    {
      std::istringstream in(script_text.str());
      std::ostringstream out;
      SessionOptions options;
      options.json = json;
      options.load_root = DISLOCK_SOURCE_DIR;
      options.analyze = MakeSessionAnalyzer();
      EXPECT_EQ(RunSession(in, out, options), 0);
      expected = out.str();
    }
    for (int threads : kThreadCounts) {
      obs::TraceRecorder recorder;
      obs::MetricsRegistry registry;
      std::istringstream in(script_text.str());
      std::ostringstream out;
      SessionOptions options;
      options.json = json;
      options.load_root = DISLOCK_SOURCE_DIR;
      options.analyze = MakeSessionAnalyzer();
      options.config.num_threads = threads;
      options.config.trace = &recorder;
      options.config.stats = &registry;
      EXPECT_EQ(RunSession(in, out, options), 0);
      EXPECT_EQ(expected, out.str())
          << "json=" << json << ", " << threads << " threads";
      // Every command ran under a "session.command" span and the session
      // poured its counters at the end of the run.
      EXPECT_GT(recorder.size(), 0u);
      EXPECT_GT(registry.CounterValue(wire::kMetricSessionCommands), 0);
      EXPECT_GT(registry.CounterValue(wire::kMetricSessionChecks), 0);
      EXPECT_EQ(registry.CounterValue(wire::kMetricSessionErrors), 0);
    }
  }
}

}  // namespace
}  // namespace dislock
