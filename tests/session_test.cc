// Golden test for `dislock session`: replays data/session_demo.dls through
// RunSession and compares both renderings byte-for-byte against the
// committed goldens (data/session_demo.golden.{txt,jsonl}), serially and at
// 4 threads. Also exercises the error paths: a failed command reports,
// counts toward the return value, and leaves the catalog untouched.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "core/incremental/session.h"

namespace dislock {
namespace {

std::string RepoPath(const std::string& relative_path) {
  return std::string(DISLOCK_SOURCE_DIR) + "/" + relative_path;
}

std::string ReadFileOrDie(const std::string& relative_path) {
  std::ifstream in(RepoPath(relative_path));
  EXPECT_TRUE(in.good()) << "cannot open " << relative_path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

// Runs the demo script and returns the full output.
std::string RunDemo(bool json, int num_threads) {
  std::istringstream in(ReadFileOrDie("data/session_demo.dls"));
  std::ostringstream out;
  SessionOptions options;
  options.json = json;
  options.load_root = DISLOCK_SOURCE_DIR;
  options.config.num_threads = num_threads;
  options.analyze = MakeSessionAnalyzer();
  EXPECT_EQ(RunSession(in, out, options), 0) << "demo script had errors";
  return out.str();
}

TEST(Session, DemoScriptMatchesTextGolden) {
  EXPECT_EQ(RunDemo(/*json=*/false, /*num_threads=*/1),
            ReadFileOrDie("data/session_demo.golden.txt"));
}

TEST(Session, DemoScriptMatchesJsonGolden) {
  EXPECT_EQ(RunDemo(/*json=*/true, /*num_threads=*/1),
            ReadFileOrDie("data/session_demo.golden.jsonl"));
}

TEST(Session, OutputIsThreadCountInvariant) {
  EXPECT_EQ(RunDemo(/*json=*/false, /*num_threads=*/4),
            ReadFileOrDie("data/session_demo.golden.txt"));
  EXPECT_EQ(RunDemo(/*json=*/true, /*num_threads=*/4),
            ReadFileOrDie("data/session_demo.golden.jsonl"));
}

TEST(Session, FailedCommandsReportAndContinue) {
  std::istringstream in(
      "check\n"               // error: no system loaded
      "frobnicate\n"          // error: unknown command
      "load data/ring3.dlk\n"
      "remove NotThere\n"     // error: no such transaction
      "add\n"                 // error: duplicate name
      "txn MoveAB\n  lock a\n  unlock a\nend\n"
      "list\n"                // catalog unchanged by the failures
      "quit\n");
  std::ostringstream out;
  SessionOptions options;
  options.load_root = DISLOCK_SOURCE_DIR;
  EXPECT_EQ(RunSession(in, out, options), 4);
  std::string text = out.str();
  EXPECT_NE(text.find("error: no system loaded"), std::string::npos) << text;
  EXPECT_NE(text.find("unknown command"), std::string::npos) << text;
  EXPECT_NE(text.find("duplicate transaction name"), std::string::npos)
      << text;
  // Still exactly the three loaded transactions, original ids.
  EXPECT_NE(text.find("[0] MoveAB\n[1] MoveBC\n[2] MoveCA\n"),
            std::string::npos)
      << text;
}

TEST(Session, JsonErrorsCarryOkFalse) {
  std::istringstream in("check\nbogus\n");
  std::ostringstream out;
  SessionOptions options;
  options.json = true;
  EXPECT_EQ(RunSession(in, out, options), 2);
  std::string text = out.str();
  EXPECT_NE(text.find("\"ok\": false"), std::string::npos) << text;
  EXPECT_NE(text.find("no system loaded"), std::string::npos) << text;
}

TEST(Session, AnalyzeWithoutHookReportsCleanError) {
  // A session built without the analysis layer (options.analyze unset)
  // must fail the command, not crash, and keep running.
  std::istringstream in("load data/ring3.dlk\nanalyze\nlist\n");
  std::ostringstream out;
  SessionOptions options;
  options.load_root = DISLOCK_SOURCE_DIR;
  EXPECT_EQ(RunSession(in, out, options), 1);
  std::string text = out.str();
  EXPECT_NE(text.find("error: analyze is not available"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[0] MoveAB"), std::string::npos) << text;
}

TEST(Session, EofEndsSessionCleanly) {
  std::istringstream in("# just a comment\n\n");
  std::ostringstream out;
  EXPECT_EQ(RunSession(in, out, SessionOptions()), 0);
  EXPECT_EQ(out.str(), "");
}

}  // namespace
}  // namespace dislock
