// Unit tests for the conflict graph (Definition 1), the closure operation
// (Lemmas 2-3, Definition 3), and certificate construction/verification
// (Theorem 2, Corollary 2).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/certificate.h"
#include "core/closure.h"
#include "core/conflict_graph.h"
#include "core/paper.h"
#include "graph/dominator.h"
#include "graph/scc.h"
#include "txn/builder.h"
#include "txn/linear_extension.h"
#include "util/string_util.h"

namespace dislock {
namespace {

TEST(ConflictGraph, Fig1Arcs) {
  PaperInstance inst = MakeFig1Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  ASSERT_EQ(d.graph.NumNodes(), 2);
  EntityId x = inst.db->Find("x").value();
  EntityId w = inst.db->Find("w").value();
  // T1 does x then w; T2 does w then x: arc (x, w) only.
  EXPECT_TRUE(d.graph.HasArc(d.node_of.at(x), d.node_of.at(w)));
  EXPECT_FALSE(d.graph.HasArc(d.node_of.at(w), d.node_of.at(x)));
}

TEST(ConflictGraph, OnlyCommonlyLockedEntitiesAppear) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("only1", 0);
  db.MustAddEntity("only2", 0);
  TransactionBuilder b1(&db, "T1");
  b1.Lock("x");
  b1.Unlock("x");
  b1.Lock("only1");
  b1.Unlock("only1");
  TransactionBuilder b2(&db, "T2");
  b2.Lock("only2");
  b2.Unlock("only2");
  b2.Lock("x");
  b2.Unlock("x");
  ConflictGraph d = BuildConflictGraph(b1.Build(), b2.Build());
  EXPECT_EQ(d.graph.NumNodes(), 1);
  EXPECT_EQ(d.entities[0], db.Find("x").value());
}

TEST(ConflictGraph, StronglyTwoPhasePairIsComplete) {
  DistributedDatabase db(2);
  std::vector<EntityId> all;
  for (int i = 0; i < 4; ++i) {
    all.push_back(db.MustAddEntity(StrCat("e", i),
                                   i % 2));
  }
  ConflictGraph d;
  {
    TransactionSystem system(&db);
    // Built in policy_test too; inline here via builder with lock point.
    for (const char* name : {"T1", "T2"}) {
      TransactionBuilder b(&db, name);
      std::vector<StepId> locks, unlocks;
      for (EntityId e : all) locks.push_back(b.Add(StepKind::kLock, e));
      for (EntityId e : all) unlocks.push_back(b.Add(StepKind::kUnlock, e));
      for (StepId l : locks) {
        for (StepId u : unlocks) b.Edge(l, u);
      }
      system.Add(b.Build());
    }
    d = BuildConflictGraph(system.txn(0), system.txn(1));
  }
  EXPECT_EQ(d.graph.NumNodes(), 4);
  EXPECT_EQ(d.graph.NumArcs(), 12);  // complete digraph
  EXPECT_TRUE(IsStronglyConnected(d.graph));
}

TEST(ConflictGraph, ToStringNamesEntities) {
  PaperInstance inst = MakeFig1Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  std::string str = ConflictGraphToString(d, *inst.db);
  EXPECT_NE(str.find("x->w"), std::string::npos);
}

// ------------------------------------------------------------------ Closure

TEST(Closure, TotalOrdersAreClosedWrtAnyDominator) {
  // The paper: "two total orders are closed with respect to any dominator
  // of D(t1,t2)". Check on the Fig. 2 pair.
  PaperInstance inst = MakeFig2Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  for (const auto& dom : AllDominators(d.graph, 64)) {
    EXPECT_TRUE(IsClosedWithRespectTo(inst.system->txn(0),
                                      inst.system->txn(1),
                                      d.EntitiesOf(dom)));
  }
}

TEST(Closure, RejectsNonDominator) {
  PaperInstance inst = MakeFig1Instance();
  EntityId w = inst.db->Find("w").value();
  // {w} has the incoming arc (x, w): not a dominator.
  auto result = CloseWithRespectTo(inst.system->txn(0), inst.system->txn(1),
                                   {w});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Closure, RejectsNonCommonEntity) {
  PaperInstance inst = MakeFig1Instance();
  EntityId y = inst.db->Find("y").value();  // locked by neither
  auto result = CloseWithRespectTo(inst.system->txn(0), inst.system->txn(1),
                                   {y});
  EXPECT_FALSE(result.ok());
}

TEST(Closure, ConvergesOnTwoSitePairs) {
  PaperInstance inst = MakeFig3Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  auto dom = FindDominator(d.graph);
  ASSERT_TRUE(dom.ok());
  auto closed = CloseWithRespectTo(inst.system->txn(0), inst.system->txn(1),
                                   d.EntitiesOf(dom.value()));
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_TRUE(IsClosedWithRespectTo(closed->t1, closed->t2,
                                    d.EntitiesOf(dom.value())));
}

TEST(Closure, AddedPrecedencesExtendTheOriginals) {
  PaperInstance inst = MakeFig3Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  auto dom = FindDominator(d.graph);
  ASSERT_TRUE(dom.ok());
  auto closed = CloseWithRespectTo(inst.system->txn(0), inst.system->txn(1),
                                   d.EntitiesOf(dom.value()));
  ASSERT_TRUE(closed.ok());
  // Every original precedence survives.
  const Transaction& orig = inst.system->txn(0);
  for (StepId a = 0; a < orig.NumSteps(); ++a) {
    for (StepId b = 0; b < orig.NumSteps(); ++b) {
      if (a != b && orig.Precedes(a, b)) {
        EXPECT_TRUE(closed->t1.Precedes(a, b));
      }
    }
  }
}

// -------------------------------------------------------------- Certificate

TEST(Certificate, BuildsVerifiedWitnessForFig1) {
  PaperInstance inst = MakeFig1Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  auto dom = FindDominator(d.graph);
  ASSERT_TRUE(dom.ok());
  auto cert = BuildUnsafetyCertificate(inst.system->txn(0),
                                       inst.system->txn(1),
                                       d.EntitiesOf(dom.value()));
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  EXPECT_TRUE(VerifyUnsafetyCertificate(inst.system->txn(0),
                                        inst.system->txn(1), *cert)
                  .ok());
  // The certificate schedule is legal for the ORIGINAL partial orders too.
  TransactionSystem originals(inst.db.get());
  originals.Add(inst.system->txn(0));
  originals.Add(inst.system->txn(1));
  EXPECT_TRUE(CheckScheduleLegal(originals, cert->schedule).ok());
  EXPECT_FALSE(IsSerializable(originals, cert->schedule));
}

TEST(Certificate, VerifyRejectsTamperedSchedule) {
  PaperInstance inst = MakeFig1Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  auto dom = FindDominator(d.graph);
  ASSERT_TRUE(dom.ok());
  auto cert = BuildUnsafetyCertificate(inst.system->txn(0),
                                       inst.system->txn(1),
                                       d.EntitiesOf(dom.value()));
  ASSERT_TRUE(cert.ok());
  // Replace the schedule with a serial one: verification must fail.
  UnsafetyCertificate tampered = *cert;
  TransactionSystem pair(inst.db.get());
  pair.Add(tampered.t1);
  pair.Add(tampered.t2);
  tampered.schedule = SerialSchedule(pair, {0, 1}).value();
  EXPECT_FALSE(VerifyUnsafetyCertificate(inst.system->txn(0),
                                         inst.system->txn(1), tampered)
                   .ok());
}

TEST(Certificate, VerifyRejectsNonExtensionOrders) {
  PaperInstance inst = MakeFig1Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  auto dom = FindDominator(d.graph);
  auto cert = BuildUnsafetyCertificate(inst.system->txn(0),
                                       inst.system->txn(1),
                                       d.EntitiesOf(dom.value()));
  ASSERT_TRUE(cert.ok());
  UnsafetyCertificate tampered = *cert;
  std::reverse(tampered.order1.begin(), tampered.order1.end());
  EXPECT_FALSE(VerifyUnsafetyCertificate(inst.system->txn(0),
                                         inst.system->txn(1), tampered)
                   .ok());
}

TEST(Certificate, FromExtensionsFailsOnSafePair) {
  PaperInstance inst = MakeFig2Instance();
  // Use an extension pair whose D is strongly connected: t1 with itself
  // reversed roles... simplest: a strongly-2PL style total pair.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"t1", "t2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Lock("y");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  std::vector<StepId> order = {0, 1, 2, 3};
  auto cert = BuildCertificateFromExtensions(system.txn(0), system.txn(1),
                                             order, order);
  ASSERT_FALSE(cert.ok());
  EXPECT_EQ(cert.status().code(), StatusCode::kNotFound);
}

TEST(Certificate, ToStringMentionsDominatorAndSchedule) {
  PaperInstance inst = MakeFig1Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  auto dom = FindDominator(d.graph);
  auto cert = BuildUnsafetyCertificate(inst.system->txn(0),
                                       inst.system->txn(1),
                                       d.EntitiesOf(dom.value()));
  ASSERT_TRUE(cert.ok());
  std::string str = CertificateToString(*cert, *inst.db);
  EXPECT_NE(str.find("dominator X"), std::string::npos);
  EXPECT_NE(str.find("schedule:"), std::string::npos);
}

}  // namespace
}  // namespace dislock
