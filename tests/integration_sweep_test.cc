// Full-matrix integration sweep: for grids of (sites, entities,
// transactions, seed), every decision path the library offers must tell one
// consistent story — analyzer verdicts, exhaustive oracles, Monte-Carlo
// sampling, symbolic execution, and deadlock search. Uses the umbrella
// header as a compile check of the whole public API.

#include <gtest/gtest.h>

#include <tuple>

#include "dislock.h"

namespace dislock {
namespace {

using SweepParam = std::tuple<int, int, int>;  // sites, entities, seed

class PairMatrix : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PairMatrix, AllDecisionPathsAgree) {
  auto [sites, entities, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + sites * 31 + entities);
  for (int trial = 0; trial < 4; ++trial) {
    WorkloadParams params;
    params.num_sites = sites;
    params.num_entities = entities;
    params.num_transactions = 2;
    params.lock_probability = 0.85;
    // Every lock section gets an update: the paper's well-formedness rule,
    // and the precondition for conflict- and execution-serializability to
    // coincide (see sim/executor.h).
    params.update_probability = 1.0;
    params.cross_site_arcs = 1 + static_cast<int>(rng.Uniform(2));
    Workload w = MakeRandomWorkload(params, &rng);
    ASSERT_TRUE(w.system->Validate().ok()) << w.system->ToString();
    const Transaction& t1 = w.system->txn(0);
    const Transaction& t2 = w.system->txn(1);

    SafetyOptions options;
    options.max_extension_pairs = 1 << 16;
    PairSafetyReport report = AnalyzePairSafety(t1, t2, options);

    // 1. The verdict agrees with the Lemma 1 oracle whenever both decide.
    auto oracle = ExhaustivePairSafety(t1, t2, 1 << 16);
    if (oracle.ok() && report.verdict != SafetyVerdict::kUnknown) {
      EXPECT_EQ(report.verdict == SafetyVerdict::kSafe, oracle->safe)
          << "method=" << DecisionMethodName(report.method) << "\n"
          << w.system->ToString();
    }

    // 2. Unsafe verdicts carry certificates that replay against the
    //    original system, combinatorially and operationally.
    if (report.certificate.has_value()) {
      EXPECT_TRUE(
          VerifyUnsafetyCertificate(t1, t2, *report.certificate).ok());
      EXPECT_TRUE(
          CheckScheduleLegal(*w.system, report.certificate->schedule).ok());
      EXPECT_FALSE(IsSerializable(*w.system, report.certificate->schedule));
      auto by_exec =
          SerializableByExecution(*w.system, report.certificate->schedule);
      ASSERT_TRUE(by_exec.ok());
      EXPECT_FALSE(by_exec.value());
    }

    // 3. Safe verdicts survive sampling.
    if (report.verdict == SafetyVerdict::kSafe) {
      MonteCarloStats stats = SampleSafety(*w.system, 400, &rng,
                                           /*keep_going=*/true);
      EXPECT_EQ(stats.non_serializable, 0) << w.system->ToString();
    }

    // 4. Deadlock search agrees with simulated deadlock observations.
    auto deadlock = AnalyzeDeadlockFreedom(*w.system, 1 << 18);
    if (deadlock.ok() && deadlock->deadlock_free) {
      int deadlocked = 0;
      for (int r = 0; r < 300; ++r) {
        if (SimulateRun(*w.system, &rng).deadlocked) ++deadlocked;
      }
      EXPECT_EQ(deadlocked, 0) << w.system->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PairMatrix,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "sites" + std::to_string(std::get<0>(info.param)) + "e" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

class SystemMatrix : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SystemMatrix, MultiAnalysisConsistentWithSampling) {
  auto [sites, txns, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 104729 + sites + txns);
  for (int trial = 0; trial < 3; ++trial) {
    WorkloadParams params;
    params.num_sites = sites;
    params.num_entities = 3;
    params.num_transactions = txns;
    params.lock_probability = 0.6;
    Workload w = MakeRandomWorkload(params, &rng);

    MultiSafetyOptions options;
    options.max_extension_pairs = 1 << 15;
    MultiSafetyReport report = AnalyzeMultiSafety(*w.system, options);
    if (report.verdict == SafetyVerdict::kSafe) {
      MonteCarloStats stats = SampleSafety(*w.system, 500, &rng,
                                           /*keep_going=*/true);
      EXPECT_EQ(stats.non_serializable, 0) << w.system->ToString();
    }
    if (report.verdict == SafetyVerdict::kUnsafe) {
      // The schedule oracle (when affordable) must find a witness.
      auto oracle = ExhaustiveScheduleSafety(*w.system, 1 << 17);
      if (oracle.ok()) {
        EXPECT_FALSE(oracle->safe) << w.system->ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SystemMatrix,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(3, 4),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "sites" + std::to_string(std::get<0>(info.param)) + "k" +
             std::to_string(std::get<1>(info.param)) + "s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace dislock
