// Tests for the utility layer: Status/Result, RNG, strings, bitset.

#include <gtest/gtest.h>

#include <set>

#include "util/bitset.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace dislock {
namespace {

TEST(Status, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::InvalidModel("bad lock");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidModel);
  EXPECT_EQ(s.ToString(), "InvalidModel: bad lock");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUndecided), "Undecided");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(Result, ValueAndError) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(7), 42);

  Result<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Result, ConstructingFromOkStatusIsInternalError) {
  Result<int> odd{Status::OK()};
  EXPECT_FALSE(odd.ok());
  EXPECT_EQ(odd.status().code(), StatusCode::kInternal);
}

TEST(Rng, DeterministicAcrossSeeds) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(10);
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(StringUtil, StrCatAndJoin) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(StringUtil, SplitAndTrim) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_TRUE(StartsWith("p cnf", "p "));
  EXPECT_FALSE(StartsWith("p", "p cnf"));
}

TEST(Bitset, SetResetTest) {
  DynamicBitset bits(130);
  EXPECT_TRUE(bits.None());
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(64));
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Reset(64);
  EXPECT_FALSE(bits.Test(64));
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(Bitset, UnionWith) {
  DynamicBitset a(70), b(70);
  a.Set(1);
  b.Set(69);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(69));
  EXPECT_EQ(a.Count(), 2u);
}

}  // namespace
}  // namespace dislock
