// TransactionCatalog: stable ids, generation counting, name uniqueness at
// the mutation boundary (a validation error, never a crash), snapshot
// immutability, and the TransactionSystem duplicate-name regression.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "txn/catalog.h"
#include "txn/system.h"
#include "txn/text_format.h"

namespace dislock {
namespace {

struct Fixture {
  Fixture() : db(2) {
    x = db.MustAddEntity("x", 0);
    y = db.MustAddEntity("y", 1);
  }
  Transaction TwoPhase(const std::string& name,
                       const std::vector<EntityId>& entities) {
    return MakeTwoPhaseTransaction(&db, name, entities);
  }
  DistributedDatabase db;
  EntityId x;
  EntityId y;
};

TEST(Catalog, AddAssignsStableIdsAndBumpsGeneration) {
  Fixture f;
  TransactionCatalog catalog(&f.db);
  EXPECT_EQ(catalog.generation(), 0);

  auto id1 = catalog.Add(f.TwoPhase("T1", {f.x}));
  auto id2 = catalog.Add(f.TwoPhase("T2", {f.x, f.y}));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, 0);
  EXPECT_EQ(*id2, 1);
  EXPECT_EQ(catalog.generation(), 2);
  EXPECT_EQ(catalog.NumTransactions(), 2);

  // Ids are never reused: removing T1 and adding again yields a fresh id.
  ASSERT_TRUE(catalog.Remove(*id1).ok());
  auto id3 = catalog.Add(f.TwoPhase("T1", {f.y}));
  ASSERT_TRUE(id3.ok());
  EXPECT_EQ(*id3, 2);
  EXPECT_EQ(catalog.generation(), 4);
}

TEST(Catalog, DuplicateNameIsValidationErrorNotCrash) {
  Fixture f;
  TransactionCatalog catalog(&f.db);
  ASSERT_TRUE(catalog.Add(f.TwoPhase("T1", {f.x})).ok());

  auto dup = catalog.Add(f.TwoPhase("T1", {f.y}));
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate transaction name 'T1'"),
            std::string::npos)
      << dup.status().ToString();
  // The failed Add left the catalog untouched.
  EXPECT_EQ(catalog.NumTransactions(), 1);
  EXPECT_EQ(catalog.generation(), 1);
}

TEST(Catalog, TransactionSystemAddRejectsDuplicateName) {
  // Regression: TransactionSystem::Add used to accept duplicate names
  // silently, making every "T1" diagnostic ambiguous. It is now a
  // validation error.
  Fixture f;
  TransactionSystem system(&f.db);
  EXPECT_TRUE(system.Add(f.TwoPhase("T1", {f.x})).ok());
  Status dup = system.Add(f.TwoPhase("T1", {f.y}));
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.message().find("duplicate transaction name 'T1'"),
            std::string::npos);
  EXPECT_EQ(system.NumTransactions(), 1);
}

TEST(Catalog, ParserRejectsDuplicateTxnNames) {
  auto parsed = ParseSystemText(
      "sites 1\n"
      "entity a 0\n"
      "txn T1\n  lock a\n  unlock a\nend\n"
      "txn T1\n  lock a\n  unlock a\nend\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("duplicate transaction name"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(Catalog, MakePairSystemDisambiguatesEqualNames) {
  Fixture f;
  Transaction t1 = f.TwoPhase("T", {f.x});
  Transaction t2 = f.TwoPhase("T", {f.x, f.y});
  TransactionSystem pair = MakePairSystem(t1, t2);
  ASSERT_EQ(pair.NumTransactions(), 2);
  EXPECT_EQ(pair.txn(0).name(), "T");
  EXPECT_EQ(pair.txn(1).name(), "T'");
}

TEST(Catalog, ReplaceKeepsIdAndSlot) {
  Fixture f;
  TransactionCatalog catalog(&f.db);
  auto id1 = catalog.Add(f.TwoPhase("T1", {f.x}));
  auto id2 = catalog.Add(f.TwoPhase("T2", {f.y}));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());

  ASSERT_TRUE(catalog.Replace(*id1, f.TwoPhase("T1", {f.x, f.y})).ok());
  CatalogSnapshot snap = catalog.Snapshot();
  EXPECT_EQ(snap.id(0), *id1);  // same slot, same id
  EXPECT_EQ(snap.txn(0).name(), "T1");
  EXPECT_EQ(snap.txn(0).LockedEntities().size(), 2u);
  EXPECT_EQ(snap.id(1), *id2);

  // Replace may rename, subject to uniqueness against the others.
  ASSERT_TRUE(catalog.Replace(*id1, f.TwoPhase("T3", {f.x})).ok());
  EXPECT_TRUE(catalog.FindByName("T3").has_value());
  EXPECT_FALSE(catalog.FindByName("T1").has_value());
  Status clash = catalog.Replace(*id1, f.TwoPhase("T2", {f.x}));
  ASSERT_FALSE(clash.ok());
  EXPECT_NE(clash.message().find("duplicate"), std::string::npos);
  // Replacing under its own current name is fine.
  EXPECT_TRUE(catalog.Replace(*id1, f.TwoPhase("T3", {f.y})).ok());
}

TEST(Catalog, RemoveAndLookupByName) {
  Fixture f;
  TransactionCatalog catalog(&f.db);
  ASSERT_TRUE(catalog.Add(f.TwoPhase("T1", {f.x})).ok());
  ASSERT_TRUE(catalog.Add(f.TwoPhase("T2", {f.y})).ok());

  EXPECT_FALSE(catalog.RemoveByName("nope").ok());
  EXPECT_FALSE(catalog.Remove(42).ok());
  EXPECT_FALSE(catalog.ReplaceByName("nope", f.TwoPhase("T9", {f.x})).ok());

  ASSERT_TRUE(catalog.RemoveByName("T1").ok());
  EXPECT_EQ(catalog.NumTransactions(), 1);
  EXPECT_EQ(catalog.Find(0), nullptr);
  ASSERT_NE(catalog.Find(1), nullptr);
  EXPECT_EQ(catalog.Find(1)->name(), "T2");
}

TEST(Catalog, RejectsTransactionOverDifferentDatabase) {
  Fixture f;
  DistributedDatabase other(1);
  other.MustAddEntity("z", 0);
  TransactionCatalog catalog(&f.db);
  auto wrong =
      catalog.Add(MakeTwoPhaseTransaction(&other, "T1", {EntityId{0}}));
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.status().message().find("different database"),
            std::string::npos);
}

TEST(Catalog, SnapshotSurvivesLaterEdits) {
  Fixture f;
  TransactionCatalog catalog(&f.db);
  auto id1 = catalog.Add(f.TwoPhase("T1", {f.x}));
  ASSERT_TRUE(id1.ok());
  CatalogSnapshot before = catalog.Snapshot();

  ASSERT_TRUE(catalog.Replace(*id1, f.TwoPhase("T1", {f.x, f.y})).ok());
  ASSERT_TRUE(catalog.RemoveByName("T1").ok());

  // The old snapshot still reads the old definition.
  ASSERT_EQ(before.NumTransactions(), 1);
  EXPECT_EQ(before.txn(0).LockedEntities().size(), 1u);
  EXPECT_EQ(before.generation(), 1);
  EXPECT_EQ(catalog.NumTransactions(), 0);

  // Materialize preserves dense order and contents.
  TransactionSystem materialized = before.Materialize();
  EXPECT_EQ(materialized.NumTransactions(), 1);
  EXPECT_EQ(materialized.txn(0).name(), "T1");
  EXPECT_EQ(materialized.TotalSteps(), before.TotalSteps());
}

TEST(Catalog, ParseTransactionTextSingleBlock) {
  Fixture f;
  auto txn = ParseTransactionText(
      "# a comment\n"
      "txn T9\n  lock x\n  update x\n  unlock x\nend\n",
      f.db);
  ASSERT_TRUE(txn.ok()) << txn.status().ToString();
  EXPECT_EQ(txn->name(), "T9");
  EXPECT_EQ(txn->NumSteps(), 3);

  EXPECT_FALSE(ParseTransactionText("lock x\n", f.db).ok());
  EXPECT_FALSE(ParseTransactionText("", f.db).ok());
  EXPECT_FALSE(
      ParseTransactionText("txn A\n lock x\n unlock x\nend\njunk\n", f.db)
          .ok());
  EXPECT_FALSE(ParseTransactionText("txn A\n lock x\n", f.db).ok());
}

}  // namespace
}  // namespace dislock
