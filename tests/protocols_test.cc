// Tests for locking protocols beyond two-phase: the tree protocol of [12]
// (safe but non-two-phase) and the centralized image of Section 6.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/policy.h"
#include "core/protocols.h"
#include "core/safety.h"
#include "sim/scheduler.h"
#include "txn/builder.h"
#include "txn/linear_extension.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// A 7-entity binary tree: e0 root; e1,e2 children; e3..e6 grandchildren.
struct TreeFixture {
  DistributedDatabase db{1};
  EntityForest forest;
  TreeFixture() {
    for (int e = 0; e < 7; ++e) {
      db.MustAddEntity(StrCat("e", e), 0);
    }
    std::vector<std::pair<EntityId, EntityId>> edges = {
        {1, 0}, {2, 0}, {3, 1}, {4, 1}, {5, 2}, {6, 2}};
    forest = EntityForest::Make(db, edges).value();
  }
};

TEST(Forest, RejectsCyclesAndDoubleParents) {
  DistributedDatabase db(1);
  db.MustAddEntity("a", 0);
  db.MustAddEntity("b", 0);
  EXPECT_FALSE(EntityForest::Make(db, {{0, 1}, {1, 0}}).ok());
  db.MustAddEntity("c", 0);
  EXPECT_FALSE(EntityForest::Make(db, {{0, 1}, {0, 2}}).ok());
  EXPECT_TRUE(EntityForest::Make(db, {{1, 0}, {2, 0}}).ok());
}

TEST(TreeProtocol, GeneratedTransactionsComply) {
  TreeFixture f;
  Rng rng(61);
  for (int trial = 0; trial < 50; ++trial) {
    auto txn = MakeTreeProtocolTransaction(&f.db, f.forest, "T", 5, &rng);
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    EXPECT_TRUE(ValidateTransaction(*txn).ok());
    EXPECT_TRUE(CheckTreeProtocol(*txn, f.forest).ok());
  }
}

TEST(TreeProtocol, ViolationsAreCaught) {
  TreeFixture f;
  // Locks e3 without holding its parent e1, after locking e0 first.
  TransactionBuilder b(&f.db, "bad");
  b.Lock("e0");
  b.Unlock("e0");
  b.Lock("e3");
  b.Unlock("e3");
  EXPECT_FALSE(CheckTreeProtocol(b.Build(), f.forest).ok());

  // Two entry points.
  TransactionBuilder b2(&f.db, "bad2");
  b2.Lock("e3");
  b2.Unlock("e3");
  b2.Lock("e5");
  b2.Unlock("e5");
  EXPECT_FALSE(CheckTreeProtocol(b2.Build(), f.forest).ok());

  // Compliant chain root -> child with child locked inside the section.
  TransactionBuilder ok(&f.db, "ok");
  StepId l0 = ok.Lock("e0");
  StepId l1 = ok.Lock("e1");
  StepId u0 = ok.Unlock("e0");
  StepId u1 = ok.Unlock("e1");
  ok.Chain({l0, l1, u0, u1});
  EXPECT_TRUE(CheckTreeProtocol(ok.Build(), f.forest).ok());
}

TEST(TreeProtocol, DeepTransactionsAreNotTwoPhase) {
  TreeFixture f;
  Rng rng(67);
  int non_two_phase = 0;
  for (int trial = 0; trial < 50; ++trial) {
    // Start at the root so the subtree reaches depth 3 (grandchildren are
    // locked after the root is already released).
    auto txn = MakeTreeProtocolTransaction(&f.db, f.forest, "T", 7, &rng,
                                           /*start=*/0);
    ASSERT_TRUE(txn.ok());
    if (!IsTwoPhase(*txn)) ++non_two_phase;
  }
  EXPECT_EQ(non_two_phase, 50)
      << "full-tree protocol transactions release the root early";
}

TEST(TreeProtocol, PairsAreSafeDespiteNotBeingTwoPhase) {
  // The point of the protocol: safety without two-phaseness. Validate
  // against the exact analyzers on many random compliant pairs.
  TreeFixture f;
  Rng rng(71);
  int checked = 0;
  int non_2pl_safe = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto t1 = MakeTreeProtocolTransaction(&f.db, f.forest, "T1", 5, &rng);
    auto t2 = MakeTreeProtocolTransaction(&f.db, f.forest, "T2", 5, &rng);
    ASSERT_TRUE(t1.ok() && t2.ok());
    PairSafetyReport report = AnalyzePairSafety(*t1, *t2);
    ASSERT_NE(report.verdict, SafetyVerdict::kUnknown);
    EXPECT_EQ(report.verdict, SafetyVerdict::kSafe)
        << t1->ToString() << t2->ToString();
    ++checked;
    if (!IsTwoPhase(*t1) && report.verdict == SafetyVerdict::kSafe) {
      ++non_2pl_safe;
    }
  }
  EXPECT_GT(checked, 0);
  EXPECT_GT(non_2pl_safe, 5) << "want safe systems 2PL cannot explain";
}

TEST(TreeProtocol, SystemsSurviveMonteCarlo) {
  TreeFixture f;
  Rng rng(73);
  TransactionSystem system(&f.db);
  for (int t = 0; t < 3; ++t) {
    auto txn = MakeTreeProtocolTransaction(
        &f.db, f.forest, StrCat("T", t + 1), 5, &rng);
    ASSERT_TRUE(txn.ok());
    system.Add(std::move(txn).value());
  }
  MonteCarloStats stats = SampleSafety(system, 5000, &rng,
                                       /*keep_going=*/true);
  EXPECT_EQ(stats.non_serializable, 0);
}

TEST(CentralizedImage, EnumeratesChainTransactions) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionBuilder b(&db, "T");
  b.Lock("x");
  b.Unlock("x");
  b.Lock("y");
  b.Unlock("y");
  Transaction txn = b.Build();
  auto image = CentralizedImage(txn, 100);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->size(), 6u);  // C(4,2) interleavings of two 2-chains
  for (const Transaction& chain : *image) {
    EXPECT_EQ(CountLinearExtensions(chain, 5), 1);
  }
}

TEST(CentralizedImage, RespectsCap) {
  DistributedDatabase db(4);
  Transaction txn(&db, "wide");
  for (int e = 0; e < 4; ++e) {
    db.MustAddEntity(StrCat("e", e), e);
    txn.AddStep(StepKind::kLock, e);
  }
  auto image = CentralizedImage(txn, 5);
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace dislock
