// Tests for deadlock analysis: reachable-state search, waits-for graphs,
// the ordered-acquisition sufficient condition, and cross-validation
// against the randomized scheduler.

#include <gtest/gtest.h>

#include "core/deadlock.h"
#include "core/paper.h"
#include "core/policy.h"
#include "graph/cycles.h"
#include "sim/scheduler.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// The classic opposed-order pair: T1 = Lx Ly Uy Ux, T2 = Ly Lx Ux Uy.
TransactionSystem MakeOpposedPair(DistributedDatabase* db) {
  TransactionSystem system(db);
  {
    TransactionBuilder b(db, "T1");
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(db, "T2");
    b.Lock("y");
    b.Lock("x");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  return system;
}

TEST(Deadlock, OpposedOrderPairDeadlocks) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);

  auto report = AnalyzeDeadlockFreedom(system);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->deadlock_free);
  ASSERT_TRUE(report->dead_prefix.has_value());
  EXPECT_EQ(report->blocked_txns.size(), 2u);  // mutual wait
  EXPECT_FALSE(OrderedLockAcquisition(system));

  // The dead prefix really leaves everything blocked: replay it and build
  // the waits-for graph, which must have a cycle.
  std::vector<std::vector<StepId>> executed(2);
  for (const SysStep& ev : report->dead_prefix->events()) {
    executed[ev.txn].push_back(ev.step);
  }
  auto waits = BuildWaitsForGraph(system, executed);
  ASSERT_TRUE(waits.ok()) << waits.status().ToString();
  EXPECT_TRUE(HasCycle(*waits));
}

TEST(Deadlock, AlignedOrderPairIsDeadlockFree) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"T1", "T2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  EXPECT_TRUE(OrderedLockAcquisition(system));
  auto report = AnalyzeDeadlockFreedom(system);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->deadlock_free);
  EXPECT_GT(report->states_explored, 0);
}

TEST(Deadlock, Fig5PairCanDeadlock) {
  // The Fig. 5 reconstruction is SAFE but not deadlock-free — safety and
  // deadlock freedom are independent properties.
  PaperInstance inst = MakeFig5Instance();
  auto report = AnalyzeDeadlockFreedom(*inst.system);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->deadlock_free);
}

TEST(Deadlock, SearchAgreesWithSimulatorOnRandomSystems) {
  Rng rng(515);
  int free_seen = 0;
  int deadlocking_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    WorkloadParams params;
    // Alternate centralized (shuffled acquisition orders oppose often, so
    // deadlocks are common) and two-site layouts.
    params.num_sites = 1 + (trial % 2);
    params.num_entities = 4;
    params.num_transactions = 2;
    params.lock_probability = 1.0;
    params.cross_site_arcs = 1;
    Workload w = MakeRandomWorkload(params, &rng);
    auto report = AnalyzeDeadlockFreedom(*w.system, 1 << 20);
    if (!report.ok()) continue;

    // Simulate: if the search says deadlock-free, no run may deadlock; if
    // not, some run should (the scheduler reaches every state with nonzero
    // probability).
    int deadlocked_runs = 0;
    for (int r = 0; r < 2000; ++r) {
      if (SimulateRun(*w.system, &rng).deadlocked) ++deadlocked_runs;
    }
    if (report->deadlock_free) {
      EXPECT_EQ(deadlocked_runs, 0) << w.system->ToString();
      ++free_seen;
    } else {
      EXPECT_GT(deadlocked_runs, 0) << w.system->ToString();
      ++deadlocking_seen;
    }
  }
  EXPECT_GT(free_seen, 3);
  EXPECT_GT(deadlocking_seen, 3);
}

TEST(Deadlock, DeadPrefixIsReplayable) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  auto report = AnalyzeDeadlockFreedom(system);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->dead_prefix.has_value());
  // The canonical dead prefix here is Lx_1 Ly_2 (in some order).
  EXPECT_EQ(report->dead_prefix->size(), 2u);
}

TEST(Deadlock, OrderedAcquisitionHoldsForTwoPhaseWithSharedOrder) {
  DistributedDatabase db(2);
  std::vector<EntityId> all;
  for (int e = 0; e < 4; ++e) {
    all.push_back(db.MustAddEntity(StrCat("e", e),
                                   e % 2));
  }
  TransactionSystem system(&db);
  system.Add(MakeTwoPhaseTransaction(&db, "T1", all));
  system.Add(MakeTwoPhaseTransaction(&db, "T2", all));
  // MakeTwoPhaseTransaction acquires in the given (shared) order per site,
  // but locks at different sites stay concurrent, so opposition is still
  // possible across sites; the conservative check may say false. Verify
  // instead on single-site systems where the order is total.
  DistributedDatabase db1(1);
  std::vector<EntityId> all1;
  for (int e = 0; e < 4; ++e) {
    all1.push_back(db1.MustAddEntity(StrCat("f", e), 0));
  }
  TransactionSystem central(&db1);
  central.Add(MakeTwoPhaseTransaction(&db1, "T1", all1));
  central.Add(MakeTwoPhaseTransaction(&db1, "T2", all1));
  EXPECT_TRUE(OrderedLockAcquisition(central));
  auto report = AnalyzeDeadlockFreedom(central);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->deadlock_free);
}

TEST(WaitsFor, RejectsNonDownClosedState) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  // Executed step 1 (Ly of T1) without step 0 (Lx): not down-closed.
  std::vector<std::vector<StepId>> executed = {{1}, {}};
  EXPECT_FALSE(BuildWaitsForGraph(system, executed).ok());
}

TEST(WaitsFor, EmptyStateHasNoArcs) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system = MakeOpposedPair(&db);
  auto waits = BuildWaitsForGraph(system, {{}, {}});
  ASSERT_TRUE(waits.ok());
  EXPECT_EQ(waits->NumArcs(), 0);
}

}  // namespace
}  // namespace dislock
