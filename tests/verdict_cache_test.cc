// Tests for the pair-verdict cache: the canonical fingerprint must identify
// exactly the structurally isomorphic pairs (same verdicts guaranteed) and
// distinguish pairs that differ in step order, sharing, site placement or
// precedence structure; the cache itself must count hits/misses and keep
// cached verdicts consistent with recomputation.

#include "cache/verdict_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "core/safety.h"
#include "txn/builder.h"
#include "txn/database.h"

namespace dislock {
namespace {

/// Two-phase pair over entities (a, b) at the given sites, with distinct
/// names so only structure can make fingerprints collide.
struct PairFixture {
  DistributedDatabase db;
  Transaction t1;
  Transaction t2;

  PairFixture(const std::string& ea, int site_a, const std::string& eb,
              int site_b, int num_sites = 3)
      : db(num_sites),
        t1(MakeTxn(ea, site_a, eb, site_b, "T1")),
        t2(MakeTxn(ea, site_a, eb, site_b, "T2")) {}

 private:
  Transaction MakeTxn(const std::string& ea, int site_a,
                      const std::string& eb, int site_b,
                      const std::string& name) {
    if (!db.Find(ea).ok()) db.MustAddEntity(ea, site_a);
    if (!db.Find(eb).ok()) db.MustAddEntity(eb, site_b);
    TransactionBuilder b(&db, name);
    StepId la = b.Lock(ea);
    StepId lb = b.Lock(eb);
    StepId ua = b.Unlock(ea);
    StepId ub = b.Unlock(eb);
    b.Edge(la, ub);
    b.Edge(lb, ua);
    return b.Build();
  }
};

TEST(PairFingerprint, RenamedEntitiesCollide) {
  // Identical structure over differently named entities on the same site
  // pattern must fingerprint-collide: names play no role.
  PairFixture p1("x", 0, "y", 1);
  PairFixture p2("alpha", 0, "beta", 1);
  EXPECT_EQ(PairFingerprint(p1.t1, p1.t2), PairFingerprint(p2.t1, p2.t2));
}

TEST(PairFingerprint, RenamedSitesCollide) {
  // Sites are canonicalized by first appearance too: (site 0, site 1) and
  // (site 2, site 1) induce the same two-site pattern.
  PairFixture p1("x", 0, "y", 1);
  PairFixture p2("x", 2, "y", 1);
  EXPECT_EQ(PairFingerprint(p1.t1, p1.t2), PairFingerprint(p2.t1, p2.t2));
}

TEST(PairFingerprint, SitePatternDiscriminates) {
  // Same step sequences, but one pair is single-site and the other spans
  // two sites — different patterns, different fingerprints (and indeed
  // possibly different verdicts).
  PairFixture one_site("x", 0, "y", 0);
  PairFixture two_sites("x", 0, "y", 1);
  EXPECT_NE(PairFingerprint(one_site.t1, one_site.t2),
            PairFingerprint(two_sites.t1, two_sites.t2));
}

TEST(PairFingerprint, SharedFlagDiscriminates) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionBuilder exclusive(&db, "T1");
  exclusive.LockUpdateUnlock("x");
  TransactionBuilder shared(&db, "T1");
  shared.LockShared("x");
  shared.Update("x");
  shared.UnlockShared("x");
  TransactionBuilder other(&db, "T2");
  other.LockUpdateUnlock("x");
  EXPECT_NE(PairFingerprint(exclusive.Build(), other.Build()),
            PairFingerprint(shared.Build(), other.Build()));
}

TEST(PairFingerprint, PrecedenceArcsDiscriminate) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  auto make = [&](bool cross_arc) {
    TransactionBuilder b(&db, "T1");
    StepId lx = b.Lock("x");
    StepId ux = b.Unlock("x");
    StepId ly = b.Lock("y");
    StepId uy = b.Unlock("y");
    (void)lx;
    (void)uy;
    if (cross_arc) b.Edge(ux, ly);
    return b.Build();
  };
  TransactionBuilder other(&db, "T2");
  other.LockUpdateUnlock("x");
  other.LockUpdateUnlock("y");
  EXPECT_NE(PairFingerprint(make(false), other.Build()),
            PairFingerprint(make(true), other.Build()));
}

TEST(PairFingerprint, OrderOfTransactionsMatters) {
  // The fingerprint is of the ordered pair; AnalyzeMultiSafety always
  // queries in scan order (i < j), so asymmetry is fine — but it must be
  // deterministic.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionBuilder a(&db, "T1");
  a.LockUpdateUnlock("x");
  TransactionBuilder b(&db, "T2");
  b.Lock("x");
  b.Update("x");
  b.Update("x");
  b.Unlock("x");
  std::string ab = PairFingerprint(a.Build(), b.Build());
  EXPECT_EQ(ab, PairFingerprint(a.Build(), b.Build()));
  EXPECT_NE(ab, PairFingerprint(b.Build(), a.Build()));
}

TEST(PairVerdictCache, CountsHitsAndMisses) {
  PairFixture p("x", 0, "y", 1);
  std::string fp = PairFingerprint(p.t1, p.t2);
  PairVerdictCache cache;
  EXPECT_FALSE(cache.Lookup(fp).has_value());
  PairSafetyReport report = AnalyzePairSafety(p.t1, p.t2);
  cache.Insert(fp, report);
  EXPECT_EQ(cache.size(), 1);
  auto hit = cache.Lookup(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, report.verdict);
  EXPECT_EQ(hit->method, report.method);
  EXPECT_EQ(hit->sites_spanned, report.sites_spanned);
  PairVerdictCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(PairVerdictCache, FirstInsertWins) {
  PairVerdictCache cache;
  PairSafetyReport safe;
  safe.verdict = SafetyVerdict::kSafe;
  safe.method = DecisionMethod::kTheorem1;
  PairSafetyReport unsafe_;
  unsafe_.verdict = SafetyVerdict::kUnsafe;
  cache.Insert("fp", safe);
  cache.Insert("fp", unsafe_);  // no-op: concurrent equal-fingerprint
                                // inserts must be benign
  auto hit = cache.Lookup("fp");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, SafetyVerdict::kSafe);
}

TEST(PairVerdictCache, CachedVerdictMatchesRecomputationOnIsomorphs) {
  // The soundness contract end-to-end: decide one pair, then check a
  // renamed isomorphic pair against the cached verdict.
  PairFixture original("x", 0, "y", 1);
  PairFixture renamed("p", 2, "q", 1);
  PairVerdictCache cache;
  cache.Insert(PairFingerprint(original.t1, original.t2),
               AnalyzePairSafety(original.t1, original.t2));
  auto hit = cache.Lookup(PairFingerprint(renamed.t1, renamed.t2));
  ASSERT_TRUE(hit.has_value());
  PairSafetyReport recomputed = AnalyzePairSafety(renamed.t1, renamed.t2);
  EXPECT_EQ(hit->verdict, recomputed.verdict);
  EXPECT_EQ(hit->method, recomputed.method);
  EXPECT_EQ(hit->sites_spanned, recomputed.sites_spanned);
}

}  // namespace
}  // namespace dislock
