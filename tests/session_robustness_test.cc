// Session robustness: hostile or malformed input must produce a structured
// error response — never a crash, never a silently dropped line — and the
// session must keep serving afterwards. Covers malformed JSON command
// lines, the strict envelope decoder, oversized lines (plain and
// mid-block), EOF inside a txn block, and the JSON-envelope command path
// the serve layer speaks.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/incremental/session.h"

namespace dislock {
namespace {

struct RunResult {
  std::string out;
  int failed = 0;
};

RunResult RunScript(const std::string& input, bool json = true,
              size_t max_line_bytes = 1 << 20) {
  std::istringstream in(input);
  std::ostringstream out;
  SessionOptions options;
  options.json = json;
  options.load_root = DISLOCK_SOURCE_DIR;
  options.max_line_bytes = max_line_bytes;
  RunResult result;
  result.failed = RunSession(in, out, options);
  result.out = out.str();
  return result;
}

TEST(SessionRobustness, MalformedJsonLineIsAStructuredError) {
  RunResult r = RunScript("{\"cmd\": \"check\"\ncheck\n");  // missing brace, then ok
  EXPECT_EQ(r.failed, 2);  // the bad line + check-before-load
  EXPECT_NE(r.out.find("invalid JSON command line:"), std::string::npos)
      << r.out;
  // The session kept going: the following command was executed (and failed
  // for its own reason, proving the parser recovered).
  EXPECT_NE(r.out.find("no system loaded"), std::string::npos) << r.out;
}

TEST(SessionRobustness, EnvelopeRejectsUnknownKeys) {
  RunResult r = RunScript("{\"cmd\": \"check\", \"frob\": \"x\"}\n");
  EXPECT_EQ(r.failed, 1);
  EXPECT_NE(r.out.find("unknown JSON command key 'frob'"), std::string::npos)
      << r.out;
}

TEST(SessionRobustness, EnvelopeRejectsNonStringValues) {
  RunResult r = RunScript("{\"cmd\": 7}\n");
  EXPECT_EQ(r.failed, 1);
  // The quotes inside the message are JSON-escaped on the wire.
  EXPECT_NE(r.out.find("JSON command key \\\"cmd\\\" must be a string"),
            std::string::npos)
      << r.out;
}

TEST(SessionRobustness, EnvelopeRequiresCmd) {
  RunResult r = RunScript("{\"arg\": \"data/ring3.dlk\"}\n");
  EXPECT_EQ(r.failed, 1);
  EXPECT_NE(r.out.find("JSON command line is missing \\\"cmd\\\""),
            std::string::npos)
      << r.out;
}

TEST(SessionRobustness, UnknownCommandReportsAndContinues) {
  RunResult r = RunScript("frobnicate now\nload data/ring3.dlk\nquit\n");
  EXPECT_EQ(r.failed, 1);
  EXPECT_NE(r.out.find("unknown command 'frobnicate' (try 'help')"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"cmd\": \"load\", \"ok\": true"), std::string::npos)
      << r.out;
}

TEST(SessionRobustness, EofMidBlockIsAStructuredError) {
  RunResult r = RunScript(
      "load data/ring3.dlk\n"
      "add\n"
      "txn Dangling\n"
      "  lock a\n");  // stream ends inside the block
  EXPECT_EQ(r.failed, 1);
  EXPECT_NE(r.out.find("unterminated txn block (missing 'end')"),
            std::string::npos)
      << r.out;
  // The error is attributed to the verb that opened the block.
  EXPECT_NE(r.out.find("\"cmd\": \"add\", \"ok\": false"), std::string::npos)
      << r.out;
}

TEST(SessionRobustness, OversizedLineIsAStructuredError) {
  std::string big(100, 'x');
  RunResult r = RunScript(big + "\ncheck\n", /*json=*/true, /*max_line_bytes=*/64);
  EXPECT_EQ(r.failed, 2);  // oversized + check-before-load
  EXPECT_NE(r.out.find("oversized command line (100 bytes; limit 64)"),
            std::string::npos)
      << r.out;
  // Transport-level failures carry the synthetic verb "input".
  EXPECT_NE(r.out.find("\"cmd\": \"input\", \"ok\": false"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("no system loaded"), std::string::npos) << r.out;
}

TEST(SessionRobustness, OversizedLineInsideBlockAbandonsTheBlock) {
  std::string big(80, 'y');
  RunResult r = RunScript(
      "load data/ring3.dlk\n"
      "add\ntxn Huge\n" +
          big +
          "\nend\n"
          "list\nquit\n",
      /*json=*/false, /*max_line_bytes=*/64);
  EXPECT_EQ(r.failed, 2);  // the aborted add + the stray "end"
  EXPECT_NE(
      r.out.find("oversized command line (80 bytes; limit 64) inside txn "
                 "block"),
      std::string::npos)
      << r.out;
  // The catalog is untouched: still exactly the three loaded transactions.
  EXPECT_EQ(r.out.find("Huge"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("MoveAB"), std::string::npos) << r.out;
}

TEST(SessionRobustness, ZeroMaxLineBytesDisablesTheLimit) {
  std::string big = "# " + std::string(1 << 10, 'z');
  RunResult r = RunScript(big + "\n", /*json=*/true, /*max_line_bytes=*/0);
  EXPECT_EQ(r.failed, 0);
  EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST(SessionRobustness, JsonEnvelopeDrivesAFullSession) {
  RunResult r = RunScript(
      "{\"cmd\": \"load\", \"arg\": \"data/ring3.dlk\"}\n"
      "{\"cmd\": \"add\", \"block\": \"txn X\\n  lock a\\n  update a\\n"
      "  unlock a\\nend\"}\n"
      "{\"cmd\": \"check\"}\n"
      "{\"cmd\": \"remove\", \"arg\": \"X\"}\n"
      "{\"cmd\": \"quit\"}\n");
  EXPECT_EQ(r.failed, 0) << r.out;
  EXPECT_NE(r.out.find("\"cmd\": \"load\", \"ok\": true"), std::string::npos);
  EXPECT_NE(r.out.find("\"cmd\": \"add\", \"ok\": true, \"name\": \"X\""),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"cmd\": \"check\", \"ok\": true"),
            std::string::npos);
  EXPECT_NE(r.out.find("\"cmd\": \"remove\", \"ok\": true"),
            std::string::npos);
}

TEST(SessionRobustness, EnvelopeBlockRules) {
  // add without a block.
  RunResult r = RunScript(
      "{\"cmd\": \"load\", \"arg\": \"data/ring3.dlk\"}\n"
      "{\"cmd\": \"add\"}\n");
  EXPECT_EQ(r.failed, 1);
  EXPECT_NE(r.out.find("JSON command 'add' requires a \\\"block\\\""),
            std::string::npos)
      << r.out;
  // check with a block.
  r = RunScript("{\"cmd\": \"check\", \"block\": \"txn X\\nend\"}\n");
  EXPECT_EQ(r.failed, 1);
  EXPECT_NE(r.out.find("JSON command 'check' does not take a \\\"block\\\""),
            std::string::npos)
      << r.out;
}

TEST(SessionRobustness, TextAndJsonAgreeOnErrorAccounting) {
  const std::string script =
      "check\n"
      "{\"cmd\": \"bogus\"\n"
      "load data/ring3.dlk\n"
      "add\n"
      "txn Y\n";
  RunResult text = RunScript(script, /*json=*/false);
  RunResult json = RunScript(script, /*json=*/true);
  EXPECT_EQ(text.failed, json.failed);
  EXPECT_EQ(text.failed, 3);  // check-before-load, bad JSON, EOF mid-block
}

}  // namespace
}  // namespace dislock
