// Tests for the work-stealing thread pool: submission from outside and
// from worker threads, result and exception propagation through futures,
// cooperative cancellation, and destructor drain semantics.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace dislock {
namespace {

TEST(ThreadPool, ReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPool, SingleThreadExecutesEverything) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 50; ++i) {
    futures.push_back(pool.Submit([&, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 50 * 51 / 2);
}

TEST(ThreadPool, ZeroMeansHardwareThreads) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPool, MovesNonCopyableResults) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      [] { return std::make_unique<std::string>("stolen"); });
  std::unique_ptr<std::string> result = future.get();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(*result, "stolen");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto boom = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  try {
    boom.get();
    FAIL() << "expected the task's exception to rethrow on get()";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
}

TEST(ThreadPool, WorkerThreadsCanSubmit) {
  // Recursive fan-out: tasks submitted from workers land on the worker's
  // own deque and still complete (other workers steal them if needed).
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  auto root = pool.Submit([&] {
    std::vector<std::future<void>> children;
    for (int i = 0; i < 8; ++i) {
      children.push_back(pool.Submit([&] { ++leaves; }));
    }
    for (auto& c : children) c.get();
  });
  root.get();
  EXPECT_EQ(leaves.load(), 8);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&] { ++ran; });
    }
    // No waiting here: ~ThreadPool must complete everything submitted.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ManySmallTasksFromManyProducers) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> producers;
  std::mutex mu;
  std::vector<std::future<void>> futures;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto f = pool.Submit([&] { sum += 1; });
        std::lock_guard<std::mutex> lock(mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 4 * 200);
}

TEST(CancellationToken, CancelObservedByTasks) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  std::atomic<int> skipped{0};
  std::vector<std::future<void>> futures;
  // The first task cancels; later tasks poll the token at their start (the
  // same shape the safety engine uses) and skip their payload.
  pool.Submit([&] { token.Cancel(); }).get();
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&] {
      if (token.cancelled()) {
        ++skipped;
        return;
      }
      ++executed;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(executed.load(), 0);
  EXPECT_EQ(skipped.load(), 16);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

}  // namespace
}  // namespace dislock
