// Unit tests for the graph substrate: digraph, SCC, topological sorts,
// reachability, cycle enumeration, dominator sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/cycles.h"
#include "graph/digraph.h"
#include "graph/dominator.h"
#include "graph/reachability.h"
#include "graph/scc.h"
#include "graph/topological.h"
#include "util/random.h"

namespace dislock {
namespace {

Digraph MakeGraph(int n, const std::vector<std::pair<int, int>>& arcs) {
  Digraph g(n);
  for (auto [u, v] : arcs) g.AddArc(u, v);
  return g;
}

// ---------------------------------------------------------------- Digraph

TEST(Digraph, BasicConstruction) {
  Digraph g(3);
  EXPECT_EQ(g.NumNodes(), 3);
  EXPECT_EQ(g.NumArcs(), 0);
  g.AddArc(0, 1);
  g.AddArc(1, 2);
  EXPECT_EQ(g.NumArcs(), 2);
  EXPECT_TRUE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
  EXPECT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(2).size(), 1u);
}

TEST(Digraph, AddArcUniqueDeduplicates) {
  Digraph g(2);
  g.AddArcUnique(0, 1);
  g.AddArcUnique(0, 1);
  EXPECT_EQ(g.NumArcs(), 1);
}

TEST(Digraph, AddNodeGrowsGraph) {
  Digraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddArc(a, b);
  EXPECT_EQ(g.NumNodes(), 2);
  EXPECT_EQ(g.Label(a), "a");
}

TEST(Digraph, ToDotContainsNodesAndArcs) {
  Digraph g(2);
  g.SetLabel(0, "x");
  g.AddArc(0, 1);
  std::string dot = g.ToDot("T");
  EXPECT_NE(dot.find("digraph T"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"x\""), std::string::npos);
}

// -------------------------------------------------------------------- SCC

TEST(Scc, SingleNodeIsStronglyConnected) {
  EXPECT_TRUE(IsStronglyConnected(Digraph(1)));
  EXPECT_TRUE(IsStronglyConnected(Digraph(0)));
}

TEST(Scc, TwoNodesNeedBothArcs) {
  EXPECT_FALSE(IsStronglyConnected(MakeGraph(2, {{0, 1}})));
  EXPECT_TRUE(IsStronglyConnected(MakeGraph(2, {{0, 1}, {1, 0}})));
}

TEST(Scc, ComponentsOfTwoCyclesJoinedByArc) {
  // 0<->1 -> 2<->3
  Digraph g = MakeGraph(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}});
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_NE(scc.component[0], scc.component[2]);
  // Tarjan numbering: arcs in the condensation go from higher to lower ids.
  EXPECT_GT(scc.component[0], scc.component[2]);
}

TEST(Scc, CondensationIsAcyclicAndDeduplicated) {
  Digraph g = MakeGraph(4, {{0, 1}, {1, 0}, {0, 2}, {1, 2}, {2, 3}, {3, 2}});
  SccResult scc = StronglyConnectedComponents(g);
  Digraph cond = Condensation(g, scc);
  EXPECT_EQ(cond.NumNodes(), 2);
  EXPECT_EQ(cond.NumArcs(), 1);  // the two cross arcs collapse to one
  EXPECT_TRUE(IsAcyclic(cond));
}

TEST(Scc, LargeCycleIsOneComponent) {
  const int n = 500;
  Digraph g(n);
  for (int i = 0; i < n; ++i) g.AddArc(i, (i + 1) % n);
  EXPECT_TRUE(IsStronglyConnected(g));
}

TEST(Scc, LongPathHasNComponents) {
  const int n = 500;
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddArc(i, i + 1);
  EXPECT_EQ(StronglyConnectedComponents(g).num_components, n);
}

// ------------------------------------------------------------ Topological

TEST(Topological, SortRespectsArcs) {
  Digraph g = MakeGraph(4, {{3, 1}, {1, 0}, {3, 2}, {2, 0}});
  auto order = TopologicalSort(g);
  ASSERT_TRUE(order.ok());
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[order.value()[i]] = i;
  EXPECT_LT(pos[3], pos[1]);
  EXPECT_LT(pos[1], pos[0]);
  EXPECT_LT(pos[2], pos[0]);
}

TEST(Topological, CycleIsRejected) {
  EXPECT_FALSE(TopologicalSort(MakeGraph(2, {{0, 1}, {1, 0}})).ok());
  EXPECT_FALSE(IsAcyclic(MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}})));
}

TEST(Topological, PrioritySortPrefersPriorityNodes) {
  // 0 -> 2, 1 -> 2; prefer node 1 over node 0.
  Digraph g = MakeGraph(3, {{0, 2}, {1, 2}});
  auto order = PriorityTopologicalSort(
      g, [](NodeId a, NodeId b) { return a > b; });
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order.value()[0], 1);
}

TEST(Topological, AncestorFirstPullsExactlyAncestors) {
  // 0 -> 1 -> 4, 2 -> 4, 3 isolated. Priority [4]: ancestors {0,1,2} come
  // first, then 4, then 3.
  Digraph g = MakeGraph(5, {{0, 1}, {1, 4}, {2, 4}});
  auto order = AncestorFirstTopologicalSort(g, {4});
  ASSERT_TRUE(order.ok());
  std::vector<int> pos(5);
  for (int i = 0; i < 5; ++i) pos[order.value()[i]] = i;
  EXPECT_EQ(pos[4], 3);  // after its 3 ancestors
  EXPECT_GT(pos[3], pos[4]);
}

TEST(Topological, AncestorFirstIsAlwaysALinearExtension) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 12;
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.Bernoulli(0.25)) g.AddArc(u, v);
      }
    }
    std::vector<NodeId> priority;
    for (int i = 0; i < 4; ++i) {
      priority.push_back(static_cast<NodeId>(rng.Uniform(n)));
    }
    auto order = AncestorFirstTopologicalSort(g, priority);
    ASSERT_TRUE(order.ok());
    std::vector<int> pos(n);
    for (int i = 0; i < n; ++i) pos[order.value()[i]] = i;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v : g.OutNeighbors(u)) EXPECT_LT(pos[u], pos[v]);
    }
  }
}

TEST(Topological, ReverseOfFlipsArcs) {
  Digraph g = MakeGraph(3, {{0, 1}, {1, 2}});
  Digraph rev = ReverseOf(g);
  EXPECT_TRUE(rev.HasArc(1, 0));
  EXPECT_TRUE(rev.HasArc(2, 1));
  EXPECT_FALSE(rev.HasArc(0, 1));
}

// ----------------------------------------------------------- Reachability

TEST(Reachability, TransitiveOnChain) {
  Digraph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  Reachability reach(g);
  EXPECT_TRUE(reach.Reaches(0, 3));
  EXPECT_TRUE(reach.Reaches(2, 2));
  EXPECT_FALSE(reach.Reaches(3, 0));
  EXPECT_TRUE(reach.StrictlyReaches(0, 1));
  EXPECT_FALSE(reach.StrictlyReaches(1, 1));
}

TEST(Reachability, ConcurrentNodes) {
  Digraph g = MakeGraph(3, {{0, 1}, {0, 2}});
  Reachability reach(g);
  EXPECT_TRUE(reach.Concurrent(1, 2));
  EXPECT_FALSE(reach.Concurrent(0, 1));
}

TEST(Reachability, WorksOnCyclicGraphs) {
  Digraph g = MakeGraph(3, {{0, 1}, {1, 0}, {1, 2}});
  Reachability reach(g);
  EXPECT_TRUE(reach.Reaches(0, 2));
  EXPECT_TRUE(reach.Reaches(1, 0));
  EXPECT_FALSE(reach.Reaches(2, 0));
}

TEST(Reachability, MatchesBfsOnRandomDags) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 20;
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.Bernoulli(0.15)) g.AddArc(u, v);
      }
    }
    Reachability reach(g);
    // Spot-check with per-node DFS.
    for (int s = 0; s < n; ++s) {
      std::vector<bool> seen(n, false);
      std::vector<int> stack{s};
      seen[s] = true;
      while (!stack.empty()) {
        int u = stack.back();
        stack.pop_back();
        for (NodeId v : g.OutNeighbors(u)) {
          if (!seen[v]) {
            seen[v] = true;
            stack.push_back(v);
          }
        }
      }
      for (int t = 0; t < n; ++t) EXPECT_EQ(reach.Reaches(s, t), seen[t]);
    }
  }
}

// ----------------------------------------------------------------- Cycles

TEST(Cycles, AcyclicGraphHasNone) {
  EXPECT_FALSE(HasCycle(MakeGraph(3, {{0, 1}, {1, 2}})));
  EXPECT_TRUE(SimpleCycles(MakeGraph(3, {{0, 1}, {1, 2}}), 100).empty());
}

TEST(Cycles, SelfLoopIsACycle) {
  EXPECT_TRUE(HasCycle(MakeGraph(1, {{0, 0}})));
  auto cycles = SimpleCycles(MakeGraph(1, {{0, 0}}), 100);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], std::vector<NodeId>{0});
}

TEST(Cycles, EnumeratesAllCyclesOfK4Symmetric) {
  // Complete symmetric digraph on 4 nodes: simple cycles = for each subset
  // of size k >= 2, (k-1)!... : 2-cycles C(4,2)=6; 3-cycles C(4,3)*2=8;
  // 4-cycles 3! = 6. Total 20.
  Digraph g(4);
  for (int u = 0; u < 4; ++u) {
    for (int v = 0; v < 4; ++v) {
      if (u != v) g.AddArc(u, v);
    }
  }
  auto cycles = SimpleCycles(g, 1000);
  EXPECT_EQ(cycles.size(), 20u);
  // All reported cycles really are cycles.
  for (const auto& c : cycles) {
    for (size_t i = 0; i < c.size(); ++i) {
      EXPECT_TRUE(g.HasArc(c[i], c[(i + 1) % c.size()]));
    }
    // Starts at its minimum node (Johnson convention).
    EXPECT_EQ(c[0], *std::min_element(c.begin(), c.end()));
  }
}

TEST(Cycles, RespectsCap) {
  Digraph g(4);
  for (int u = 0; u < 4; ++u) {
    for (int v = 0; v < 4; ++v) {
      if (u != v) g.AddArc(u, v);
    }
  }
  EXPECT_EQ(SimpleCycles(g, 5).size(), 5u);
}

// ------------------------------------------------------------- Dominators

TEST(Dominator, StronglyConnectedHasNone) {
  Digraph g = MakeGraph(2, {{0, 1}, {1, 0}});
  EXPECT_FALSE(FindDominator(g).ok());
  EXPECT_TRUE(AllDominators(g, 100).empty());
}

TEST(Dominator, PathGraphDominators) {
  // 0 -> 1 -> 2: dominators are the predecessor-closed proper sets {0},
  // {0,1}.
  Digraph g = MakeGraph(3, {{0, 1}, {1, 2}});
  auto doms = AllDominators(g, 100);
  ASSERT_EQ(doms.size(), 2u);
  std::set<std::vector<NodeId>> expected = {{0}, {0, 1}};
  EXPECT_TRUE(expected.count(doms[0]) > 0);
  EXPECT_TRUE(expected.count(doms[1]) > 0);
  auto minimal = FindDominator(g);
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal.value(), std::vector<NodeId>{0});
}

TEST(Dominator, IsDominatorChecksDefinition) {
  Digraph g = MakeGraph(3, {{0, 1}, {1, 2}});
  EXPECT_TRUE(IsDominator(g, {0}));
  EXPECT_TRUE(IsDominator(g, {0, 1}));
  EXPECT_FALSE(IsDominator(g, {1}));        // incoming arc from 0
  EXPECT_FALSE(IsDominator(g, {0, 1, 2}));  // not proper
  EXPECT_FALSE(IsDominator(g, {}));         // not nonempty
}

TEST(Dominator, TwoIndependentSourcesGiveThreeDominators) {
  // 0 -> 2 <- 1: dominators {0}, {1}, {0,1}.
  Digraph g = MakeGraph(3, {{0, 2}, {1, 2}});
  EXPECT_EQ(AllDominators(g, 100).size(), 3u);
}

TEST(Dominator, EveryEnumeratedDominatorSatisfiesIsDominator) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 8;
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.Bernoulli(0.2)) g.AddArc(u, v);
      }
    }
    for (const auto& dom : AllDominators(g, 1 << 10)) {
      EXPECT_TRUE(IsDominator(g, dom));
    }
  }
}

TEST(Dominator, CountMatchesBruteForceOnSmallGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 6;
    Digraph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.Bernoulli(0.25)) g.AddArc(u, v);
      }
    }
    // Brute force over all subsets.
    int expected = 0;
    for (int mask = 1; mask < (1 << n) - 1; ++mask) {
      std::vector<NodeId> subset;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) subset.push_back(i);
      }
      if (IsDominator(g, subset)) ++expected;
    }
    EXPECT_EQ(static_cast<int>(AllDominators(g, 1 << 12).size()), expected);
  }
}

}  // namespace
}  // namespace dislock
