// Tests for the safety analyzers: Theorem 1 sufficiency, the Theorem 2
// two-site decision procedure, the dominator-closure loop, the exhaustive
// oracles, and two-phase policies.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/paper.h"
#include "core/policy.h"
#include "core/safety.h"
#include "txn/builder.h"
#include "util/string_util.h"

namespace dislock {
namespace {

TEST(SitesSpanned, CountsDistinctSites) {
  PaperInstance inst = MakeFig5Instance();
  EXPECT_EQ(SitesSpanned(inst.system->txn(0), inst.system->txn(1)), 4);
  PaperInstance fig2 = MakeFig2Instance();
  EXPECT_EQ(SitesSpanned(fig2.system->txn(0), fig2.system->txn(1)), 1);
}

TEST(Theorem1, StronglyTwoPhasePairsAreAlwaysSafe) {
  for (int sites : {1, 2, 3, 5}) {
    DistributedDatabase db(sites);
    std::vector<EntityId> all;
    for (int e = 0; e < 6; ++e) {
      all.push_back(
          db.MustAddEntity(StrCat("e", e), e % sites));
    }
    Transaction t1 = MakeTwoPhaseTransaction(&db, "T1", all);
    Transaction t2 = MakeTwoPhaseTransaction(&db, "T2", all);
    EXPECT_TRUE(ValidateTransaction(t1).ok());
    EXPECT_TRUE(IsStronglyTwoPhase(t1));
    EXPECT_TRUE(IsTwoPhase(t1));
    EXPECT_TRUE(Theorem1Sufficient(t1, t2)) << sites << " sites";
    PairSafetyReport report = AnalyzePairSafety(t1, t2);
    EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
    EXPECT_EQ(report.method, DecisionMethod::kTheorem1);
  }
}

TEST(Theorem1, NoCommonEntitiesIsTriviallySafe) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionBuilder b1(&db, "T1");
  b1.Lock("x");
  b1.Unlock("x");
  TransactionBuilder b2(&db, "T2");
  b2.Lock("y");
  b2.Unlock("y");
  EXPECT_TRUE(Theorem1Sufficient(b1.Build(), b2.Build()));
  PairSafetyReport report = AnalyzePairSafety(b1.Build(), b2.Build());
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
}

TEST(TwoSite, RejectsPairsSpanningMoreSites) {
  PaperInstance inst = MakeFig5Instance();
  auto report = TwoSiteSafetyTest(inst.system->txn(0), inst.system->txn(1));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(TwoSite, UnsafeVerdictCarriesCertificate) {
  PaperInstance inst = MakeFig1Instance();
  auto report = TwoSiteSafetyTest(inst.system->txn(0), inst.system->txn(1));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->verdict, SafetyVerdict::kUnsafe);
  EXPECT_EQ(report->method, DecisionMethod::kTheorem2);
  ASSERT_TRUE(report->certificate.has_value());
  EXPECT_FALSE(report->certificate->schedule.events().empty());
}

TEST(Analyzer, WeakTwoPhaseDistributedIsNotEnough) {
  // Per-site 2PL without a global lock point: each site chain is
  // two-phase, but the sections are concurrent and the pair is unsafe
  // (this is exactly the Fig. 3 reconstruction).
  PaperInstance inst = MakeFig3Instance();
  EXPECT_TRUE(IsTwoPhase(inst.system->txn(0)));            // weak: yes
  EXPECT_FALSE(IsStronglyTwoPhase(inst.system->txn(0)));   // strong: no
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1));
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnsafe);
}

TEST(Analyzer, UnknownWhenAllFallbacksDisabled) {
  PaperInstance inst = MakeFig5Instance();
  SafetyOptions options;
  options.max_extension_pairs = 0;
  options.max_dominators = 0;  // closure loop sees an incomplete enumeration
  options.max_sat_decisions = 0;  // SAT-guided enumeration disabled too
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1), options);
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnknown);
}

TEST(Exhaustive, AgreesWithTheorem2OnPaperInstances) {
  for (auto make : {MakeFig1Instance, MakeFig2Instance, MakeFig3Instance}) {
    PaperInstance inst = make();
    auto exhaustive = ExhaustivePairSafety(inst.system->txn(0),
                                           inst.system->txn(1), 1 << 20);
    ASSERT_TRUE(exhaustive.ok());
    EXPECT_FALSE(exhaustive->safe) << inst.description;
    ASSERT_TRUE(exhaustive->certificate.has_value());
  }
}

TEST(Exhaustive, ScheduleOracleAgreesOnPaperInstances) {
  struct Case {
    PaperInstance inst;
    bool safe;
  };
  std::vector<Case> cases;
  cases.push_back({MakeFig1Instance(), false});
  cases.push_back({MakeFig3Instance(), false});
  for (auto& c : cases) {
    auto oracle = ExhaustiveScheduleSafety(*c.inst.system, 1 << 22);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    EXPECT_EQ(oracle->safe, c.safe) << c.inst.description;
  }
}

TEST(Exhaustive, BudgetIsReported) {
  PaperInstance inst = MakeFig5Instance();
  auto result = ExhaustivePairSafety(inst.system->txn(0),
                                     inst.system->txn(1), 10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Policy, MakeTwoPhaseTransactionIsValidEverywhere) {
  DistributedDatabase db(3);
  std::vector<EntityId> all;
  for (int e = 0; e < 7; ++e) {
    all.push_back(
        db.MustAddEntity(StrCat("e", e), e % 3));
  }
  Transaction t = MakeTwoPhaseTransaction(&db, "T", all);
  ValidateOptions strict;
  strict.require_update_between_locks = true;
  EXPECT_TRUE(ValidateTransaction(t, strict).ok())
      << ValidateTransaction(t, strict).ToString();
  EXPECT_TRUE(IsStronglyTwoPhase(t));
}

TEST(Policy, NonTwoPhaseIsDetected) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionBuilder b(&db, "T");
  b.Lock("x");
  b.Unlock("x");
  b.Lock("y");  // lock after an unlock: not two-phase
  b.Unlock("y");
  EXPECT_FALSE(IsTwoPhase(b.Build()));
  EXPECT_FALSE(IsStronglyTwoPhase(b.Build()));
}

TEST(Verdicts, NamesAreStable) {
  EXPECT_STREQ(SafetyVerdictName(SafetyVerdict::kSafe), "SAFE");
  EXPECT_STREQ(SafetyVerdictName(SafetyVerdict::kUnsafe), "UNSAFE");
  EXPECT_STREQ(SafetyVerdictName(SafetyVerdict::kUnknown), "UNKNOWN");
}

}  // namespace
}  // namespace dislock
