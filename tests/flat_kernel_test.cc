// Differential tests of the flat CSR + bitset kernels (graph/csr.h and the
// *Flat entry points) against the legacy pointer-heavy implementations, plus
// unit tests of the Arena allocator that backs them.
//
// The flat kernels promise BYTE-IDENTICAL results, not merely equivalent
// verdicts: component numberings, enumeration orders, Status messages and
// serialized reports must all match, because the engine's deterministic
// serial-scan replay (core/multi.h) folds those orders into user-visible
// counters.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/closure.h"
#include "core/conflict_graph.h"
#include "core/decision/context.h"
#include "core/incremental/engine.h"
#include "core/multi.h"
#include "core/report.h"
#include "cache/verdict_cache.h"
#include "graph/csr.h"
#include "graph/cycles.h"
#include "graph/digraph.h"
#include "graph/dominator.h"
#include "graph/reachability.h"
#include "graph/scc.h"
#include "sim/workload.h"
#include "txn/catalog.h"
#include "txn/system.h"
#include "util/arena.h"
#include "util/random.h"

namespace dislock {
namespace {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(Arena, GrowsThenRunsAllocationFreeAfterReset) {
  Arena arena(64);
  arena.AllocateArray<uint64_t>(100);  // forces growth past 64 bytes
  arena.AllocateArray<uint64_t>(100);
  EXPECT_GE(arena.BytesUsed(), 1600u);
  arena.Reset();
  EXPECT_EQ(arena.BytesUsed(), 0u);
  // Reset coalesced to the high-water mark: the same workload now fits in
  // the single retained block.
  EXPECT_EQ(arena.NumBlocks(), 1u);
  size_t capacity = arena.BytesCapacity();
  arena.AllocateArray<uint64_t>(100);
  arena.AllocateArray<uint64_t>(100);
  EXPECT_EQ(arena.NumBlocks(), 1u);
  EXPECT_EQ(arena.BytesCapacity(), capacity);
}

TEST(Arena, ZeroedAllocationIsZero) {
  Arena arena;
  uint64_t* p = arena.AllocateZeroed<uint64_t>(37);
  for (size_t i = 0; i < 37; ++i) EXPECT_EQ(p[i], 0u);
}

TEST(ArenaScope, RewindsNestedScopes) {
  Arena arena(1 << 12);
  arena.AllocateArray<int>(10);
  size_t outer_used = arena.BytesUsed();
  {
    ArenaScope scope(&arena);
    arena.AllocateArray<int>(1000);
    {
      ArenaScope inner(&arena);
      arena.AllocateArray<int>(50);
    }
    EXPECT_GT(arena.BytesUsed(), outer_used);
  }
  EXPECT_EQ(arena.BytesUsed(), outer_used);
  // The rewound bytes are handed out again — same block, no growth.
  size_t blocks = arena.NumBlocks();
  {
    ArenaScope scope(&arena);
    arena.AllocateArray<int>(1000);
  }
  EXPECT_EQ(arena.NumBlocks(), blocks);
}

// ---------------------------------------------------------------------------
// Graph-kernel differentials on random digraphs
// ---------------------------------------------------------------------------

Digraph RandomDigraph(int n, double arc_probability, bool allow_self_loops,
                      Rng* rng) {
  Digraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v && !allow_self_loops) continue;
      if (rng->Uniform(1000) < static_cast<uint64_t>(arc_probability * 1000)) {
        g.AddArc(u, v);
      }
    }
  }
  return g;
}

TEST(FlatKernel, CsrPreservesAdjacencyOrder) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 1 + static_cast<int>(rng.Uniform(12));
    Digraph g = RandomDigraph(n, 0.3, /*allow_self_loops=*/true, &rng);
    Arena arena;
    CsrGraph csr = BuildCsr(g, &arena);
    ASSERT_EQ(csr.NumNodes(), g.NumNodes());
    for (NodeId u = 0; u < n; ++u) {
      std::vector<NodeId> flat(csr.begin(u), csr.end(u));
      EXPECT_EQ(flat, g.OutNeighbors(u)) << "u=" << u;
    }
    CsrGraph rev = BuildReverseCsr(g, &arena);
    for (NodeId u = 0; u < n; ++u) {
      std::vector<NodeId> flat(rev.begin(u), rev.end(u));
      EXPECT_EQ(flat, g.InNeighbors(u)) << "u=" << u;
    }
  }
}

TEST(FlatKernel, SccMatchesLegacyNumberingExactly) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    int n = static_cast<int>(rng.Uniform(15));
    Digraph g = RandomDigraph(n, 0.25, /*allow_self_loops=*/true, &rng);
    SccResult legacy = StronglyConnectedComponents(g);
    Arena arena;
    FlatScc flat = SccOnCsr(BuildCsr(g, &arena), &arena);
    ASSERT_EQ(flat.num_components, legacy.num_components) << "trial " << trial;
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(flat.component[v], legacy.component[v])
          << "trial " << trial << " v=" << v;
    }
    EXPECT_EQ(IsStronglyConnectedFlat(g), IsStronglyConnected(g));
  }
}

TEST(FlatKernel, GroupSccMembersMatchesLegacyMemberLists) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    int n = 1 + static_cast<int>(rng.Uniform(12));
    Digraph g = RandomDigraph(n, 0.3, /*allow_self_loops=*/false, &rng);
    SccResult legacy = StronglyConnectedComponents(g);
    Arena arena;
    FlatScc flat = SccOnCsr(BuildCsr(g, &arena), &arena);
    FlatSccMembers members = GroupSccMembers(flat, n, &arena);
    for (int c = 0; c < flat.num_components; ++c) {
      std::vector<NodeId> flat_members(members.nodes + members.offsets[c],
                                       members.nodes + members.offsets[c + 1]);
      std::vector<NodeId> legacy_sorted = legacy.members[c];
      std::sort(legacy_sorted.begin(), legacy_sorted.end());
      EXPECT_EQ(flat_members, legacy_sorted) << "trial " << trial;
    }
  }
}

TEST(FlatKernel, ReachabilityFlatEqualsLegacy) {
  Rng rng(14);
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.Uniform(14));
    // Mix DAG-ish sparse and cyclic dense graphs: the legacy build uses the
    // topological sweep on DAGs and per-node BFS on cyclic graphs.
    double p = trial % 2 == 0 ? 0.15 : 0.4;
    Digraph g = RandomDigraph(n, p, /*allow_self_loops=*/true, &rng);
    Reachability flat(g, Reachability::Impl::kFlat);
    Reachability legacy(g, Reachability::Impl::kLegacy);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        EXPECT_EQ(flat.Reaches(u, v), legacy.Reaches(u, v))
            << "trial " << trial << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(FlatKernel, CyclesFlatEqualsLegacyIncludingOrder) {
  Rng rng(15);
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.Uniform(9));
    Digraph g = RandomDigraph(n, 0.3, /*allow_self_loops=*/true, &rng);
    EXPECT_EQ(HasCycleFlat(g), HasCycle(g)) << "trial " << trial;
    // Exact sequence equality: same cycles, same enumeration order. Also
    // exercised with a budget small enough to truncate.
    for (int64_t max_cycles : {int64_t{1} << 20, int64_t{5}}) {
      EXPECT_EQ(SimpleCyclesFlat(g, max_cycles), SimpleCycles(g, max_cycles))
          << "trial " << trial << " max_cycles=" << max_cycles;
    }
  }
}

TEST(FlatKernel, DominatorsFlatEqualsLegacyIncludingOrder) {
  Rng rng(16);
  for (int trial = 0; trial < 40; ++trial) {
    int n = static_cast<int>(rng.Uniform(10));
    Digraph g = RandomDigraph(n, 0.3, /*allow_self_loops=*/false, &rng);
    auto legacy = FindDominator(g);
    auto flat = FindDominatorFlat(g);
    ASSERT_EQ(flat.ok(), legacy.ok()) << "trial " << trial;
    if (flat.ok()) {
      EXPECT_EQ(flat.value(), legacy.value()) << "trial " << trial;
    } else {
      EXPECT_EQ(flat.status().ToString(), legacy.status().ToString());
    }
    for (int64_t max_count : {int64_t{1} << 16, int64_t{3}}) {
      EXPECT_EQ(AllDominatorsFlat(g, max_count), AllDominators(g, max_count))
          << "trial " << trial << " max_count=" << max_count;
    }
  }
}

// ---------------------------------------------------------------------------
// Closure and fingerprint differentials on random transaction pairs
// ---------------------------------------------------------------------------

void ExpectSameClosure(const Transaction& t1, const Transaction& t2,
                       const std::vector<EntityId>& x_set, const char* what) {
  auto legacy = CloseWithRespectTo(t1, t2, x_set);
  auto flat = CloseWithRespectToFlat(t1, t2, x_set);
  ASSERT_EQ(flat.ok(), legacy.ok()) << what;
  if (!flat.ok()) {
    EXPECT_EQ(flat.status().ToString(), legacy.status().ToString()) << what;
    return;
  }
  EXPECT_EQ(flat.value().precedences_added, legacy.value().precedences_added)
      << what;
  EXPECT_EQ(flat.value().iterations, legacy.value().iterations) << what;
  EXPECT_EQ(flat.value().t1.ToString(), legacy.value().t1.ToString()) << what;
  EXPECT_EQ(flat.value().t2.ToString(), legacy.value().t2.ToString()) << what;
}

TEST(FlatKernel, ClosureFlatEqualsLegacyOnRandomPairs) {
  Rng rng(17);
  int interesting = 0;
  for (int trial = 0; trial < 60; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + static_cast<int>(rng.Uniform(3));
    params.num_entities = 3 + static_cast<int>(rng.Uniform(5));
    params.num_transactions = 2;
    params.lock_probability = 0.8;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(4));
    Workload w = MakeRandomWorkload(params, &rng);
    const Transaction& t1 = w.system->txn(0);
    const Transaction& t2 = w.system->txn(1);
    std::vector<EntityId> common = ConflictingEntities(t1, t2);
    if (common.empty()) continue;
    ++interesting;
    // Candidate X: each singleton, a prefix, the full common set, a set
    // with a duplicate, and one with a non-common entity.
    for (EntityId e : common) {
      ExpectSameClosure(t1, t2, {e}, "singleton");
    }
    if (common.size() >= 2) {
      std::vector<EntityId> prefix(common.begin(), common.end() - 1);
      ExpectSameClosure(t1, t2, prefix, "prefix");
      ExpectSameClosure(t1, t2, {common[0], common[0]}, "duplicate");
    }
    ExpectSameClosure(t1, t2, common, "full set");
    // A valid database entity that is not commonly locked, if one exists.
    for (EntityId e = 0; e < params.num_entities; ++e) {
      if (!std::binary_search(common.begin(), common.end(), e)) {
        ExpectSameClosure(t1, t2, {common[0], e}, "non-common");
        break;
      }
    }
  }
  // The generator parameters above must actually produce conflicting pairs.
  EXPECT_GT(interesting, 10);
}

TEST(FlatKernel, PairFingerprintFlatIsByteIdentical) {
  Rng rng(18);
  for (int trial = 0; trial < 60; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + static_cast<int>(rng.Uniform(4));
    params.num_entities = 2 + static_cast<int>(rng.Uniform(7));
    params.num_transactions = 2;
    params.lock_probability = 0.7;
    params.shared_probability = trial % 3 == 0 ? 0.3 : 0.0;
    params.update_probability = trial % 2 == 0 ? 0.2 : 0.0;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(4));
    Workload w = MakeRandomWorkload(params, &rng);
    const Transaction& t1 = w.system->txn(0);
    const Transaction& t2 = w.system->txn(1);
    EXPECT_EQ(PairFingerprintFlat(t1, t2), PairFingerprint(t1, t2))
        << "trial " << trial;
    EXPECT_EQ(PairFingerprintFlat(t2, t1), PairFingerprint(t2, t1))
        << "trial " << trial << " (swapped)";
  }
}

// ---------------------------------------------------------------------------
// Whole-engine differential: flat vs legacy, serial vs 4 threads, the
// serialized report must be byte-identical in every configuration.
// ---------------------------------------------------------------------------

EngineConfig GridConfig(bool flat, int threads, bool cache) {
  EngineConfig config;
  config.max_cycles = 1 << 10;
  config.max_extension_pairs = 1 << 14;
  config.use_flat_kernel = flat;
  config.num_threads = threads;
  config.enable_cache = cache;
  return config;
}

TEST(FlatKernel, MultiReportsByteIdenticalAcrossKernelAndThreads) {
  Rng rng(19);
  for (int trial = 0; trial < 12; ++trial) {
    WorkloadParams params;
    params.num_sites = 1 + static_cast<int>(rng.Uniform(3));
    params.num_entities = 3 + static_cast<int>(rng.Uniform(5));
    params.num_transactions = 2 + static_cast<int>(rng.Uniform(4));
    params.lock_probability = 0.6;
    params.cross_site_arcs = static_cast<int>(rng.Uniform(3));
    Workload w = MakeRandomWorkload(params, &rng);
    for (bool cache : {false, true}) {
      MultiSafetyReport baseline =
          AnalyzeMultiSafety(*w.system, GridConfig(false, 1, cache));
      std::string expected = MultiReportToJson(baseline, *w.system);
      for (bool flat : {true, false}) {
        for (int threads : {1, 4}) {
          if (!flat && threads == 1 && !cache) continue;  // the baseline
          MultiSafetyReport report =
              AnalyzeMultiSafety(*w.system, GridConfig(flat, threads, cache));
          EXPECT_EQ(MultiReportToJson(report, *w.system), expected)
              << "trial " << trial << " flat=" << flat
              << " threads=" << threads << " cache=" << cache;
        }
      }
    }
  }
}

TEST(FlatKernel, IncrementalEngineMatchesAcrossKernels) {
  Rng rng(20);
  WorkloadParams params;
  params.num_sites = 2;
  params.num_entities = 6;
  params.num_transactions = 5;
  params.lock_probability = 0.6;
  Workload w = MakeRandomWorkload(params, &rng);

  auto run = [&](bool flat, bool cache) {
    TransactionCatalog catalog(w.db.get());
    for (int i = 0; i < w.system->NumTransactions(); ++i) {
      EXPECT_TRUE(catalog.Add(w.system->txn(i)).ok());
    }
    EngineConfig config = GridConfig(flat, 1, cache);
    EngineContext ctx(config);
    IncrementalSafetyEngine engine(&catalog, &ctx);
    MultiSafetyReport first = engine.Check();
    MultiSafetyReport second = engine.Check();  // exercises the reuse path
    first.delta.reset();
    second.delta.reset();
    CatalogSnapshot snap = catalog.Snapshot();
    return std::make_pair(MultiReportToJson(first, snap.View()),
                          MultiReportToJson(second, snap.View()));
  };
  for (bool cache : {false, true}) {
    auto [flat_first, flat_second] = run(/*flat=*/true, cache);
    auto [legacy_first, legacy_second] = run(/*flat=*/false, cache);
    EXPECT_EQ(flat_first, legacy_first) << "cache=" << cache;
    EXPECT_EQ(flat_second, legacy_second) << "cache=" << cache;
    EXPECT_EQ(flat_first, flat_second) << "cache=" << cache;
  }
}

// The flat kernels borrow the caller thread's ScratchArena via ArenaScope;
// after an analysis returns, the arena's bump state must be fully rewound —
// a leak here would couple successive checks' scratch memory.
TEST(FlatKernel, ScratchArenaStateRewindsBetweenChecks) {
  Rng rng(21);
  WorkloadParams params;
  params.num_sites = 2;
  params.num_entities = 5;
  params.num_transactions = 4;
  Workload w = MakeRandomWorkload(params, &rng);

  Arena* arena = ScratchArena();
  arena->Reset();
  EngineConfig config = GridConfig(/*flat=*/true, /*threads=*/1,
                                   /*cache=*/false);
  MultiSafetyReport first = AnalyzeMultiSafety(*w.system, config);
  EXPECT_EQ(arena->BytesUsed(), 0u)
      << "flat kernels leaked arena bytes past their scopes";
  // Steady state: a second identical analysis reuses the grown capacity
  // (no new blocks) and reproduces the report byte for byte.
  arena->Reset();
  size_t capacity = arena->BytesCapacity();
  MultiSafetyReport second = AnalyzeMultiSafety(*w.system, config);
  EXPECT_EQ(arena->BytesUsed(), 0u);
  EXPECT_EQ(arena->NumBlocks(), 1u);
  EXPECT_EQ(arena->BytesCapacity(), capacity);
  EXPECT_EQ(MultiReportToJson(first, *w.system),
            MultiReportToJson(second, *w.system));
}

}  // namespace
}  // namespace dislock
