// Unit tests for the transaction model: database, steps, builder,
// validation (Section 2 rules), linear extensions.

#include <gtest/gtest.h>

#include "txn/builder.h"
#include "txn/linear_extension.h"
#include "txn/system.h"
#include "txn/validate.h"
#include "util/random.h"
#include "util/string_util.h"

namespace dislock {
namespace {

// ----------------------------------------------------------------- Database

TEST(Database, AddAndLookup) {
  DistributedDatabase db(2);
  EntityId x = db.MustAddEntity("x", 0);
  EntityId y = db.MustAddEntity("y", 1);
  EXPECT_EQ(db.NumEntities(), 2);
  EXPECT_EQ(db.SiteOf(x), 0);
  EXPECT_EQ(db.SiteOf(y), 1);
  EXPECT_EQ(db.NameOf(x), "x");
  ASSERT_TRUE(db.Find("y").ok());
  EXPECT_EQ(db.Find("y").value(), y);
  EXPECT_FALSE(db.Find("zzz").ok());
}

TEST(Database, RejectsBadEntities) {
  DistributedDatabase db(2);
  EXPECT_FALSE(db.AddEntity("", 0).ok());
  EXPECT_FALSE(db.AddEntity("x", 2).ok());   // site out of range
  EXPECT_FALSE(db.AddEntity("x", -1).ok());
  ASSERT_TRUE(db.AddEntity("x", 0).ok());
  EXPECT_FALSE(db.AddEntity("x", 1).ok());   // duplicate name
}

TEST(Database, EntitiesAtSite) {
  DistributedDatabase db(2);
  db.MustAddEntity("a", 0);
  db.MustAddEntity("b", 1);
  db.MustAddEntity("c", 0);
  EXPECT_EQ(db.EntitiesAt(0).size(), 2u);
  EXPECT_EQ(db.EntitiesAt(1).size(), 1u);
}

// -------------------------------------------------------------- Transaction

TEST(Transaction, StepsAndPrecedence) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  Transaction t(&db, "T");
  StepId l = t.AddStep(StepKind::kLock, 0);
  StepId u = t.AddStep(StepKind::kUpdate, 0);
  StepId ul = t.AddStep(StepKind::kUnlock, 0);
  t.AddPrecedence(l, u);
  t.AddPrecedence(u, ul);
  EXPECT_TRUE(t.Precedes(l, ul));   // transitive
  EXPECT_FALSE(t.Precedes(ul, l));
  EXPECT_FALSE(t.Precedes(l, l));   // strict
  EXPECT_TRUE(t.PrecedesOrEqual(l, l));
  EXPECT_EQ(t.LockStep(0), l);
  EXPECT_EQ(t.UnlockStep(0), ul);
  EXPECT_EQ(t.UpdateSteps(0).size(), 1u);
  EXPECT_EQ(t.LockedEntities().size(), 1u);
}

TEST(Transaction, MutationInvalidatesReachability) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  Transaction t(&db);
  StepId a = t.AddStep(StepKind::kLock, 0);
  StepId b = t.AddStep(StepKind::kLock, 1);
  EXPECT_TRUE(t.Concurrent(a, b));
  t.AddPrecedence(a, b);
  EXPECT_TRUE(t.Precedes(a, b));
}

TEST(Transaction, StepStringMatchesPaperNotation) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  Transaction t(&db);
  StepId l = t.AddStep(StepKind::kLock, 0);
  StepId u = t.AddStep(StepKind::kUpdate, 0);
  StepId ul = t.AddStep(StepKind::kUnlock, 0);
  EXPECT_EQ(t.StepString(l), "Lx");
  EXPECT_EQ(t.StepString(u), "x");
  EXPECT_EQ(t.StepString(ul), "Ux");
}

// ------------------------------------------------------------------ Builder

TEST(Builder, AutoSiteChainOrdersSameSiteSteps) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionBuilder b(&db, "T");
  StepId lx = b.Lock("x");
  StepId ly = b.Lock("y");
  StepId ux = b.Unlock("x");
  StepId uy = b.Unlock("y");
  Transaction t = b.Build();
  EXPECT_TRUE(t.Precedes(lx, ux));  // chained at site 0
  EXPECT_TRUE(t.Precedes(ly, uy));  // chained at site 1
  EXPECT_TRUE(t.Concurrent(lx, ly));
  EXPECT_TRUE(t.Concurrent(ux, uy));
}

TEST(Builder, LockUpdateUnlockProducesValidSection) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionBuilder b(&db);
  b.LockUpdateUnlock("x");
  ValidateOptions strict;
  strict.require_update_between_locks = true;
  EXPECT_TRUE(b.BuildValidated(strict).ok());
}

TEST(Builder, BuildValidatedReportsViolations) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionBuilder b(&db, "T", /*auto_site_chain=*/false);
  b.Lock("x");  // lock without unlock
  auto result = b.BuildValidated();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidModel);
}

// --------------------------------------------------------------- Validation

TEST(Validate, AcceptsWellFormedDistributedTransaction) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionBuilder b(&db);
  b.LockUpdateUnlock("x");
  b.LockUpdateUnlock("y");
  EXPECT_TRUE(ValidateTransaction(b.Build()).ok());
}

TEST(Validate, RejectsCyclicPrecedence) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  Transaction t(&db);
  StepId l = t.AddStep(StepKind::kLock, 0);
  StepId u = t.AddStep(StepKind::kUnlock, 0);
  t.AddPrecedence(l, u);
  t.AddPrecedence(u, l);
  EXPECT_FALSE(ValidateTransaction(t).ok());
}

TEST(Validate, RejectsDoubleLock) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  Transaction t(&db);
  StepId l1 = t.AddStep(StepKind::kLock, 0);
  StepId l2 = t.AddStep(StepKind::kLock, 0);
  StepId u = t.AddStep(StepKind::kUnlock, 0);
  t.AddPrecedence(l1, l2);
  t.AddPrecedence(l2, u);
  EXPECT_FALSE(ValidateTransaction(t).ok());
}

TEST(Validate, RejectsUnlockBeforeLock) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  Transaction t(&db);
  StepId u = t.AddStep(StepKind::kUnlock, 0);
  StepId l = t.AddStep(StepKind::kLock, 0);
  t.AddPrecedence(u, l);
  EXPECT_FALSE(ValidateTransaction(t).ok());
}

TEST(Validate, RejectsConcurrentStepsAtOneSite) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);  // same site
  TransactionBuilder b(&db, "T", /*auto_site_chain=*/false);
  StepId lx = b.Lock("x");
  StepId ux = b.Unlock("x");
  StepId ly = b.Lock("y");
  StepId uy = b.Unlock("y");
  b.Edge(lx, ux).Edge(ly, uy);  // x and y sections concurrent, same site
  auto status = ValidateTransaction(b.Build());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not ordered"), std::string::npos);
}

TEST(Validate, RejectsUnlockedUpdateByDefault) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  Transaction t(&db);
  t.AddStep(StepKind::kUpdate, 0);
  EXPECT_FALSE(ValidateTransaction(t).ok());
  ValidateOptions lenient;
  lenient.forbid_unlocked_updates = false;
  EXPECT_TRUE(ValidateTransaction(t, lenient).ok());
}

TEST(Validate, RejectsUpdateOutsideItsLockSection) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  Transaction t(&db);
  StepId l = t.AddStep(StepKind::kLock, 0);
  StepId ul = t.AddStep(StepKind::kUnlock, 0);
  StepId up = t.AddStep(StepKind::kUpdate, 0);
  t.AddPrecedence(l, ul);
  t.AddPrecedence(ul, up);  // update after unlock
  EXPECT_FALSE(ValidateTransaction(t).ok());
}

TEST(Validate, StrictModeRequiresUpdateBetweenLocks) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionBuilder b(&db);
  b.Lock("x");
  b.Unlock("x");
  EXPECT_TRUE(ValidateTransaction(b.Build()).ok());  // figures omit updates
  ValidateOptions strict;
  strict.require_update_between_locks = true;
  EXPECT_FALSE(ValidateTransaction(b.Build(), strict).ok());
}

// -------------------------------------------------------- Linear extensions

TEST(LinearExtensions, ChainHasExactlyOne) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionBuilder b(&db);
  b.Lock("x");
  b.Update("x");
  b.Unlock("x");
  EXPECT_EQ(CountLinearExtensions(b.Build(), 100), 1);
}

TEST(LinearExtensions, AntichainHasFactorial) {
  DistributedDatabase db(4);
  for (int i = 0; i < 4; ++i) {
    db.MustAddEntity(StrCat("e", i), i);
  }
  Transaction t(&db);
  for (int i = 0; i < 4; ++i) t.AddStep(StepKind::kLock, i);
  EXPECT_EQ(CountLinearExtensions(t, 100), 24);  // 4!
  EXPECT_EQ(CountLinearExtensions(t, 10), 10);   // capped
}

TEST(LinearExtensions, EnumerationVisitsValidExtensions) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionBuilder b(&db);
  b.Lock("x");
  b.Lock("y");
  b.Unlock("x");
  b.Unlock("y");
  Transaction t = b.Build();
  int count = 0;
  Status st = EnumerateLinearExtensions(
      t, 1000, [&](const std::vector<StepId>& order) {
        EXPECT_TRUE(IsLinearExtension(t, order));
        ++count;
        return true;
      });
  EXPECT_TRUE(st.ok());
  // Two independent 2-chains: C(4,2) = 6 interleavings.
  EXPECT_EQ(count, 6);
}

TEST(LinearExtensions, RandomExtensionIsValid) {
  DistributedDatabase db(3);
  for (int i = 0; i < 3; ++i) {
    db.MustAddEntity(StrCat("e", i), i);
  }
  TransactionBuilder b(&db);
  for (int i = 0; i < 3; ++i) {
    b.Lock(StrCat("e", i));
    b.Unlock(StrCat("e", i));
  }
  Transaction t = b.Build();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(IsLinearExtension(t, RandomLinearExtension(t, &rng)));
  }
}

TEST(LinearExtensions, LinearizeBuildsChain) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionBuilder b(&db);
  StepId lx = b.Lock("x");
  StepId ly = b.Lock("y");
  StepId ux = b.Unlock("x");
  StepId uy = b.Unlock("y");
  Transaction t = b.Build();
  auto lin = Linearize(t, {lx, ly, ux, uy});
  ASSERT_TRUE(lin.ok());
  EXPECT_TRUE(lin->Precedes(ly, ux));  // new chain constraint
  EXPECT_EQ(CountLinearExtensions(*lin, 10), 1);
  // Rejects non-extensions.
  EXPECT_FALSE(Linearize(t, {ux, lx, ly, uy}).ok());
  EXPECT_FALSE(Linearize(t, {lx, ly, ux}).ok());
}

TEST(LinearExtensions, IsLinearExtensionRejectsDuplicates) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionBuilder b(&db);
  StepId l = b.Lock("x");
  b.Unlock("x");
  Transaction t = b.Build();
  EXPECT_FALSE(IsLinearExtension(t, {l, l}));
}

}  // namespace
}  // namespace dislock
