// Edge cases across the analyzers: degenerate systems, single/no common
// entities, nested rectangles, empty transactions, centralized pairs.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/certificate.h"
#include "core/deadlock.h"
#include "core/multi.h"
#include "core/safety.h"
#include "geometry/picture.h"
#include "sim/scheduler.h"
#include "txn/builder.h"

namespace dislock {
namespace {

TEST(EdgeCases, EmptyTransactionsAreSafe) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  Transaction t1(&db, "T1");
  Transaction t2(&db, "T2");
  PairSafetyReport report = AnalyzePairSafety(t1, t2);
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
  EXPECT_EQ(report.d.graph.NumNodes(), 0);

  TransactionSystem system(&db);
  system.Add(t1);
  system.Add(t2);
  auto deadlock = AnalyzeDeadlockFreedom(system);
  ASSERT_TRUE(deadlock.ok());
  EXPECT_TRUE(deadlock->deadlock_free);
}

TEST(EdgeCases, SingleCommonEntityIsAlwaysSafe) {
  // |V| = 1: nothing to separate; exhaustively verified.
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("a", 1);
  db.MustAddEntity("b", 1);
  TransactionBuilder b1(&db, "T1");
  b1.LockUpdateUnlock("x");
  b1.LockUpdateUnlock("a");
  TransactionBuilder b2(&db, "T2");
  b2.LockUpdateUnlock("b");
  b2.LockUpdateUnlock("x");
  Transaction t1 = b1.Build();
  Transaction t2 = b2.Build();
  PairSafetyReport report = AnalyzePairSafety(t1, t2);
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
  EXPECT_EQ(report.d.graph.NumNodes(), 1);

  TransactionSystem system(&db);
  system.Add(t1);
  system.Add(t2);
  auto oracle = ExhaustiveScheduleSafety(system, 1 << 20);
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(oracle->safe);
}

TEST(EdgeCases, NestedRectanglesCentralized) {
  // t1 nests y's section inside x's; t2 nests x inside y. Classic unsafe?
  // D arcs: (x,y): Lx <1 Uy yes; Ly <2 Ux yes -> arc. (y,x): Ly <1 Ux yes;
  // Lx <2 Uy yes -> arc. Strongly connected -> SAFE.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionBuilder b1(&db, "t1");
  b1.Lock("x");
  b1.Lock("y");
  b1.Unlock("y");
  b1.Unlock("x");
  TransactionBuilder b2(&db, "t2");
  b2.Lock("y");
  b2.Lock("x");
  b2.Unlock("x");
  b2.Unlock("y");
  PairSafetyReport report = AnalyzePairSafety(b1.Build(), b2.Build());
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);

  // ... but it deadlocks (safety and deadlock freedom are orthogonal).
  TransactionSystem system(&db);
  system.Add(b1.Build());
  system.Add(b2.Build());
  auto deadlock = AnalyzeDeadlockFreedom(system);
  ASSERT_TRUE(deadlock.ok());
  EXPECT_FALSE(deadlock->deadlock_free);
}

TEST(EdgeCases, CentralizedPartialOrdersAreChains) {
  // With one site, validity forces a total order; the analyzer goes through
  // the theorem-2 branch and matches the schedule oracle.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  db.MustAddEntity("z", 0);
  TransactionBuilder b1(&db, "t1");
  b1.Lock("x");
  b1.Unlock("x");
  b1.Lock("y");
  b1.Unlock("y");
  b1.Lock("z");
  b1.Unlock("z");
  TransactionBuilder b2(&db, "t2");
  b2.Lock("z");
  b2.Unlock("z");
  b2.Lock("y");
  b2.Unlock("y");
  b2.Lock("x");
  b2.Unlock("x");
  PairSafetyReport report = AnalyzePairSafety(b1.Build(), b2.Build());
  EXPECT_EQ(report.sites_spanned, 1);
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnsafe);
  ASSERT_TRUE(report.certificate.has_value());

  TransactionSystem system(&db);
  system.Add(b1.Build());
  system.Add(b2.Build());
  auto oracle = ExhaustiveScheduleSafety(system, 1 << 20);
  ASSERT_TRUE(oracle.ok());
  EXPECT_FALSE(oracle->safe);
}

TEST(EdgeCases, ThreeTransactionConflictCycleIsReported) {
  DistributedDatabase db(1);
  db.MustAddEntity("a", 0);
  db.MustAddEntity("b", 0);
  db.MustAddEntity("c", 0);
  TransactionSystem system(&db);
  auto add_seq = [&](const char* name, const char* e1, const char* e2) {
    TransactionBuilder b(&db, name);
    b.LockUpdateUnlock(e1);
    b.LockUpdateUnlock(e2);
    system.Add(b.Build());
  };
  add_seq("T1", "a", "b");
  add_seq("T2", "b", "c");
  add_seq("T3", "c", "a");
  // Handcraft the cyclic schedule: T1's a, T2's b, T3's c, then the
  // second sections in the same order.
  Schedule h;
  for (StepId s = 0; s < 3; ++s) h.Append(0, s);
  for (StepId s = 0; s < 3; ++s) h.Append(1, s);
  for (StepId s = 0; s < 3; ++s) h.Append(2, s);
  for (StepId s = 3; s < 6; ++s) h.Append(0, s);
  for (StepId s = 3; s < 6; ++s) h.Append(1, s);
  for (StepId s = 3; s < 6; ++s) h.Append(2, s);
  ASSERT_TRUE(CheckScheduleLegal(system, h).ok());
  SerializabilityAnalysis analysis = AnalyzeSerializability(system, h);
  EXPECT_FALSE(analysis.serializable);
  EXPECT_EQ(analysis.conflict_cycle.size(), 3u);
}

TEST(EdgeCases, UpdatesDoNotAffectSafety) {
  // Per [17-19], update steps inside lock sections are irrelevant to
  // safety: verdicts match with and without them.
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  auto build = [&](bool with_updates, const char* name) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    if (with_updates) b.Update("x");
    b.Unlock("x");
    b.Lock("y");
    if (with_updates) b.Update("y");
    b.Unlock("y");
    return b.Build();
  };
  PairSafetyReport with = AnalyzePairSafety(build(true, "T1"),
                                            build(true, "T2"));
  PairSafetyReport without = AnalyzePairSafety(build(false, "T1"),
                                               build(false, "T2"));
  EXPECT_EQ(with.verdict, without.verdict);
  EXPECT_EQ(with.method, without.method);
}

TEST(EdgeCases, CertificateForNonDominatorFails) {
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  TransactionBuilder b1(&db, "T1");
  b1.LockUpdateUnlock("x");
  b1.LockUpdateUnlock("y");
  TransactionBuilder b2(&db, "T2");
  b2.LockUpdateUnlock("x");
  b2.LockUpdateUnlock("y");
  EntityId x = db.Find("x").value();
  EntityId y = db.Find("y").value();
  // {x, y} = V is not a proper subset.
  auto cert = BuildUnsafetyCertificate(b1.Build(), b2.Build(), {x, y});
  EXPECT_FALSE(cert.ok());
}

TEST(EdgeCases, MultiSafetyOnSingleTransaction) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionSystem system(&db);
  TransactionBuilder b(&db, "T1");
  b.LockUpdateUnlock("x");
  system.Add(b.Build());
  MultiSafetyReport report = AnalyzeMultiSafety(system);
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
  EXPECT_EQ(report.pairs_checked, 0);
}

TEST(EdgeCases, SimulatorHandlesSingleStepTransactions) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  TransactionSystem system(&db);
  Transaction t(&db, "T");
  // A single unlocked update (lenient mode; legal to simulate).
  t.AddStep(StepKind::kUpdate, 0);
  system.Add(t);
  Rng rng(1);
  RunResult run = SimulateRun(system, &rng);
  EXPECT_FALSE(run.deadlocked);
  EXPECT_EQ(run.steps_executed, 1);
}

}  // namespace
}  // namespace dislock
