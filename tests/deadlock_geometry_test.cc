// The geometric deadlock test for totally ordered pairs, cross-validated
// against the general reachable-state search of core/deadlock.h.

#include <gtest/gtest.h>

#include "core/deadlock.h"
#include "geometry/deadlock_geometry.h"
#include "sim/workload.h"
#include "txn/builder.h"

namespace dislock {
namespace {

TEST(GeometricDeadlock, OpposedTotalOrdersDeadlock) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  {
    TransactionBuilder b(&db, "t1");
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(&db, "t2");
    b.Lock("y");
    b.Lock("x");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  auto pic = PairPicture::Make(system.txn(0), system.txn(1));
  ASSERT_TRUE(pic.ok());
  auto dead = FindGeometricDeadlock(*pic);
  ASSERT_TRUE(dead.has_value());
  // The trap: t1 executed Lx, t2 executed Ly.
  EXPECT_EQ(dead->progress1, 1);
  EXPECT_EQ(dead->progress2, 1);
  // The prefix is a legal partial run whose waits-for graph cycles.
  std::vector<std::vector<StepId>> executed(2);
  for (const SysStep& ev : dead->prefix.events()) {
    executed[ev.txn].push_back(ev.step);
  }
  auto waits = BuildWaitsForGraph(system, executed);
  ASSERT_TRUE(waits.ok());
  EXPECT_TRUE(waits->HasArc(0, 1));
  EXPECT_TRUE(waits->HasArc(1, 0));
}

TEST(GeometricDeadlock, NestedSectionsAreDeadlockFree) {
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  for (const char* name : {"t1", "t2"}) {
    TransactionBuilder b(&db, name);
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  auto pic = PairPicture::Make(system.txn(0), system.txn(1));
  ASSERT_TRUE(pic.ok());
  EXPECT_FALSE(FindGeometricDeadlock(*pic).has_value());
}

TEST(GeometricDeadlock, AgreesWithStateSearchOnRandomTotalPairs) {
  Rng rng(2027);
  int deadlocking = 0;
  int free_ = 0;
  for (int trial = 0; trial < 120; ++trial) {
    Workload w = MakeRandomTotalOrderPair(3, &rng);
    auto pic = PairPicture::Make(w.system->txn(0), w.system->txn(1));
    ASSERT_TRUE(pic.ok());
    auto geometric = FindGeometricDeadlock(*pic);
    auto general = AnalyzeDeadlockFreedom(*w.system);
    ASSERT_TRUE(general.ok());
    EXPECT_EQ(geometric.has_value(), !general->deadlock_free)
        << w.system->ToString();
    (geometric.has_value() ? deadlocking : free_) += 1;
    if (geometric.has_value()) {
      // The prefix must itself be a legal partial execution: replaying it
      // through the waits-for builder must not fail.
      std::vector<std::vector<StepId>> executed(2);
      for (const SysStep& ev : geometric->prefix.events()) {
        executed[ev.txn].push_back(ev.step);
      }
      EXPECT_TRUE(BuildWaitsForGraph(*w.system, executed).ok());
    }
  }
  EXPECT_GT(deadlocking, 10);
  EXPECT_GT(free_, 10);
}

}  // namespace
}  // namespace dislock
