// Tests for the persistent tier-2 verdict store (cache/verdict_store.h):
// the roundtrip through disk, the pending-buffer dedup rules, every
// corruption-recovery path (torn tails, bit flips, stale headers, zero-byte
// and garbage files — all must warm-load cleanly as empty or as the valid
// prefix, never poison a verdict), the two-appenders-one-directory
// protocol, tier-1 fallthrough/promotion, and the byte-identity contract:
// enabling the store never changes a normalized report at any warmth or
// thread count.

#include "cache/verdict_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "cache/verdict_cache.h"
#include "core/multi.h"
#include "core/report.h"
#include "core/safety.h"
#include "sim/workload.h"
#include "txn/builder.h"
#include "txn/database.h"
#include "util/random.h"

namespace dislock {
namespace {

// Fresh per-test directory under gtest's temp root. Tests that reopen the
// same store use the same name across opens; a leading remove keeps runs
// independent.
std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/verdict_store_test_" + name;
  for (const char* file :
       {cache::kVerdictLogFileName, cache::kVerdictIndexFileName,
        cache::kVerdictLockFileName}) {
    std::remove((dir + "/" + file).c_str());
  }
  return dir;
}

std::string LogPath(const std::string& dir) {
  return dir + "/" + cache::kVerdictLogFileName;
}

std::string IdxPath(const std::string& dir) {
  return dir + "/" + cache::kVerdictIndexFileName;
}

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void TruncateFile(const std::string& path, size_t size) {
  std::vector<char> bytes = ReadFile(path);
  ASSERT_LE(size, bytes.size());
  bytes.resize(size);
  WriteFile(path, bytes);
}

CachedPairVerdict SafeVerdict(int sites = 2) {
  CachedPairVerdict v;
  v.verdict = SafetyVerdict::kSafe;
  v.method = DecisionMethod::kTheorem1;
  v.sites_spanned = sites;
  return v;
}

CachedPairVerdict UnsafeVerdict() {
  CachedPairVerdict v;
  v.verdict = SafetyVerdict::kUnsafe;
  v.method = DecisionMethod::kExhaustive;
  v.sites_spanned = 3;
  return v;
}

void ExpectSame(const std::optional<CachedPairVerdict>& got,
                const CachedPairVerdict& want) {
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->verdict, want.verdict);
  EXPECT_EQ(got->method, want.method);
  EXPECT_EQ(got->sites_spanned, want.sites_spanned);
}

// ---- Basic lifecycle ------------------------------------------------------

TEST(VerdictStore, ClosedStoreIsInert) {
  cache::VerdictStore store;
  EXPECT_FALSE(store.is_open());
  EXPECT_FALSE(store.Lookup("fp").has_value());
  store.Put("fp", SafeVerdict());
  EXPECT_EQ(store.pending_records(), 0);
  EXPECT_EQ(store.Flush(), 0);
  cache::VerdictStore::Stats stats = store.stats();
  EXPECT_EQ(stats.disk_hits, 0);
  EXPECT_EQ(stats.disk_misses, 0);
}

TEST(VerdictStore, RoundTripAcrossReopen) {
  const std::string dir = FreshDir("roundtrip");
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    EXPECT_EQ(store.disk_records(), 0);
    store.Put("fp-safe", SafeVerdict());
    store.Put("fp-unsafe", UnsafeVerdict());
    EXPECT_EQ(store.pending_records(), 2);
    EXPECT_EQ(store.Flush(), 2);
    EXPECT_EQ(store.pending_records(), 0);
    EXPECT_EQ(store.disk_records(), 2);
    EXPECT_EQ(store.stats().records_flushed, 2);
  }
  cache::VerdictStore reopened;
  ASSERT_TRUE(reopened.Open(dir));
  EXPECT_EQ(reopened.disk_records(), 2);
  EXPECT_EQ(reopened.stats().records_loaded, 2);
  EXPECT_EQ(reopened.stats().records_dropped, 0);
  ExpectSame(reopened.Lookup("fp-safe"), SafeVerdict());
  ExpectSame(reopened.Lookup("fp-unsafe"), UnsafeVerdict());
  EXPECT_FALSE(reopened.Lookup("fp-absent").has_value());
  cache::VerdictStore::Stats stats = reopened.stats();
  EXPECT_EQ(stats.disk_hits, 2);
  EXPECT_EQ(stats.disk_misses, 1);
}

TEST(VerdictStore, PendingBufferServesAndDedups) {
  const std::string dir = FreshDir("pending");
  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(dir));
  store.Put("fp", SafeVerdict());
  store.Put("fp", UnsafeVerdict());  // first insert wins, like tier 1
  EXPECT_EQ(store.pending_records(), 1);
  ExpectSame(store.Lookup("fp"), SafeVerdict());  // served before any Flush
  EXPECT_EQ(store.stats().disk_hits, 1);

  EXPECT_EQ(store.Flush(), 1);
  store.Put("fp", UnsafeVerdict());  // already durable: not re-buffered
  EXPECT_EQ(store.pending_records(), 0);
  EXPECT_EQ(store.Flush(), 0);
  EXPECT_EQ(store.disk_records(), 1);
  ExpectSame(store.Lookup("fp"), SafeVerdict());
}

TEST(VerdictStore, SitesSpannedSurvivesTheU16Encoding) {
  const std::string dir = FreshDir("sites");
  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(dir));
  store.Put("fp-wide", SafeVerdict(/*sites=*/300));  // needs both bytes
  ASSERT_EQ(store.Flush(), 1);
  cache::VerdictStore reopened;
  ASSERT_TRUE(reopened.Open(dir));
  ExpectSame(reopened.Lookup("fp-wide"), SafeVerdict(300));
}

// ---- Corruption recovery --------------------------------------------------

// Record layout (docs/caching.md): 16-byte log header, then per record a
// 12-byte fixed part (u32 checksum, u32 fp_len, u8 verdict, u8 method,
// u16 sites) followed by the fingerprint bytes.
constexpr size_t kLogHeaderSize = 16;
constexpr size_t kRecordFixedSize = 12;

TEST(VerdictStore, TruncatedTailLoadsTheValidPrefix) {
  const std::string dir = FreshDir("torn_tail");
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    store.Put("aaaa", SafeVerdict());
    store.Put("bbbb", UnsafeVerdict());
    ASSERT_EQ(store.Flush(), 2);
  }
  // Tear the last record mid-fingerprint, as a killed writer would.
  const size_t full = ReadFile(LogPath(dir)).size();
  TruncateFile(LogPath(dir), full - 2);

  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(dir));
  EXPECT_EQ(store.stats().records_loaded, 1);
  EXPECT_EQ(store.stats().records_dropped, 1);
  // Flush-order is sorted by fingerprint, so "aaaa" is the surviving one.
  ExpectSame(store.Lookup("aaaa"), SafeVerdict());
  EXPECT_FALSE(store.Lookup("bbbb").has_value());
  // Open physically dropped the torn tail; the valid prefix is all that
  // remains on disk.
  EXPECT_EQ(ReadFile(LogPath(dir)).size(),
            kLogHeaderSize + kRecordFixedSize + 4);  // header + "aaaa" record
}

TEST(VerdictStore, BitFlippedRecordIsDroppedNotServed) {
  const std::string dir = FreshDir("bit_flip");
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    store.Put("aaaa", SafeVerdict());
    store.Put("bbbb", SafeVerdict());
    ASSERT_EQ(store.Flush(), 2);
  }
  // Flip the verdict byte of the second record without updating its
  // checksum — the checksum must catch it.
  std::vector<char> bytes = ReadFile(LogPath(dir));
  const size_t second = kLogHeaderSize + kRecordFixedSize + 4;
  bytes[second + 8] ^= 0x1;
  WriteFile(LogPath(dir), bytes);

  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(dir));
  EXPECT_EQ(store.stats().records_loaded, 1);
  EXPECT_EQ(store.stats().records_dropped, 1);
  ExpectSame(store.Lookup("aaaa"), SafeVerdict());
  EXPECT_FALSE(store.Lookup("bbbb").has_value());
}

TEST(VerdictStore, GarbledLengthFieldStopsTheScan) {
  const std::string dir = FreshDir("bad_length");
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    store.Put("aaaa", SafeVerdict());
    ASSERT_EQ(store.Flush(), 1);
  }
  std::vector<char> bytes = ReadFile(LogPath(dir));
  const uint32_t huge = 0x7fffffff;  // larger than any plausible fingerprint
  std::memcpy(bytes.data() + kLogHeaderSize + 4, &huge, sizeof(huge));
  WriteFile(LogPath(dir), bytes);

  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(dir));
  EXPECT_EQ(store.stats().records_loaded, 0);
  EXPECT_EQ(store.stats().records_dropped, 1);
  EXPECT_FALSE(store.Lookup("aaaa").has_value());
}

// A store whose log header is bad — wrong magic, wrong schema_version,
// wrong generation, zero bytes, or plain garbage — warm-loads as empty and
// is rebuilt, never reinterpreted.
class VerdictStoreBadHeader
    : public testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(VerdictStoreBadHeader, LoadsEmptyAndRebuilds) {
  const auto [name, patch_offset] = GetParam();
  const std::string dir = FreshDir(std::string("hdr_") + name);
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    store.Put("fp", SafeVerdict());
    ASSERT_EQ(store.Flush(), 1);
  }
  if (patch_offset < 0) {
    WriteFile(LogPath(dir), {});  // zero-byte log
  } else {
    std::vector<char> bytes = ReadFile(LogPath(dir));
    bytes[static_cast<size_t>(patch_offset)] ^= 0x40;
    WriteFile(LogPath(dir), bytes);
  }

  cache::VerdictStore store;
  std::string error;
  ASSERT_TRUE(store.Open(dir, &error)) << error;
  EXPECT_EQ(store.stats().records_loaded, 0);
  EXPECT_EQ(store.disk_records(), 0);
  EXPECT_FALSE(store.Lookup("fp").has_value());

  // The rebuilt store is fully usable.
  store.Put("fp2", UnsafeVerdict());
  EXPECT_EQ(store.Flush(), 1);
  cache::VerdictStore reopened;
  ASSERT_TRUE(reopened.Open(dir));
  ExpectSame(reopened.Lookup("fp2"), UnsafeVerdict());
  EXPECT_FALSE(reopened.Lookup("fp").has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Corruption, VerdictStoreBadHeader,
    testing::Values(std::pair<const char*, int>{"magic", 0},
                    std::pair<const char*, int>{"schema", 4},
                    std::pair<const char*, int>{"generation", 8},
                    std::pair<const char*, int>{"zero_byte", -1}),
    [](const testing::TestParamInfo<std::pair<const char*, int>>& info) {
      return info.param.first;
    });

TEST(VerdictStore, ZeroByteAndGarbageIndexAreRebuilt) {
  const std::string dir = FreshDir("bad_idx");
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    store.Put("fp", SafeVerdict());
    ASSERT_EQ(store.Flush(), 1);
  }
  for (const std::vector<char>& junk :
       {std::vector<char>{},
        std::vector<char>{'j', 'u', 'n', 'k', 'j', 'u', 'n', 'k'}}) {
    WriteFile(IdxPath(dir), junk);
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    // The log is intact, so nothing is lost: the index is a pure cache.
    EXPECT_EQ(store.stats().records_loaded, 1);
    EXPECT_EQ(store.stats().records_dropped, 0);
    ExpectSame(store.Lookup("fp"), SafeVerdict());
  }
}

TEST(VerdictStore, StaleIndexFromAnOlderLogIsRebuilt) {
  const std::string dir = FreshDir("stale_idx");
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    store.Put("fp1", SafeVerdict());
    ASSERT_EQ(store.Flush(), 1);
  }
  // Keep the index from the 1-record log, then grow the log behind its
  // back — the index header's covered-log-size check must reject it.
  const std::vector<char> stale_idx = ReadFile(IdxPath(dir));
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    store.Put("fp2", UnsafeVerdict());
    ASSERT_EQ(store.Flush(), 1);
  }
  WriteFile(IdxPath(dir), stale_idx);

  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(dir));
  EXPECT_EQ(store.stats().records_loaded, 2);
  ExpectSame(store.Lookup("fp1"), SafeVerdict());
  ExpectSame(store.Lookup("fp2"), UnsafeVerdict());
}

// ---- Two appenders, one directory -----------------------------------------

TEST(VerdictStore, TwoStoresShareOneDirectoryWithoutDuplicates) {
  const std::string dir = FreshDir("two_appenders");
  cache::VerdictStore a;
  cache::VerdictStore b;
  ASSERT_TRUE(a.Open(dir));
  ASSERT_TRUE(b.Open(dir));

  // Each appender contributes its own verdict plus one both computed.
  a.Put("only-a", SafeVerdict());
  a.Put("shared", SafeVerdict());
  b.Put("only-b", UnsafeVerdict());
  b.Put("shared", SafeVerdict());

  EXPECT_EQ(a.Flush(), 2);
  // B re-scans the log under the appender lock: A's records survive and
  // the shared fingerprint is not appended twice.
  EXPECT_EQ(b.Flush(), 1);
  EXPECT_EQ(b.disk_records(), 3);

  // B sees A's flush (its Flush remapped the grown log); a third opener
  // sees everything exactly once.
  ExpectSame(b.Lookup("only-a"), SafeVerdict());
  cache::VerdictStore c;
  ASSERT_TRUE(c.Open(dir));
  EXPECT_EQ(c.stats().records_loaded, 3);
  ExpectSame(c.Lookup("only-a"), SafeVerdict());
  ExpectSame(c.Lookup("only-b"), UnsafeVerdict());
  ExpectSame(c.Lookup("shared"), SafeVerdict());
}

TEST(VerdictStore, FlushBytesAreAFunctionOfContentNotInsertOrder) {
  const std::string dir1 = FreshDir("order1");
  const std::string dir2 = FreshDir("order2");
  cache::VerdictStore s1;
  cache::VerdictStore s2;
  ASSERT_TRUE(s1.Open(dir1));
  ASSERT_TRUE(s2.Open(dir2));
  s1.Put("x", SafeVerdict());
  s1.Put("y", UnsafeVerdict());
  s2.Put("y", UnsafeVerdict());  // reversed insert order
  s2.Put("x", SafeVerdict());
  EXPECT_EQ(s1.Flush(), 2);
  EXPECT_EQ(s2.Flush(), 2);
  EXPECT_EQ(ReadFile(LogPath(dir1)), ReadFile(LogPath(dir2)));
}

// ---- Tier-1 fallthrough and promotion -------------------------------------

TEST(VerdictStore, MemoMissFallsThroughToStoreAndPromotes) {
  const std::string dir = FreshDir("fallthrough");
  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(dir));

  PairSafetyReport report;
  report.verdict = SafetyVerdict::kSafe;
  report.method = DecisionMethod::kTheorem1;
  report.sites_spanned = 2;
  {
    PairVerdictCache warm_cache;
    warm_cache.set_store(&store);
    EXPECT_EQ(warm_cache.store(), &store);
    warm_cache.Insert("fp", report);  // forwarded to the pending buffer
  }
  EXPECT_EQ(store.pending_records(), 1);

  PairVerdictCache fresh;
  fresh.set_store(&store);
  auto hit = fresh.Lookup("fp");  // memory miss -> store hit, promoted
  ExpectSame(hit, SafeVerdict());
  EXPECT_EQ(fresh.size(), 1);
  EXPECT_EQ(store.stats().disk_hits, 1);
  // The memo now answers by itself; the store sees no second consultation.
  ASSERT_TRUE(fresh.Lookup("fp").has_value());
  EXPECT_EQ(store.stats().disk_hits, 1);
  EXPECT_EQ(fresh.stats().hits, 1);    // the promoted second lookup
  EXPECT_EQ(fresh.stats().misses, 1);  // the memo miss that fell through

  // Detached, the memo behaves exactly as before the store existed.
  PairVerdictCache detached;
  detached.set_store(nullptr);
  EXPECT_FALSE(detached.Lookup("fp").has_value());
}

// ---- Byte-identity of reports ---------------------------------------------

// Normalizes away exactly what warmth may change: where a pair was decided
// (checked vs cached) and stage/delta timing counters. Everything else —
// verdict, diagnostics, certificates, cycle counts — must be byte-equal
// across {off, cold, warm} at any thread count (docs/caching.md).
std::string NormalizedJson(MultiSafetyReport report,
                           const TransactionSystem& system) {
  report.pairs_checked += report.pairs_cached;
  report.pairs_cached = 0;
  report.pipeline = PipelineStats();
  report.delta.reset();
  return MultiReportToJson(report, system);
}

TEST(VerdictStore, StoreNeverChangesANormalizedReport) {
  Rng rng(20260808);
  WorkloadParams params;
  params.num_sites = 3;
  params.num_entities = 6;
  params.num_transactions = 5;
  for (int trial = 0; trial < 4; ++trial) {
    Workload w = MakeRandomWorkload(params, &rng);
    for (int threads : {1, 4}) {
      MultiSafetyOptions off;
      off.num_threads = threads;
      const std::string off_json =
          NormalizedJson(AnalyzeMultiSafety(*w.system, off), *w.system);

      const std::string dir = FreshDir(
          "identity_t" + std::to_string(trial) + "_n" +
          std::to_string(threads));
      cache::VerdictStore cold_store;
      ASSERT_TRUE(cold_store.Open(dir));
      MultiSafetyOptions with_store = off;
      with_store.store = &cold_store;
      const std::string cold_json = NormalizedJson(
          AnalyzeMultiSafety(*w.system, with_store), *w.system);
      cold_store.Flush();

      cache::VerdictStore warm_store;
      ASSERT_TRUE(warm_store.Open(dir));
      with_store.store = &warm_store;
      const std::string warm_json = NormalizedJson(
          AnalyzeMultiSafety(*w.system, with_store), *w.system);

      EXPECT_EQ(off_json, cold_json)
          << "trial " << trial << " threads " << threads;
      EXPECT_EQ(off_json, warm_json)
          << "trial " << trial << " threads " << threads;
    }
  }
}

TEST(VerdictStore, WarmFromDiskEqualsWarmInMemory) {
  Rng rng(77);
  WorkloadParams params;
  params.num_sites = 2;
  params.num_entities = 5;
  params.num_transactions = 6;
  Workload w = MakeRandomWorkload(params, &rng);

  // Warm in memory: one shared tier-1 memo across two analyses.
  PairVerdictCache memo;
  MultiSafetyOptions in_memory;
  in_memory.cache = &memo;
  AnalyzeMultiSafety(*w.system, in_memory);
  const std::string memory_json =
      NormalizedJson(AnalyzeMultiSafety(*w.system, in_memory), *w.system);

  // Warm from disk: flush a cold run, then analyze with a fresh store.
  const std::string dir = FreshDir("warm_equiv");
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    MultiSafetyOptions cold;
    cold.store = &store;
    AnalyzeMultiSafety(*w.system, cold);
    store.Flush();
  }
  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(dir));
  MultiSafetyOptions warm;
  warm.store = &store;
  const std::string disk_json =
      NormalizedJson(AnalyzeMultiSafety(*w.system, warm), *w.system);

  EXPECT_EQ(memory_json, disk_json);
}

// The fingerprints the engine writes are portable: a verdict computed for
// one pair is served for a renamed isomorphic pair in another process (the
// reopened store stands in for the other process).
TEST(VerdictStore, IsomorphicPairsShareOneRecordAcrossProcesses) {
  DistributedDatabase db(3);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);
  db.MustAddEntity("p", 2);
  db.MustAddEntity("q", 1);
  auto make_pair = [&](const std::string& ea, const std::string& eb) {
    std::vector<Transaction> txns;
    for (const char* name : {"T1", "T2"}) {
      TransactionBuilder b(&db, name);
      StepId la = b.Lock(ea);
      StepId lb = b.Lock(eb);
      StepId ua = b.Unlock(ea);
      StepId ub = b.Unlock(eb);
      b.Edge(la, ub);
      b.Edge(lb, ua);
      txns.push_back(b.Build());
    }
    return txns;
  };
  std::vector<Transaction> original = make_pair("x", "y");
  std::vector<Transaction> renamed = make_pair("p", "q");

  const std::string dir = FreshDir("isomorphic");
  {
    cache::VerdictStore store;
    ASSERT_TRUE(store.Open(dir));
    PairVerdictCache memo;
    memo.set_store(&store);
    memo.Insert(PairFingerprint(original[0], original[1]),
                AnalyzePairSafety(original[0], original[1]));
    EXPECT_EQ(store.Flush(), 1);
  }
  cache::VerdictStore store;
  ASSERT_TRUE(store.Open(dir));
  auto hit = store.Lookup(PairFingerprint(renamed[0], renamed[1]));
  ASSERT_TRUE(hit.has_value());
  PairSafetyReport recomputed = AnalyzePairSafety(renamed[0], renamed[1]);
  EXPECT_EQ(hit->verdict, recomputed.verdict);
  EXPECT_EQ(hit->method, recomputed.method);
  EXPECT_EQ(hit->sites_spanned, recomputed.sites_spanned);
}

}  // namespace
}  // namespace dislock
