// Golden-output tests for the analyzer on the paper's Fig. 4 and Fig. 5
// fixtures (data/fig4.dlk, data/fig5.dlk). The exact text rendering is part
// of the analyzer's contract — downstream tooling greps these lines — so
// any change here is a deliberate interface change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/emit.h"
#include "core/paper.h"
#include "txn/text_format.h"

namespace dislock {
namespace {

std::string ReadFixture(const std::string& relative_path) {
  std::string path = std::string(DISLOCK_SOURCE_DIR) + "/" + relative_path;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

ParsedSystem MustParseFixture(const std::string& relative_path) {
  auto parsed = ParseSystemText(ReadFixture(relative_path));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

/// The pre-DL2xx pipeline: running only these four passes must reproduce
/// the historical output byte for byte (the DL2xx passes are additive).
PassManager MakeLegacyPipeline() {
  PassManager manager;
  for (const char* name :
       {"two-phase", "pair-safety", "system-safety", "lints"}) {
    EXPECT_TRUE(manager.Add(name).ok()) << name;
  }
  return manager;
}

constexpr char kFig4LegacyGolden[] =
    "T1/T2: note [DL003/safe-pair] pair {T1, T2} is safe: D(T1,T2) = "
    "[D = { V: {x, y}, A: {x->y, y->x} }] is strongly connected (Theorem 1; "
    "holds at any number of sites)\n"
    "0 error(s), 0 warning(s), 1 note(s) from 4 pass(es)\n";

constexpr char kFig5LegacyGolden[] =
    "T1/T2: note [DL003/safe-pair] pair {T1, T2} is safe (method: "
    "dominator-closure): all 1 dominators of D provably admit no closed "
    "extension pair\n"
    "0 error(s), 0 warning(s), 1 note(s) from 4 pass(es)\n";

/// The full six-pass pipeline: fig4 is safe by Theorem 1 yet a deadlock is
/// reachable, so DL201 (with its replayable witness) and DL202 join the
/// safety note.
constexpr char kFig4Golden[] =
    "T1/T2: note [DL003/safe-pair] pair {T1, T2} is safe: D(T1,T2) = "
    "[D = { V: {x, y}, A: {x->y, y->x} }] is strongly connected (Theorem 1; "
    "holds at any number of sites)\n"
    "T1/T2: error [DL201/reachable-deadlock] deadlock is reachable: after "
    "the legal prefix \"Lx_1 x_1 Ly_2 y_2\", T1 waits for 'y' and T2 waits "
    "for 'x'\n"
    "  hint: impose one global lock-acquisition order across transactions "
    "(see DL103), or run `dislock fix` for a verified repair\n"
    "  deadlock witness:\n"
    "    prefix: Lx_1 x_1 Ly_2 y_2\n"
    "    T1 waits for 'y'\n"
    "    T2 waits for 'x'\n"
    "T1/T2: warning [DL202/opposing-lock-orders] transactions T1 and T2 can "
    "acquire the locks on 'x' and 'y' in opposite orders (hold-and-wait "
    "precondition)\n"
    "  hint: order Lx and Ly the same way in both transactions\n"
    "1 error(s), 1 warning(s), 1 note(s) from 6 pass(es)\n";

constexpr char kFig5Golden[] =
    "T1/T2: note [DL003/safe-pair] pair {T1, T2} is safe (method: "
    "dominator-closure): all 1 dominators of D provably admit no closed "
    "extension pair\n"
    "T1/T2: error [DL201/reachable-deadlock] deadlock is reachable: after "
    "the legal prefix \"Lx1_1 Lx2_1 Ly1_2 Ly2_2\", T1 waits for 'y2' and T2 "
    "waits for 'x2'\n"
    "  hint: impose one global lock-acquisition order across transactions "
    "(see DL103), or run `dislock fix` for a verified repair\n"
    "  deadlock witness:\n"
    "    prefix: Lx1_1 Lx2_1 Ly1_2 Ly2_2\n"
    "    T1 waits for 'y2'\n"
    "    T2 waits for 'x2'\n"
    "T1/T2: warning [DL202/opposing-lock-orders] transactions T1 and T2 can "
    "acquire the locks on 'x1' and 'x2' in opposite orders (hold-and-wait "
    "precondition)\n"
    "  hint: order Lx1 and Lx2 the same way in both transactions\n"
    "T1:Ly2#6: note [DL204/centralized-image-divergence] centralized image "
    "of T1 diverges: Ux1#1 and Ly2#6 are unordered, so some linearizations "
    "are two-phase and others are not (Section 6)\n"
    "  hint: add `edge 6 1` to order Ly2 before Ux1 and keep every "
    "linearization two-phase\n"
    "T2:Ly2#6: note [DL204/centralized-image-divergence] centralized image "
    "of T2 diverges: Ux1#1 and Ly2#6 are unordered, so some linearizations "
    "are two-phase and others are not (Section 6)\n"
    "  hint: add `edge 6 1` to order Ly2 before Ux1 and keep every "
    "linearization two-phase\n"
    "1 error(s), 1 warning(s), 3 note(s) from 6 pass(es)\n";

TEST(AnalyzerGolden, Fig4LegacyPipelineIsByteIdentical) {
  ParsedSystem parsed = MustParseFixture("data/fig4.dlk");
  PassManager manager = MakeLegacyPipeline();
  AnalysisResult result = manager.Run(*parsed.system, {});
  EXPECT_EQ(DiagnosticsToText(result, *parsed.system), kFig4LegacyGolden);
}

TEST(AnalyzerGolden, Fig5LegacyPipelineIsByteIdentical) {
  ParsedSystem parsed = MustParseFixture("data/fig5.dlk");
  PassManager manager = MakeLegacyPipeline();
  AnalysisResult result = manager.Run(*parsed.system, {});
  EXPECT_EQ(DiagnosticsToText(result, *parsed.system), kFig5LegacyGolden);
}

TEST(AnalyzerGolden, Fig4TextOutput) {
  ParsedSystem parsed = MustParseFixture("data/fig4.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  EXPECT_EQ(DiagnosticsToText(result, *parsed.system), kFig4Golden);
}

TEST(AnalyzerGolden, Fig5TextOutput) {
  ParsedSystem parsed = MustParseFixture("data/fig5.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  EXPECT_EQ(DiagnosticsToText(result, *parsed.system), kFig5Golden);
}

TEST(AnalyzerGolden, Fig4FixtureMatchesFactoryVerdict) {
  // The .dlk fixture and MakeFig4Instance() must describe the same system:
  // safe by Theorem 1 (strong connectivity), reported as a single DL003.
  ParsedSystem parsed = MustParseFixture("data/fig4.dlk");
  PaperInstance inst = MakeFig4Instance();
  EXPECT_EQ(SystemToText(*parsed.system), SystemToText(*inst.system));
}

TEST(AnalyzerGolden, Fig5FixtureMatchesFactoryVerdict) {
  ParsedSystem parsed = MustParseFixture("data/fig5.dlk");
  PaperInstance inst = MakeFig5Instance();
  EXPECT_EQ(SystemToText(*parsed.system), SystemToText(*inst.system));
}

TEST(AnalyzerGolden, Fig5MustNotBeReportedUnsafe) {
  // The load-bearing property of Fig. 5: D is not strongly connected, yet
  // the analyzer must NOT emit DL002/DL004 — the closure contradiction on
  // the only dominator proves safety at four sites.
  ParsedSystem parsed = MustParseFixture("data/fig5.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_NE(d.rule, "DL002") << d.message;
    EXPECT_NE(d.rule, "DL004") << d.message;
  }
}

TEST(AnalyzerGolden, Fig4JsonOutput) {
  ParsedSystem parsed = MustParseFixture("data/fig4.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  std::string json = DiagnosticsToJson(result, *parsed.system);
  EXPECT_NE(json.find("\"rule\": \"DL003\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"DL201\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"deadlock_certificate\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"notes\": 1"), std::string::npos) << json;
}

TEST(AnalyzerGolden, LegacyPipelineJsonHasNoDl2xxKeys) {
  // Byte-compat guarantee: a run without the DL2xx passes must not emit
  // the new JSON keys at all.
  ParsedSystem parsed = MustParseFixture("data/fig4.dlk");
  PassManager manager = MakeLegacyPipeline();
  AnalysisResult result = manager.Run(*parsed.system, {});
  std::string json = DiagnosticsToJson(result, *parsed.system);
  EXPECT_EQ(json.find("deadlock_certificate"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"repair\""), std::string::npos) << json;
}

TEST(AnalyzerGolden, UnsafeFig1FixtureReportsVerifiedCertificate) {
  // data/fig1.dlk is the repo's canonical unsafe two-site pair: the golden
  // contract is one DL002 whose rendered certificate names the dominator
  // and the separating schedule.
  ParsedSystem parsed = MustParseFixture("data/fig1.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  std::string text = DiagnosticsToText(result, *parsed.system);
  EXPECT_NE(text.find("error [DL002/unsafe-pair]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dominator X = {x}"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error(s)"), std::string::npos) << text;
}

}  // namespace
}  // namespace dislock
