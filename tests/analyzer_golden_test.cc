// Golden-output tests for the analyzer on the paper's Fig. 4 and Fig. 5
// fixtures (data/fig4.dlk, data/fig5.dlk). The exact text rendering is part
// of the analyzer's contract — downstream tooling greps these lines — so
// any change here is a deliberate interface change.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/emit.h"
#include "core/paper.h"
#include "txn/text_format.h"

namespace dislock {
namespace {

std::string ReadFixture(const std::string& relative_path) {
  std::string path = std::string(DISLOCK_SOURCE_DIR) + "/" + relative_path;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

ParsedSystem MustParseFixture(const std::string& relative_path) {
  auto parsed = ParseSystemText(ReadFixture(relative_path));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

constexpr char kFig4Golden[] =
    "T1/T2: note [DL003/safe-pair] pair {T1, T2} is safe: D(T1,T2) = "
    "[D = { V: {x, y}, A: {x->y, y->x} }] is strongly connected (Theorem 1; "
    "holds at any number of sites)\n"
    "0 error(s), 0 warning(s), 1 note(s) from 4 pass(es)\n";

constexpr char kFig5Golden[] =
    "T1/T2: note [DL003/safe-pair] pair {T1, T2} is safe (method: "
    "dominator-closure): all 1 dominators of D provably admit no closed "
    "extension pair\n"
    "0 error(s), 0 warning(s), 1 note(s) from 4 pass(es)\n";

TEST(AnalyzerGolden, Fig4TextOutput) {
  ParsedSystem parsed = MustParseFixture("data/fig4.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  EXPECT_EQ(DiagnosticsToText(result, *parsed.system), kFig4Golden);
}

TEST(AnalyzerGolden, Fig5TextOutput) {
  ParsedSystem parsed = MustParseFixture("data/fig5.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  EXPECT_EQ(DiagnosticsToText(result, *parsed.system), kFig5Golden);
}

TEST(AnalyzerGolden, Fig4FixtureMatchesFactoryVerdict) {
  // The .dlk fixture and MakeFig4Instance() must describe the same system:
  // safe by Theorem 1 (strong connectivity), reported as a single DL003.
  ParsedSystem parsed = MustParseFixture("data/fig4.dlk");
  PaperInstance inst = MakeFig4Instance();
  EXPECT_EQ(SystemToText(*parsed.system), SystemToText(*inst.system));
}

TEST(AnalyzerGolden, Fig5FixtureMatchesFactoryVerdict) {
  ParsedSystem parsed = MustParseFixture("data/fig5.dlk");
  PaperInstance inst = MakeFig5Instance();
  EXPECT_EQ(SystemToText(*parsed.system), SystemToText(*inst.system));
}

TEST(AnalyzerGolden, Fig5MustNotBeReportedUnsafe) {
  // The load-bearing property of Fig. 5: D is not strongly connected, yet
  // the analyzer must NOT emit DL002/DL004 — the closure contradiction on
  // the only dominator proves safety at four sites.
  ParsedSystem parsed = MustParseFixture("data/fig5.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_NE(d.rule, "DL002") << d.message;
    EXPECT_NE(d.rule, "DL004") << d.message;
  }
  EXPECT_FALSE(result.HasErrors());
}

TEST(AnalyzerGolden, Fig4JsonOutput) {
  ParsedSystem parsed = MustParseFixture("data/fig4.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  std::string json = DiagnosticsToJson(result, *parsed.system);
  EXPECT_NE(json.find("\"rule\": \"DL003\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"notes\": 1"), std::string::npos) << json;
}

TEST(AnalyzerGolden, UnsafeFig1FixtureReportsVerifiedCertificate) {
  // data/fig1.dlk is the repo's canonical unsafe two-site pair: the golden
  // contract is one DL002 whose rendered certificate names the dominator
  // and the separating schedule.
  ParsedSystem parsed = MustParseFixture("data/fig1.dlk");
  AnalysisResult result = AnalyzeSystem(*parsed.system);
  std::string text = DiagnosticsToText(result, *parsed.system);
  EXPECT_NE(text.find("error [DL002/unsafe-pair]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("dominator X = {x}"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error(s)"), std::string::npos) << text;
}

}  // namespace
}  // namespace dislock
