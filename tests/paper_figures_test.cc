// Machine-checked reproductions of the paper's worked figures. Each test
// asserts exactly the property the figure is used to demonstrate.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/closure.h"
#include "core/conflict_graph.h"
#include "core/multi.h"
#include "core/paper.h"
#include "core/safety.h"
#include "geometry/curve.h"
#include "geometry/picture.h"
#include "graph/dominator.h"
#include "graph/scc.h"
#include "sim/executor.h"
#include "sim/scheduler.h"
#include "txn/linear_extension.h"

namespace dislock {
namespace {

// ---------------------------------------------------------------- Fig. 1 --

TEST(Fig1, SystemIsValid) {
  PaperInstance inst = MakeFig1Instance();
  ASSERT_TRUE(inst.system->Validate().ok());
  EXPECT_EQ(inst.db->NumSites(), 2);
}

TEST(Fig1, DGraphIsNotStronglyConnected) {
  PaperInstance inst = MakeFig1Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  EXPECT_EQ(d.graph.NumNodes(), 2);  // x and w are commonly locked
  EXPECT_FALSE(IsStronglyConnected(d.graph));
}

TEST(Fig1, TwoSiteTestSaysUnsafeWithVerifiedCertificate) {
  PaperInstance inst = MakeFig1Instance();
  auto report = TwoSiteSafetyTest(inst.system->txn(0), inst.system->txn(1));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verdict, SafetyVerdict::kUnsafe);
  ASSERT_TRUE(report->certificate.has_value());
  EXPECT_TRUE(VerifyUnsafetyCertificate(inst.system->txn(0),
                                        inst.system->txn(1),
                                        *report->certificate)
                  .ok());
}

TEST(Fig1, HandWrittenNonSerializableScheduleIsLegal) {
  // The figure's schedule shape: T1's x section, then all of T2, then T1's
  // w section.
  PaperInstance inst = MakeFig1Instance();
  Schedule h;
  for (StepId s = 0; s < 3; ++s) h.Append(0, s);  // Lx x Ux of T1
  for (StepId s = 0; s < inst.system->txn(1).NumSteps(); ++s) h.Append(1, s);
  for (StepId s = 3; s < 6; ++s) h.Append(0, s);  // Lw w Uw of T1
  ASSERT_TRUE(CheckScheduleLegal(*inst.system, h).ok());
  EXPECT_FALSE(IsSerializable(*inst.system, h));

  // The operational (symbolic-execution) check agrees.
  auto by_exec = SerializableByExecution(*inst.system, h);
  ASSERT_TRUE(by_exec.ok());
  EXPECT_FALSE(by_exec.value());
}

TEST(Fig1, ScheduleOracleAgreesSystemIsUnsafe) {
  PaperInstance inst = MakeFig1Instance();
  auto oracle = ExhaustiveScheduleSafety(*inst.system, 1 << 22);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_FALSE(oracle->safe);
  ASSERT_TRUE(oracle->witness.has_value());
  EXPECT_FALSE(IsSerializable(*inst.system, *oracle->witness));
}

// ---------------------------------------------------------------- Fig. 2 --

TEST(Fig2, PictureHasThreeRectangles) {
  PaperInstance inst = MakeFig2Instance();
  auto pic = PairPicture::Make(inst.system->txn(0), inst.system->txn(1));
  ASSERT_TRUE(pic.ok()) << pic.status().ToString();
  EXPECT_EQ(pic->rects().size(), 3u);
  EXPECT_EQ(pic->num_steps1(), 9);
  EXPECT_EQ(pic->num_steps2(), 9);
}

TEST(Fig2, PaperScheduleSeparatesXandZ) {
  // h = t1_1..t1_6, all of t2, then t1_7..t1_9 (the paper's curve h).
  PaperInstance inst = MakeFig2Instance();
  Schedule h;
  for (StepId s = 0; s < 6; ++s) h.Append(0, s);
  for (StepId s = 0; s < 9; ++s) h.Append(1, s);
  for (StepId s = 6; s < 9; ++s) h.Append(0, s);
  ASSERT_TRUE(CheckScheduleLegal(*inst.system, h).ok());
  EXPECT_FALSE(IsSerializable(*inst.system, h));

  auto pic = PairPicture::Make(inst.system->txn(0), inst.system->txn(1));
  ASSERT_TRUE(pic.ok());
  auto separation = FindSeparation(*pic, h);
  ASSERT_TRUE(separation.has_value());
  // h runs below the x- (and y-) rectangle and above the z-rectangle.
  std::vector<RectSide> sides = ScheduleSides(*pic, h);
  ASSERT_EQ(sides.size(), pic->rects().size());
  for (size_t i = 0; i < sides.size(); ++i) {
    const std::string& name = inst.db->NameOf(pic->rects()[i].entity);
    if (name == "z") {
      EXPECT_EQ(sides[i], RectSide::kAbove);
    } else {
      EXPECT_EQ(sides[i], RectSide::kBelow) << name;
    }
  }
}

TEST(Fig2, NaiveGeometricTestFindsTheWitness) {
  PaperInstance inst = MakeFig2Instance();
  auto pic = PairPicture::Make(inst.system->txn(0), inst.system->txn(1));
  ASSERT_TRUE(pic.ok());
  auto witness = NaiveGeometricUnsafetyTest(*pic);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  TransactionSystem pair(inst.db.get());
  pair.Add(inst.system->txn(0));
  pair.Add(inst.system->txn(1));
  EXPECT_TRUE(CheckScheduleLegal(pair, witness->schedule).ok());
  EXPECT_FALSE(IsSerializable(pair, witness->schedule));
}

TEST(Fig2, CentralizedStrongConnectivityTestAgrees) {
  // For total orders the Theorem 1 condition is necessary AND sufficient.
  PaperInstance inst = MakeFig2Instance();
  EXPECT_FALSE(Theorem1Sufficient(inst.system->txn(0), inst.system->txn(1)));
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1));
  EXPECT_EQ(report.verdict, SafetyVerdict::kUnsafe);
}

// ---------------------------------------------------------------- Fig. 3 --

TEST(Fig3, SomeExtensionPairsAreSafeOthersUnsafe) {
  PaperInstance inst = MakeFig3Instance();
  const Transaction& t1 = inst.system->txn(0);
  const Transaction& t2 = inst.system->txn(1);

  int safe_pairs = 0;
  int unsafe_pairs = 0;
  Status st = EnumerateLinearExtensions(
      t1, 10000, [&](const std::vector<StepId>& o1) {
        Status inner = EnumerateLinearExtensions(
            t2, 10000, [&](const std::vector<StepId>& o2) {
              auto l1 = Linearize(t1, o1);
              auto l2 = Linearize(t2, o2);
              ConflictGraph d = BuildConflictGraph(l1.value(), l2.value());
              if (IsStronglyConnected(d.graph)) {
                ++safe_pairs;
              } else {
                ++unsafe_pairs;
              }
              return true;
            });
        return inner.ok();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_GT(safe_pairs, 0) << "Lemma 1 demo needs a safe extension pair";
  EXPECT_GT(unsafe_pairs, 0) << "and an unsafe one";
}

TEST(Fig3, SystemIsUnsafeByLemma1) {
  PaperInstance inst = MakeFig3Instance();
  auto result = ExhaustivePairSafety(inst.system->txn(0),
                                     inst.system->txn(1), 1 << 20);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->safe);
  ASSERT_TRUE(result->certificate.has_value());
}

TEST(Fig3, TheoremTwoAgreesAndProducesCertificate) {
  PaperInstance inst = MakeFig3Instance();
  auto report = TwoSiteSafetyTest(inst.system->txn(0), inst.system->txn(1));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->verdict, SafetyVerdict::kUnsafe);
  EXPECT_FALSE(report->d_strongly_connected);
}

TEST(Fig3, MonteCarloSamplerFindsWitness) {
  PaperInstance inst = MakeFig3Instance();
  Rng rng(42);
  MonteCarloStats stats = SampleSafety(*inst.system, 100000, &rng);
  EXPECT_GT(stats.non_serializable, 0);
}

// ---------------------------------------------------------------- Fig. 4 --

TEST(Fig4, SystemIsValidOverTwoSites) {
  PaperInstance inst = MakeFig4Instance();
  ASSERT_TRUE(inst.system->Validate().ok())
      << inst.system->Validate().ToString();
  EXPECT_EQ(inst.db->NumSites(), 2);
  EXPECT_EQ(inst.system->NumTransactions(), 2);
}

TEST(Fig4, DIsTheTwoCycleAndStronglyConnected) {
  PaperInstance inst = MakeFig4Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  ASSERT_EQ(d.graph.NumNodes(), 2);
  EXPECT_EQ(d.graph.NumArcs(), 2);
  EXPECT_TRUE(IsStronglyConnected(d.graph));
}

TEST(Fig4, TheoremOneDecidesSafe) {
  PaperInstance inst = MakeFig4Instance();
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1));
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
  EXPECT_EQ(report.method, DecisionMethod::kTheorem1);
  EXPECT_TRUE(report.d_strongly_connected);
}

TEST(Fig4, ExhaustiveOracleAgrees) {
  PaperInstance inst = MakeFig4Instance();
  auto result = ExhaustivePairSafety(inst.system->txn(0),
                                     inst.system->txn(1), 1 << 22);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->safe);
}

TEST(Fig4, MonteCarloNeverFindsNonSerializableSchedule) {
  PaperInstance inst = MakeFig4Instance();
  Rng rng(4);
  MonteCarloStats stats = SampleSafety(*inst.system, 20000, &rng,
                                       /*keep_going=*/true);
  EXPECT_EQ(stats.non_serializable, 0);
  EXPECT_GT(stats.completed, 0);
}

// ---------------------------------------------------------------- Fig. 5 --

TEST(Fig5, SystemIsValidOverFourSites) {
  PaperInstance inst = MakeFig5Instance();
  ASSERT_TRUE(inst.system->Validate().ok())
      << inst.system->Validate().ToString();
  EXPECT_EQ(inst.db->NumSites(), 4);
}

TEST(Fig5, DNotStronglyConnectedAndOnlyDominatorIsX1X2) {
  PaperInstance inst = MakeFig5Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  ASSERT_EQ(d.graph.NumNodes(), 4);
  EXPECT_FALSE(IsStronglyConnected(d.graph));

  auto dominators = AllDominators(d.graph, 100);
  ASSERT_EQ(dominators.size(), 1u);
  std::vector<EntityId> x = d.EntitiesOf(dominators[0]);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_EQ(inst.db->NameOf(x[0]), "x1");
  EXPECT_EQ(inst.db->NameOf(x[1]), "x2");
}

TEST(Fig5, ClosureFailsOnTheOnlyDominator) {
  PaperInstance inst = MakeFig5Instance();
  ConflictGraph d = BuildConflictGraph(inst.system->txn(0),
                                       inst.system->txn(1));
  auto dominators = AllDominators(d.graph, 100);
  ASSERT_EQ(dominators.size(), 1u);
  auto closure = CloseWithRespectTo(inst.system->txn(0), inst.system->txn(1),
                                    d.EntitiesOf(dominators[0]));
  EXPECT_FALSE(closure.ok());
  EXPECT_EQ(closure.status().code(), StatusCode::kUndecided)
      << closure.status().ToString();
}

TEST(Fig5, ExhaustiveOracleConfirmsSafety) {
  PaperInstance inst = MakeFig5Instance();
  auto result = ExhaustivePairSafety(inst.system->txn(0),
                                     inst.system->txn(1), 100000000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->safe)
      << "Fig. 5 shows Theorem 1's condition is not necessary at 4 sites";
  EXPECT_GT(result->combinations_checked, 0);
}

TEST(Fig5, AnalyzerDecidesSafeViaDominatorClosure) {
  // The closure contradiction on the only dominator is a PROOF of safety —
  // no exhaustive enumeration needed.
  PaperInstance inst = MakeFig5Instance();
  SafetyOptions options;
  options.max_extension_pairs = 0;  // forbid the exhaustive fallback
  PairSafetyReport report =
      AnalyzePairSafety(inst.system->txn(0), inst.system->txn(1), options);
  EXPECT_EQ(report.verdict, SafetyVerdict::kSafe);
  EXPECT_EQ(report.method, DecisionMethod::kDominatorClosure);
  EXPECT_EQ(report.sites_spanned, 4);
}

TEST(Fig5, MonteCarloNeverFindsNonSerializableSchedule) {
  PaperInstance inst = MakeFig5Instance();
  Rng rng(7);
  MonteCarloStats stats = SampleSafety(*inst.system, 20000, &rng,
                                       /*keep_going=*/true);
  EXPECT_EQ(stats.non_serializable, 0);
  EXPECT_GT(stats.completed, 0);
}

}  // namespace
}  // namespace dislock
