// Unit tests for schedules: legality, serializability analysis, serial
// schedules, exhaustive enumeration (incl. deadlock dead-ends).

#include <gtest/gtest.h>

#include "core/paper.h"
#include "txn/builder.h"
#include "txn/schedule.h"

namespace dislock {
namespace {

/// Two single-entity transactions sharing x: T1 = Lx x Ux, T2 = Lx x Ux.
struct SharedX {
  DistributedDatabase db{1};
  TransactionSystem system{&db};
  SharedX() {
    db.MustAddEntity("x", 0);
    for (const char* name : {"T1", "T2"}) {
      TransactionBuilder b(&db, name);
      b.LockUpdateUnlock("x");
      system.Add(b.Build());
    }
  }
};

TEST(ScheduleLegal, SerialIsLegal) {
  SharedX s;
  auto serial = SerialSchedule(s.system, {0, 1});
  ASSERT_TRUE(serial.ok());
  EXPECT_TRUE(CheckScheduleLegal(s.system, *serial).ok());
  EXPECT_TRUE(IsSerializable(s.system, *serial));
}

TEST(ScheduleLegal, RejectsWrongLength) {
  SharedX s;
  Schedule h;
  h.Append(0, 0);
  EXPECT_FALSE(CheckScheduleLegal(s.system, h).ok());
}

TEST(ScheduleLegal, RejectsDoubleEvent) {
  SharedX s;
  Schedule h;
  for (int i = 0; i < 6; ++i) h.Append(0, 0);
  EXPECT_FALSE(CheckScheduleLegal(s.system, h).ok());
}

TEST(ScheduleLegal, RejectsPartialOrderViolation) {
  SharedX s;
  Schedule h;
  h.Append(0, 2);  // Ux before Lx
  h.Append(0, 1);
  h.Append(0, 0);
  for (StepId i = 0; i < 3; ++i) h.Append(1, i);
  EXPECT_FALSE(CheckScheduleLegal(s.system, h).ok());
}

TEST(ScheduleLegal, RejectsLockConflict) {
  SharedX s;
  Schedule h;
  h.Append(0, 0);  // T1: Lx
  h.Append(1, 0);  // T2: Lx while held -> illegal
  h.Append(0, 1);
  h.Append(0, 2);
  h.Append(1, 1);
  h.Append(1, 2);
  auto st = CheckScheduleLegal(s.system, h);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("exclusively held"), std::string::npos);
}

TEST(Serializability, InterleavedSectionsConflict) {
  // Fig. 1 reconstruction: the witness cycles T1 -> T2 -> T1.
  PaperInstance inst = MakeFig1Instance();
  Schedule h;
  for (StepId sid = 0; sid < 3; ++sid) h.Append(0, sid);
  for (StepId sid = 0; sid < 6; ++sid) h.Append(1, sid);
  for (StepId sid = 3; sid < 6; ++sid) h.Append(0, sid);
  SerializabilityAnalysis analysis = AnalyzeSerializability(*inst.system, h);
  EXPECT_FALSE(analysis.serializable);
  EXPECT_EQ(analysis.conflict_cycle.size(), 2u);
}

TEST(Serializability, SerialOrderIsReported) {
  SharedX s;
  auto serial = SerialSchedule(s.system, {1, 0});
  ASSERT_TRUE(serial.ok());
  SerializabilityAnalysis analysis =
      AnalyzeSerializability(s.system, *serial);
  ASSERT_TRUE(analysis.serializable);
  ASSERT_EQ(analysis.serial_order.size(), 2u);
  EXPECT_EQ(analysis.serial_order[0], 1);
  EXPECT_EQ(analysis.serial_order[1], 0);
}

TEST(SerialSchedule, RejectsBadPermutation) {
  SharedX s;
  EXPECT_FALSE(SerialSchedule(s.system, {0}).ok());
  EXPECT_FALSE(SerialSchedule(s.system, {0, 0}).ok());
  EXPECT_FALSE(SerialSchedule(s.system, {0, 2}).ok());
}

TEST(Enumerate, CountsInterleavingsOfLockDisjointTxns) {
  // T1 on x, T2 on y: no lock interaction; schedules = interleavings of two
  // 3-chains = C(6,3) = 20.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  {
    TransactionBuilder b(&db, "T1");
    b.LockUpdateUnlock("x");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(&db, "T2");
    b.LockUpdateUnlock("y");
    system.Add(b.Build());
  }
  int count = 0;
  Status st = EnumerateSchedules(system, 1000, [&](const Schedule& h) {
    EXPECT_TRUE(CheckScheduleLegal(system, h).ok());
    ++count;
    return true;
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(count, 20);
}

TEST(Enumerate, LockExclusionForcesSerialOnSharedEntity) {
  // Both transactions hold x for their entire duration: only the two serial
  // schedules are legal.
  SharedX s;
  int count = 0;
  Status st = EnumerateSchedules(s.system, 100, [&](const Schedule& h) {
    ++count;
    EXPECT_TRUE(IsSerializable(s.system, h));
    return true;
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(count, 2);
}

TEST(Enumerate, ReportsDeadlockDeadEnds) {
  // Classic deadlock: T1 = Lx Ly Uy Ux, T2 = Ly Lx Ux Uy.
  DistributedDatabase db(1);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 0);
  TransactionSystem system(&db);
  {
    TransactionBuilder b(&db, "T1");
    b.Lock("x");
    b.Lock("y");
    b.Unlock("y");
    b.Unlock("x");
    system.Add(b.Build());
  }
  {
    TransactionBuilder b(&db, "T2");
    b.Lock("y");
    b.Lock("x");
    b.Unlock("x");
    b.Unlock("y");
    system.Add(b.Build());
  }
  int64_t deadlocks = 0;
  int schedules = 0;
  Status st = EnumerateSchedules(
      system, 10000,
      [&](const Schedule&) {
        ++schedules;
        return true;
      },
      &deadlocks);
  EXPECT_TRUE(st.ok());
  EXPECT_GT(schedules, 0);
  EXPECT_GT(deadlocks, 0);  // Lx1 Ly2 -> stuck
}

TEST(Enumerate, RespectsBudget) {
  SharedX s;
  Status st = EnumerateSchedules(s.system, 1,
                                 [](const Schedule&) { return true; });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(ScheduleToString, UsesPaperNotation) {
  SharedX s;
  Schedule h;
  h.Append(0, 0);
  h.Append(0, 1);
  std::string str = h.ToString(s.system);
  EXPECT_EQ(str, "Lx_1 x_1");
}

}  // namespace
}  // namespace dislock
