// Replay byte-identity tests (src/gen/replay.h): every registered family's
// trace must produce byte-identical check reports through the direct
// SessionCore replay and the serve-style sequencer at every point of the
// {1,4} shards x {1,4} threads grid — the same gate `dislock replay
// --verify` and `dislock_bench --bench=trace` run. Also covers the
// `system` session verb the traces rely on (JSON envelope only).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/incremental/session.h"
#include "gen/family.h"
#include "gen/replay.h"
#include "gen/trace.h"

namespace dislock {
namespace gen {
namespace {

TEST(TraceReplay, EveryFamilyIsGridIdenticalAtDefaults) {
  for (const std::string& family : RegisteredFamilies()) {
    auto trace = GenerateTrace(family);
    ASSERT_TRUE(trace.ok()) << family;
    VerifyResult verify = VerifyReplay(*trace);
    EXPECT_TRUE(verify.ok) << family;
    ASSERT_EQ(verify.cells.size(), 4u) << family;
    for (const VerifyCell& cell : verify.cells) {
      EXPECT_TRUE(cell.identical)
          << family << " diverged at shards=" << cell.shards
          << " threads=" << cell.threads;
      EXPECT_EQ(cell.errors, 0)
          << family << " failed commands at shards=" << cell.shards
          << " threads=" << cell.threads;
    }
  }
}

TEST(TraceReplay, DirectReplayExecutesEveryRecordCleanly) {
  auto trace = GenerateTrace("churn");
  ASSERT_TRUE(trace.ok());
  ReplayResult direct = ReplayDirect(*trace, ReplayOptions());
  EXPECT_EQ(direct.commands, trace->header.records);
  EXPECT_GT(direct.checks, 1);  // churn re-checks along the edit stream
  EXPECT_EQ(direct.errors, 0);

  std::string checks = CheckLines(direct.output);
  EXPECT_FALSE(checks.empty());
  std::istringstream lines(checks);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("\"cmd\": \"check\""), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, direct.checks);
}

TEST(TraceReplay, ServiceMatchesDirectAtOneShard) {
  auto trace = GenerateTrace("ring");
  ASSERT_TRUE(trace.ok());
  ReplayResult direct = ReplayDirect(*trace, ReplayOptions());
  ReplayResult service = ReplayService(*trace, ReplayOptions());
  // At one shard even the full outputs agree (no lane-allocated ids in
  // play for a system+check trace); the check projection certainly must.
  EXPECT_EQ(CheckLines(service.output), CheckLines(direct.output));
  EXPECT_EQ(service.errors, direct.errors);
  EXPECT_EQ(service.checks, direct.checks);
}

// The property test: randomized edit-mix traces (seeded, so reproducible
// on failure) replay grid-identically at 1 and 4 threads, 1 and 4 shards.
// The churn family exercises add/remove/replace against the sharded
// catalog; two_site and hotkey randomize the lock footprints.
TEST(TraceReplay, RandomizedTracesAreGridIdentical) {
  struct Case {
    const char* family;
    ParamMap params;
  };
  const std::vector<Case> cases = {
      {"churn", {{"k", 5}, {"edits", 9}, {"check_every", 3}}},
      {"two_site", {{"k", 7}, {"entities", 5}, {"locks", 2}}},
      {"hotkey", {{"k", 6}, {"entities", 8}, {"skew", 1.5}}},
  };
  for (const Case& c : cases) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      auto trace = GenerateTrace(c.family, c.params, seed);
      ASSERT_TRUE(trace.ok()) << c.family << " seed " << seed;
      VerifyResult verify = VerifyReplay(*trace, {1, 4}, {1, 4});
      EXPECT_TRUE(verify.ok) << c.family << " seed " << seed;
      for (const VerifyCell& cell : verify.cells) {
        EXPECT_TRUE(cell.identical)
            << c.family << " seed " << seed << " diverged at shards="
            << cell.shards << " threads=" << cell.threads;
      }
    }
  }
}

int RunJsonSession(const std::string& script, std::string* output) {
  std::istringstream in(script);
  std::ostringstream out;
  SessionOptions options;
  options.json = true;
  int failed = RunSession(in, out, options);
  *output = out.str();
  return failed;
}

TEST(SessionSystemVerb, InlineSystemInitializesTheCatalog) {
  auto trace = GenerateTrace("ring");
  ASSERT_TRUE(trace.ok());
  std::string script;
  for (const std::string& record : trace->records) {
    script += record;
    script += '\n';
  }
  std::string output;
  EXPECT_EQ(RunJsonSession(script, &output), 0);
  EXPECT_NE(output.find("\"cmd\": \"system\", \"ok\": true"),
            std::string::npos);
  EXPECT_NE(output.find("\"transactions\": 8"), std::string::npos);
  EXPECT_NE(output.find("\"cmd\": \"check\", \"ok\": true"),
            std::string::npos);
}

TEST(SessionSystemVerb, MissingBlockIsAnError) {
  std::string output;
  EXPECT_EQ(RunJsonSession("{\"cmd\": \"system\"}\n", &output), 1);
  EXPECT_NE(output.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(output.find("JSON envelope only"), std::string::npos);
}

TEST(SessionSystemVerb, TextModeCannotCarryTheBlock) {
  // Text-mode block collection stops at the first `end` line, which would
  // truncate a multi-transaction system — so `system` is JSON-only and the
  // bare text command reports the same missing-block error.
  std::istringstream in("system\n");
  std::ostringstream out;
  EXPECT_EQ(RunSession(in, out, SessionOptions()), 1);
  EXPECT_NE(out.str().find("error:"), std::string::npos);
  EXPECT_NE(out.str().find("JSON envelope only"), std::string::npos);
}

TEST(SessionSystemVerb, BadSystemTextLeavesTheCatalogIntact) {
  auto trace = GenerateTrace("ring");
  ASSERT_TRUE(trace.ok());
  std::string script = trace->records[0] + "\n";  // the good system
  script += "{\"cmd\": \"system\", \"block\": \"sites 0\"}\n";  // rejected
  script += "{\"cmd\": \"check\"}\n";
  std::string output;
  EXPECT_EQ(RunJsonSession(script, &output), 1);  // exactly the bad one
  EXPECT_NE(output.find("\"cmd\": \"check\", \"ok\": true"),
            std::string::npos);
}

TEST(SessionSystemVerb, BlockOnOtherVerbsStaysRejected) {
  std::string output;
  EXPECT_EQ(RunJsonSession(
                "{\"cmd\": \"check\", \"block\": \"txn T end\"}\n", &output),
            1);
  EXPECT_NE(output.find("\"ok\": false"), std::string::npos);
}

}  // namespace
}  // namespace gen
}  // namespace dislock
