# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/paper_figures_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/closure_certificate_test[1]_include.cmake")
include("/root/repo/build/tests/safety_test[1]_include.cmake")
include("/root/repo/build/tests/multi_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/deadlock_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_test[1]_include.cmake")
include("/root/repo/build/tests/text_format_test[1]_include.cmake")
include("/root/repo/build/tests/deadlock_geometry_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/integration_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/shared_locks_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/parser_robustness_test[1]_include.cmake")
