
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sat_test.cc" "tests/CMakeFiles/sat_test.dir/sat_test.cc.o" "gcc" "tests/CMakeFiles/sat_test.dir/sat_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dislock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/dislock_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dislock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/dislock_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/dislock_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dislock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dislock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
