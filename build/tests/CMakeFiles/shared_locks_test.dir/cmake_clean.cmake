file(REMOVE_RECURSE
  "CMakeFiles/shared_locks_test.dir/shared_locks_test.cc.o"
  "CMakeFiles/shared_locks_test.dir/shared_locks_test.cc.o.d"
  "shared_locks_test"
  "shared_locks_test.pdb"
  "shared_locks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
