# Empty dependencies file for shared_locks_test.
# This may be replaced when dependencies are built.
