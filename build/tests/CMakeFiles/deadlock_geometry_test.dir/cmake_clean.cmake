file(REMOVE_RECURSE
  "CMakeFiles/deadlock_geometry_test.dir/deadlock_geometry_test.cc.o"
  "CMakeFiles/deadlock_geometry_test.dir/deadlock_geometry_test.cc.o.d"
  "deadlock_geometry_test"
  "deadlock_geometry_test.pdb"
  "deadlock_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
