file(REMOVE_RECURSE
  "CMakeFiles/closure_certificate_test.dir/closure_certificate_test.cc.o"
  "CMakeFiles/closure_certificate_test.dir/closure_certificate_test.cc.o.d"
  "closure_certificate_test"
  "closure_certificate_test.pdb"
  "closure_certificate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closure_certificate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
