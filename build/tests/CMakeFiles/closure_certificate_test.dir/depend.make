# Empty dependencies file for closure_certificate_test.
# This may be replaced when dependencies are built.
