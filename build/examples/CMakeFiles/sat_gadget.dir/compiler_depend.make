# Empty compiler generated dependencies file for sat_gadget.
# This may be replaced when dependencies are built.
