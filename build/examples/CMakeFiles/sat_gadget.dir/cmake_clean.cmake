file(REMOVE_RECURSE
  "CMakeFiles/sat_gadget.dir/sat_gadget.cc.o"
  "CMakeFiles/sat_gadget.dir/sat_gadget.cc.o.d"
  "sat_gadget"
  "sat_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
