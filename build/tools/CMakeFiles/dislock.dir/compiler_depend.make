# Empty compiler generated dependencies file for dislock.
# This may be replaced when dependencies are built.
