file(REMOVE_RECURSE
  "CMakeFiles/dislock.dir/dislock_cli.cc.o"
  "CMakeFiles/dislock.dir/dislock_cli.cc.o.d"
  "dislock"
  "dislock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dislock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
