file(REMOVE_RECURSE
  "CMakeFiles/dislock_stress.dir/dislock_stress.cc.o"
  "CMakeFiles/dislock_stress.dir/dislock_stress.cc.o.d"
  "dislock_stress"
  "dislock_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dislock_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
