# Empty dependencies file for dislock_stress.
# This may be replaced when dependencies are built.
