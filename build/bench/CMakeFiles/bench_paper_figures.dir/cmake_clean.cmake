file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_figures.dir/bench_paper_figures.cc.o"
  "CMakeFiles/bench_paper_figures.dir/bench_paper_figures.cc.o.d"
  "bench_paper_figures"
  "bench_paper_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
