# Empty dependencies file for bench_paper_figures.
# This may be replaced when dependencies are built.
