file(REMOVE_RECURSE
  "CMakeFiles/bench_two_site.dir/bench_two_site.cc.o"
  "CMakeFiles/bench_two_site.dir/bench_two_site.cc.o.d"
  "bench_two_site"
  "bench_two_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_two_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
