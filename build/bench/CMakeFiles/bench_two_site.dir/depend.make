# Empty dependencies file for bench_two_site.
# This may be replaced when dependencies are built.
