file(REMOVE_RECURSE
  "CMakeFiles/bench_multi.dir/bench_multi.cc.o"
  "CMakeFiles/bench_multi.dir/bench_multi.cc.o.d"
  "bench_multi"
  "bench_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
