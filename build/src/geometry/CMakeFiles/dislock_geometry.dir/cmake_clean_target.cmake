file(REMOVE_RECURSE
  "libdislock_geometry.a"
)
