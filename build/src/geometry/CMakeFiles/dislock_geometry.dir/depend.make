# Empty dependencies file for dislock_geometry.
# This may be replaced when dependencies are built.
