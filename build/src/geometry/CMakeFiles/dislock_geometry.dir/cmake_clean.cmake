file(REMOVE_RECURSE
  "CMakeFiles/dislock_geometry.dir/curve.cc.o"
  "CMakeFiles/dislock_geometry.dir/curve.cc.o.d"
  "CMakeFiles/dislock_geometry.dir/deadlock_geometry.cc.o"
  "CMakeFiles/dislock_geometry.dir/deadlock_geometry.cc.o.d"
  "CMakeFiles/dislock_geometry.dir/picture.cc.o"
  "CMakeFiles/dislock_geometry.dir/picture.cc.o.d"
  "libdislock_geometry.a"
  "libdislock_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dislock_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
