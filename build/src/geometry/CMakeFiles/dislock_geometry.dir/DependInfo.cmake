
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/curve.cc" "src/geometry/CMakeFiles/dislock_geometry.dir/curve.cc.o" "gcc" "src/geometry/CMakeFiles/dislock_geometry.dir/curve.cc.o.d"
  "/root/repo/src/geometry/deadlock_geometry.cc" "src/geometry/CMakeFiles/dislock_geometry.dir/deadlock_geometry.cc.o" "gcc" "src/geometry/CMakeFiles/dislock_geometry.dir/deadlock_geometry.cc.o.d"
  "/root/repo/src/geometry/picture.cc" "src/geometry/CMakeFiles/dislock_geometry.dir/picture.cc.o" "gcc" "src/geometry/CMakeFiles/dislock_geometry.dir/picture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/dislock_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dislock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dislock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
