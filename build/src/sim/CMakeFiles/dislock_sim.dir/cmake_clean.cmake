file(REMOVE_RECURSE
  "CMakeFiles/dislock_sim.dir/executor.cc.o"
  "CMakeFiles/dislock_sim.dir/executor.cc.o.d"
  "CMakeFiles/dislock_sim.dir/lock_manager.cc.o"
  "CMakeFiles/dislock_sim.dir/lock_manager.cc.o.d"
  "CMakeFiles/dislock_sim.dir/scheduler.cc.o"
  "CMakeFiles/dislock_sim.dir/scheduler.cc.o.d"
  "CMakeFiles/dislock_sim.dir/workload.cc.o"
  "CMakeFiles/dislock_sim.dir/workload.cc.o.d"
  "libdislock_sim.a"
  "libdislock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dislock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
