file(REMOVE_RECURSE
  "libdislock_sim.a"
)
