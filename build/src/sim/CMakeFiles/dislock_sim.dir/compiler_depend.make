# Empty compiler generated dependencies file for dislock_sim.
# This may be replaced when dependencies are built.
