
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/executor.cc" "src/sim/CMakeFiles/dislock_sim.dir/executor.cc.o" "gcc" "src/sim/CMakeFiles/dislock_sim.dir/executor.cc.o.d"
  "/root/repo/src/sim/lock_manager.cc" "src/sim/CMakeFiles/dislock_sim.dir/lock_manager.cc.o" "gcc" "src/sim/CMakeFiles/dislock_sim.dir/lock_manager.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/dislock_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/dislock_sim.dir/scheduler.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/dislock_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/dislock_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dislock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/dislock_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dislock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/dislock_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dislock_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
