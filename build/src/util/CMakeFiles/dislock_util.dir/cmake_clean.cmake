file(REMOVE_RECURSE
  "CMakeFiles/dislock_util.dir/random.cc.o"
  "CMakeFiles/dislock_util.dir/random.cc.o.d"
  "CMakeFiles/dislock_util.dir/status.cc.o"
  "CMakeFiles/dislock_util.dir/status.cc.o.d"
  "CMakeFiles/dislock_util.dir/string_util.cc.o"
  "CMakeFiles/dislock_util.dir/string_util.cc.o.d"
  "libdislock_util.a"
  "libdislock_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dislock_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
