file(REMOVE_RECURSE
  "libdislock_util.a"
)
