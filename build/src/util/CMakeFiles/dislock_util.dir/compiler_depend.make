# Empty compiler generated dependencies file for dislock_util.
# This may be replaced when dependencies are built.
