
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/builder.cc" "src/txn/CMakeFiles/dislock_txn.dir/builder.cc.o" "gcc" "src/txn/CMakeFiles/dislock_txn.dir/builder.cc.o.d"
  "/root/repo/src/txn/database.cc" "src/txn/CMakeFiles/dislock_txn.dir/database.cc.o" "gcc" "src/txn/CMakeFiles/dislock_txn.dir/database.cc.o.d"
  "/root/repo/src/txn/linear_extension.cc" "src/txn/CMakeFiles/dislock_txn.dir/linear_extension.cc.o" "gcc" "src/txn/CMakeFiles/dislock_txn.dir/linear_extension.cc.o.d"
  "/root/repo/src/txn/schedule.cc" "src/txn/CMakeFiles/dislock_txn.dir/schedule.cc.o" "gcc" "src/txn/CMakeFiles/dislock_txn.dir/schedule.cc.o.d"
  "/root/repo/src/txn/step.cc" "src/txn/CMakeFiles/dislock_txn.dir/step.cc.o" "gcc" "src/txn/CMakeFiles/dislock_txn.dir/step.cc.o.d"
  "/root/repo/src/txn/text_format.cc" "src/txn/CMakeFiles/dislock_txn.dir/text_format.cc.o" "gcc" "src/txn/CMakeFiles/dislock_txn.dir/text_format.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/txn/CMakeFiles/dislock_txn.dir/transaction.cc.o" "gcc" "src/txn/CMakeFiles/dislock_txn.dir/transaction.cc.o.d"
  "/root/repo/src/txn/validate.cc" "src/txn/CMakeFiles/dislock_txn.dir/validate.cc.o" "gcc" "src/txn/CMakeFiles/dislock_txn.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dislock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dislock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
