# Empty compiler generated dependencies file for dislock_txn.
# This may be replaced when dependencies are built.
