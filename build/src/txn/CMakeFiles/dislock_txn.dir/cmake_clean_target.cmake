file(REMOVE_RECURSE
  "libdislock_txn.a"
)
