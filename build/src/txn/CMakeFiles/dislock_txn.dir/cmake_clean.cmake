file(REMOVE_RECURSE
  "CMakeFiles/dislock_txn.dir/builder.cc.o"
  "CMakeFiles/dislock_txn.dir/builder.cc.o.d"
  "CMakeFiles/dislock_txn.dir/database.cc.o"
  "CMakeFiles/dislock_txn.dir/database.cc.o.d"
  "CMakeFiles/dislock_txn.dir/linear_extension.cc.o"
  "CMakeFiles/dislock_txn.dir/linear_extension.cc.o.d"
  "CMakeFiles/dislock_txn.dir/schedule.cc.o"
  "CMakeFiles/dislock_txn.dir/schedule.cc.o.d"
  "CMakeFiles/dislock_txn.dir/step.cc.o"
  "CMakeFiles/dislock_txn.dir/step.cc.o.d"
  "CMakeFiles/dislock_txn.dir/text_format.cc.o"
  "CMakeFiles/dislock_txn.dir/text_format.cc.o.d"
  "CMakeFiles/dislock_txn.dir/transaction.cc.o"
  "CMakeFiles/dislock_txn.dir/transaction.cc.o.d"
  "CMakeFiles/dislock_txn.dir/validate.cc.o"
  "CMakeFiles/dislock_txn.dir/validate.cc.o.d"
  "libdislock_txn.a"
  "libdislock_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dislock_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
