file(REMOVE_RECURSE
  "libdislock_graph.a"
)
