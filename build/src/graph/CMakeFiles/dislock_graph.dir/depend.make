# Empty dependencies file for dislock_graph.
# This may be replaced when dependencies are built.
