file(REMOVE_RECURSE
  "CMakeFiles/dislock_graph.dir/cycles.cc.o"
  "CMakeFiles/dislock_graph.dir/cycles.cc.o.d"
  "CMakeFiles/dislock_graph.dir/digraph.cc.o"
  "CMakeFiles/dislock_graph.dir/digraph.cc.o.d"
  "CMakeFiles/dislock_graph.dir/dominator.cc.o"
  "CMakeFiles/dislock_graph.dir/dominator.cc.o.d"
  "CMakeFiles/dislock_graph.dir/reachability.cc.o"
  "CMakeFiles/dislock_graph.dir/reachability.cc.o.d"
  "CMakeFiles/dislock_graph.dir/scc.cc.o"
  "CMakeFiles/dislock_graph.dir/scc.cc.o.d"
  "CMakeFiles/dislock_graph.dir/topological.cc.o"
  "CMakeFiles/dislock_graph.dir/topological.cc.o.d"
  "libdislock_graph.a"
  "libdislock_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dislock_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
