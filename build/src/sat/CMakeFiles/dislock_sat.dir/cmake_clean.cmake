file(REMOVE_RECURSE
  "CMakeFiles/dislock_sat.dir/cnf.cc.o"
  "CMakeFiles/dislock_sat.dir/cnf.cc.o.d"
  "CMakeFiles/dislock_sat.dir/normalize.cc.o"
  "CMakeFiles/dislock_sat.dir/normalize.cc.o.d"
  "CMakeFiles/dislock_sat.dir/reduction.cc.o"
  "CMakeFiles/dislock_sat.dir/reduction.cc.o.d"
  "CMakeFiles/dislock_sat.dir/solver.cc.o"
  "CMakeFiles/dislock_sat.dir/solver.cc.o.d"
  "libdislock_sat.a"
  "libdislock_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dislock_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
