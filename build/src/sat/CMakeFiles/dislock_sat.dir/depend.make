# Empty dependencies file for dislock_sat.
# This may be replaced when dependencies are built.
