file(REMOVE_RECURSE
  "libdislock_sat.a"
)
