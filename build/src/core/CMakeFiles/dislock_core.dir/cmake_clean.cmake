file(REMOVE_RECURSE
  "CMakeFiles/dislock_core.dir/brute_force.cc.o"
  "CMakeFiles/dislock_core.dir/brute_force.cc.o.d"
  "CMakeFiles/dislock_core.dir/certificate.cc.o"
  "CMakeFiles/dislock_core.dir/certificate.cc.o.d"
  "CMakeFiles/dislock_core.dir/closure.cc.o"
  "CMakeFiles/dislock_core.dir/closure.cc.o.d"
  "CMakeFiles/dislock_core.dir/conflict_graph.cc.o"
  "CMakeFiles/dislock_core.dir/conflict_graph.cc.o.d"
  "CMakeFiles/dislock_core.dir/deadlock.cc.o"
  "CMakeFiles/dislock_core.dir/deadlock.cc.o.d"
  "CMakeFiles/dislock_core.dir/multi.cc.o"
  "CMakeFiles/dislock_core.dir/multi.cc.o.d"
  "CMakeFiles/dislock_core.dir/paper.cc.o"
  "CMakeFiles/dislock_core.dir/paper.cc.o.d"
  "CMakeFiles/dislock_core.dir/policy.cc.o"
  "CMakeFiles/dislock_core.dir/policy.cc.o.d"
  "CMakeFiles/dislock_core.dir/protocols.cc.o"
  "CMakeFiles/dislock_core.dir/protocols.cc.o.d"
  "CMakeFiles/dislock_core.dir/report.cc.o"
  "CMakeFiles/dislock_core.dir/report.cc.o.d"
  "CMakeFiles/dislock_core.dir/safety.cc.o"
  "CMakeFiles/dislock_core.dir/safety.cc.o.d"
  "libdislock_core.a"
  "libdislock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dislock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
