# Empty dependencies file for dislock_core.
# This may be replaced when dependencies are built.
