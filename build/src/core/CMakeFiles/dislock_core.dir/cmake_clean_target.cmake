file(REMOVE_RECURSE
  "libdislock_core.a"
)
