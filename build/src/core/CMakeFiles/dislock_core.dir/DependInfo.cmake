
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brute_force.cc" "src/core/CMakeFiles/dislock_core.dir/brute_force.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/brute_force.cc.o.d"
  "/root/repo/src/core/certificate.cc" "src/core/CMakeFiles/dislock_core.dir/certificate.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/certificate.cc.o.d"
  "/root/repo/src/core/closure.cc" "src/core/CMakeFiles/dislock_core.dir/closure.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/closure.cc.o.d"
  "/root/repo/src/core/conflict_graph.cc" "src/core/CMakeFiles/dislock_core.dir/conflict_graph.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/conflict_graph.cc.o.d"
  "/root/repo/src/core/deadlock.cc" "src/core/CMakeFiles/dislock_core.dir/deadlock.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/deadlock.cc.o.d"
  "/root/repo/src/core/multi.cc" "src/core/CMakeFiles/dislock_core.dir/multi.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/multi.cc.o.d"
  "/root/repo/src/core/paper.cc" "src/core/CMakeFiles/dislock_core.dir/paper.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/paper.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/dislock_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/policy.cc.o.d"
  "/root/repo/src/core/protocols.cc" "src/core/CMakeFiles/dislock_core.dir/protocols.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/protocols.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/dislock_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/report.cc.o.d"
  "/root/repo/src/core/safety.cc" "src/core/CMakeFiles/dislock_core.dir/safety.cc.o" "gcc" "src/core/CMakeFiles/dislock_core.dir/safety.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/dislock_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/dislock_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dislock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dislock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
