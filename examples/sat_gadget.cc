// The Theorem 3 machine, end to end: take a CNF formula (from the command
// line in DIMACS form, or the paper's Fig. 8 example by default), normalize
// it to the restricted SAT variant, compile it into a pair of distributed
// transactions, and decide satisfiability by deciding SAFETY — every
// dominator of the conflict graph is a candidate truth assignment, and the
// pair is unsafe exactly when one of them satisfies the formula.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/certificate.h"
#include "core/conflict_graph.h"
#include "core/safety.h"
#include "graph/dominator.h"
#include "sat/normalize.h"
#include "sat/reduction.h"
#include "sat/solver.h"

using namespace dislock;

int main(int argc, char** argv) {
  Cnf formula;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = ParseDimacs(text.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    formula = std::move(parsed).value();
  } else {
    formula = MakeCnf(3, {{1, 2, 3}, {-1, 2, -3}});  // Fig. 8's F
  }
  std::printf("F = %s\n", formula.ToString().c_str());

  // Normalize to the restricted variant the reduction needs.
  auto restricted = NormalizeToRestricted(formula);
  if (!restricted.ok()) {
    std::fprintf(stderr, "%s\n", restricted.status().ToString().c_str());
    return 1;
  }
  if (restricted->trivially_sat || restricted->trivially_unsat) {
    std::printf("decided by preprocessing: %s\n",
                restricted->trivially_sat ? "SATISFIABLE" : "UNSATISFIABLE");
    return 0;
  }
  std::printf("restricted form: %s\n", restricted->cnf.ToString().c_str());

  // Compile to transactions.
  auto red = ReduceCnfToTransactions(restricted->cnf);
  if (!red.ok()) {
    std::fprintf(stderr, "%s\n", red.status().ToString().c_str());
    return 1;
  }
  std::printf("T1(F), T2(F): %d entities, one site each; %d steps total\n",
              red->db->NumEntities(), red->system->TotalSteps());

  ConflictGraph d = BuildConflictGraph(red->system->txn(0),
                                       red->system->txn(1));
  auto dominators = AllDominators(d.graph, 1 << 14);
  std::printf("dominators of D (candidate assignments): %zu\n",
              dominators.size());

  // Decide safety by the dominator-closure loop.
  SafetyOptions options;
  options.max_extension_pairs = 0;
  options.max_dominators = 1 << 14;
  PairSafetyReport report = AnalyzePairSafety(red->system->txn(0),
                                              red->system->txn(1), options);
  std::printf("safety verdict: %s  =>  F is %s\n",
              SafetyVerdictName(report.verdict),
              report.verdict == SafetyVerdict::kUnsafe ? "SATISFIABLE"
              : report.verdict == SafetyVerdict::kSafe ? "UNSATISFIABLE"
                                                       : "UNDECIDED");

  if (report.certificate.has_value()) {
    auto assignment = DominatorToAssignment(*red,
                                            report.certificate->dominator);
    if (assignment.ok()) {
      std::printf("satisfying assignment read off the dominator:");
      for (int v = 1; v <= restricted->cnf.num_vars; ++v) {
        std::printf(" x%d=%d", v, static_cast<int>((*assignment)[v]));
      }
      std::vector<bool> lifted = restricted->LiftModel(*assignment);
      std::printf("\nlifted to the original formula:");
      for (int v = 1; v <= formula.num_vars; ++v) {
        std::printf(" x%d=%d", v, static_cast<int>(lifted[v]));
      }
      std::printf("  (check: %s)\n",
                  formula.IsSatisfiedBy(lifted) ? "satisfies F" : "BUG");
    }
    std::printf(
        "the non-serializable schedule witnessing it has %zu events\n",
        report.certificate->schedule.size());
  }

  // Cross-check with the DPLL oracle.
  auto dpll = SolveSat(formula);
  std::printf("DPLL cross-check: %s\n",
              dpll->satisfiable ? "SATISFIABLE" : "UNSATISFIABLE");
  return 0;
}
