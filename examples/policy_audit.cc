// Auditing a whole workload of locked transactions (Section 6): pairwise
// safety (condition a) plus the B_c cycle condition over the transaction
// conflict graph (condition b, Proposition 2). Shows a subtle failure mode:
// every PAIR is safe, yet three transactions chained around a cycle of
// entities produce a non-serializable global schedule — and how two-phase
// locking repairs it.

#include <cstdio>

#include "core/multi.h"
#include "core/policy.h"
#include "sim/scheduler.h"
#include "txn/builder.h"

using namespace dislock;

namespace {

void Report(const TransactionSystem& system, const char* title) {
  std::printf("== %s\n", title);
  MultiSafetyReport report = AnalyzeMultiSafety(system);
  std::printf("verdict: %s (pairs checked: %d, cycles checked: %d)\n",
              SafetyVerdictName(report.verdict), report.pairs_checked,
              report.cycles_checked);
  if (report.failing_pair.has_value()) {
    std::printf("  unsafe pair: %s / %s\n",
                system.txn(report.failing_pair->first).name().c_str(),
                system.txn(report.failing_pair->second).name().c_str());
  }
  if (!report.failing_cycle.empty()) {
    std::printf("  acyclic B_c for the transaction cycle:");
    for (int i : report.failing_cycle) {
      std::printf(" %s", system.txn(i).name().c_str());
    }
    std::printf("\n  (pairwise safe, globally unsafe)\n");
  }

  // Operational confirmation.
  Rng rng(7);
  MonteCarloStats stats = SampleSafety(system, 50000, &rng);
  if (stats.witness.has_value()) {
    std::printf("  sampled witness: %s\n",
                stats.witness->ToString(system).c_str());
  } else {
    std::printf("  50k sampled runs: no non-serializable schedule\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  DistributedDatabase db(1);
  db.MustAddEntity("a", 0);
  db.MustAddEntity("b", 0);
  db.MustAddEntity("c", 0);

  // Workload 1: each job updates two entities in sequence, releasing the
  // first before taking the second, arranged in a ring a->b->c->a.
  TransactionSystem ring(&db);
  auto add_seq = [&](const char* name, const char* e1, const char* e2) {
    TransactionBuilder b(&db, name);
    b.LockUpdateUnlock(e1);
    b.LockUpdateUnlock(e2);
    ring.Add(b.Build());
  };
  add_seq("MoveAB", "a", "b");
  add_seq("MoveBC", "b", "c");
  add_seq("MoveCA", "c", "a");
  Report(ring, "sequential-section ring (pairwise safe)");

  // Workload 2: the same access pattern under two-phase locking.
  TransactionSystem two_phase(&db);
  EntityId a = db.Find("a").value();
  EntityId b = db.Find("b").value();
  EntityId c = db.Find("c").value();
  two_phase.Add(MakeTwoPhaseTransaction(&db, "MoveAB'", {a, b}));
  two_phase.Add(MakeTwoPhaseTransaction(&db, "MoveBC'", {b, c}));
  two_phase.Add(MakeTwoPhaseTransaction(&db, "MoveCA'", {c, a}));
  for (int i = 0; i < two_phase.NumTransactions(); ++i) {
    std::printf("%s is two-phase: %s, strongly two-phase: %s\n",
                two_phase.txn(i).name().c_str(),
                IsTwoPhase(two_phase.txn(i)) ? "yes" : "no",
                IsStronglyTwoPhase(two_phase.txn(i)) ? "yes" : "no");
  }
  Report(two_phase, "two-phase ring");

  // Workload 3: mixed — one straggler without the lock point.
  TransactionSystem mixed(&db);
  mixed.Add(MakeTwoPhaseTransaction(&db, "MoveAB'", {a, b}));
  mixed.Add(MakeTwoPhaseTransaction(&db, "MoveBC'", {b, c}));
  {
    TransactionBuilder s(&db, "MoveCA-sloppy");
    s.LockUpdateUnlock("c");
    s.LockUpdateUnlock("a");
    mixed.Add(s.Build());
  }
  Report(mixed, "two-phase ring with one sloppy transaction");
  return 0;
}
