// A concrete two-site scenario: a bank with accounts partitioned across two
// branches. A transfer transaction debits at branch A and credits at branch
// B; an audit transaction reads both balances. Naive locking (release each
// branch's lock as soon as that branch's work is done) lets the audit see a
// state where the money is "in flight" — a non-serializable schedule the
// analyzer finds and prints, along with its geometric picture.

#include <cstdio>

#include "core/safety.h"
#include "geometry/picture.h"
#include "sim/scheduler.h"
#include "txn/builder.h"

using namespace dislock;

int main() {
  DistributedDatabase db(2);
  db.MustAddEntity("checking", 0);  // branch A
  db.MustAddEntity("savings", 1);   // branch B

  // Transfer: debit checking at branch A, then credit savings at branch B.
  // Each branch's lock is released as soon as that branch is done —
  // pipelined, fast, and wrong.
  TransactionBuilder transfer(&db, "Transfer");
  transfer.Lock("checking");
  transfer.Update("checking");  // checking -= amount
  StepId debit_done = transfer.Unlock("checking");
  StepId credit_begin = transfer.Lock("savings");
  transfer.Update("savings");   // savings += amount
  transfer.Unlock("savings");
  transfer.Edge(debit_done, credit_begin);  // debit before credit

  // Audit: sums both balances, locking savings first (it runs from branch
  // B), then checking.
  TransactionBuilder audit(&db, "Audit");
  audit.Lock("savings");
  audit.Update("savings");  // read-modify bookkeeping at B
  StepId b_done = audit.Unlock("savings");
  StepId a_begin = audit.Lock("checking");
  audit.Update("checking");
  audit.Unlock("checking");
  audit.Edge(b_done, a_begin);

  Transaction t_transfer = transfer.BuildValidated().value();
  Transaction t_audit = audit.BuildValidated().value();

  std::printf("== Safety analysis of {Transfer, Audit}\n");
  auto report = TwoSiteSafetyTest(t_transfer, t_audit);
  std::printf("verdict: %s\n", SafetyVerdictName(report->verdict));
  std::printf("D: %s\n", ConflictGraphToString(report->d, db).c_str());

  if (report->certificate.has_value()) {
    const UnsafetyCertificate& cert = *report->certificate;
    std::printf("\nanomalous interleaving:\n  %s\n",
                [&] {
                  TransactionSystem pair(&db);
                  pair.Add(cert.t1);
                  pair.Add(cert.t2);
                  return cert.schedule.ToString(pair);
                }()
                    .c_str());
    std::printf(
        "\nThe audit observes checking AFTER the debit but savings BEFORE\n"
        "the credit: the money vanishes from its books. Geometrically, the\n"
        "schedule's curve separates the two forbidden rectangles:\n\n");
    auto pic = PairPicture::Make(cert.t1, cert.t2);
    TransactionSystem pair(&db);
    pair.Add(cert.t1);
    pair.Add(cert.t2);
    std::printf("%s", pic->Render(pair).c_str());
  }

  // How often does the anomaly actually bite? Sample concurrent runs.
  TransactionSystem system(&db);
  system.Add(t_transfer);
  system.Add(t_audit);
  Rng rng(2026);
  MonteCarloStats stats = SampleSafety(system, 100000, &rng,
                                       /*keep_going=*/true);
  std::printf(
      "\nMonte-Carlo: %lld runs, %lld completed, %lld deadlocked, "
      "%lld non-serializable (%.1f%% of completions)\n",
      static_cast<long long>(stats.runs),
      static_cast<long long>(stats.completed),
      static_cast<long long>(stats.deadlocked),
      static_cast<long long>(stats.non_serializable),
      stats.completed > 0
          ? 100.0 * static_cast<double>(stats.non_serializable) /
                static_cast<double>(stats.completed)
          : 0.0);

  // The fix: hold both locks across the transfer (two-phase with a lock
  // point) — Theorem 1 then proves every interleaving serializable.
  TransactionBuilder fixed(&db, "Transfer2PL");
  StepId lc = fixed.Lock("checking");
  StepId ls = fixed.Lock("savings");
  fixed.Update("checking");
  fixed.Update("savings");
  StepId uc = fixed.Unlock("checking");
  StepId us = fixed.Unlock("savings");
  fixed.Edge(lc, us).Edge(ls, uc);
  TransactionBuilder audit2(&db, "Audit2PL");
  StepId ls2 = audit2.Lock("savings");
  StepId lc2 = audit2.Lock("checking");
  audit2.Update("savings");
  audit2.Update("checking");
  StepId us2 = audit2.Unlock("savings");
  StepId uc2 = audit2.Unlock("checking");
  audit2.Edge(ls2, uc2).Edge(lc2, us2);

  auto fixed_report = TwoSiteSafetyTest(fixed.BuildValidated().value(),
                                        audit2.BuildValidated().value());
  std::printf("\nwith a lock point on both transactions: %s\n",
              SafetyVerdictName(fixed_report->verdict));
  return 0;
}
