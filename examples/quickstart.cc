// Quickstart: define a distributed database, build two locked transactions
// as partial orders, and ask whether the system is safe (every schedule
// serializable). When it is not, the analyzer hands back a verifiable
// certificate: a pair of compatible total orders plus a legal,
// non-serializable schedule.

#include <cstdio>

#include "core/safety.h"
#include "txn/builder.h"

using namespace dislock;

int main() {
  // A database with two sites; x lives at site 0, y at site 1.
  DistributedDatabase db(2);
  db.MustAddEntity("x", 0);
  db.MustAddEntity("y", 1);

  // T1 and T2 both lock x and y. Steps at one site are chained
  // automatically (the model requires per-site total orders); the two
  // sites run concurrently unless an explicit cross-site Edge is added.
  TransactionBuilder b1(&db, "T1");
  b1.Lock("x");
  b1.Update("x");
  b1.Unlock("x");
  b1.Lock("y");
  b1.Update("y");
  b1.Unlock("y");
  Transaction t1 = b1.BuildValidated().value();

  TransactionBuilder b2(&db, "T2");
  b2.Lock("x");
  b2.Update("x");
  b2.Unlock("x");
  b2.Lock("y");
  b2.Update("y");
  b2.Unlock("y");
  Transaction t2 = b2.BuildValidated().value();

  std::printf("%s%s", t1.ToString().c_str(), t2.ToString().c_str());

  // Two sites: Theorem 2 decides exactly — safe iff D(T1,T2) is strongly
  // connected — in O(n^2).
  PairSafetyReport report = AnalyzePairSafety(t1, t2);
  std::printf("verdict: %s (method: %s, %d sites)\n",
              SafetyVerdictName(report.verdict), DecisionMethodName(report.method),
              report.sites_spanned);
  std::printf("D(T1,T2): %s\n",
              ConflictGraphToString(report.d, db).c_str());

  if (report.certificate.has_value()) {
    std::printf("%s", CertificateToString(*report.certificate, db).c_str());
    std::printf(
        "\nThe schedule above interleaves the transactions legally yet is\n"
        "equivalent to no serial order: the locking is incorrect.\n");
  }

  // Fix it: a global lock point (every lock precedes every unlock) makes
  // the pair safe at any number of sites (Theorem 1).
  TransactionBuilder f1(&db, "T1'");
  StepId lx = f1.Lock("x");
  StepId ly = f1.Lock("y");
  f1.Update("x");
  f1.Update("y");
  StepId ux = f1.Unlock("x");
  StepId uy = f1.Unlock("y");
  f1.Edge(lx, uy).Edge(ly, ux);  // the cross-site lock point
  Transaction t1_fixed = f1.BuildValidated().value();

  PairSafetyReport fixed = AnalyzePairSafety(t1_fixed, t1_fixed);
  std::printf("\nafter adding a lock point: %s (method: %s)\n",
              SafetyVerdictName(fixed.verdict), DecisionMethodName(fixed.method));
  return 0;
}
