#ifndef DISLOCK_CACHE_VERDICT_STORE_H_
#define DISLOCK_CACHE_VERDICT_STORE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/verdict_cache.h"
#include "util/mmap_file.h"

namespace dislock {
namespace cache {

/// On-disk format version of the verdict store (docs/caching.md). Bump on
/// any change to the header or record layout; a store stamped with a
/// different version warm-loads as empty and is rebuilt.
inline constexpr uint32_t kVerdictStoreSchemaVersion = 1;

/// Kernel/wire-format generation tag. A cached verdict is only as durable
/// as the semantics that produced it, so this constant must be bumped
/// whenever the PairFingerprint canonicalization, the SafetyVerdict /
/// DecisionMethod numbering, or the decision procedure's verdict contract
/// changes. A store stamped with a different generation warm-loads as
/// empty — stale verdicts are dropped wholesale, never reinterpreted.
inline constexpr uint32_t kVerdictStoreGeneration = 1;

/// File names inside the cache directory, for tools and tests that need to
/// inspect (or deliberately corrupt) a store from outside.
inline constexpr char kVerdictLogFileName[] = "verdicts.dlc";
inline constexpr char kVerdictIndexFileName[] = "verdicts.idx";
inline constexpr char kVerdictLockFileName[] = "verdicts.lock";

/// Tier 2 of the verdict cache: a persistent fingerprint -> verdict store
/// shared across runs, processes, and the serve fleet's shards.
///
/// Layout inside the cache directory (docs/caching.md has the diagram):
///   verdicts.dlc   append-only log: 16-byte header (magic "DLKC",
///                  schema_version, generation), then one checksummed
///                  record per fingerprint.
///   verdicts.idx   mmap'd open-addressing index over the log: 40-byte
///                  header (magic "DLKI", schema_version, generation, the
///                  log size it covers, capacity, count), then
///                  power-of-two-capacity slots of (fnv64 hash, log offset
///                  + 1). A pure cache of the log — rebuilt from it
///                  whenever stale or damaged.
///   verdicts.lock  advisory flock taken by appenders (Flush) and by Open
///                  when it needs to repair files. Readers never lock.
///
/// Crash safety: every record carries an FNV-1a checksum over its payload;
/// Open replays the log and stops at the first record that is truncated or
/// fails its checksum, so a torn tail (killed writer, full disk) silently
/// shrinks the store instead of poisoning it. A header whose magic,
/// schema_version, or generation does not match — including a zero-byte or
/// garbage file — warm-loads as empty and the files are rebuilt on the
/// next Flush. Open never fails on corrupt content, only on real I/O
/// errors (e.g. the directory cannot be created).
///
/// Concurrency: one mutex serializes the in-process API (the engine calls
/// Lookup from pool workers; the serve fleet's shards share one store
/// through the coordinator). Across processes, appenders serialize through
/// the flock and re-scan the log before appending, so concurrent flushes
/// lose no records and write no duplicates; lock-free readers are safe
/// because records become visible only after their bytes (checksum
/// included) are written.
///
/// Determinism: the store memoizes verdicts of a pure function, so serving
/// a verdict from disk can never change what the engine would have
/// computed — only how fast. See docs/caching.md for the exact
/// byte-identity contract.
class VerdictStore {
 public:
  struct Stats {
    int64_t disk_hits = 0;        ///< lookups served by the store
    int64_t disk_misses = 0;      ///< lookups the store could not serve
    int64_t records_loaded = 0;   ///< valid records found by Open
    int64_t records_dropped = 0;  ///< corrupt tails/records dropped by Open
    int64_t records_flushed = 0;  ///< records appended by Flush calls
  };

  VerdictStore() = default;
  ~VerdictStore() = default;

  VerdictStore(const VerdictStore&) = delete;
  VerdictStore& operator=(const VerdictStore&) = delete;

  /// Opens (creating if necessary) the store rooted at directory `dir`.
  /// Corrupt or stale content loads as empty (see class comment); false is
  /// returned only for real I/O failures, with a one-line reason in
  /// *error. A closed store is inert: Lookup always misses, Put and Flush
  /// are no-ops.
  bool Open(const std::string& dir, std::string* error = nullptr);

  bool is_open() const;
  const std::string& dir() const { return dir_; }

  /// The verdict stored for `fingerprint` — from the mmap'd index (with
  /// the full fingerprint verified against the log before trusting a
  /// probe) or from the pending not-yet-flushed buffer. Counts a disk hit
  /// or miss.
  std::optional<CachedPairVerdict> Lookup(const std::string& fingerprint);

  /// Buffers `entry` for the next Flush. No-op if the fingerprint is
  /// already on disk or already pending (first insert wins, matching the
  /// tier-1 memo).
  void Put(const std::string& fingerprint, const CachedPairVerdict& entry);

  /// Appends the pending records to the log under the appender flock,
  /// rebuilds the index, and remaps both. Records another process flushed
  /// since our Open are detected by re-scanning the log and are never
  /// duplicated. Returns the number of records this call appended.
  int64_t Flush();

  Stats stats() const;

  /// Records currently on disk (not counting the pending buffer).
  int64_t disk_records() const;
  int64_t pending_records() const;

  /// The generation tag this store was opened under (wire key
  /// cache_file_generation).
  uint32_t generation() const { return kVerdictStoreGeneration; }

 private:
  struct RecordRef {
    uint64_t hash = 0;
    uint64_t offset = 0;  ///< record start in verdicts.dlc
  };

  /// Scans the mapped log, filling `records` with the valid prefix.
  /// Returns the byte size of that prefix and counts dropped tails.
  uint64_t ScanLog(const MappedFile& log, std::vector<RecordRef>* records,
                   int64_t* dropped) const;

  /// Reads the record at `offset` of the mapped log; returns nullopt (and
  /// never a verdict) on any inconsistency.
  std::optional<CachedPairVerdict> ReadRecord(
      uint64_t offset, const std::string& fingerprint) const;

  /// Probes the mmap'd index (or the in-memory fallback) for
  /// `fingerprint`. Caller holds mu_.
  std::optional<CachedPairVerdict> Probe(
      const std::string& fingerprint) const;

  /// Writes a fresh index file covering `records`, then remaps it. Caller
  /// holds mu_ and the appender flock.
  bool RebuildIndex(const std::vector<RecordRef>& records,
                    uint64_t log_size);

  mutable std::mutex mu_;
  bool open_ = false;
  std::string dir_;
  std::string log_path_;
  std::string idx_path_;
  std::string lock_path_;

  MappedFile log_map_;
  MappedFile idx_map_;
  uint64_t log_valid_size_ = 0;  ///< checksum-verified prefix of the log
  int64_t disk_records_ = 0;

  /// Fallback index used when the index file cannot be rebuilt (e.g. the
  /// directory is read-only): every valid record's (hash, offset), probed
  /// linearly per hash bucket. Empty when the mmap'd index is live.
  std::unordered_multimap<uint64_t, uint64_t> fallback_index_;
  bool use_fallback_ = false;

  std::unordered_map<std::string, CachedPairVerdict> pending_;
  Stats stats_;
};

}  // namespace cache
}  // namespace dislock

#endif  // DISLOCK_CACHE_VERDICT_STORE_H_
