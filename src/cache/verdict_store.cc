#include "cache/verdict_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/wire_keys.h"

namespace dislock {
namespace cache {

namespace {

constexpr char kLogMagic[4] = {'D', 'L', 'K', 'C'};
constexpr char kIdxMagic[4] = {'D', 'L', 'K', 'I'};
constexpr uint64_t kLogHeaderSize = 16;
constexpr uint64_t kIdxHeaderSize = 40;
constexpr uint64_t kIdxSlotSize = 16;
constexpr uint64_t kRecordFixedSize = 12;  // checksum, fp_len, verdict,
                                           // method, sites
/// Upper bound on a plausible fingerprint; anything larger in a length
/// field is corruption, not data.
constexpr uint32_t kMaxFingerprintBytes = 1u << 24;

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t Fnv1a32(const uint8_t* data, size_t len) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

uint64_t Fnv1a64(const uint8_t* data, size_t len) {
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FingerprintHash(const std::string& fp) {
  return Fnv1a64(reinterpret_cast<const uint8_t*>(fp.data()), fp.size());
}

/// mkdir -p: creates every missing component of `dir`.
bool MakeDirs(const std::string& dir) {
  if (dir.empty()) return false;
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t slash = dir.find('/', pos);
    if (slash == std::string::npos) slash = dir.size();
    prefix = dir.substr(0, slash);
    pos = slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  struct stat st;
  return ::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool LogHeaderValid(const uint8_t* data, size_t size) {
  return size >= kLogHeaderSize &&
         std::memcmp(data, kLogMagic, sizeof(kLogMagic)) == 0 &&
         ReadU32(data + 4) == kVerdictStoreSchemaVersion &&
         ReadU32(data + 8) == kVerdictStoreGeneration;
}

std::string FreshLogHeader() {
  std::string h(kLogMagic, sizeof(kLogMagic));
  AppendU32(&h, kVerdictStoreSchemaVersion);
  AppendU32(&h, kVerdictStoreGeneration);
  AppendU32(&h, 0);  // reserved
  return h;
}

/// Rewrites the log as an empty store (header only) when its header is
/// missing or stale. Returns false on I/O failure.
bool RepairLog(const std::string& path, int64_t* dropped) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  uint8_t header[kLogHeaderSize];
  bool valid = st.st_size >= static_cast<off_t>(kLogHeaderSize) &&
               ::pread(fd, header, kLogHeaderSize, 0) ==
                   static_cast<ssize_t>(kLogHeaderSize) &&
               LogHeaderValid(header, kLogHeaderSize);
  if (!valid) {
    if (st.st_size > 0) ++*dropped;  // stale/garbled content, dropped whole
    std::string fresh = FreshLogHeader();
    bool ok = ::ftruncate(fd, 0) == 0 &&
              ::pwrite(fd, fresh.data(), fresh.size(), 0) ==
                  static_cast<ssize_t>(fresh.size());
    ::close(fd);
    return ok;
  }
  ::close(fd);
  return true;
}

bool IndexHeaderValid(const MappedFile& idx, uint64_t log_size) {
  const uint8_t* d = idx.data();
  if (idx.size() < kIdxHeaderSize) return false;
  if (std::memcmp(d, kIdxMagic, sizeof(kIdxMagic)) != 0) return false;
  if (ReadU32(d + 4) != kVerdictStoreSchemaVersion) return false;
  if (ReadU32(d + 8) != kVerdictStoreGeneration) return false;
  if (ReadU64(d + 16) != log_size) return false;  // stale: log moved on
  uint64_t capacity = ReadU64(d + 24);
  uint64_t count = ReadU64(d + 32);
  if (capacity == 0 || (capacity & (capacity - 1)) != 0) return false;
  if (idx.size() != kIdxHeaderSize + capacity * kIdxSlotSize) return false;
  return count <= capacity;
}

}  // namespace

bool VerdictStore::Open(const std::string& dir, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  open_ = false;
  log_map_.Unmap();
  idx_map_.Unmap();
  fallback_index_.clear();
  pending_.clear();
  stats_ = Stats();
  log_valid_size_ = 0;
  disk_records_ = 0;
  use_fallback_ = false;

  dir_ = dir;
  log_path_ = dir + "/" + kVerdictLogFileName;
  idx_path_ = dir + "/" + kVerdictIndexFileName;
  lock_path_ = dir + "/" + kVerdictLockFileName;

  if (!MakeDirs(dir)) {
    if (error != nullptr) *error = "cannot create cache directory " + dir;
    return false;
  }

  // Appender lock: Open may truncate a torn tail or rebuild the index, and
  // two processes opening the same cold directory must not race the
  // initial header write.
  FileLock flock(lock_path_);
  if (flock.held()) {
    if (!RepairLog(log_path_, &stats_.records_dropped)) {
      if (error != nullptr) *error = "cannot initialize " + log_path_;
      return false;
    }
  }

  if (!log_map_.Map(log_path_)) {
    if (error != nullptr) *error = "cannot map " + log_path_;
    return false;
  }

  std::vector<RecordRef> records;
  log_valid_size_ =
      ScanLog(log_map_, &records, &stats_.records_dropped);
  disk_records_ = static_cast<int64_t>(records.size());
  stats_.records_loaded = disk_records_;

  // Drop a torn tail for real, so lock-free readers of the mmap'd index
  // never see offsets beyond what checksums vouch for.
  if (flock.held() && log_valid_size_ < log_map_.size()) {
    int fd = ::open(log_path_.c_str(), O_RDWR | O_CLOEXEC);
    if (fd >= 0) {
      if (::ftruncate(fd, static_cast<off_t>(log_valid_size_)) == 0) {
        ::close(fd);
        log_map_.Map(log_path_);
      } else {
        ::close(fd);
      }
    }
  }

  bool idx_ok =
      idx_map_.Map(idx_path_) && IndexHeaderValid(idx_map_, log_valid_size_);
  if (!idx_ok) {
    if (!flock.held() || !RebuildIndex(records, log_valid_size_)) {
      // Read-only directory (or the rebuild failed): probe an in-memory
      // table instead. Correctness is identical, only the shared mapping
      // is lost.
      idx_map_.Unmap();
      use_fallback_ = true;
      fallback_index_.reserve(records.size());
      for (const RecordRef& r : records) {
        fallback_index_.emplace(r.hash, r.offset);
      }
    }
  }

  open_ = true;
  return true;
}

bool VerdictStore::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

uint64_t VerdictStore::ScanLog(const MappedFile& log,
                               std::vector<RecordRef>* records,
                               int64_t* dropped) const {
  const uint8_t* d = log.data();
  const uint64_t n = log.size();
  if (!LogHeaderValid(d, n)) {
    // Unrepaired stale/garbage file (read-only directory): load as empty.
    if (n > 0) ++*dropped;
    return kLogHeaderSize;
  }
  uint64_t off = kLogHeaderSize;
  while (off < n) {
    if (off + kRecordFixedSize > n) {
      ++*dropped;  // torn fixed header
      break;
    }
    const uint32_t checksum = ReadU32(d + off);
    const uint32_t fp_len = ReadU32(d + off + 4);
    if (fp_len == 0 || fp_len > kMaxFingerprintBytes ||
        off + kRecordFixedSize + fp_len > n) {
      ++*dropped;  // torn or garbled length
      break;
    }
    if (Fnv1a32(d + off + 4, 8 + fp_len) != checksum) {
      ++*dropped;  // bit flip / torn payload
      break;
    }
    records->push_back(
        {Fnv1a64(d + off + kRecordFixedSize, fp_len), off});
    off += kRecordFixedSize + fp_len;
  }
  return off;
}

std::optional<CachedPairVerdict> VerdictStore::ReadRecord(
    uint64_t offset, const std::string& fingerprint) const {
  const uint8_t* d = log_map_.data();
  if (offset + kRecordFixedSize > log_valid_size_) return std::nullopt;
  const uint32_t fp_len = ReadU32(d + offset + 4);
  if (fp_len != fingerprint.size() ||
      offset + kRecordFixedSize + fp_len > log_valid_size_) {
    return std::nullopt;
  }
  if (std::memcmp(d + offset + kRecordFixedSize, fingerprint.data(),
                  fp_len) != 0) {
    return std::nullopt;  // hash collision; probe continues
  }
  const uint8_t verdict = d[offset + 8];
  const uint8_t method = d[offset + 9];
  if (verdict > static_cast<uint8_t>(SafetyVerdict::kUnknown) ||
      method >= static_cast<uint8_t>(wire::kNumDecisionMethodNames)) {
    return std::nullopt;  // never serve an out-of-range enum
  }
  CachedPairVerdict entry;
  entry.verdict = static_cast<SafetyVerdict>(verdict);
  entry.method = static_cast<DecisionMethod>(method);
  entry.sites_spanned = d[offset + 10] | (d[offset + 11] << 8);
  return entry;
}

std::optional<CachedPairVerdict> VerdictStore::Probe(
    const std::string& fingerprint) const {
  const uint64_t hash = FingerprintHash(fingerprint);
  if (use_fallback_) {
    auto [begin, end] = fallback_index_.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
      auto entry = ReadRecord(it->second, fingerprint);
      if (entry.has_value()) return entry;
    }
    return std::nullopt;
  }
  if (idx_map_.size() < kIdxHeaderSize) return std::nullopt;
  const uint8_t* d = idx_map_.data();
  const uint64_t capacity = ReadU64(d + 24);
  const uint64_t mask = capacity - 1;
  for (uint64_t step = 0, i = hash & mask; step < capacity;
       ++step, i = (i + 1) & mask) {
    const uint8_t* slot = d + kIdxHeaderSize + i * kIdxSlotSize;
    const uint64_t offset_plus_1 = ReadU64(slot + 8);
    if (offset_plus_1 == 0) return std::nullopt;  // empty slot: not present
    if (ReadU64(slot) != hash) continue;
    auto entry = ReadRecord(offset_plus_1 - 1, fingerprint);
    if (entry.has_value()) return entry;
  }
  return std::nullopt;
}

std::optional<CachedPairVerdict> VerdictStore::Lookup(
    const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return std::nullopt;
  auto it = pending_.find(fingerprint);
  if (it != pending_.end()) {
    ++stats_.disk_hits;
    return it->second;
  }
  auto entry = Probe(fingerprint);
  if (entry.has_value()) {
    ++stats_.disk_hits;
  } else {
    ++stats_.disk_misses;
  }
  return entry;
}

void VerdictStore::Put(const std::string& fingerprint,
                       const CachedPairVerdict& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return;
  if (pending_.find(fingerprint) != pending_.end()) return;
  if (Probe(fingerprint).has_value()) return;  // already durable
  pending_.emplace(fingerprint, entry);
}

int64_t VerdictStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_ || pending_.empty()) return 0;
  FileLock flock(lock_path_);
  if (!flock.held()) return 0;  // cannot append safely; keep buffering

  // Under the appender lock, resynchronize with whatever other processes
  // flushed since our Open: repair the header if someone regressed it,
  // rescan the log, and drop any torn tail before appending.
  if (!RepairLog(log_path_, &stats_.records_dropped)) return 0;
  if (!log_map_.Map(log_path_)) return 0;
  std::vector<RecordRef> records;
  log_valid_size_ = ScanLog(log_map_, &records, &stats_.records_dropped);

  int fd = ::open(log_path_.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return 0;
  if (log_valid_size_ < log_map_.size() &&
      ::ftruncate(fd, static_cast<off_t>(log_valid_size_)) != 0) {
    ::close(fd);
    return 0;
  }

  // Dedup against the (re-scanned) on-disk records by full fingerprint.
  std::unordered_multimap<uint64_t, uint64_t> on_disk;
  on_disk.reserve(records.size());
  for (const RecordRef& r : records) on_disk.emplace(r.hash, r.offset);
  auto durable = [&](const std::string& fp, uint64_t hash) {
    auto [begin, end] = on_disk.equal_range(hash);
    for (auto it = begin; it != end; ++it) {
      if (ReadRecord(it->second, fp).has_value()) return true;
    }
    return false;
  };

  // Sorted order makes a flush a deterministic function of its content.
  std::vector<const std::string*> keys;
  keys.reserve(pending_.size());
  for (const auto& kv : pending_) keys.push_back(&kv.first);
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  std::string buf;
  int64_t appended = 0;
  for (const std::string* fp : keys) {
    const uint64_t hash = FingerprintHash(*fp);
    if (durable(*fp, hash)) continue;
    const CachedPairVerdict& entry = pending_.at(*fp);
    const uint64_t offset = log_valid_size_ + buf.size();
    const size_t record_start = buf.size();
    AppendU32(&buf, 0);  // checksum, patched below
    AppendU32(&buf, static_cast<uint32_t>(fp->size()));
    buf.push_back(static_cast<char>(entry.verdict));
    buf.push_back(static_cast<char>(entry.method));
    const uint16_t sites = entry.sites_spanned < 0 ? 0
                           : entry.sites_spanned > 0xffff
                               ? 0xffff
                               : static_cast<uint16_t>(entry.sites_spanned);
    buf.push_back(static_cast<char>(sites & 0xff));
    buf.push_back(static_cast<char>(sites >> 8));
    buf.append(*fp);
    const uint32_t checksum = Fnv1a32(
        reinterpret_cast<const uint8_t*>(buf.data() + record_start + 4),
        buf.size() - record_start - 4);
    std::memcpy(buf.data() + record_start, &checksum, sizeof(checksum));
    records.push_back({hash, offset});
    ++appended;
  }

  bool ok = true;
  if (!buf.empty()) {
    ok = ::pwrite(fd, buf.data(), buf.size(),
                  static_cast<off_t>(log_valid_size_)) ==
         static_cast<ssize_t>(buf.size());
    if (ok) ::fsync(fd);
  }
  ::close(fd);
  if (!ok) return 0;

  log_valid_size_ += buf.size();
  if (!log_map_.Map(log_path_)) return 0;
  disk_records_ = static_cast<int64_t>(records.size());

  if (!RebuildIndex(records, log_valid_size_)) {
    idx_map_.Unmap();
    use_fallback_ = true;
    fallback_index_.clear();
    fallback_index_.reserve(records.size());
    for (const RecordRef& r : records) {
      fallback_index_.emplace(r.hash, r.offset);
    }
  } else {
    use_fallback_ = false;
    fallback_index_.clear();
  }

  stats_.records_flushed += appended;
  pending_.clear();
  return appended;
}

bool VerdictStore::RebuildIndex(const std::vector<RecordRef>& records,
                                uint64_t log_size) {
  uint64_t capacity = 16;
  while (capacity < records.size() * 2) capacity <<= 1;

  std::string buf;
  buf.reserve(kIdxHeaderSize + capacity * kIdxSlotSize);
  buf.append(kIdxMagic, sizeof(kIdxMagic));
  AppendU32(&buf, kVerdictStoreSchemaVersion);
  AppendU32(&buf, kVerdictStoreGeneration);
  AppendU32(&buf, 0);  // reserved
  AppendU64(&buf, log_size);
  AppendU64(&buf, capacity);
  AppendU64(&buf, records.size());
  buf.resize(kIdxHeaderSize + capacity * kIdxSlotSize, '\0');

  const uint64_t mask = capacity - 1;
  for (const RecordRef& r : records) {
    uint64_t i = r.hash & mask;
    while (ReadU64(reinterpret_cast<const uint8_t*>(buf.data()) +
                   kIdxHeaderSize + i * kIdxSlotSize + 8) != 0) {
      i = (i + 1) & mask;
    }
    char* slot = buf.data() + kIdxHeaderSize + i * kIdxSlotSize;
    const uint64_t offset_plus_1 = r.offset + 1;
    std::memcpy(slot, &r.hash, sizeof(r.hash));
    std::memcpy(slot + 8, &offset_plus_1, sizeof(offset_plus_1));
  }

  // Write-temp-then-rename so a concurrent lock-free reader either sees
  // the old complete index or the new complete index, never a torn one.
  const std::string tmp = idx_path_ + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return false;
  bool ok = ::pwrite(fd, buf.data(), buf.size(), 0) ==
            static_cast<ssize_t>(buf.size());
  if (ok) ::fsync(fd);
  ::close(fd);
  if (!ok || ::rename(tmp.c_str(), idx_path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return idx_map_.Map(idx_path_) &&
         IndexHeaderValid(idx_map_, log_size);
}

VerdictStore::Stats VerdictStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t VerdictStore::disk_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_records_;
}

int64_t VerdictStore::pending_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(pending_.size());
}

}  // namespace cache
}  // namespace dislock
