#include "cache/verdict_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "cache/verdict_store.h"
#include "util/arena.h"

namespace dislock {

namespace {

/// Appends one transaction's structure to `out` under the shared canonical
/// renaming maps (entity -> dense index, site -> dense index).
void AppendCanonical(const Transaction& t,
                     std::unordered_map<EntityId, int>* entity_index,
                     std::unordered_map<SiteId, int>* site_index,
                     std::string* out) {
  auto canonical_entity = [&](EntityId e) {
    auto [it, inserted] =
        entity_index->emplace(e, static_cast<int>(entity_index->size()));
    if (inserted) {
      // First appearance also pins the entity's site into the pattern.
      site_index->emplace(t.db().SiteOf(e),
                          static_cast<int>(site_index->size()));
    }
    return it->second;
  };
  out->push_back('t');
  for (StepId s = 0; s < t.NumSteps(); ++s) {
    const Step& step = t.GetStep(s);
    char kind = step.kind == StepKind::kLock     ? 'L'
                : step.kind == StepKind::kUnlock ? 'U'
                                                 : 'u';
    out->push_back(kind);
    if (step.shared) out->push_back('s');
    *out += std::to_string(canonical_entity(step.entity));
    out->push_back('@');
    *out += std::to_string(site_index->at(t.db().SiteOf(step.entity)));
    out->push_back(';');
  }
  // The precedence arc set, sorted so the fingerprint does not depend on
  // construction order. (Arc-set equality is finer than equality of the
  // induced partial orders, so this can only cause extra misses, never a
  // wrong hit.)
  std::vector<std::pair<NodeId, NodeId>> arcs;
  const Digraph& order = t.order();
  for (NodeId u = 0; u < order.NumNodes(); ++u) {
    for (NodeId v : order.OutNeighbors(u)) arcs.emplace_back(u, v);
  }
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  out->push_back('|');
  for (const auto& [u, v] : arcs) {
    *out += std::to_string(u);
    out->push_back('>');
    *out += std::to_string(v);
    out->push_back(';');
  }
}

}  // namespace

std::string PairFingerprint(const Transaction& t1, const Transaction& t2) {
  std::string out;
  out.reserve(static_cast<size_t>(t1.NumSteps() + t2.NumSteps()) * 6 + 16);
  std::unordered_map<EntityId, int> entity_index;
  std::unordered_map<SiteId, int> site_index;
  AppendCanonical(t1, &entity_index, &site_index, &out);
  AppendCanonical(t2, &entity_index, &site_index, &out);
  return out;
}

namespace {

/// Flat AppendCanonical: dense arrays (-1 = unassigned) replace the hash
/// maps, arcs are sorted as packed (u << 32 | v) keys. Emits the exact
/// byte sequence of AppendCanonical.
void AppendCanonicalFlat(const Transaction& t, int* entity_canon,
                         int* site_canon, int* next_entity, int* next_site,
                         Arena* arena, std::string* out) {
  const DistributedDatabase& db = t.db();
  out->push_back('t');
  for (StepId s = 0; s < t.NumSteps(); ++s) {
    const Step& step = t.GetStep(s);
    char kind = step.kind == StepKind::kLock     ? 'L'
                : step.kind == StepKind::kUnlock ? 'U'
                                                 : 'u';
    const SiteId site = db.SiteOf(step.entity);
    int& ce = entity_canon[step.entity];
    if (ce < 0) {
      ce = (*next_entity)++;
      // First appearance of the entity also pins its site (no-op when the
      // site was pinned by an earlier entity), as in the legacy renaming.
      if (site_canon[site] < 0) site_canon[site] = (*next_site)++;
    }
    out->push_back(kind);
    if (step.shared) out->push_back('s');
    *out += std::to_string(ce);
    out->push_back('@');
    *out += std::to_string(site_canon[site]);
    out->push_back(';');
  }
  const Digraph& order = t.order();
  const int n = order.NumNodes();
  size_t num_arcs = 0;
  for (NodeId u = 0; u < n; ++u) num_arcs += order.OutNeighbors(u).size();
  uint64_t* arcs = arena->AllocateArray<uint64_t>(num_arcs);
  size_t pos = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : order.OutNeighbors(u)) {
      arcs[pos++] = (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
                    static_cast<uint32_t>(v);
    }
  }
  std::sort(arcs, arcs + num_arcs);
  uint64_t* arcs_end = std::unique(arcs, arcs + num_arcs);
  out->push_back('|');
  for (const uint64_t* a = arcs; a != arcs_end; ++a) {
    *out += std::to_string(static_cast<NodeId>(*a >> 32));
    out->push_back('>');
    *out += std::to_string(static_cast<NodeId>(*a & 0xffffffff));
    out->push_back(';');
  }
}

}  // namespace

std::string PairFingerprintFlat(const Transaction& t1, const Transaction& t2) {
  std::string out;
  out.reserve(static_cast<size_t>(t1.NumSteps() + t2.NumSteps()) * 8 + 16);
  Arena* arena = ScratchArena();
  ArenaScope scope(arena);
  const int num_entities = t1.db().NumEntities();
  const int num_sites = t1.db().NumSites();
  int* entity_canon =
      arena->AllocateArray<int>(static_cast<size_t>(num_entities));
  int* site_canon = arena->AllocateArray<int>(static_cast<size_t>(num_sites));
  std::memset(entity_canon, -1,
              static_cast<size_t>(num_entities) * sizeof(int));
  std::memset(site_canon, -1, static_cast<size_t>(num_sites) * sizeof(int));
  int next_entity = 0;
  int next_site = 0;
  AppendCanonicalFlat(t1, entity_canon, site_canon, &next_entity, &next_site,
                      arena, &out);
  AppendCanonicalFlat(t2, entity_canon, site_canon, &next_entity, &next_site,
                      arena, &out);
  return out;
}

void PairVerdictCache::set_store(cache::VerdictStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  store_ = store;
}

cache::VerdictStore* PairVerdictCache::store() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_;
}

std::optional<CachedPairVerdict> PairVerdictCache::Lookup(
    const std::string& fingerprint) {
  cache::VerdictStore* store = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(fingerprint);
    if (it != map_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
    store = store_;
  }
  if (store == nullptr) return std::nullopt;
  // Tier-2 fallthrough, outside the memo mutex: the store serializes
  // itself. A hit is promoted into the memo so the next lookup of this
  // fingerprint never touches the store again.
  std::optional<CachedPairVerdict> from_disk = store->Lookup(fingerprint);
  if (from_disk.has_value()) {
    std::lock_guard<std::mutex> lock(mu_);
    map_.emplace(fingerprint, *from_disk);
  }
  return from_disk;
}

void PairVerdictCache::Insert(const std::string& fingerprint,
                              const PairSafetyReport& report) {
  CachedPairVerdict entry;
  entry.verdict = report.verdict;
  entry.method = report.method;
  entry.sites_spanned = report.sites_spanned;
  cache::VerdictStore* store = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    map_.emplace(fingerprint, entry);
    store = store_;
  }
  if (store != nullptr) store->Put(fingerprint, entry);
}

PairVerdictCache::Stats PairVerdictCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t PairVerdictCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(map_.size());
}

void PairVerdictCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  stats_ = Stats();
}

}  // namespace dislock
