#ifndef DISLOCK_CACHE_VERDICT_CACHE_H_
#define DISLOCK_CACHE_VERDICT_CACHE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/safety.h"
#include "txn/transaction.h"

namespace dislock {

namespace cache {
class VerdictStore;
}  // namespace cache

/// Canonical structural fingerprint of the ordered pair (T1, T2).
///
/// Entities are renamed by first appearance in T1's step sequence then
/// T2's, and sites by first appearance of their entities, so two pairs get
/// the same fingerprint iff they are isomorphic as locked-transaction
/// pairs: identical step sequences (kind, canonical entity, shared flag),
/// identical precedence arc sets, and an identical entity-to-site pattern.
/// Everything AnalyzePairSafety looks at — the conflict digraph D(T1,T2),
/// the number of sites spanned, dominators, closures and the Lemma 1
/// extension enumeration — is invariant under that renaming, so
/// fingerprint-equal pairs provably receive the same verdict. Names play no
/// role; generated ring/dense workloads and dislock_stress trials produce
/// many fingerprint-equal pairs over differently named entities. The same
/// invariance is what makes a fingerprint valid across processes and runs:
/// the persistent cache::VerdictStore keys its records by these bytes.
std::string PairFingerprint(const Transaction& t1, const Transaction& t2);

/// Flat-kernel fingerprint (EngineConfig::use_flat_kernel): byte-identical
/// output to PairFingerprint — grouping and the pairs_cached counter depend
/// on exact string equality — but the canonical renaming runs on dense
/// arena-backed index arrays over [0, NumEntities()) / [0, NumSites())
/// instead of unordered_maps, the arc set is sorted as packed 64-bit keys,
/// and the string is assembled in one pass into a single preallocated
/// buffer.
std::string PairFingerprintFlat(const Transaction& t1, const Transaction& t2);

/// What the cache remembers about a decided pair. The full PairSafetyReport
/// is NOT cached: its conflict graph and certificate reference the concrete
/// entities and transactions of the pair that produced it, which a
/// structurally identical pair over other entities cannot reuse. Verdicts
/// (and the method/site summary) transfer; certificates are re-derived on
/// the concrete pair when a caller needs one (see AnalyzeMultiSafety).
struct CachedPairVerdict {
  SafetyVerdict verdict = SafetyVerdict::kUnknown;
  DecisionMethod method = DecisionMethod::kNone;
  int sites_spanned = 0;
};

/// Tier 1 of the verdict cache: a thread-safe in-memory memo of pair
/// verdicts keyed by PairFingerprint. One cache can serve many
/// AnalyzeMultiSafety calls (the dislock_bench trajectory runs) or a long
/// dislock_stress session; the parallel safety engine consults it from
/// worker threads.
///
/// Attaching a cache::VerdictStore (tier 2, docs/caching.md) makes memory
/// misses fall through to the persistent store: a store hit is promoted
/// into the memo and every memo insert is forwarded to the store's pending
/// buffer. The store is borrowed, never owned, and null means tier 1
/// behaves exactly as before the store existed.
class PairVerdictCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    double HitRate() const {
      return hits + misses == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(hits +
                                                                   misses);
    }
  };

  /// Attaches (or detaches, with nullptr) the persistent tier-2 store.
  /// Not owned; the caller keeps it alive for the lifetime of the cache.
  void set_store(cache::VerdictStore* store);
  cache::VerdictStore* store() const;

  /// The cached verdict for `fingerprint`, recording a hit or miss. A
  /// memory miss with a store attached consults the store; its verdict (if
  /// any) is promoted into the memo and returned. Store consultations are
  /// counted in the store's own disk_hits/disk_misses, while `stats()`
  /// keeps its historical meaning: hits/misses of the in-memory memo.
  std::optional<CachedPairVerdict> Lookup(const std::string& fingerprint);

  /// Memoizes the verdict of `report` under `fingerprint` (first insert
  /// wins; re-inserting an existing fingerprint is a no-op, which keeps
  /// concurrent inserts of fingerprint-equal pairs benign). With a store
  /// attached the verdict is also forwarded to the store's pending buffer;
  /// it reaches disk at the next VerdictStore::Flush.
  void Insert(const std::string& fingerprint,
              const PairSafetyReport& report);

  Stats stats() const;
  int64_t size() const;

  /// Drops the in-memory memo and resets stats(). The attached store (and
  /// anything already on disk) is untouched.
  void Clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, CachedPairVerdict> map_;
  Stats stats_;
  cache::VerdictStore* store_ = nullptr;
};

}  // namespace dislock

#endif  // DISLOCK_CACHE_VERDICT_CACHE_H_
