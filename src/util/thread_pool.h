#ifndef DISLOCK_UTIL_THREAD_POOL_H_
#define DISLOCK_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace dislock {

/// Cooperative cancellation flag shared between a task producer and its
/// tasks. Cancellation never interrupts a running task; tasks are expected
/// to poll cancelled() at safe points (the parallel safety engine checks it
/// before starting each pair/cycle unit) and return early.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A work-stealing thread pool.
///
/// Each worker owns a deque of tasks: it pushes and pops work at the back
/// (LIFO, cache-friendly for task trees) and steals from the *front* of a
/// victim's deque (FIFO, takes the oldest — and typically largest — unit of
/// work) when its own deque runs dry. Tasks submitted from outside the pool
/// are distributed round-robin; tasks submitted from a worker thread go to
/// that worker's own deque, which is what makes recursive fan-out cheap.
///
/// Submit() returns a std::future: exceptions thrown by a task are captured
/// and rethrown on future.get(), and results are moved out through the
/// shared state. The destructor drains every queued task before joining
/// (tasks already submitted are completed, not dropped).
///
/// The pool is not tied to any dislock type; the safety engine
/// (core/multi.cc, core/safety.cc) layers deterministic reduction and
/// cancellation on top of it.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; num_threads <= 0 means
  /// HardwareThreads().
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static int HardwareThreads();

  /// Installs (or clears, with nullptr) a trace recorder: every task a
  /// worker executes from now on is wrapped in a "pool.task" span. The
  /// recorder is borrowed and must outlive the pool or the next
  /// set_trace_recorder call. Tasks already running keep whatever recorder
  /// they started with; callers install the recorder before submitting.
  void set_trace_recorder(obs::TraceRecorder* recorder) {
    trace_.store(recorder, std::memory_order_release);
  }
  obs::TraceRecorder* trace_recorder() const {
    return trace_.load(std::memory_order_acquire);
  }

  /// Schedules `fn` and returns a future for its result. Safe to call from
  /// worker threads (the task lands on the calling worker's deque).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Push([task]() { (*task)(); });
    return future;
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void Push(std::function<void()> fn);
  void WorkerLoop(int self);
  /// Pops from the back of worker `self`'s deque, or steals from the front
  /// of another worker's; empty function when no work is available.
  std::function<void()> TakeTask(int self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Wakes idle workers; guards stopping_ transitions.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<obs::TraceRecorder*> trace_{nullptr};
};

}  // namespace dislock

#endif  // DISLOCK_UTIL_THREAD_POOL_H_
