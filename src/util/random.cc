#include "util/random.h"

namespace dislock {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(&s);
  // Avoid the (astronomically unlikely) all-zero state, which is a fixed
  // point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  DISLOCK_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of bound.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DISLOCK_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

}  // namespace dislock
