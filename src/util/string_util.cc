#include "util/string_util.h"

#include <cctype>

namespace dislock {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string field;
  for (char c : s) {
    if (c == delim) {
      out.push_back(field);
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  out.push_back(field);
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace dislock
