#include "util/status.h"

namespace dislock {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInvalidModel:
      return "InvalidModel";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUndecided:
      return "Undecided";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dislock
