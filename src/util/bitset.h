#ifndef DISLOCK_UTIL_BITSET_H_
#define DISLOCK_UTIL_BITSET_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dislock {

/// A fixed-size, heap-allocated bitset with word-parallel union, used for
/// transitive-closure reachability matrices over transaction DAGs and
/// conflict graphs.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i) {
    DISLOCK_CHECK_LT(i, size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Reset(size_t i) {
    DISLOCK_CHECK_LT(i, size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    DISLOCK_CHECK_LT(i, size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// this |= other. Sizes must match.
  void UnionWith(const DynamicBitset& other) {
    DISLOCK_CHECK_EQ(size_, other.size_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// True iff no bit is set.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dislock

#endif  // DISLOCK_UTIL_BITSET_H_
