#ifndef DISLOCK_UTIL_BITSET_H_
#define DISLOCK_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dislock {

/// Word-level primitives shared by DynamicBitset and the flat kernels that
/// operate on raw arena-allocated uint64_t rows (graph/csr.h). A "row" is
/// `words` consecutive uint64_t covering bits [0, 64*words).
namespace bits {

inline constexpr size_t kNpos = static_cast<size_t>(-1);

inline size_t WordsForBits(size_t bits) { return (bits + 63) / 64; }

inline void SetBit(uint64_t* row, size_t i) {
  row[i >> 6] |= (uint64_t{1} << (i & 63));
}

inline bool TestBit(const uint64_t* row, size_t i) {
  return (row[i >> 6] >> (i & 63)) & 1;
}

/// row |= other over `words` words; returns the number of bits that were
/// newly set (0 = fixpoint reached, the signal the closure loops watch).
inline size_t OrWords(uint64_t* row, const uint64_t* other, size_t words) {
  size_t changed = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t before = row[w];
    uint64_t after = before | other[w];
    changed += static_cast<size_t>(__builtin_popcountll(after ^ before));
    row[w] = after;
  }
  return changed;
}

/// row |= other without the changed-bit count — for bulk sweeps (e.g. the
/// reachability matrix build) that never watch for a fixpoint.
inline void OrWordsInto(uint64_t* row, const uint64_t* other, size_t words) {
  for (size_t w = 0; w < words; ++w) row[w] |= other[w];
}

/// First set bit at position >= `from`, or kNpos. Word-scan: whole zero
/// words are skipped eight bytes at a time.
inline size_t FindNextBit(const uint64_t* row, size_t size, size_t from) {
  if (from >= size) return kNpos;
  size_t w = from >> 6;
  uint64_t word = row[w] >> (from & 63);
  if (word != 0) {
    size_t bit = from + static_cast<size_t>(__builtin_ctzll(word));
    return bit < size ? bit : kNpos;
  }
  const size_t words = WordsForBits(size);
  for (++w; w < words; ++w) {
    if (row[w] != 0) {
      size_t bit = (w << 6) + static_cast<size_t>(__builtin_ctzll(row[w]));
      return bit < size ? bit : kNpos;
    }
  }
  return kNpos;
}

/// popcount(row & other) over `words` words, without materializing the
/// intersection.
inline size_t CountAndWords(const uint64_t* row, const uint64_t* other,
                            size_t words) {
  size_t n = 0;
  for (size_t w = 0; w < words; ++w) {
    n += static_cast<size_t>(__builtin_popcountll(row[w] & other[w]));
  }
  return n;
}

}  // namespace bits

/// A fixed-size, heap-allocated bitset with word-parallel union, used for
/// transitive-closure reachability matrices over transaction DAGs and
/// conflict graphs.
class DynamicBitset {
 public:
  /// Sentinel returned by FindFirst/FindNext when no bit qualifies.
  static constexpr size_t npos = bits::kNpos;

  DynamicBitset() = default;
  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i) {
    DISLOCK_CHECK_LT(i, size_);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Reset(size_t i) {
    DISLOCK_CHECK_LT(i, size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Test(size_t i) const {
    DISLOCK_CHECK_LT(i, size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// this |= other. Sizes must match.
  void UnionWith(const DynamicBitset& other) {
    DISLOCK_CHECK_EQ(size_, other.size_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  /// this |= other, returning how many bits were newly set. The flat
  /// closure kernels drive their fixpoint loops off this count instead of
  /// re-comparing whole rows.
  size_t OrWith(const DynamicBitset& other) {
    DISLOCK_CHECK_EQ(size_, other.size_);
    return bits::OrWords(words_.data(), other.words_.data(), words_.size());
  }

  /// Position of the first set bit, or npos if none.
  size_t FindFirst() const {
    return bits::FindNextBit(words_.data(), size_, 0);
  }

  /// Position of the first set bit strictly after `i`, or npos. Iteration
  /// idiom: `for (size_t b = s.FindFirst(); b != npos; b = s.FindNext(b))`.
  size_t FindNext(size_t i) const {
    return bits::FindNextBit(words_.data(), size_, i + 1);
  }

  /// popcount(this & other) without materializing the intersection. Sizes
  /// must match.
  size_t CountAndIntersect(const DynamicBitset& other) const {
    DISLOCK_CHECK_EQ(size_, other.size_);
    return bits::CountAndWords(words_.data(), other.words_.data(),
                               words_.size());
  }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// True iff no bit is set.
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dislock

#endif  // DISLOCK_UTIL_BITSET_H_
