#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dislock {

namespace {

// Matches "--name VALUE" and "--name=VALUE". Returns nullptr when argv[i]
// is not `name`; on a match stores the value and whether argv[i+1] was
// consumed. A bare "--name" with no value in either spelling returns the
// sentinel kMissing.
const char kMissing[] = "";

const char* FlagValue(int argc, char** argv, int i, const char* name,
                      bool* consumed_next) {
  *consumed_next = false;
  size_t len = std::strlen(name);
  if (std::strncmp(argv[i], name, len) != 0) return nullptr;
  if (argv[i][len] == '=') return argv[i] + len + 1;
  if (argv[i][len] != '\0') return nullptr;  // e.g. --threadsabc
  if (i + 1 >= argc) return kMissing;
  *consumed_next = true;
  return argv[i + 1];
}

}  // namespace

FlagParse ParseCommonFlag(int argc, char** argv, int i, unsigned accepted,
                          CommonFlags* flags, std::string* error) {
  const char* arg = argv[i];
  bool two = false;

  if ((accepted & kThreadsFlag) != 0) {
    if (const char* v = FlagValue(argc, argv, i, "--threads", &two)) {
      if (v == kMissing) {
        if (error != nullptr) *error = "--threads requires a value";
        return FlagParse::kError;
      }
      flags->num_threads = std::atoi(v);
      return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
    }
  }

  if ((accepted & kCacheFlag) != 0 && std::strcmp(arg, "--cache") == 0) {
    flags->cache = true;
    return FlagParse::kConsumedOne;
  }

  if ((accepted & kFormatFlag) != 0) {
    if (std::strcmp(arg, "--json") == 0) {
      flags->format = "json";
      return FlagParse::kConsumedOne;
    }
    if (std::strcmp(arg, "--sarif") == 0) {
      flags->format = "sarif";
      return FlagParse::kConsumedOne;
    }
    if (const char* v = FlagValue(argc, argv, i, "--format", &two)) {
      if (v != kMissing && (std::strcmp(v, "text") == 0 ||
                            std::strcmp(v, "json") == 0 ||
                            std::strcmp(v, "sarif") == 0)) {
        flags->format = v;
        return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
      }
      if (error != nullptr) {
        *error = "--format requires text, json, or sarif";
      }
      return FlagParse::kError;
    }
  }

  if ((accepted & kTraceFlag) != 0) {
    if (const char* v = FlagValue(argc, argv, i, "--trace", &two)) {
      if (v == kMissing || v[0] == '\0') {
        if (error != nullptr) *error = "--trace requires an output file";
        return FlagParse::kError;
      }
      flags->trace_path = v;
      return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
    }
  }

  // The three serve flags share the integer-valued shape of --threads; the
  // value contracts (ranges, 0 meaning "per hardware thread") are enforced
  // by the tool after parsing, like --threads.
  if ((accepted & kPortFlag) != 0) {
    if (const char* v = FlagValue(argc, argv, i, "--port", &two)) {
      if (v == kMissing) {
        if (error != nullptr) *error = "--port requires a value";
        return FlagParse::kError;
      }
      flags->port = std::atoi(v);
      return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
    }
  }

  if ((accepted & kClientsFlag) != 0) {
    if (const char* v = FlagValue(argc, argv, i, "--clients", &two)) {
      if (v == kMissing) {
        if (error != nullptr) *error = "--clients requires a value";
        return FlagParse::kError;
      }
      flags->clients = std::atoi(v);
      return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
    }
  }

  if ((accepted & kShardsFlag) != 0) {
    if (const char* v = FlagValue(argc, argv, i, "--shards", &two)) {
      if (v == kMissing) {
        if (error != nullptr) *error = "--shards requires a value";
        return FlagParse::kError;
      }
      flags->shards = std::atoi(v);
      return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
    }
  }

  if ((accepted & kCacheDirFlag) != 0) {
    if (const char* v = FlagValue(argc, argv, i, "--cache-dir", &two)) {
      if (v == kMissing || v[0] == '\0') {
        if (error != nullptr) *error = "--cache-dir requires a directory";
        return FlagParse::kError;
      }
      flags->cache_dir = v;
      return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
    }
  }

  if ((accepted & kSeedFlag) != 0) {
    if (const char* v = FlagValue(argc, argv, i, "--seed", &two)) {
      if (v == kMissing || v[0] == '\0') {
        if (error != nullptr) *error = "--seed requires a value";
        return FlagParse::kError;
      }
      flags->seed = std::strtoull(v, nullptr, 10);
      return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
    }
  }

  if ((accepted & kOutFlag) != 0) {
    if (const char* v = FlagValue(argc, argv, i, "--out", &two)) {
      if (v == kMissing || v[0] == '\0') {
        if (error != nullptr) *error = "--out requires an output file";
        return FlagParse::kError;
      }
      flags->out = v;
      return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
    }
  }

  if ((accepted & kEndpointFlag) != 0) {
    if (const char* v = FlagValue(argc, argv, i, "--endpoint", &two)) {
      if (v == kMissing || v[0] == '\0') {
        if (error != nullptr) *error = "--endpoint requires HOST:PORT";
        return FlagParse::kError;
      }
      flags->endpoint = v;
      return two ? FlagParse::kConsumedTwo : FlagParse::kConsumedOne;
    }
  }

  if ((accepted & kMetricsFlag) != 0) {
    // --metrics takes an *optional* =FILE, so the space-separated spelling
    // is not supported (it would swallow positionals).
    if (std::strcmp(arg, "--metrics") == 0) {
      flags->metrics = true;
      return FlagParse::kConsumedOne;
    }
    if (std::strncmp(arg, "--metrics=", 10) == 0) {
      flags->metrics = true;
      flags->metrics_path = arg + 10;
      return FlagParse::kConsumedOne;
    }
  }

  return FlagParse::kNotCommon;
}

std::string CommonFlagsHelp(unsigned accepted) {
  std::string out;
  if ((accepted & kThreadsFlag) != 0) {
    out +=
        "  --threads N       safety-engine workers; 1 = serial, 0 = one per\n"
        "                    hardware thread; output is identical at any\n"
        "                    thread count\n";
  }
  if ((accepted & kCacheFlag) != 0) {
    out +=
        "  --cache           memoize pair verdicts by structural fingerprint\n"
        "                    for the run\n";
  }
  if ((accepted & kFormatFlag) != 0) {
    out +=
        "  --format=FMT      text (default), json, or sarif; --json and\n"
        "                    --sarif are aliases\n";
  }
  if ((accepted & kTraceFlag) != 0) {
    out +=
        "  --trace=FILE      write a Chrome trace_event JSON timeline of the\n"
        "                    run to FILE (open in Perfetto or\n"
        "                    chrome://tracing); never changes report output\n";
  }
  if ((accepted & kMetricsFlag) != 0) {
    out +=
        "  --metrics[=FILE]  write the flat metrics JSON block to FILE\n"
        "                    (default: stderr); never changes report output\n";
  }
  if ((accepted & kPortFlag) != 0) {
    out +=
        "  --port N          TCP port to listen on / connect to; 0 asks the\n"
        "                    kernel for an ephemeral port (the server\n"
        "                    announces the real one on startup)\n";
  }
  if ((accepted & kClientsFlag) != 0) {
    out +=
        "  --clients N       simulated concurrent clients for the load\n"
        "                    driver / serve bench\n";
  }
  if ((accepted & kShardsFlag) != 0) {
    out +=
        "  --shards K        shard the catalog K ways by entity-footprint\n"
        "                    hash; 0 = one shard per hardware thread; check\n"
        "                    reports are byte-identical at any K\n";
  }
  if ((accepted & kCacheDirFlag) != 0) {
    out +=
        "  --cache-dir=PATH  persist pair verdicts in PATH across runs and\n"
        "                    processes (implies --cache; also read from the\n"
        "                    DISLOCK_CACHE_DIR environment variable; a\n"
        "                    verdict served from disk never changes a\n"
        "                    verdict, see docs/caching.md)\n";
  }
  if ((accepted & kSeedFlag) != 0) {
    out +=
        "  --seed N          workload-generator seed (default 42); the same\n"
        "                    family+params+seed regenerates the same trace\n"
        "                    byte for byte\n";
  }
  if ((accepted & kOutFlag) != 0) {
    out +=
        "  --out=PATH        write the output to PATH instead of stdout\n";
  }
  if ((accepted & kEndpointFlag) != 0) {
    out +=
        "  --endpoint H:P    replay against a live dislock_serve at\n"
        "                    HOST:PORT instead of an in-process engine\n";
  }
  return out;
}

std::string EffectiveCacheDir(const CommonFlags& flags) {
  if (!flags.cache_dir.empty()) return flags.cache_dir;
  const char* env = std::getenv("DISLOCK_CACHE_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

void ReportUnknownArgument(const char* tool, const char* arg) {
  std::fprintf(stderr, "%s: unknown argument '%s'\n", tool, arg);
}

void ReportBadFlag(const char* tool, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", tool, message.c_str());
}

}  // namespace dislock
