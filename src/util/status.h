#ifndef DISLOCK_UTIL_STATUS_H_
#define DISLOCK_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace dislock {

/// Error category for a failed operation.
///
/// The library does not throw exceptions on ordinary failure paths; fallible
/// operations return a Status (or a Result<T>, below) in the style of
/// Arrow/RocksDB.
enum class StatusCode {
  kOk = 0,
  /// The caller supplied an argument that violates a documented precondition.
  kInvalidArgument,
  /// A transaction or system violates the well-formedness rules of the model
  /// (Section 2 of the paper): lock/unlock pairing, per-site total order, ...
  kInvalidModel,
  /// A requested object (entity, step, transaction) does not exist.
  kNotFound,
  /// The operation would exceed a configured resource limit (e.g. the
  /// exhaustive safety oracle on an instance with too many linear extensions).
  kResourceExhausted,
  /// An internal invariant failed; indicates a bug in the library.
  kInternal,
  /// The algorithm cannot decide this instance (e.g. the sufficient-only
  /// Theorem 1 test on a >2-site system whose D graph is not strongly
  /// connected).
  kUndecided,
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value describing the outcome of an operation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status InvalidModel(std::string msg) {
    return Status(StatusCode::kInvalidModel, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Undecided(std::string msg) {
    return Status(StatusCode::kUndecided, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure). Constructing from an OK status
  /// is a programming error and yields an Internal error instead.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// The value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define DISLOCK_RETURN_NOT_OK(expr)           \
  do {                                        \
    ::dislock::Status _st = (expr);           \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// moves the value into `lhs`.
#define DISLOCK_ASSIGN_OR_RETURN(lhs, expr)   \
  auto DISLOCK_CONCAT_(_res, __LINE__) = (expr);              \
  if (!DISLOCK_CONCAT_(_res, __LINE__).ok())                  \
    return DISLOCK_CONCAT_(_res, __LINE__).status();          \
  lhs = std::move(DISLOCK_CONCAT_(_res, __LINE__)).value()

#define DISLOCK_CONCAT_IMPL_(a, b) a##b
#define DISLOCK_CONCAT_(a, b) DISLOCK_CONCAT_IMPL_(a, b)

}  // namespace dislock

#endif  // DISLOCK_UTIL_STATUS_H_
