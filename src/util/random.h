#ifndef DISLOCK_UTIL_RANDOM_H_
#define DISLOCK_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dislock {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// All randomized components of the library (workload generators, the
/// Monte-Carlo scheduler, property tests) take an explicit Rng so every run
/// is reproducible from its seed.
class Rng {
 public:
  /// Seeds the four lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform in [0, bound). `bound` must be positive. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    DISLOCK_CHECK(items != nullptr);
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container size.
  size_t Index(size_t size) {
    DISLOCK_CHECK_GT(size, 0u);
    return static_cast<size_t>(Uniform(size));
  }

 private:
  uint64_t state_[4];
};

}  // namespace dislock

#endif  // DISLOCK_UTIL_RANDOM_H_
