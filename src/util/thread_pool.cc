#include "util/thread_pool.h"

namespace dislock {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to, so
/// Submit() from inside a task can push to the caller's own deque instead
/// of bouncing through the round-robin distributor.
thread_local ThreadPool* current_pool = nullptr;
thread_local int current_worker = -1;

}  // namespace

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = HardwareThreads();
  queues_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Push(std::function<void()> fn) {
  int target;
  if (current_pool == this) {
    target = current_worker;
  } else {
    target = static_cast<int>(
        next_queue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size());
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  {
    // The increment must be ordered against the predicate check in
    // WorkerLoop's wait (which runs under wake_mu_), or a worker that just
    // found the deques empty could miss this notification and sleep.
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::TakeTask(int self) {
  // Own deque first, newest task (LIFO).
  {
    std::lock_guard<std::mutex> lock(queues_[self]->mu);
    if (!queues_[self]->tasks.empty()) {
      std::function<void()> fn = std::move(queues_[self]->tasks.back());
      queues_[self]->tasks.pop_back();
      return fn;
    }
  }
  // Steal the oldest task (FIFO) from the first non-empty victim.
  const int n = static_cast<int>(queues_.size());
  for (int d = 1; d < n; ++d) {
    int victim = (self + d) % n;
    std::lock_guard<std::mutex> lock(queues_[victim]->mu);
    if (!queues_[victim]->tasks.empty()) {
      std::function<void()> fn = std::move(queues_[victim]->tasks.front());
      queues_[victim]->tasks.pop_front();
      return fn;
    }
  }
  return {};
}

void ThreadPool::WorkerLoop(int self) {
  current_pool = this;
  current_worker = self;
  for (;;) {
    std::function<void()> fn = TakeTask(self);
    if (fn) {
      pending_.fetch_sub(1, std::memory_order_release);
      // The span name literal lives here rather than core/wire_keys.h
      // because util cannot see core; docs/observability.md and the
      // wire_keys table both document "pool.task" as the worker span.
      obs::TraceSpan span(trace_.load(std::memory_order_acquire),
                          "pool.task");
      fn();  // packaged_task: exceptions land in the future
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
  }
  current_pool = nullptr;
  current_worker = -1;
}

}  // namespace dislock
