#ifndef DISLOCK_UTIL_FLAGS_H_
#define DISLOCK_UTIL_FLAGS_H_

#include <string>

namespace dislock {

// The shared command-line surface of dislock / dislock_stress /
// dislock_bench. Each tool used to hand-roll its own `--threads/--cache/
// --format` loop; this helper is the single copy. A tool declares which
// shared flags it accepts (a CommonFlagSet mask), calls ParseCommonFlag
// per argv slot, handles its tool-specific flags on kNotCommon, and
// rejects anything left over with ReportUnknownArgument + its usage text
// (exit code 2 — the uniform contract across all tools).
struct CommonFlags {
  int num_threads = 1;       // 1 = serial, 0 = one per hardware thread
  bool cache = false;        // engine-owned pair-verdict cache
  std::string format = "text";  // "text" | "json" | "sarif"
  std::string trace_path;    // --trace=FILE; empty = tracing off
  bool metrics = false;      // --metrics[=FILE]
  std::string metrics_path;  // empty or "-" = stderr
  int port = 4400;           // --port N; 0 = ephemeral (serve announces it)
  int clients = 100;         // --clients N; simulated clients (load driver)
  int shards = 1;            // --shards K; 0 = one per hardware thread
  std::string cache_dir;     // --cache-dir=PATH; empty = no persistent store
  unsigned long long seed = 42;  // --seed N; workload-generator seed
  std::string out;           // --out=PATH; empty = stdout
  std::string endpoint;      // --endpoint HOST:PORT; empty = in-process
};

enum CommonFlagSet : unsigned {
  kThreadsFlag = 1u << 0,  // --threads N | --threads=N
  kCacheFlag = 1u << 1,    // --cache
  kFormatFlag = 1u << 2,   // --format[=]text|json|sarif, --json, --sarif
  kTraceFlag = 1u << 3,    // --trace=FILE | --trace FILE
  kMetricsFlag = 1u << 4,  // --metrics[=FILE]
  kPortFlag = 1u << 5,     // --port N | --port=N       (dislock_serve)
  kClientsFlag = 1u << 6,  // --clients N | --clients=N (load driver, bench)
  kShardsFlag = 1u << 7,   // --shards K | --shards=K   (sharded catalog)
  kCacheDirFlag = 1u << 8,  // --cache-dir PATH | --cache-dir=PATH
  kSeedFlag = 1u << 9,      // --seed N | --seed=N       (gen, replay, bench)
  kOutFlag = 1u << 10,      // --out PATH | --out=PATH   (gen, bench)
  kEndpointFlag = 1u << 11,  // --endpoint HOST:PORT     (replay)
  kObsFlags = kTraceFlag | kMetricsFlag,
  kServeFlags = kPortFlag | kClientsFlag | kShardsFlag,
};

enum class FlagParse {
  kNotCommon,    // argv[i] is not an accepted shared flag; tool's turn
  kConsumedOne,  // recognized; argv[i] consumed
  kConsumedTwo,  // recognized; argv[i] and argv[i+1] consumed
  kError,        // recognized but malformed (bad value / missing argument)
};

// Tries argv[i] against the shared flags in `accepted`. On kError a
// one-line description is stored in *error (when non-null); print it with
// ReportBadFlag and exit 2.
FlagParse ParseCommonFlag(int argc, char** argv, int i, unsigned accepted,
                          CommonFlags* flags, std::string* error = nullptr);

// Help text for the accepted shared flags, one aligned "  --flag  ..."
// block per flag, for embedding into a tool's usage message. Every tool
// documents a shared flag with exactly these words.
std::string CommonFlagsHelp(unsigned accepted);

// The persistent verdict-store directory a tool should use: the parsed
// --cache-dir when given, else the DISLOCK_CACHE_DIR environment variable,
// else "" (no store). The flag always wins over the environment, so a
// script can pin one run's cache without unsetting the variable.
std::string EffectiveCacheDir(const CommonFlags& flags);

// The uniform rejection lines, printed to stderr:
//   "<tool>: unknown argument '<arg>'"          (ReportUnknownArgument)
//   "<tool>: <message>"                          (ReportBadFlag)
// Callers follow up with their usage text and return 2.
void ReportUnknownArgument(const char* tool, const char* arg);
void ReportBadFlag(const char* tool, const std::string& message);

}  // namespace dislock

#endif  // DISLOCK_UTIL_FLAGS_H_
