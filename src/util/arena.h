#ifndef DISLOCK_UTIL_ARENA_H_
#define DISLOCK_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace dislock {

/// A monotonic bump allocator for the flat-kernel scratch buffers (CSR
/// arrays, bitset words, SCC stacks). One pair/cycle check performs exactly
/// one `new` in steady state: the arena grows to the high-water mark of the
/// largest check it has served and then recycles that block forever.
///
/// Allocation is pointer arithmetic only and is restricted to trivially
/// destructible element types (nothing is ever destroyed individually).
/// Lifetime is managed by ArenaScope: a scope records the current mark and
/// rewinds to it on destruction, so nested kernels can share one arena
/// without coordinating. Arenas are not thread-safe — the engine hands each
/// pool worker its own thread-local arena (ScratchArena()).
class Arena {
 public:
  explicit Arena(size_t initial_bytes = 1 << 12)
      : initial_bytes_(RoundUp(initial_bytes < 64 ? 64 : initial_bytes)) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` elements of T, aligned for T.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is never destroyed element-wise");
    static_assert(alignof(T) <= kMaxAlign, "over-aligned type");
    return static_cast<T*>(AllocateBytes(count * sizeof(T)));
  }

  /// Zero-initialized storage — what the bitset-word kernels use.
  template <typename T>
  T* AllocateZeroed(size_t count) {
    T* p = AllocateArray<T>(count);
    std::memset(static_cast<void*>(p), 0, count * sizeof(T));
    return p;
  }

  /// Releases every allocation. Capacity is retained and coalesced: after
  /// the first Reset() past a growth spurt, all subsequent identical
  /// workloads run allocation-free.
  void Reset() {
    if (blocks_.size() > 1 || (blocks_.size() == 1 &&
                               blocks_[0].size < high_water_)) {
      blocks_.clear();
      AddBlock(high_water_);
    }
    used_ = 0;
    offset_ = 0;
  }

  /// Bytes handed out since the last Reset (for tests and stats).
  size_t BytesUsed() const { return used_; }
  /// Total bytes of owned blocks.
  size_t BytesCapacity() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  /// Number of blocks backing the arena (1 in steady state).
  size_t NumBlocks() const { return blocks_.size(); }

 private:
  friend class ArenaScope;
  static constexpr size_t kMaxAlign = 16;

  static size_t RoundUp(size_t n) {
    return (n + (kMaxAlign - 1)) & ~(kMaxAlign - 1);
  }

  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  void AddBlock(size_t min_bytes) {
    size_t size = blocks_.empty() ? initial_bytes_ : blocks_.back().size * 2;
    if (size < min_bytes) size = RoundUp(min_bytes);
    Block b;
    b.data = std::make_unique<unsigned char[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
    offset_ = 0;
  }

  void* AllocateBytes(size_t bytes) {
    bytes = RoundUp(bytes);
    if (blocks_.empty() || offset_ + bytes > blocks_.back().size) {
      AddBlock(bytes);
    }
    void* p = blocks_.back().data.get() + offset_;
    offset_ += bytes;
    used_ += bytes;
    if (used_ > high_water_) high_water_ = used_;
    return p;
  }

  size_t initial_bytes_;
  std::vector<Block> blocks_;
  size_t offset_ = 0;      ///< bump position in the last block
  size_t used_ = 0;        ///< bytes handed out since Reset
  size_t high_water_ = 0;  ///< max used_ ever seen (Reset coalesces to it)
};

/// RAII mark/rewind over an Arena: everything allocated inside the scope is
/// reclaimed when it ends, so a kernel can borrow the caller's arena for
/// scratch without leaking into sibling checks. Scopes must nest (strict
/// LIFO), which the flat kernels' call structure guarantees.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena)
      : arena_(arena),
        block_(arena->blocks_.size()),
        offset_(arena->offset_),
        used_(arena->used_) {}

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  ~ArenaScope() {
    // Blocks added inside the scope are kept (capacity is the point of the
    // arena); only the bump positions rewind. A later Reset() coalesces.
    if (arena_->blocks_.size() == block_) {
      arena_->offset_ = offset_;
    }
    arena_->used_ = used_;
  }

  Arena* arena() const { return arena_; }

 private:
  Arena* arena_;
  size_t block_;
  size_t offset_;
  size_t used_;
};

/// The per-thread scratch arena the flat kernels allocate from. Each
/// ThreadPool worker (and the serial caller) gets its own, so checks
/// fanning out across workers never contend; the bump state is reclaimed
/// per check via ArenaScope and the block memory is reused for the
/// thread's lifetime.
inline Arena* ScratchArena() {
  static thread_local Arena arena(size_t{1} << 14);
  return &arena;
}

}  // namespace dislock

#endif  // DISLOCK_UTIL_ARENA_H_
