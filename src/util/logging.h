#ifndef DISLOCK_UTIL_LOGGING_H_
#define DISLOCK_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace dislock {
namespace internal {

/// Terminates the process after streaming a failure message. Used by the
/// DISLOCK_CHECK family for invariants whose violation indicates a bug (not a
/// recoverable model error, which goes through Status instead).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << file << ":" << line << ": CHECK failed: ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dislock

/// Aborts with a message when `cond` is false. For programmer errors only.
#define DISLOCK_CHECK(cond)                                     \
  if (cond) {                                                   \
  } else                                                        \
    ::dislock::internal::FatalLogMessage(__FILE__, __LINE__)    \
        .stream()                                               \
        << #cond << " "

#define DISLOCK_CHECK_EQ(a, b) DISLOCK_CHECK((a) == (b))
#define DISLOCK_CHECK_NE(a, b) DISLOCK_CHECK((a) != (b))
#define DISLOCK_CHECK_LT(a, b) DISLOCK_CHECK((a) < (b))
#define DISLOCK_CHECK_LE(a, b) DISLOCK_CHECK((a) <= (b))
#define DISLOCK_CHECK_GT(a, b) DISLOCK_CHECK((a) > (b))
#define DISLOCK_CHECK_GE(a, b) DISLOCK_CHECK((a) >= (b))

#endif  // DISLOCK_UTIL_LOGGING_H_
