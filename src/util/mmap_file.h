#ifndef DISLOCK_UTIL_MMAP_FILE_H_
#define DISLOCK_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dislock {

/// Read-only memory mapping of a whole file. The cache subsystem's
/// persistent verdict store maps its append-only log and its
/// open-addressing index through this wrapper; nothing in it is
/// cache-specific.
///
/// An empty or missing file maps to a valid object with size() == 0 and
/// data() == nullptr — callers treat "nothing on disk yet" and "zero-byte
/// file" identically. Remapping after the file grew is just Map() again.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps `path` read-only, replacing any current mapping. Returns false
  /// (leaving the object unmapped) only on a real I/O error — a missing or
  /// empty file succeeds with size() == 0.
  bool Map(const std::string& path);

  void Unmap();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Advisory exclusive file lock (POSIX flock), taken in the constructor and
/// released in the destructor. Serializes appenders of the verdict store's
/// log across processes; readers never take it — torn tails are their
/// problem and are handled by per-record checksums.
///
/// The lock file is created if missing. held() is false only when the lock
/// file could not be opened (e.g. unwritable directory); callers then skip
/// the guarded mutation rather than corrupting shared state.
class FileLock {
 public:
  explicit FileLock(const std::string& path);
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace dislock

#endif  // DISLOCK_UTIL_MMAP_FILE_H_
