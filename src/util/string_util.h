#ifndef DISLOCK_UTIL_STRING_UTIL_H_
#define DISLOCK_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace dislock {

/// Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

/// Joins the elements of `parts` with `sep` between consecutive elements.
template <typename Container>
std::string Join(const Container& parts, const std::string& sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out << sep;
    out << p;
    first = false;
  }
  return out.str();
}

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// True iff `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace dislock

#endif  // DISLOCK_UTIL_STRING_UTIL_H_
