#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace dislock {

MappedFile::~MappedFile() { Unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Unmap();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

bool MappedFile::Map(const std::string& path) {
  Unmap();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno == ENOENT;  // missing file == empty mapping
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  if (st.st_size == 0) {
    ::close(fd);
    return true;
  }
  void* p = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                   MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (p == MAP_FAILED) return false;
  data_ = static_cast<uint8_t*>(p);
  size_ = static_cast<size_t>(st.st_size);
  return true;
}

void MappedFile::Unmap() {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
}

FileLock::FileLock(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return;
  if (::flock(fd_, LOCK_EX) != 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace dislock
