#ifndef DISLOCK_GRAPH_DOMINATOR_H_
#define DISLOCK_GRAPH_DOMINATOR_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace dislock {

/// Dominators in the sense of Definition 2 of the paper: a *dominator* of a
/// digraph D = (V, A) is a nonempty proper subset X of V with no incoming
/// arcs from V - X. (Not the flow-graph "dominator tree" notion.)
///
/// A digraph has a dominator iff it is not strongly connected; dominators
/// are exactly the nonempty proper unions of condensation SCCs that are
/// closed under predecessors.

/// True iff `candidate` (a set of node ids) is a dominator of `g`.
bool IsDominator(const Digraph& g, const std::vector<NodeId>& candidate);

/// Returns a minimal dominator (the members of one source SCC of the
/// condensation), or NotFound if `g` is strongly connected (or has < 2
/// nodes, in which case no proper nonempty subset qualifies as interesting).
Result<std::vector<NodeId>> FindDominator(const Digraph& g);

/// Enumerates all dominators of `g`, up to `max_count`. Dominators are
/// in bijection with the nonempty proper predecessor-closed unions of SCCs
/// (down-sets of the reversed condensation DAG); there can be exponentially
/// many, so callers must bound `max_count`. Each dominator is returned as a
/// sorted vector of node ids.
///
/// Used by the Theorem 3 machinery, where dominators of D(T1(F), T2(F))
/// encode truth assignments (Fig. 8 of the paper).
std::vector<std::vector<NodeId>> AllDominators(const Digraph& g,
                                               int64_t max_count);

/// Flat-kernel variants (graph/csr.h: CSR + iterative Tarjan + arena
/// scratch, no per-node vectors or std::set). Byte-identical results to
/// their legacy counterparts above — same component numbering, same
/// enumeration order, same Status messages — verified by the differential
/// property tests. Selected via EngineConfig::use_flat_kernel.
Result<std::vector<NodeId>> FindDominatorFlat(const Digraph& g);

std::vector<std::vector<NodeId>> AllDominatorsFlat(const Digraph& g,
                                                   int64_t max_count);

}  // namespace dislock

#endif  // DISLOCK_GRAPH_DOMINATOR_H_
