#include "graph/csr.h"

#include <algorithm>
#include <cstring>

namespace dislock {

namespace {

CsrGraph MakeCsr(int32_t n, int32_t m, const int32_t* offsets,
                 const NodeId* targets) {
  CsrGraph g;
  g.num_nodes = n;
  g.num_arcs = m;
  g.offsets = offsets;
  g.targets = targets;
  return g;
}

}  // namespace

CsrGraph BuildCsr(const Digraph& g, Arena* arena) {
  const int32_t n = g.NumNodes();
  int32_t* offsets = arena->AllocateArray<int32_t>(static_cast<size_t>(n) + 1);
  int32_t m = 0;
  offsets[0] = 0;
  for (NodeId u = 0; u < n; ++u) {
    m += static_cast<int32_t>(g.OutNeighbors(u).size());
    offsets[u + 1] = m;
  }
  NodeId* targets = arena->AllocateArray<NodeId>(static_cast<size_t>(m));
  int32_t pos = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) targets[pos++] = v;
  }
  return MakeCsr(n, m, offsets, targets);
}

CsrGraph BuildReverseCsr(const Digraph& g, Arena* arena) {
  const int32_t n = g.NumNodes();
  int32_t* offsets = arena->AllocateArray<int32_t>(static_cast<size_t>(n) + 1);
  int32_t m = 0;
  offsets[0] = 0;
  for (NodeId u = 0; u < n; ++u) {
    m += static_cast<int32_t>(g.InNeighbors(u).size());
    offsets[u + 1] = m;
  }
  NodeId* targets = arena->AllocateArray<NodeId>(static_cast<size_t>(m));
  int32_t pos = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.InNeighbors(u)) targets[pos++] = v;
  }
  return MakeCsr(n, m, offsets, targets);
}

CsrGraph BuildCsrFromArcs(int num_nodes, const NodeId* tails,
                          const NodeId* heads, int32_t num_arcs,
                          Arena* arena) {
  const int32_t n = num_nodes;
  int32_t* offsets =
      arena->AllocateZeroed<int32_t>(static_cast<size_t>(n) + 1);
  for (int32_t i = 0; i < num_arcs; ++i) ++offsets[tails[i] + 1];
  for (int32_t u = 0; u < n; ++u) offsets[u + 1] += offsets[u];
  NodeId* targets = arena->AllocateArray<NodeId>(static_cast<size_t>(num_arcs));
  int32_t* cursor = arena->AllocateArray<int32_t>(static_cast<size_t>(n));
  std::memcpy(cursor, offsets, static_cast<size_t>(n) * sizeof(int32_t));
  for (int32_t i = 0; i < num_arcs; ++i) {
    targets[cursor[tails[i]]++] = heads[i];  // stable: preserves input order
  }
  return MakeCsr(n, num_arcs, offsets, targets);
}

namespace {

/// Iterative Tarjan over CSR arrays. Mirrors graph/scc.cc frame for frame
/// (roots in ascending id, adjacency in CSR order == Digraph order), so the
/// component numbering is identical to the legacy implementation. When
/// `min_node > 0`, the traversal is restricted to the subgraph induced by
/// nodes >= min_node with self-arcs dropped (Johnson's per-start subgraph);
/// excluded nodes become singleton components.
FlatScc TarjanOnCsr(const CsrGraph& g, NodeId min_node, Arena* arena) {
  const int32_t n = g.num_nodes;
  FlatScc result;
  int32_t* component = arena->AllocateArray<int32_t>(static_cast<size_t>(n));
  result.component = component;
  if (n == 0) return result;

  struct Frame {
    NodeId v;
    int32_t arc;  ///< absolute position in g.targets
  };
  int32_t* index = arena->AllocateArray<int32_t>(static_cast<size_t>(n));
  int32_t* lowlink = arena->AllocateArray<int32_t>(static_cast<size_t>(n));
  uint8_t* on_stack = arena->AllocateZeroed<uint8_t>(static_cast<size_t>(n));
  NodeId* stack = arena->AllocateArray<NodeId>(static_cast<size_t>(n));
  Frame* frames = arena->AllocateArray<Frame>(static_cast<size_t>(n));
  std::memset(index, -1, static_cast<size_t>(n) * sizeof(int32_t));
  int32_t stack_top = 0;
  int32_t frame_top = 0;
  int32_t next_index = 0;
  int32_t num_components = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    if (root < min_node) {
      // Outside the induced subgraph: isolated singleton component.
      index[root] = next_index++;
      component[root] = num_components++;
      continue;
    }
    frames[frame_top++] = {root, g.offsets[root]};
    index[root] = lowlink[root] = next_index++;
    stack[stack_top++] = root;
    on_stack[root] = 1;

    while (frame_top > 0) {
      Frame& frame = frames[frame_top - 1];
      const NodeId v = frame.v;
      const int32_t arc_end = g.offsets[v + 1];
      bool descended = false;
      while (frame.arc < arc_end) {
        NodeId w = g.targets[frame.arc++];
        // Self-arcs are skipped in both modes: in legacy Tarjan they only
        // produce lowlink[v] = min(lowlink[v], index[v]), a no-op, so the
        // component numbering is unaffected.
        if (w < min_node || w == v) continue;
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack[stack_top++] = w;
          on_stack[w] = 1;
          frames[frame_top++] = {w, g.offsets[w]};
          descended = true;
          break;
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) continue;
      if (frame.arc == arc_end) {
        if (lowlink[v] == index[v]) {
          NodeId w;
          do {
            w = stack[--stack_top];
            on_stack[w] = 0;
            component[w] = num_components;
          } while (w != v);
          ++num_components;
        }
        --frame_top;
        if (frame_top > 0) {
          NodeId parent = frames[frame_top - 1].v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  result.num_components = num_components;
  return result;
}

}  // namespace

FlatScc SccOnCsr(const CsrGraph& g, Arena* arena) {
  return TarjanOnCsr(g, /*min_node=*/0, arena);
}

FlatScc SccOnCsrMasked(const CsrGraph& g, NodeId min_node, Arena* arena) {
  return TarjanOnCsr(g, min_node < 0 ? 0 : min_node, arena);
}

bool StronglyConnectedOnCsr(const CsrGraph& g, Arena* scratch) {
  if (g.num_nodes <= 1) return true;
  ArenaScope scope(scratch);
  return SccOnCsr(g, scratch).num_components == 1;
}

FlatSccMembers GroupSccMembers(const FlatScc& scc, int num_nodes,
                               Arena* arena) {
  const int32_t n = num_nodes;
  const int32_t c = scc.num_components;
  FlatSccMembers out;
  int32_t* offsets =
      arena->AllocateZeroed<int32_t>(static_cast<size_t>(c) + 1);
  NodeId* nodes = arena->AllocateArray<NodeId>(static_cast<size_t>(n));
  for (int32_t v = 0; v < n; ++v) ++offsets[scc.component[v] + 1];
  for (int32_t i = 0; i < c; ++i) offsets[i + 1] += offsets[i];
  int32_t* cursor = arena->AllocateArray<int32_t>(static_cast<size_t>(c));
  std::memcpy(cursor, offsets, static_cast<size_t>(c) * sizeof(int32_t));
  for (NodeId v = 0; v < n; ++v) {
    nodes[cursor[scc.component[v]]++] = v;  // ascending node id per component
  }
  out.offsets = offsets;
  out.nodes = nodes;
  return out;
}

CsrGraph CondensationInArcsOnCsr(const CsrGraph& g, const FlatScc& scc,
                                 Arena* arena) {
  const int32_t c = scc.num_components;
  // Pack each cross arc u->v as (comp[v] << 32) | comp[u]: sorting groups by
  // target component and puts duplicates adjacent for the dedup pass. The
  // scratch pairs array stays live until the caller's enclosing ArenaScope
  // ends — a scope here would also rewind the result arrays below.
  int64_t* pairs =
      arena->AllocateArray<int64_t>(static_cast<size_t>(g.num_arcs));
  int32_t num_pairs = 0;
  for (NodeId u = 0; u < g.num_nodes; ++u) {
    const int32_t cu = scc.component[u];
    for (const NodeId* it = g.begin(u); it != g.end(u); ++it) {
      const int32_t cv = scc.component[*it];
      if (cu != cv) {
        pairs[num_pairs++] =
            (static_cast<int64_t>(cv) << 32) | static_cast<uint32_t>(cu);
      }
    }
  }
  std::sort(pairs, pairs + num_pairs);
  num_pairs =
      static_cast<int32_t>(std::unique(pairs, pairs + num_pairs) - pairs);

  int32_t* offsets = arena->AllocateZeroed<int32_t>(static_cast<size_t>(c) + 1);
  NodeId* targets =
      arena->AllocateArray<NodeId>(static_cast<size_t>(num_pairs));
  for (int32_t i = 0; i < num_pairs; ++i) {
    ++offsets[(pairs[i] >> 32) + 1];
    targets[i] = static_cast<NodeId>(pairs[i] & 0xffffffff);
  }
  for (int32_t i = 0; i < c; ++i) offsets[i + 1] += offsets[i];
  return MakeCsr(c, num_pairs, offsets, targets);
}

namespace {

/// Reverse-topological OR sweep over zero-initialized rows. The row width is
/// a template parameter so the W <= 4 size classes (n <= 256 — every
/// realistic transaction step order) compile to straight-line loads/ORs/
/// stores per arc instead of a counted loop.
template <size_t W>
void SweepDagRows(const CsrGraph& g, const NodeId* order, uint64_t* rows) {
  for (int32_t i = g.num_nodes - 1; i >= 0; --i) {
    const NodeId u = order[i];
    uint64_t* row = rows + static_cast<size_t>(u) * W;
    // Accumulate in a local array: u's row cannot alias any target's row
    // (a DAG has no self-arcs), but the compiler cannot prove it, so OR-ing
    // into `row` directly would reload and store all W words on every arc.
    uint64_t acc[W];
    for (size_t k = 0; k < W; ++k) acc[k] = row[k];
    for (const NodeId* it = g.begin(u); it != g.end(u); ++it) {
      const uint64_t* src = rows + static_cast<size_t>(*it) * W;
      for (size_t k = 0; k < W; ++k) acc[k] |= src[k];
    }
    for (size_t k = 0; k < W; ++k) row[k] = acc[k];
  }
}

void SweepDagRowsGeneric(const CsrGraph& g, const NodeId* order,
                         uint64_t* rows, size_t w) {
  for (int32_t i = g.num_nodes - 1; i >= 0; --i) {
    const NodeId u = order[i];
    uint64_t* row = rows + static_cast<size_t>(u) * w;
    for (const NodeId* it = g.begin(u); it != g.end(u); ++it) {
      bits::OrWordsInto(row, rows + static_cast<size_t>(*it) * w, w);
    }
  }
}

}  // namespace

void ReachabilityWordsOnCsr(const CsrGraph& g, uint64_t* rows,
                            Arena* scratch) {
  const int32_t n = g.num_nodes;
  if (n == 0) return;
  const size_t w = bits::WordsForBits(static_cast<size_t>(n));
  ArenaScope scope(scratch);

  // Fast path: Kahn. Transaction step orders — the rows computed on every
  // pair check — are always DAGs, so first try a plain topological sort and
  // sweep reverse-topologically straight into `rows`. This skips Tarjan and
  // the component grouping entirely; only cyclic graphs fall through to the
  // SCC-based path below.
  {
    int32_t* indegree =
        scratch->AllocateZeroed<int32_t>(static_cast<size_t>(n));
    for (int32_t i = 0; i < g.num_arcs; ++i) ++indegree[g.targets[i]];
    NodeId* order = scratch->AllocateArray<NodeId>(static_cast<size_t>(n));
    int32_t head = 0, tail = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (indegree[v] == 0) order[tail++] = v;
    }
    while (head < tail) {
      const NodeId u = order[head++];
      for (const NodeId* it = g.begin(u); it != g.end(u); ++it) {
        if (--indegree[*it] == 0) order[tail++] = *it;
      }
    }
    if (tail == n) {  // acyclic: targets are complete before their sources
      for (NodeId v = 0; v < n; ++v) {
        bits::SetBit(rows + static_cast<size_t>(v) * w,
                     static_cast<size_t>(v));
      }
      switch (w) {
        case 1: SweepDagRows<1>(g, order, rows); break;
        case 2: SweepDagRows<2>(g, order, rows); break;
        case 3: SweepDagRows<3>(g, order, rows); break;
        case 4: SweepDagRows<4>(g, order, rows); break;
        default: SweepDagRowsGeneric(g, order, rows, w); break;
      }
      return;
    }
  }

  FlatScc scc = SccOnCsr(g, scratch);
  FlatSccMembers members = GroupSccMembers(scc, n, scratch);
  const int32_t c = scc.num_components;

  // Each component's row is computed IN PLACE in the output row of its
  // first member (its representative); the remaining members take a copy
  // at the end of the component's turn. On a DAG every component is a
  // singleton, so there is no scratch matrix and no copying at all — the
  // sweep writes the final rows directly, matching the memory traffic of
  // a plain reverse-topological sweep.
  auto rep_row = [&](int32_t comp) {
    return rows +
           static_cast<size_t>(members.nodes[members.offsets[comp]]) * w;
  };
  // Ascending component id = reverse topological order (Tarjan numbering),
  // so every cross-arc target component's rep row is already final when it
  // is ORed in.
  for (int32_t comp = 0; comp < c; ++comp) {
    uint64_t* row = rep_row(comp);
    for (int32_t i = members.offsets[comp]; i < members.offsets[comp + 1];
         ++i) {
      bits::SetBit(row, static_cast<size_t>(members.nodes[i]));
    }
    for (int32_t i = members.offsets[comp]; i < members.offsets[comp + 1];
         ++i) {
      const NodeId u = members.nodes[i];
      for (const NodeId* it = g.begin(u); it != g.end(u); ++it) {
        const int32_t cv = scc.component[*it];
        if (cv != comp) bits::OrWordsInto(row, rep_row(cv), w);
      }
    }
    for (int32_t i = members.offsets[comp] + 1;
         i < members.offsets[comp + 1]; ++i) {
      std::memcpy(rows + static_cast<size_t>(members.nodes[i]) * w, row,
                  w * sizeof(uint64_t));
    }
  }
}

bool HasCycleOnCsr(const CsrGraph& g, Arena* scratch) {
  const int32_t n = g.num_nodes;
  if (n == 0) return false;
  ArenaScope scope(scratch);
  int32_t* indegree = scratch->AllocateZeroed<int32_t>(static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId* it = g.begin(u); it != g.end(u); ++it) {
      if (*it == u) return true;  // self-loop
      ++indegree[*it];
    }
  }
  NodeId* queue = scratch->AllocateArray<NodeId>(static_cast<size_t>(n));
  int32_t head = 0, tail = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (indegree[v] == 0) queue[tail++] = v;
  }
  while (head < tail) {
    const NodeId u = queue[head++];
    for (const NodeId* it = g.begin(u); it != g.end(u); ++it) {
      if (--indegree[*it] == 0) queue[tail++] = *it;
    }
  }
  return tail < n;  // some node never reached indegree 0 => cycle
}

}  // namespace dislock
