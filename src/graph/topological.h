#ifndef DISLOCK_GRAPH_TOPOLOGICAL_H_
#define DISLOCK_GRAPH_TOPOLOGICAL_H_

#include <functional>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace dislock {

/// Returns some topological order of `g`, or InvalidArgument if `g` has a
/// cycle.
Result<std::vector<NodeId>> TopologicalSort(const Digraph& g);

/// Priority comparator for PriorityTopologicalSort: returns true when `a`
/// should be emitted before `b` whenever both are simultaneously available.
using NodePriority = std::function<bool(NodeId a, NodeId b)>;

/// Kahn's algorithm, always emitting the highest-priority available node.
///
/// This implements the "topologically sort giving priority to ..." steps of
/// the Theorem 2 certificate construction (place Ux, x in X, as early as
/// possible in t1; place Lx as late as possible in t2, breaking ties by t1's
/// Ux order). Runs in O(V^2) with a linear scan for the best available node,
/// which is fine at transaction sizes (the overall test is O(n^2) anyway).
///
/// Returns InvalidArgument if `g` has a cycle.
Result<std::vector<NodeId>> PriorityTopologicalSort(const Digraph& g,
                                                    const NodePriority& before);

/// True iff `g` is acyclic.
bool IsAcyclic(const Digraph& g);

/// Topological sort that places each node of `priority` (in the given
/// relative order) as early as possible: for each priority node, its
/// not-yet-emitted ancestors are emitted first (in a DFS over predecessor
/// arcs, smaller node ids first), then the node itself; all remaining nodes
/// follow in Kahn order (smaller ids first).
///
/// This is the "topologically sort giving priority to ... (examining these
/// steps first in our depth-first search)" of the Theorem 2 proof: a
/// priority node is preceded by exactly its ancestors and earlier priority
/// nodes (plus their ancestors). Returns InvalidArgument on a cyclic graph.
Result<std::vector<NodeId>> AncestorFirstTopologicalSort(
    const Digraph& g, const std::vector<NodeId>& priority);

/// The graph with every arc reversed (used to run "as late as possible"
/// sorts as "as early as possible" sorts on the reverse).
Digraph ReverseOf(const Digraph& g);

}  // namespace dislock

#endif  // DISLOCK_GRAPH_TOPOLOGICAL_H_
