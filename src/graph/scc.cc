#include "graph/scc.h"

#include <algorithm>
#include <set>

#include "graph/csr.h"
#include "util/arena.h"

namespace dislock {

SccResult StronglyConnectedComponents(const Digraph& g) {
  const int n = g.NumNodes();
  SccResult result;
  result.component.assign(n, -1);

  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  int next_index = 0;

  // Iterative Tarjan. Each frame tracks the node and the position in its
  // adjacency list.
  struct Frame {
    NodeId v;
    size_t child;
  };
  std::vector<Frame> call_stack;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      NodeId v = frame.v;
      const auto& adj = g.OutNeighbors(v);
      if (frame.child < adj.size()) {
        NodeId w = adj[frame.child++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          result.members.emplace_back();
          auto& comp = result.members.back();
          NodeId w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.num_components;
            comp.push_back(w);
          } while (w != v);
          ++result.num_components;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          NodeId parent = call_stack.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return result;
}

bool IsStronglyConnected(const Digraph& g) {
  if (g.NumNodes() <= 1) return true;
  return StronglyConnectedComponents(g).num_components == 1;
}

bool IsStronglyConnectedFlat(const Digraph& g) {
  if (g.NumNodes() <= 1) return true;
  Arena* arena = ScratchArena();
  ArenaScope scope(arena);
  return StronglyConnectedOnCsr(BuildCsr(g, arena), arena);
}

Digraph Condensation(const Digraph& g, const SccResult& scc) {
  Digraph cond(scc.num_components);
  std::set<std::pair<int, int>> seen;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      int cu = scc.component[u];
      int cv = scc.component[v];
      if (cu != cv && seen.insert({cu, cv}).second) {
        cond.AddArc(cu, cv);
      }
    }
  }
  return cond;
}

}  // namespace dislock
