#ifndef DISLOCK_GRAPH_CYCLES_H_
#define DISLOCK_GRAPH_CYCLES_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace dislock {

/// True iff `g` contains a directed cycle (self-loops count).
bool HasCycle(const Digraph& g);

/// Enumerates the simple directed cycles of `g` (Johnson's algorithm),
/// stopping after `max_cycles`. Each cycle is reported as its node sequence
/// (without repeating the first node at the end), starting at its smallest
/// node id.
///
/// Used to enumerate the directed cycles of the transaction conflict graph G
/// in the Proposition 2 safety test for many transactions. The number of
/// simple cycles can be exponential; callers must bound `max_cycles`.
std::vector<std::vector<NodeId>> SimpleCycles(const Digraph& g,
                                              int64_t max_cycles);

/// Flat-kernel variants (graph/csr.h): one CSR lowering for the whole
/// enumeration, masked arena-backed Tarjan for Johnson's per-start subgraph
/// instead of materializing a sub-Digraph, and linked-list block maps in
/// place of per-node vectors. Cycle sequences are byte-identical to the
/// legacy functions above (same adjacency order, same recursion); selected
/// via EngineConfig::use_flat_kernel.
bool HasCycleFlat(const Digraph& g);

std::vector<std::vector<NodeId>> SimpleCyclesFlat(const Digraph& g,
                                                  int64_t max_cycles);

}  // namespace dislock

#endif  // DISLOCK_GRAPH_CYCLES_H_
