#include "graph/digraph.h"

#include <sstream>

namespace dislock {

std::string Digraph::ToDot(const std::string& graph_name) const {
  std::ostringstream out;
  out << "digraph " << graph_name << " {\n";
  for (NodeId u = 0; u < NumNodes(); ++u) {
    out << "  n" << u;
    if (!labels_[u].empty()) out << " [label=\"" << labels_[u] << "\"]";
    out << ";\n";
  }
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (NodeId v : out_[u]) out << "  n" << u << " -> n" << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace dislock
