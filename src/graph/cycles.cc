#include "graph/cycles.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "graph/csr.h"
#include "graph/scc.h"
#include "graph/topological.h"
#include "util/arena.h"

namespace dislock {

bool HasCycle(const Digraph& g) {
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.HasArc(u, u)) return true;
  }
  return !IsAcyclic(g);
}

namespace {

/// State for Johnson's simple-cycle enumeration, restricted to the subgraph
/// induced by nodes >= start_ within one SCC.
class JohnsonState {
 public:
  JohnsonState(const Digraph& g, int64_t max_cycles,
               std::vector<std::vector<NodeId>>* out)
      : g_(g), max_cycles_(max_cycles), out_(out) {
    const int n = g.NumNodes();
    blocked_.assign(n, false);
    block_map_.assign(n, {});
    in_scope_.assign(n, false);
  }

  void Run() {
    const int n = g_.NumNodes();
    // Self-loops are simple cycles too; Johnson's classic formulation skips
    // them, so emit them up front.
    for (NodeId u = 0; u < n && !Full(); ++u) {
      if (g_.HasArc(u, u)) out_->push_back({u});
    }
    for (start_ = 0; start_ < n && !Full(); ++start_) {
      // Restrict to the SCC of start_ within nodes >= start_.
      Digraph sub(n);
      for (NodeId u = start_; u < n; ++u) {
        for (NodeId v : g_.OutNeighbors(u)) {
          if (v >= start_ && v != u) sub.AddArc(u, v);
        }
      }
      SccResult scc = StronglyConnectedComponents(sub);
      int comp = scc.component[start_];
      for (NodeId u = 0; u < n; ++u) {
        in_scope_[u] = u >= start_ && scc.component[u] == comp;
        blocked_[u] = false;
        block_map_[u].clear();
      }
      if (scc.members[comp].size() < 2) continue;
      Circuit(start_);
    }
  }

 private:
  bool Full() const {
    return static_cast<int64_t>(out_->size()) >= max_cycles_;
  }

  void Unblock(NodeId u) {
    blocked_[u] = false;
    for (NodeId w : block_map_[u]) {
      if (blocked_[w]) Unblock(w);
    }
    block_map_[u].clear();
  }

  bool Circuit(NodeId v) {
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    for (NodeId w : g_.OutNeighbors(v)) {
      if (!in_scope_[w] || w == v) continue;
      if (Full()) break;
      if (w == start_) {
        out_->push_back(path_);
        found = true;
      } else if (!blocked_[w]) {
        if (Circuit(w)) found = true;
      }
    }
    if (found) {
      Unblock(v);
    } else {
      for (NodeId w : g_.OutNeighbors(v)) {
        if (!in_scope_[w] || w == v) continue;
        auto& bm = block_map_[w];
        if (std::find(bm.begin(), bm.end(), v) == bm.end()) bm.push_back(v);
      }
    }
    path_.pop_back();
    return found;
  }

  const Digraph& g_;
  int64_t max_cycles_;
  std::vector<std::vector<NodeId>>* out_;
  NodeId start_ = 0;
  std::vector<bool> blocked_;
  std::vector<bool> in_scope_;
  std::vector<std::vector<NodeId>> block_map_;
  std::vector<NodeId> path_;
};

/// Johnson's enumeration on a CsrGraph: the graph is lowered once, the
/// per-start SCC restriction runs as a masked Tarjan on the same CSR (no
/// sub-Digraph materialization), and block maps are intrusive linked lists
/// over one growable pool. The Circuit recursion walks CSR rows in the same
/// order JohnsonState walks Digraph adjacency, so the emitted cycle
/// sequence is byte-identical.
class FlatJohnsonState {
 public:
  FlatJohnsonState(CsrGraph g, int64_t max_cycles,
                   std::vector<std::vector<NodeId>>* out, Arena* arena)
      : g_(g), max_cycles_(max_cycles), out_(out), arena_(arena) {
    const size_t n = static_cast<size_t>(g.num_nodes);
    blocked_ = arena->AllocateZeroed<uint8_t>(n);
    in_scope_ = arena->AllocateZeroed<uint8_t>(n);
    block_head_ = arena->AllocateArray<int32_t>(n);
  }

  void Run() {
    const int32_t n = g_.num_nodes;
    for (NodeId u = 0; u < n && !Full(); ++u) {
      for (const NodeId* it = g_.begin(u); it != g_.end(u); ++it) {
        if (*it == u) {
          out_->push_back({u});  // self-loops are simple cycles too
          break;
        }
      }
    }
    for (start_ = 0; start_ < n && !Full(); ++start_) {
      ArenaScope scope(arena_);
      FlatScc scc = SccOnCsrMasked(g_, start_, arena_);
      const int32_t comp = scc.component[start_];
      int32_t comp_size = 0;
      for (NodeId u = 0; u < n; ++u) {
        in_scope_[u] = u >= start_ && scc.component[u] == comp;
        if (in_scope_[u]) ++comp_size;
      }
      if (comp_size < 2) continue;
      std::memset(blocked_, 0, static_cast<size_t>(n));
      std::memset(block_head_, -1, static_cast<size_t>(n) * sizeof(int32_t));
      block_pool_.clear();
      Circuit(start_);
    }
  }

 private:
  struct BlockEntry {
    NodeId node;
    int32_t next;  ///< index into block_pool_, -1 = end
  };

  bool Full() const {
    return static_cast<int64_t>(out_->size()) >= max_cycles_;
  }

  void Unblock(NodeId u) {
    blocked_[u] = 0;
    int32_t e = block_head_[u];
    block_head_[u] = -1;
    while (e != -1) {
      const BlockEntry entry = block_pool_[static_cast<size_t>(e)];
      if (blocked_[entry.node]) Unblock(entry.node);
      e = entry.next;
    }
  }

  void BlockMapAdd(NodeId w, NodeId v) {
    for (int32_t e = block_head_[w]; e != -1;
         e = block_pool_[static_cast<size_t>(e)].next) {
      if (block_pool_[static_cast<size_t>(e)].node == v) return;
    }
    block_pool_.push_back({v, block_head_[w]});
    block_head_[w] = static_cast<int32_t>(block_pool_.size()) - 1;
  }

  bool Circuit(NodeId v) {
    bool found = false;
    path_.push_back(v);
    blocked_[v] = 1;
    for (const NodeId* it = g_.begin(v); it != g_.end(v); ++it) {
      const NodeId w = *it;
      if (!in_scope_[w] || w == v) continue;
      if (Full()) break;
      if (w == start_) {
        out_->push_back(path_);
        found = true;
      } else if (!blocked_[w]) {
        if (Circuit(w)) found = true;
      }
    }
    if (found) {
      Unblock(v);
    } else {
      for (const NodeId* it = g_.begin(v); it != g_.end(v); ++it) {
        if (!in_scope_[*it] || *it == v) continue;
        BlockMapAdd(*it, v);
      }
    }
    path_.pop_back();
    return found;
  }

  const CsrGraph g_;  ///< by value: a CsrGraph is a trivially copyable view
  int64_t max_cycles_;
  std::vector<std::vector<NodeId>>* out_;
  Arena* arena_;
  NodeId start_ = 0;
  uint8_t* blocked_ = nullptr;
  uint8_t* in_scope_ = nullptr;
  int32_t* block_head_ = nullptr;
  std::vector<BlockEntry> block_pool_;
  std::vector<NodeId> path_;
};

}  // namespace

std::vector<std::vector<NodeId>> SimpleCycles(const Digraph& g,
                                              int64_t max_cycles) {
  std::vector<std::vector<NodeId>> cycles;
  if (max_cycles <= 0) return cycles;
  JohnsonState state(g, max_cycles, &cycles);
  state.Run();
  return cycles;
}

bool HasCycleFlat(const Digraph& g) {
  Arena* arena = ScratchArena();
  ArenaScope scope(arena);
  return HasCycleOnCsr(BuildCsr(g, arena), arena);
}

std::vector<std::vector<NodeId>> SimpleCyclesFlat(const Digraph& g,
                                                  int64_t max_cycles) {
  std::vector<std::vector<NodeId>> cycles;
  if (max_cycles <= 0) return cycles;
  Arena* arena = ScratchArena();
  ArenaScope scope(arena);
  FlatJohnsonState state(BuildCsr(g, arena), max_cycles, &cycles, arena);
  state.Run();
  return cycles;
}

}  // namespace dislock
