#include "graph/cycles.h"

#include <algorithm>
#include <set>

#include "graph/scc.h"
#include "graph/topological.h"

namespace dislock {

bool HasCycle(const Digraph& g) {
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.HasArc(u, u)) return true;
  }
  return !IsAcyclic(g);
}

namespace {

/// State for Johnson's simple-cycle enumeration, restricted to the subgraph
/// induced by nodes >= start_ within one SCC.
class JohnsonState {
 public:
  JohnsonState(const Digraph& g, int64_t max_cycles,
               std::vector<std::vector<NodeId>>* out)
      : g_(g), max_cycles_(max_cycles), out_(out) {
    const int n = g.NumNodes();
    blocked_.assign(n, false);
    block_map_.assign(n, {});
    in_scope_.assign(n, false);
  }

  void Run() {
    const int n = g_.NumNodes();
    // Self-loops are simple cycles too; Johnson's classic formulation skips
    // them, so emit them up front.
    for (NodeId u = 0; u < n && !Full(); ++u) {
      if (g_.HasArc(u, u)) out_->push_back({u});
    }
    for (start_ = 0; start_ < n && !Full(); ++start_) {
      // Restrict to the SCC of start_ within nodes >= start_.
      Digraph sub(n);
      for (NodeId u = start_; u < n; ++u) {
        for (NodeId v : g_.OutNeighbors(u)) {
          if (v >= start_ && v != u) sub.AddArc(u, v);
        }
      }
      SccResult scc = StronglyConnectedComponents(sub);
      int comp = scc.component[start_];
      for (NodeId u = 0; u < n; ++u) {
        in_scope_[u] = u >= start_ && scc.component[u] == comp;
        blocked_[u] = false;
        block_map_[u].clear();
      }
      if (scc.members[comp].size() < 2) continue;
      Circuit(start_);
    }
  }

 private:
  bool Full() const {
    return static_cast<int64_t>(out_->size()) >= max_cycles_;
  }

  void Unblock(NodeId u) {
    blocked_[u] = false;
    for (NodeId w : block_map_[u]) {
      if (blocked_[w]) Unblock(w);
    }
    block_map_[u].clear();
  }

  bool Circuit(NodeId v) {
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    for (NodeId w : g_.OutNeighbors(v)) {
      if (!in_scope_[w] || w == v) continue;
      if (Full()) break;
      if (w == start_) {
        out_->push_back(path_);
        found = true;
      } else if (!blocked_[w]) {
        if (Circuit(w)) found = true;
      }
    }
    if (found) {
      Unblock(v);
    } else {
      for (NodeId w : g_.OutNeighbors(v)) {
        if (!in_scope_[w] || w == v) continue;
        auto& bm = block_map_[w];
        if (std::find(bm.begin(), bm.end(), v) == bm.end()) bm.push_back(v);
      }
    }
    path_.pop_back();
    return found;
  }

  const Digraph& g_;
  int64_t max_cycles_;
  std::vector<std::vector<NodeId>>* out_;
  NodeId start_ = 0;
  std::vector<bool> blocked_;
  std::vector<bool> in_scope_;
  std::vector<std::vector<NodeId>> block_map_;
  std::vector<NodeId> path_;
};

}  // namespace

std::vector<std::vector<NodeId>> SimpleCycles(const Digraph& g,
                                              int64_t max_cycles) {
  std::vector<std::vector<NodeId>> cycles;
  if (max_cycles <= 0) return cycles;
  JohnsonState state(g, max_cycles, &cycles);
  state.Run();
  return cycles;
}

}  // namespace dislock
