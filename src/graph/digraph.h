#ifndef DISLOCK_GRAPH_DIGRAPH_H_
#define DISLOCK_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace dislock {

/// A node index into a Digraph. Nodes are dense integers [0, NumNodes()).
using NodeId = int32_t;

/// A simple directed graph (adjacency lists, optional node labels).
///
/// This is the shared substrate for every graph in the library: transaction
/// DAGs, the conflict digraph D(T1,T2) of Definition 1, condensations, the
/// B_ijk graphs of Proposition 2, and the skeleton digraph of the Theorem 3
/// reduction.
class Digraph {
 public:
  Digraph() = default;
  /// Creates a graph with `num_nodes` isolated nodes.
  explicit Digraph(int num_nodes) { Resize(num_nodes); }

  /// Grows the node set to `num_nodes` (never shrinks).
  void Resize(int num_nodes) {
    DISLOCK_CHECK_GE(num_nodes, static_cast<int>(out_.size()));
    out_.resize(num_nodes);
    in_.resize(num_nodes);
    labels_.resize(num_nodes);
  }

  /// Adds a fresh node and returns its id.
  NodeId AddNode(std::string label = "") {
    out_.emplace_back();
    in_.emplace_back();
    labels_.push_back(std::move(label));
    return static_cast<NodeId>(out_.size() - 1);
  }

  /// Adds arc u -> v. Parallel arcs are kept (harmless for all algorithms
  /// here); use HasArc() first to deduplicate if needed.
  void AddArc(NodeId u, NodeId v) {
    DISLOCK_CHECK(ValidNode(u) && ValidNode(v));
    out_[u].push_back(v);
    in_[v].push_back(u);
    ++num_arcs_;
  }

  /// Adds arc u -> v unless it is already present. O(out-degree of u).
  void AddArcUnique(NodeId u, NodeId v) {
    if (!HasArc(u, v)) AddArc(u, v);
  }

  /// True iff arc u -> v exists. O(out-degree of u).
  bool HasArc(NodeId u, NodeId v) const {
    DISLOCK_CHECK(ValidNode(u) && ValidNode(v));
    for (NodeId w : out_[u]) {
      if (w == v) return true;
    }
    return false;
  }

  int NumNodes() const { return static_cast<int>(out_.size()); }
  int64_t NumArcs() const { return num_arcs_; }

  const std::vector<NodeId>& OutNeighbors(NodeId u) const {
    DISLOCK_CHECK(ValidNode(u));
    return out_[u];
  }
  const std::vector<NodeId>& InNeighbors(NodeId u) const {
    DISLOCK_CHECK(ValidNode(u));
    return in_[u];
  }

  const std::string& Label(NodeId u) const {
    DISLOCK_CHECK(ValidNode(u));
    return labels_[u];
  }
  void SetLabel(NodeId u, std::string label) {
    DISLOCK_CHECK(ValidNode(u));
    labels_[u] = std::move(label);
  }

  bool ValidNode(NodeId u) const {
    return u >= 0 && u < static_cast<int>(out_.size());
  }

  /// Graphviz-style dump for debugging and examples.
  std::string ToDot(const std::string& graph_name = "G") const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::vector<std::string> labels_;
  int64_t num_arcs_ = 0;
};

}  // namespace dislock

#endif  // DISLOCK_GRAPH_DIGRAPH_H_
