#include "graph/topological.h"

#include <algorithm>
#include <deque>

namespace dislock {

Result<std::vector<NodeId>> TopologicalSort(const Digraph& g) {
  const int n = g.NumNodes();
  std::vector<int> indegree(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) ++indegree[v];
  }
  std::deque<NodeId> ready;
  for (NodeId u = 0; u < n; ++u) {
    if (indegree[u] == 0) ready.push_back(u);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    NodeId u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (NodeId v : g.OutNeighbors(u)) {
      if (--indegree[v] == 0) ready.push_back(v);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument("graph has a cycle; no topological order");
  }
  return order;
}

Result<std::vector<NodeId>> PriorityTopologicalSort(
    const Digraph& g, const NodePriority& before) {
  const int n = g.NumNodes();
  std::vector<int> indegree(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) ++indegree[v];
  }
  std::vector<bool> available(n, false);
  std::vector<bool> emitted(n, false);
  int num_available = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (indegree[u] == 0) {
      available[u] = true;
      ++num_available;
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (num_available > 0) {
    NodeId best = -1;
    for (NodeId u = 0; u < n; ++u) {
      if (!available[u] || emitted[u]) continue;
      if (best == -1 || before(u, best)) best = u;
    }
    DISLOCK_CHECK_NE(best, -1);
    emitted[best] = true;
    available[best] = false;
    --num_available;
    order.push_back(best);
    for (NodeId v : g.OutNeighbors(best)) {
      if (--indegree[v] == 0) {
        available[v] = true;
        ++num_available;
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::InvalidArgument("graph has a cycle; no topological order");
  }
  return order;
}

bool IsAcyclic(const Digraph& g) { return TopologicalSort(g).ok(); }

Result<std::vector<NodeId>> AncestorFirstTopologicalSort(
    const Digraph& g, const std::vector<NodeId>& priority) {
  if (!IsAcyclic(g)) {
    return Status::InvalidArgument("graph has a cycle; no topological order");
  }
  const int n = g.NumNodes();
  std::vector<bool> emitted(n, false);
  std::vector<NodeId> order;
  order.reserve(n);

  // Emits every unemitted ancestor of `v` (smaller ids first), then `v`.
  // Iterative DFS over predecessor arcs.
  auto emit_with_ancestors = [&](NodeId target) {
    struct Frame {
      NodeId v;
      size_t next_pred;
      std::vector<NodeId> preds;  // sorted predecessors
    };
    std::vector<Frame> stack;
    auto push = [&](NodeId v) {
      std::vector<NodeId> preds = g.InNeighbors(v);
      std::sort(preds.begin(), preds.end());
      stack.push_back({v, 0, std::move(preds)});
    };
    if (emitted[target]) return;
    push(target);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_pred < f.preds.size()) {
        NodeId p = f.preds[f.next_pred++];
        if (!emitted[p]) push(p);
      } else {
        if (!emitted[f.v]) {
          emitted[f.v] = true;
          order.push_back(f.v);
        }
        stack.pop_back();
      }
    }
  };

  for (NodeId v : priority) {
    DISLOCK_CHECK(g.ValidNode(v));
    emit_with_ancestors(v);
  }
  // Remaining nodes in Kahn order by id (their ancestors may still be
  // pending, so pull ancestors for each in id order).
  for (NodeId v = 0; v < n; ++v) {
    emit_with_ancestors(v);
  }
  DISLOCK_CHECK_EQ(static_cast<int>(order.size()), n);
  return order;
}

Digraph ReverseOf(const Digraph& g) {
  Digraph rev(g.NumNodes());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    rev.SetLabel(u, g.Label(u));
    for (NodeId v : g.OutNeighbors(u)) rev.AddArc(v, u);
  }
  return rev;
}

}  // namespace dislock
