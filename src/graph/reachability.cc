#include "graph/reachability.h"

#include <deque>

#include "graph/topological.h"

namespace dislock {

Reachability::Reachability(const Digraph& g) {
  const int n = g.NumNodes();
  rows_.assign(n, DynamicBitset(static_cast<size_t>(n)));
  for (NodeId u = 0; u < n; ++u) rows_[u].Set(static_cast<size_t>(u));

  auto topo = TopologicalSort(g);
  if (topo.ok()) {
    // Reverse topological sweep: a node's row is the union of its
    // out-neighbors' rows.
    const auto& order = topo.value();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      NodeId u = *it;
      for (NodeId v : g.OutNeighbors(u)) rows_[u].UnionWith(rows_[v]);
    }
    return;
  }

  // Cyclic fallback: BFS from every node.
  for (NodeId s = 0; s < n; ++s) {
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.OutNeighbors(u)) {
        if (!rows_[s].Test(static_cast<size_t>(v))) {
          rows_[s].Set(static_cast<size_t>(v));
          queue.push_back(v);
        }
      }
    }
  }
}

}  // namespace dislock
