#include "graph/reachability.h"

#include <deque>

#include "graph/csr.h"
#include "graph/topological.h"
#include "util/arena.h"

namespace dislock {

Reachability::Reachability(const Digraph& g, Impl impl) {
  const int n = g.NumNodes();
  num_nodes_ = n;
  words_per_row_ = bits::WordsForBits(static_cast<size_t>(n));
  words_.assign(static_cast<size_t>(n) * words_per_row_, 0);
  if (n == 0) return;

  if (impl == Impl::kFlat) {
    Arena* arena = ScratchArena();
    ArenaScope scope(arena);
    CsrGraph csr = BuildCsr(g, arena);
    ReachabilityWordsOnCsr(csr, words_.data(), arena);
    return;
  }

  // Legacy reference implementation (pre-flat-kernel semantics, flat
  // storage): reflexive bits, then a reverse topological sweep on DAGs or a
  // per-node BFS fallback on cyclic graphs.
  auto row = [&](NodeId u) {
    return words_.data() + static_cast<size_t>(u) * words_per_row_;
  };
  for (NodeId u = 0; u < n; ++u) bits::SetBit(row(u), static_cast<size_t>(u));

  auto topo = TopologicalSort(g);
  if (topo.ok()) {
    const auto& order = topo.value();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      NodeId u = *it;
      for (NodeId v : g.OutNeighbors(u)) {
        bits::OrWords(row(u), row(v), words_per_row_);
      }
    }
    return;
  }

  for (NodeId s = 0; s < n; ++s) {
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.OutNeighbors(u)) {
        if (!bits::TestBit(row(s), static_cast<size_t>(v))) {
          bits::SetBit(row(s), static_cast<size_t>(v));
          queue.push_back(v);
        }
      }
    }
  }
}

}  // namespace dislock
