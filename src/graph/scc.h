#ifndef DISLOCK_GRAPH_SCC_H_
#define DISLOCK_GRAPH_SCC_H_

#include <vector>

#include "graph/digraph.h"

namespace dislock {

/// The strongly connected components of a digraph, plus its condensation.
struct SccResult {
  /// component[v] = index of v's SCC. Components are numbered in reverse
  /// topological order of the condensation (Tarjan's order): if there is an
  /// arc from SCC a to SCC b (a != b) in the condensation then
  /// component id of a > component id of b.
  std::vector<int> component;
  /// Number of SCCs.
  int num_components = 0;
  /// members[c] = nodes of SCC c.
  std::vector<std::vector<NodeId>> members;
};

/// Computes SCCs with Tarjan's algorithm (iterative; no recursion depth
/// limits on large transaction graphs).
SccResult StronglyConnectedComponents(const Digraph& g);

/// True iff `g` is strongly connected. By convention graphs with 0 or 1
/// nodes are strongly connected (this matches the safety semantics of
/// Theorem 1: with fewer than two commonly locked entities there is nothing
/// to separate).
bool IsStronglyConnected(const Digraph& g);

/// Builds the condensation of `g` from an SccResult: one node per SCC,
/// deduplicated arcs between distinct SCCs.
Digraph Condensation(const Digraph& g, const SccResult& scc);

/// Flat-kernel variant of IsStronglyConnected: lowers to CSR and runs the
/// iterative arena-backed Tarjan of graph/csr.h. Identical verdicts to
/// IsStronglyConnected; selected via EngineConfig::use_flat_kernel.
bool IsStronglyConnectedFlat(const Digraph& g);

}  // namespace dislock

#endif  // DISLOCK_GRAPH_SCC_H_
