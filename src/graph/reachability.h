#ifndef DISLOCK_GRAPH_REACHABILITY_H_
#define DISLOCK_GRAPH_REACHABILITY_H_

#include <vector>

#include "graph/digraph.h"
#include "util/bitset.h"

namespace dislock {

/// Precomputed reachability (reflexive-transitive closure) of a digraph.
///
/// Transactions are partial orders given as DAGs; "Lx precedes Uy in T"
/// (Definition 1, Lemmas 2-3) is a reachability query on the transaction's
/// step DAG. The closure is stored as one bitset row per node, so building it
/// costs O(V * E / 64) via a reverse-topological sweep on DAGs (and a
/// per-node BFS fallback on cyclic graphs, used only in tests).
class Reachability {
 public:
  /// Builds the closure of `g`.
  explicit Reachability(const Digraph& g);

  /// True iff there is a directed path from u to v (including u == v).
  bool Reaches(NodeId u, NodeId v) const {
    return rows_[u].Test(static_cast<size_t>(v));
  }

  /// True iff u strictly precedes v (path exists and u != v).
  bool StrictlyReaches(NodeId u, NodeId v) const {
    return u != v && Reaches(u, v);
  }

  /// True iff u and v are incomparable (neither reaches the other).
  bool Concurrent(NodeId u, NodeId v) const {
    return !Reaches(u, v) && !Reaches(v, u);
  }

  int NumNodes() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<DynamicBitset> rows_;
};

}  // namespace dislock

#endif  // DISLOCK_GRAPH_REACHABILITY_H_
