#ifndef DISLOCK_GRAPH_REACHABILITY_H_
#define DISLOCK_GRAPH_REACHABILITY_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "util/bitset.h"

namespace dislock {

/// Precomputed reachability (reflexive-transitive closure) of a digraph.
///
/// Transactions are partial orders given as DAGs; "Lx precedes Uy in T"
/// (Definition 1, Lemmas 2-3) is a reachability query on the transaction's
/// step DAG. The closure is stored as one flat bitset row per node in a
/// single contiguous buffer.
///
/// Two construction algorithms produce identical rows:
///  - kFlat (default): CSR lowering + SCC condensation closed with
///    word-parallel ORs in reverse topological order (graph/csr.h). One
///    pass, cyclic graphs included, no per-query BFS.
///  - kLegacy: the pre-flat-kernel reference — reverse-topological sweep on
///    DAGs with a per-node BFS fallback on cyclic graphs. Kept for the
///    differential property tests.
class Reachability {
 public:
  enum class Impl { kFlat, kLegacy };

  /// Builds the closure of `g`.
  explicit Reachability(const Digraph& g, Impl impl = Impl::kFlat);

  /// True iff there is a directed path from u to v (including u == v).
  bool Reaches(NodeId u, NodeId v) const {
    return bits::TestBit(words_.data() + static_cast<size_t>(u) * words_per_row_,
                         static_cast<size_t>(v));
  }

  /// True iff u strictly precedes v (path exists and u != v).
  bool StrictlyReaches(NodeId u, NodeId v) const {
    return u != v && Reaches(u, v);
  }

  /// True iff u and v are incomparable (neither reaches the other).
  bool Concurrent(NodeId u, NodeId v) const {
    return !Reaches(u, v) && !Reaches(v, u);
  }

  int NumNodes() const { return num_nodes_; }

 private:
  int num_nodes_ = 0;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> words_;  ///< num_nodes_ rows of words_per_row_ words
};

}  // namespace dislock

#endif  // DISLOCK_GRAPH_REACHABILITY_H_
