#ifndef DISLOCK_GRAPH_CSR_H_
#define DISLOCK_GRAPH_CSR_H_

#include <cstdint>

#include "graph/digraph.h"
#include "util/arena.h"
#include "util/bitset.h"

namespace dislock {

/// An immutable compressed-sparse-row digraph: two flat arrays in an arena,
/// no per-node vectors, no labels. This is the representation every flat
/// kernel of the Proposition-2 hot path runs on — a `Digraph` (pointer-heavy,
/// mutable, labeled) is lowered to a CsrGraph once per pair/cycle check and
/// the SCC / reachability / dominator / cycle kernels then touch only these
/// two cache-resident arrays.
///
/// Node ids are the same dense [0, num_nodes) as the source Digraph and the
/// per-node adjacency ORDER is preserved exactly, so any algorithm whose
/// output depends on visitation order (Tarjan component numbering, Johnson
/// cycle enumeration) produces bit-identical results on either
/// representation.
struct CsrGraph {
  int32_t num_nodes = 0;
  int32_t num_arcs = 0;
  /// offsets[u] .. offsets[u+1] delimit u's out-arcs in `targets`.
  const int32_t* offsets = nullptr;  ///< arena-owned, size num_nodes + 1
  const NodeId* targets = nullptr;   ///< arena-owned, size num_arcs

  int NumNodes() const { return num_nodes; }
  int32_t OutDegree(NodeId u) const { return offsets[u + 1] - offsets[u]; }
  const NodeId* begin(NodeId u) const { return targets + offsets[u]; }
  const NodeId* end(NodeId u) const { return targets + offsets[u + 1]; }
};

/// Lowers `g`'s out-adjacency to CSR. O(V + E), two passes, arena-only.
CsrGraph BuildCsr(const Digraph& g, Arena* arena);

/// Lowers `g`'s in-adjacency to CSR (kept in the same in-neighbor order as
/// Digraph::InNeighbors).
CsrGraph BuildReverseCsr(const Digraph& g, Arena* arena);

/// Builds a CSR graph from parallel tail/head arrays. Arc order is
/// preserved per tail (counting sort by tail, stable). Used by the flat
/// B_c cycle-graph kernel, which generates arcs directly into arena arrays
/// with dense remapped node ids instead of materializing a Digraph.
CsrGraph BuildCsrFromArcs(int num_nodes, const NodeId* tails,
                          const NodeId* heads, int32_t num_arcs,
                          Arena* arena);

/// Strongly connected components on CSR: iterative Tarjan over flat arrays
/// (explicit frame stack, no recursion, no per-node std::vector). The
/// component numbering is byte-identical to
/// graph/scc.h::StronglyConnectedComponents — reverse topological order of
/// the condensation — because the traversal order is identical.
struct FlatScc {
  int num_components = 0;
  /// component[v] = SCC index of v; arena-owned, size num_nodes.
  const int32_t* component = nullptr;
};

FlatScc SccOnCsr(const CsrGraph& g, Arena* arena);

/// Tarjan restricted to the subgraph induced by nodes >= min_node with
/// self-arcs dropped — the per-start subgraph of Johnson's cycle
/// enumeration, computed in place of materializing a sub-Digraph. Nodes
/// < min_node come back as isolated singleton components.
FlatScc SccOnCsrMasked(const CsrGraph& g, NodeId min_node, Arena* arena);

/// True iff `g` is strongly connected; graphs with 0 or 1 nodes count as
/// strongly connected (the Theorem 1 convention of graph/scc.h).
bool StronglyConnectedOnCsr(const CsrGraph& g, Arena* scratch);

/// SCC member lists, grouped: members of component c are
/// nodes[offsets[c] .. offsets[c+1]), in ascending node id (counting sort).
struct FlatSccMembers {
  const int32_t* offsets = nullptr;  ///< size num_components + 1
  const NodeId* nodes = nullptr;     ///< size num_nodes
};

FlatSccMembers GroupSccMembers(const FlatScc& scc, int num_nodes,
                               Arena* arena);

/// The condensation's IN-adjacency (predecessor components), deduplicated:
/// result.begin(c)/end(c) are the distinct components with an arc into c.
/// This is the only direction the dominator machinery consults.
CsrGraph CondensationInArcsOnCsr(const CsrGraph& g, const FlatScc& scc,
                                 Arena* arena);

/// Reflexive-transitive closure of `g` as flat bitset rows: row u is
/// rows[u * bits::WordsForBits(n)], one bit per node. Works on any digraph
/// (cyclic included) by closing over the condensation in reverse
/// topological order with word-parallel ORs — the flat replacement for
/// graph/reachability.cc's per-query BFS fallback. `rows` must hold
/// n * WordsForBits(n) words and be ZERO-INITIALIZED by the caller; the
/// function only ever ORs bits in (both call sites allocate zeroed
/// storage, so requiring it avoids a second zeroing pass here).
void ReachabilityWordsOnCsr(const CsrGraph& g, uint64_t* rows,
                            Arena* scratch);

/// True iff `g` has a directed cycle (self-loops count). Kahn peeling on
/// flat arrays — the kernel under every condition-(b) B_c check.
bool HasCycleOnCsr(const CsrGraph& g, Arena* scratch);

}  // namespace dislock

#endif  // DISLOCK_GRAPH_CSR_H_
