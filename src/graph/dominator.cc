#include "graph/dominator.h"

#include <algorithm>

#include "graph/csr.h"
#include "graph/scc.h"
#include "util/arena.h"

namespace dislock {

bool IsDominator(const Digraph& g, const std::vector<NodeId>& candidate) {
  const int n = g.NumNodes();
  if (candidate.empty() || static_cast<int>(candidate.size()) >= n) {
    return false;
  }
  std::vector<bool> in_x(n, false);
  for (NodeId v : candidate) {
    if (!g.ValidNode(v) || in_x[v]) return false;  // invalid or duplicate
    in_x[v] = true;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (in_x[u]) continue;
    for (NodeId v : g.OutNeighbors(u)) {
      if (in_x[v]) return false;  // incoming arc from V - X
    }
  }
  return true;
}

Result<std::vector<NodeId>> FindDominator(const Digraph& g) {
  if (g.NumNodes() < 2) {
    return Status::NotFound("graph has < 2 nodes; no dominator");
  }
  SccResult scc = StronglyConnectedComponents(g);
  if (scc.num_components == 1) {
    return Status::NotFound("graph is strongly connected; no dominator");
  }
  Digraph cond = Condensation(g, scc);
  for (int c = 0; c < scc.num_components; ++c) {
    if (cond.InNeighbors(c).empty()) {
      std::vector<NodeId> x = scc.members[c];
      std::sort(x.begin(), x.end());
      return x;
    }
  }
  return Status::Internal("condensation DAG has no source component");
}

namespace {

/// Recursively enumerates predecessor-closed SCC subsets. Components are
/// processed in topological order of the condensation so that a component's
/// predecessors are decided before it.
void EnumerateClosedSets(const Digraph& cond,
                         const std::vector<int>& topo_order,
                         const SccResult& scc, size_t pos,
                         std::vector<bool>* chosen, int num_chosen,
                         int64_t max_count,
                         std::vector<std::vector<NodeId>>* out) {
  if (static_cast<int64_t>(out->size()) >= max_count) return;
  if (pos == topo_order.size()) {
    if (num_chosen == 0 || num_chosen == static_cast<int>(topo_order.size())) {
      return;  // must be nonempty and proper
    }
    std::vector<NodeId> x;
    for (int c = 0; c < static_cast<int>(chosen->size()); ++c) {
      if ((*chosen)[c]) {
        x.insert(x.end(), scc.members[c].begin(), scc.members[c].end());
      }
    }
    std::sort(x.begin(), x.end());
    out->push_back(std::move(x));
    return;
  }
  int c = topo_order[pos];
  // Option 1: exclude c.
  EnumerateClosedSets(cond, topo_order, scc, pos + 1, chosen, num_chosen,
                      max_count, out);
  // Option 2: include c, allowed only if every predecessor is included.
  bool can_include = true;
  for (NodeId p : cond.InNeighbors(c)) {
    if (!(*chosen)[p]) {
      can_include = false;
      break;
    }
  }
  if (can_include) {
    (*chosen)[c] = true;
    EnumerateClosedSets(cond, topo_order, scc, pos + 1, chosen, num_chosen + 1,
                        max_count, out);
    (*chosen)[c] = false;
  }
}

}  // namespace

std::vector<std::vector<NodeId>> AllDominators(const Digraph& g,
                                               int64_t max_count) {
  std::vector<std::vector<NodeId>> out;
  if (g.NumNodes() < 2 || max_count <= 0) return out;
  SccResult scc = StronglyConnectedComponents(g);
  if (scc.num_components == 1) return out;
  Digraph cond = Condensation(g, scc);
  // Tarjan numbers components in reverse topological order: arcs go from
  // higher ids to lower ids. Topological order = descending component id.
  std::vector<int> topo_order(scc.num_components);
  for (int i = 0; i < scc.num_components; ++i) {
    topo_order[i] = scc.num_components - 1 - i;
  }
  std::vector<bool> chosen(scc.num_components, false);
  EnumerateClosedSets(cond, topo_order, scc, 0, &chosen, 0, max_count, &out);
  return out;
}

Result<std::vector<NodeId>> FindDominatorFlat(const Digraph& g) {
  if (g.NumNodes() < 2) {
    return Status::NotFound("graph has < 2 nodes; no dominator");
  }
  Arena* arena = ScratchArena();
  ArenaScope scope(arena);
  CsrGraph csr = BuildCsr(g, arena);
  FlatScc scc = SccOnCsr(csr, arena);
  if (scc.num_components == 1) {
    return Status::NotFound("graph is strongly connected; no dominator");
  }
  FlatSccMembers members = GroupSccMembers(scc, g.NumNodes(), arena);
  CsrGraph cond_in = CondensationInArcsOnCsr(csr, scc, arena);
  for (int32_t c = 0; c < scc.num_components; ++c) {
    if (cond_in.OutDegree(c) == 0) {  // cond_in stores IN-neighbors: a
                                      // component with none is a source
      // Members come back in ascending node id from the counting sort —
      // already the sorted order the legacy path produces.
      return std::vector<NodeId>(members.nodes + members.offsets[c],
                                 members.nodes + members.offsets[c + 1]);
    }
  }
  return Status::Internal("condensation DAG has no source component");
}

namespace {

/// Flat mirror of EnumerateClosedSets: identical recursion (exclude first,
/// then include if every predecessor is chosen; components visited in
/// descending id = topological order), so the emitted dominator sequence is
/// byte-identical to the legacy enumeration.
struct FlatEnumCtx {
  const CsrGraph* cond_in;  ///< condensation IN-adjacency
  FlatSccMembers members;
  int num_components;
  uint8_t* chosen;
  int64_t max_count;
  std::vector<std::vector<NodeId>>* out;
};

void EnumerateClosedSetsFlat(FlatEnumCtx& ctx, int pos, int num_chosen) {
  if (static_cast<int64_t>(ctx.out->size()) >= ctx.max_count) return;
  const int kC = ctx.num_components;
  if (pos == kC) {
    if (num_chosen == 0 || num_chosen == kC) return;  // nonempty and proper
    std::vector<NodeId> x;
    for (int c = 0; c < kC; ++c) {
      if (ctx.chosen[c]) {
        x.insert(x.end(), ctx.members.nodes + ctx.members.offsets[c],
                 ctx.members.nodes + ctx.members.offsets[c + 1]);
      }
    }
    std::sort(x.begin(), x.end());
    ctx.out->push_back(std::move(x));
    return;
  }
  const int c = kC - 1 - pos;  // descending id = topological order
  EnumerateClosedSetsFlat(ctx, pos + 1, num_chosen);
  bool can_include = true;
  for (const NodeId* p = ctx.cond_in->begin(c); p != ctx.cond_in->end(c);
       ++p) {
    if (!ctx.chosen[*p]) {
      can_include = false;
      break;
    }
  }
  if (can_include) {
    ctx.chosen[c] = 1;
    EnumerateClosedSetsFlat(ctx, pos + 1, num_chosen + 1);
    ctx.chosen[c] = 0;
  }
}

}  // namespace

std::vector<std::vector<NodeId>> AllDominatorsFlat(const Digraph& g,
                                                   int64_t max_count) {
  std::vector<std::vector<NodeId>> out;
  if (g.NumNodes() < 2 || max_count <= 0) return out;
  Arena* arena = ScratchArena();
  ArenaScope scope(arena);
  CsrGraph csr = BuildCsr(g, arena);
  FlatScc scc = SccOnCsr(csr, arena);
  if (scc.num_components == 1) return out;
  FlatEnumCtx ctx;
  CsrGraph cond_in = CondensationInArcsOnCsr(csr, scc, arena);
  ctx.cond_in = &cond_in;
  ctx.members = GroupSccMembers(scc, g.NumNodes(), arena);
  ctx.num_components = scc.num_components;
  ctx.chosen =
      arena->AllocateZeroed<uint8_t>(static_cast<size_t>(scc.num_components));
  ctx.max_count = max_count;
  ctx.out = &out;
  EnumerateClosedSetsFlat(ctx, 0, 0);
  return out;
}

}  // namespace dislock
