#include "analysis/passes.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// DL001: a transaction is two-phase iff no unlock precedes a lock in its
/// partial order. Non-2PL is not a defect in this model — the paper exists
/// because safe non-2PL systems do — so the finding is a note that the
/// pair/system analyses must carry the safety argument.
class TwoPhasePass : public AnalysisPass {
 public:
  const char* name() const override { return "two-phase"; }
  const char* description() const override {
    return "reports transactions that are not two-phase (DL001)";
  }

  void Run(AnalysisContext* ctx, std::vector<Diagnostic>* out) override {
    const TransactionSystem& system = ctx->system();
    for (int i = 0; i < system.NumTransactions(); ++i) {
      const Transaction& txn = system.txn(i);
      // First (unlock, lock) witness in step order.
      for (StepId u = 0; u < txn.NumSteps(); ++u) {
        if (txn.GetStep(u).kind != StepKind::kUnlock) continue;
        for (StepId l = 0; l < txn.NumSteps(); ++l) {
          if (txn.GetStep(l).kind != StepKind::kLock) continue;
          if (!txn.Precedes(u, l)) continue;
          Diagnostic d;
          d.severity = DiagSeverity::kNote;
          d.rule = "DL001";
          d.location.txn = i;
          d.location.step = l;
          d.location.entity = txn.GetStep(l).entity;
          d.message = StrCat(
              "transaction ", txn.name(), " is not two-phase: ",
              txn.StepString(u), "#", u, " precedes ", txn.StepString(l),
              "#", l);
          d.fix_hint = StrCat(
              "two-phase transactions are always safe; move ",
              txn.StepString(l), " before the first unlock, or rely on the "
              "pair-safety analysis");
          out->push_back(std::move(d));
          goto next_txn;  // one witness per transaction is enough
        }
      }
    next_txn:;
    }
  }
};

}  // namespace

std::unique_ptr<AnalysisPass> MakeTwoPhasePass() {
  return std::make_unique<TwoPhasePass>();
}

}  // namespace dislock
