#include "analysis/passes.h"
#include "core/protocols.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// DL203/DL204: Section 6 protocol conformance.
///
/// DL203 checks each transaction against the tree protocol of [12] over
/// the entity forest the system itself implies (InferEntityForest): when
/// transactions nest their lock sections, the nesting pattern is the
/// intended hierarchy, and a transaction that breaks it forfeits the
/// protocol's safety guarantee. Trivial (all-roots) forests are skipped —
/// without nesting there is no hierarchy to conform to.
///
/// DL204 flags centralized-image divergence: an unlock and a later lock
/// left unordered, so some linearizations of the transaction are two-phase
/// and others are not. The distributed transaction then sits between two
/// different centralized policies (Section 6 reduces correctness to the
/// centralized image — the union of all linearizations). Transactions with
/// a FORCED unlock-before-lock are DL001's territory and skipped here.
class ProtocolsPass : public AnalysisPass {
 public:
  const char* name() const override { return "protocols"; }
  const char* description() const override {
    return "tree-protocol conformance and centralized-image divergence "
           "(DL203/DL204)";
  }

  void Run(AnalysisContext* ctx, std::vector<Diagnostic>* out) override {
    const TransactionSystem& system = ctx->system();
    EmitTreeProtocol(system, out);
    EmitImageDivergence(system, out);
  }

 private:
  static void EmitTreeProtocol(const TransactionSystem& system,
                               std::vector<Diagnostic>* out) {
    EntityForest forest = InferEntityForest(system);
    std::string rendered;
    for (EntityId e = 0; e < static_cast<EntityId>(forest.parent.size());
         ++e) {
      if (forest.parent[e] == kInvalidEntity) continue;
      if (!rendered.empty()) rendered += ", ";
      rendered += StrCat("'", system.db().NameOf(e), "' under '",
                         system.db().NameOf(forest.parent[e]), "'");
    }
    if (rendered.empty()) return;  // trivial forest: nothing to conform to
    for (int i = 0; i < system.NumTransactions(); ++i) {
      Status st = CheckTreeProtocol(system.txn(i), forest);
      if (st.ok()) continue;
      Diagnostic d;
      d.severity = DiagSeverity::kNote;
      d.rule = "DL203";
      d.location.txn = i;
      d.message = StrCat(
          "against the inferred entity forest (", rendered, "): ",
          st.message());
      d.fix_hint =
          "lock entities only while holding their parents (tree protocol "
          "of [12]), or keep the transaction two-phase";
      out->push_back(std::move(d));
    }
  }

  static void EmitImageDivergence(const TransactionSystem& system,
                                  std::vector<Diagnostic>* out) {
    for (int i = 0; i < system.NumTransactions(); ++i) {
      const Transaction& txn = system.txn(i);
      // A forced unlock-before-lock means the whole image is non-2PL:
      // DL001 reports that; divergence needs the orders to disagree.
      bool forced = false;
      for (StepId u = 0; u < txn.NumSteps() && !forced; ++u) {
        if (txn.GetStep(u).kind != StepKind::kUnlock) continue;
        for (StepId l = 0; l < txn.NumSteps(); ++l) {
          if (txn.GetStep(l).kind != StepKind::kLock) continue;
          if (txn.Precedes(u, l)) {
            forced = true;
            break;
          }
        }
      }
      if (forced) continue;
      for (StepId u = 0; u < txn.NumSteps(); ++u) {
        if (txn.GetStep(u).kind != StepKind::kUnlock) continue;
        bool found = false;
        for (StepId l = 0; l < txn.NumSteps(); ++l) {
          if (txn.GetStep(l).kind != StepKind::kLock) continue;
          if (!txn.Concurrent(u, l)) continue;
          Diagnostic d;
          d.severity = DiagSeverity::kNote;
          d.rule = "DL204";
          d.location.txn = i;
          d.location.step = l;
          d.location.entity = txn.GetStep(l).entity;
          d.message = StrCat(
              "centralized image of ", txn.name(), " diverges: ",
              txn.StepString(u), "#", u, " and ", txn.StepString(l), "#", l,
              " are unordered, so some linearizations are two-phase and "
              "others are not (Section 6)");
          d.fix_hint = StrCat(
              "add `edge ", l, " ", u, "` to order ", txn.StepString(l),
              " before ", txn.StepString(u),
              " and keep every linearization two-phase");
          out->push_back(std::move(d));
          found = true;
          break;  // one witness per transaction is enough
        }
        if (found) break;
      }
    }
  }
};

}  // namespace

std::unique_ptr<AnalysisPass> MakeProtocolsPass() {
  return std::make_unique<ProtocolsPass>();
}

}  // namespace dislock
