#ifndef DISLOCK_ANALYSIS_PASSES_H_
#define DISLOCK_ANALYSIS_PASSES_H_

#include <memory>

#include "analysis/pass.h"

namespace dislock {

/// The built-in pipeline, in default run order:
///   * "two-phase"     — DL001: per-transaction 2PL violations;
///   * "pair-safety"   — DL002-DL005: the paper's pairwise decision
///                       procedure with certificates;
///   * "system-safety" — DL006-DL008: Proposition 2 on >= 3 transactions;
///   * "lints"         — DL101-DL103: redundant locks, unlock-before-use,
///                       lock acquisition order;
///   * "deadlock"      — DL201/DL202/DL205/DL206: the reachable-state
///                       deadlock search (witness certificates) plus the
///                       opposing-lock-order precondition;
///   * "protocols"     — DL203/DL204: tree-protocol conformance against the
///                       inferred entity forest and Section 6
///                       centralized-image divergence.
std::unique_ptr<AnalysisPass> MakeTwoPhasePass();
std::unique_ptr<AnalysisPass> MakePairSafetyPass();
std::unique_ptr<AnalysisPass> MakeSystemSafetyPass();
std::unique_ptr<AnalysisPass> MakeLintPass();
std::unique_ptr<AnalysisPass> MakeDeadlockPass();
std::unique_ptr<AnalysisPass> MakeProtocolsPass();

/// Registers the six built-in passes. Called automatically on first
/// registry use; idempotence is the caller's concern (the registry CHECKs
/// duplicate names).
void RegisterBuiltinAnalysisPasses();

}  // namespace dislock

#endif  // DISLOCK_ANALYSIS_PASSES_H_
