#ifndef DISLOCK_ANALYSIS_PASS_H_
#define DISLOCK_ANALYSIS_PASS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostic.h"
#include "core/deadlock.h"
#include "core/decision/context.h"
#include "core/multi.h"
#include "core/safety.h"
#include "txn/catalog.h"
#include "txn/system.h"
#include "util/status.h"

namespace dislock {

/// Tuning for a PassManager run. Historically a struct of its own wrapping
/// a nested SafetyOptions (`.safety`) plus cycle/thread/cache knobs
/// (`.verdict_cache`); all of it is now the one flat EngineConfig
/// (core/decision/config.h), so a single config flows unchanged from a tool
/// flag down into every pipeline stage.
using AnalysisOptions = EngineConfig;

/// Shared state handed to every pass: the system under analysis, the
/// EngineContext owning the run's thread pool / verdict cache /
/// cancellation token, and memoized results of the expensive decision
/// procedures, so that e.g. the pair-safety pass and the system-safety pass
/// never re-run AnalyzePairSafety on the same pair.
class AnalysisContext {
 public:
  AnalysisContext(const TransactionSystem& system,
                  const AnalysisOptions& options)
      : system_(system), engine_(options) {}

  const TransactionSystem& system() const { return system_; }
  const DistributedDatabase& db() const { return system_.db(); }
  const AnalysisOptions& options() const { return engine_.config(); }
  EngineContext* engine() { return &engine_; }

  /// The (cached) AnalyzePairSafety report for the unordered pair {i, j}.
  const PairSafetyReport& PairReport(int i, int j);

  /// The (cached) Proposition 2 report for the whole system.
  const MultiSafetyReport& MultiReport();

  /// The (cached) reachable-state deadlock search, bounded by the config's
  /// max_deadlock_states (ResourceExhausted beyond). Traced under
  /// "deadlock.search".
  const Result<DeadlockReport>& Deadlock();

  /// Sum of the DecisionPipeline statistics over every memoized analysis
  /// (each distinct pair report, plus the multi report's aggregate).
  PipelineStats PipelineTotals() const;

 private:
  const TransactionSystem& system_;
  EngineContext engine_;
  std::map<std::pair<int, int>, PairSafetyReport> pair_cache_;
  std::optional<MultiSafetyReport> multi_cache_;
  std::optional<Result<DeadlockReport>> deadlock_cache_;
};

/// One analysis pass: inspects the system through the context and appends
/// diagnostics. Passes must be deterministic and must not mutate the
/// system; the pass manager owns the run order.
class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;
  /// Stable identifier used for registration and --passes selection.
  virtual const char* name() const = 0;
  virtual const char* description() const = 0;
  virtual void Run(AnalysisContext* ctx, std::vector<Diagnostic>* out) = 0;
};

using AnalysisPassFactory = std::unique_ptr<AnalysisPass> (*)();

/// Registers a pass factory under a unique name. The built-in passes
/// self-register on first registry use; library users can add their own.
void RegisterAnalysisPass(const std::string& name,
                          AnalysisPassFactory factory);

/// Names of all registered passes, in registration order (which is the
/// default pipeline order).
std::vector<std::string> RegisteredAnalysisPasses();

/// Instantiates a registered pass; NotFound for unknown names.
Result<std::unique_ptr<AnalysisPass>> MakeAnalysisPass(
    const std::string& name);

/// Runs a configurable pipeline of passes over a system.
class PassManager {
 public:
  /// Appends a registered pass to the pipeline; NotFound if unknown.
  Status Add(const std::string& pass_name);

  /// Appends every registered pass, in registration order.
  void AddAllPasses();

  /// Names of the passes in the pipeline, in run order.
  std::vector<std::string> PipelineNames() const;

  /// Runs the pipeline. Diagnostics appear in pass order, and within one
  /// pass in the order the pass emitted them.
  AnalysisResult Run(const TransactionSystem& system,
                     const AnalysisOptions& options = {}) const;

  /// As above, over a catalog snapshot (txn/catalog.h): the snapshot is
  /// materialized in dense order for the duration of the run, so the
  /// transaction indices in the diagnostics are snapshot indices.
  AnalysisResult Run(const CatalogSnapshot& snapshot,
                     const AnalysisOptions& options = {}) const;

 private:
  std::vector<std::unique_ptr<AnalysisPass>> passes_;
};

}  // namespace dislock

#endif  // DISLOCK_ANALYSIS_PASS_H_
