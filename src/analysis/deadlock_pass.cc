#include "analysis/passes.h"
#include "core/deadlock.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// DL201/DL202/DL205/DL206: the operational companion of the safety rules.
/// The exhaustive reachable-state search (AnalysisContext::Deadlock, bounded
/// by max_deadlock_states) either proves deadlock freedom (DL205), proves a
/// reachable deadlock and attaches the replayable witness (DL201), or runs
/// out of budget (DL206). DL202 flags the hold-and-wait precondition —
/// opposing lock-acquisition orders on a pair of common entities — whenever
/// deadlock freedom was NOT proven.
class DeadlockPass : public AnalysisPass {
 public:
  const char* name() const override { return "deadlock"; }
  const char* description() const override {
    return "reachable-state deadlock search with witness certificates "
           "(DL201/DL202/DL205/DL206)";
  }

  void Run(AnalysisContext* ctx, std::vector<Diagnostic>* out) override {
    const TransactionSystem& system = ctx->system();
    const Result<DeadlockReport>& dl = ctx->Deadlock();
    if (!dl.ok()) {
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.rule = "DL206";
      d.message = StrCat("deadlock search undecided: ", dl.status().message());
      d.fix_hint =
          "raise max_deadlock_states to let the reachable-state search "
          "finish";
      out->push_back(std::move(d));
      EmitOpposingOrders(system, out);
      return;
    }
    if (!dl->deadlock_free) {
      DeadlockCertificate cert = MakeDeadlockCertificate(*dl);
      Diagnostic d;
      d.severity = DiagSeverity::kError;
      d.rule = "DL201";
      d.location.txn = cert.blocked_txns.empty() ? -1 : cert.blocked_txns[0];
      if (cert.blocked_txns.size() > 1) {
        d.location.other_txn = cert.blocked_txns[1];
      }
      if (!cert.waited_entities.empty()) {
        d.location.entity = cert.waited_entities[0];
      }
      std::string waits;
      for (size_t i = 0; i < cert.blocked_txns.size(); ++i) {
        if (i > 0) waits += " and ";
        waits += StrCat(system.txn(cert.blocked_txns[i]).name(),
                        " waits for '",
                        system.db().NameOf(cert.waited_entities[i]), "'");
      }
      d.message = StrCat("deadlock is reachable: after the legal prefix \"",
                         cert.prefix.ToString(system), "\", ", waits);
      d.fix_hint =
          "impose one global lock-acquisition order across transactions "
          "(see DL103), or run `dislock fix` for a verified repair";
      d.deadlock_certificate = std::move(cert);
      out->push_back(std::move(d));
      EmitOpposingOrders(system, out);
      return;
    }
    Diagnostic d;
    d.severity = DiagSeverity::kNote;
    d.rule = "DL205";
    d.message = StrCat("the system is deadlock-free: every one of its ",
                       dl->states_explored,
                       " reachable states has an enabled step");
    out->push_back(std::move(d));
  }

 private:
  /// DL202 per unordered pair with a potentially opposing acquisition
  /// order. Only called when deadlock freedom is unproven: against a proof
  /// the precondition is noise.
  static void EmitOpposingOrders(const TransactionSystem& system,
                                 std::vector<Diagnostic>* out) {
    for (int i = 0; i < system.NumTransactions(); ++i) {
      for (int j = i + 1; j < system.NumTransactions(); ++j) {
        std::optional<OpposingLockOrder> opp =
            FindOpposingLockOrder(system.txn(i), system.txn(j));
        if (!opp.has_value()) continue;
        Diagnostic d;
        d.severity = DiagSeverity::kWarning;
        d.rule = "DL202";
        d.location.txn = i;
        d.location.other_txn = j;
        d.location.entity = opp->x;
        d.message = StrCat(
            "transactions ", system.txn(i).name(), " and ",
            system.txn(j).name(), " can acquire the locks on '",
            system.db().NameOf(opp->x), "' and '",
            system.db().NameOf(opp->y),
            "' in opposite orders (hold-and-wait precondition)");
        d.fix_hint = StrCat(
            "order L", system.db().NameOf(opp->x), " and L",
            system.db().NameOf(opp->y),
            " the same way in both transactions");
        out->push_back(std::move(d));
      }
    }
  }
};

}  // namespace

std::unique_ptr<AnalysisPass> MakeDeadlockPass() {
  return std::make_unique<DeadlockPass>();
}

}  // namespace dislock
