#ifndef DISLOCK_ANALYSIS_ANALYZER_H_
#define DISLOCK_ANALYSIS_ANALYZER_H_

#include "analysis/diagnostic.h"
#include "analysis/emit.h"
#include "analysis/pass.h"
#include "analysis/passes.h"
#include "core/incremental/session.h"
#include "txn/system.h"
#include "util/status.h"

namespace dislock {

/// Runs every registered pass over `system` with default pipeline order.
/// Equivalent to PassManager{AddAllPasses()}.Run(system, options).
AnalysisResult AnalyzeSystem(const TransactionSystem& system,
                             const AnalysisOptions& options = {});

/// As above, over a catalog snapshot (materialized in dense order).
AnalysisResult AnalyzeSystem(const CatalogSnapshot& snapshot,
                             const AnalysisOptions& options = {});

/// Differential audit of an analysis result against the decision
/// procedures it summarizes — the cross-check dislock_stress runs after
/// every trial. Verifies that:
///   * every attached certificate independently re-verifies against its
///     pair (legal + non-serializable schedule, orders are extensions);
///   * for every pair, an unsafe-pair diagnostic (DL002/DL004) is present
///     iff AnalyzePairSafety says unsafe, a safe-pair note (DL003) iff
///     safe, and an undecided warning (DL005) iff unknown;
///   * unsafe diagnostics carry a certificate.
/// Returns Internal with a description on the first disagreement.
Status AuditAnalysis(const TransactionSystem& system,
                     const AnalysisResult& result,
                     const AnalysisOptions& options = {});

/// The analyzer hook for `dislock session`'s `analyze` command: runs every
/// registered pass over the snapshot and renders the diagnostics (text or
/// JSON per the session's mode). Stats are suppressed for the nested run —
/// the session owns its sink and exports its own counters once at the end.
SessionAnalyzeFn MakeSessionAnalyzer();

}  // namespace dislock

#endif  // DISLOCK_ANALYSIS_ANALYZER_H_
