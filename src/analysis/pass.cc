#include "analysis/pass.h"

#include <algorithm>

#include "analysis/emit.h"
#include "analysis/passes.h"
#include "core/stats_export.h"
#include "core/wire_keys.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dislock {

const PairSafetyReport& AnalysisContext::PairReport(int i, int j) {
  DISLOCK_CHECK(i != j);
  if (i > j) std::swap(i, j);
  auto it = pair_cache_.find({i, j});
  if (it == pair_cache_.end()) {
    it = pair_cache_
             .emplace(std::make_pair(i, j),
                      AnalyzePairSafety(system_.txn(i), system_.txn(j),
                                        &engine_))
             .first;
  }
  return it->second;
}

const MultiSafetyReport& AnalysisContext::MultiReport() {
  if (!multi_cache_.has_value()) {
    multi_cache_ = AnalyzeMultiSafety(system_, &engine_);
  }
  return *multi_cache_;
}

const Result<DeadlockReport>& AnalysisContext::Deadlock() {
  if (!deadlock_cache_.has_value()) {
    obs::TraceSpan span(engine_.config().trace, wire::kSpanDeadlock);
    deadlock_cache_ = AnalyzeDeadlockFreedom(
        system_, engine_.config().max_deadlock_states);
  }
  return *deadlock_cache_;
}

PipelineStats AnalysisContext::PipelineTotals() const {
  PipelineStats totals;
  for (const auto& [pair, report] : pair_cache_) {
    totals.Add(report.pipeline);
  }
  if (multi_cache_.has_value()) totals.Add(multi_cache_->pipeline);
  return totals;
}

namespace {

struct RegistryEntry {
  std::string name;
  AnalysisPassFactory factory;
};

std::vector<RegistryEntry>& Registry() {
  static std::vector<RegistryEntry>* registry =
      new std::vector<RegistryEntry>();
  return *registry;
}

// Built-in passes register lazily, on first registry access, so that no
// static-initialization-order or archive-linking tricks are needed.
void EnsureBuiltinsRegistered() {
  static const bool done = [] {
    RegisterBuiltinAnalysisPasses();
    return true;
  }();
  (void)done;
}

}  // namespace

void RegisterAnalysisPass(const std::string& name,
                          AnalysisPassFactory factory) {
  DISLOCK_CHECK(factory != nullptr);
  for (const RegistryEntry& entry : Registry()) {
    DISLOCK_CHECK(entry.name != name);
  }
  Registry().push_back({name, factory});
}

std::vector<std::string> RegisteredAnalysisPasses() {
  EnsureBuiltinsRegistered();
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const RegistryEntry& entry : Registry()) names.push_back(entry.name);
  return names;
}

Result<std::unique_ptr<AnalysisPass>> MakeAnalysisPass(
    const std::string& name) {
  EnsureBuiltinsRegistered();
  for (const RegistryEntry& entry : Registry()) {
    if (entry.name == name) return entry.factory();
  }
  return Status::NotFound(StrCat("no analysis pass named '", name, "'"));
}

Status PassManager::Add(const std::string& pass_name) {
  DISLOCK_ASSIGN_OR_RETURN(std::unique_ptr<AnalysisPass> pass,
                           MakeAnalysisPass(pass_name));
  passes_.push_back(std::move(pass));
  return Status::OK();
}

void PassManager::AddAllPasses() {
  for (const std::string& name : RegisteredAnalysisPasses()) {
    Status st = Add(name);
    DISLOCK_CHECK(st.ok());
  }
}

std::vector<std::string> PassManager::PipelineNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.emplace_back(pass->name());
  return names;
}

AnalysisResult PassManager::Run(const TransactionSystem& system,
                                const AnalysisOptions& options) const {
  AnalysisContext ctx(system, options);
  AnalysisResult result;
  for (const auto& pass : passes_) {
    obs::TraceSpan span(options.trace, wire::kSpanPass);
    pass->Run(&ctx, &result.diagnostics);
    result.passes_run.emplace_back(pass->name());
  }
  result.pipeline = ctx.PipelineTotals();
  // The run owner exports once: aggregate counters plus, when the run had
  // a verdict cache, its hit/miss stats.
  ExportAnalysisResultStats(result, options.stats);
  if (options.stats != nullptr &&
      (options.cache != nullptr || options.enable_cache ||
       options.store != nullptr)) {
    ExportCacheStats(*ctx.engine()->cache(), options.stats);
  }
  return result;
}

AnalysisResult PassManager::Run(const CatalogSnapshot& snapshot,
                                const AnalysisOptions& options) const {
  TransactionSystem system = snapshot.Materialize();
  return Run(system, options);
}

}  // namespace dislock
