#include "analysis/analyzer.h"

#include "txn/schedule.h"
#include "util/string_util.h"

namespace dislock {

AnalysisResult AnalyzeSystem(const TransactionSystem& system,
                             const AnalysisOptions& options) {
  PassManager manager;
  manager.AddAllPasses();
  return manager.Run(system, options);
}

AnalysisResult AnalyzeSystem(const CatalogSnapshot& snapshot,
                             const AnalysisOptions& options) {
  PassManager manager;
  manager.AddAllPasses();
  return manager.Run(snapshot, options);
}

namespace {

bool IsPairRule(const std::string& rule) {
  return rule == "DL002" || rule == "DL003" || rule == "DL004" ||
         rule == "DL005";
}

}  // namespace

SessionAnalyzeFn MakeSessionAnalyzer() {
  return [](const CatalogSnapshot& snapshot, const EngineConfig& config,
            bool json) {
    TransactionSystem system = snapshot.Materialize();
    // The session owns the stats sink and exports once at the end of the
    // run; a nested export here would double-count the shared counters.
    EngineConfig nested = config;
    nested.stats = nullptr;
    AnalysisResult result = AnalyzeSystem(system, nested);
    return json ? DiagnosticsToJson(result, system)
                : DiagnosticsToText(result, system);
  };
}

Status AuditAnalysis(const TransactionSystem& system,
                     const AnalysisResult& result,
                     const AnalysisOptions& options) {
  // 1. Certificates must re-verify against the pair they indict.
  for (const Diagnostic& d : result.diagnostics) {
    if (d.deadlock_certificate.has_value()) {
      if (d.rule != "DL201") {
        return Status::Internal(StrCat(
            "deadlock certificate attached to non-deadlock rule ", d.rule));
      }
      Status replayed = VerifyDeadlockWitness(system, *d.deadlock_certificate);
      if (!replayed.ok()) {
        return Status::Internal(
            StrCat("deadlock witness failed re-verification: ",
                   replayed.ToString()));
      }
    }
    if (!d.certificate.has_value()) continue;
    if (d.rule != "DL002" && d.rule != "DL004") {
      return Status::Internal(
          StrCat("certificate attached to non-unsafe rule ", d.rule));
    }
    const DiagnosticLocation& loc = d.location;
    if (loc.txn < 0 || loc.other_txn < 0) {
      return Status::Internal(
          StrCat(d.rule, " diagnostic lacks a pair location"));
    }
    Status verified =
        VerifyUnsafetyCertificate(system.txn(loc.txn),
                                  system.txn(loc.other_txn), *d.certificate);
    if (!verified.ok()) {
      return Status::Internal(StrCat("certificate for pair (", loc.txn,
                                     ", ", loc.other_txn,
                                     ") failed re-verification: ",
                                     verified.ToString()));
    }
    // Independent replay: the schedule must be legal for the certificate's
    // total orders and non-serializable.
    TransactionSystem pair =
        MakePairSystem(d.certificate->t1, d.certificate->t2);
    Status legal = CheckScheduleLegal(pair, d.certificate->schedule);
    if (!legal.ok()) {
      return Status::Internal(
          StrCat("certificate schedule is illegal: ", legal.ToString()));
    }
    if (IsSerializable(pair, d.certificate->schedule)) {
      return Status::Internal("certificate schedule is serializable");
    }
  }

  // 2. Pair diagnostics must match the decision procedure, pair by pair.
  for (int i = 0; i < system.NumTransactions(); ++i) {
    for (int j = i + 1; j < system.NumTransactions(); ++j) {
      PairSafetyReport report =
          AnalyzePairSafety(system.txn(i), system.txn(j), options);
      const char* expected_rule =
          report.verdict == SafetyVerdict::kSafe     ? "DL003"
          : report.verdict == SafetyVerdict::kUnsafe ? (report.sites_spanned <= 2 ? "DL002" : "DL004")
                                                     : "DL005";
      bool found = false;
      for (const Diagnostic& d : result.diagnostics) {
        if (!IsPairRule(d.rule)) continue;
        if (d.location.txn != i || d.location.other_txn != j) continue;
        if (found) {
          return Status::Internal(
              StrCat("duplicate pair diagnostic for (", i, ", ", j, ")"));
        }
        found = true;
        if (d.rule != expected_rule) {
          return Status::Internal(
              StrCat("pair (", i, ", ", j, "): analyzer emitted ", d.rule,
                     " but the decision procedure expects ",
                     expected_rule));
        }
        if ((d.rule == std::string("DL002") ||
             d.rule == std::string("DL004")) &&
            !d.certificate.has_value()) {
          return Status::Internal(StrCat("unsafe pair (", i, ", ", j,
                                         ") reported without certificate"));
        }
      }
      if (!found) {
        return Status::Internal(
            StrCat("no pair diagnostic for (", i, ", ", j, ")"));
      }
    }
  }
  return Status::OK();
}

}  // namespace dislock
