#include "analysis/passes.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// DL006-DL008: Proposition 2 on systems of three or more transactions.
/// Pairwise failures (condition (a)) are already reported by the
/// pair-safety pass, so this pass reports the cycle condition (b) and the
/// system-level verdict.
class SystemSafetyPass : public AnalysisPass {
 public:
  const char* name() const override { return "system-safety"; }
  const char* description() const override {
    return "Proposition 2 cycle condition and whole-system verdict "
           "(DL006-DL008)";
  }

  void Run(AnalysisContext* ctx, std::vector<Diagnostic>* out) override {
    const TransactionSystem& system = ctx->system();
    if (system.NumTransactions() < 3) return;  // pairs cover everything
    const MultiSafetyReport& report = ctx->MultiReport();

    if (!report.failing_cycle.empty()) {
      Diagnostic d;
      d.severity = DiagSeverity::kError;
      d.rule = "DL006";
      d.location.txn = report.failing_cycle.front();
      std::string cycle;
      for (int t : report.failing_cycle) {
        if (!cycle.empty()) cycle += " -> ";
        cycle += system.txn(t).name();
      }
      d.message = StrCat(
          "transaction cycle ", cycle, " has an acyclic B_c: the system is "
          "UNSAFE even though the pairs along the cycle may individually "
          "be safe (Proposition 2, condition (b))");
      d.fix_hint =
          "break the cycle in the conflict graph G (stop sharing an "
          "entity along it) or extend lock sections along the cycle until "
          "B_c acquires a directed cycle";
      out->push_back(std::move(d));
      return;
    }

    Diagnostic d;
    switch (report.verdict) {
      case SafetyVerdict::kSafe:
        d.severity = DiagSeverity::kNote;
        d.rule = "DL008";
        // checked + cached = every conflicting pair: the count is the same
        // whether a verdict came from the pair procedure, the in-run memo,
        // or a warm persistent store, so this message never varies with
        // cache configuration or warmth (docs/caching.md relies on that).
        d.message = StrCat(
            "system of ", system.NumTransactions(), " transactions is "
            "safe: all ", report.pairs_checked + report.pairs_cached,
            " pairs are safe and each "
            "of the ", report.cycles_checked, " directed cycles of G has "
            "a cyclic B_c (Proposition 2)");
        break;
      case SafetyVerdict::kUnsafe:
        // Condition (a) failed; the pair-safety pass carries the error
        // with its certificate, so nothing further to report here.
        return;
      case SafetyVerdict::kUnknown:
        d.severity = DiagSeverity::kWarning;
        d.rule = "DL007";
        d.message = StrCat(
            "no system-level verdict: ",
            report.cycle_budget_exhausted
                ? StrCat("cycle enumeration exceeded its budget after ",
                         report.cycles_checked, " cycles")
                : std::string("some pair analysis was inconclusive"),
            " (Proposition 2)");
        d.fix_hint = "raise AnalysisOptions::max_cycles or the pair budgets";
        break;
    }
    out->push_back(std::move(d));
  }
};

}  // namespace

std::unique_ptr<AnalysisPass> MakeSystemSafetyPass() {
  return std::make_unique<SystemSafetyPass>();
}

}  // namespace dislock
