#include <algorithm>
#include <unordered_set>

#include "analysis/passes.h"
#include "core/conflict_graph.h"
#include "util/string_util.h"

namespace dislock {
namespace {

/// DL101-DL103: lint-grade findings. These never change a safety verdict;
/// they point at lock sections that cost concurrency (or deadlock headroom)
/// without buying anything.
class LintPass : public AnalysisPass {
 public:
  const char* name() const override { return "lints"; }
  const char* description() const override {
    return "redundant locks, unlock-before-use, lock acquisition order "
           "(DL101-DL103)";
  }

  void Run(AnalysisContext* ctx, std::vector<Diagnostic>* out) override {
    const TransactionSystem& system = ctx->system();
    for (int i = 0; i < system.NumTransactions(); ++i) {
      RedundantLocks(system, i, out);
      UnlockBeforeUse(system, i, out);
      LockOrder(system, i, out);
    }
  }

 private:
  /// DL101: an exclusive section that never updates its entity is dead
  /// weight if dropping it leaves every conflict digraph unchanged, i.e.
  /// the entity is on no D(Ti, Tj) involving this transaction. (D arcs
  /// among the remaining entities only consult their own lock/unlock
  /// steps, and restricting a partial order preserves those precedences,
  /// so removal is safe exactly when the entity is not a D node.) Shared
  /// sections are exempt: an update-free shared section is a read.
  void RedundantLocks(const TransactionSystem& system, int i,
                      std::vector<Diagnostic>* out) {
    const Transaction& txn = system.txn(i);
    for (EntityId e : txn.LockedEntities()) {
      if (!txn.UpdateSteps(e).empty()) continue;
      if (txn.IsSharedSection(e)) continue;
      bool in_some_d = false;
      for (int j = 0; j < system.NumTransactions() && !in_some_d; ++j) {
        if (j == i) continue;
        std::vector<EntityId> conflicting =
            ConflictingEntities(txn, system.txn(j));
        in_some_d = std::find(conflicting.begin(), conflicting.end(), e) !=
                    conflicting.end();
      }
      if (in_some_d) continue;
      Diagnostic d;
      d.severity = DiagSeverity::kWarning;
      d.rule = "DL101";
      d.location.txn = i;
      d.location.step = txn.LockStep(e);
      d.location.entity = e;
      d.message = StrCat(
          "transaction ", txn.name(), " locks '", system.db().NameOf(e),
          "' but never updates it, and no other transaction conflicts on "
          "it: the section is redundant (removing it changes no "
          "D(Ti,Tj))");
      d.fix_hint = StrCat("delete the L", system.db().NameOf(e), "/U",
                          system.db().NameOf(e), " pair");
      out->push_back(std::move(d));
    }
  }

  /// DL102: every update of x must be ordered strictly before Ux;
  /// otherwise some execution applies the update after the lock is
  /// released. ValidateTransaction rejects this outright, so the lint
  /// exists for systems assembled programmatically without validation.
  void UnlockBeforeUse(const TransactionSystem& system, int i,
                       std::vector<Diagnostic>* out) {
    const Transaction& txn = system.txn(i);
    for (EntityId e : txn.LockedEntities()) {
      StepId unlock = txn.UnlockStep(e);
      for (StepId update : txn.UpdateSteps(e)) {
        if (txn.Precedes(update, unlock)) continue;
        Diagnostic d;
        d.severity = DiagSeverity::kWarning;
        d.rule = "DL102";
        d.location.txn = i;
        d.location.step = update;
        d.location.entity = e;
        d.message = StrCat(
            "transaction ", txn.name(), ": update of '",
            system.db().NameOf(e), "' (step #", update,
            ") is not ordered before U", system.db().NameOf(e), "#",
            unlock, " — the unlock can come before the last use");
        d.fix_hint = StrCat("add the precedence edge ", update, " ",
                            unlock, " (update before unlock)");
        out->push_back(std::move(d));
      }
    }
  }

  /// DL103: flags lock acquisitions that disagree with the canonical
  /// (site, entity-id) order. When every transaction acquires locks in one
  /// global order no waits-for cycle can form, so a violation marks
  /// deadlock headroom given away; it is NOT an unsafety claim. One
  /// witness per transaction.
  void LockOrder(const TransactionSystem& system, int i,
                 std::vector<Diagnostic>* out) {
    const Transaction& txn = system.txn(i);
    const DistributedDatabase& db = system.db();
    std::vector<EntityId> locked = txn.LockedEntities();
    auto canon_less = [&db](EntityId a, EntityId b) {
      return std::make_pair(db.SiteOf(a), a) <
             std::make_pair(db.SiteOf(b), b);
    };
    for (EntityId a : locked) {
      for (EntityId b : locked) {
        if (!canon_less(a, b)) continue;
        // Violation: the canonically later entity is locked strictly
        // first.
        if (!txn.Precedes(txn.LockStep(b), txn.LockStep(a))) continue;
        Diagnostic d;
        d.severity = DiagSeverity::kNote;
        d.rule = "DL103";
        d.location.txn = i;
        d.location.step = txn.LockStep(b);
        d.location.entity = b;
        d.message = StrCat(
            "transaction ", txn.name(), " acquires L", db.NameOf(b),
            " (site ", db.SiteOf(b), ") before L", db.NameOf(a), " (site ",
            db.SiteOf(a), "), against the canonical (site, entity) order; "
            "a consistent acquisition order across transactions prevents "
            "distributed deadlock");
        d.fix_hint = StrCat("acquire L", db.NameOf(a), " before L",
                            db.NameOf(b),
                            " (or adopt any one global order everywhere)");
        out->push_back(std::move(d));
        return;  // one witness per transaction
      }
    }
  }
};

}  // namespace

std::unique_ptr<AnalysisPass> MakeLintPass() {
  return std::make_unique<LintPass>();
}

void RegisterBuiltinAnalysisPasses() {
  RegisterAnalysisPass("two-phase", MakeTwoPhasePass);
  RegisterAnalysisPass("pair-safety", MakePairSafetyPass);
  RegisterAnalysisPass("system-safety", MakeSystemSafetyPass);
  RegisterAnalysisPass("lints", MakeLintPass);
  RegisterAnalysisPass("deadlock", MakeDeadlockPass);
  RegisterAnalysisPass("protocols", MakeProtocolsPass);
}

}  // namespace dislock
