#include "analysis/passes.h"
#include "core/conflict_graph.h"
#include "util/string_util.h"

namespace dislock {
namespace {

std::string PairName(const TransactionSystem& system, int i, int j) {
  return StrCat("{", system.txn(i).name(), ", ", system.txn(j).name(), "}");
}

/// DL002-DL005: runs the paper's pairwise decision procedure
/// (AnalyzePairSafety) on every unordered pair and renders its verdict as
/// diagnostics. Unsafe verdicts carry the verified certificate — the
/// concrete pair of total orders plus a legal non-serializable schedule.
class PairSafetyPass : public AnalysisPass {
 public:
  const char* name() const override { return "pair-safety"; }
  const char* description() const override {
    return "per-pair safety verdicts with unsafety certificates "
           "(DL002-DL005)";
  }

  void Run(AnalysisContext* ctx, std::vector<Diagnostic>* out) override {
    const TransactionSystem& system = ctx->system();
    for (int i = 0; i < system.NumTransactions(); ++i) {
      for (int j = i + 1; j < system.NumTransactions(); ++j) {
        Emit(ctx, i, j, out);
      }
    }
  }

 private:
  void Emit(AnalysisContext* ctx, int i, int j,
            std::vector<Diagnostic>* out) {
    const TransactionSystem& system = ctx->system();
    const PairSafetyReport& report = ctx->PairReport(i, j);
    Diagnostic d;
    d.location.txn = i;
    d.location.other_txn = j;
    std::string d_text = ConflictGraphToString(report.d, ctx->db());
    switch (report.verdict) {
      case SafetyVerdict::kSafe:
        d.severity = DiagSeverity::kNote;
        d.rule = "DL003";
        if (report.method == DecisionMethod::kTheorem1) {
          d.message = StrCat(
              "pair ", PairName(system, i, j), " is safe: D(T1,T2) = [",
              d_text, "] is strongly connected (Theorem 1; holds at any "
              "number of sites)");
        } else {
          d.message = StrCat(
              "pair ", PairName(system, i, j), " is safe (method: ",
              DecisionMethodName(report.method), "): ", report.detail);
        }
        break;
      case SafetyVerdict::kUnsafe:
        d.severity = DiagSeverity::kError;
        // At <= 2 sites unsafety is the exact Theorem 2 criterion; at >= 3
        // sites it comes from a closed dominator (Corollary 2) or the
        // exhaustive Lemma 1 fallback.
        d.rule = report.sites_spanned <= 2 ? "DL002" : "DL004";
        d.message = StrCat(
            "pair ", PairName(system, i, j), " spanning ",
            report.sites_spanned, " site(s) is UNSAFE (method: ",
            DecisionMethodName(report.method), "): D(T1,T2) = [", d_text,
            "] is not strongly connected; a legal non-serializable "
            "schedule exists (certificate attached)");
        d.fix_hint = StrCat(
            "extend the lock sections so every commonly locked entity's "
            "section overlaps the others' in both transactions (making "
            "D(T1,T2) strongly connected), or make both transactions "
            "two-phase");
        d.certificate = report.certificate;
        if (d.certificate.has_value() && !d.certificate->dominator.empty()) {
          d.location.entity = d.certificate->dominator.front();
        }
        break;
      case SafetyVerdict::kUnknown:
        d.severity = DiagSeverity::kWarning;
        d.rule = "DL005";
        d.message = StrCat(
            "pair ", PairName(system, i, j), " spanning ",
            report.sites_spanned,
            " site(s) could not be decided within budget (this regime is "
            "coNP-complete, Theorem 3): ", report.detail);
        d.fix_hint =
            "raise EngineConfig budgets (max_dominators, max_sat_decisions, "
            "max_extension_pairs) or reduce the number of sites the pair "
            "spans";
        break;
    }
    out->push_back(std::move(d));
  }
};

}  // namespace

std::unique_ptr<AnalysisPass> MakePairSafetyPass() {
  return std::make_unique<PairSafetyPass>();
}

}  // namespace dislock
