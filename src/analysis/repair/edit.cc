#include "analysis/repair/edit.h"

#include <algorithm>

namespace dislock {

namespace {

/// Touched entities of `t` in the canonical (site, entity) order that
/// DL103 and the Section 7 discussion use.
std::vector<EntityId> CanonicalEntities(const Transaction& t) {
  std::vector<EntityId> entities = t.TouchedEntities();
  const DistributedDatabase& db = t.db();
  std::stable_sort(entities.begin(), entities.end(),
                   [&db](EntityId a, EntityId b) {
                     if (db.SiteOf(a) != db.SiteOf(b)) {
                       return db.SiteOf(a) < db.SiteOf(b);
                     }
                     return a < b;
                   });
  return entities;
}

/// Appends `step` to `out` and chains it after `*prev` (total order).
StepId Chain(Transaction* out, StepId* prev, StepKind kind, EntityId entity,
             bool shared) {
  StepId s = out->AddStep(kind, entity, shared);
  if (*prev != kInvalidStep) out->AddPrecedence(*prev, s);
  *prev = s;
  return s;
}

}  // namespace

const char* RepairEditKindName(RepairEditKind kind) {
  switch (kind) {
    case RepairEditKind::kWidenLock:
      return "widen-lock";
    case RepairEditKind::kReorderLocks:
      return "reorder-locks";
    case RepairEditKind::kCanonicalTwoPhase:
      return "canonical-restriction";
  }
  return "unknown";
}

std::optional<Transaction> WithPrecedence(const Transaction& t, StepId before,
                                          StepId after) {
  if (t.Precedes(before, after)) return std::nullopt;    // redundant
  if (t.PrecedesOrEqual(after, before)) return std::nullopt;  // cycle
  Transaction widened = t;
  widened.AddPrecedence(before, after);
  return widened;
}

std::optional<Transaction> WidenTwoPhase(const Transaction& t,
                                         int* arcs_added) {
  // If any unlock strictly precedes any lock, lock-before-unlock arcs
  // close a cycle and the transaction is not widenable; otherwise the
  // widened order is acyclic by exactly the same argument.
  for (EntityId a : t.LockedEntities()) {
    for (EntityId b : t.LockedEntities()) {
      if (t.Precedes(t.UnlockStep(a), t.LockStep(b))) return std::nullopt;
    }
  }
  Transaction widened = t;
  int added = 0;
  for (EntityId a : t.LockedEntities()) {
    for (EntityId b : t.LockedEntities()) {
      StepId l = t.LockStep(a);
      StepId u = t.UnlockStep(b);
      if (!t.Precedes(l, u) && l != u) {
        widened.AddPrecedence(l, u);
        ++added;
      }
    }
  }
  if (arcs_added != nullptr) *arcs_added = added;
  return widened;
}

Transaction ReorderCanonicalSections(const Transaction& t) {
  Transaction out(&t.db(), t.name());
  StepId prev = kInvalidStep;
  for (EntityId e : CanonicalEntities(t)) {
    bool locked = t.LockStep(e) != kInvalidStep &&
                  t.UnlockStep(e) != kInvalidStep;
    bool shared = t.IsSharedSection(e);
    if (locked) Chain(&out, &prev, StepKind::kLock, e, shared);
    for (size_t i = 0; i < t.UpdateSteps(e).size(); ++i) {
      Chain(&out, &prev, StepKind::kUpdate, e, false);
    }
    if (locked) Chain(&out, &prev, StepKind::kUnlock, e, shared);
  }
  return out;
}

Transaction RebuildCanonicalTwoPhase(const Transaction& t) {
  Transaction out(&t.db(), t.name());
  StepId prev = kInvalidStep;
  std::vector<EntityId> canonical = CanonicalEntities(t);
  for (EntityId e : canonical) {
    if (t.LockStep(e) != kInvalidStep && t.UnlockStep(e) != kInvalidStep) {
      Chain(&out, &prev, StepKind::kLock, e, t.IsSharedSection(e));
    }
  }
  for (EntityId e : canonical) {
    for (size_t i = 0; i < t.UpdateSteps(e).size(); ++i) {
      Chain(&out, &prev, StepKind::kUpdate, e, false);
    }
  }
  for (auto it = canonical.rbegin(); it != canonical.rend(); ++it) {
    if (t.LockStep(*it) != kInvalidStep &&
        t.UnlockStep(*it) != kInvalidStep) {
      Chain(&out, &prev, StepKind::kUnlock, *it, t.IsSharedSection(*it));
    }
  }
  return out;
}

}  // namespace dislock
