#ifndef DISLOCK_ANALYSIS_REPAIR_EDIT_H_
#define DISLOCK_ANALYSIS_REPAIR_EDIT_H_

#include <optional>
#include <string>
#include <vector>

#include "txn/transaction.h"

namespace dislock {

/// The bounded edit space of the repair engine (analysis/repair/engine.h).
/// Every edit is a transformation of one or more transactions that the
/// engine re-verifies from scratch — the builders here only promise
/// well-formedness (a validating transaction), never safety.

/// The three edit families, in increasing order of intrusiveness:
///   * kWidenLock        — add precedence arcs only (widen lock sections /
///                         complete the conflict digraph D); every original
///                         order is preserved;
///   * kReorderLocks     — rebuild the transaction as sequential per-entity
///                         lock sections in the canonical (site, entity)
///                         order (shortest hold times, Section 7's
///                         consistent-order discipline);
///   * kCanonicalTwoPhase — rebuild as a totally ordered two-phase
///                         transaction locking in canonical order and
///                         unlocking in reverse (the Section 6/7 move:
///                         restrict to a centralized-image-safe policy).
enum class RepairEditKind { kWidenLock, kReorderLocks, kCanonicalTwoPhase };

/// "widen-lock", "reorder-locks" or "canonical-restriction".
const char* RepairEditKindName(RepairEditKind kind);

/// One candidate edit, as reported to the user (the repaired system itself
/// travels separately as text).
struct RepairEdit {
  RepairEditKind kind = RepairEditKind::kWidenLock;
  /// Indices of the transactions the edit rewrites.
  std::vector<int> txns;
  std::string description;
  /// Search-ordering key: arcs added for kWidenLock, steps rebuilt for the
  /// rebuild kinds (cheaper edits are tried and reported first).
  int cost = 0;
};

/// Copy of `t` with the precedence `before` -> `after` added. nullopt when
/// the arc is redundant (already ordered) or would create a cycle.
std::optional<Transaction> WithPrecedence(const Transaction& t, StepId before,
                                          StepId after);

/// Copy of `t` with every lock step ordered before every unlock step — the
/// least widening that makes the transaction two-phase. nullopt iff `t` is
/// not widenable, i.e. some unlock strictly precedes some lock (then any
/// such arc set is cyclic); a transaction that is already two-phase yields
/// a copy with zero added arcs. `arcs_added` (optional out) receives the
/// number of new arcs.
std::optional<Transaction> WidenTwoPhase(const Transaction& t,
                                         int* arcs_added = nullptr);

/// Rebuilds `t` as a totally ordered chain of per-entity sections in the
/// canonical (site, entity) order: for each locked entity L, updates, U in
/// sequence (unlocked entities contribute their updates alone). Shared
/// sections stay shared. Lock hold times are minimal, and two such
/// transactions can never hold-and-wait.
Transaction ReorderCanonicalSections(const Transaction& t);

/// Rebuilds `t` as a totally ordered two-phase transaction: all locks in
/// canonical (site, entity) order, then all updates (per entity, original
/// order), then all unlocks in reverse canonical order. Shared sections
/// stay shared.
Transaction RebuildCanonicalTwoPhase(const Transaction& t);

}  // namespace dislock

#endif  // DISLOCK_ANALYSIS_REPAIR_EDIT_H_
