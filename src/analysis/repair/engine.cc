#include "analysis/repair/engine.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "core/deadlock.h"
#include "core/multi.h"
#include "core/wire_keys.h"
#include "obs/stats_sink.h"
#include "obs/trace.h"
#include "txn/text_format.h"
#include "util/string_util.h"

namespace dislock {

namespace {

/// One candidate: the edit plus the rewritten transactions (by index).
struct Candidate {
  RepairEdit edit;
  std::vector<std::pair<int, Transaction>> replacements;
};

/// The "complete D" widening of an unsafe pair: order Lx before Uy for
/// every ordered pair of common locked entities in BOTH transactions, so
/// every arc of the conflict digraph D(Ti,Tj) exists and Theorem 1 applies.
/// nullopt when some required arc would be cyclic.
std::optional<Candidate> MakeCompleteDCandidate(const TransactionSystem& sys,
                                                int i, int j) {
  const Transaction& ti = sys.txn(i);
  const Transaction& tj = sys.txn(j);
  std::vector<EntityId> common;
  for (EntityId e : ti.LockedEntities()) {
    if (tj.LockStep(e) != kInvalidStep && tj.UnlockStep(e) != kInvalidStep) {
      common.push_back(e);
    }
  }
  if (common.size() < 2) return std::nullopt;
  Candidate c;
  c.edit.kind = RepairEditKind::kWidenLock;
  c.edit.txns = {i, j};
  c.edit.cost = 0;
  Transaction wi = ti;
  Transaction wj = tj;
  for (Transaction* t : {&wi, &wj}) {
    for (EntityId x : common) {
      for (EntityId y : common) {
        if (x == y) continue;
        StepId l = t->LockStep(x);
        StepId u = t->UnlockStep(y);
        if (t->Precedes(l, u)) continue;
        if (t->PrecedesOrEqual(u, l)) return std::nullopt;  // cyclic
        t->AddPrecedence(l, u);
        ++c.edit.cost;
      }
    }
  }
  if (c.edit.cost == 0) return std::nullopt;  // D already complete
  c.edit.description =
      StrCat("complete the conflict digraph D(", ti.name(), ", ", tj.name(),
             ") by widening their common lock sections (", c.edit.cost,
             " precedence arc(s); Theorem 1 then proves the pair safe)");
  c.replacements = {{i, std::move(wi)}, {j, std::move(wj)}};
  return c;
}

void AddPerTxnCandidates(const TransactionSystem& sys, int i,
                         std::vector<Candidate>* out) {
  const Transaction& t = sys.txn(i);
  int arcs = 0;
  if (auto widened = WidenTwoPhase(t, &arcs); widened && arcs > 0) {
    Candidate c;
    c.edit = {RepairEditKind::kWidenLock,
              {i},
              StrCat("make ", t.name(), " two-phase by widening its lock "
                     "sections (", arcs, " precedence arc(s))"),
              arcs};
    c.replacements = {{i, std::move(*widened)}};
    out->push_back(std::move(c));
  }
  {
    Candidate c;
    c.edit = {RepairEditKind::kReorderLocks,
              {i},
              StrCat("rewrite ", t.name(), " as sequential per-entity "
                     "sections in the canonical (site, entity) order"),
              t.NumSteps()};
    c.replacements = {{i, ReorderCanonicalSections(t)}};
    out->push_back(std::move(c));
  }
  {
    Candidate c;
    c.edit = {RepairEditKind::kCanonicalTwoPhase,
              {i},
              StrCat("rewrite ", t.name(), " as a two-phase transaction "
                     "locking in the canonical (site, entity) order"),
              t.NumSteps() + 1};
    c.replacements = {{i, RebuildCanonicalTwoPhase(t)}};
    out->push_back(std::move(c));
  }
}

}  // namespace

RepairReport SynthesizeRepairs(const TransactionSystem& system,
                               const RepairOptions& options) {
  RepairReport report;
  EngineConfig cfg = options.engine;
  cfg.stats = nullptr;  // owner-exports-once: tools call ExportRepairStats

  MultiSafetyReport before = AnalyzeMultiSafety(system, cfg);
  auto dl_before = AnalyzeDeadlockFreedom(system, cfg.max_deadlock_states);
  report.safety_before = before.verdict;
  report.deadlock_undecided_before = !dl_before.ok();
  report.deadlock_free_before = dl_before.ok() && dl_before->deadlock_free;
  if (report.safety_before == SafetyVerdict::kSafe &&
      report.deadlock_free_before) {
    return report;  // nothing to repair
  }
  report.attempted = true;

  const int k = system.NumTransactions();
  std::vector<Candidate> candidates;

  // Tier 1: widen the reported unsafe pair until D is complete.
  if (before.failing_pair.has_value()) {
    auto [i, j] = *before.failing_pair;
    if (auto c = MakeCompleteDCandidate(system, i, j)) {
      candidates.push_back(std::move(*c));
    }
  }

  // Target transactions: those implicated by the safety report or by an
  // opposing lock order; everything when nothing is implicated.
  std::set<int> targets;
  if (before.failing_pair.has_value()) {
    targets.insert(before.failing_pair->first);
    targets.insert(before.failing_pair->second);
  }
  for (int t : before.failing_cycle) targets.insert(t);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (FindOpposingLockOrder(system.txn(i), system.txn(j)).has_value()) {
        targets.insert(i);
        targets.insert(j);
      }
    }
  }
  if (targets.empty()) {
    for (int i = 0; i < k; ++i) targets.insert(i);
  }
  for (int i : targets) AddPerTxnCandidates(system, i, &candidates);

  // Tier 3: rewrite every transaction at once (the global canonical
  // restriction of Sections 6-7) — expensive, so costed last.
  if (k > 1) {
    Candidate reorder;
    reorder.edit.kind = RepairEditKind::kReorderLocks;
    reorder.edit.description =
        "rewrite every transaction as sequential per-entity sections in "
        "the canonical (site, entity) order";
    reorder.edit.cost = system.TotalSteps();
    Candidate c2pl;
    c2pl.edit.kind = RepairEditKind::kCanonicalTwoPhase;
    c2pl.edit.description =
        "rewrite every transaction as two-phase in the canonical "
        "(site, entity) order";
    c2pl.edit.cost = system.TotalSteps() + 1;
    for (int i = 0; i < k; ++i) {
      reorder.edit.txns.push_back(i);
      reorder.replacements.emplace_back(
          i, ReorderCanonicalSections(system.txn(i)));
      c2pl.edit.txns.push_back(i);
      c2pl.replacements.emplace_back(
          i, RebuildCanonicalTwoPhase(system.txn(i)));
    }
    candidates.push_back(std::move(reorder));
    candidates.push_back(std::move(c2pl));
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.edit.cost < b.edit.cost;
                   });

  const std::string original_text = SystemToText(system);
  std::set<std::string> seen_texts;
  for (Candidate& c : candidates) {
    if (report.candidates_tried >= options.max_candidates) break;
    obs::TraceSpan span(cfg.trace, wire::kSpanRepairCandidate);
    TransactionSystem repaired(&system.db());
    bool built = true;
    for (int i = 0; i < k; ++i) {
      const Transaction* t = &system.txn(i);
      for (const auto& [idx, txn] : c.replacements) {
        if (idx == i) t = &txn;
      }
      if (!repaired.Add(*t).ok()) {
        built = false;
        break;
      }
    }
    if (!built || !repaired.Validate().ok()) continue;
    std::string text = SystemToText(repaired);
    if (text == original_text || seen_texts.count(text) > 0) continue;
    ++report.candidates_tried;

    obs::TraceSpan verify_span(cfg.trace, wire::kSpanRepairVerify);
    EngineConfig verify_cfg = cfg;
    verify_cfg.cache = nullptr;  // fresh context: no cross-system reuse
    verify_cfg.enable_cache = false;
    MultiSafetyReport after = AnalyzeMultiSafety(repaired, verify_cfg);
    if (after.verdict != SafetyVerdict::kSafe) continue;
    auto dl_after = AnalyzeDeadlockFreedom(repaired, cfg.max_deadlock_states);
    if (!dl_after.ok() || !dl_after->deadlock_free) continue;

    ++report.candidates_verified;
    seen_texts.insert(text);
    report.repairs.push_back(
        {std::move(c.edit), after.verdict, true, std::move(text)});
    if (static_cast<int>(report.repairs.size()) >= options.max_repairs) {
      break;
    }
  }
  return report;
}

void ExportRepairStats(const RepairReport& report, obs::StatsSink* sink) {
  if (sink == nullptr) return;
  obs::PrefixedSink repair(wire::kMetricRepairPrefix, sink);
  repair.AddCounter(wire::kAttempted, report.attempted ? 1 : 0);
  repair.AddCounter(wire::kCandidatesTried, report.candidates_tried);
  repair.AddCounter(wire::kCandidatesVerified, report.candidates_verified);
  repair.AddCounter(wire::kRepairs,
                    static_cast<int64_t>(report.repairs.size()));
}

}  // namespace dislock
