#ifndef DISLOCK_ANALYSIS_REPAIR_ENGINE_H_
#define DISLOCK_ANALYSIS_REPAIR_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/repair/edit.h"
#include "core/decision/config.h"
#include "core/safety.h"
#include "txn/system.h"

namespace dislock {

namespace obs {
class StatsSink;
}  // namespace obs

/// Repair synthesis: search a bounded space of minimal edits
/// (analysis/repair/edit.h) that turn an unsafe or deadlock-prone system
/// into one that is provably safe AND deadlock-free, re-running the full
/// decision pipeline and the reachable-state deadlock search on every
/// candidate. Only candidates that pass BOTH re-analyses are reported —
/// a repair in the output is a theorem, not a suggestion. This is the
/// static counterpart of the controller-synthesis line of work the related
/// papers pursue dynamically.

struct RepairOptions {
  /// Budgets/threads for the per-candidate re-analyses. The engine never
  /// pours into `engine.stats` itself (owner-exports-once): tools call
  /// ExportRepairStats on the finished report.
  EngineConfig engine;
  /// Stop after this many verified repairs.
  int max_repairs = 3;
  /// Cap on candidates tried (search is cost-ordered, so the cheapest
  /// candidates are always the ones tried).
  int64_t max_candidates = 64;
};

/// One verified repair: the edit, the re-analysis verdicts it achieved, and
/// the full repaired system in .dlk text form (SystemToText round-trips
/// exactly, so this is also the patch payload for SARIF fixes and
/// `dislock fix`).
struct VerifiedRepair {
  RepairEdit edit;
  SafetyVerdict safety_after = SafetyVerdict::kUnknown;
  bool deadlock_free_after = false;
  std::string repaired_text;
};

/// The synthesis outcome, attached to AnalysisResult::repair and rendered
/// by every emitter.
struct RepairReport {
  /// False when the system was already safe and deadlock-free (nothing to
  /// repair; no candidates were generated).
  bool attempted = false;
  SafetyVerdict safety_before = SafetyVerdict::kUnknown;
  bool deadlock_free_before = false;
  /// True when the baseline deadlock search exhausted its state budget.
  bool deadlock_undecided_before = false;
  int64_t candidates_tried = 0;
  int64_t candidates_verified = 0;
  /// Verified repairs, cheapest first (at most max_repairs).
  std::vector<VerifiedRepair> repairs;
};

/// Runs the search. Deterministic for a fixed (system, options) at any
/// thread count, like the analyses it wraps. Candidate/verification work
/// is traced under the "repair.candidate" / "repair.verify" spans when
/// options.engine.trace is set.
RepairReport SynthesizeRepairs(const TransactionSystem& system,
                               const RepairOptions& options = {});

/// Pours the report's counters into `sink` under the "repair." prefix
/// (no-op on null). Call once, from the report's owner.
void ExportRepairStats(const RepairReport& report, obs::StatsSink* sink);

}  // namespace dislock

#endif  // DISLOCK_ANALYSIS_REPAIR_ENGINE_H_
