#ifndef DISLOCK_ANALYSIS_DIAGNOSTIC_H_
#define DISLOCK_ANALYSIS_DIAGNOSTIC_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/certificate.h"
#include "core/deadlock.h"
#include "core/decision/stats.h"
#include "analysis/repair/engine.h"
#include "txn/step.h"

namespace dislock {

/// Severity of an analyzer finding.
///   * kError   — a PROVEN defect (e.g. a verified unsafety certificate);
///   * kWarning — a likely defect or an inconclusive safety analysis;
///   * kNote    — informational (safety proofs, style/discipline lints).
enum class DiagSeverity { kNote, kWarning, kError };

/// "note", "warning" or "error".
const char* DiagSeverityName(DiagSeverity severity);

/// One rule of the analyzer's catalog. Rule ids are stable ("DL002") so
/// downstream tooling can filter on them; DL0xx are safety results, DL1xx
/// are lint-grade findings, DL2xx are deadlock/protocol findings. Each rule
/// carries the severity its diagnostics are emitted at (`dislock rules`
/// prints the catalog; the SARIF driver exports it as defaultConfiguration).
struct AnalysisRule {
  const char* id;         ///< e.g. "DL002"
  const char* name;       ///< e.g. "unsafe-pair"
  const char* citation;   ///< where in the paper the rule comes from
  const char* summary;    ///< one-line description
  DiagSeverity severity;  ///< severity this rule's diagnostics carry
};

/// The full rule catalog, ordered by id. docs/analyzer.md documents each
/// entry; the SARIF emitter exports the catalog as tool metadata.
const std::vector<AnalysisRule>& AnalysisRules();

/// Looks up a rule by id; nullptr if unknown.
const AnalysisRule* FindAnalysisRule(std::string_view id);

/// What a diagnostic points at. Granularity is optional from the system
/// down to a single step: txn == -1 means the whole system; other_txn >= 0
/// marks a pair-level finding; step/entity refine the location when the
/// finding is about a specific lock section.
struct DiagnosticLocation {
  int txn = -1;
  int other_txn = -1;
  StepId step = kInvalidStep;
  EntityId entity = kInvalidEntity;
};

/// One analyzer finding.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kNote;
  /// Id of the AnalysisRule that produced this finding.
  std::string rule;
  DiagnosticLocation location;
  std::string message;
  /// Actionable suggestion; empty when there is nothing to do.
  std::string fix_hint;
  /// For unsafe verdicts: the verified Theorem 2 / Corollary 2 witness.
  std::optional<UnsafetyCertificate> certificate;
  /// For DL201: the replayable deadlock witness (schedule prefix plus the
  /// dead state's waits-for lists), re-verified by AuditAnalysis.
  std::optional<DeadlockCertificate> deadlock_certificate;
};

/// Everything a PassManager run produced.
struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  /// Names of the passes that ran, in order.
  std::vector<std::string> passes_run;
  /// DecisionPipeline statistics summed over every pair/system analysis the
  /// run memoized (see AnalysisContext::PipelineTotals). Deterministic at
  /// any thread count, like the diagnostics themselves.
  PipelineStats pipeline;
  /// When the tool ran repair synthesis (analyze --repair, dislock fix):
  /// the verified-repair report, rendered by every emitter.
  std::optional<RepairReport> repair;

  int Count(DiagSeverity severity) const;
  bool HasErrors() const { return Count(DiagSeverity::kError) > 0; }
};

}  // namespace dislock

#endif  // DISLOCK_ANALYSIS_DIAGNOSTIC_H_
