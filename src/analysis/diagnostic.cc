#include "analysis/diagnostic.h"

namespace dislock {

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kNote:
      return "note";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "unknown";
}

const std::vector<AnalysisRule>& AnalysisRules() {
  static const std::vector<AnalysisRule> kRules = {
      {"DL001", "non-two-phase",
       "Section 1 (two-phase locking, after Eswaran et al.)",
       "transaction releases a lock before acquiring another; 2PL "
       "transactions are always safe, non-2PL ones need the paper's "
       "analysis",
       DiagSeverity::kNote},
      {"DL002", "unsafe-pair", "Theorem 2 / Corollary 1",
       "pair spanning at most two sites whose conflict digraph D(T1,T2) is "
       "not strongly connected: provably unsafe, certificate attached",
       DiagSeverity::kError},
      {"DL003", "safe-pair", "Theorem 1 (also Corollary 2 loop, Lemma 1)",
       "pair proven safe; when D(T1,T2) is strongly connected this holds at "
       "any number of sites",
       DiagSeverity::kNote},
      {"DL004", "unsafe-pair-multisite", "Corollary 2 (Lemmas 2-3 closure)",
       "pair spanning three or more sites with a dominator whose closure "
       "converges: provably unsafe, certificate attached",
       DiagSeverity::kError},
      {"DL005", "undecided-pair", "Theorem 3 (coNP-completeness)",
       "pair analysis exhausted its dominator/extension budgets without a "
       "proof either way",
       DiagSeverity::kWarning},
      {"DL006", "unsafe-cycle", "Proposition 2, condition (b)",
       "directed cycle of the transaction conflict graph G whose combined "
       "digraph B_c is acyclic: the system is unsafe even if every pair is "
       "safe",
       DiagSeverity::kError},
      {"DL007", "undecided-system", "Proposition 2",
       "the cycle enumeration of Proposition 2 exceeded its budget; no "
       "system-level verdict",
       DiagSeverity::kWarning},
      {"DL008", "safe-system", "Proposition 2",
       "every pair is safe and every examined cycle's B_c has a cycle: the "
       "whole system is safe",
       DiagSeverity::kNote},
      {"DL101", "redundant-lock", "Definition 1 (D is built from "
       "lock-unlock sections); Section 2 well-formedness",
       "exclusive lock section that never updates its entity and whose "
       "removal leaves every D(Ti,Tj) unchanged",
       DiagSeverity::kWarning},
      {"DL102", "unlock-before-use", "Section 2 (updates must lie between "
       "Lx and Ux)",
       "an update of x is not ordered before Ux, so some execution applies "
       "it after the lock is gone",
       DiagSeverity::kWarning},
      {"DL103", "lock-order", "Section 7 (distributed deadlock discussion)",
       "locks are not acquired in the canonical (site, entity) order; a "
       "consistent acquisition order across transactions prevents "
       "distributed deadlock",
       DiagSeverity::kNote},
      {"DL201", "reachable-deadlock", "Section 7 (distributed deadlock); "
       "centralized deadlock theory of [7, 17]",
       "a legal execution prefix reaches a state where every remaining "
       "step is blocked on a lock: proven deadlock, replayable witness "
       "attached",
       DiagSeverity::kError},
      {"DL202", "opposing-lock-orders", "Section 7 (hold-and-wait "
       "precondition)",
       "two transactions can acquire locks on a pair of common entities in "
       "opposite orders, the classic precondition for a cyclic wait",
       DiagSeverity::kWarning},
      {"DL203", "tree-protocol-violation", "Section 6 (hierarchical "
       "protocols of [12])",
       "transaction locks entities in a pattern that breaks the tree "
       "protocol over the system's inferred entity forest",
       DiagSeverity::kNote},
      {"DL204", "centralized-image-divergence", "Section 6 (centralized "
       "image / linearizations)",
       "an unlock and a later lock are unordered, so some linearizations "
       "of the transaction are two-phase and others are not: the "
       "centralized image diverges from the distributed intent",
       DiagSeverity::kNote},
      {"DL205", "deadlock-free", "Section 7; reachable-state search",
       "the exhaustive reachable-state search proved the system "
       "deadlock-free",
       DiagSeverity::kNote},
      {"DL206", "deadlock-undecided", "Section 7; reachable-state search",
       "the deadlock search exhausted its state budget without a verdict "
       "either way",
       DiagSeverity::kWarning},
  };
  return kRules;
}

const AnalysisRule* FindAnalysisRule(std::string_view id) {
  for (const AnalysisRule& rule : AnalysisRules()) {
    if (id == rule.id) return &rule;
  }
  return nullptr;
}

int AnalysisResult::Count(DiagSeverity severity) const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

}  // namespace dislock
