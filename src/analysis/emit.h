#ifndef DISLOCK_ANALYSIS_EMIT_H_
#define DISLOCK_ANALYSIS_EMIT_H_

#include <string>

#include "analysis/diagnostic.h"
#include "txn/system.h"

namespace dislock {

namespace obs {
class StatsSink;
}  // namespace obs

/// Human-readable rendering, one clang-style line per diagnostic
///
///   T1/T2: error [DL002/unsafe-pair] pair {T1, T2} ...
///     hint: ...
///     certificate: ...
///
/// followed by a summary line. Deterministic (golden-testable).
std::string DiagnosticsToText(const AnalysisResult& result,
                              const TransactionSystem& system);

/// Machine-readable JSON:
///   {"passes": [...],
///    "diagnostics": [{"severity", "rule", "name", "txn", "other_txn",
///                     "step", "entity", "message", "fix_hint",
///                     "certificate"}, ...],
///    "summary": {"errors": n, "warnings": n, "notes": n}}
/// Hand-rolled like core/report.cc; no external dependency.
std::string DiagnosticsToJson(const AnalysisResult& result,
                              const TransactionSystem& system);

/// SARIF 2.1.0 (the interchange format IDEs and code-scanning services
/// ingest): one run of tool "dislock-analyze" with the full rule catalog
/// as driver metadata and one result per diagnostic, located by logical
/// location (transaction / step).
std::string DiagnosticsToSarif(const AnalysisResult& result,
                               const TransactionSystem& system);

/// Pours the run's aggregate counters into `sink` (no-op when null):
/// "analysis.passes", "analysis.diagnostics", "analysis.errors",
/// "analysis.warnings", "analysis.notes", plus the summed DecisionPipeline
/// stats under "pipeline.<stage>.*". PassManager::Run calls this once per
/// run (the owner-exports-once convention of core/stats_export.h).
void ExportAnalysisResultStats(const AnalysisResult& result,
                               obs::StatsSink* sink);

}  // namespace dislock

#endif  // DISLOCK_ANALYSIS_EMIT_H_
