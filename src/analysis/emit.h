#ifndef DISLOCK_ANALYSIS_EMIT_H_
#define DISLOCK_ANALYSIS_EMIT_H_

#include <string>

#include "analysis/diagnostic.h"
#include "txn/system.h"

namespace dislock {

namespace obs {
class StatsSink;
}  // namespace obs

/// Human-readable rendering, one clang-style line per diagnostic
///
///   T1/T2: error [DL002/unsafe-pair] pair {T1, T2} ...
///     hint: ...
///     certificate: ...
///
/// followed by a summary line. Deterministic (golden-testable).
std::string DiagnosticsToText(const AnalysisResult& result,
                              const TransactionSystem& system);

/// Machine-readable JSON:
///   {"passes": [...],
///    "diagnostics": [{"severity", "rule", "name", "txn", "other_txn",
///                     "step", "entity", "message", "fix_hint",
///                     "certificate"}, ...],
///    "summary": {"errors": n, "warnings": n, "notes": n}}
/// Hand-rolled like core/report.cc; no external dependency.
std::string DiagnosticsToJson(const AnalysisResult& result,
                              const TransactionSystem& system);

/// Physical anchor for the SARIF emitter: the URI of the analyzed .dlk
/// file and its line count, so `fixes` can describe a whole-file
/// replacement. Default (empty uri) falls back to "system.dlk" / line 1.
struct SarifArtifact {
  std::string uri;
  int end_line = 0;
};

/// SARIF 2.1.0 (the interchange format IDEs and code-scanning services
/// ingest): one run of tool "dislock-analyze" with the full rule catalog
/// as driver metadata (including each rule's defaultConfiguration level)
/// and one result per diagnostic, located by logical location
/// (transaction / step). When result.repair holds verified repairs, the
/// results for repairable rules (DL002/DL004/DL006/DL201) carry a `fixes`
/// array — one whole-file replacement per verified repair.
std::string DiagnosticsToSarif(const AnalysisResult& result,
                               const TransactionSystem& system,
                               const SarifArtifact& artifact = {});

/// The repair report as JSON (the "repair" value of DiagnosticsToJson;
/// also emitted standalone by `dislock fix --json`).
std::string RepairReportToJson(const RepairReport& report,
                               const TransactionSystem& system);

/// The rule catalog (id, severity, name, summary, citation) as aligned
/// text, one block per rule. `dislock rules` prints this.
std::string RulesToText();

/// The catalog as {"schema_version": 1, "rules": [...]}.
std::string RulesToJson();

/// The catalog as the generated docs/rules.md (table plus do-not-edit
/// preamble); rules_catalog_test fails when doc and catalog drift.
std::string RulesToMarkdown();

/// Pours the run's aggregate counters into `sink` (no-op when null):
/// "analysis.passes", "analysis.diagnostics", "analysis.errors",
/// "analysis.warnings", "analysis.notes", plus the summed DecisionPipeline
/// stats under "pipeline.<stage>.*". PassManager::Run calls this once per
/// run (the owner-exports-once convention of core/stats_export.h).
void ExportAnalysisResultStats(const AnalysisResult& result,
                               obs::StatsSink* sink);

}  // namespace dislock

#endif  // DISLOCK_ANALYSIS_EMIT_H_
