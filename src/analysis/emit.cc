#include "analysis/emit.h"

#include <sstream>

#include "core/report.h"
#include "util/string_util.h"

namespace dislock {
namespace {

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  out += JsonEscape(s);
  out += "\"";
  return out;
}

/// "system", "T1", "T1/T2", optionally suffixed ":Lx#3".
std::string LocationText(const DiagnosticLocation& loc,
                         const TransactionSystem& system) {
  if (loc.txn < 0) return "system";
  std::string out = system.txn(loc.txn).name();
  if (loc.other_txn >= 0) {
    out += "/" + system.txn(loc.other_txn).name();
  }
  if (loc.step != kInvalidStep && loc.other_txn < 0) {
    out += StrCat(":", system.txn(loc.txn).StepString(loc.step), "#",
                  loc.step);
  }
  return out;
}

std::string Indented(const std::string& block, const char* prefix) {
  std::istringstream in(block);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) out << prefix << line << "\n";
  return out.str();
}

std::string SummaryText(const AnalysisResult& result) {
  return StrCat(result.Count(DiagSeverity::kError), " error(s), ",
                result.Count(DiagSeverity::kWarning), " warning(s), ",
                result.Count(DiagSeverity::kNote), " note(s) from ",
                result.passes_run.size(), " pass(es)");
}

}  // namespace

std::string DiagnosticsToText(const AnalysisResult& result,
                              const TransactionSystem& system) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    const AnalysisRule* rule = FindAnalysisRule(d.rule);
    out << LocationText(d.location, system) << ": "
        << DiagSeverityName(d.severity) << " [" << d.rule << "/"
        << (rule != nullptr ? rule->name : "?") << "] " << d.message
        << "\n";
    if (!d.fix_hint.empty()) {
      out << "  hint: " << d.fix_hint << "\n";
    }
    if (d.certificate.has_value()) {
      out << "  certificate:\n"
          << Indented(CertificateToString(*d.certificate, system.db()),
                      "    ");
    }
  }
  out << SummaryText(result) << "\n";
  return out.str();
}

std::string DiagnosticsToJson(const AnalysisResult& result,
                              const TransactionSystem& system) {
  std::ostringstream out;
  out << "{\"passes\": [";
  for (size_t i = 0; i < result.passes_run.size(); ++i) {
    if (i > 0) out << ", ";
    out << Quoted(result.passes_run[i]);
  }
  out << "], \"diagnostics\": [";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    const AnalysisRule* rule = FindAnalysisRule(d.rule);
    if (i > 0) out << ", ";
    out << "{\"severity\": " << Quoted(DiagSeverityName(d.severity))
        << ", \"rule\": " << Quoted(d.rule) << ", \"name\": "
        << Quoted(rule != nullptr ? rule->name : "?") << ", \"txn\": ";
    if (d.location.txn >= 0) {
      out << Quoted(system.txn(d.location.txn).name());
    } else {
      out << "null";
    }
    out << ", \"other_txn\": ";
    if (d.location.other_txn >= 0) {
      out << Quoted(system.txn(d.location.other_txn).name());
    } else {
      out << "null";
    }
    out << ", \"step\": ";
    if (d.location.step != kInvalidStep) {
      out << d.location.step;
    } else {
      out << "null";
    }
    out << ", \"entity\": ";
    if (d.location.entity != kInvalidEntity) {
      out << Quoted(system.db().NameOf(d.location.entity));
    } else {
      out << "null";
    }
    out << ", \"message\": " << Quoted(d.message) << ", \"fix_hint\": "
        << Quoted(d.fix_hint) << ", \"certificate\": ";
    if (d.certificate.has_value()) {
      out << CertificateToJson(*d.certificate, system.db());
    } else {
      out << "null";
    }
    out << "}";
  }
  out << "], \"pipeline\": " << PipelineStatsToJson(result.pipeline)
      << ", \"summary\": {\"errors\": " << result.Count(DiagSeverity::kError)
      << ", \"warnings\": " << result.Count(DiagSeverity::kWarning)
      << ", \"notes\": " << result.Count(DiagSeverity::kNote) << "}}";
  return out.str();
}

std::string DiagnosticsToSarif(const AnalysisResult& result,
                               const TransactionSystem& system) {
  // SARIF maps severities onto "note"/"warning"/"error" levels directly.
  std::ostringstream out;
  out << "{\"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\", "
         "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
         "{\"name\": \"dislock-analyze\", \"informationUri\": "
         "\"https://example.invalid/dislock\", \"rules\": [";
  const std::vector<AnalysisRule>& rules = AnalysisRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"id\": " << Quoted(rules[i].id) << ", \"name\": "
        << Quoted(rules[i].name) << ", \"shortDescription\": {\"text\": "
        << Quoted(rules[i].summary) << "}, \"help\": {\"text\": "
        << Quoted(rules[i].citation) << "}}";
  }
  out << "]}}, \"results\": [";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    size_t rule_index = 0;
    for (size_t r = 0; r < rules.size(); ++r) {
      if (d.rule == rules[r].id) rule_index = r;
    }
    if (i > 0) out << ", ";
    out << "{\"ruleId\": " << Quoted(d.rule) << ", \"ruleIndex\": "
        << rule_index << ", \"level\": "
        << Quoted(DiagSeverityName(d.severity)) << ", \"message\": "
        << "{\"text\": " << Quoted(d.message) << "}, \"locations\": "
        << "[{\"logicalLocations\": [{\"name\": "
        << Quoted(LocationText(d.location, system))
        << ", \"kind\": \"object\"}]}]}";
  }
  // The per-stage DecisionPipeline counters ride along as a run-level
  // property bag (SARIF's extension point for tool-specific data).
  out << "], \"properties\": {\"pipeline\": "
      << PipelineStatsToJson(result.pipeline) << "}}]}";
  return out.str();
}

}  // namespace dislock
