#include "analysis/emit.h"

#include <sstream>

#include "core/report.h"
#include "core/stats_export.h"
#include "core/wire_keys.h"
#include "obs/stats_sink.h"
#include "util/string_util.h"

namespace dislock {
namespace {

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  out += JsonEscape(s);
  out += "\"";
  return out;
}

// `"<key>": ` with the key from core/wire_keys.h (see report.cc).
std::string Key(const char* name) {
  return std::string("\"") + name + "\": ";
}

/// "system", "T1", "T1/T2", optionally suffixed ":Lx#3".
std::string LocationText(const DiagnosticLocation& loc,
                         const TransactionSystem& system) {
  if (loc.txn < 0) return "system";
  std::string out = system.txn(loc.txn).name();
  if (loc.other_txn >= 0) {
    out += "/" + system.txn(loc.other_txn).name();
  }
  if (loc.step != kInvalidStep && loc.other_txn < 0) {
    out += StrCat(":", system.txn(loc.txn).StepString(loc.step), "#",
                  loc.step);
  }
  return out;
}

std::string Indented(const std::string& block, const char* prefix) {
  std::istringstream in(block);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) out << prefix << line << "\n";
  return out.str();
}

std::string SummaryText(const AnalysisResult& result) {
  return StrCat(result.Count(DiagSeverity::kError), " error(s), ",
                result.Count(DiagSeverity::kWarning), " warning(s), ",
                result.Count(DiagSeverity::kNote), " note(s) from ",
                result.passes_run.size(), " pass(es)");
}

}  // namespace

std::string DiagnosticsToText(const AnalysisResult& result,
                              const TransactionSystem& system) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    const AnalysisRule* rule = FindAnalysisRule(d.rule);
    out << LocationText(d.location, system) << ": "
        << DiagSeverityName(d.severity) << " [" << d.rule << "/"
        << (rule != nullptr ? rule->name : "?") << "] " << d.message
        << "\n";
    if (!d.fix_hint.empty()) {
      out << "  hint: " << d.fix_hint << "\n";
    }
    if (d.certificate.has_value()) {
      out << "  certificate:\n"
          << Indented(CertificateToString(*d.certificate, system.db()),
                      "    ");
    }
  }
  out << SummaryText(result) << "\n";
  return out.str();
}

std::string DiagnosticsToJson(const AnalysisResult& result,
                              const TransactionSystem& system) {
  std::ostringstream out;
  out << "{" << Key(wire::kPasses) << "[";
  for (size_t i = 0; i < result.passes_run.size(); ++i) {
    if (i > 0) out << ", ";
    out << Quoted(result.passes_run[i]);
  }
  out << "], " << Key(wire::kDiagnostics) << "[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    const AnalysisRule* rule = FindAnalysisRule(d.rule);
    if (i > 0) out << ", ";
    out << "{" << Key(wire::kSeverity) << Quoted(DiagSeverityName(d.severity))
        << ", " << Key(wire::kRule) << Quoted(d.rule) << ", "
        << Key(wire::kRuleName) << Quoted(rule != nullptr ? rule->name : "?")
        << ", " << Key(wire::kTxn);
    if (d.location.txn >= 0) {
      out << Quoted(system.txn(d.location.txn).name());
    } else {
      out << "null";
    }
    out << ", " << Key(wire::kOtherTxn);
    if (d.location.other_txn >= 0) {
      out << Quoted(system.txn(d.location.other_txn).name());
    } else {
      out << "null";
    }
    out << ", " << Key(wire::kStep);
    if (d.location.step != kInvalidStep) {
      out << d.location.step;
    } else {
      out << "null";
    }
    out << ", " << Key(wire::kEntity);
    if (d.location.entity != kInvalidEntity) {
      out << Quoted(system.db().NameOf(d.location.entity));
    } else {
      out << "null";
    }
    out << ", " << Key(wire::kMessage) << Quoted(d.message) << ", "
        << Key(wire::kFixHint) << Quoted(d.fix_hint) << ", "
        << Key(wire::kCertificate);
    if (d.certificate.has_value()) {
      out << CertificateToJson(*d.certificate, system.db());
    } else {
      out << "null";
    }
    out << "}";
  }
  out << "], " << Key(wire::kPipeline) << PipelineStatsToJson(result.pipeline)
      << ", " << Key(wire::kSummary) << "{" << Key(wire::kErrors)
      << result.Count(DiagSeverity::kError) << ", " << Key(wire::kWarnings)
      << result.Count(DiagSeverity::kWarning) << ", " << Key(wire::kNotes)
      << result.Count(DiagSeverity::kNote) << "}}";
  return out.str();
}

std::string DiagnosticsToSarif(const AnalysisResult& result,
                               const TransactionSystem& system) {
  // SARIF maps severities onto "note"/"warning"/"error" levels directly.
  std::ostringstream out;
  out << "{\"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\", "
         "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
         "{\"name\": \"dislock-analyze\", \"informationUri\": "
         "\"https://example.invalid/dislock\", \"rules\": [";
  const std::vector<AnalysisRule>& rules = AnalysisRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"id\": " << Quoted(rules[i].id) << ", \"name\": "
        << Quoted(rules[i].name) << ", \"shortDescription\": {\"text\": "
        << Quoted(rules[i].summary) << "}, \"help\": {\"text\": "
        << Quoted(rules[i].citation) << "}}";
  }
  out << "]}}, \"results\": [";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    size_t rule_index = 0;
    for (size_t r = 0; r < rules.size(); ++r) {
      if (d.rule == rules[r].id) rule_index = r;
    }
    if (i > 0) out << ", ";
    out << "{\"ruleId\": " << Quoted(d.rule) << ", \"ruleIndex\": "
        << rule_index << ", \"level\": "
        << Quoted(DiagSeverityName(d.severity)) << ", \"message\": "
        << "{\"text\": " << Quoted(d.message) << "}, \"locations\": "
        << "[{\"logicalLocations\": [{\"name\": "
        << Quoted(LocationText(d.location, system))
        << ", \"kind\": \"object\"}]}]}";
  }
  // The per-stage DecisionPipeline counters ride along as a run-level
  // property bag (SARIF's extension point for tool-specific data); the
  // SARIF document itself is versioned by "version", so our schema_version
  // tags only the property bag.
  out << "], " << Key(wire::kProperties) << "{"
      << Key(wire::kSchemaVersionKey) << wire::kSchemaVersion << ", "
      << Key(wire::kPipeline) << PipelineStatsToJson(result.pipeline)
      << "}}]}";
  return out.str();
}

void ExportAnalysisResultStats(const AnalysisResult& result,
                               obs::StatsSink* sink) {
  if (sink == nullptr) return;
  auto name = [](const char* leaf) {
    return StrCat(wire::kMetricAnalysisPrefix, ".", leaf);
  };
  sink->AddCounter(name(wire::kPasses),
                   static_cast<int64_t>(result.passes_run.size()));
  sink->AddCounter(name(wire::kDiagnostics),
                   static_cast<int64_t>(result.diagnostics.size()));
  sink->AddCounter(name(wire::kErrors), result.Count(DiagSeverity::kError));
  sink->AddCounter(name(wire::kWarnings),
                   result.Count(DiagSeverity::kWarning));
  sink->AddCounter(name(wire::kNotes), result.Count(DiagSeverity::kNote));
  ExportPipelineStats(result.pipeline, sink);
}

}  // namespace dislock
