#include "analysis/emit.h"

#include <sstream>

#include "core/report.h"
#include "core/stats_export.h"
#include "core/wire_keys.h"
#include "obs/stats_sink.h"
#include "util/string_util.h"

namespace dislock {
namespace {

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  out += JsonEscape(s);
  out += "\"";
  return out;
}

// `"<key>": ` with the key from core/wire_keys.h (see report.cc).
std::string Key(const char* name) {
  return std::string("\"") + name + "\": ";
}

/// "system", "T1", "T1/T2", optionally suffixed ":Lx#3".
std::string LocationText(const DiagnosticLocation& loc,
                         const TransactionSystem& system) {
  if (loc.txn < 0) return "system";
  std::string out = system.txn(loc.txn).name();
  if (loc.other_txn >= 0) {
    out += "/" + system.txn(loc.other_txn).name();
  }
  if (loc.step != kInvalidStep && loc.other_txn < 0) {
    out += StrCat(":", system.txn(loc.txn).StepString(loc.step), "#",
                  loc.step);
  }
  return out;
}

std::string Indented(const std::string& block, const char* prefix) {
  std::istringstream in(block);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) out << prefix << line << "\n";
  return out.str();
}

std::string SummaryText(const AnalysisResult& result) {
  return StrCat(result.Count(DiagSeverity::kError), " error(s), ",
                result.Count(DiagSeverity::kWarning), " warning(s), ",
                result.Count(DiagSeverity::kNote), " note(s) from ",
                result.passes_run.size(), " pass(es)");
}

/// "deadlock-free", "deadlock reachable" or "deadlock undecided".
std::string DeadlockBeforeText(const RepairReport& r) {
  if (r.deadlock_undecided_before) return "deadlock undecided";
  return r.deadlock_free_before ? "deadlock-free" : "deadlock reachable";
}

/// The repair block appended after the summary line by DiagnosticsToText.
std::string RepairSectionText(const RepairReport& r) {
  std::ostringstream out;
  if (!r.attempted) {
    out << "repair: nothing to repair (the system is safe and "
           "deadlock-free)\n";
    return out.str();
  }
  out << "repair: before: safety " << SafetyVerdictName(r.safety_before)
      << ", " << DeadlockBeforeText(r) << "; " << r.candidates_tried
      << " candidate(s) tried, " << r.candidates_verified << " verified\n";
  for (size_t i = 0; i < r.repairs.size(); ++i) {
    const VerifiedRepair& v = r.repairs[i];
    out << "  [" << (i + 1) << "] " << RepairEditKindName(v.edit.kind)
        << " (cost " << v.edit.cost << "): " << v.edit.description << "\n"
        << "      after: safety " << SafetyVerdictName(v.safety_after)
        << ", deadlock-free (re-verified)\n";
  }
  return out.str();
}

/// {"dead_prefix": "...", "blocked": [{"txn", "waits_for"}, ...]} — the
/// same shape as DeadlockReportToJson's witness fields.
std::string DeadlockCertificateToJson(const DeadlockCertificate& cert,
                                      const TransactionSystem& system) {
  std::ostringstream out;
  out << "{" << Key(wire::kDeadPrefix)
      << Quoted(cert.prefix.ToString(system)) << ", "
      << Key(wire::kBlocked) << "[";
  for (size_t i = 0; i < cert.blocked_txns.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{" << Key(wire::kTxn)
        << Quoted(system.txn(cert.blocked_txns[i]).name()) << ", "
        << Key(wire::kWaitsFor)
        << Quoted(cert.waited_entities[i] == kInvalidEntity
                      ? std::string("?")
                      : system.db().NameOf(cert.waited_entities[i]))
        << "}";
  }
  out << "]}";
  return out.str();
}

/// Rules whose findings the repair engine can fix (the SARIF results that
/// carry the `fixes` array when verified repairs exist).
bool IsRepairableRule(const std::string& rule) {
  return rule == "DL002" || rule == "DL004" || rule == "DL006" ||
         rule == "DL201";
}

}  // namespace

std::string DiagnosticsToText(const AnalysisResult& result,
                              const TransactionSystem& system) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    const AnalysisRule* rule = FindAnalysisRule(d.rule);
    out << LocationText(d.location, system) << ": "
        << DiagSeverityName(d.severity) << " [" << d.rule << "/"
        << (rule != nullptr ? rule->name : "?") << "] " << d.message
        << "\n";
    if (!d.fix_hint.empty()) {
      out << "  hint: " << d.fix_hint << "\n";
    }
    if (d.certificate.has_value()) {
      out << "  certificate:\n"
          << Indented(CertificateToString(*d.certificate, system.db()),
                      "    ");
    }
    if (d.deadlock_certificate.has_value()) {
      out << "  deadlock witness:\n"
          << Indented(
                 DeadlockCertificateToString(*d.deadlock_certificate, system),
                 "    ");
    }
  }
  out << SummaryText(result) << "\n";
  if (result.repair.has_value()) out << RepairSectionText(*result.repair);
  return out.str();
}

std::string DiagnosticsToJson(const AnalysisResult& result,
                              const TransactionSystem& system) {
  std::ostringstream out;
  out << "{" << Key(wire::kPasses) << "[";
  for (size_t i = 0; i < result.passes_run.size(); ++i) {
    if (i > 0) out << ", ";
    out << Quoted(result.passes_run[i]);
  }
  out << "], " << Key(wire::kDiagnostics) << "[";
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    const AnalysisRule* rule = FindAnalysisRule(d.rule);
    if (i > 0) out << ", ";
    out << "{" << Key(wire::kSeverity) << Quoted(DiagSeverityName(d.severity))
        << ", " << Key(wire::kRule) << Quoted(d.rule) << ", "
        << Key(wire::kRuleName) << Quoted(rule != nullptr ? rule->name : "?")
        << ", " << Key(wire::kTxn);
    if (d.location.txn >= 0) {
      out << Quoted(system.txn(d.location.txn).name());
    } else {
      out << "null";
    }
    out << ", " << Key(wire::kOtherTxn);
    if (d.location.other_txn >= 0) {
      out << Quoted(system.txn(d.location.other_txn).name());
    } else {
      out << "null";
    }
    out << ", " << Key(wire::kStep);
    if (d.location.step != kInvalidStep) {
      out << d.location.step;
    } else {
      out << "null";
    }
    out << ", " << Key(wire::kEntity);
    if (d.location.entity != kInvalidEntity) {
      out << Quoted(system.db().NameOf(d.location.entity));
    } else {
      out << "null";
    }
    out << ", " << Key(wire::kMessage) << Quoted(d.message) << ", "
        << Key(wire::kFixHint) << Quoted(d.fix_hint) << ", "
        << Key(wire::kCertificate);
    if (d.certificate.has_value()) {
      out << CertificateToJson(*d.certificate, system.db());
    } else {
      out << "null";
    }
    // Emitted only when present so runs without the deadlock pass keep
    // their exact historical bytes.
    if (d.deadlock_certificate.has_value()) {
      out << ", " << Key(wire::kDeadlockCertificate)
          << DeadlockCertificateToJson(*d.deadlock_certificate, system);
    }
    out << "}";
  }
  out << "], " << Key(wire::kPipeline) << PipelineStatsToJson(result.pipeline);
  if (result.repair.has_value()) {
    out << ", " << Key(wire::kRepair)
        << RepairReportToJson(*result.repair, system);
  }
  out << ", " << Key(wire::kSummary) << "{" << Key(wire::kErrors)
      << result.Count(DiagSeverity::kError) << ", " << Key(wire::kWarnings)
      << result.Count(DiagSeverity::kWarning) << ", " << Key(wire::kNotes)
      << result.Count(DiagSeverity::kNote) << "}}";
  return out.str();
}

std::string RepairReportToJson(const RepairReport& report,
                               const TransactionSystem& system) {
  std::ostringstream out;
  out << "{" << Key(wire::kAttempted)
      << (report.attempted ? "true" : "false") << ", " << Key(wire::kBefore)
      << "{" << Key(wire::kSafety)
      << Quoted(SafetyVerdictName(report.safety_before)) << ", "
      << Key(wire::kDeadlockFree)
      << (report.deadlock_free_before ? "true" : "false") << ", "
      << Key(wire::kDeadlockUndecided)
      << (report.deadlock_undecided_before ? "true" : "false") << "}, "
      << Key(wire::kCandidatesTried) << report.candidates_tried << ", "
      << Key(wire::kCandidatesVerified) << report.candidates_verified << ", "
      << Key(wire::kRepairs) << "[";
  for (size_t i = 0; i < report.repairs.size(); ++i) {
    const VerifiedRepair& v = report.repairs[i];
    if (i > 0) out << ", ";
    out << "{" << Key(wire::kKind) << Quoted(RepairEditKindName(v.edit.kind))
        << ", " << Key(wire::kTxns) << "[";
    for (size_t t = 0; t < v.edit.txns.size(); ++t) {
      if (t > 0) out << ", ";
      out << Quoted(system.txn(v.edit.txns[t]).name());
    }
    out << "], " << Key(wire::kDescription) << Quoted(v.edit.description)
        << ", " << Key(wire::kCost) << v.edit.cost << ", "
        << Key(wire::kAfter) << "{" << Key(wire::kSafety)
        << Quoted(SafetyVerdictName(v.safety_after)) << ", "
        << Key(wire::kDeadlockFree)
        << (v.deadlock_free_after ? "true" : "false") << "}, "
        << Key(wire::kRepairedSystem) << Quoted(v.repaired_text) << "}";
  }
  out << "]}";
  return out.str();
}

std::string DiagnosticsToSarif(const AnalysisResult& result,
                               const TransactionSystem& system,
                               const SarifArtifact& artifact) {
  // SARIF maps severities onto "note"/"warning"/"error" levels directly.
  const std::string uri =
      artifact.uri.empty() ? std::string("system.dlk") : artifact.uri;
  const int end_line = artifact.end_line > 0 ? artifact.end_line : 1;
  std::ostringstream out;
  out << "{\"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\", "
         "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
         "{\"name\": \"dislock-analyze\", \"informationUri\": "
         "\"https://example.invalid/dislock\", \"rules\": [";
  const std::vector<AnalysisRule>& rules = AnalysisRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"id\": " << Quoted(rules[i].id) << ", \"name\": "
        << Quoted(rules[i].name) << ", \"shortDescription\": {\"text\": "
        << Quoted(rules[i].summary) << "}, \"help\": {\"text\": "
        << Quoted(rules[i].citation) << "}, \"defaultConfiguration\": "
        << "{\"level\": " << Quoted(DiagSeverityName(rules[i].severity))
        << "}}";
  }
  out << "]}}, \"results\": [";
  const bool have_repairs =
      result.repair.has_value() && !result.repair->repairs.empty();
  for (size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    size_t rule_index = 0;
    for (size_t r = 0; r < rules.size(); ++r) {
      if (d.rule == rules[r].id) rule_index = r;
    }
    if (i > 0) out << ", ";
    out << "{\"ruleId\": " << Quoted(d.rule) << ", \"ruleIndex\": "
        << rule_index << ", \"level\": "
        << Quoted(DiagSeverityName(d.severity)) << ", \"message\": "
        << "{\"text\": " << Quoted(d.message) << "}, \"locations\": "
        << "[{\"logicalLocations\": [{\"name\": "
        << Quoted(LocationText(d.location, system))
        << ", \"kind\": \"object\"}]}]";
    if (have_repairs && IsRepairableRule(d.rule)) {
      // One fix per verified repair: a whole-file replacement of the .dlk
      // text (SystemToText round-trips exactly).
      out << ", \"fixes\": [";
      const std::vector<VerifiedRepair>& repairs = result.repair->repairs;
      for (size_t f = 0; f < repairs.size(); ++f) {
        if (f > 0) out << ", ";
        out << "{\"description\": {\"text\": "
            << Quoted(repairs[f].edit.description)
            << "}, \"artifactChanges\": [{\"artifactLocation\": {\"uri\": "
            << Quoted(uri) << "}, \"replacements\": [{\"deletedRegion\": "
            << "{\"startLine\": 1, \"startColumn\": 1, \"endLine\": "
            << end_line << "}, \"insertedContent\": {\"text\": "
            << Quoted(repairs[f].repaired_text) << "}}]}]}";
      }
      out << "]";
    }
    out << "}";
  }
  // The per-stage DecisionPipeline counters ride along as a run-level
  // property bag (SARIF's extension point for tool-specific data); the
  // SARIF document itself is versioned by "version", so our schema_version
  // tags only the property bag.
  out << "], " << Key(wire::kProperties) << "{"
      << Key(wire::kSchemaVersionKey) << wire::kSchemaVersion << ", "
      << Key(wire::kPipeline) << PipelineStatsToJson(result.pipeline)
      << "}}]}";
  return out.str();
}

std::string RulesToText() {
  std::ostringstream out;
  for (const AnalysisRule& r : AnalysisRules()) {
    out << r.id << " " << DiagSeverityName(r.severity) << " " << r.name
        << "\n  " << r.summary << "\n  citation: " << r.citation << "\n";
  }
  return out.str();
}

std::string RulesToJson() {
  std::ostringstream out;
  out << "{" << Key(wire::kSchemaVersionKey) << wire::kSchemaVersion << ", "
      << Key(wire::kRules) << "[";
  const std::vector<AnalysisRule>& rules = AnalysisRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{" << Key(wire::kId) << Quoted(rules[i].id) << ", "
        << Key(wire::kRuleName) << Quoted(rules[i].name) << ", "
        << Key(wire::kSeverity)
        << Quoted(DiagSeverityName(rules[i].severity)) << ", "
        << Key(wire::kCitation) << Quoted(rules[i].citation) << ", "
        << Key(wire::kSummary) << Quoted(rules[i].summary) << "}";
  }
  out << "]}";
  return out.str();
}

std::string RulesToMarkdown() {
  std::ostringstream out;
  out << "# Analyzer rule catalog\n"
         "\n"
         "<!-- Generated by `dislock rules --markdown`. Do not edit by "
         "hand:\n"
         "     rules_catalog_test fails when this file and the catalog in\n"
         "     src/analysis/diagnostic.cc drift. -->\n"
         "\n"
         "| Id | Name | Severity | Paper citation | Summary |\n"
         "|----|------|----------|----------------|---------|\n";
  for (const AnalysisRule& r : AnalysisRules()) {
    out << "| " << r.id << " | " << r.name << " | "
        << DiagSeverityName(r.severity) << " | " << r.citation << " | "
        << r.summary << " |\n";
  }
  return out.str();
}

void ExportAnalysisResultStats(const AnalysisResult& result,
                               obs::StatsSink* sink) {
  if (sink == nullptr) return;
  auto name = [](const char* leaf) {
    return StrCat(wire::kMetricAnalysisPrefix, ".", leaf);
  };
  sink->AddCounter(name(wire::kPasses),
                   static_cast<int64_t>(result.passes_run.size()));
  sink->AddCounter(name(wire::kDiagnostics),
                   static_cast<int64_t>(result.diagnostics.size()));
  sink->AddCounter(name(wire::kErrors), result.Count(DiagSeverity::kError));
  sink->AddCounter(name(wire::kWarnings),
                   result.Count(DiagSeverity::kWarning));
  sink->AddCounter(name(wire::kNotes), result.Count(DiagSeverity::kNote));
  ExportPipelineStats(result.pipeline, sink);
}

}  // namespace dislock
