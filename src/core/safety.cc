#include "core/safety.h"

#include <set>

#include "core/closure.h"
#include "graph/dominator.h"
#include "graph/scc.h"
#include "util/string_util.h"

namespace dislock {

const char* SafetyVerdictName(SafetyVerdict v) {
  switch (v) {
    case SafetyVerdict::kSafe:
      return "SAFE";
    case SafetyVerdict::kUnsafe:
      return "UNSAFE";
    case SafetyVerdict::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

int SitesSpanned(const Transaction& t1, const Transaction& t2) {
  std::set<SiteId> sites;
  for (EntityId e : t1.TouchedEntities()) sites.insert(t1.db().SiteOf(e));
  for (EntityId e : t2.TouchedEntities()) sites.insert(t2.db().SiteOf(e));
  return static_cast<int>(sites.size());
}

bool Theorem1Sufficient(const Transaction& t1, const Transaction& t2) {
  ConflictGraph d = BuildConflictGraph(t1, t2);
  return IsStronglyConnected(d.graph);
}

Result<PairSafetyReport> TwoSiteSafetyTest(const Transaction& t1,
                                           const Transaction& t2) {
  PairSafetyReport report;
  report.sites_spanned = SitesSpanned(t1, t2);
  if (report.sites_spanned > 2) {
    return Status::InvalidArgument(
        StrCat("TwoSiteSafetyTest requires <= 2 sites, pair spans ",
               report.sites_spanned));
  }
  report.d = BuildConflictGraph(t1, t2);
  report.d_strongly_connected = IsStronglyConnected(report.d.graph);
  if (report.d_strongly_connected) {
    report.verdict = SafetyVerdict::kSafe;
    report.method = "theorem-2";
    report.detail = "D(T1,T2) is strongly connected";
    return report;
  }
  auto dom = FindDominator(report.d.graph);
  if (!dom.ok()) {
    return Status::Internal(
        "non-strongly-connected D has no dominator: " +
        dom.status().ToString());
  }
  auto cert = BuildUnsafetyCertificate(t1, t2,
                                       report.d.EntitiesOf(dom.value()));
  if (!cert.ok()) {
    return Status::Internal(
        "Theorem 2 certificate construction failed on a two-site pair: " +
        cert.status().ToString());
  }
  report.verdict = SafetyVerdict::kUnsafe;
  report.method = "theorem-2";
  report.detail = "D(T1,T2) is not strongly connected";
  report.certificate = std::move(cert).value();
  return report;
}

PairSafetyReport AnalyzePairSafety(const Transaction& t1,
                                   const Transaction& t2,
                                   const SafetyOptions& options) {
  PairSafetyReport report;
  report.sites_spanned = SitesSpanned(t1, t2);
  report.d = BuildConflictGraph(t1, t2);
  report.d_strongly_connected = IsStronglyConnected(report.d.graph);

  // 1. Theorem 1 (any number of sites).
  if (report.d_strongly_connected) {
    report.verdict = SafetyVerdict::kSafe;
    report.method = "theorem-1";
    report.detail = "D(T1,T2) is strongly connected";
    return report;
  }

  // 2. Theorem 2 (complete at <= 2 sites).
  if (report.sites_spanned <= 2) {
    auto two_site = TwoSiteSafetyTest(t1, t2);
    if (two_site.ok()) return std::move(two_site).value();
    report.verdict = SafetyVerdict::kUnknown;
    report.detail = two_site.status().ToString();
    return report;
  }

  // 3. The dominator-closure loop (see header): complete when the
  //    enumeration covers all dominators and every failure is a proof.
  {
    std::vector<std::vector<NodeId>> dominators =
        AllDominators(report.d.graph, options.max_dominators + 1);
    bool enumeration_complete =
        static_cast<int64_t>(dominators.size()) <= options.max_dominators;
    if (!enumeration_complete) dominators.pop_back();
    bool all_failures_proven = true;
    for (const auto& dom_nodes : dominators) {
      std::vector<EntityId> x = report.d.EntitiesOf(dom_nodes);
      auto closed = CloseWithRespectTo(t1, t2, x);
      if (!closed.ok()) {
        // kUndecided from the closure is a PROOF that X cannot certify
        // unsafety (the contradiction holds in every extension pair).
        if (closed.status().code() != StatusCode::kUndecided) {
          all_failures_proven = false;
        }
        continue;
      }
      // Closed with respect to a dominator: Corollary 2 says unsafe;
      // construct and verify the certificate.
      auto cert = BuildUnsafetyCertificate(t1, t2, x);
      if (cert.ok()) {
        report.verdict = SafetyVerdict::kUnsafe;
        report.method = "corollary-2";
        report.detail = "system closes with respect to a dominator of D";
        report.certificate = std::move(cert).value();
        return report;
      }
      all_failures_proven = false;
    }
    if (enumeration_complete && all_failures_proven) {
      report.verdict = SafetyVerdict::kSafe;
      report.method = "dominator-closure";
      report.detail = StrCat(
          "all ", dominators.size(),
          " dominators of D provably admit no closed extension pair");
      return report;
    }
  }

  // 4. Exhaustive Lemma 1 fallback.
  if (options.max_extension_pairs > 0) {
    auto exhaustive =
        ExhaustivePairSafety(t1, t2, options.max_extension_pairs);
    if (exhaustive.ok()) {
      report.method = "exhaustive";
      if (exhaustive.value().safe) {
        report.verdict = SafetyVerdict::kSafe;
        report.detail =
            StrCat("all ", exhaustive.value().combinations_checked,
                   " extension pairs are safe");
      } else {
        report.verdict = SafetyVerdict::kUnsafe;
        report.certificate = std::move(exhaustive.value().certificate);
        report.detail = "an unsafe pair of linear extensions exists";
      }
      return report;
    }
    report.detail = exhaustive.status().ToString();
  }

  // 5. The coNP-complete regime: undecided.
  report.verdict = SafetyVerdict::kUnknown;
  report.method = "none";
  if (report.detail.empty()) {
    report.detail = "three or more sites and exhaustive fallback disabled";
  }
  return report;
}

}  // namespace dislock
