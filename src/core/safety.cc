#include "core/safety.h"

#include "core/decision/context.h"
#include "core/decision/pipeline.h"
#include "graph/dominator.h"
#include "graph/scc.h"
#include "util/string_util.h"

namespace dislock {

const char* SafetyVerdictName(SafetyVerdict v) {
  switch (v) {
    case SafetyVerdict::kSafe:
      return "SAFE";
    case SafetyVerdict::kUnsafe:
      return "UNSAFE";
    case SafetyVerdict::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

int SitesSpanned(const Transaction& t1, const Transaction& t2) {
  // Both site lists are sorted and maintained incrementally by the
  // transactions, so the pair count is a linear merge — this runs O(k^2)
  // times per multi-transaction analysis.
  const std::vector<SiteId>& a = t1.TouchedSites();
  const std::vector<SiteId>& b = t2.TouchedSites();
  size_t i = 0;
  size_t j = 0;
  int distinct = 0;
  while (i < a.size() || j < b.size()) {
    ++distinct;
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      ++i;
    } else if (i == a.size() || b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return distinct;
}

bool Theorem1Sufficient(const Transaction& t1, const Transaction& t2) {
  ConflictGraph d = BuildConflictGraph(t1, t2);
  return IsStronglyConnected(d.graph);
}

Result<PairSafetyReport> TwoSiteSafetyTest(const Transaction& t1,
                                           const Transaction& t2,
                                           bool use_flat_kernel) {
  PairSafetyReport report;
  report.sites_spanned = SitesSpanned(t1, t2);
  if (report.sites_spanned > 2) {
    return Status::InvalidArgument(
        StrCat("TwoSiteSafetyTest requires <= 2 sites, pair spans ",
               report.sites_spanned));
  }
  report.d = BuildConflictGraph(t1, t2);
  report.d_strongly_connected = use_flat_kernel
                                    ? IsStronglyConnectedFlat(report.d.graph)
                                    : IsStronglyConnected(report.d.graph);
  if (report.d_strongly_connected) {
    report.verdict = SafetyVerdict::kSafe;
    report.method = DecisionMethod::kTheorem2;
    report.detail = "D(T1,T2) is strongly connected";
    return report;
  }
  auto dom = use_flat_kernel ? FindDominatorFlat(report.d.graph)
                             : FindDominator(report.d.graph);
  if (!dom.ok()) {
    return Status::Internal(
        "non-strongly-connected D has no dominator: " +
        dom.status().ToString());
  }
  auto cert = BuildUnsafetyCertificate(t1, t2,
                                       report.d.EntitiesOf(dom.value()));
  if (!cert.ok()) {
    return Status::Internal(
        "Theorem 2 certificate construction failed on a two-site pair: " +
        cert.status().ToString());
  }
  report.verdict = SafetyVerdict::kUnsafe;
  report.method = DecisionMethod::kTheorem2;
  report.detail = "D(T1,T2) is not strongly connected";
  report.certificate = std::move(cert).value();
  return report;
}

PairSafetyReport AnalyzePairSafety(const Transaction& t1,
                                   const Transaction& t2,
                                   const EngineConfig& config) {
  EngineContext ctx(config);
  return AnalyzePairSafety(t1, t2, &ctx);
}

PairSafetyReport AnalyzePairSafety(const Transaction& t1,
                                   const Transaction& t2,
                                   EngineContext* ctx) {
  return DecisionPipeline::Default().Decide(t1, t2, ctx);
}

}  // namespace dislock
