#include "core/safety.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <limits>
#include <vector>

#include "core/closure.h"
#include "graph/dominator.h"
#include "graph/scc.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dislock {

const char* SafetyVerdictName(SafetyVerdict v) {
  switch (v) {
    case SafetyVerdict::kSafe:
      return "SAFE";
    case SafetyVerdict::kUnsafe:
      return "UNSAFE";
    case SafetyVerdict::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

int SitesSpanned(const Transaction& t1, const Transaction& t2) {
  // Both site lists are sorted and maintained incrementally by the
  // transactions, so the pair count is a linear merge — this runs O(k^2)
  // times per multi-transaction analysis.
  const std::vector<SiteId>& a = t1.TouchedSites();
  const std::vector<SiteId>& b = t2.TouchedSites();
  size_t i = 0;
  size_t j = 0;
  int distinct = 0;
  while (i < a.size() || j < b.size()) {
    ++distinct;
    if (j == b.size() || (i < a.size() && a[i] < b[j])) {
      ++i;
    } else if (i == a.size() || b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return distinct;
}

bool Theorem1Sufficient(const Transaction& t1, const Transaction& t2) {
  ConflictGraph d = BuildConflictGraph(t1, t2);
  return IsStronglyConnected(d.graph);
}

Result<PairSafetyReport> TwoSiteSafetyTest(const Transaction& t1,
                                           const Transaction& t2) {
  PairSafetyReport report;
  report.sites_spanned = SitesSpanned(t1, t2);
  if (report.sites_spanned > 2) {
    return Status::InvalidArgument(
        StrCat("TwoSiteSafetyTest requires <= 2 sites, pair spans ",
               report.sites_spanned));
  }
  report.d = BuildConflictGraph(t1, t2);
  report.d_strongly_connected = IsStronglyConnected(report.d.graph);
  if (report.d_strongly_connected) {
    report.verdict = SafetyVerdict::kSafe;
    report.method = "theorem-2";
    report.detail = "D(T1,T2) is strongly connected";
    return report;
  }
  auto dom = FindDominator(report.d.graph);
  if (!dom.ok()) {
    return Status::Internal(
        "non-strongly-connected D has no dominator: " +
        dom.status().ToString());
  }
  auto cert = BuildUnsafetyCertificate(t1, t2,
                                       report.d.EntitiesOf(dom.value()));
  if (!cert.ok()) {
    return Status::Internal(
        "Theorem 2 certificate construction failed on a two-site pair: " +
        cert.status().ToString());
  }
  report.verdict = SafetyVerdict::kUnsafe;
  report.method = "theorem-2";
  report.detail = "D(T1,T2) is not strongly connected";
  report.certificate = std::move(cert).value();
  return report;
}

PairSafetyReport AnalyzePairSafety(const Transaction& t1,
                                   const Transaction& t2,
                                   const SafetyOptions& options) {
  PairSafetyReport report;
  report.sites_spanned = SitesSpanned(t1, t2);
  report.d = BuildConflictGraph(t1, t2);
  report.d_strongly_connected = IsStronglyConnected(report.d.graph);

  // 1. Theorem 1 (any number of sites).
  if (report.d_strongly_connected) {
    report.verdict = SafetyVerdict::kSafe;
    report.method = "theorem-1";
    report.detail = "D(T1,T2) is strongly connected";
    return report;
  }

  // 2. Theorem 2 (complete at <= 2 sites).
  if (report.sites_spanned <= 2) {
    auto two_site = TwoSiteSafetyTest(t1, t2);
    if (two_site.ok()) return std::move(two_site).value();
    report.verdict = SafetyVerdict::kUnknown;
    report.detail = two_site.status().ToString();
    return report;
  }

  // 3. The dominator-closure loop (see header): complete when the
  //    enumeration covers all dominators and every failure is a proof.
  //    The per-dominator closure runs are independent, so with
  //    options.num_threads > 1 they fan out over a work-stealing pool; the
  //    reduction picks the first certifying dominator in enumeration order
  //    (exactly what the serial scan reports) and cancels dominators past
  //    it, so the report is bit-identical at any thread count.
  {
    std::vector<std::vector<NodeId>> dominators =
        AllDominators(report.d.graph, options.max_dominators + 1);
    bool enumeration_complete =
        static_cast<int64_t>(dominators.size()) <= options.max_dominators;
    if (!enumeration_complete) dominators.pop_back();

    enum class Outcome {
      kProof,      // closure contradiction: X provably certifies nothing
      kUnproven,   // closure failed without a proof, or certificate failed
      kCertified,  // closed w.r.t. X and the certificate verified
    };
    struct DominatorResult {
      Outcome outcome = Outcome::kUnproven;
      std::optional<UnsafetyCertificate> certificate;
    };
    auto evaluate =
        [&](const std::vector<NodeId>& dom_nodes) -> DominatorResult {
      std::vector<EntityId> x = report.d.EntitiesOf(dom_nodes);
      auto closed = CloseWithRespectTo(t1, t2, x);
      if (!closed.ok()) {
        // kUndecided from the closure is a PROOF that X cannot certify
        // unsafety (the contradiction holds in every extension pair).
        return {closed.status().code() == StatusCode::kUndecided
                    ? Outcome::kProof
                    : Outcome::kUnproven,
                std::nullopt};
      }
      // Closed with respect to a dominator: Corollary 2 says unsafe;
      // construct and verify the certificate.
      auto cert = BuildUnsafetyCertificate(t1, t2, x);
      if (!cert.ok()) return {Outcome::kUnproven, std::nullopt};
      return {Outcome::kCertified, std::move(cert).value()};
    };
    auto report_certified = [&](DominatorResult result) {
      report.verdict = SafetyVerdict::kUnsafe;
      report.method = "corollary-2";
      report.detail = "system closes with respect to a dominator of D";
      report.certificate = std::move(result.certificate);
      return report;
    };

    const size_t count = dominators.size();
    const int threads =
        options.num_threads <= 0 ? ThreadPool::HardwareThreads()
                                 : options.num_threads;
    bool all_failures_proven = true;
    if (threads > 1 && count > 1) {
      std::vector<DominatorResult> results(count);
      // Indices past the first certifying one are cancelled; their slots
      // stay kUnproven but are never consulted by the reduction.
      std::atomic<size_t> first_certified{count};
      {
        ThreadPool pool(
            static_cast<int>(std::min<size_t>(threads, count)));
        std::vector<std::future<void>> futures;
        futures.reserve(count);
        for (size_t idx = 0; idx < count; ++idx) {
          futures.push_back(pool.Submit([&, idx] {
            if (idx > first_certified.load(std::memory_order_acquire)) {
              return;  // a smaller index already certified
            }
            results[idx] = evaluate(dominators[idx]);
            if (results[idx].outcome == Outcome::kCertified) {
              size_t seen = first_certified.load(std::memory_order_acquire);
              while (idx < seen &&
                     !first_certified.compare_exchange_weak(
                         seen, idx, std::memory_order_acq_rel)) {
              }
            }
          }));
        }
        for (auto& f : futures) f.get();
      }
      size_t winner = first_certified.load(std::memory_order_acquire);
      if (winner < count) {
        return report_certified(std::move(results[winner]));
      }
      for (const DominatorResult& r : results) {
        if (r.outcome != Outcome::kProof) all_failures_proven = false;
      }
    } else {
      for (const auto& dom_nodes : dominators) {
        DominatorResult result = evaluate(dom_nodes);
        if (result.outcome == Outcome::kCertified) {
          return report_certified(std::move(result));
        }
        if (result.outcome != Outcome::kProof) all_failures_proven = false;
      }
    }
    if (enumeration_complete && all_failures_proven) {
      report.verdict = SafetyVerdict::kSafe;
      report.method = "dominator-closure";
      report.detail = StrCat(
          "all ", dominators.size(),
          " dominators of D provably admit no closed extension pair");
      return report;
    }
  }

  // 4. Exhaustive Lemma 1 fallback.
  if (options.max_extension_pairs > 0) {
    auto exhaustive =
        ExhaustivePairSafety(t1, t2, options.max_extension_pairs);
    if (exhaustive.ok()) {
      report.method = "exhaustive";
      if (exhaustive.value().safe) {
        report.verdict = SafetyVerdict::kSafe;
        report.detail =
            StrCat("all ", exhaustive.value().combinations_checked,
                   " extension pairs are safe");
      } else {
        report.verdict = SafetyVerdict::kUnsafe;
        report.certificate = std::move(exhaustive.value().certificate);
        report.detail = "an unsafe pair of linear extensions exists";
      }
      return report;
    }
    report.detail = exhaustive.status().ToString();
  }

  // 5. The coNP-complete regime: undecided.
  report.verdict = SafetyVerdict::kUnknown;
  report.method = "none";
  if (report.detail.empty()) {
    report.detail = "three or more sites and exhaustive fallback disabled";
  }
  return report;
}

}  // namespace dislock
