#ifndef DISLOCK_CORE_REPORT_H_
#define DISLOCK_CORE_REPORT_H_

#include <string>

#include "core/deadlock.h"
#include "core/multi.h"
#include "core/safety.h"

namespace dislock {

/// Machine-readable (JSON) and human-readable renderings of the analysis
/// reports, for the CLI and for embedding dislock into other tooling. The
/// JSON is hand-rolled (no external dependency) and kept flat: strings,
/// numbers, booleans, arrays of strings.

/// Escapes a string for inclusion in a JSON document.
std::string JsonEscape(const std::string& s);

/// {"dominator": [...], "t1": [...], "t2": [...], "schedule": "...",
///  "separates_above": "...", "separates_below": "..."} — the Theorem 2
/// witness. Shared with the analysis-layer emitters.
std::string CertificateToJson(const UnsafetyCertificate& cert,
                              const DistributedDatabase& db);

/// [{"stage": "theorem1-scc", "attempts": n, "decided": n, "skipped": n,
///   "budget_exhausted": n, "work": n}, ...] — one entry per registered
/// DecisionPipeline stage, in pipeline order. Wall-clock is deliberately
/// omitted: every field of the JSON reports is deterministic (bit-identical
/// across runs and thread counts); timing goes to the bench tables instead.
std::string PipelineStatsToJson(const PipelineStats& stats);

/// {"verdict": "...", "method": "...", "sites": n, "d_nodes": n,
///  "d_arcs": n, "d_strongly_connected": b, "detail": "...",
///  "pipeline": [...], "certificate": {...} | null}
std::string PairReportToJson(const PairSafetyReport& report,
                             const DistributedDatabase& db);

/// {"txns_added": n, "txns_removed": n, "txns_replaced": n,
///  "pairs_reused": n, "pairs_recomputed": n, "cycles_reused": n,
///  "cycles_recomputed": n, "full": b} — the incremental engine's reuse
/// accounting (core/incremental/delta.h).
std::string DeltaStatsToJson(const DeltaStats& delta);

/// {"verdict": "...", "pairs_checked": n, "pairs_cached": n,
/// "cycles_checked": n,
///  "failing_pair": [i, j] | null, "failing_cycle": [...] | null,
///  "pipeline": [...]}
/// Incremental reports additionally carry "delta": {...} (see
/// DeltaStatsToJson); the key is omitted entirely on batch reports, so
/// batch output is byte-identical to what it was before the incremental
/// engine existed.
std::string MultiReportToJson(const MultiSafetyReport& report,
                              const SystemView& view);
std::string MultiReportToJson(const MultiSafetyReport& report,
                              const TransactionSystem& system);

/// {"deadlock_free": b, "states_explored": n, "dead_prefix": "..." | null,
///  "blocked": [{"txn": name, "waits_for": entity}, ...]}
std::string DeadlockReportToJson(const DeadlockReport& report,
                                 const TransactionSystem& system);

/// Multi-line human-readable pair report (verdict, D graph, certificate).
std::string PairReportToText(const PairSafetyReport& report,
                             const DistributedDatabase& db);

}  // namespace dislock

#endif  // DISLOCK_CORE_REPORT_H_
