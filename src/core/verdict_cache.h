#ifndef DISLOCK_CORE_VERDICT_CACHE_H_
#define DISLOCK_CORE_VERDICT_CACHE_H_

// Forwarding header: the verdict cache moved to the src/cache/ subsystem
// when it grew its persistent tier (docs/caching.md). In-repo code
// includes "cache/verdict_cache.h" directly; this shim exists for one
// release so external users of the old path keep compiling, and will be
// removed afterwards.

#include "cache/verdict_cache.h"  // IWYU pragma: export

#endif  // DISLOCK_CORE_VERDICT_CACHE_H_
