#ifndef DISLOCK_CORE_STATS_EXPORT_H_
#define DISLOCK_CORE_STATS_EXPORT_H_

#include "cache/verdict_cache.h"
#include "cache/verdict_store.h"
#include "core/multi.h"
#include "core/safety.h"
#include "obs/stats_sink.h"

namespace dislock {

// The redesigned stats API: every typed stats struct the engine grew
// (PipelineStats, the multi/pair report counters, DeltaStats, the
// verdict-cache Stats) pours itself into one obs::StatsSink under the
// dotted-name taxonomy of core/wire_keys.h / docs/observability.md.
//
// Convention: the owner of a finished report exports it exactly once —
// PassManager::Run for analyze, the session's check command, the tools for
// their own runs. Library code never exports (it only records trace
// spans), so nothing is double counted when reports nest.

// "pipeline.<stage>.{attempts,decided,skipped,budget_exhausted,work}"
// counters. wall_ms stays out, as everywhere.
void ExportPipelineStats(const PipelineStats& stats, obs::StatsSink* sink);

// "pair.analyses", "pair.verdict.<verdict>", "pair.certificates" counters
// plus the report's pipeline stats.
void ExportPairReportStats(const PairSafetyReport& report,
                           obs::StatsSink* sink);

// "multi.analyses", "multi.verdict.<verdict>", "multi.pairs_checked",
// "multi.pairs_cached", "multi.cycles_checked" counters, the report's
// pipeline stats, and — when the report came from the incremental engine —
// its DeltaStats.
void ExportMultiReportStats(const MultiSafetyReport& report,
                            obs::StatsSink* sink);

// "delta.{txns_added,txns_removed,txns_replaced,pairs_reused,
// pairs_recomputed,cycles_reused,cycles_recomputed,full_analyses}" counters.
void ExportDeltaStats(const DeltaStats& delta, obs::StatsSink* sink);

// "cache.hits"/"cache.misses" counters plus "cache.size"/"cache.hit_rate"
// gauges for an engine- or caller-owned PairVerdictCache.
void ExportCacheStats(const PairVerdictCache& cache, obs::StatsSink* sink);

// "cache.{disk_hits,disk_misses,records_loaded,records_flushed,
// records_dropped}" counters plus "cache.disk_records"/
// "cache.file_generation" gauges for a persistent tier-2 store
// (cache/verdict_store.h). Same owner-exports-once convention: the tool
// (or service) that opened the store exports it, exactly once, at
// shutdown.
void ExportStoreStats(const cache::VerdictStore& store,
                      obs::StatsSink* sink);

}  // namespace dislock

#endif  // DISLOCK_CORE_STATS_EXPORT_H_
