#include "core/stats_export.h"

#include <string>

#include "core/wire_keys.h"

namespace dislock {

namespace {

std::string Dotted(const char* a, const char* b) {
  return std::string(a) + "." + b;
}

std::string Dotted(const char* a, const char* b, const char* c) {
  return std::string(a) + "." + b + "." + c;
}

}  // namespace

void ExportPipelineStats(const PipelineStats& stats, obs::StatsSink* sink) {
  if (sink == nullptr) return;
  for (int s = 0; s < kNumDecisionStages; ++s) {
    const StageCounters& c = stats.stages[static_cast<size_t>(s)];
    const char* stage = DecisionStageName(static_cast<DecisionStageId>(s));
    const char* prefix = wire::kMetricPipelinePrefix;
    sink->AddCounter(Dotted(prefix, stage, wire::kAttempts), c.attempts);
    sink->AddCounter(Dotted(prefix, stage, wire::kDecided), c.decided);
    sink->AddCounter(Dotted(prefix, stage, wire::kSkipped), c.skipped);
    sink->AddCounter(Dotted(prefix, stage, wire::kBudgetExhausted),
                     c.budget_exhausted);
    sink->AddCounter(Dotted(prefix, stage, wire::kWork), c.work);
    // wall_ms is measured, not a pure function of the input; it stays out
    // of the metrics block for the same reason it stays out of reports.
  }
}

void ExportPairReportStats(const PairSafetyReport& report,
                           obs::StatsSink* sink) {
  if (sink == nullptr) return;
  sink->AddCounter(Dotted(wire::kMetricPairPrefix, "analyses"), 1);
  sink->AddCounter(Dotted(wire::kMetricPairPrefix, wire::kVerdict,
                          SafetyVerdictName(report.verdict)),
                   1);
  if (report.certificate.has_value()) {
    sink->AddCounter(Dotted(wire::kMetricPairPrefix, "certificates"), 1);
  }
  ExportPipelineStats(report.pipeline, sink);
}

void ExportMultiReportStats(const MultiSafetyReport& report,
                            obs::StatsSink* sink) {
  if (sink == nullptr) return;
  sink->AddCounter(Dotted(wire::kMetricMultiPrefix, "analyses"), 1);
  sink->AddCounter(Dotted(wire::kMetricMultiPrefix, wire::kVerdict,
                          SafetyVerdictName(report.verdict)),
                   1);
  sink->AddCounter(Dotted(wire::kMetricMultiPrefix, wire::kPairsChecked),
                   report.pairs_checked);
  sink->AddCounter(Dotted(wire::kMetricMultiPrefix, wire::kPairsCached),
                   report.pairs_cached);
  sink->AddCounter(Dotted(wire::kMetricMultiPrefix, wire::kCyclesChecked),
                   report.cycles_checked);
  ExportPipelineStats(report.pipeline, sink);
  if (report.delta.has_value()) ExportDeltaStats(*report.delta, sink);
}

void ExportDeltaStats(const DeltaStats& delta, obs::StatsSink* sink) {
  if (sink == nullptr) return;
  const char* prefix = wire::kMetricDeltaPrefix;
  sink->AddCounter(Dotted(prefix, wire::kTxnsAdded), delta.txns_added);
  sink->AddCounter(Dotted(prefix, wire::kTxnsRemoved), delta.txns_removed);
  sink->AddCounter(Dotted(prefix, wire::kTxnsReplaced), delta.txns_replaced);
  sink->AddCounter(Dotted(prefix, wire::kPairsReused), delta.pairs_reused);
  sink->AddCounter(Dotted(prefix, wire::kPairsRecomputed),
                   delta.pairs_recomputed);
  sink->AddCounter(Dotted(prefix, wire::kCyclesReused), delta.cycles_reused);
  sink->AddCounter(Dotted(prefix, wire::kCyclesRecomputed),
                   delta.cycles_recomputed);
  sink->AddCounter(Dotted(prefix, "full_analyses"), delta.full ? 1 : 0);
}

void ExportCacheStats(const PairVerdictCache& cache, obs::StatsSink* sink) {
  if (sink == nullptr) return;
  PairVerdictCache::Stats stats = cache.stats();
  sink->AddCounter(wire::kMetricCacheHits, stats.hits);
  sink->AddCounter(wire::kMetricCacheMisses, stats.misses);
  sink->SetGauge(wire::kMetricCacheSize, static_cast<double>(cache.size()));
  sink->SetGauge(wire::kMetricCacheHitRate, stats.HitRate());
}

void ExportStoreStats(const cache::VerdictStore& store,
                      obs::StatsSink* sink) {
  if (sink == nullptr) return;
  cache::VerdictStore::Stats stats = store.stats();
  sink->AddCounter(wire::kMetricCacheDiskHits, stats.disk_hits);
  sink->AddCounter(wire::kMetricCacheDiskMisses, stats.disk_misses);
  sink->AddCounter(wire::kMetricCacheRecordsLoaded, stats.records_loaded);
  sink->AddCounter(wire::kMetricCacheRecordsFlushed, stats.records_flushed);
  sink->AddCounter(wire::kMetricCacheRecordsDropped, stats.records_dropped);
  sink->SetGauge(wire::kMetricCacheDiskRecords,
                 static_cast<double>(store.disk_records()));
  sink->SetGauge(wire::kMetricCacheFileGeneration,
                 static_cast<double>(store.generation()));
}

}  // namespace dislock
