#include "core/policy.h"

#include <vector>

namespace dislock {

namespace {

std::vector<StepId> StepsOfKind(const Transaction& txn, StepKind kind) {
  std::vector<StepId> out;
  for (StepId s = 0; s < txn.NumSteps(); ++s) {
    if (txn.GetStep(s).kind == kind) out.push_back(s);
  }
  return out;
}

}  // namespace

bool IsTwoPhase(const Transaction& txn) {
  std::vector<StepId> locks = StepsOfKind(txn, StepKind::kLock);
  std::vector<StepId> unlocks = StepsOfKind(txn, StepKind::kUnlock);
  for (StepId u : unlocks) {
    for (StepId l : locks) {
      if (txn.Precedes(u, l)) return false;
    }
  }
  return true;
}

bool IsStronglyTwoPhase(const Transaction& txn) {
  std::vector<StepId> locks = StepsOfKind(txn, StepKind::kLock);
  std::vector<StepId> unlocks = StepsOfKind(txn, StepKind::kUnlock);
  for (StepId l : locks) {
    for (StepId u : unlocks) {
      if (!txn.Precedes(l, u)) return false;
    }
  }
  return true;
}

Transaction MakeTwoPhaseTransaction(const DistributedDatabase* db,
                                    const std::string& name,
                                    const std::vector<EntityId>& entities) {
  Transaction txn(db, name);
  std::vector<StepId> last_at_site(db->NumSites(), kInvalidStep);
  auto add_chained = [&](StepKind kind, EntityId e) {
    StepId s = txn.AddStep(kind, e);
    SiteId site = db->SiteOf(e);
    if (last_at_site[site] != kInvalidStep) {
      txn.AddPrecedence(last_at_site[site], s);
    }
    last_at_site[site] = s;
    return s;
  };

  std::vector<StepId> locks, unlocks;
  for (EntityId e : entities) locks.push_back(add_chained(StepKind::kLock, e));
  for (EntityId e : entities) add_chained(StepKind::kUpdate, e);
  for (EntityId e : entities) {
    unlocks.push_back(add_chained(StepKind::kUnlock, e));
  }
  // Lock point: every lock precedes every unlock.
  for (StepId l : locks) {
    for (StepId u : unlocks) txn.AddPrecedence(l, u);
  }
  return txn;
}

}  // namespace dislock
