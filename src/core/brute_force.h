#ifndef DISLOCK_CORE_BRUTE_FORCE_H_
#define DISLOCK_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <optional>

#include "core/certificate.h"
#include "txn/schedule.h"
#include "txn/system.h"
#include "util/status.h"

namespace dislock {

/// Outcome of an exhaustive safety decision.
struct ExhaustiveResult {
  /// True iff every schedule is serializable.
  bool safe = false;
  /// When unsafe: a verified certificate (for pair oracles) ...
  std::optional<UnsafetyCertificate> certificate;
  /// ... or a bare non-serializable schedule (for the schedule oracle).
  std::optional<Schedule> witness;
  /// Work counters (pairs of total orders, or schedules, examined).
  int64_t combinations_checked = 0;
};

/// Lemma 1 oracle for a pair: enumerates every pair of linear extensions
/// (t1, t2) and tests each totally ordered pair exactly — for total orders
/// strong connectivity of D(t1, t2) is necessary and sufficient (Section 3).
/// Exact for ANY number of sites but exponential; `max_pairs` bounds the
/// number of extension pairs (ResourceExhausted beyond it).
Result<ExhaustiveResult> ExhaustivePairSafety(const Transaction& t1,
                                              const Transaction& t2,
                                              int64_t max_pairs);

/// Ground-truth oracle from first principles: enumerates every legal
/// schedule of the system and checks serializability of each. Exponentially
/// more expensive than ExhaustivePairSafety; used to validate everything
/// else on tiny instances. `max_schedules` bounds the enumeration.
Result<ExhaustiveResult> ExhaustiveScheduleSafety(
    const TransactionSystem& system, int64_t max_schedules);

}  // namespace dislock

#endif  // DISLOCK_CORE_BRUTE_FORCE_H_
