#ifndef DISLOCK_CORE_CLOSURE_H_
#define DISLOCK_CORE_CLOSURE_H_

#include <vector>

#include "txn/transaction.h"
#include "util/status.h"

namespace dislock {

/// Definition 3 check: {T1, T2} is *closed with respect to dominator X* iff
/// for all z in V-X and x, y in X,
///   (Lz precedes Ux in T1) and (Ly precedes Uz in T2)
/// imply
///   (Uy precedes Ux in T1) and (Ly precedes Lx in T2).
/// (V is the node set of D(T1,T2); X need not actually be verified to be a
/// dominator here.)
bool IsClosedWithRespectTo(const Transaction& t1, const Transaction& t2,
                           const std::vector<EntityId>& x_set);

/// Result of the Lemma 2/3 closure procedure.
struct ClosureResult {
  /// T1, T2 with the added precedences (supersets of the inputs' orders).
  Transaction t1;
  Transaction t2;
  /// Number of precedence arcs added across both transactions.
  int precedences_added = 0;
  /// Rounds of the fixpoint loop.
  int iterations = 0;
};

/// Runs the closure construction from the proof of Theorem 2: starting from
/// {T1, T2} with dominator X of D(T1, T2), repeatedly applies Lemma 2 —
/// whenever z in V-X, x, y in X satisfy (Lz <1 Ux) and (Ly <2 Uz), add the
/// precedences (Uy <1 Ux) and (Ly <2 Lx) — until the system is closed with
/// respect to X.
///
/// For two-site transactions Lemma 3 guarantees X remains a dominator of the
/// successive D graphs and the inferences of Lemma 2 never contradict the
/// existing orders, so the procedure always succeeds. For three or more
/// sites it may fail; failure is reported as:
///   * InvalidArgument  — X is not a dominator of D(T1,T2) to begin with;
///   * Undecided        — an inference of Lemma 2 is contradicted (the added
///                        precedence would create a cycle) or X stops being
///                        a dominator, so Corollary 2 cannot be applied.
Result<ClosureResult> CloseWithRespectTo(const Transaction& t1,
                                         const Transaction& t2,
                                         const std::vector<EntityId>& x_set);

/// Flat-kernel closure (EngineConfig::use_flat_kernel): identical contract,
/// verdicts, Status messages, and counters to CloseWithRespectTo, but the
/// fixpoint loop runs on arena-backed flat reachability matrices over the
/// two step DAGs, updated incrementally per added precedence — it never
/// triggers the Transaction reachability-memo rebuild that makes the legacy
/// loop quadratic in practice, and it re-derives the evolving D(T1,T2) from
/// the same matrices instead of re-materializing a ConflictGraph per round.
Result<ClosureResult> CloseWithRespectToFlat(const Transaction& t1,
                                             const Transaction& t2,
                                             const std::vector<EntityId>& x_set);

}  // namespace dislock

#endif  // DISLOCK_CORE_CLOSURE_H_
