#ifndef DISLOCK_CORE_CONFLICT_GRAPH_H_
#define DISLOCK_CORE_CONFLICT_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/digraph.h"
#include "txn/transaction.h"

namespace dislock {

/// The conflict digraph D(T1, T2) of Definition 1:
///   * one node per entity locked-unlocked by *both* transactions,
///   * an arc (x, y) iff Lx precedes Uy in T1 and Ly precedes Ux in T2.
///
/// Geometrically (Fig. 4): (x, y) is an arc iff in every compatible pair of
/// total orders the upper-left corner of the x-rectangle lies above and to
/// the left of the lower-right corner of the y-rectangle. Theorem 1: if
/// D(T1,T2) is strongly connected then {T1,T2} is safe; by Theorem 2 the
/// converse also holds when the entities span at most two sites.
struct ConflictGraph {
  /// The digraph; node i represents entities[i].
  Digraph graph;
  /// Node index -> entity.
  std::vector<EntityId> entities;
  /// Entity -> node index.
  std::unordered_map<EntityId, NodeId> node_of;

  /// Entities for a set of node ids.
  std::vector<EntityId> EntitiesOf(const std::vector<NodeId>& nodes) const {
    std::vector<EntityId> out;
    out.reserve(nodes.size());
    for (NodeId v : nodes) out.push_back(entities[v]);
    return out;
  }
};

/// Entities on which the two transactions CONFLICT: locked-unlocked by
/// both, and not read-locked by both (two shared sections may overlap in a
/// schedule and never conflict, so they play no role in the theory — the
/// "shared locks change the theory very little" remark of Section 1).
/// With exclusive-only transactions this is exactly the paper's V.
std::vector<EntityId> ConflictingEntities(const Transaction& t1,
                                          const Transaction& t2);

/// Builds D(T1, T2) over ConflictingEntities(T1, T2). Both transactions
/// must be over the same database.
ConflictGraph BuildConflictGraph(const Transaction& t1, const Transaction& t2);

/// Renders D(T1,T2) with entity names, e.g. "x -> y, y -> z".
std::string ConflictGraphToString(const ConflictGraph& d,
                                  const DistributedDatabase& db);

}  // namespace dislock

#endif  // DISLOCK_CORE_CONFLICT_GRAPH_H_
