#ifndef DISLOCK_CORE_MULTI_H_
#define DISLOCK_CORE_MULTI_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/incremental/delta.h"
#include "core/safety.h"
#include "graph/digraph.h"
#include "txn/system.h"
#include "util/status.h"

namespace dislock {

class EngineContext;

/// The transaction conflict graph G of Section 6: one vertex per
/// transaction, an (undirected) edge [Ti, Tj] iff Ti and Tj lock-unlock a
/// common entity. Represented as a symmetric digraph so directed traversals
/// of its cycles can be enumerated.
Digraph BuildTransactionConflictGraph(const SystemView& view);
Digraph BuildTransactionConflictGraph(const TransactionSystem& system);

/// Builds the digraph B_ijk for the directed two-path (Ti, Tj, Tk) of G:
///   * a node x_ij for each entity locked-unlocked by both Ti and Tj, and a
///     node y_jk for each entity locked-unlocked by both Tj and Tk;
///   * arcs, all read off the middle transaction Tj:
///       (x_ij, y_jk)   iff Lx precedes Uy in Tj,
///       (x_ij, x'_ij)  iff Lx precedes Lx' in Tj,
///       (y_jk, y'_jk)  iff Uy precedes Uy' in Tj.
/// Node identity is the pair (unordered transaction pair, entity), so the
/// union of B_ijk graphs along a cycle glues at shared transaction pairs.
struct BijkNodeKey {
  int lo_txn;  ///< min(i, j) of the pair the node belongs to
  int hi_txn;  ///< max(i, j)
  EntityId entity;
  auto operator<=>(const BijkNodeKey&) const = default;
};

/// Result of the Proposition 2 analysis.
struct MultiSafetyReport {
  SafetyVerdict verdict = SafetyVerdict::kUnknown;
  /// Condition (a) failure: an unsafe (or undecided) pair, with its report.
  std::optional<std::pair<int, int>> failing_pair;
  std::optional<PairSafetyReport> pair_report;
  /// Condition (b) failure: a directed cycle c of G whose B_c is acyclic.
  std::vector<int> failing_cycle;
  /// Work counters: conflicting pairs decided by running the full pair
  /// procedure, pairs whose safe verdict came from the verdict cache, and
  /// directed cycles examined.
  int pairs_checked = 0;
  int pairs_cached = 0;
  int cycles_checked = 0;
  /// True when the cycle enumeration hit its cap (verdict degraded to
  /// kUnknown if everything else passed).
  bool cycle_budget_exhausted = false;
  /// DecisionPipeline statistics summed over the pairs_checked pairs (cache
  /// hits contribute nothing — no pipeline ran for them). Aggregated in the
  /// deterministic serial-replay order, so like every other field it is
  /// bit-identical at any thread count.
  PipelineStats pipeline;
  /// Reuse accounting of the incremental engine
  /// (core/incremental/engine.h); absent on batch analyses.
  std::optional<DeltaStats> delta;
};

/// Historically a separate struct wrapping a nested SafetyOptions
/// (`.pair_options`) plus cycle/thread/cache knobs; all of it now lives
/// flat in the one EngineConfig (core/decision/config.h).
using MultiSafetyOptions = EngineConfig;

/// Proposition 2: a system T is safe iff (a) every two-transaction
/// subsystem is safe, and (b) for each directed cycle c of G the union B_c
/// of the B_ijk along c has a (directed) cycle.
///
/// Testing (b) is itself coNP-complete in the number of transactions (it
/// already is in the centralized case), so the cycle enumeration is capped.
///
/// Determinism: the report is a pure function of (system, config) minus
/// num_threads — parallel runs reduce to the lexicographically-first
/// failing pair (respectively the first failing cycle in enumeration
/// order), which is exactly what the serial scan reports, and the work
/// counters are reconstructed by replaying the serial scan order over the
/// computed verdicts. Early-exit cancellation only ever skips work the
/// serial scan would not have reached.
MultiSafetyReport AnalyzeMultiSafety(const TransactionSystem& system,
                                     const MultiSafetyOptions& options = {});

/// As above but sharing an existing EngineContext (thread pool, verdict
/// cache, cancellation token) across many calls.
MultiSafetyReport AnalyzeMultiSafety(const TransactionSystem& system,
                                     EngineContext* ctx);

/// The view-based engine entry point both containers route through: a
/// TransactionSystem and a CatalogSnapshot analyze identically when their
/// views agree.
MultiSafetyReport AnalyzeMultiSafety(const SystemView& view,
                                     EngineContext* ctx);

/// Builds B_c for a directed cycle (sequence of transaction indices,
/// traversed cyclically) — exposed for tests and experiments.
Digraph BuildCycleGraph(const SystemView& view, const std::vector<int>& cycle);
Digraph BuildCycleGraph(const TransactionSystem& system,
                        const std::vector<int>& cycle);

/// The flat condition-(b) kernel (EngineConfig::use_flat_kernel): decides
/// HasCycle(BuildCycleGraph(view, cycle)) without materializing a Digraph.
/// The conflicting-pair entity lists are computed once at construction and
/// shared read-only across a pool fan-out; each BcHasCycle call generates
/// B_c's arcs straight into thread-local arena arrays with dense remapped
/// node ids and runs the CSR Kahn kernel. Used by both the batch analysis
/// and the incremental engine; `view` must outlive the checker.
class FlatCycleChecker {
 public:
  /// `pairs` are the conflicting pairs of G (ConflictingPairs order); every
  /// consecutive transaction pair of a checked cycle must appear in it.
  FlatCycleChecker(const SystemView& view,
                   const std::vector<std::pair<int, int>>& pairs);

  /// True iff B_c of the directed cycle has a directed cycle — the same
  /// verdict as HasCycle(BuildCycleGraph(view, cycle)).
  bool BcHasCycle(const std::vector<int>& cycle) const;

 private:
  /// Unordered-pair key, matching the BijkNodeKey canonicalization.
  static int64_t Key(int a, int b) {
    const int lo = a < b ? a : b;
    const int hi = a < b ? b : a;
    return (static_cast<int64_t>(lo) << 32) | static_cast<uint32_t>(hi);
  }

  const SystemView& view_;
  std::unordered_map<int64_t, int> index_;
  std::vector<std::vector<EntityId>> common_;
};

// ---------------------------------------------------------------------------
// Deterministic-replay plumbing, shared between the batch path above and the
// delta path (core/incremental/engine.h). The batch analysis is the special
// case where every verdict was computed this call; the incremental engine
// feeds the same reducers verdicts pulled from its stores.
// ---------------------------------------------------------------------------

/// The conflicting pairs (i < j) of G in the lexicographic scan order of
/// the classic serial loop — the order every reduction replays.
std::vector<std::pair<int, int>> ConflictingPairs(const Digraph& g);

/// One conflicting pair in scan order, with its resolved verdict source.
struct ScanPair {
  std::pair<int, int> txns;  ///< dense indices, first < second
  /// Fingerprint group of the pair (every pair its own group when no
  /// verdict cache is configured). Groups are numbered by first appearance
  /// in scan order.
  int group = 0;
  /// The group representative's report. Consulted only at the group's
  /// first scan appearance; may be null for pairs the serial scan never
  /// reaches (early-exit cancellation skipped them).
  const PairSafetyReport* report = nullptr;
  /// The whole group was pre-decided SAFE by an external verdict cache.
  bool cached_safe = false;
};

/// Replays the serial memoized scan over resolved pair verdicts: counts
/// pairs_checked / pairs_cached, aggregates pipeline statistics, and stops
/// at the lexicographically-first non-safe group. On failure fills
/// verdict / failing_pair / pair_report and returns the failing scan
/// index. `on_checked` fires once per counted group, in scan order (the
/// batch path inserts the verdict into the cache there).
std::optional<size_t> ReplayPairScan(
    const std::vector<ScanPair>& scan, int num_groups,
    const std::function<void(const ScanPair&)>& on_checked,
    MultiSafetyReport* report);

/// Reduces condition (b): given the filtered directed cycles in enumeration
/// order and the index of the first cycle whose B_c is acyclic (or
/// to_check->size() if none), fills cycles_checked / verdict /
/// failing_cycle / cycle_budget_exhausted exactly like the serial loop.
/// Consumes `to_check` (the failing cycle is moved out).
void ReduceCycleScan(std::vector<std::vector<int>>* to_check,
                     size_t first_acyclic, bool budget_exhausted,
                     MultiSafetyReport* report);

}  // namespace dislock

#endif  // DISLOCK_CORE_MULTI_H_
