#include "core/paper.h"

#include "txn/builder.h"

namespace dislock {

PaperInstance MakeFig1Instance() {
  PaperInstance inst;
  inst.db = std::make_shared<DistributedDatabase>(2);
  inst.db->MustAddEntity("x", 0);
  inst.db->MustAddEntity("y", 0);
  inst.db->MustAddEntity("w", 1);
  inst.db->MustAddEntity("z", 1);
  inst.system = std::make_shared<TransactionSystem>(inst.db.get());

  // T1: lock section on x (site 1), then on w (site 2).
  TransactionBuilder b1(inst.db.get(), "T1");
  b1.Lock("x");
  b1.Update("x");
  StepId ux = b1.Unlock("x");
  StepId lw = b1.Lock("w");
  b1.Update("w");
  b1.Unlock("w");
  b1.Edge(ux, lw);
  inst.system->Add(b1.Build());

  // T2: lock section on w (site 2), then on x (site 1).
  TransactionBuilder b2(inst.db.get(), "T2");
  StepId lw2 = b2.Lock("w");
  b2.Update("w");
  StepId uw2 = b2.Unlock("w");
  StepId lx2 = b2.Lock("x");
  b2.Update("x");
  b2.Unlock("x");
  (void)lw2;
  b2.Edge(uw2, lx2);
  inst.system->Add(b2.Build());

  inst.description =
      "Fig. 1 (reconstruction): two-site pair with a non-serializable "
      "schedule";
  return inst;
}

PaperInstance MakeFig2Instance() {
  PaperInstance inst;
  inst.db = std::make_shared<DistributedDatabase>(1);
  inst.db->MustAddEntity("x", 0);
  inst.db->MustAddEntity("y", 0);
  inst.db->MustAddEntity("z", 0);
  inst.system = std::make_shared<TransactionSystem>(inst.db.get());

  // t1 = Lx Ly x y Ux Uy Lz z Uz, exactly as on the Fig. 2 axis.
  TransactionBuilder b1(inst.db.get(), "t1");
  b1.Lock("x");
  b1.Lock("y");
  b1.Update("x");
  b1.Update("y");
  b1.Unlock("x");
  b1.Unlock("y");
  b1.Lock("z");
  b1.Update("z");
  b1.Unlock("z");
  inst.system->Add(b1.Build());

  // t2 = Lz z Uz Ly Lx x y Ux Uy: locks z first, then x and y.
  TransactionBuilder b2(inst.db.get(), "t2");
  b2.Lock("z");
  b2.Update("z");
  b2.Unlock("z");
  b2.Lock("y");
  b2.Lock("x");
  b2.Update("x");
  b2.Update("y");
  b2.Unlock("x");
  b2.Unlock("y");
  inst.system->Add(b2.Build());

  inst.description =
      "Fig. 2 (reconstruction): centralized totally ordered pair; a curve "
      "separates the x- and z-rectangles";
  return inst;
}

PaperInstance MakeFig3Instance() {
  PaperInstance inst;
  inst.db = std::make_shared<DistributedDatabase>(2);
  inst.db->MustAddEntity("x", 0);
  inst.db->MustAddEntity("y", 1);
  inst.system = std::make_shared<TransactionSystem>(inst.db.get());

  // Both transactions hold an x section at site 1 and a y section at site 2
  // with NO cross-site ordering: the two sections are concurrent.
  for (const char* name : {"T1", "T2"}) {
    TransactionBuilder b(inst.db.get(), name);
    b.Lock("x");
    b.Update("x");
    b.Unlock("x");
    b.Lock("y");
    b.Update("y");
    b.Unlock("y");
    inst.system->Add(b.Build());
  }

  inst.description =
      "Fig. 3 (reconstruction): unsafe two-site pair where one extension "
      "pair is safe and another is unsafe (Lemma 1)";
  return inst;
}

PaperInstance MakeFig4Instance() {
  PaperInstance inst;
  inst.db = std::make_shared<DistributedDatabase>(2);
  inst.db->MustAddEntity("x", 0);
  inst.db->MustAddEntity("y", 1);
  inst.system = std::make_shared<TransactionSystem>(inst.db.get());

  // Both transactions keep their x and y sections overlapping (Lx < Uy and
  // Ly < Ux), which realizes both arcs (x, y) and (y, x) of Definition 1:
  //   (x, y) needs Lx <1 Uy and Ly <2 Ux;  (y, x) needs Ly <1 Ux and
  //   Lx <2 Uy. D(T1, T2) is then the 2-cycle x <-> y: strongly connected.
  for (const char* name : {"T1", "T2"}) {
    TransactionBuilder b(inst.db.get(), name);
    StepId lx = b.Lock("x");
    b.Update("x");
    StepId ux = b.Unlock("x");
    StepId ly = b.Lock("y");
    b.Update("y");
    StepId uy = b.Unlock("y");
    b.Edge(ly, ux).Edge(lx, uy);
    inst.system->Add(b.Build());
  }

  inst.description =
      "Fig. 4 (reconstruction): two-site pair whose D(T1,T2) is strongly "
      "connected, hence safe by Theorem 1";
  return inst;
}

PaperInstance MakeFig5Instance() {
  PaperInstance inst;
  inst.db = std::make_shared<DistributedDatabase>(4);
  inst.db->MustAddEntity("x1", 0);
  inst.db->MustAddEntity("x2", 1);
  inst.db->MustAddEntity("y1", 2);
  inst.db->MustAddEntity("y2", 3);
  inst.system = std::make_shared<TransactionSystem>(inst.db.get());

  // T1 precedences (beyond each Lv -> Uv pair):
  //   Lx1 -> Ux2, Lx2 -> Ux1   (realizes the arcs x1 <-> x2 of D)
  //   Ly1 -> Uy2, Ly2 -> Uy1   (realizes y1 <-> y2)
  //   Ly1 -> Ux1, Ly2 -> Ux2   (the closure-contradiction pattern)
  //   Lx1 -> Uy1               (realizes the arc x1 -> y1)
  {
    TransactionBuilder b(inst.db.get(), "T1");
    StepId lx1 = b.Lock("x1"), ux1 = b.Unlock("x1");
    StepId lx2 = b.Lock("x2"), ux2 = b.Unlock("x2");
    StepId ly1 = b.Lock("y1"), uy1 = b.Unlock("y1");
    StepId ly2 = b.Lock("y2"), uy2 = b.Unlock("y2");
    b.Edge(lx1, ux2).Edge(lx2, ux1);
    b.Edge(ly1, uy2).Edge(ly2, uy1);
    b.Edge(ly1, ux1).Edge(ly2, ux2);
    b.Edge(lx1, uy1);
    inst.system->Add(b.Build());
  }

  // T2 precedences:
  //   Lx2 -> Ux1, Lx1 -> Ux2
  //   Ly2 -> Uy1, Ly1 -> Uy2
  //   Lx2 -> Uy1, Lx1 -> Uy2   (the mirrored closure-contradiction pattern)
  //   Ly1 -> Ux1               (second half of the arc x1 -> y1)
  {
    TransactionBuilder b(inst.db.get(), "T2");
    StepId lx1 = b.Lock("x1"), ux1 = b.Unlock("x1");
    StepId lx2 = b.Lock("x2"), ux2 = b.Unlock("x2");
    StepId ly1 = b.Lock("y1"), uy1 = b.Unlock("y1");
    StepId ly2 = b.Lock("y2"), uy2 = b.Unlock("y2");
    b.Edge(lx2, ux1).Edge(lx1, ux2);
    b.Edge(ly2, uy1).Edge(ly1, uy2);
    b.Edge(lx2, uy1).Edge(lx1, uy2);
    b.Edge(ly1, ux1);
    inst.system->Add(b.Build());
  }

  inst.description =
      "Fig. 5 (reconstruction): four-site safe pair whose D(T1,T2) is not "
      "strongly connected";
  return inst;
}

}  // namespace dislock
