#include "core/closure.h"

#include <algorithm>
#include <set>

#include "core/conflict_graph.h"
#include "graph/csr.h"
#include "graph/dominator.h"
#include "util/arena.h"
#include "util/bitset.h"
#include "util/string_util.h"

namespace dislock {

namespace {

/// Common conflicting entities of the pair (the V of D(T1,T2)).
std::vector<EntityId> CommonLocked(const Transaction& t1,
                                   const Transaction& t2) {
  return ConflictingEntities(t1, t2);
}

/// A Definition 3 violation: the antecedent holds but a consequent fails.
struct Violation {
  EntityId z, x, y;
  bool found = false;
};

Violation FindViolation(const Transaction& t1, const Transaction& t2,
                        const std::set<EntityId>& x_set,
                        const std::vector<EntityId>& common) {
  Violation v;
  for (EntityId z : common) {
    if (x_set.count(z) > 0) continue;
    for (EntityId x : x_set) {
      // Antecedent half 1: Lz precedes Ux in T1.
      if (!t1.Precedes(t1.LockStep(z), t1.UnlockStep(x))) continue;
      for (EntityId y : x_set) {
        // Antecedent half 2: Ly precedes Uz in T2.
        if (!t2.Precedes(t2.LockStep(y), t2.UnlockStep(z))) continue;
        // Consequent (Definition 3): Uy <1 Ux and Ly <2 Lx. With x == y the
        // first conjunct is unsatisfiable; Lemma 2 shows x == y cannot
        // satisfy the antecedent when X is a dominator, so flagging it as a
        // violation is correct (callers re-verify the dominator).
        bool ok = x != y && t1.Precedes(t1.UnlockStep(y), t1.UnlockStep(x)) &&
                  t2.Precedes(t2.LockStep(y), t2.LockStep(x));
        if (!ok) {
          v.z = z;
          v.x = x;
          v.y = y;
          v.found = true;
          return v;
        }
      }
    }
  }
  return v;
}

}  // namespace

bool IsClosedWithRespectTo(const Transaction& t1, const Transaction& t2,
                           const std::vector<EntityId>& x_set) {
  std::set<EntityId> xs(x_set.begin(), x_set.end());
  std::vector<EntityId> common = CommonLocked(t1, t2);
  return !FindViolation(t1, t2, xs, common).found;
}

Result<ClosureResult> CloseWithRespectTo(const Transaction& t1,
                                         const Transaction& t2,
                                         const std::vector<EntityId>& x_set) {
  ClosureResult result{t1, t2, 0, 0};
  std::set<EntityId> xs(x_set.begin(), x_set.end());
  std::vector<EntityId> common = CommonLocked(t1, t2);

  // Verify X is a dominator of D(T1,T2).
  {
    ConflictGraph d = BuildConflictGraph(t1, t2);
    std::vector<NodeId> nodes;
    for (EntityId e : x_set) {
      auto it = d.node_of.find(e);
      if (it == d.node_of.end()) {
        return Status::InvalidArgument(StrCat(
            "entity '", t1.db().NameOf(e), "' is not commonly locked"));
      }
      nodes.push_back(it->second);
    }
    if (!IsDominator(d.graph, nodes)) {
      return Status::InvalidArgument("X is not a dominator of D(T1,T2)");
    }
  }

  // Fixpoint loop. Every round adds at least one precedence between steps of
  // the O(|V|) lock/unlock steps, so it terminates within O(|V|^2) rounds.
  const int max_rounds = 4 * static_cast<int>(common.size()) *
                             static_cast<int>(common.size()) +
                         8;
  for (int round = 0; round < max_rounds; ++round) {
    ++result.iterations;
    Violation v = FindViolation(result.t1, result.t2, xs, common);
    if (!v.found) return result;

    if (v.x == v.y) {
      return Status::Undecided(
          "Lemma 2 antecedent holds with x == y: X is no longer a dominator "
          "(possible only with three or more sites)");
    }
    // Lemma 2's inference requires the added precedences to be consistent
    // with the existing orders: Ux must not precede Uy in T1 and Lx must not
    // precede Ly in T2. Lemma 3 guarantees this at <= 2 sites.
    const Transaction& c1 = result.t1;
    const Transaction& c2 = result.t2;
    if (c1.Precedes(c1.UnlockStep(v.x), c1.UnlockStep(v.y)) ||
        c2.Precedes(c2.LockStep(v.x), c2.LockStep(v.y))) {
      return Status::Undecided(
          "Lemma 2 inference contradicts the existing partial orders "
          "(possible only with three or more sites)");
    }
    if (!c1.Precedes(c1.UnlockStep(v.y), c1.UnlockStep(v.x))) {
      result.t1.AddPrecedence(result.t1.UnlockStep(v.y),
                              result.t1.UnlockStep(v.x));
      ++result.precedences_added;
    }
    if (!c2.Precedes(c2.LockStep(v.y), c2.LockStep(v.x))) {
      result.t2.AddPrecedence(result.t2.LockStep(v.y),
                              result.t2.LockStep(v.x));
      ++result.precedences_added;
    }

    // Re-verify that X is still a dominator of the evolved D graph (Lemma 3
    // guarantees it for two sites; for more sites it can fail).
    ConflictGraph d = BuildConflictGraph(result.t1, result.t2);
    std::vector<NodeId> nodes;
    for (EntityId e : x_set) nodes.push_back(d.node_of.at(e));
    if (!IsDominator(d.graph, nodes)) {
      return Status::Undecided(
          "X stopped being a dominator during closure (possible only with "
          "three or more sites)");
    }
  }
  return Status::Internal("closure did not converge within its round bound");
}

namespace {

/// The flat closure's working state for one transaction: its strict partial
/// order as a reflexive-transitive-closure bitset matrix over step ids,
/// updated incrementally as the closure adds precedence arcs.
struct FlatOrder {
  int num_steps = 0;
  size_t words = 0;        ///< words per row
  uint64_t* rows = nullptr;  ///< num_steps rows, arena-owned

  void Build(const Transaction& t, Arena* arena) {
    num_steps = t.NumSteps();
    words = bits::WordsForBits(static_cast<size_t>(num_steps));
    rows = arena->AllocateZeroed<uint64_t>(
        static_cast<size_t>(num_steps) * words);
    CsrGraph csr = BuildCsr(t.order(), arena);
    ReachabilityWordsOnCsr(csr, rows, arena);
  }

  uint64_t* Row(StepId s) {
    return rows + static_cast<size_t>(s) * words;
  }
  const uint64_t* Row(StepId s) const {
    return rows + static_cast<size_t>(s) * words;
  }

  /// Transaction::Precedes semantics: strict (a != b) transitive order.
  bool Precedes(StepId a, StepId b) const {
    return a != b && bits::TestBit(Row(a), static_cast<size_t>(b));
  }

  /// Registers the new arc u -> v: every row that reaches u absorbs v's
  /// row. One pass over the matrix, no rebuild — this is what replaces the
  /// legacy loop's full Reachability reconstruction per added precedence.
  void AddArc(StepId u, StepId v) {
    const uint64_t* vrow = Row(v);
    for (int a = 0; a < num_steps; ++a) {
      uint64_t* arow = Row(a);
      if (arow == vrow) continue;  // v's row already contains itself
      if (bits::TestBit(arow, static_cast<size_t>(u))) {
        bits::OrWords(arow, vrow, words);
      }
    }
  }
};

/// D(T1,T2) evaluated directly from the two flat orders. Returns true iff
/// X (given as a membership mask over `common` indices) is a dominator of
/// the *current* D: no arc from V - X into X. Matches IsDominator over
/// BuildConflictGraph byte for byte because the arc predicate is the same
/// pair of strict-precedence queries.
bool FlatXIsDominator(const FlatOrder& o1, const FlatOrder& o2,
                      const std::vector<EntityId>& common,
                      const StepId* lock1, const StepId* unlock1,
                      const StepId* lock2, const StepId* unlock2,
                      const uint8_t* in_x, int num_in_x) {
  const int k = static_cast<int>(common.size());
  if (num_in_x == 0 || num_in_x >= k) return false;
  for (int i = 0; i < k; ++i) {
    if (in_x[i]) continue;  // arcs from V - X only
    for (int j = 0; j < k; ++j) {
      if (!in_x[j] || j == i) continue;
      // Arc (i, j) of D: Lx_i <1 Ux_j and Lx_j <2 Ux_i.
      if (o1.Precedes(lock1[i], unlock1[j]) &&
          o2.Precedes(lock2[j], unlock2[i])) {
        return false;  // incoming arc from V - X
      }
    }
  }
  return true;
}

}  // namespace

Result<ClosureResult> CloseWithRespectToFlat(
    const Transaction& t1, const Transaction& t2,
    const std::vector<EntityId>& x_set) {
  ClosureResult result{t1, t2, 0, 0};
  std::vector<EntityId> common = CommonLocked(t1, t2);
  const int k = static_cast<int>(common.size());

  Arena* arena = ScratchArena();
  ArenaScope scope(arena);

  // Dense membership + step-id tables over the V = `common` index space.
  uint8_t* in_x = arena->AllocateZeroed<uint8_t>(static_cast<size_t>(k));
  StepId* lock1 = arena->AllocateArray<StepId>(static_cast<size_t>(k));
  StepId* unlock1 = arena->AllocateArray<StepId>(static_cast<size_t>(k));
  StepId* lock2 = arena->AllocateArray<StepId>(static_cast<size_t>(k));
  StepId* unlock2 = arena->AllocateArray<StepId>(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    lock1[i] = t1.LockStep(common[i]);
    unlock1[i] = t1.UnlockStep(common[i]);
    lock2[i] = t2.LockStep(common[i]);
    unlock2[i] = t2.UnlockStep(common[i]);
  }

  // Validate X in two passes mirroring the legacy order exactly: first every
  // member must be commonly locked (first offender reported by name), only
  // then are duplicates rejected (legacy IsDominator sees them after the
  // whole mapping loop succeeded).
  for (EntityId e : x_set) {
    if (!std::binary_search(common.begin(), common.end(), e)) {
      return Status::InvalidArgument(
          StrCat("entity '", t1.db().NameOf(e), "' is not commonly locked"));
    }
  }
  int num_in_x = 0;
  bool duplicate = false;
  for (EntityId e : x_set) {
    const int i = static_cast<int>(
        std::lower_bound(common.begin(), common.end(), e) - common.begin());
    if (in_x[i]) duplicate = true;
    in_x[i] = 1;
  }
  for (int i = 0; i < k; ++i) num_in_x += in_x[i];
  if (duplicate) {
    return Status::InvalidArgument("X is not a dominator of D(T1,T2)");
  }

  FlatOrder o1, o2;
  o1.Build(t1, arena);
  o2.Build(t2, arena);

  if (!FlatXIsDominator(o1, o2, common, lock1, unlock1, lock2, unlock2, in_x,
                        num_in_x)) {
    return Status::InvalidArgument("X is not a dominator of D(T1,T2)");
  }

  // Ascending-id X iteration, mirroring the legacy std::set<EntityId> scan.
  std::vector<int> x_idx;
  x_idx.reserve(static_cast<size_t>(num_in_x));
  for (int i = 0; i < k; ++i) {
    if (in_x[i]) x_idx.push_back(i);
  }

  const int max_rounds = 4 * k * k + 8;
  for (int round = 0; round < max_rounds; ++round) {
    ++result.iterations;

    // FindViolation on the evolving flat orders: identical scan order (z
    // ascending over common minus X, then x, then y ascending over X).
    int vz = -1, vx = -1, vy = -1;
    for (int z = 0; z < k && vz < 0; ++z) {
      if (in_x[z]) continue;
      for (int x : x_idx) {
        if (!o1.Precedes(lock1[z], unlock1[x])) continue;
        bool stop = false;
        for (int y : x_idx) {
          if (!o2.Precedes(lock2[y], unlock2[z])) continue;
          bool ok = x != y && o1.Precedes(unlock1[y], unlock1[x]) &&
                    o2.Precedes(lock2[y], lock2[x]);
          if (!ok) {
            vz = z;
            vx = x;
            vy = y;
            stop = true;
            break;
          }
        }
        if (stop) break;
      }
    }
    if (vz < 0) return result;

    if (vx == vy) {
      return Status::Undecided(
          "Lemma 2 antecedent holds with x == y: X is no longer a dominator "
          "(possible only with three or more sites)");
    }
    if (o1.Precedes(unlock1[vx], unlock1[vy]) ||
        o2.Precedes(lock2[vx], lock2[vy])) {
      return Status::Undecided(
          "Lemma 2 inference contradicts the existing partial orders "
          "(possible only with three or more sites)");
    }
    if (!o1.Precedes(unlock1[vy], unlock1[vx])) {
      result.t1.AddPrecedence(unlock1[vy], unlock1[vx]);
      o1.AddArc(unlock1[vy], unlock1[vx]);
      ++result.precedences_added;
    }
    if (!o2.Precedes(lock2[vy], lock2[vx])) {
      result.t2.AddPrecedence(lock2[vy], lock2[vx]);
      o2.AddArc(lock2[vy], lock2[vx]);
      ++result.precedences_added;
    }

    if (!FlatXIsDominator(o1, o2, common, lock1, unlock1, lock2, unlock2,
                          in_x, num_in_x)) {
      return Status::Undecided(
          "X stopped being a dominator during closure (possible only with "
          "three or more sites)");
    }
  }
  return Status::Internal("closure did not converge within its round bound");
}

}  // namespace dislock
