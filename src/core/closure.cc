#include "core/closure.h"

#include <set>

#include "core/conflict_graph.h"
#include "graph/dominator.h"
#include "util/string_util.h"

namespace dislock {

namespace {

/// Common conflicting entities of the pair (the V of D(T1,T2)).
std::vector<EntityId> CommonLocked(const Transaction& t1,
                                   const Transaction& t2) {
  return ConflictingEntities(t1, t2);
}

/// A Definition 3 violation: the antecedent holds but a consequent fails.
struct Violation {
  EntityId z, x, y;
  bool found = false;
};

Violation FindViolation(const Transaction& t1, const Transaction& t2,
                        const std::set<EntityId>& x_set,
                        const std::vector<EntityId>& common) {
  Violation v;
  for (EntityId z : common) {
    if (x_set.count(z) > 0) continue;
    for (EntityId x : x_set) {
      // Antecedent half 1: Lz precedes Ux in T1.
      if (!t1.Precedes(t1.LockStep(z), t1.UnlockStep(x))) continue;
      for (EntityId y : x_set) {
        // Antecedent half 2: Ly precedes Uz in T2.
        if (!t2.Precedes(t2.LockStep(y), t2.UnlockStep(z))) continue;
        // Consequent (Definition 3): Uy <1 Ux and Ly <2 Lx. With x == y the
        // first conjunct is unsatisfiable; Lemma 2 shows x == y cannot
        // satisfy the antecedent when X is a dominator, so flagging it as a
        // violation is correct (callers re-verify the dominator).
        bool ok = x != y && t1.Precedes(t1.UnlockStep(y), t1.UnlockStep(x)) &&
                  t2.Precedes(t2.LockStep(y), t2.LockStep(x));
        if (!ok) {
          v.z = z;
          v.x = x;
          v.y = y;
          v.found = true;
          return v;
        }
      }
    }
  }
  return v;
}

}  // namespace

bool IsClosedWithRespectTo(const Transaction& t1, const Transaction& t2,
                           const std::vector<EntityId>& x_set) {
  std::set<EntityId> xs(x_set.begin(), x_set.end());
  std::vector<EntityId> common = CommonLocked(t1, t2);
  return !FindViolation(t1, t2, xs, common).found;
}

Result<ClosureResult> CloseWithRespectTo(const Transaction& t1,
                                         const Transaction& t2,
                                         const std::vector<EntityId>& x_set) {
  ClosureResult result{t1, t2, 0, 0};
  std::set<EntityId> xs(x_set.begin(), x_set.end());
  std::vector<EntityId> common = CommonLocked(t1, t2);

  // Verify X is a dominator of D(T1,T2).
  {
    ConflictGraph d = BuildConflictGraph(t1, t2);
    std::vector<NodeId> nodes;
    for (EntityId e : x_set) {
      auto it = d.node_of.find(e);
      if (it == d.node_of.end()) {
        return Status::InvalidArgument(StrCat(
            "entity '", t1.db().NameOf(e), "' is not commonly locked"));
      }
      nodes.push_back(it->second);
    }
    if (!IsDominator(d.graph, nodes)) {
      return Status::InvalidArgument("X is not a dominator of D(T1,T2)");
    }
  }

  // Fixpoint loop. Every round adds at least one precedence between steps of
  // the O(|V|) lock/unlock steps, so it terminates within O(|V|^2) rounds.
  const int max_rounds = 4 * static_cast<int>(common.size()) *
                             static_cast<int>(common.size()) +
                         8;
  for (int round = 0; round < max_rounds; ++round) {
    ++result.iterations;
    Violation v = FindViolation(result.t1, result.t2, xs, common);
    if (!v.found) return result;

    if (v.x == v.y) {
      return Status::Undecided(
          "Lemma 2 antecedent holds with x == y: X is no longer a dominator "
          "(possible only with three or more sites)");
    }
    // Lemma 2's inference requires the added precedences to be consistent
    // with the existing orders: Ux must not precede Uy in T1 and Lx must not
    // precede Ly in T2. Lemma 3 guarantees this at <= 2 sites.
    const Transaction& c1 = result.t1;
    const Transaction& c2 = result.t2;
    if (c1.Precedes(c1.UnlockStep(v.x), c1.UnlockStep(v.y)) ||
        c2.Precedes(c2.LockStep(v.x), c2.LockStep(v.y))) {
      return Status::Undecided(
          "Lemma 2 inference contradicts the existing partial orders "
          "(possible only with three or more sites)");
    }
    if (!c1.Precedes(c1.UnlockStep(v.y), c1.UnlockStep(v.x))) {
      result.t1.AddPrecedence(result.t1.UnlockStep(v.y),
                              result.t1.UnlockStep(v.x));
      ++result.precedences_added;
    }
    if (!c2.Precedes(c2.LockStep(v.y), c2.LockStep(v.x))) {
      result.t2.AddPrecedence(result.t2.LockStep(v.y),
                              result.t2.LockStep(v.x));
      ++result.precedences_added;
    }

    // Re-verify that X is still a dominator of the evolved D graph (Lemma 3
    // guarantees it for two sites; for more sites it can fail).
    ConflictGraph d = BuildConflictGraph(result.t1, result.t2);
    std::vector<NodeId> nodes;
    for (EntityId e : x_set) nodes.push_back(d.node_of.at(e));
    if (!IsDominator(d.graph, nodes)) {
      return Status::Undecided(
          "X stopped being a dominator during closure (possible only with "
          "three or more sites)");
    }
  }
  return Status::Internal("closure did not converge within its round bound");
}

}  // namespace dislock
