#ifndef DISLOCK_CORE_SAFETY_H_
#define DISLOCK_CORE_SAFETY_H_

#include <optional>
#include <string>

#include "core/brute_force.h"
#include "core/certificate.h"
#include "core/conflict_graph.h"
#include "txn/transaction.h"
#include "util/status.h"

namespace dislock {

/// Three-valued safety answer. kUnknown arises only for pairs spanning
/// three or more sites when the exhaustive fallback is disabled or over
/// budget — the regime where the decision problem is coNP-complete
/// (Theorem 3), so an efficient complete test cannot be expected.
enum class SafetyVerdict { kSafe, kUnsafe, kUnknown };

const char* SafetyVerdictName(SafetyVerdict v);

/// Tuning knobs for AnalyzePairSafety.
struct SafetyOptions {
  /// Budget for the Lemma 1 exhaustive fallback (pairs of linear
  /// extensions); 0 disables it.
  int64_t max_extension_pairs = 1 << 20;
  /// How many dominators to attempt for the Corollary 2 closure test on
  /// pairs spanning three or more sites. When the enumeration is complete
  /// (the pair has at most this many dominators) the closure loop decides
  /// safety EXACTLY — see AnalyzePairSafety — so this knob is the "2^n" of
  /// the coNP-complete regime.
  int64_t max_dominators = 1024;
  /// Worker threads for the dominator-closure loop on pairs spanning three
  /// or more sites (the per-dominator closure runs are independent).
  /// 1 = serial (default), 0 = one per hardware thread. The report is
  /// bit-identical at any thread count: the reduction picks the first
  /// certifying dominator in enumeration order, exactly as the serial loop
  /// does.
  int num_threads = 1;
};

/// Everything the analyzer can say about a pair.
struct PairSafetyReport {
  SafetyVerdict verdict = SafetyVerdict::kUnknown;
  /// Which result decided: "theorem-1", "theorem-2", "corollary-2",
  /// "exhaustive", or "none".
  std::string method = "none";
  /// The conflict digraph D(T1, T2) of Definition 1.
  ConflictGraph d;
  bool d_strongly_connected = false;
  /// Number of distinct sites hosting entities touched by the pair.
  int sites_spanned = 0;
  /// When unsafe: a verified certificate.
  std::optional<UnsafetyCertificate> certificate;
  std::string detail;
};

/// Number of distinct sites hosting entities touched by either transaction.
int SitesSpanned(const Transaction& t1, const Transaction& t2);

/// Theorem 1 sufficient test: true iff D(T1,T2) is strongly connected, in
/// which case the pair is safe regardless of the number of sites.
bool Theorem1Sufficient(const Transaction& t1, const Transaction& t2);

/// The complete two-site decision procedure of Theorem 2 / Corollary 1:
/// {T1, T2} spanning at most two sites is safe iff D(T1, T2) is strongly
/// connected; when unsafe a certificate is constructed. O(n^2).
/// Returns InvalidArgument if the pair spans more than two sites.
Result<PairSafetyReport> TwoSiteSafetyTest(const Transaction& t1,
                                           const Transaction& t2);

/// The general pair analyzer. Strategy, in order:
///   1. Theorem 1: D strongly connected -> safe (any sites).
///   2. <= 2 sites: Theorem 2 -> unsafe with certificate.
///   3. >= 3 sites: the dominator-closure loop. For each dominator X of D,
///      run the Lemma 2/3 closure:
///        * closure converges -> Corollary 2 -> unsafe, with certificate;
///        * closure derives a contradiction -> PROOF that no compatible
///          pair of total orders is closed with respect to X (the forced
///          precedences hold in every extension), so X certifies nothing.
///      Every unsafe system has an unsafe extension pair (Lemma 1), whose
///      D(t1,t2) has a dominator, with respect to which the pair is closed;
///      that dominator is also a dominator of D(T1,T2) (extensions only add
///      arcs over the same vertex set). Hence if the enumeration covered
///      ALL dominators and every closure failed with a proof, the system is
///      SAFE (method "dominator-closure"). The number of dominators can be
///      exponential — this is exactly where Theorem 3's coNP-hardness
///      lives (dominators of the reduction encode truth assignments).
///   4. Exhaustive Lemma 1 fallback within options.max_extension_pairs.
///   5. Otherwise kUnknown.
PairSafetyReport AnalyzePairSafety(const Transaction& t1,
                                   const Transaction& t2,
                                   const SafetyOptions& options = {});

}  // namespace dislock

#endif  // DISLOCK_CORE_SAFETY_H_
