#ifndef DISLOCK_CORE_SAFETY_H_
#define DISLOCK_CORE_SAFETY_H_

#include <optional>
#include <string>

#include "core/brute_force.h"
#include "core/certificate.h"
#include "core/conflict_graph.h"
#include "core/decision/config.h"
#include "core/decision/method.h"
#include "core/decision/stats.h"
#include "txn/transaction.h"
#include "util/status.h"

namespace dislock {

class EngineContext;

/// Three-valued safety answer. kUnknown arises only for pairs spanning
/// three or more sites when every fallback stage is disabled or over
/// budget — the regime where the decision problem is coNP-complete
/// (Theorem 3), so an efficient complete test cannot be expected.
enum class SafetyVerdict { kSafe, kUnsafe, kUnknown };

const char* SafetyVerdictName(SafetyVerdict v);

/// Tuning knobs for the decision engine. Historically SafetyOptions,
/// MultiSafetyOptions and AnalysisOptions were three separate structs
/// duplicating these fields; all three are now the one EngineConfig
/// (core/decision/config.h).
using SafetyOptions = EngineConfig;

/// Everything the analyzer can say about a pair.
struct PairSafetyReport {
  SafetyVerdict verdict = SafetyVerdict::kUnknown;
  /// Which result decided (see core/decision/method.h).
  DecisionMethod method = DecisionMethod::kNone;
  /// The conflict digraph D(T1, T2) of Definition 1.
  ConflictGraph d;
  bool d_strongly_connected = false;
  /// Number of distinct sites hosting entities touched by the pair.
  int sites_spanned = 0;
  /// When unsafe: a verified certificate.
  std::optional<UnsafetyCertificate> certificate;
  std::string detail;
  /// Per-stage counters of the DecisionPipeline run that produced this
  /// report (attempts/decided/skipped/budget-exhausted/work per stage).
  PipelineStats pipeline;
};

/// Number of distinct sites hosting entities touched by either transaction.
int SitesSpanned(const Transaction& t1, const Transaction& t2);

/// Theorem 1 sufficient test: true iff D(T1,T2) is strongly connected, in
/// which case the pair is safe regardless of the number of sites.
bool Theorem1Sufficient(const Transaction& t1, const Transaction& t2);

/// The complete two-site decision procedure of Theorem 2 / Corollary 1:
/// {T1, T2} spanning at most two sites is safe iff D(T1, T2) is strongly
/// connected; when unsafe a certificate is constructed. O(n^2).
/// Returns InvalidArgument if the pair spans more than two sites.
/// `use_flat_kernel` picks the CSR-based SCC/dominator kernels (default,
/// EngineConfig::use_flat_kernel) or the legacy ones; verdicts and reports
/// are identical either way.
Result<PairSafetyReport> TwoSiteSafetyTest(const Transaction& t1,
                                           const Transaction& t2,
                                           bool use_flat_kernel = true);

/// The general pair analyzer: runs the default DecisionPipeline
/// (core/decision/pipeline.h) — Theorem1Scc, Theorem2TwoSite,
/// Corollary2Closure, SatExhaustive, BruteForceLemma1 — with early exit at
/// the first stage that decides, recording per-stage statistics in
/// PairSafetyReport::pipeline. See the pipeline header for the stage
/// contract and docs/pipeline.md for the architecture.
PairSafetyReport AnalyzePairSafety(const Transaction& t1,
                                   const Transaction& t2,
                                   const EngineConfig& config = {});

/// As above but sharing an existing EngineContext (thread pool, verdict
/// cache, cancellation token) across many calls.
PairSafetyReport AnalyzePairSafety(const Transaction& t1,
                                   const Transaction& t2,
                                   EngineContext* ctx);

}  // namespace dislock

#endif  // DISLOCK_CORE_SAFETY_H_
