#include "core/multi.h"

#include <map>

#include "graph/cycles.h"
#include "util/string_util.h"

namespace dislock {

namespace {

/// Entities on which the two transactions conflict (see ConflictingEntities
/// in core/conflict_graph.h).
std::vector<EntityId> CommonLocked(const Transaction& a,
                                   const Transaction& b) {
  return ConflictingEntities(a, b);
}

}  // namespace

Digraph BuildTransactionConflictGraph(const TransactionSystem& system) {
  const int k = system.NumTransactions();
  Digraph g(k);
  for (int i = 0; i < k; ++i) {
    g.SetLabel(i, system.txn(i).name());
    for (int j = i + 1; j < k; ++j) {
      if (!CommonLocked(system.txn(i), system.txn(j)).empty()) {
        g.AddArc(i, j);
        g.AddArc(j, i);
      }
    }
  }
  return g;
}

Digraph BuildCycleGraph(const TransactionSystem& system,
                        const std::vector<int>& cycle) {
  const int len = static_cast<int>(cycle.size());
  DISLOCK_CHECK_GE(len, 2);
  Digraph b;
  std::map<BijkNodeKey, NodeId> node_of;

  auto node = [&](int ti, int tj, EntityId e) {
    BijkNodeKey key{std::min(ti, tj), std::max(ti, tj), e};
    auto it = node_of.find(key);
    if (it != node_of.end()) return it->second;
    NodeId id = b.AddNode(StrCat(system.db().NameOf(e), "_", key.lo_txn + 1,
                                 key.hi_txn + 1));
    node_of.emplace(key, id);
    return id;
  };

  // One B_ijk per directed subpath (Ti, Tj, Tk) of the cycle.
  for (int p = 0; p < len; ++p) {
    int i = cycle[(p + len - 1) % len];
    int j = cycle[p];
    int k = cycle[(p + 1) % len];
    const Transaction& tj = system.txn(j);
    std::vector<EntityId> in_pair = CommonLocked(system.txn(i), tj);
    std::vector<EntityId> out_pair = CommonLocked(tj, system.txn(k));

    // (x_ij, y_jk) iff Lx precedes Uy in Tj.
    for (EntityId x : in_pair) {
      for (EntityId y : out_pair) {
        if (tj.Precedes(tj.LockStep(x), tj.UnlockStep(y))) {
          b.AddArcUnique(node(i, j, x), node(j, k, y));
        }
      }
    }
    // (x_ij, x'_ij) iff Lx precedes Lx' in Tj.
    for (EntityId x : in_pair) {
      for (EntityId x2 : in_pair) {
        if (x == x2) continue;
        if (tj.Precedes(tj.LockStep(x), tj.LockStep(x2))) {
          b.AddArcUnique(node(i, j, x), node(i, j, x2));
        }
      }
    }
    // (y_jk, y'_jk) iff Uy precedes Uy' in Tj.
    for (EntityId y : out_pair) {
      for (EntityId y2 : out_pair) {
        if (y == y2) continue;
        if (tj.Precedes(tj.UnlockStep(y), tj.UnlockStep(y2))) {
          b.AddArcUnique(node(j, k, y), node(j, k, y2));
        }
      }
    }
  }
  return b;
}

MultiSafetyReport AnalyzeMultiSafety(const TransactionSystem& system,
                                     const MultiSafetyOptions& options) {
  MultiSafetyReport report;
  const int k = system.NumTransactions();

  // Condition (a): every two-transaction subsystem is safe.
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (CommonLocked(system.txn(i), system.txn(j)).empty()) continue;
      ++report.pairs_checked;
      PairSafetyReport pair =
          AnalyzePairSafety(system.txn(i), system.txn(j),
                            options.pair_options);
      if (pair.verdict == SafetyVerdict::kSafe) continue;
      report.verdict = pair.verdict;
      report.failing_pair = {i, j};
      report.pair_report = std::move(pair);
      return report;
    }
  }

  // Condition (b): every directed cycle's B_c graph has a cycle.
  Digraph g = BuildTransactionConflictGraph(system);
  std::vector<std::vector<NodeId>> cycles =
      SimpleCycles(g, options.max_cycles);
  report.cycle_budget_exhausted =
      static_cast<int64_t>(cycles.size()) >= options.max_cycles;
  const size_t min_len = options.include_two_cycles ? 2 : 3;
  for (const auto& cycle : cycles) {
    if (cycle.size() < min_len) continue;
    ++report.cycles_checked;
    std::vector<int> c(cycle.begin(), cycle.end());
    Digraph b = BuildCycleGraph(system, c);
    if (!HasCycle(b)) {
      report.verdict = SafetyVerdict::kUnsafe;
      report.failing_cycle = c;
      return report;
    }
  }

  report.verdict = report.cycle_budget_exhausted ? SafetyVerdict::kUnknown
                                                 : SafetyVerdict::kSafe;
  return report;
}

}  // namespace dislock
