#include "core/multi.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/decision/context.h"
#include "cache/verdict_cache.h"
#include "core/wire_keys.h"
#include "graph/csr.h"
#include "graph/cycles.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dislock {

namespace {

/// Entities on which the two transactions conflict (see ConflictingEntities
/// in core/conflict_graph.h).
std::vector<EntityId> CommonLocked(const Transaction& a,
                                   const Transaction& b) {
  return ConflictingEntities(a, b);
}

/// Atomically lowers `target` to `idx` if `idx` is smaller.
void AtomicMin(std::atomic<size_t>* target, size_t idx) {
  size_t seen = target->load(std::memory_order_acquire);
  while (idx < seen && !target->compare_exchange_weak(
                           seen, idx, std::memory_order_acq_rel)) {
  }
}

/// One unit of condition (a) work: the lexicographically-first member of a
/// group of fingerprint-equal conflicting pairs (every pair is its own
/// group when no cache is configured).
struct PairGroup {
  std::pair<int, int> rep;      // lex-first member, the one actually run
  size_t rep_scan_index = 0;    // its position in the lex scan order
  std::string fingerprint;      // empty when no cache is configured
  /// Pre-populated SAFE cache hit: the whole group is skipped.
  bool cached_safe = false;
  PairSafetyReport report;      // filled by the run (unless cached_safe)
  bool ran = false;
};

}  // namespace

FlatCycleChecker::FlatCycleChecker(
    const SystemView& view, const std::vector<std::pair<int, int>>& pairs)
    : view_(view) {
  common_.reserve(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    index_.emplace(Key(pairs[p].first, pairs[p].second),
                   static_cast<int>(p));
    common_.push_back(ConflictingEntities(view.txn(pairs[p].first),
                                          view.txn(pairs[p].second)));
  }
}

// Arc duplicates that AddArcUnique would have filtered are kept — they
// cannot change acyclicity — so the verdict matches the legacy check.
bool FlatCycleChecker::BcHasCycle(const std::vector<int>& cycle) const {
  const int len = static_cast<int>(cycle.size());
  DISLOCK_CHECK_GE(len, 2);
  Arena* arena = ScratchArena();
  ArenaScope scope(arena);

  // Edge slot per cycle position; a 2-cycle's two positions share one
  // unordered pair (and therefore one slot), exactly like the
  // BijkNodeKey canonicalization.
  int* slot_of_p = arena->AllocateArray<int>(static_cast<size_t>(len));
  const std::vector<EntityId>** slot_entities =
      arena->AllocateArray<const std::vector<EntityId>*>(
          static_cast<size_t>(len));
  int64_t* slot_keys = arena->AllocateArray<int64_t>(
      static_cast<size_t>(len));
  int num_slots = 0;
  for (int p = 0; p < len; ++p) {
    const int64_t key = Key(cycle[p], cycle[(p + 1) % len]);
    int slot = -1;
    for (int s = 0; s < num_slots; ++s) {
      if (slot_keys[s] == key) {
        slot = s;
        break;
      }
    }
    if (slot < 0) {
      slot = num_slots++;
      slot_keys[slot] = key;
      slot_entities[slot] = &common_[static_cast<size_t>(index_.at(key))];
    }
    slot_of_p[p] = slot;
  }

  // Dense node ids: base[slot] + (index of the entity in its list).
  int* base = arena->AllocateArray<int>(static_cast<size_t>(num_slots) + 1);
  base[0] = 0;
  for (int s = 0; s < num_slots; ++s) {
    base[s + 1] = base[s] + static_cast<int>(slot_entities[s]->size());
  }
  const int num_nodes = base[num_slots];

  size_t arc_cap = 0;
  for (int p = 0; p < len; ++p) {
    const size_t in = slot_entities[slot_of_p[(p + len - 1) % len]]->size();
    const size_t out = slot_entities[slot_of_p[p]]->size();
    arc_cap += in * out + in * in + out * out;
  }
  NodeId* tails = arena->AllocateArray<NodeId>(arc_cap);
  NodeId* heads = arena->AllocateArray<NodeId>(arc_cap);
  int32_t m = 0;

  auto node = [&](int slot, size_t entity_idx) {
    return static_cast<NodeId>(base[slot] + static_cast<int>(entity_idx));
  };

  for (int p = 0; p < len; ++p) {
    const int j = cycle[p];
    const Transaction& tj = view_.txn(j);
    const int in_slot = slot_of_p[(p + len - 1) % len];
    const int out_slot = slot_of_p[p];
    const std::vector<EntityId>& in_pair = *slot_entities[in_slot];
    const std::vector<EntityId>& out_pair = *slot_entities[out_slot];

    // (x_ij, y_jk) iff Lx precedes Uy in Tj.
    for (size_t xi = 0; xi < in_pair.size(); ++xi) {
      const StepId lx = tj.LockStep(in_pair[xi]);
      for (size_t yi = 0; yi < out_pair.size(); ++yi) {
        if (tj.Precedes(lx, tj.UnlockStep(out_pair[yi]))) {
          tails[m] = node(in_slot, xi);
          heads[m] = node(out_slot, yi);
          ++m;
        }
      }
    }
    // (x_ij, x'_ij) iff Lx precedes Lx' in Tj.
    for (size_t xi = 0; xi < in_pair.size(); ++xi) {
      const StepId lx = tj.LockStep(in_pair[xi]);
      for (size_t x2 = 0; x2 < in_pair.size(); ++x2) {
        if (x2 == xi) continue;
        if (tj.Precedes(lx, tj.LockStep(in_pair[x2]))) {
          tails[m] = node(in_slot, xi);
          heads[m] = node(in_slot, x2);
          ++m;
        }
      }
    }
    // (y_jk, y'_jk) iff Uy precedes Uy' in Tj.
    for (size_t yi = 0; yi < out_pair.size(); ++yi) {
      const StepId uy = tj.UnlockStep(out_pair[yi]);
      for (size_t y2 = 0; y2 < out_pair.size(); ++y2) {
        if (y2 == yi) continue;
        if (tj.Precedes(uy, tj.UnlockStep(out_pair[y2]))) {
          tails[m] = node(out_slot, yi);
          heads[m] = node(out_slot, y2);
          ++m;
        }
      }
    }
  }

  CsrGraph bc = BuildCsrFromArcs(num_nodes, tails, heads, m, arena);
  return HasCycleOnCsr(bc, arena);
}

Digraph BuildTransactionConflictGraph(const SystemView& view) {
  const int k = view.NumTransactions();
  Digraph g(k);
  for (int i = 0; i < k; ++i) {
    g.SetLabel(i, view.txn(i).name());
    for (int j = i + 1; j < k; ++j) {
      if (!CommonLocked(view.txn(i), view.txn(j)).empty()) {
        g.AddArc(i, j);
        g.AddArc(j, i);
      }
    }
  }
  return g;
}

Digraph BuildTransactionConflictGraph(const TransactionSystem& system) {
  return BuildTransactionConflictGraph(system.View());
}

Digraph BuildCycleGraph(const SystemView& view,
                        const std::vector<int>& cycle) {
  const int len = static_cast<int>(cycle.size());
  DISLOCK_CHECK_GE(len, 2);
  Digraph b;
  std::map<BijkNodeKey, NodeId> node_of;

  auto node = [&](int ti, int tj, EntityId e) {
    BijkNodeKey key{std::min(ti, tj), std::max(ti, tj), e};
    auto it = node_of.find(key);
    if (it != node_of.end()) return it->second;
    NodeId id = b.AddNode(StrCat(view.db().NameOf(e), "_", key.lo_txn + 1,
                                 key.hi_txn + 1));
    node_of.emplace(key, id);
    return id;
  };

  // One B_ijk per directed subpath (Ti, Tj, Tk) of the cycle.
  for (int p = 0; p < len; ++p) {
    int i = cycle[(p + len - 1) % len];
    int j = cycle[p];
    int k = cycle[(p + 1) % len];
    const Transaction& tj = view.txn(j);
    std::vector<EntityId> in_pair = CommonLocked(view.txn(i), tj);
    std::vector<EntityId> out_pair = CommonLocked(tj, view.txn(k));

    // (x_ij, y_jk) iff Lx precedes Uy in Tj.
    for (EntityId x : in_pair) {
      for (EntityId y : out_pair) {
        if (tj.Precedes(tj.LockStep(x), tj.UnlockStep(y))) {
          b.AddArcUnique(node(i, j, x), node(j, k, y));
        }
      }
    }
    // (x_ij, x'_ij) iff Lx precedes Lx' in Tj.
    for (EntityId x : in_pair) {
      for (EntityId x2 : in_pair) {
        if (x == x2) continue;
        if (tj.Precedes(tj.LockStep(x), tj.LockStep(x2))) {
          b.AddArcUnique(node(i, j, x), node(i, j, x2));
        }
      }
    }
    // (y_jk, y'_jk) iff Uy precedes Uy' in Tj.
    for (EntityId y : out_pair) {
      for (EntityId y2 : out_pair) {
        if (y == y2) continue;
        if (tj.Precedes(tj.UnlockStep(y), tj.UnlockStep(y2))) {
          b.AddArcUnique(node(j, k, y), node(j, k, y2));
        }
      }
    }
  }
  return b;
}

Digraph BuildCycleGraph(const TransactionSystem& system,
                        const std::vector<int>& cycle) {
  return BuildCycleGraph(system.View(), cycle);
}

std::vector<std::pair<int, int>> ConflictingPairs(const Digraph& g) {
  const int k = g.NumNodes();
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (g.HasArc(i, j)) pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

std::optional<size_t> ReplayPairScan(
    const std::vector<ScanPair>& scan, int num_groups,
    const std::function<void(const ScanPair&)>& on_checked,
    MultiSafetyReport* report) {
  std::vector<bool> group_seen(static_cast<size_t>(num_groups), false);
  for (size_t p = 0; p < scan.size(); ++p) {
    const ScanPair& pair = scan[p];
    if (pair.cached_safe || group_seen[static_cast<size_t>(pair.group)]) {
      // Skipped via the cache (pre-populated SAFE entry, or decided at
      // the group's first member earlier in this very scan).
      ++report->pairs_cached;
      continue;
    }
    group_seen[static_cast<size_t>(pair.group)] = true;
    ++report->pairs_checked;
    // p is this group's first member, i.e. its representative.
    DISLOCK_CHECK(pair.report != nullptr);
    report->pipeline.Add(pair.report->pipeline);
    if (on_checked) on_checked(pair);
    if (pair.report->verdict != SafetyVerdict::kSafe) {
      report->verdict = pair.report->verdict;
      report->failing_pair = pair.txns;
      report->pair_report = *pair.report;
      return p;
    }
  }
  return std::nullopt;
}

void ReduceCycleScan(std::vector<std::vector<int>>* to_check,
                     size_t first_acyclic, bool budget_exhausted,
                     MultiSafetyReport* report) {
  report->cycle_budget_exhausted = budget_exhausted;
  if (first_acyclic < to_check->size()) {
    // The serial loop counts every cycle examined up to and including the
    // failing one.
    report->cycles_checked = static_cast<int>(first_acyclic) + 1;
    report->verdict = SafetyVerdict::kUnsafe;
    report->failing_cycle = std::move((*to_check)[first_acyclic]);
    return;
  }
  report->cycles_checked = static_cast<int>(to_check->size());
  report->verdict = budget_exhausted ? SafetyVerdict::kUnknown
                                     : SafetyVerdict::kSafe;
}

MultiSafetyReport AnalyzeMultiSafety(const TransactionSystem& system,
                                     const MultiSafetyOptions& options) {
  EngineContext ctx(options);
  return AnalyzeMultiSafety(system, &ctx);
}

MultiSafetyReport AnalyzeMultiSafety(const TransactionSystem& system,
                                     EngineContext* ctx) {
  return AnalyzeMultiSafety(system.View(), ctx);
}

MultiSafetyReport AnalyzeMultiSafety(const SystemView& view,
                                     EngineContext* ctx) {
  const MultiSafetyOptions& options = ctx->config();
  MultiSafetyReport report;
  PairVerdictCache* cache = ctx->cache();
  // Phase span for condition (a); the per-pair work shows up nested under
  // it (serial) or under the workers' "pool.task" spans (parallel).
  std::optional<obs::TraceSpan> pairs_span;
  pairs_span.emplace(ctx->trace(), wire::kSpanMultiPairs);

  // The conflict graph G drives both conditions: its arcs are exactly the
  // conflicting pairs of condition (a), and its directed cycles are the
  // subject of condition (b). Build it once.
  Digraph g = BuildTransactionConflictGraph(view);

  // ---- Condition (a): every two-transaction subsystem is safe. ----

  // Conflicting pairs in the lexicographic scan order of the serial loop.
  std::vector<std::pair<int, int>> pairs = ConflictingPairs(g);

  // Group fingerprint-equal pairs; only each group's lex-first member runs
  // the (potentially coNP-hard) pair procedure. Without a cache every pair
  // is a singleton group and this degenerates to the plain pairwise scan.
  std::vector<PairGroup> groups;
  std::vector<int> group_of(pairs.size());
  if (cache != nullptr) {
    std::unordered_map<std::string, int> group_index;
    for (size_t p = 0; p < pairs.size(); ++p) {
      std::string fp =
          options.use_flat_kernel
              ? PairFingerprintFlat(view.txn(pairs[p].first),
                                    view.txn(pairs[p].second))
              : PairFingerprint(view.txn(pairs[p].first),
                                view.txn(pairs[p].second));
      auto [it, inserted] =
          group_index.emplace(std::move(fp), static_cast<int>(groups.size()));
      if (inserted) {
        PairGroup group;
        group.rep = pairs[p];
        group.rep_scan_index = p;
        group.fingerprint = it->first;
        auto cached = cache->Lookup(it->first);
        group.cached_safe =
            cached.has_value() && cached->verdict == SafetyVerdict::kSafe;
        groups.push_back(std::move(group));
      }
      group_of[p] = it->second;
    }
  } else {
    groups.reserve(pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      PairGroup group;
      group.rep = pairs[p];
      group.rep_scan_index = p;
      groups.push_back(std::move(group));
      group_of[p] = static_cast<int>(p);
    }
  }

  // Run the group representatives. Parallel runs use early-exit
  // cancellation: once a representative at scan index s reports a non-safe
  // verdict, representatives with scan index > s are skipped — the serial
  // scan would have stopped at s and never reached them. Representatives
  // with a smaller index always complete, so the lexicographically-first
  // failing pair is found exactly.
  std::vector<size_t> to_run;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    if (!groups[gi].cached_safe) to_run.push_back(gi);
  }
  ThreadPool* pool = ctx->pool();
  EngineConfig pair_config = options;
  pair_config.cache = nullptr;
  pair_config.enable_cache = false;
  pair_config.store = nullptr;
  if (pool != nullptr) {
    // The pair fan-out owns the pool; nested per-pair dominator
    // parallelism would oversubscribe the workers.
    pair_config.num_threads = 1;
  }
  auto run_group = [&](PairGroup* group) {
    group->report = AnalyzePairSafety(view.txn(group->rep.first),
                                      view.txn(group->rep.second),
                                      pair_config);
    group->ran = true;
  };
  if (pool != nullptr && to_run.size() > 1) {
    std::atomic<size_t> first_failing_scan_index{pairs.size()};
    std::vector<std::future<void>> futures;
    futures.reserve(to_run.size());
    for (size_t gi : to_run) {
      futures.push_back(pool->Submit([&, gi] {
        PairGroup* group = &groups[gi];
        if (group->rep_scan_index >
            first_failing_scan_index.load(std::memory_order_acquire)) {
          return;  // the serial scan would have stopped earlier
        }
        run_group(group);
        if (group->report.verdict != SafetyVerdict::kSafe) {
          AtomicMin(&first_failing_scan_index, group->rep_scan_index);
        }
      }));
    }
    for (auto& f : futures) f.get();
  } else {
    // Serial: scan representatives in order, stopping at the first
    // non-safe verdict like the classic loop.
    for (size_t gi : to_run) {
      run_group(&groups[gi]);
      if (groups[gi].report.verdict != SafetyVerdict::kSafe) break;
    }
  }

  // Deterministic reduction: replay the serial memoized scan over the
  // computed group verdicts to reconstruct the counters (including the
  // aggregated pipeline statistics) and find the lexicographically-first
  // failing pair.
  std::vector<ScanPair> scan;
  scan.reserve(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    const PairGroup& group = groups[static_cast<size_t>(group_of[p])];
    ScanPair sp;
    sp.txns = pairs[p];
    sp.group = group_of[p];
    sp.report = group.ran ? &group.report : nullptr;
    sp.cached_safe = group.cached_safe;
    scan.push_back(sp);
  }
  auto insert_into_cache = [&](const ScanPair& sp) {
    if (cache != nullptr) {
      cache->Insert(groups[static_cast<size_t>(sp.group)].fingerprint,
                    *sp.report);
    }
  };
  std::optional<size_t> failing = ReplayPairScan(
      scan, static_cast<int>(groups.size()), insert_into_cache, &report);
  pairs_span.reset();
  if (failing.has_value()) return report;

  // ---- Condition (b): every directed cycle's B_c graph has a cycle. ----
  obs::TraceSpan cycles_span(ctx->trace(), wire::kSpanMultiCycles);
  std::vector<std::vector<NodeId>> cycles =
      options.use_flat_kernel ? SimpleCyclesFlat(g, options.max_cycles)
                              : SimpleCycles(g, options.max_cycles);
  bool budget_exhausted =
      static_cast<int64_t>(cycles.size()) >= options.max_cycles;
  const size_t min_len = options.include_two_cycles ? 2 : 3;
  std::vector<std::vector<int>> to_check;
  for (const auto& cycle : cycles) {
    if (cycle.size() < min_len) continue;
    to_check.emplace_back(cycle.begin(), cycle.end());
  }

  // The flat B_c kernel shares one read-only pair-entity table across the
  // fan-out; each worker's scratch lives in its thread-local arena.
  std::optional<FlatCycleChecker> flat_checker;
  if (options.use_flat_kernel && !to_check.empty()) {
    flat_checker.emplace(view, pairs);
  }
  auto bc_is_acyclic = [&](const std::vector<int>& cycle) {
    return flat_checker.has_value()
               ? !flat_checker->BcHasCycle(cycle)
               : !HasCycle(BuildCycleGraph(view, cycle));
  };

  // Index (in enumeration order) of the first cycle whose B_c is acyclic.
  size_t first_acyclic = to_check.size();
  if (pool != nullptr && to_check.size() > 1) {
    // Cycles are cheap relative to task dispatch, so they are checked in
    // chunks; cancellation is re-checked per cycle inside a chunk.
    constexpr size_t kChunk = 16;
    std::atomic<size_t> first_failing{to_check.size()};
    std::vector<std::future<void>> futures;
    for (size_t begin = 0; begin < to_check.size(); begin += kChunk) {
      size_t end = std::min(begin + kChunk, to_check.size());
      futures.push_back(pool->Submit([&, begin, end] {
        for (size_t c = begin; c < end; ++c) {
          if (c > first_failing.load(std::memory_order_acquire)) return;
          if (bc_is_acyclic(to_check[c])) {
            AtomicMin(&first_failing, c);
          }
        }
      }));
    }
    for (auto& f : futures) f.get();
    first_acyclic = first_failing.load(std::memory_order_acquire);
  } else {
    for (size_t c = 0; c < to_check.size(); ++c) {
      if (bc_is_acyclic(to_check[c])) {
        first_acyclic = c;
        break;
      }
    }
  }

  ReduceCycleScan(&to_check, first_acyclic, budget_exhausted, &report);
  return report;
}

}  // namespace dislock
