#ifndef DISLOCK_CORE_CERTIFICATE_H_
#define DISLOCK_CORE_CERTIFICATE_H_

#include <string>
#include <vector>

#include "geometry/curve.h"
#include "txn/schedule.h"
#include "txn/transaction.h"
#include "util/status.h"

namespace dislock {

/// A verifiable witness that a pair {T1, T2} is unsafe: a pair of total
/// orders compatible with the transactions, together with a legal,
/// non-serializable schedule of them (the "certificate of unsafeness" built
/// in the proof of Theorem 2).
struct UnsafetyCertificate {
  /// The dominator X of D(T1,T2) used for the separation.
  std::vector<EntityId> dominator;
  /// Total orders t1 in T1, t2 in T2 (chain transactions).
  Transaction t1;
  Transaction t2;
  /// The extension orders themselves (step ids of T1 / T2 in order).
  std::vector<StepId> order1;
  std::vector<StepId> order2;
  /// A legal non-serializable schedule of {t1, t2} (hence of {T1, T2}).
  Schedule schedule;
  /// The two rectangles the schedule separates (Proposition 1 witness).
  SeparationWitness separation;
};

/// Builds an unsafety certificate for {T1, T2} given a dominator X of
/// D(T1, T2), following the proof of Theorem 2:
///  1. close the system with respect to X (Lemmas 2-3);
///  2. topologically sort the closed T1 placing Ux (x in X) as early as
///     possible, and the closed T2 placing Lx (x in X) as late as possible,
///     breaking ties among Lx steps by the Ux order of t1;
///  3. find a monotone curve separating the X-rectangles from the rest in
///     the (t1, t2) picture and read it off as a schedule.
///
/// Guaranteed to succeed for transactions spanning at most two sites
/// (Theorem 2). With more sites it may return Undecided (closure failure or
/// no separating curve), mirroring the paper's Fig. 5 phenomenon. The
/// returned certificate has been verified (legal + non-serializable).
Result<UnsafetyCertificate> BuildUnsafetyCertificate(
    const Transaction& t1, const Transaction& t2,
    const std::vector<EntityId>& dominator);

/// Builds a certificate directly from a given pair of linear extensions of
/// {T1, T2}: finds a dominator of D(t1, t2) whose rectangle partition admits
/// a separating curve (trying every dominator, both orientations). Succeeds
/// whenever D(t1, t2) is not strongly connected — for total orders strong
/// connectivity is necessary and sufficient for safety.
Result<UnsafetyCertificate> BuildCertificateFromExtensions(
    const Transaction& t1, const Transaction& t2,
    const std::vector<StepId>& order1, const std::vector<StepId>& order2);

/// Independently re-verifies a certificate against the original pair:
/// the total orders are linear extensions of T1/T2, the schedule is a legal
/// schedule of {t1, t2}, and it is not serializable.
Status VerifyUnsafetyCertificate(const Transaction& t1, const Transaction& t2,
                                 const UnsafetyCertificate& cert);

/// Pretty-prints a certificate (dominator, total orders, schedule,
/// separated rectangles).
std::string CertificateToString(const UnsafetyCertificate& cert,
                                const DistributedDatabase& db);

}  // namespace dislock

#endif  // DISLOCK_CORE_CERTIFICATE_H_
