#include "core/deadlock.h"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_map>

#include "util/string_util.h"

namespace dislock {

namespace {

/// Compact encoding of an execution state: one bit per step, transactions
/// concatenated.
std::string EncodeState(const std::vector<std::vector<bool>>& executed) {
  std::string key;
  uint8_t byte = 0;
  int bits = 0;
  for (const auto& txn : executed) {
    for (bool b : txn) {
      byte = static_cast<uint8_t>((byte << 1) | (b ? 1 : 0));
      if (++bits == 8) {
        key.push_back(static_cast<char>(byte));
        byte = 0;
        bits = 0;
      }
    }
  }
  if (bits > 0) key.push_back(static_cast<char>(byte));
  return key;
}

/// Reader/writer lock state implied by an execution: which transaction has
/// executed Lx but not yet Ux, per mode.
struct LockState {
  std::vector<int> writer;
  std::vector<int> reader_count;
  std::vector<std::vector<char>> reading;
};

LockState LockStateOf(const TransactionSystem& system,
                      const std::vector<std::vector<bool>>& executed) {
  LockState state;
  const int n = system.db().NumEntities();
  const int k = system.NumTransactions();
  state.writer.assign(n, -1);
  state.reader_count.assign(n, 0);
  state.reading.assign(n, std::vector<char>(k, 0));
  for (int i = 0; i < k; ++i) {
    const Transaction& t = system.txn(i);
    for (EntityId e : t.LockedEntities()) {
      StepId l = t.LockStep(e);
      StepId u = t.UnlockStep(e);
      if (executed[i][l] && !executed[i][u]) {
        if (t.GetStep(l).shared) {
          state.reading[e][i] = 1;
          ++state.reader_count[e];
        } else {
          state.writer[e] = i;
        }
      }
    }
  }
  return state;
}

/// Steps of transaction i whose predecessors are all executed but which are
/// themselves unexecuted ("order-ready").
std::vector<StepId> OrderReadySteps(const Transaction& t,
                                    const std::vector<bool>& executed) {
  std::vector<StepId> ready;
  for (StepId s = 0; s < t.NumSteps(); ++s) {
    if (executed[s]) continue;
    bool all_preds_done = true;
    for (NodeId p : t.order().InNeighbors(s)) {
      if (!executed[p]) {
        all_preds_done = false;
        break;
      }
    }
    if (all_preds_done) ready.push_back(s);
  }
  return ready;
}

bool StepEnabled(const Transaction& t, StepId s, int txn_index,
                 const LockState& locks) {
  const Step& step = t.GetStep(s);
  if (step.kind == StepKind::kLock) {
    if (locks.writer[step.entity] != -1) return false;
    return step.shared || locks.reader_count[step.entity] == 0;
  }
  if (step.kind == StepKind::kUnlock) {
    return step.shared ? locks.reading[step.entity][txn_index] != 0
                       : locks.writer[step.entity] == txn_index;
  }
  return true;
}

}  // namespace

Result<DeadlockReport> AnalyzeDeadlockFreedom(const TransactionSystem& system,
                                              int64_t max_states) {
  DeadlockReport report;
  const int k = system.NumTransactions();
  int total_steps = system.TotalSteps();

  struct Node {
    std::vector<std::vector<bool>> executed;
    int64_t parent;
    SysStep move;
    int executed_count;
  };
  std::vector<Node> nodes;
  std::unordered_map<std::string, int64_t> seen;

  std::vector<std::vector<bool>> initial(k);
  for (int i = 0; i < k; ++i) {
    initial[i].assign(system.txn(i).NumSteps(), false);
  }
  nodes.push_back({initial, -1, {-1, kInvalidStep}, 0});
  seen.emplace(EncodeState(initial), 0);

  std::deque<int64_t> frontier{0};
  while (!frontier.empty()) {
    int64_t cur = frontier.front();
    frontier.pop_front();
    ++report.states_explored;

    // Copy what we need: nodes may reallocate while we append.
    std::vector<std::vector<bool>> executed = nodes[cur].executed;
    int executed_count = nodes[cur].executed_count;
    LockState locks = LockStateOf(system, executed);

    bool any_enabled = false;
    std::vector<int> blocked_txns;
    std::vector<EntityId> waited;
    for (int i = 0; i < k; ++i) {
      const Transaction& t = system.txn(i);
      bool txn_blocked_on_lock = false;
      EntityId waited_entity = kInvalidEntity;
      for (StepId s : OrderReadySteps(t, executed[i])) {
        if (!StepEnabled(t, s, i, locks)) {
          txn_blocked_on_lock = true;
          waited_entity = t.GetStep(s).entity;
          continue;
        }
        any_enabled = true;
        // Successor state.
        std::vector<std::vector<bool>> next = executed;
        next[i][s] = true;
        std::string key = EncodeState(next);
        auto [it, inserted] = seen.emplace(key, nodes.size());
        if (inserted) {
          if (static_cast<int64_t>(nodes.size()) >= max_states) {
            return Status::ResourceExhausted(
                StrCat("deadlock search exceeded ", max_states, " states"));
          }
          nodes.push_back({std::move(next), cur, {i, s},
                           executed_count + 1});
          frontier.push_back(it->second);
        }
      }
      if (txn_blocked_on_lock) {
        blocked_txns.push_back(i);
        waited.push_back(waited_entity);
      }
    }

    if (!any_enabled && executed_count < total_steps) {
      // Dead state: reconstruct the prefix.
      std::vector<SysStep> prefix;
      for (int64_t n = cur; nodes[n].parent != -1; n = nodes[n].parent) {
        prefix.push_back(nodes[n].move);
      }
      std::reverse(prefix.begin(), prefix.end());
      report.deadlock_free = false;
      report.dead_prefix = Schedule(std::move(prefix));
      report.blocked_txns = std::move(blocked_txns);
      report.waited_entities = std::move(waited);
      return report;
    }
  }
  report.deadlock_free = true;
  return report;
}

DeadlockCertificate MakeDeadlockCertificate(const DeadlockReport& report) {
  DeadlockCertificate cert;
  cert.prefix = report.dead_prefix.value();
  cert.blocked_txns = report.blocked_txns;
  cert.waited_entities = report.waited_entities;
  return cert;
}

Status VerifyDeadlockWitness(const TransactionSystem& system,
                             const DeadlockCertificate& cert) {
  const int k = system.NumTransactions();
  std::vector<std::vector<bool>> executed(k);
  int executed_count = 0;
  for (int i = 0; i < k; ++i) {
    executed[i].assign(system.txn(i).NumSteps(), false);
  }
  // Replay: each event must be a fresh, order-ready, enabled step.
  for (size_t e = 0; e < cert.prefix.size(); ++e) {
    const SysStep& event = cert.prefix.at(e);
    if (event.txn < 0 || event.txn >= k) {
      return Status::InvalidArgument(
          StrCat("witness event ", e, ": invalid transaction ", event.txn));
    }
    const Transaction& t = system.txn(event.txn);
    if (!t.ValidStep(event.step)) {
      return Status::InvalidArgument(
          StrCat("witness event ", e, ": invalid step ", event.step));
    }
    if (executed[event.txn][event.step]) {
      return Status::InvalidArgument(
          StrCat("witness event ", e, ": step executed twice"));
    }
    for (NodeId p : t.order().InNeighbors(event.step)) {
      if (!executed[event.txn][p]) {
        return Status::InvalidArgument(
            StrCat("witness event ", e, ": predecessor step ", p,
                   " of ", t.name(), " not yet executed"));
      }
    }
    LockState locks = LockStateOf(system, executed);
    if (!StepEnabled(t, event.step, event.txn, locks)) {
      return Status::InvalidArgument(
          StrCat("witness event ", e, ": step not enabled (lock held)"));
    }
    executed[event.txn][event.step] = true;
    ++executed_count;
  }
  if (executed_count >= system.TotalSteps()) {
    return Status::InvalidArgument(
        "witness prefix is a complete schedule, not a dead state");
  }
  // The reached state must be dead, with exactly the claimed waits.
  LockState locks = LockStateOf(system, executed);
  std::vector<int> blocked_txns;
  std::vector<EntityId> waited;
  for (int i = 0; i < k; ++i) {
    const Transaction& t = system.txn(i);
    bool txn_blocked_on_lock = false;
    EntityId waited_entity = kInvalidEntity;
    for (StepId s : OrderReadySteps(t, executed[i])) {
      if (!StepEnabled(t, s, i, locks)) {
        txn_blocked_on_lock = true;
        waited_entity = t.GetStep(s).entity;
        continue;
      }
      return Status::InvalidArgument(
          StrCat("state after prefix is not dead: step ", s, " of ",
                 t.name(), " is enabled"));
    }
    if (txn_blocked_on_lock) {
      blocked_txns.push_back(i);
      waited.push_back(waited_entity);
    }
  }
  if (blocked_txns != cert.blocked_txns) {
    return Status::InvalidArgument(
        "blocked-transaction list does not match the dead state");
  }
  if (waited != cert.waited_entities) {
    return Status::InvalidArgument(
        "waited-entity list does not match the dead state");
  }
  return Status::OK();
}

std::string DeadlockCertificateToString(const DeadlockCertificate& cert,
                                        const TransactionSystem& system) {
  std::string out = StrCat("prefix: ", cert.prefix.ToString(system));
  for (size_t i = 0; i < cert.blocked_txns.size(); ++i) {
    out += StrCat("\n", system.txn(cert.blocked_txns[i]).name(),
                  " waits for '",
                  system.db().NameOf(cert.waited_entities[i]), "'");
  }
  return out;
}

std::optional<OpposingLockOrder> FindOpposingLockOrder(const Transaction& ti,
                                                       const Transaction& tj) {
  std::vector<EntityId> common;
  for (EntityId e : ti.LockedEntities()) {
    if (tj.LockStep(e) != kInvalidStep && tj.UnlockStep(e) != kInvalidStep) {
      common.push_back(e);
    }
  }
  for (size_t a = 0; a < common.size(); ++a) {
    for (size_t b = a + 1; b < common.size(); ++b) {
      EntityId x = common[a];
      EntityId y = common[b];
      // Ti may lock x before y unless Ly strictly precedes Lx.
      bool i_x_first = !ti.Precedes(ti.LockStep(y), ti.LockStep(x));
      bool i_y_first = !ti.Precedes(ti.LockStep(x), ti.LockStep(y));
      bool j_x_first = !tj.Precedes(tj.LockStep(y), tj.LockStep(x));
      bool j_y_first = !tj.Precedes(tj.LockStep(x), tj.LockStep(y));
      if (i_x_first && j_y_first) return OpposingLockOrder{x, y};
      if (i_y_first && j_x_first) return OpposingLockOrder{y, x};
    }
  }
  return std::nullopt;
}

bool OrderedLockAcquisition(const TransactionSystem& system) {
  const int k = system.NumTransactions();
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (FindOpposingLockOrder(system.txn(i), system.txn(j)).has_value()) {
        return false;
      }
    }
  }
  return true;
}

Result<Digraph> BuildWaitsForGraph(
    const TransactionSystem& system,
    const std::vector<std::vector<StepId>>& executed) {
  const int k = system.NumTransactions();
  if (static_cast<int>(executed.size()) != k) {
    return Status::InvalidArgument("executed must have one list per txn");
  }
  std::vector<std::vector<bool>> done(k);
  for (int i = 0; i < k; ++i) {
    const Transaction& t = system.txn(i);
    done[i].assign(t.NumSteps(), false);
    for (StepId s : executed[i]) {
      if (!t.ValidStep(s)) {
        return Status::InvalidArgument("invalid step id in executed");
      }
      done[i][s] = true;
    }
    // Down-closure check.
    for (StepId s = 0; s < t.NumSteps(); ++s) {
      if (!done[i][s]) continue;
      for (NodeId p : t.order().InNeighbors(s)) {
        if (!done[i][p]) {
          return Status::InvalidArgument(
              StrCat("executed set of ", t.name(), " is not down-closed"));
        }
      }
    }
  }
  LockState locks = LockStateOf(system, done);
  Digraph waits(k);
  for (int i = 0; i < k; ++i) {
    const Transaction& t = system.txn(i);
    waits.SetLabel(i, t.name());
    for (StepId s : OrderReadySteps(t, done[i])) {
      const Step& step = t.GetStep(s);
      if (step.kind != StepKind::kLock) continue;
      int w = locks.writer[step.entity];
      if (w != -1 && w != i) waits.AddArcUnique(i, w);
      if (!step.shared) {
        // An exclusive request waits on every reader.
        for (int j = 0; j < k; ++j) {
          if (j != i && locks.reading[step.entity][j]) {
            waits.AddArcUnique(i, j);
          }
        }
      }
    }
  }
  return waits;
}

}  // namespace dislock
