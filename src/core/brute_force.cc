#include "core/brute_force.h"

#include <algorithm>

#include "core/conflict_graph.h"
#include "graph/scc.h"
#include "txn/linear_extension.h"

namespace dislock {

namespace {

/// Per-entity lock/unlock step ids of a commonly locked entity, for the
/// position-based fast path.
struct CommonEntity {
  EntityId entity;
  StepId l1, u1, l2, u2;
};

std::vector<CommonEntity> CommonEntities(const Transaction& t1,
                                         const Transaction& t2) {
  std::vector<CommonEntity> out;
  for (EntityId e : ConflictingEntities(t1, t2)) {
    out.push_back({e, t1.LockStep(e), t1.UnlockStep(e), t2.LockStep(e),
                   t2.UnlockStep(e)});
  }
  return out;
}

/// Tests safety of the totally ordered pair given by position arrays:
/// safe iff D(t1, t2) is strongly connected (exact for total orders).
/// Runs Tarjan on the k-node D graph built in O(k^2).
bool TotalOrderPairSafe(const std::vector<CommonEntity>& common,
                        const std::vector<int>& pos1,
                        const std::vector<int>& pos2) {
  const int k = static_cast<int>(common.size());
  if (k <= 1) return true;
  Digraph d(k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      if (i == j) continue;
      if (pos1[common[i].l1] < pos1[common[j].u1] &&
          pos2[common[j].l2] < pos2[common[i].u2]) {
        d.AddArc(i, j);
      }
    }
  }
  return IsStronglyConnected(d);
}

std::vector<int> PositionsOf(const std::vector<StepId>& order) {
  std::vector<int> pos(order.size(), 0);
  for (size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = static_cast<int>(i);
  }
  return pos;
}

}  // namespace

Result<ExhaustiveResult> ExhaustivePairSafety(const Transaction& t1,
                                              const Transaction& t2,
                                              int64_t max_pairs) {
  ExhaustiveResult result;
  result.safe = true;
  std::vector<CommonEntity> common = CommonEntities(t1, t2);

  // Materialize t2's extensions and their position arrays once; t1's
  // extensions stream through the enumerator.
  std::vector<std::vector<StepId>> ext2;
  std::vector<std::vector<int>> pos2;
  Status st2 = EnumerateLinearExtensions(
      t2, max_pairs, [&](const std::vector<StepId>& order) {
        ext2.push_back(order);
        pos2.push_back(PositionsOf(order));
        return true;
      });
  DISLOCK_RETURN_NOT_OK(st2);

  bool exhausted = false;
  std::vector<StepId> unsafe_order1, unsafe_order2;
  Status st1 = EnumerateLinearExtensions(
      t1, max_pairs, [&](const std::vector<StepId>& order1) {
        std::vector<int> pos1 = PositionsOf(order1);
        for (size_t i = 0; i < ext2.size(); ++i) {
          if (result.combinations_checked >= max_pairs) {
            exhausted = true;
            return false;
          }
          ++result.combinations_checked;
          if (TotalOrderPairSafe(common, pos1, pos2[i])) continue;
          result.safe = false;
          unsafe_order1 = order1;
          unsafe_order2 = ext2[i];
          return false;
        }
        return true;
      });
  DISLOCK_RETURN_NOT_OK(st1);
  if (!result.safe) {
    // Build and verify a full certificate for the unsafe extension pair.
    auto cert =
        BuildCertificateFromExtensions(t1, t2, unsafe_order1, unsafe_order2);
    if (!cert.ok()) return cert.status();
    result.certificate = std::move(cert).value();
    return result;
  }
  if (exhausted) {
    return Status::ResourceExhausted(
        "extension-pair budget exhausted before a decision");
  }
  return result;
}

Result<ExhaustiveResult> ExhaustiveScheduleSafety(
    const TransactionSystem& system, int64_t max_schedules) {
  ExhaustiveResult result;
  result.safe = true;
  Status st = EnumerateSchedules(
      system, max_schedules, [&](const Schedule& schedule) {
        ++result.combinations_checked;
        if (!IsSerializable(system, schedule)) {
          result.safe = false;
          result.witness = schedule;
          return false;
        }
        return true;
      });
  if (!st.ok() && result.safe) return st;  // budget exceeded, undecided
  return result;
}

}  // namespace dislock
