#ifndef DISLOCK_CORE_PAPER_H_
#define DISLOCK_CORE_PAPER_H_

#include <memory>
#include <string>

#include "txn/system.h"

namespace dislock {

/// A self-contained transaction system instance (owns its database).
///
/// The factories below reconstruct the worked examples of the paper. The
/// scanned source garbles the exact step sequences of some figures, so the
/// reconstructions are built to exhibit precisely the *properties* each
/// figure is used to demonstrate (stated per factory); every property is
/// machine-checked in tests/paper_figures_test.cc.
struct PaperInstance {
  std::shared_ptr<DistributedDatabase> db;
  std::shared_ptr<TransactionSystem> system;
  std::string description;
};

/// Fig. 1: two transactions distributed at two sites (entities x, y at site
/// 1 and w, z at site 2) admitting a non-serializable schedule. The
/// reconstruction is the classic cross-site ordering conflict: T1 accesses
/// x then w, T2 accesses w then x. Property: the system is unsafe and the
/// interleaving "T1's x section, all of T2, T1's w section" is a legal
/// non-serializable schedule.
PaperInstance MakeFig1Instance();

/// Fig. 2: the geometric picture of two totally ordered (centralized)
/// transactions over entities x, y, z, where a monotone curve h separates
/// the x- and z-rectangles. t1 = Lx Ly x y Ux Uy Lz z Uz as in the paper;
/// t2 locks z before x and y. Property: the pair is unsafe and the
/// separating curve exists (Proposition 1).
PaperInstance MakeFig2Instance();

/// Fig. 3: an unsafe distributed transaction system {T1, T2} whose safety
/// cannot be read off a single geometric picture: one pair of compatible
/// total orders is safe (Fig. 3c) while another is unsafe (Fig. 3d),
/// illustrating Lemma 1. D(T1, T2) is not strongly connected (Fig. 3e).
PaperInstance MakeFig3Instance();

/// Fig. 4: the Definition 1 conflict digraph, exercised on a two-site pair
/// whose lock sections overlap both ways: T1 holds x (site 1) into its y
/// section (site 2) and vice versa for T2, so D(T1, T2) has both arcs
/// (x, y) and (y, x). Property: D is strongly connected, hence the pair is
/// safe by Theorem 1 — at ANY number of sites — and the exhaustive oracle
/// agrees.
PaperInstance MakeFig4Instance();

/// Fig. 5: two transactions over FOUR sites (entities x1, x2, y1, y2, one
/// per site) whose D(T1,T2) is not strongly connected — its only dominator
/// is X = {x1, x2} — yet the system is safe: the Definition 3 closure with
/// respect to X forces Ux1 to both precede and follow Ux2, a contradiction,
/// so no certificate of unsafeness exists. Shows Theorem 1's condition is
/// not necessary at >= 4 sites.
PaperInstance MakeFig5Instance();

}  // namespace dislock

#endif  // DISLOCK_CORE_PAPER_H_
